// Descriptions of S-box table faults — the bridge between a Rowhammer flip
// event (page offset + bit) and the cryptanalytic fault model.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace explframe::fault {

/// A persistent single-bit (or multi-bit) fault in one byte of an S-box
/// table: table[index] becomes table[index] ^ mask.
struct SboxByteFault {
  std::uint16_t index = 0;  ///< Table index (0..255 for AES, 0..15 PRESENT).
  std::uint8_t mask = 0;    ///< XOR difference, non-zero.

  friend bool operator==(const SboxByteFault&, const SboxByteFault&) = default;
};

/// Apply a fault to a table in place; returns {old value, new value}.
template <std::size_t N>
std::pair<std::uint8_t, std::uint8_t> apply_fault(
    std::array<std::uint8_t, N>& table, const SboxByteFault& fault) {
  const std::uint8_t before = table[fault.index % N];
  table[fault.index % N] = static_cast<std::uint8_t>(before ^ fault.mask);
  return {before, table[fault.index % N]};
}

/// Interpret a flipped bit at byte offset `offset` within a memory region
/// holding an N-entry S-box table starting at `table_offset`. Returns the
/// resulting table fault if the flip landed inside the table.
inline std::optional<SboxByteFault> fault_from_flip(std::uint64_t offset,
                                                    std::uint8_t bit,
                                                    std::uint64_t table_offset,
                                                    std::size_t table_size) {
  if (offset < table_offset || offset >= table_offset + table_size)
    return std::nullopt;
  SboxByteFault f;
  f.index = static_cast<std::uint16_t>(offset - table_offset);
  f.mask = static_cast<std::uint8_t>(1u << bit);
  return f;
}

std::string describe(const SboxByteFault& fault);

}  // namespace explframe::fault
