#include "fault/dfa_aes.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace explframe::fault {

using crypto::Aes128;

namespace {
constexpr std::uint8_t kMc[4][4] = {
    {2, 3, 1, 1}, {1, 2, 3, 1}, {1, 1, 2, 3}, {3, 1, 1, 2}};
}

std::array<std::size_t, 4> AesDfa::positions_for_column(std::size_t col) {
  // MC-output column `col` of round 9; the final ShiftRows moves byte
  // (row rr, col) to ciphertext position rr + 4*((col - rr) mod 4).
  std::array<std::size_t, 4> pos{};
  for (std::size_t rr = 0; rr < 4; ++rr)
    pos[rr] = rr + 4 * ((col + 4 - rr) % 4);
  return pos;
}

bool AesDfa::add_pair(const Block& correct, const Block& faulty) {
  // Identify the affected column from the differing byte positions.
  std::vector<std::size_t> diff;
  for (std::size_t i = 0; i < 16; ++i)
    if (correct[i] != faulty[i]) diff.push_back(i);
  if (diff.size() != 4) return false;

  std::size_t col = 4;
  for (std::size_t c = 0; c < 4; ++c) {
    auto pos = positions_for_column(c);
    std::sort(pos.begin(), pos.end());
    if (std::equal(pos.begin(), pos.end(), diff.begin())) {
      col = c;
      break;
    }
  }
  if (col == 4) return false;

  const auto pos = positions_for_column(col);
  const auto& inv = Aes128::inv_sbox();

  // Enumerate hypotheses: faulted row r (before MixColumns) and the
  // post-SubBytes byte difference d.
  std::set<std::array<std::uint8_t, 4>> tuples;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::uint32_t d = 1; d < 256; ++d) {
      std::array<std::vector<std::uint8_t>, 4> per_byte;
      bool viable = true;
      for (std::size_t rr = 0; rr < 4 && viable; ++rr) {
        const std::uint8_t delta =
            Aes128::gmul(static_cast<std::uint8_t>(d), kMc[rr][r]);
        const std::uint8_t c0 = correct[pos[rr]];
        const std::uint8_t c1 = faulty[pos[rr]];
        for (std::uint32_t k = 0; k < 256; ++k) {
          const std::uint8_t kk = static_cast<std::uint8_t>(k);
          if ((inv[c0 ^ kk] ^ inv[c1 ^ kk]) == delta)
            per_byte[rr].push_back(kk);
        }
        if (per_byte[rr].empty()) viable = false;
      }
      if (!viable) continue;
      for (const auto k0 : per_byte[0])
        for (const auto k1 : per_byte[1])
          for (const auto k2 : per_byte[2])
            for (const auto k3 : per_byte[3])
              tuples.insert({k0, k1, k2, k3});
    }
  }

  if (seen_[col] == 0) {
    cand_[col] = std::move(tuples);
  } else {
    std::set<std::array<std::uint8_t, 4>> kept;
    for (const auto& t : cand_[col])
      if (tuples.count(t) != 0) kept.insert(t);
    cand_[col] = std::move(kept);
  }
  ++seen_[col];
  return true;
}

std::size_t AesDfa::pairs_for_column(std::size_t col) const {
  EXPLFRAME_CHECK(col < 4);
  return seen_[col];
}

double AesDfa::remaining_keyspace_log2() const {
  double bits = 0.0;
  for (std::size_t c = 0; c < 4; ++c) {
    if (seen_[c] == 0) {
      bits += 32.0;  // Column untouched: all 2^32 tuples possible.
    } else if (cand_[c].empty()) {
      return 128.0;  // Contradiction (should not happen with valid pairs).
    } else {
      bits += std::log2(static_cast<double>(cand_[c].size()));
    }
  }
  return bits;
}

std::optional<AesDfa::RoundKey> AesDfa::recover_round10() const {
  RoundKey key{};
  for (std::size_t c = 0; c < 4; ++c) {
    if (cand_[c].size() != 1) return std::nullopt;
    const auto& tuple = *cand_[c].begin();
    const auto pos = positions_for_column(c);
    for (std::size_t rr = 0; rr < 4; ++rr) key[pos[rr]] = tuple[rr];
  }
  return key;
}

std::optional<crypto::Aes128::Key> AesDfa::recover_master_key() const {
  const auto k10 = recover_round10();
  if (!k10) return std::nullopt;
  return Aes128::master_key_from_round10(*k10);
}

}  // namespace explframe::fault
