#include "fault/analysis.hpp"

#include <algorithm>
#include <array>

#include "crypto/aes128.hpp"
#include "crypto/present80.hpp"
#include "fault/dfa_aes.hpp"
#include "fault/pfa_aes.hpp"
#include "fault/pfa_present.hpp"
#include "support/bytes.hpp"
#include "support/check.hpp"

namespace explframe::fault {

const char* to_string(AnalysisKind kind) noexcept {
  switch (kind) {
    case AnalysisKind::kPfaMissingValue:
      return "pfa-missing-value";
    case AnalysisKind::kPfaMaxLikelihood:
      return "pfa-max-likelihood";
    case AnalysisKind::kDfa:
      return "dfa";
  }
  return "?";
}

FaultModel fault_model_for(const crypto::TableCipher& cipher,
                           std::size_t index, std::uint8_t bit) noexcept {
  FaultModel f;
  f.table_index = static_cast<std::uint16_t>(index);
  f.mask = static_cast<std::uint8_t>((1u << bit) & cipher.live_bits(index));
  f.v = cipher.canonical_table()[index];
  f.v_new = static_cast<std::uint8_t>(f.v ^ f.mask);
  return f;
}

void Analysis::set_known_pair(std::span<const std::uint8_t> /*plaintext*/,
                              std::span<const std::uint8_t> /*ciphertext*/) {}

bool Analysis::add_pair(std::span<const std::uint8_t> /*correct*/,
                        std::span<const std::uint8_t> /*faulty*/) {
  EXPLFRAME_CHECK_MSG(false, "this analysis engine does not consume pairs");
  return false;
}

void Analysis::add_ciphertext_batch(std::span<const std::uint8_t> ciphertexts,
                                    std::size_t block_size) {
  EXPLFRAME_CHECK(block_size > 0 && ciphertexts.size() % block_size == 0);
  for (std::size_t off = 0; off < ciphertexts.size(); off += block_size)
    add_ciphertext(ciphertexts.subspan(off, block_size));
}

namespace {

crypto::Aes128::Block to_aes_block(std::span<const std::uint8_t> bytes) {
  EXPLFRAME_CHECK(bytes.size() == 16);
  crypto::Aes128::Block b;
  std::copy(bytes.begin(), bytes.end(), b.begin());
  return b;
}

std::uint64_t to_present_block(std::span<const std::uint8_t> bytes) {
  EXPLFRAME_CHECK(bytes.size() == 8);
  return le_bytes_to_u64(bytes);
}

class AesPfaAnalysis final : public Analysis {
 public:
  AesPfaAnalysis(PfaStrategy strategy, const FaultModel& fault)
      : strategy_(strategy), fault_(fault) {}

  AnalysisKind kind() const noexcept override {
    return strategy_ == PfaStrategy::kMissingValue
               ? AnalysisKind::kPfaMissingValue
               : AnalysisKind::kPfaMaxLikelihood;
  }
  const char* name() const noexcept override { return "PFA/AES-128"; }

  void add_ciphertext(std::span<const std::uint8_t> ct) override {
    pfa_.add_ciphertext(to_aes_block(ct));
  }
  void add_ciphertext_batch(std::span<const std::uint8_t> cts,
                            std::size_t block_size) override {
    EXPLFRAME_CHECK(block_size == 16 && cts.size() % 16 == 0);
    pfa_.add_ciphertext_batch(cts);
  }
  std::size_t ciphertext_count() const noexcept override {
    return pfa_.ciphertext_count();
  }
  double remaining_keyspace_log2() const override {
    return pfa_.remaining_keyspace_log2(strategy_, fault_.v, fault_.v_new);
  }
  std::optional<std::vector<std::uint8_t>> recover_key() override {
    const auto key =
        pfa_.recover_master_key(strategy_, fault_.v, fault_.v_new);
    if (!key) return std::nullopt;
    return std::vector<std::uint8_t>(key->begin(), key->end());
  }
  void reset() override { pfa_.reset(); }

 private:
  PfaStrategy strategy_;
  FaultModel fault_;
  AesPfa pfa_;
};

class PresentPfaAnalysis final : public Analysis {
 public:
  explicit PresentPfaAnalysis(const FaultModel& fault) : fault_(fault) {
    // The attacker reconstructs the victim's faulty table from the template
    // (entry + bit) and the public canonical S-box — no victim reads.
    faulty_table_ = crypto::Present80::sbox();
    faulty_table_[fault_.table_index % 16] ^=
        static_cast<std::uint8_t>(fault_.mask & 0xF);
  }

  AnalysisKind kind() const noexcept override {
    return AnalysisKind::kPfaMissingValue;
  }
  const char* name() const noexcept override { return "PFA/PRESENT-80"; }
  bool wants_known_pair() const noexcept override { return true; }

  void set_known_pair(std::span<const std::uint8_t> pt,
                      std::span<const std::uint8_t> ct) override {
    known_pt_ = to_present_block(pt);
    known_ct_ = to_present_block(ct);
    have_pair_ = true;
  }

  void add_ciphertext(std::span<const std::uint8_t> ct) override {
    pfa_.add_ciphertext(to_present_block(ct));
  }
  void add_ciphertext_batch(std::span<const std::uint8_t> cts,
                            std::size_t block_size) override {
    EXPLFRAME_CHECK(block_size == 8 && cts.size() % 8 == 0);
    pfa_.add_ciphertext_batch(cts);
  }
  std::size_t ciphertext_count() const noexcept override {
    return pfa_.ciphertext_count();
  }
  double remaining_keyspace_log2() const override {
    // Nibble-wise K32 key space plus the 16 register bits PFA never sees
    // (resolved by the residual search in recover_key()).
    return pfa_.remaining_keyspace_log2(fault_.v) + 16.0;
  }
  std::optional<std::vector<std::uint8_t>> recover_key() override {
    if (!have_pair_ || !pfa_.recover_k32(fault_.v)) return std::nullopt;
    const auto result = pfa_.recover_master_key(
        fault_.v, known_pt_, known_ct_,
        std::span<const std::uint8_t, 16>(faulty_table_));
    if (!result) return std::nullopt;
    residual_ = result->search_tried;
    return std::vector<std::uint8_t>(result->key.begin(), result->key.end());
  }
  std::uint32_t residual_search() const noexcept override { return residual_; }
  void reset() override {
    pfa_.reset();
    residual_ = 0;
  }

 private:
  FaultModel fault_;
  std::array<std::uint8_t, 16> faulty_table_{};
  PresentPfa pfa_;
  std::uint64_t known_pt_ = 0;
  std::uint64_t known_ct_ = 0;
  bool have_pair_ = false;
  std::uint32_t residual_ = 0;
};

class AesDfaAnalysis final : public Analysis {
 public:
  AnalysisKind kind() const noexcept override { return AnalysisKind::kDfa; }
  const char* name() const noexcept override { return "DFA/AES-128"; }
  bool wants_pairs() const noexcept override { return true; }

  void add_ciphertext(std::span<const std::uint8_t> /*ct*/) override {
    EXPLFRAME_CHECK_MSG(false, "DFA consumes (correct, faulty) pairs");
  }
  bool add_pair(std::span<const std::uint8_t> correct,
                std::span<const std::uint8_t> faulty) override {
    const bool ok = dfa_.add_pair(to_aes_block(correct), to_aes_block(faulty));
    pairs_ += ok ? 1 : 0;
    return ok;
  }
  std::size_t ciphertext_count() const noexcept override { return pairs_; }
  double remaining_keyspace_log2() const override {
    return dfa_.remaining_keyspace_log2();
  }
  std::optional<std::vector<std::uint8_t>> recover_key() override {
    const auto key = dfa_.recover_master_key();
    if (!key) return std::nullopt;
    return std::vector<std::uint8_t>(key->begin(), key->end());
  }
  void reset() override {
    dfa_ = AesDfa{};
    pairs_ = 0;
  }

 private:
  AesDfa dfa_;
  std::size_t pairs_ = 0;
};

}  // namespace

std::unique_ptr<Analysis> make_analysis(AnalysisKind kind,
                                        const crypto::TableCipher& cipher,
                                        const FaultModel& fault) {
  const bool aes = cipher.kind() == crypto::CipherKind::kAes128;
  switch (kind) {
    case AnalysisKind::kPfaMissingValue:
      if (aes) return std::make_unique<AesPfaAnalysis>(
          PfaStrategy::kMissingValue, fault);
      return std::make_unique<PresentPfaAnalysis>(fault);
    case AnalysisKind::kPfaMaxLikelihood:
      EXPLFRAME_CHECK_MSG(aes, "max-likelihood PFA is AES-only");
      return std::make_unique<AesPfaAnalysis>(PfaStrategy::kMaxLikelihood,
                                              fault);
    case AnalysisKind::kDfa:
      EXPLFRAME_CHECK_MSG(aes, "DFA engine is AES-only");
      return std::make_unique<AesDfaAnalysis>();
  }
  EXPLFRAME_CHECK_MSG(false, "unknown AnalysisKind");
  return nullptr;
}

}  // namespace explframe::fault
