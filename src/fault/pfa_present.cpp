#include "fault/pfa_present.hpp"

#include <cmath>

#include "support/bytes.hpp"
#include "support/check.hpp"

namespace explframe::fault {

using crypto::Present80;

void PresentPfa::add_ciphertext(std::uint64_t c) noexcept {
  const std::uint64_t d = Present80::p_layer_inv(c);
  for (std::size_t j = 0; j < 16; ++j) {
    const auto nib = static_cast<std::uint8_t>((d >> (4 * j)) & 0xF);
    if (++freq_[j][nib] == 1) {
      --zero_count_[j];
      zero_sum_[j] -= nib;
    }
  }
  ++count_;
}

void PresentPfa::add_ciphertext_batch(
    std::span<const std::uint8_t> ciphertexts) noexcept {
  EXPLFRAME_CHECK(ciphertexts.size() % 8 == 0);
  for (std::size_t off = 0; off < ciphertexts.size(); off += 8)
    add_ciphertext(le_bytes_to_u64(ciphertexts.subspan(off, 8)));
}

void PresentPfa::reset() noexcept {
  for (auto& f : freq_) f.fill(0);
  count_ = 0;
  zero_count_.fill(16);
  zero_sum_.fill(15 * 16 / 2);
}

std::array<std::vector<std::uint8_t>, 16> PresentPfa::candidates(
    std::uint8_t v) const {
  std::array<std::vector<std::uint8_t>, 16> out;
  for (std::size_t j = 0; j < 16; ++j) {
    for (std::uint8_t t = 0; t < 16; ++t)
      if (freq_[j][t] == 0)
        out[j].push_back(static_cast<std::uint8_t>(t ^ v));
  }
  return out;
}

double PresentPfa::remaining_keyspace_log2(std::uint8_t /*v*/) const {
  // Candidate-set sizes come straight off the incremental zero tallies (the
  // XOR with v permutes candidates without changing how many there are).
  double bits = 0.0;
  for (std::size_t j = 0; j < 16; ++j) {
    if (zero_count_[j] == 0) return 64.0;
    bits += std::log2(static_cast<double>(zero_count_[j]));
  }
  return bits;
}

std::optional<std::uint64_t> PresentPfa::recover_k32(std::uint8_t v) const {
  std::uint64_t l = 0;
  for (std::size_t j = 0; j < 16; ++j) {
    // Unique missing nibble: zero_sum_ then IS that nibble.
    if (zero_count_[j] != 1) return std::nullopt;
    l |= static_cast<std::uint64_t>((zero_sum_[j] ^ v) & 0xF) << (4 * j);
  }
  return Present80::p_layer(l);
}

namespace {

/// Invert the key-schedule register from the round-32 state back to the
/// master key (the inverse of the three forward steps, in reverse order).
crypto::Present80::Key invert_schedule(__uint128_t reg32) {
  const __uint128_t mask80 = (static_cast<__uint128_t>(1) << 80) - 1;
  const auto& inv = Present80::inv_sbox();
  __uint128_t reg = reg32 & mask80;
  for (std::uint32_t round = 31; round >= 1; --round) {
    reg ^= static_cast<__uint128_t>(round) << 15;
    const auto top = static_cast<std::uint8_t>((reg >> 76) & 0xF);
    reg = (reg & ~(static_cast<__uint128_t>(0xF) << 76)) |
          (static_cast<__uint128_t>(inv[top]) << 76);
    reg = ((reg >> 61) | (reg << 19)) & mask80;
  }
  crypto::Present80::Key key{};
  for (std::size_t i = 0; i < 10; ++i)
    key[i] = static_cast<std::uint8_t>(reg >> (8 * (9 - i)));
  return key;
}

}  // namespace

std::optional<PresentPfa::MasterKeyResult> PresentPfa::recover_master_key(
    std::uint8_t v, std::uint64_t known_plaintext,
    std::uint64_t known_ciphertext,
    std::span<const std::uint8_t, 16> faulty_sbox) const {
  const auto k32 = recover_k32(v);
  if (!k32) return std::nullopt;
  for (std::uint32_t low = 0; low < (1u << 16); ++low) {
    const __uint128_t reg32 =
        (static_cast<__uint128_t>(*k32) << 16) | low;
    const auto key = invert_schedule(reg32);
    const auto rk = Present80::expand_key(key);
    if (Present80::encrypt_with_sbox(known_plaintext, rk, faulty_sbox) ==
        known_ciphertext) {
      return MasterKeyResult{key, low + 1};
    }
  }
  return std::nullopt;
}

}  // namespace explframe::fault
