// Persistent Fault Analysis of PRESENT-80.
//
// The last round is  C = P(S*(x)) ^ K32.  Because the bit permutation P is
// linear over XOR,  P^-1(C) = S*(x) ^ P^-1(K32): in the permuted domain the
// 16 nibbles are independent, so the AES missing-value argument applies
// nibble-wise to L = P^-1(K32):
//
//   L_j = (value absent from nibble j of P^-1(C))  ^  v
//
// where v is the S-box output value erased by the fault. K32 = P(L) yields
// 64 of the 80 key-register bits; the remaining 16 bits are brute-forced
// with one known plaintext/ciphertext pair (reported as residual work).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/present80.hpp"

namespace explframe::fault {

/// Persistent fault analysis on PRESENT-80: missing-nibble statistics
/// over the final round recover 64 round-key bits, and the remaining
/// 16 bits fall to the residual key-schedule search.
class PresentPfa {
 public:
  PresentPfa() noexcept { reset(); }

  void add_ciphertext(std::uint64_t c) noexcept;
  /// Absorb ciphertexts.size() / 8 concatenated little-endian blocks — the
  /// harvest loop's batched entry point.
  void add_ciphertext_batch(std::span<const std::uint8_t> ciphertexts) noexcept;
  std::size_t ciphertext_count() const noexcept { return count_; }
  void reset() noexcept;

  /// Candidate values for each nibble of L = P^-1(K32). (Diagnostic full
  /// rescan; the recovery checks below read the incremental tallies.)
  std::array<std::vector<std::uint8_t>, 16> candidates(std::uint8_t v) const;

  /// O(16) from the incremental zero tallies — not a rescan.
  double remaining_keyspace_log2(std::uint8_t v) const;

  /// The unique last-round key K32 if every nibble is pinned. O(16) from
  /// the incremental tallies (amortized O(1) per harvested ciphertext).
  std::optional<std::uint64_t> recover_k32(std::uint8_t v) const;

  /// Recover the full 80-bit master key: K32 from PFA plus a 2^16 search
  /// over the undetermined low register bits, checked against one known
  /// plaintext/ciphertext pair (encrypted with the *faulty* S-box, since
  /// the fault is persistent). Returns the key and the number of
  /// candidates tried (the residual brute-force work).
  struct MasterKeyResult {
    crypto::Present80::Key key{};
    std::uint32_t search_tried = 0;
  };
  std::optional<MasterKeyResult> recover_master_key(
      std::uint8_t v, std::uint64_t known_plaintext,
      std::uint64_t known_ciphertext,
      std::span<const std::uint8_t, 16> faulty_sbox) const;

 private:
  std::array<std::array<std::uint32_t, 16>, 16> freq_{};
  std::size_t count_ = 0;
  // Incremental tallies (see AesPfa): #nibble values never seen at position
  // j, and their sum (identifying THE missing value once unique).
  std::array<std::uint32_t, 16> zero_count_{};
  std::array<std::uint32_t, 16> zero_sum_{};
};

}  // namespace explframe::fault
