// Persistent Fault Analysis of PRESENT-80.
//
// The last round is  C = P(S*(x)) ^ K32.  Because the bit permutation P is
// linear over XOR,  P^-1(C) = S*(x) ^ P^-1(K32): in the permuted domain the
// 16 nibbles are independent, so the AES missing-value argument applies
// nibble-wise to L = P^-1(K32):
//
//   L_j = (value absent from nibble j of P^-1(C))  ^  v
//
// where v is the S-box output value erased by the fault. K32 = P(L) yields
// 64 of the 80 key-register bits; the remaining 16 bits are brute-forced
// with one known plaintext/ciphertext pair (reported as residual work).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/present80.hpp"

namespace explframe::fault {

class PresentPfa {
 public:
  void add_ciphertext(std::uint64_t c) noexcept;
  std::size_t ciphertext_count() const noexcept { return count_; }
  void reset() noexcept;

  /// Candidate values for each nibble of L = P^-1(K32).
  std::array<std::vector<std::uint8_t>, 16> candidates(std::uint8_t v) const;

  double remaining_keyspace_log2(std::uint8_t v) const;

  /// The unique last-round key K32 if every nibble is pinned.
  std::optional<std::uint64_t> recover_k32(std::uint8_t v) const;

  /// Recover the full 80-bit master key: K32 from PFA plus a 2^16 search
  /// over the undetermined low register bits, checked against one known
  /// plaintext/ciphertext pair (encrypted with the *faulty* S-box, since
  /// the fault is persistent). Returns the key and the number of
  /// candidates tried (the residual brute-force work).
  struct MasterKeyResult {
    crypto::Present80::Key key{};
    std::uint32_t search_tried = 0;
  };
  std::optional<MasterKeyResult> recover_master_key(
      std::uint8_t v, std::uint64_t known_plaintext,
      std::uint64_t known_ciphertext,
      std::span<const std::uint8_t, 16> faulty_sbox) const;

 private:
  std::array<std::array<std::uint32_t, 16>, 16> freq_{};
  std::size_t count_ = 0;
};

}  // namespace explframe::fault
