// fault::Analysis — one interface over the key-recovery engines (PFA-AES,
// PFA-PRESENT, DFA-AES), so the campaign driver and the benches can feed
// ciphertexts, watch the remaining key space collapse and ask for the master
// key without knowing which cryptanalysis is running underneath.
//
// PFA engines consume bare faulty ciphertexts of unknown plaintexts (what a
// persistent Rowhammer flip naturally provides). The DFA engine instead
// consumes (correct, faulty) ciphertext pairs of the same plaintext — it
// exists as the transient-fault comparison point and reports wants_pairs().
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "crypto/table_cipher.hpp"

namespace explframe::fault {

/// Which key-recovery statistic a campaign runs over harvested
/// ciphertexts.
enum class AnalysisKind {
  kPfaMissingValue,   ///< Persistent fault, missing-value statistic.
  kPfaMaxLikelihood,  ///< Persistent fault, frequency-peak statistic
                      ///< (AES only; PRESENT always uses missing-value).
  kDfa,               ///< Differential fault analysis (AES only; needs pairs).
};

const char* to_string(AnalysisKind kind) noexcept;

/// The persistent table fault being analysed, as the template phase knows
/// it: stored entry `table_index` has `mask` XORed in, erasing canonical
/// S-box output `v` and doubling `v_new`.
struct FaultModel {
  std::uint16_t table_index = 0;
  std::uint8_t mask = 0;
  std::uint8_t v = 0;
  std::uint8_t v_new = 0;
};

/// Derive the fault model for `cipher` from a flip at table entry `index`,
/// bit `bit` (only live bits produce a meaningful model).
FaultModel fault_model_for(const crypto::TableCipher& cipher,
                           std::size_t index, std::uint8_t bit) noexcept;

/// Cipher-generic key-recovery interface: feed harvested ciphertexts,
/// ask whether the key is pinned. Adapters wrap AesPfa/PresentPfa/AesDfa
/// behind one seam so campaigns stay cipher-agnostic.
class Analysis {
 public:
  virtual ~Analysis() = default;

  virtual AnalysisKind kind() const noexcept = 0;
  virtual const char* name() const noexcept = 0;

  /// True for engines that need (correct, faulty) pairs instead of bare
  /// faulty ciphertexts (DFA).
  virtual bool wants_pairs() const noexcept { return false; }
  /// True for engines that need one known plaintext/ciphertext pair to
  /// finish (PRESENT's residual key-schedule search).
  virtual bool wants_known_pair() const noexcept { return false; }
  /// Provide the known pair (blocks in the cipher's byte layout). No-op for
  /// engines that do not need one.
  virtual void set_known_pair(std::span<const std::uint8_t> plaintext,
                              std::span<const std::uint8_t> ciphertext);

  /// Feed one faulty ciphertext (block_size() bytes). Invalid on
  /// wants_pairs() engines.
  virtual void add_ciphertext(std::span<const std::uint8_t> ciphertext) = 0;
  /// Feed ciphertexts.size() / block_size concatenated faulty ciphertexts
  /// in one call — the batched harvest loop's entry point. Equivalent to
  /// that many add_ciphertext() calls (the default does exactly that; PFA
  /// engines forward to their batched absorbers).
  virtual void add_ciphertext_batch(std::span<const std::uint8_t> ciphertexts,
                                    std::size_t block_size);
  /// Feed one (correct, faulty) pair. Returns false if the pair is
  /// inconsistent with the engine's fault model. Default: unsupported.
  virtual bool add_pair(std::span<const std::uint8_t> correct,
                        std::span<const std::uint8_t> faulty);

  virtual std::size_t ciphertext_count() const noexcept = 0;

  /// log2 of the key space still consistent with the data fed so far.
  virtual double remaining_keyspace_log2() const = 0;

  /// Attempt full master-key recovery; key bytes on success.
  virtual std::optional<std::vector<std::uint8_t>> recover_key() = 0;

  /// Brute-force candidates tried by the last successful recover_key()
  /// (PRESENT's <= 2^16 residual search; 0 elsewhere).
  virtual std::uint32_t residual_search() const noexcept { return 0; }

  virtual void reset() = 0;
};

/// Build the analysis engine for (kind, cipher, fault). Checks that the
/// combination is supported (kDfa and kPfaMaxLikelihood are AES-only).
std::unique_ptr<Analysis> make_analysis(AnalysisKind kind,
                                        const crypto::TableCipher& cipher,
                                        const FaultModel& fault);

}  // namespace explframe::fault
