// Persistent Fault Analysis of AES-128 (Zhang et al., TCHES 2018 — the
// paper's reference [12]).
//
// Fault model: one S-box entry is persistently corrupted, S*(i0) = v' != v.
// The value v then never appears at the output of the last-round SubBytes,
// so ciphertext byte j never takes the value v ^ K10_j; conversely v'
// appears roughly twice as often as any other value. Collecting ciphertexts
// of (unknown, varied) plaintexts therefore reveals K10 byte-by-byte:
//
//   missing-value:  K10_j = (the value absent from byte j)  ^ v
//   max-likelihood: K10_j = (the most frequent value)       ^ v'
//
// ExplFrame gives the attacker v and v' for free: templating reports the
// flipped page offset and bit, which identify the corrupted table entry.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/aes128.hpp"

namespace explframe::fault {

/// The two persistent-fault statistics the paper evaluates for AES.
enum class PfaStrategy {
  kMissingValue,   ///< Exact once all 256 values would otherwise be seen
                   ///< (~2.3K ciphertexts; the standard PFA statistic).
  kMaxLikelihood,  ///< Frequency peak at v'. A simpler statistic that does
                   ///< not need the absent value, but pinning all 16 peaks
                   ///< simultaneously takes more data (~10K+).
};

const char* to_string(PfaStrategy strategy) noexcept;

/// Persistent fault analysis on AES-128: a faulted S-box entry skews the
/// last-round byte distribution; missing-value (or frequency-peak)
/// tallies over ciphertexts recover the last round key. Tallies are
/// incremental so batch harvests stay O(bytes), not O(rescans).
class AesPfa {
 public:
  using Block = crypto::Aes128::Block;
  using RoundKey = crypto::Aes128::RoundKey;

  AesPfa() noexcept { reset(); }

  void add_ciphertext(const Block& c) noexcept;
  /// Absorb ciphertexts.size() / 16 concatenated blocks — the harvest
  /// loop's batched entry point (one call per chunk instead of per block).
  void add_ciphertext_batch(std::span<const std::uint8_t> ciphertexts) noexcept;
  std::size_t ciphertext_count() const noexcept { return count_; }
  void reset() noexcept;

  /// Candidate K10 bytes for each position. `v` is the vanished S-box
  /// output value; `v_new` its replacement (used by kMaxLikelihood).
  /// (Diagnostic full rescan; the recovery checks below read the
  /// incremental tallies instead.)
  std::array<std::vector<std::uint8_t>, 16> candidates(
      PfaStrategy strategy, std::uint8_t v, std::uint8_t v_new) const;

  /// log2 of the number of consistent K10 values (0 when unique;
  /// +inf-like 128.0 when some byte has no candidate yet). O(16) from the
  /// incremental zero/max tallies — not a rescan.
  double remaining_keyspace_log2(PfaStrategy strategy, std::uint8_t v,
                                 std::uint8_t v_new) const;

  /// The unique K10 if every byte has exactly one candidate. O(16) from the
  /// incremental tallies (amortized O(1) per harvested ciphertext).
  std::optional<RoundKey> recover_round10(PfaStrategy strategy, std::uint8_t v,
                                          std::uint8_t v_new) const;

  /// Full pipeline: K10 -> master key via inverse key schedule.
  std::optional<crypto::Aes128::Key> recover_master_key(
      PfaStrategy strategy, std::uint8_t v, std::uint8_t v_new) const;

  /// Frequency table of byte position j (diagnostics / bench output).
  const std::array<std::uint32_t, 256>& frequencies(std::size_t j) const {
    return freq_[j];
  }

 private:
  void absorb(const std::uint8_t* c) noexcept;

  std::array<std::array<std::uint32_t, 256>, 16> freq_{};
  std::size_t count_ = 0;
  // Incremental tallies, maintained per absorbed byte so the periodic key
  // checks never rescan the 16x256 frequency table:
  //   zero_count_[j]  — #values never seen at byte j (missing-value cands);
  //   zero_sum_[j]    — sum of those values (identifies THE zero when 1);
  //   max_count_[j]   — highest frequency at byte j;
  //   num_at_max_[j]  — #values tied at max (max-likelihood cands);
  //   argmax_[j]      — a value at max (unique iff num_at_max_[j] == 1).
  std::array<std::uint32_t, 16> zero_count_{};
  std::array<std::uint32_t, 16> zero_sum_{};
  std::array<std::uint32_t, 16> max_count_{};
  std::array<std::uint32_t, 16> num_at_max_{};
  std::array<std::uint8_t, 16> argmax_{};
};

}  // namespace explframe::fault
