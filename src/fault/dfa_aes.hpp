// Differential Fault Analysis of AES-128 (Piret–Quisquater style, round-9
// single-byte fault). Implemented as the *transient*-fault comparison point
// for EXP-T6: DFA needs pairs of (correct, faulty) ciphertexts of the SAME
// plaintext and a precisely timed fault; PFA (the paper's choice) needs
// only faulty ciphertexts of arbitrary unknown plaintexts — which is what a
// persistent Rowhammer flip naturally provides.
//
// Fault model: an unknown byte difference is injected into one state byte
// at the entry of round 9. After SubBytes/ShiftRows/MixColumns it spreads
// to one column; the last round scatters the column across 4 ciphertext
// bytes. For each hypothesis (faulted row r, post-SubBytes difference d)
// the column difference pattern is MC(d * e_r); inverting the final
// SubBytes per byte yields last-round-key candidates, and intersecting the
// candidate sets across pairs pins the four key bytes of the column.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "crypto/aes128.hpp"

namespace explframe::fault {

/// Differential fault analysis on AES-128: correct/faulty ciphertext
/// pairs under a known single-byte round-9 fault narrow the last round
/// key column by column.
class AesDfa {
 public:
  using Block = crypto::Aes128::Block;
  using RoundKey = crypto::Aes128::RoundKey;

  /// Add one (correct, faulty) ciphertext pair for the same plaintext.
  /// Returns false if the pair does not look like a single-column round-9
  /// fault (wrong number / pattern of differing bytes).
  bool add_pair(const Block& correct, const Block& faulty);

  std::size_t pairs_for_column(std::size_t col) const;

  /// Candidate 4-byte key tuples per column (in ciphertext-position order).
  const std::set<std::array<std::uint8_t, 4>>& column_candidates(
      std::size_t col) const {
    return cand_[col];
  }

  /// log2 of remaining K10 keyspace across all columns.
  double remaining_keyspace_log2() const;

  /// Unique K10 once every column has exactly one surviving tuple.
  std::optional<RoundKey> recover_round10() const;

  std::optional<crypto::Aes128::Key> recover_master_key() const;

  /// Ciphertext byte positions affected by a fault that lands in MC input
  /// column `col` of round 9 (row order 0..3).
  static std::array<std::size_t, 4> positions_for_column(std::size_t col);

 private:
  // cand_[col] = surviving tuples; empty set + seen_[col]==0 means "no data
  // yet"; empty set + seen_[col]>0 means contradiction.
  std::array<std::set<std::array<std::uint8_t, 4>>, 4> cand_{};
  std::array<std::size_t, 4> seen_{};
};

}  // namespace explframe::fault
