#include "fault/pfa_aes.hpp"

#include <cmath>
#include <cstdio>

#include "fault/injection.hpp"
#include "support/check.hpp"

namespace explframe::fault {

const char* to_string(PfaStrategy strategy) noexcept {
  switch (strategy) {
    case PfaStrategy::kMissingValue:
      return "missing-value";
    case PfaStrategy::kMaxLikelihood:
      return "max-likelihood";
  }
  return "?";
}

std::string describe(const SboxByteFault& fault) {
  // Direct formatting — this runs in logging/report paths, where the old
  // std::ostringstream (locale machinery + heap churn) was pure overhead.
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "S[0x%x] ^= 0x%x",
                              static_cast<unsigned>(fault.index),
                              static_cast<unsigned>(fault.mask));
  return std::string(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}

void AesPfa::absorb(const std::uint8_t* c) noexcept {
  for (std::size_t j = 0; j < 16; ++j) {
    const std::uint8_t t = c[j];
    const std::uint32_t f = ++freq_[j][t];
    if (f == 1) {
      --zero_count_[j];
      zero_sum_[j] -= t;
    }
    if (f > max_count_[j]) {
      max_count_[j] = f;
      num_at_max_[j] = 1;
      argmax_[j] = t;
    } else if (f == max_count_[j]) {
      ++num_at_max_[j];
    }
  }
  ++count_;
}

void AesPfa::add_ciphertext(const Block& c) noexcept { absorb(c.data()); }

void AesPfa::add_ciphertext_batch(
    std::span<const std::uint8_t> ciphertexts) noexcept {
  EXPLFRAME_CHECK(ciphertexts.size() % 16 == 0);
  for (std::size_t off = 0; off < ciphertexts.size(); off += 16)
    absorb(ciphertexts.data() + off);
}

void AesPfa::reset() noexcept {
  for (auto& f : freq_) f.fill(0);
  count_ = 0;
  zero_count_.fill(256);
  zero_sum_.fill(255 * 256 / 2);
  max_count_.fill(0);
  num_at_max_.fill(0);
  argmax_.fill(0);
}

std::array<std::vector<std::uint8_t>, 16> AesPfa::candidates(
    PfaStrategy strategy, std::uint8_t v, std::uint8_t v_new) const {
  std::array<std::vector<std::uint8_t>, 16> out;
  for (std::size_t j = 0; j < 16; ++j) {
    const auto& f = freq_[j];
    if (strategy == PfaStrategy::kMissingValue) {
      for (std::size_t t = 0; t < 256; ++t)
        if (f[t] == 0)
          out[j].push_back(static_cast<std::uint8_t>(t ^ v));
    } else {
      // All values tied for the maximum count are candidates; with enough
      // data only t = v' ^ K10_j (hit twice per SubBytes image) survives.
      const std::uint32_t best = max_count_[j];
      if (best == 0) continue;
      for (std::size_t t = 0; t < 256; ++t)
        if (f[t] == best)
          out[j].push_back(static_cast<std::uint8_t>(t ^ v_new));
    }
  }
  return out;
}

double AesPfa::remaining_keyspace_log2(PfaStrategy strategy, std::uint8_t /*v*/,
                                       std::uint8_t /*v_new*/) const {
  // Candidate-set sizes come straight off the incremental tallies; the XOR
  // with v / v_new permutes candidates without changing how many there are.
  double bits = 0.0;
  for (std::size_t j = 0; j < 16; ++j) {
    const std::uint32_t n = strategy == PfaStrategy::kMissingValue
                                ? zero_count_[j]
                                : num_at_max_[j];
    if (n == 0) return 128.0;  // No information yet for this byte.
    bits += std::log2(static_cast<double>(n));
  }
  return bits;
}

std::optional<AesPfa::RoundKey> AesPfa::recover_round10(
    PfaStrategy strategy, std::uint8_t v, std::uint8_t v_new) const {
  RoundKey key{};
  for (std::size_t j = 0; j < 16; ++j) {
    if (strategy == PfaStrategy::kMissingValue) {
      // Unique missing value: zero_sum_ then IS that value.
      if (zero_count_[j] != 1) return std::nullopt;
      key[j] = static_cast<std::uint8_t>(zero_sum_[j] ^ v);
    } else {
      if (max_count_[j] == 0 || num_at_max_[j] != 1) return std::nullopt;
      key[j] = static_cast<std::uint8_t>(argmax_[j] ^ v_new);
    }
  }
  return key;
}

std::optional<crypto::Aes128::Key> AesPfa::recover_master_key(
    PfaStrategy strategy, std::uint8_t v, std::uint8_t v_new) const {
  const auto k10 = recover_round10(strategy, v, v_new);
  if (!k10) return std::nullopt;
  return crypto::Aes128::master_key_from_round10(*k10);
}

}  // namespace explframe::fault
