#include "fault/pfa_aes.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "fault/injection.hpp"

namespace explframe::fault {

const char* to_string(PfaStrategy strategy) noexcept {
  switch (strategy) {
    case PfaStrategy::kMissingValue:
      return "missing-value";
    case PfaStrategy::kMaxLikelihood:
      return "max-likelihood";
  }
  return "?";
}

std::string describe(const SboxByteFault& fault) {
  std::ostringstream os;
  os << "S[0x" << std::hex << fault.index << "] ^= 0x"
     << static_cast<unsigned>(fault.mask);
  return os.str();
}

void AesPfa::add_ciphertext(const Block& c) noexcept {
  for (std::size_t j = 0; j < 16; ++j) ++freq_[j][c[j]];
  ++count_;
}

void AesPfa::reset() noexcept {
  for (auto& f : freq_) f.fill(0);
  count_ = 0;
}

std::array<std::vector<std::uint8_t>, 16> AesPfa::candidates(
    PfaStrategy strategy, std::uint8_t v, std::uint8_t v_new) const {
  std::array<std::vector<std::uint8_t>, 16> out;
  for (std::size_t j = 0; j < 16; ++j) {
    const auto& f = freq_[j];
    if (strategy == PfaStrategy::kMissingValue) {
      for (std::size_t t = 0; t < 256; ++t)
        if (f[t] == 0)
          out[j].push_back(static_cast<std::uint8_t>(t ^ v));
    } else {
      // All values tied for the maximum count are candidates; with enough
      // data only t = v' ^ K10_j (hit twice per SubBytes image) survives.
      std::uint32_t best = 0;
      for (const auto c : f) best = std::max(best, c);
      if (best == 0) continue;
      for (std::size_t t = 0; t < 256; ++t)
        if (f[t] == best)
          out[j].push_back(static_cast<std::uint8_t>(t ^ v_new));
    }
  }
  return out;
}

double AesPfa::remaining_keyspace_log2(PfaStrategy strategy, std::uint8_t v,
                                       std::uint8_t v_new) const {
  const auto cand = candidates(strategy, v, v_new);
  double bits = 0.0;
  for (const auto& c : cand) {
    if (c.empty()) return 128.0;  // No information yet for this byte.
    bits += std::log2(static_cast<double>(c.size()));
  }
  return bits;
}

std::optional<AesPfa::RoundKey> AesPfa::recover_round10(
    PfaStrategy strategy, std::uint8_t v, std::uint8_t v_new) const {
  const auto cand = candidates(strategy, v, v_new);
  RoundKey key{};
  for (std::size_t j = 0; j < 16; ++j) {
    if (cand[j].size() != 1) return std::nullopt;
    key[j] = cand[j][0];
  }
  return key;
}

std::optional<crypto::Aes128::Key> AesPfa::recover_master_key(
    PfaStrategy strategy, std::uint8_t v, std::uint8_t v_new) const {
  const auto k10 = recover_round10(strategy, v, v_new);
  if (!k10) return std::nullopt;
  return crypto::Aes128::master_key_from_round10(*k10);
}

}  // namespace explframe::fault
