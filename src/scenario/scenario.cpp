#include "scenario/scenario.hpp"

#include "support/units.hpp"

namespace explframe::scenario {

const char* to_string(Defence defence) noexcept {
  switch (defence) {
    case Defence::kNone:
      return "none";
    case Defence::kTrr:
      return "trr";
    case Defence::kEcc:
      return "ecc";
    case Defence::kTrrEcc:
      return "trr+ecc";
  }
  return "?";
}

std::optional<Defence> defence_from_string(const std::string& name) noexcept {
  if (name == "none") return Defence::kNone;
  if (name == "trr") return Defence::kTrr;
  if (name == "ecc") return Defence::kEcc;
  if (name == "trr+ecc") return Defence::kTrrEcc;
  return std::nullopt;
}

const char* to_string(WeakCellProfile profile) noexcept {
  switch (profile) {
    case WeakCellProfile::kQuiet:
      return "quiet";
    case WeakCellProfile::kRealistic:
      return "realistic";
    case WeakCellProfile::kVulnerable:
      return "vulnerable";
    case WeakCellProfile::kDense:
      return "dense";
  }
  return "?";
}

std::optional<WeakCellProfile> weak_cell_profile_from_string(
    const std::string& name) noexcept {
  if (name == "quiet") return WeakCellProfile::kQuiet;
  if (name == "realistic") return WeakCellProfile::kRealistic;
  if (name == "vulnerable") return WeakCellProfile::kVulnerable;
  if (name == "dense") return WeakCellProfile::kDense;
  return std::nullopt;
}

std::optional<crypto::CipherKind> cipher_from_string(
    const std::string& name) noexcept {
  if (name == "aes128") return crypto::CipherKind::kAes128;
  if (name == "present80") return crypto::CipherKind::kPresent80;
  return std::nullopt;
}

std::optional<fault::AnalysisKind> analysis_from_string(
    const std::string& name) noexcept {
  if (name == "pfa-missing-value") return fault::AnalysisKind::kPfaMissingValue;
  if (name == "pfa-max-likelihood")
    return fault::AnalysisKind::kPfaMaxLikelihood;
  if (name == "dfa") return fault::AnalysisKind::kDfa;
  return std::nullopt;
}

void apply_weak_cell_profile(WeakCellProfile profile,
                             kernel::SystemConfig& config) noexcept {
  switch (profile) {
    case WeakCellProfile::kQuiet:
      config.dram.weak_cells.cells_per_mib = 0.0;
      break;
    case WeakCellProfile::kRealistic:
      break;  // stock WeakCellParams: 4 cells/MiB, 60K-median thresholds
    case WeakCellProfile::kVulnerable:
    case WeakCellProfile::kDense:
      config.dram.weak_cells.cells_per_mib =
          profile == WeakCellProfile::kDense ? 512.0 : 128.0;
      config.dram.weak_cells.threshold_log_mean = 10.4;
      config.dram.weak_cells.threshold_min = 25'000;
      config.dram.weak_cells.threshold_max = 60'000;
      config.dram.data_pattern_sensitivity = false;
      break;
  }
}

namespace {

const char* cipher_scn_name(crypto::CipherKind kind) noexcept {
  return kind == crypto::CipherKind::kAes128 ? "aes128" : "present80";
}

const char* analysis_scn_name(fault::AnalysisKind kind) noexcept {
  switch (kind) {
    case fault::AnalysisKind::kPfaMissingValue:
      return "pfa-missing-value";
    case fault::AnalysisKind::kPfaMaxLikelihood:
      return "pfa-max-likelihood";
    case fault::AnalysisKind::kDfa:
      return "dfa";
  }
  return "?";
}

}  // namespace

attack::RunnerConfig Scenario::runner_config() const {
  attack::RunnerConfig cfg;
  cfg.trials = trials;
  cfg.threads = threads;
  cfg.seed = seed;

  cfg.system.memory_bytes = memory_mib * kMiB;
  cfg.system.num_cpus = 2;
  apply_weak_cell_profile(weak_cells, cfg.system);
  cfg.system.dram.trr.enabled =
      defence == Defence::kTrr || defence == Defence::kTrrEcc;
  cfg.system.dram.trr.threshold = trr_threshold;
  cfg.system.dram.ecc.enabled =
      defence == Defence::kEcc || defence == Defence::kTrrEcc;

  cfg.campaign.cipher = cipher;
  cfg.campaign.analysis = analysis;
  cfg.campaign.templating.buffer_bytes = buffer_mib * kMiB;
  cfg.campaign.templating.hammer_iterations = hammer_iterations;
  cfg.campaign.templating.max_rows = max_rows;
  cfg.campaign.templating.both_polarities = both_polarities;
  cfg.campaign.ciphertext_budget = ciphertext_budget;
  cfg.campaign.noise_ops = noise_ops;
  cfg.campaign.noise_cpu = 0;
  cfg.campaign.attacker_sleeps = attacker_sleeps;
  return cfg;
}

std::string Scenario::to_scn() const {
  KvFile kv;
  kv.set("name", name);
  kv.set("title", title);
  kv.set("description", description);
  kv.set("paper_ref", paper_ref);
  kv.set("cipher", cipher_scn_name(cipher));
  kv.set("analysis", analysis_scn_name(analysis));
  kv.set("defence", to_string(defence));
  kv.set("trr_threshold", std::to_string(trr_threshold));
  kv.set("weak_cells", to_string(weak_cells));
  kv.set("memory_mib", std::to_string(memory_mib));
  kv.set("trials", std::to_string(trials));
  kv.set("threads", std::to_string(threads));
  kv.set("seed", std::to_string(seed));
  kv.set("buffer_mib", std::to_string(buffer_mib));
  kv.set("hammer_iterations", std::to_string(hammer_iterations));
  kv.set("max_rows", std::to_string(max_rows));
  kv.set("both_polarities", both_polarities ? "true" : "false");
  kv.set("ciphertext_budget", std::to_string(ciphertext_budget));
  kv.set("noise_ops", std::to_string(noise_ops));
  kv.set("attacker_sleeps", attacker_sleeps ? "true" : "false");
  return kv.serialize();
}

std::optional<Scenario> Scenario::from_scn(const std::string& text,
                                           std::string* error) {
  const auto kv = KvFile::parse(text, error);
  if (!kv) return std::nullopt;

  const auto fail = [&](const std::string& what) {
    if (error) *error = what;
    return std::nullopt;
  };

  Scenario s;
  KvReader r(*kv);
  s.name = r.get_string("name", "");
  s.title = r.get_string("title", "");
  s.description = r.get_string("description", "");
  s.paper_ref = r.get_string("paper_ref", "");

  const std::string cipher_name =
      r.get_string("cipher", cipher_scn_name(s.cipher));
  if (const auto c = cipher_from_string(cipher_name); c)
    s.cipher = *c;
  else
    r.fail("cipher", "unknown cipher '" + cipher_name + "'");

  const std::string analysis_name =
      r.get_string("analysis", analysis_scn_name(s.analysis));
  if (const auto a = analysis_from_string(analysis_name); a)
    s.analysis = *a;
  else
    r.fail("analysis", "unknown analysis '" + analysis_name + "'");

  const std::string defence_name =
      r.get_string("defence", to_string(s.defence));
  if (const auto d = defence_from_string(defence_name); d)
    s.defence = *d;
  else
    r.fail("defence", "unknown defence '" + defence_name + "'");

  const std::string profile_name =
      r.get_string("weak_cells", to_string(s.weak_cells));
  if (const auto p = weak_cell_profile_from_string(profile_name); p)
    s.weak_cells = *p;
  else
    r.fail("weak_cells", "unknown weak-cell profile '" + profile_name + "'");

  s.trr_threshold = r.get_u32("trr_threshold", s.trr_threshold);
  s.memory_mib = r.get_u64("memory_mib", s.memory_mib);
  s.trials = r.get_u32("trials", s.trials);
  s.threads = r.get_u32("threads", s.threads);
  s.seed = r.get_u64("seed", s.seed);
  s.buffer_mib = r.get_u64("buffer_mib", s.buffer_mib);
  s.hammer_iterations = r.get_u64("hammer_iterations", s.hammer_iterations);
  s.max_rows = r.get_u64("max_rows", s.max_rows);
  s.both_polarities = r.get_bool("both_polarities", s.both_polarities);
  s.ciphertext_budget = r.get_u32("ciphertext_budget", s.ciphertext_budget);
  s.noise_ops = r.get_u32("noise_ops", s.noise_ops);
  s.attacker_sleeps = r.get_bool("attacker_sleeps", s.attacker_sleeps);

  if (const auto err = r.finish()) return fail(*err);

  // Semantic validation — the constraints ExplFrameCampaign would otherwise
  // CHECK-fail on mid-run, surfaced as parse errors instead.
  if (s.name.empty() || !KvFile::valid_key(s.name))
    return fail("key 'name': missing or not a valid identifier");
  if (s.title.empty()) return fail("key 'title': missing");
  if (s.trials == 0) return fail("key 'trials': must be >= 1");
  if (s.memory_mib == 0) return fail("key 'memory_mib': must be >= 1");
  if (s.buffer_mib == 0 || s.buffer_mib >= s.memory_mib)
    return fail("key 'buffer_mib': must be in [1, memory_mib)");
  if (s.analysis == fault::AnalysisKind::kDfa)
    return fail(
        "key 'analysis': dfa needs transient (correct, faulty) pairs; the "
        "persistent-fault campaign cannot drive it");
  if (s.analysis == fault::AnalysisKind::kPfaMaxLikelihood &&
      s.cipher != crypto::CipherKind::kAes128)
    return fail("key 'analysis': pfa-max-likelihood is AES-only");
  return s;
}

}  // namespace explframe::scenario
