// scenario::DebugSession — time-travel debugging for one campaign trial.
//
// `explsim debug <scenario>` reproduces exactly one trial of a registered
// scenario (the same per-trial seed derivation CampaignRunner uses) and
// then executes the post-templating attack one *event* at a time — plant,
// noise (when configured), steer, hammer, harvest — capturing a machine
// snapshot after every step onto a snap::Timeline. Because restores are
// exact, the session can rewind to any earlier event and replay, and every
// replay is bit-identical: the debugger observes the same attack the
// campaign runner reports, never a perturbed one.
//
// The headline query is bisect_flip(byte): restore the post-steer layer
// and binary-search the hammer iteration count for the first iteration at
// which the chosen victim-table byte leaves its canonical value — i.e.
// pinpoint the exact event that corrupts the byte — then restore the
// session to where the user was standing.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/campaign.hpp"
#include "attack/campaign_runner.hpp"
#include "scenario/scenario.hpp"
#include "snapshot/timeline.hpp"

namespace explframe::scenario {

/// One interactive debugging session over one (scenario, trial) pair. The
/// session owns its simulated machine; constructing it runs setup and
/// templating (the part `rewind` cannot cross — layer 0 is post-template).
class DebugSession {
 public:
  /// Builds trial `trial`'s machine and runs templating on it.
  DebugSession(const Scenario& scenario, std::uint32_t trial);

  /// Post-templating event names in execution order ("plant", "noise" when
  /// the scenario configures contention, "steer", "hammer", "harvest").
  const std::vector<std::string>& events() const noexcept { return events_; }
  /// Events executed so far (== snapshot layers above the base layer).
  std::size_t position() const noexcept { return position_; }
  /// True once every event ran (or templating found nothing to attack).
  bool done() const noexcept { return position_ == events_.size(); }
  /// Whether templating produced an attackable flip at all.
  bool template_found() const noexcept;

  /// Execute the next event, push a snapshot layer, return a one-line
  /// human description of what happened. CHECK-fails when done().
  std::string step();
  /// Step until just after the event named `name`. Nullopt + `error` when
  /// the name is unknown or already behind the current position.
  bool run_until(const std::string& name, std::string* error);
  /// Rewind `count` events (snapshot-exact). False + `error` when count
  /// exceeds the current position.
  bool rewind(std::size_t count, std::string* error);

  /// Multi-line position + report-so-far summary.
  std::string status() const;

  /// Binary-search the first hammer iteration that corrupts victim-table
  /// byte `byte_index` (restoring the post-steer layer for every probe,
  /// then restoring the caller's position). Requires the steer event to
  /// have executed; nullopt + `error` otherwise, or when the byte never
  /// leaves its canonical value within the scenario's hammer budget.
  std::optional<std::string> bisect_flip(std::uint32_t byte_index,
                                         std::string* error);

  /// The report as accumulated by the events executed so far.
  const attack::CampaignReport& report() const noexcept {
    return reports_[position_];
  }

 private:
  // Per-event executors; each mutates `report` exactly as the matching
  // slice of TemplatedCampaign::run_fork would.
  void do_plant(attack::CampaignReport& report);
  void do_noise(attack::CampaignReport& report);
  void do_steer(attack::CampaignReport& report);
  void do_hammer(attack::CampaignReport& report);
  void do_harvest(attack::CampaignReport& report);

  /// Timeline index of the layer captured after event `name` (layer 0 is
  /// "post-template"); nullopt when that event has not executed.
  std::optional<std::size_t> layer_of(const std::string& name) const;

  std::string scenario_name_;
  std::uint32_t trial_ = 0;
  attack::RunnerConfig runner_;       ///< The lowered scenario.
  attack::CampaignConfig campaign_cfg_;  ///< With the derived trial seed.
  std::unique_ptr<kernel::System> system_;
  std::unique_ptr<attack::TemplatedCampaign> campaign_;
  std::unique_ptr<snap::Timeline> timeline_;
  std::vector<std::string> events_;
  /// reports_[i] is the report after i events (parallel to the timeline's
  /// layers), so a rewind restores the report alongside the machine.
  std::vector<attack::CampaignReport> reports_;
  std::size_t position_ = 0;
};

/// Outcome of one REPL command line (see execute_debug_command).
struct DebugCommandOutcome {
  /// What the line was: a command that ran, a rejected line (unknown
  /// command / bad arguments — `output` holds a non-empty diagnostic), a
  /// quit request, or whitespace to ignore.
  enum class Kind { kOk, kError, kQuit, kEmpty };
  Kind kind = Kind::kOk;
  /// Human-readable result (step lines, status, help, or the error text).
  std::string output;
};

/// Parse and execute one `explsim debug` REPL line against `session`.
/// This IS the REPL command parser (the explsim binary is a thin
/// print/readline wrapper around it), factored into the library so it can
/// be property-tested: it never throws or crashes on arbitrary input, and
/// every rejected line yields Kind::kError with a non-empty diagnostic.
DebugCommandOutcome execute_debug_command(DebugSession& session,
                                          const std::string& line);

}  // namespace explframe::scenario
