#include "scenario/debug.hpp"

#include <algorithm>
#include <sstream>

#include "kernel/noise.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/units.hpp"

namespace explframe::scenario {

namespace {

std::string hex_byte(std::uint8_t value) {
  static const char* digits = "0123456789abcdef";
  return std::string("0x") + digits[value >> 4] + std::string(1, digits[value & 0xf]);
}

std::string yes_no(bool value) { return value ? "yes" : "no"; }

}  // namespace

DebugSession::DebugSession(const Scenario& scenario, std::uint32_t trial)
    : scenario_name_(scenario.name),
      trial_(trial),
      runner_(scenario.runner_config()) {
  // Exactly CampaignRunner::run_trial's machine: same derived seed pair,
  // fresh System, templating run by the TemplatedCampaign constructor.
  const auto [system_seed, campaign_seed] =
      attack::CampaignRunner::trial_seeds(runner_.seed, trial);
  kernel::SystemConfig sys_cfg = runner_.system;
  sys_cfg.seed = system_seed;
  system_ = std::make_unique<kernel::System>(sys_cfg);
  campaign_cfg_ = runner_.campaign;
  campaign_cfg_.seed = campaign_seed;
  // The timeline owns all snapshots here, so the campaign takes none.
  campaign_ = std::make_unique<attack::TemplatedCampaign>(
      *system_, campaign_cfg_, /*take_snapshot=*/false);
  timeline_ = std::make_unique<snap::Timeline>(*system_);
  timeline_->push("post-template");
  reports_.push_back(campaign_->template_result());
  if (reports_.front().template_found) {
    events_.push_back("plant");
    if (campaign_cfg_.noise_ops > 0) events_.push_back("noise");
    events_.push_back("steer");
    events_.push_back("hammer");
    events_.push_back("harvest");
  }
}

bool DebugSession::template_found() const noexcept {
  return reports_.front().template_found;
}

std::optional<std::size_t> DebugSession::layer_of(
    const std::string& name) const {
  for (std::size_t i = 0; i < timeline_->size(); ++i)
    if (timeline_->label(i) == name) return i;
  return std::nullopt;
}

void DebugSession::do_plant(attack::CampaignReport& report) {
  kernel::Task& attacker = campaign_->attacker();
  report.planted_pfn = system_->translate(attacker, report.chosen.page_va);
  EXPLFRAME_CHECK(report.planted_pfn != mm::kInvalidPfn);
  system_->sys_munmap(attacker, report.chosen.page_va, kPageSize);
}

void DebugSession::do_noise(attack::CampaignReport& report) {
  (void)report;
  kernel::Task& attacker = campaign_->attacker();
  kernel::Task& noisy = system_->spawn("noise", campaign_cfg_.noise_cpu);
  kernel::NoiseWorkload noise(*system_, noisy, {}, campaign_->noise_seed());
  if (campaign_cfg_.attacker_sleeps)
    attacker.set_state(kernel::TaskState::kSleeping);
  noise.run(campaign_cfg_.noise_ops);
  if (campaign_cfg_.attacker_sleeps)
    attacker.set_state(kernel::TaskState::kRunnable);
}

void DebugSession::do_steer(attack::CampaignReport& report) {
  attack::VictimCipherService& victim = campaign_->victim();
  victim.install_tables();
  report.victim_table_pfn =
      system_->translate(victim.task(), victim.table_page_va());
  report.steered = report.victim_table_pfn == report.planted_pfn;
}

void DebugSession::do_hammer(attack::CampaignReport& report) {
  const crypto::TableCipher& cipher = campaign_->cipher();
  campaign_->templater().hammer_aggressors(report.chosen);
  report.fault_injected = campaign_->victim().table_corrupted();
  if (report.fault_injected) {
    const auto table = campaign_->victim().read_table();
    const auto canonical = cipher.canonical_table();
    std::uint32_t live_diffs = 0;
    for (std::size_t i = 0; i < table.size(); ++i) {
      const std::uint8_t live = cipher.live_bits(i);
      if ((table[i] & live) != (canonical[i] & live)) ++live_diffs;
    }
    report.fault_as_predicted =
        live_diffs == 1 &&
        (table[report.table_index] & cipher.live_bits(report.table_index)) ==
            campaign_->fault_model().v_new;
  }
}

void DebugSession::do_harvest(attack::CampaignReport& report) {
  // Mirrors run_fork's early return: a failed steer or injection leaves
  // nothing to harvest.
  if (!report.steered || !report.fault_injected) return;
  const crypto::TableCipher& cipher = campaign_->cipher();
  attack::VictimCipherService& victim = campaign_->victim();
  auto analysis = fault::make_analysis(campaign_cfg_.analysis, cipher,
                                       campaign_->fault_model());
  Rng rng(campaign_->plaintext_seed());
  const std::size_t block = cipher.block_size();
  const std::size_t table_size = cipher.table_size();
  std::vector<std::uint8_t> pt(block);
  std::vector<std::uint8_t> ct(block);
  if (analysis->wants_known_pair()) {
    rng.fill_bytes(pt);
    victim.encrypt(pt, ct);
    analysis->set_known_pair(pt, ct);
  }
  std::uint32_t check_interval = campaign_cfg_.analysis_check_interval;
  if (check_interval == 0) check_interval = table_size >= 256 ? 256 : 25;
  // The per-call harvest loop (byte-identical to the batched fast path;
  // single stepping has no batching to amortize).
  for (std::uint32_t i = 0; i < campaign_cfg_.ciphertext_budget; ++i) {
    rng.fill_bytes(pt);
    victim.encrypt(pt, ct);
    analysis->add_ciphertext(ct);
    if ((i + 1) % check_interval == 0 ||
        i + 1 == campaign_cfg_.ciphertext_budget) {
      if (auto key = analysis->recover_key()) {
        report.key_recovered = true;
        report.recovered_key = std::move(*key);
        report.residual_search = analysis->residual_search();
        report.ciphertexts_used = i + 1;
        break;
      }
    }
  }
  if (!report.key_recovered)
    report.ciphertexts_used = campaign_cfg_.ciphertext_budget;
  report.success =
      report.key_recovered && report.recovered_key == report.victim_key;
}

std::string DebugSession::step() {
  EXPLFRAME_CHECK_MSG(!done(), "debug session has no events left to step");
  const std::string name = events_[position_];
  attack::CampaignReport report = reports_[position_];
  std::ostringstream out;
  if (name == "plant") {
    do_plant(report);
    out << "plant: munmapped attacker page, frame pfn=" << report.planted_pfn
        << " now heads the per-cpu cache";
  } else if (name == "noise") {
    do_noise(report);
    out << "noise: ran " << campaign_cfg_.noise_ops
        << " contention ops (attacker "
        << (campaign_cfg_.attacker_sleeps ? "sleeping" : "active") << ")";
  } else if (name == "steer") {
    do_steer(report);
    out << "steer: victim table landed on pfn=" << report.victim_table_pfn
        << " (planted pfn=" << report.planted_pfn
        << ") -> steered=" << yes_no(report.steered);
  } else if (name == "hammer") {
    do_hammer(report);
    out << "hammer: re-hammered aggressors for "
        << campaign_cfg_.templating.hammer_iterations
        << " iterations -> fault_injected=" << yes_no(report.fault_injected)
        << ", as_predicted=" << yes_no(report.fault_as_predicted);
  } else {
    do_harvest(report);
    if (!report.steered || !report.fault_injected)
      out << "harvest: skipped (steering or fault injection already failed)";
    else
      out << "harvest: " << report.ciphertexts_used
          << " ciphertexts -> key_recovered=" << yes_no(report.key_recovered)
          << ", success=" << yes_no(report.success);
  }
  report.total_time = system_->now() - campaign_->start_time();
  ++position_;
  timeline_->push(name);
  reports_.push_back(std::move(report));
  return out.str();
}

bool DebugSession::run_until(const std::string& name, std::string* error) {
  const auto it = std::find(events_.begin(), events_.end(), name);
  if (it == events_.end()) {
    if (error) *error = "unknown event '" + name + "'";
    return false;
  }
  const std::size_t target =
      static_cast<std::size_t>(it - events_.begin()) + 1;
  if (target <= position_) {
    if (error)
      *error = "event '" + name + "' already executed (rewind to replay it)";
    return false;
  }
  while (position_ < target) step();
  return true;
}

bool DebugSession::rewind(std::size_t count, std::string* error) {
  if (count > position_) {
    if (error)
      *error = "cannot rewind " + std::to_string(count) + " event(s); only " +
               std::to_string(position_) + " executed";
    return false;
  }
  position_ -= count;
  timeline_->rewind_to(position_);
  reports_.resize(position_ + 1);
  return true;
}

std::string DebugSession::status() const {
  const attack::CampaignReport& r = report();
  std::ostringstream out;
  out << "scenario " << scenario_name_ << ", trial " << trial_ << "\n";
  if (!template_found()) {
    out << "templating found no usable flip (" << r.rows_scanned
        << " rows scanned); nothing to debug\n";
    return out.str();
  }
  out << "template: flip at page offset " << r.chosen.offset << " bit "
      << int(r.chosen.bit) << " -> table index " << r.table_index << "\n"
      << "position: " << position_ << "/" << events_.size()
      << " events executed\n";
  for (std::size_t i = 0; i < events_.size(); ++i)
    out << "  [" << (i < position_ ? 'x' : ' ') << "] " << events_[i] << "\n";
  out << "report so far: steered=" << yes_no(r.steered)
      << ", fault_injected=" << yes_no(r.fault_injected)
      << ", key_recovered=" << yes_no(r.key_recovered)
      << ", success=" << yes_no(r.success) << ", sim time="
      << static_cast<double>(r.total_time) / kSecond << " s\n";
  return out.str();
}

std::optional<std::string> DebugSession::bisect_flip(std::uint32_t byte_index,
                                                     std::string* error) {
  const auto fail = [&](const std::string& what) -> std::optional<std::string> {
    if (error) *error = what;
    return std::nullopt;
  };
  const crypto::TableCipher& cipher = campaign_->cipher();
  if (byte_index >= cipher.table_size())
    return fail("byte index out of range (table has " +
                std::to_string(cipher.table_size()) + " bytes)");
  const auto steer_layer = layer_of("steer");
  if (!steer_layer)
    return fail("the steer event has not executed yet; run-until steer first");

  const std::uint8_t canonical = cipher.canonical_table()[byte_index];
  const std::uint8_t live = cipher.live_bits(byte_index);
  const attack::FlipRecord& chosen = reports_.front().chosen;
  // Each probe replays from the post-steer layer with a partial hammer
  // budget and reads the victim byte; restores are exact, so probes are
  // independent and the search is deterministic.
  const auto probe = [&](std::uint64_t iterations) {
    timeline_->restore_only(*steer_layer);
    campaign_->templater().hammer_aggressors(chosen, iterations);
    return campaign_->victim().read_table()[byte_index];
  };
  const auto corrupted = [&](std::uint8_t value) {
    return ((value ^ canonical) & live) != 0;
  };

  const std::uint64_t budget = campaign_cfg_.templating.hammer_iterations;
  const std::uint8_t at_budget = probe(budget);
  if (!corrupted(at_budget)) {
    timeline_->restore_only(position_);
    return fail("table byte " + std::to_string(byte_index) +
                " keeps its canonical value " + hex_byte(canonical) +
                " within the hammer budget of " + std::to_string(budget) +
                " iterations");
  }
  // Monotone threshold crossing: below the weak cell's activation
  // threshold nothing flips, above it the flip persists — binary-search
  // the first corrupting iteration count.
  std::uint64_t lo = 1;
  std::uint64_t hi = budget;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (corrupted(probe(mid)))
      hi = mid;
    else
      lo = mid + 1;
  }
  const std::uint8_t value = probe(lo);
  timeline_->restore_only(position_);

  std::ostringstream out;
  out << "first corrupting event: hammer iteration " << lo << " of " << budget
      << " flips table byte " << byte_index << " from " << hex_byte(canonical)
      << " to " << hex_byte(value) << " (bits ";
  bool first = true;
  for (int b = 0; b < 8; ++b) {
    if ((((value ^ canonical) & live) >> b) & 1) {
      if (!first) out << ",";
      out << b;
      first = false;
    }
  }
  out << ")";
  return out.str();
}

DebugCommandOutcome execute_debug_command(DebugSession& session,
                                          const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  std::string error;
  std::ostringstream out;
  const auto ok = [&] {
    return DebugCommandOutcome{DebugCommandOutcome::Kind::kOk, out.str()};
  };
  const auto reject = [](std::string what) {
    // The parser's reject contract: NEVER an empty diagnostic.
    EXPLFRAME_CHECK(!what.empty());
    return DebugCommandOutcome{DebugCommandOutcome::Kind::kError,
                               std::move(what)};
  };

  if (cmd.empty())
    return {DebugCommandOutcome::Kind::kEmpty, {}};
  if (cmd == "quit" || cmd == "exit" || cmd == "q")
    return {DebugCommandOutcome::Kind::kQuit, {}};
  if (cmd == "help") {
    out << "  step [n]           execute the next n events (default 1)\n"
           "  run-until <event>  execute up to and including <event>\n"
           "  rewind [n]         undo the last n events (snapshot restore, "
           "default 1)\n"
           "  bisect-flip <byte> first hammer iteration corrupting that "
           "table byte\n"
           "  status             position and report so far\n"
           "  events             the event list\n"
           "  quit               leave the debugger\n";
    return ok();
  }
  if (cmd == "status") {
    out << session.status();
    return ok();
  }
  if (cmd == "events") {
    for (std::size_t i = 0; i < session.events().size(); ++i)
      out << "  [" << (i < session.position() ? 'x' : ' ') << "] "
          << session.events()[i] << "\n";
    return ok();
  }
  if (cmd == "step") {
    std::uint64_t n = 1;
    in >> n;
    for (std::uint64_t i = 0; i < n && !session.done(); ++i)
      out << session.step() << "\n";
    if (session.done()) out << "(end of trial)\n";
    return ok();
  }
  if (cmd == "run-until") {
    std::string event;
    in >> event;
    if (!session.run_until(event, &error)) return reject(error);
    out << session.status();
    return ok();
  }
  if (cmd == "rewind") {
    std::uint64_t n = 1;
    in >> n;
    if (!session.rewind(n, &error)) return reject(error);
    out << "rewound to " << session.position() << "/"
        << session.events().size() << " events executed\n";
    return ok();
  }
  if (cmd == "bisect-flip") {
    std::uint32_t byte_index = 0;
    if (!(in >> byte_index)) return reject("usage: bisect-flip <byte-index>");
    const auto found = session.bisect_flip(byte_index, &error);
    if (!found) return reject(error);
    out << *found << "\n";
    return ok();
  }
  return reject("unknown command '" + cmd + "' (try: help)");
}

}  // namespace explframe::scenario
