// scenario::report — run a Scenario and render the reproduction handbook.
//
// Every emitter here is *byte-stable*: for a fixed scenario (seed included)
// the markdown and CSV output is identical across runs, thread counts and
// machines, because it contains only simulation-derived values — never
// wall-clock time, hostnames or dates. That is what lets CI regenerate
// docs/results/ with `explsim all --check` and fail on any byte of drift.
#pragma once

#include <string>
#include <vector>

#include "attack/campaign_runner.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

namespace explframe::scenario {

/// A scenario together with its sweep outcome.
struct ScenarioResult {
  Scenario scenario;
  attack::CampaignAggregate aggregate;
};

/// Execute `s` through CampaignRunner. `threads_override` (0 = use the
/// scenario's own thread count) changes wall-clock time only.
ScenarioResult run_scenario(const Scenario& s,
                            std::uint32_t threads_override = 0);

/// The per-scenario markdown report (docs/results/<name>.md): description,
/// canonical .scn configuration, phase-outcome table, aggregate statistics
/// and the failure-stage breakdown.
std::string markdown_report(const ScenarioResult& result);

/// The per-scenario per-trial CSV (docs/results/<name>.csv): one row per
/// trial with every CampaignReport field the tables aggregate.
std::string csv_report(const ScenarioResult& result);

/// The handbook index (docs/results/README.md): one summary row per
/// scenario, in registry order.
std::string markdown_index(const std::vector<ScenarioResult>& results);

}  // namespace explframe::scenario
