#include "scenario/registry.hpp"

#include "support/check.hpp"

namespace explframe::scenario {

void Registry::add(Scenario s) {
  EXPLFRAME_CHECK_MSG(KvFile::valid_key(s.name),
                      "scenario name must be a valid identifier");
  EXPLFRAME_CHECK_MSG(find(s.name) == nullptr, "duplicate scenario name");
  scenarios_.push_back(std::move(s));
}

const Scenario* Registry::find(const std::string& name) const noexcept {
  for (const Scenario& s : scenarios_)
    if (s.name == name) return &s;
  return nullptr;
}

namespace {

Registry make_builtin() {
  Registry reg;

  {
    Scenario s;
    s.name = "quickstart";
    s.title = "One end-to-end ExplFrame attack on AES-128";
    s.description =
        "The README front door: a single trial on a small vulnerable DDR3 "
        "module — template a flip, plant the frame, steer the victim's "
        "S-box onto it, re-hammer, harvest faulty ciphertexts and recover "
        "the full key with PFA.";
    s.paper_ref = "SV-SVI (pipeline overview)";
    s.trials = 1;
    s.threads = 1;
    s.seed = 3;
    reg.add(s);
  }

  {
    Scenario s;
    s.name = "aes-single-flip";
    s.title = "Single-flip PFA key recovery on AES-128 (headline)";
    s.description =
        "The paper's headline experiment: 12 independent machines, one "
        "templated bit flip each, steered into the victim's AES T-table "
        "page; persistent fault analysis recovers the 128-bit master key "
        "from a few thousand faulty ciphertexts.";
    s.paper_ref = "SVI, Table 2 (EXP-T4)";
    s.trials = 12;
    s.seed = 100;
    reg.add(s);
  }

  {
    Scenario s;
    s.name = "present-single-flip";
    s.title = "Single-flip PFA key recovery on PRESENT-80";
    s.description =
        "The title's 'block cipherS': the same campaign against PRESENT-80. "
        "The 16-byte table window (4 live bits per entry) needs a denser "
        "weak-cell module and a longer template scan, but once the fault "
        "lands PFA needs only ~100 ciphertexts plus a <=2^16 residual "
        "key-schedule search.";
    s.paper_ref = "SVI (EXP-T7)";
    s.cipher = crypto::CipherKind::kPresent80;
    s.weak_cells = WeakCellProfile::kDense;
    s.trials = 8;
    s.seed = 700;
    s.ciphertext_budget = 2000;
    reg.add(s);
  }

  {
    Scenario s;
    s.name = "aes-pfa-frequency-peak";
    s.title = "Frequency-peak PFA statistic claims keys too early";
    s.description =
        "Negative result: the simpler max-likelihood statistic (rank key "
        "bytes by the frequency peak the doubled S-box output creates) "
        "yields a full 16-byte candidate as soon as every argmax is unique "
        "— thousands of ciphertexts before the peaks are reliable. At the "
        "same harvest budget where missing-value succeeds, every trial "
        "here ends in key-mismatch, which is why the pipeline defaults to "
        "the missing-value statistic.";
    s.paper_ref = "SVI (PFA variant, ref [12])";
    s.analysis = fault::AnalysisKind::kPfaMaxLikelihood;
    s.trials = 8;
    s.seed = 210;
    reg.add(s);
  }

  // ---- Defence ablation: one knob per scenario, same seeds/budgets so the
  // four reports read as one table.
  const auto defence_scenario = [](Defence defence) {
    Scenario s;
    s.defence = defence;
    s.trials = 6;
    s.seed = 300;
    s.max_rows = 192;  // the attacker's row budget: give up, don't stall
    s.paper_ref = "SVII (countermeasure discussion, EXP-D1)";
    return s;
  };
  {
    Scenario s = defence_scenario(Defence::kNone);
    s.name = "defence-none";
    s.title = "Defence ablation baseline (no mitigation)";
    s.description =
        "Control row of the defence ablation: the vulnerable module with "
        "neither TRR nor ECC, under the same per-trial seeds and attacker "
        "budget as the mitigated runs.";
    reg.add(s);
  }
  {
    Scenario s = defence_scenario(Defence::kTrr);
    s.name = "defence-trr";
    s.title = "ExplFrame vs in-DRAM target row refresh";
    s.description =
        "TRR refreshes the neighbours of frequently-activated rows before "
        "any weak cell crosses its disturbance threshold, so templating "
        "finds nothing to plant — the attack dies in phase 1.";
    reg.add(s);
  }
  {
    Scenario s = defence_scenario(Defence::kEcc);
    s.name = "defence-ecc";
    s.title = "ExplFrame vs SECDED ECC";
    s.description =
        "Single-bit-correcting ECC repairs the flip on every read: the "
        "template scan sees clean data, and even a planted flip would be "
        "corrected when the victim loads its S-box.";
    reg.add(s);
  }
  {
    Scenario s = defence_scenario(Defence::kTrrEcc);
    s.name = "defence-trr-ecc";
    s.title = "ExplFrame vs TRR and ECC combined";
    s.description =
        "Server-grade configuration: both mitigations enabled. Either alone "
        "already stops the single-flip attack; together they leave no "
        "usable template at all.";
    reg.add(s);
  }

  // ---- Templating-cost sweep: same seeds, only the row budget moves.
  {
    Scenario s;
    s.name = "templating-budget-tight";
    s.title = "Templating cost: 64-row attacker budget";
    s.description =
        "How much templating the attack needs: the attacker gives up after "
        "64 hammered candidate rows. Compare with "
        "templating-budget-generous (same seeds, unbounded scan) to read "
        "off the success probability the budget buys.";
    s.paper_ref = "SVI (templating cost discussion, EXP-T8)";
    s.trials = 8;
    s.seed = 420;
    s.max_rows = 64;
    reg.add(s);
  }
  {
    Scenario s;
    s.name = "templating-budget-generous";
    s.title = "Templating cost: unbounded scan";
    s.description =
        "The other end of the templating-cost sweep: one full pass over the "
        "attack buffer with no row budget, same per-trial seeds as "
        "templating-budget-tight.";
    s.paper_ref = "SVI (templating cost discussion, EXP-T8)";
    s.trials = 8;
    s.seed = 420;
    s.max_rows = 0;
    reg.add(s);
  }

  {
    Scenario s;
    s.name = "contended-sleepy-attacker";
    s.title = "Failure mode: attacker sleeps through the plant window";
    s.description =
        "The pitfall the paper warns about: after releasing the vulnerable "
        "frame the attacker yields the CPU while a noisy task allocates. "
        "The noise consumes the planted frame from the page frame cache "
        "head, so the victim's table lands elsewhere and steering fails.";
    s.paper_ref = "SV-C (attack window discussion, EXP-A1)";
    s.trials = 8;
    s.seed = 500;
    s.noise_ops = 8;
    s.attacker_sleeps = true;
    reg.add(s);
  }

  return reg;
}

}  // namespace

const Registry& Registry::builtin() {
  static const Registry registry = make_builtin();
  return registry;
}

const Scenario& builtin_scenario(const std::string& name) {
  const Scenario* s = Registry::builtin().find(name);
  EXPLFRAME_CHECK_MSG(s != nullptr, "no such built-in scenario");
  return *s;
}

}  // namespace explframe::scenario
