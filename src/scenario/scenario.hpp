// scenario::Scenario — one declaratively-configured experiment.
//
// The paper is an experiment *suite*: cipher (AES-128 / PRESENT-80) ×
// hardware defence (none / TRR / ECC / TRR+ECC) × DRAM weak-cell profile ×
// attacker budgets × trial counts. A Scenario captures one such point as
// plain data: it lowers to the attack::RunnerConfig that CampaignRunner
// executes, and round-trips losslessly through the flat `.scn` key=value
// text format (support/config.hpp), so every registered experiment is also
// a diffable, user-editable file.
//
// Determinism contract: a Scenario fully determines its results. Everything
// stochastic derives from `seed` via CampaignRunner's per-trial seed
// derivation; `threads` only changes wall-clock time, never a reported
// number.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "attack/campaign_runner.hpp"
#include "crypto/table_cipher.hpp"
#include "fault/analysis.hpp"
#include "support/config.hpp"

namespace explframe::scenario {

/// Hardware Rowhammer mitigation configuration of the simulated module.
enum class Defence {
  kNone,    ///< Baseline vulnerable part.
  kTrr,     ///< In-DRAM target row refresh.
  kEcc,     ///< SECDED ECC (single-bit correction on read).
  kTrrEcc,  ///< Both.
};

/// Canonical name ("none" | "trr" | "ecc" | "trr+ecc").
const char* to_string(Defence defence) noexcept;
/// Inverse of to_string; nullopt on an unknown name.
std::optional<Defence> defence_from_string(const std::string& name) noexcept;

/// Named weak-cell population presets (the bench/common.hpp triad plus the
/// denser module PRESENT's 16-byte table window needs).
enum class WeakCellProfile {
  kQuiet,       ///< No weak cells (allocator-only experiments).
  kRealistic,   ///< Typical DDR3 part (4 cells/MiB, stock thresholds).
  kVulnerable,  ///< Highly vulnerable part, weakened thresholds (EXP-T4).
  kDense,       ///< 4x vulnerable density (PRESENT experiments, EXP-T7).
};

/// Canonical name ("quiet" | "realistic" | "vulnerable" | "dense").
const char* to_string(WeakCellProfile profile) noexcept;
/// Inverse of to_string; nullopt on an unknown name.
std::optional<WeakCellProfile> weak_cell_profile_from_string(
    const std::string& name) noexcept;

/// Overwrite `config`'s DRAM weak-cell population (and the coupled
/// data-pattern-sensitivity flag) with the preset. The single source of
/// these constants — bench/common.hpp's canned systems delegate here.
void apply_weak_cell_profile(WeakCellProfile profile,
                             kernel::SystemConfig& config) noexcept;

/// Canonical cipher name ("aes128" | "present80") for `.scn` files.
std::optional<crypto::CipherKind> cipher_from_string(
    const std::string& name) noexcept;

/// Canonical analysis name ("pfa-missing-value" | "pfa-max-likelihood" |
/// "dfa") for `.scn` files.
std::optional<fault::AnalysisKind> analysis_from_string(
    const std::string& name) noexcept;

/// One named, fully-declarative experiment. Field defaults are the values
/// omitted from a minimal `.scn` file; `name` and `title` are mandatory.
struct Scenario {
  // ---- Identity (the handbook entry) ----
  std::string name;         ///< Registry key, kebab-case, unique.
  std::string title;        ///< One-line human title.
  std::string description;  ///< One-paragraph handbook description.
  std::string paper_ref;    ///< Paper section/table this reproduces.

  // ---- The attack ----
  crypto::CipherKind cipher = crypto::CipherKind::kAes128;
  fault::AnalysisKind analysis = fault::AnalysisKind::kPfaMissingValue;

  // ---- The machine ----
  Defence defence = Defence::kNone;
  std::uint32_t trr_threshold = 12'000;  ///< TRR activation threshold.
  WeakCellProfile weak_cells = WeakCellProfile::kVulnerable;
  std::uint64_t memory_mib = 64;

  // ---- Sweep shape ----
  std::uint32_t trials = 8;
  std::uint32_t threads = 2;  ///< Wall-clock only; results are identical.
  std::uint64_t seed = 1;

  // ---- Attacker budgets ----
  std::uint64_t buffer_mib = 4;  ///< Templating buffer size.
  std::uint64_t hammer_iterations = 100'000;
  std::uint64_t max_rows = 0;  ///< Templating row budget (0 = one pass).
  bool both_polarities = true;
  std::uint32_t ciphertext_budget = 8000;

  // ---- Contention window (the paper's failure-mode knobs) ----
  std::uint32_t noise_ops = 0;
  bool attacker_sleeps = false;

  /// Lower to the RunnerConfig CampaignRunner executes.
  attack::RunnerConfig runner_config() const;

  /// Serialize to canonical `.scn` text (fixed key order; defaults are
  /// written explicitly so the file documents every knob).
  std::string to_scn() const;

  /// Parse `.scn` text. Returns nullopt and fills `error` (when non-null)
  /// on malformed lines, duplicate keys, malformed values, unknown keys,
  /// out-of-range values or unsupported combinations (e.g. DFA, which needs
  /// transient fault pairs the campaign cannot provide).
  static std::optional<Scenario> from_scn(const std::string& text,
                                          std::string* error = nullptr);

  bool operator==(const Scenario&) const = default;
};

}  // namespace explframe::scenario
