// scenario::Registry — the named experiment catalogue.
//
// Registry::builtin() holds the paper's headline experiments plus the
// extension studies as declarative Scenario entries; `explsim` (and any
// bench or example that wants a canonical configuration) looks experiments
// up here instead of hand-wiring SystemConfig/CampaignConfig fields.
// Adding an experiment is one registration, and it immediately appears in
// `explsim list`, `explsim all` and the generated docs/results/ handbook.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace explframe::scenario {

/// An ordered, name-unique collection of scenarios.
class Registry {
 public:
  /// The built-in catalogue (built once, immutable, program lifetime).
  static const Registry& builtin();

  /// Register `s`; the name must be unique within this registry.
  void add(Scenario s);

  /// Scenario named `name`, or nullptr.
  const Scenario* find(const std::string& name) const noexcept;

  /// All scenarios, in registration order (== handbook order).
  const std::vector<Scenario>& all() const noexcept { return scenarios_; }

 private:
  std::vector<Scenario> scenarios_;
};

/// Convenience: the built-in scenario `name`; CHECK-fails if absent (for
/// benches/examples whose scenario is part of their contract).
const Scenario& builtin_scenario(const std::string& name);

}  // namespace explframe::scenario
