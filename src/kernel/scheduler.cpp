#include "kernel/scheduler.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace explframe::kernel {

void Scheduler::add(Task& task) {
  EXPLFRAME_CHECK(task.cpu() < queues_.size());
  queues_[task.cpu()].push_back(&task);
}

void Scheduler::remove(const Task& task) {
  for (auto& q : queues_)
    q.erase(std::remove(q.begin(), q.end(), &task), q.end());
}

Task* Scheduler::pick_next(std::uint32_t cpu) {
  EXPLFRAME_CHECK(cpu < queues_.size());
  auto& q = queues_[cpu];
  if (q.empty()) return nullptr;
  for (std::size_t tried = 0; tried < q.size(); ++tried) {
    cursor_[cpu] = (cursor_[cpu] + 1) % q.size();
    Task* t = q[cursor_[cpu]];
    if (t->state() == TaskState::kRunnable) return t;
  }
  return nullptr;
}

void Scheduler::migrate(Task& task, std::uint32_t cpu) {
  EXPLFRAME_CHECK(cpu < queues_.size());
  remove(task);
  task.set_cpu(cpu);
  queues_[cpu].push_back(&task);
}

std::size_t Scheduler::runnable_on(std::uint32_t cpu) const {
  EXPLFRAME_CHECK(cpu < queues_.size());
  std::size_t n = 0;
  for (const Task* t : queues_[cpu])
    if (t->state() == TaskState::kRunnable) ++n;
  return n;
}

}  // namespace explframe::kernel
