#include "kernel/system.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/log.hpp"

namespace explframe::kernel {

const char* to_string(TaskState state) noexcept {
  switch (state) {
    case TaskState::kRunnable:
      return "runnable";
    case TaskState::kSleeping:
      return "sleeping";
    case TaskState::kExited:
      return "exited";
  }
  return "?";
}

namespace {

/// Per-task slice of a machine snapshot. Task id/name are immutable and
/// identify the slot; everything mutable is the CPU, scheduling state and
/// the address space.
struct TaskImage {
  std::int32_t id = 0;
  std::uint32_t cpu = 0;
  TaskState state = TaskState::kRunnable;
  vm::AddressSpace::Image space;
};

}  // namespace

/// The concrete snapshot System produces: one image per subsystem, bound
/// to the owning System so a foreign snapshot is rejected on restore.
class MachineSnapshot final : public snap::Snapshot {
 public:
  const System* owner = nullptr;
  dram::DramDevice::Image dram;
  mm::PageAllocator::Image alloc;
  std::vector<TaskImage> tasks;
  SystemStats stats;
  std::int32_t next_task_id = 1;
};

std::unique_ptr<snap::Snapshot> System::snapshot() const {
  auto snap = std::make_unique<MachineSnapshot>();
  snap->owner = this;
  snap->dram = dram_->capture_image();
  snap->alloc = alloc_->capture_image();
  for (const auto& t : tasks_) {
    TaskImage ti;
    ti.id = t->id();
    ti.cpu = t->cpu();
    ti.state = t->state();
    ti.space = t->space().capture_image();
    snap->tasks.push_back(std::move(ti));
  }
  snap->stats = stats_;
  snap->next_task_id = next_task_id_;
  return snap;
}

void System::restore(const snap::Snapshot& state) {
  const auto* snap = dynamic_cast<const MachineSnapshot*>(&state);
  EXPLFRAME_CHECK_MSG(snap != nullptr && snap->owner == this,
                      "restore from a snapshot of a different machine");
  // Task ids are monotonic and tasks_ is append-only, so the snapshot's
  // task list is a strict prefix of the live one.
  EXPLFRAME_CHECK(tasks_.size() >= snap->tasks.size());
  for (std::size_t i = 0; i < snap->tasks.size(); ++i)
    EXPLFRAME_CHECK(tasks_[i]->id() == snap->tasks[i].id);
  // Destroy tasks spawned after the capture FIRST: their page-table frame
  // releases mutate the live (doomed) allocator, which is restored right
  // after. Move each task out of tasks_ before destroying it — the dtor's
  // FrameClient calls find_task(), which iterates tasks_.
  while (tasks_.size() > snap->tasks.size()) {
    std::unique_ptr<Task> dying = std::move(tasks_.back());
    tasks_.pop_back();
    dying.reset();
  }
  dram_->restore_image(snap->dram);  // epoch strictly advances here
  alloc_->restore_image(snap->alloc);
  // Surviving tasks restore in place: Task addresses (held by campaign
  // components as Task&) stay valid across the rollback.
  for (std::size_t i = 0; i < snap->tasks.size(); ++i) {
    tasks_[i]->set_cpu(snap->tasks[i].cpu);
    tasks_[i]->set_state(snap->tasks[i].state);
    tasks_[i]->space().restore_image(snap->tasks[i].space);
  }
  stats_ = snap->stats;
  next_task_id_ = snap->next_task_id;
}

System::System(const SystemConfig& config) : config_(config) {
  dram_ = std::make_unique<dram::DramDevice>(
      dram::Geometry::with_capacity(config.memory_bytes), config.dram,
      config.seed);
  mm::AllocatorConfig ac;
  ac.total_bytes = config.memory_bytes;
  ac.num_cpus = config.num_cpus;
  ac.pcp = config.pcp;
  alloc_ = std::make_unique<mm::PageAllocator>(ac);
}

System::~System() {
  // Same discipline as restore(): move each task out of tasks_ before its
  // destructor runs, newest first. The FrameClient free hook a dying
  // ~PageTable fires walks tasks_ via find_task(), so the vector must only
  // ever hold live tasks while any destructor is in flight (the implicit
  // member destruction order would hand it half-destroyed entries).
  while (!tasks_.empty()) {
    std::unique_ptr<Task> dying = std::move(tasks_.back());
    tasks_.pop_back();
  }
}

vm::FrameClient System::table_frame_client(std::int32_t task_id,
                                           std::uint32_t spawn_cpu) {
  if (!config_.charge_page_tables) return {};
  return vm::FrameClient{
      // Page-table pages are kernel order-0 allocations on the faulting
      // task's current CPU — they travel through the same pcp cache as
      // user data pages. During spawn (before the task is registered) the
      // spawn CPU is used.
      [this, task_id, spawn_cpu]() -> mm::Pfn {
        Task* task = find_task(task_id);
        const std::uint32_t cpu = task ? task->cpu() : spawn_cpu;
        const auto a =
            alloc_->alloc_pages(0, mm::GfpFlags::kernel(), cpu, task_id);
        if (!a) return mm::kInvalidPfn;
        ++stats_.table_frames;
        return a->pfn;
      },
      [this, task_id, spawn_cpu](mm::Pfn pfn) {
        Task* task = find_task(task_id);
        const std::uint32_t cpu = task ? task->cpu() : spawn_cpu;
        alloc_->free_pages(pfn, 0, cpu);
        --stats_.table_frames;
      }};
}

Task& System::spawn(const std::string& name, std::uint32_t cpu) {
  EXPLFRAME_CHECK(cpu < config_.num_cpus);
  const std::int32_t id = next_task_id_++;
  tasks_.push_back(
      std::make_unique<Task>(id, name, cpu, table_frame_client(id, cpu)));
  EXPLFRAME_LOG_DEBUG("spawn task ", id, " '", name, "' on cpu ", cpu);
  return *tasks_.back();
}

Task* System::find_task(std::int32_t id) {
  for (auto& t : tasks_)
    if (t && t->id() == id && t->state() != TaskState::kExited) return t.get();
  return nullptr;
}

void System::exit_task(Task& task) {
  const std::uint32_t cpu = task.cpu();
  task.space().release_all(
      [this, cpu](mm::Pfn pfn) { alloc_->free_pages(pfn, 0, cpu); });
  task.set_state(TaskState::kExited);
}

vm::VirtAddr System::sys_mmap(Task& task, std::uint64_t length) {
  return task.space().mmap(length);
}

bool System::sys_munmap(Task& task, vm::VirtAddr addr, std::uint64_t length) {
  const std::uint32_t cpu = task.cpu();
  return task.space().munmap(addr, length, [this, cpu](mm::Pfn pfn) {
    // The freed frame lands at the hot head of this CPU's page frame cache.
    alloc_->free_pages(pfn, 0, cpu);
  });
}

vm::PagemapEntry System::sys_pagemap(Task& task, vm::VirtAddr va,
                                     bool cap_sys_admin) const {
  return vm::pagemap_read(task.space(), va, cap_sys_admin);
}

mm::Pfn System::alloc_user_frame(Task& task) {
  const auto a =
      alloc_->alloc_pages(0, mm::GfpFlags::user(), task.cpu(), task.id());
  if (!a) return mm::kInvalidPfn;
  if (config_.zero_on_alloc) {
    dram_->fill(static_cast<dram::PhysAddr>(a->pfn) * kPageSize, 0, kPageSize);
  }
  return a->pfn;
}

bool System::handle_fault(Task& task, vm::VirtAddr page_va) {
  if (!task.space().valid(page_va)) return false;  // SIGSEGV
  // As in Linux's do_anonymous_page: the page-table path is allocated
  // (pte_alloc) before the data page itself.
  if (!task.space().page_table().prepare(page_va)) {
    ++stats_.oom_kills;
    return false;
  }
  const mm::Pfn pfn = alloc_user_frame(task);
  if (pfn == mm::kInvalidPfn) {
    ++stats_.oom_kills;
    return false;
  }
  EXPLFRAME_CHECK(task.space().page_table().map(page_va, pfn));
  ++stats_.page_faults;
  ++task.space().counters().minor_faults;
  return true;
}

bool System::touch(Task& task, vm::VirtAddr va) {
  const vm::VirtAddr page = va & ~vm::VirtAddr{kPageSize - 1};
  if (task.space().page_table().find(page) != nullptr) return true;
  return handle_fault(task, page);
}

bool System::mem_write(Task& task, vm::VirtAddr va,
                       std::span<const std::uint8_t> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const vm::VirtAddr cur = va + done;
    const vm::VirtAddr page = cur & ~vm::VirtAddr{kPageSize - 1};
    if (!touch(task, cur)) return false;
    const vm::Pte* pte = task.space().page_table().find(page);
    EXPLFRAME_CHECK(pte != nullptr);
    const std::size_t off = cur - page;
    const std::size_t chunk = std::min(in.size() - done, kPageSize - off);
    dram_->write(static_cast<dram::PhysAddr>(pte->pfn) * kPageSize + off,
                 in.subspan(done, chunk));
    done += chunk;
  }
  return true;
}

bool System::mem_read(Task& task, vm::VirtAddr va,
                      std::span<std::uint8_t> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const vm::VirtAddr cur = va + done;
    const vm::VirtAddr page = cur & ~vm::VirtAddr{kPageSize - 1};
    if (!touch(task, cur)) return false;
    const vm::Pte* pte = task.space().page_table().find(page);
    EXPLFRAME_CHECK(pte != nullptr);
    const std::size_t off = cur - page;
    const std::size_t chunk = std::min(out.size() - done, kPageSize - off);
    dram_->read(static_cast<dram::PhysAddr>(pte->pfn) * kPageSize + off,
                out.subspan(done, chunk));
    done += chunk;
  }
  return true;
}

SimTime System::uncached_access(Task& task, vm::VirtAddr va) {
  if (!touch(task, va)) return 0;
  const vm::VirtAddr page = va & ~vm::VirtAddr{kPageSize - 1};
  const vm::Pte* pte = task.space().page_table().find(page);
  EXPLFRAME_CHECK(pte != nullptr);
  return dram_->access(static_cast<dram::PhysAddr>(pte->pfn) * kPageSize +
                       (va - page));
}

SimTime System::hammer_burst(Task& task,
                             std::span<const vm::VirtAddr> aggressors,
                             std::uint64_t iterations) {
  std::vector<dram::PhysAddr> phys;
  phys.reserve(aggressors.size());
  for (const vm::VirtAddr va : aggressors) {
    if (!touch(task, va)) return 0;
    phys.push_back(phys_of(task, va));
  }
  const SimTime start = dram_->now();
  dram_->hammer_burst(phys, iterations);
  return dram_->now() - start;
}

mm::Pfn System::translate(const Task& task, vm::VirtAddr va) const {
  const vm::VirtAddr page = va & ~vm::VirtAddr{kPageSize - 1};
  const vm::Pte* pte = task.space().page_table().find(page);
  return pte ? pte->pfn : mm::kInvalidPfn;
}

dram::PhysAddr System::phys_of(const Task& task, vm::VirtAddr va) const {
  const mm::Pfn pfn = translate(task, va);
  EXPLFRAME_CHECK_MSG(pfn != mm::kInvalidPfn, "phys_of on unmapped va");
  return static_cast<dram::PhysAddr>(pfn) * kPageSize +
         (va & (kPageSize - 1));
}

}  // namespace explframe::kernel
