// Round-robin per-CPU scheduler. The attack experiments drive tasks
// explicitly; the scheduler exists so the examples can run multi-process
// scenarios with realistic interleaving, and to model CPU migration.
#pragma once

#include <cstdint>
#include <vector>

#include "kernel/task.hpp"

namespace explframe::kernel {

/// Minimal per-CPU run-queue model: enough scheduling state to place
/// attacker and victim tasks on CPUs (the paper's co-residency
/// requirement) and rotate runnable tasks deterministically.
class Scheduler {
 public:
  explicit Scheduler(std::uint32_t num_cpus) : queues_(num_cpus) {}

  /// Enqueue a task on its current CPU's run queue.
  void add(Task& task);
  void remove(const Task& task);

  /// Next runnable task on `cpu` in round-robin order, or nullptr.
  Task* pick_next(std::uint32_t cpu);

  /// Move a task to another CPU's queue (sched_setaffinity).
  void migrate(Task& task, std::uint32_t cpu);

  std::size_t runnable_on(std::uint32_t cpu) const;

 private:
  std::vector<std::vector<Task*>> queues_;  ///< Per-CPU run queues.
  std::vector<std::size_t> cursor_ = std::vector<std::size_t>(queues_.size());
};

}  // namespace explframe::kernel
