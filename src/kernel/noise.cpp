#include "kernel/noise.hpp"

namespace explframe::kernel {

void NoiseWorkload::step() {
  const bool do_alloc =
      live_.empty() || (live_.size() < config_.max_live_regions &&
                        rng_.bernoulli(config_.alloc_bias));
  if (do_alloc) {
    const auto pages = static_cast<std::uint32_t>(rng_.uniform_range(
        config_.min_pages, config_.max_pages));
    const vm::VirtAddr va = system_->sys_mmap(*task_, pages * kPageSize);
    // Touch every page so frames are actually consumed.
    for (std::uint32_t p = 0; p < pages; ++p) {
      const std::uint8_t byte = static_cast<std::uint8_t>(rng_.next());
      system_->mem_write(*task_, va + p * kPageSize, {&byte, 1});
    }
    live_.push_back({va, pages});
    pages_allocated_ += pages;
  } else {
    const std::size_t idx = rng_.uniform(live_.size());
    const Region r = live_[idx];
    live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(idx));
    system_->sys_munmap(*task_, r.va, r.pages * kPageSize);
    pages_released_ += r.pages;
  }
}

void NoiseWorkload::run(std::uint32_t ops) {
  for (std::uint32_t i = 0; i < ops; ++i) step();
}

}  // namespace explframe::kernel
