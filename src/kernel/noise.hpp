// Background allocation noise: a synthetic process that mmaps, touches and
// munmaps small regions at random, churning the per-CPU page frame cache.
// Used to measure how fragile the planted-frame window is (EXP-T1/T2) and
// to model the "attacker went to sleep" contention the paper warns about.
#pragma once

#include <cstdint>
#include <vector>

#include "kernel/system.hpp"
#include "support/rng.hpp"

namespace explframe::kernel {

/// Shape of the background allocator noise a co-tenant workload makes:
/// region sizes, alloc/release bias, live-region cap.
struct NoiseConfig {
  std::uint32_t min_pages = 1;
  std::uint32_t max_pages = 8;
  /// Probability an op is an allocation (otherwise a release, if possible).
  double alloc_bias = 0.5;
  /// Cap on simultaneously live regions.
  std::uint32_t max_live_regions = 64;
};

/// Deterministic co-tenant memory churn: a seeded stream of mmap+touch /
/// munmap operations that stirs the page frame caches the way a noisy
/// neighbour would, without breaking replay.
class NoiseWorkload {
 public:
  NoiseWorkload(System& system, Task& task, const NoiseConfig& config,
                std::uint64_t seed)
      : system_(&system), task_(&task), config_(config), rng_(seed) {}

  /// Perform one mmap+touch or munmap operation.
  void step();
  void run(std::uint32_t ops);

  std::uint64_t pages_allocated() const noexcept { return pages_allocated_; }
  std::uint64_t pages_released() const noexcept { return pages_released_; }

 private:
  /// One live mmap'd region (base address + length in pages).
  struct Region {
    vm::VirtAddr va;
    std::uint32_t pages;
  };

  System* system_;
  Task* task_;
  NoiseConfig config_;
  Rng rng_;
  std::vector<Region> live_;
  std::uint64_t pages_allocated_ = 0;
  std::uint64_t pages_released_ = 0;
};

}  // namespace explframe::kernel
