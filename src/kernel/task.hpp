// A simulated process: identity, CPU placement, scheduling state, and its
// virtual address space.
#pragma once

#include <cstdint>
#include <string>

#include "vm/address_space.hpp"

namespace explframe::kernel {

/// Lifecycle of a simulated process; kExited tasks keep their slot (ids
/// are never reused while the System lives) but own no pages.
enum class TaskState : std::uint8_t { kRunnable, kSleeping, kExited };

const char* to_string(TaskState state) noexcept;

class System;

/// Created via System::spawn(); lifetime owned by the System.
class Task {
 public:
  Task(std::int32_t id, std::string name, std::uint32_t cpu,
       vm::FrameClient table_frames)
      : id_(id),
        name_(std::move(name)),
        cpu_(cpu),
        space_(std::move(table_frames)) {}

  std::int32_t id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }

  /// The CPU this task currently runs on. The paper's exploit requires
  /// attacker and victim to share a CPU; migration is modelled by set_cpu.
  std::uint32_t cpu() const noexcept { return cpu_; }
  void set_cpu(std::uint32_t cpu) noexcept { cpu_ = cpu; }

  TaskState state() const noexcept { return state_; }
  void set_state(TaskState s) noexcept { state_ = s; }

  vm::AddressSpace& space() noexcept { return space_; }
  const vm::AddressSpace& space() const noexcept { return space_; }

 private:
  std::int32_t id_;
  std::string name_;
  std::uint32_t cpu_;
  TaskState state_ = TaskState::kRunnable;
  vm::AddressSpace space_;
};

}  // namespace explframe::kernel
