// The simulated machine: DRAM device + zoned page allocator + tasks, with
// the syscall-level operations the attack story is written in (mmap, munmap,
// memory access, uncached access, pagemap).
//
// Demand paging is the linchpin: mmap only reserves virtual space; the
// physical frame is allocated on first touch, on the CPU the faulting task
// runs on, through that CPU's page frame cache — which is exactly the
// machinery §V of the paper exploits.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dram/dram_device.hpp"
#include "mm/page_allocator.hpp"
#include "kernel/task.hpp"
#include "snapshot/restorable.hpp"
#include "vm/pagemap.hpp"

namespace explframe::kernel {

/// Machine shape: memory size, CPUs, DRAM module parameters, allocator
/// tuning and the master seed everything deterministic derives from.
struct SystemConfig {
  std::uint64_t memory_bytes = 256 * kMiB;
  std::uint32_t num_cpus = 2;
  mm::PcpConfig pcp;
  dram::DeviceParams dram;
  std::uint64_t seed = 1;
  /// Zero user pages on allocation (Linux __GFP_ZERO for anon memory).
  bool zero_on_alloc = true;
  /// Charge page-table node pages to the allocator (realistic; see EXP-A1).
  bool charge_page_tables = true;
};

/// Kernel-side event counters (faults, OOM kills, charged table frames).
struct SystemStats {
  std::uint64_t page_faults = 0;
  std::uint64_t oom_kills = 0;
  std::uint64_t table_frames = 0;
};

/// The simulated machine: DRAM device + zoned page allocator + tasks,
/// exposing the syscall-level surface (mmap/munmap/mem access/pagemap),
/// the uncached hammer path, and exact snapshot/restore of the whole
/// state (snap::Restorable).
class System : public snap::Restorable {
 public:
  explicit System(const SystemConfig& config);
  /// Tears tasks down LIFO with tasks_ kept consistent throughout: a dying
  /// task's ~PageTable releases node frames through a FrameClient that calls
  /// find_task(), so the implicit vector destruction (which iterates a
  /// half-destroyed tasks_) would be undefined behaviour.
  ~System() override;

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // ---- Snapshot / fork (snap::Restorable) --------------------------------
  /// Capture the complete machine state — DRAM (CoW row payloads), page
  /// allocator, every task's address space, stats. Cheap: row data is
  /// shared with the snapshot, not copied.
  std::unique_ptr<snap::Snapshot> snapshot() const override;
  /// Roll the machine back exactly. Tasks spawned after the capture are
  /// destroyed; surviving Task objects are restored IN PLACE (their
  /// addresses stay valid, so components holding Task& keep working across
  /// a rollback). The memory epoch strictly advances so epoch-keyed caches
  /// (victim batch-encrypt) can never serve pre-rollback state.
  void restore(const snap::Snapshot& state) override;

  // ---- Process management -----------------------------------------------
  Task& spawn(const std::string& name, std::uint32_t cpu);
  /// Free all of the task's pages (exit). Frees go through the pcp cache of
  /// the CPU the task exits on, as in Linux.
  void exit_task(Task& task);
  Task* find_task(std::int32_t id);

  // ---- Syscalls ----------------------------------------------------------
  vm::VirtAddr sys_mmap(Task& task, std::uint64_t length);
  bool sys_munmap(Task& task, vm::VirtAddr addr, std::uint64_t length);
  vm::PagemapEntry sys_pagemap(Task& task, vm::VirtAddr va,
                               bool cap_sys_admin) const;

  // ---- Memory access (cached data path) ----------------------------------
  /// Copy to/from the task's memory; demand-faults absent pages. Returns
  /// false on an invalid access (segfault) or allocation failure (OOM).
  bool mem_write(Task& task, vm::VirtAddr va, std::span<const std::uint8_t> in);
  bool mem_read(Task& task, vm::VirtAddr va, std::span<std::uint8_t> out);
  bool touch(Task& task, vm::VirtAddr va);  ///< Fault one page in.

  // ---- Uncached access (timing/hammer path) -------------------------------
  /// One flush+load of `va`: activates the DRAM row and returns the latency.
  /// Returns 0 on invalid access.
  SimTime uncached_access(Task& task, vm::VirtAddr va);

  /// Batched hammer loop: equivalent to `iterations` rounds of
  /// uncached_access over `aggressors` in order (bit-identical flips,
  /// refreshes and simulated time), but translates each address once and
  /// drives DramDevice::hammer_burst instead of walking the page table per
  /// access. Returns the simulated time spent, or 0 if any address is
  /// invalid (nothing is hammered then).
  SimTime hammer_burst(Task& task, std::span<const vm::VirtAddr> aggressors,
                       std::uint64_t iterations);

  // ---- Kernel-side introspection (harness ground truth, not attack API) ---
  /// Current translation, or kInvalidPfn if not present. Does not fault.
  mm::Pfn translate(const Task& task, vm::VirtAddr va) const;
  dram::PhysAddr phys_of(const Task& task, vm::VirtAddr va) const;

  dram::DramDevice& dram() noexcept { return *dram_; }
  const dram::DramDevice& dram() const noexcept { return *dram_; }
  mm::PageAllocator& allocator() noexcept { return *alloc_; }
  const mm::PageAllocator& allocator() const noexcept { return *alloc_; }
  const SystemConfig& config() const noexcept { return config_; }
  const SystemStats& stats() const noexcept { return stats_; }
  std::uint32_t num_cpus() const noexcept { return config_.num_cpus; }

  SimTime now() const noexcept { return dram_->now(); }
  void idle(SimTime duration) { dram_->idle(duration); }

  /// Memory-mutation epoch of the backing DRAM: changes whenever any stored
  /// byte (or ECC bookkeeping shaping reads) may have changed — hammer
  /// flips, defence interventions, any task's writes, demand-fault zeroing.
  /// Snapshot caches (VictimCipherService::encrypt_batch) revalidate
  /// against it.
  std::uint64_t memory_epoch() const noexcept {
    return dram_->mutation_epoch();
  }

 private:
  bool handle_fault(Task& task, vm::VirtAddr page_va);
  mm::Pfn alloc_user_frame(Task& task);
  vm::FrameClient table_frame_client(std::int32_t task_id,
                                     std::uint32_t spawn_cpu);

  SystemConfig config_;
  std::unique_ptr<dram::DramDevice> dram_;
  std::unique_ptr<mm::PageAllocator> alloc_;
  std::vector<std::unique_ptr<Task>> tasks_;
  SystemStats stats_;
  std::int32_t next_task_id_ = 1;
};

}  // namespace explframe::kernel
