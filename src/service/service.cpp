#include "service/service.hpp"

#include <algorithm>
#include <utility>

#include "scenario/report.hpp"
#include "support/check.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace explframe::service {

namespace {

bool fail_with(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

/// True for the "<name>.tmp<N>" debris an interrupted durable_write can
/// leave behind (its cleanup is best effort; a crash mid-publish is not).
bool is_tmp_debris(const std::string& name) {
  return name.find(".tmp") != std::string::npos;
}

}  // namespace

Service::Service(ServiceOptions options, const scenario::Registry& scenarios,
                 const sweep::Registry& sweeps)
    : options_(std::move(options)),
      scenarios_(scenarios),
      sweeps_(sweeps),
      queue_(options_.max_attempts) {}

Service::~Service() { shutdown(Shutdown::kCancel); }

io::FileSystem& Service::fs() const {
  return options_.fs ? *options_.fs : io::real();
}

std::string Service::queue_path(const std::string& id) const {
  return options_.spool_dir + "/queue/" + id + ".req";
}

std::string Service::checkpoint_path(const std::string& id) const {
  return options_.spool_dir + "/checkpoints/" + id + ".ckpt";
}

std::string Service::done_path(const std::string& id,
                               const std::string& ext) const {
  return options_.spool_dir + "/done/" + id + "." + ext;
}

std::string Service::failed_path(const std::string& id) const {
  return options_.spool_dir + "/failed/" + id + ".err";
}

std::string Service::degraded_reason() const {
  const std::lock_guard<std::mutex> lock(degraded_mutex_);
  return degraded_reason_;
}

void Service::enter_degraded(const std::string& reason) {
  const std::lock_guard<std::mutex> lock(degraded_mutex_);
  if (degraded_.exchange(true)) return;  // First failure wins.
  degraded_reason_ = reason;
}

bool Service::start(std::string* error) {
  EXPLFRAME_CHECK(!running_.load());
  for (const char* sub : {"queue", "checkpoints", "done", "failed"}) {
    const std::string dir = options_.spool_dir + "/" + sub;
    const io::Status made = io::with_retry(
        io::kDefaultRetryAttempts, [&] { return fs().create_directories(dir); });
    if (!made.ok())
      return fail_with(error, "cannot create spool directory '" + dir +
                                  "': " + made.message());
  }

  // Sweep out "<name>.tmpN" debris a crash mid-durable_write can strand
  // (the failure paths clean up after themselves, but nothing can clean
  // up after a real kill). Best effort: debris is inert, never read.
  for (const char* sub : {"queue", "checkpoints", "done", "failed"}) {
    const std::string dir = options_.spool_dir + "/" + sub;
    std::vector<std::string> names;
    if (!fs().list(dir, &names).ok()) continue;
    for (const std::string& name : names)
      if (is_tmp_debris(name)) (void)fs().remove(dir + "/" + name);
  }

  // Re-enqueue every submission a previous process accepted but never
  // retired. list() returns sorted names — a deterministic startup order.
  std::vector<std::string> names;
  const io::Status listed = io::with_retry(io::kDefaultRetryAttempts, [&] {
    return fs().list(options_.spool_dir + "/queue", &names);
  });
  if (!listed.ok())
    return fail_with(error, "cannot scan spool queue: " + listed.message());
  for (const std::string& name : names) {
    if (name.size() < 4 || name.substr(name.size() - 4) != ".req") continue;
    const std::string path = options_.spool_dir + "/queue/" + name;
    std::string text;
    const io::Status read = io::with_retry(
        io::kDefaultRetryAttempts, [&] { return fs().read_file(path, &text); });
    if (!read.ok())
      return fail_with(error, "cannot read spooled request '" + path +
                                  "': " + read.message());
    std::string line = text;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
      line.pop_back();
    std::string parse_error;
    const auto request = JobRequest::parse(line, &parse_error);
    if (!request)
      return fail_with(error, "corrupt spooled request '" + path +
                                  "': " + parse_error);
    std::string id_error;
    const auto id = job_id(*request, scenarios_, sweeps_, &id_error);
    if (!id)
      return fail_with(error, "stale spooled request '" + path +
                                  "': " + id_error);
    if (fs().exists(done_path(*id, "md"))) {
      // Completed by a previous process; the commit record beat the crash
      // but the .req removal did not. Retire it now.
      (void)fs().remove(path);
      continue;
    }
    queue_.submit(*id, *request);
  }

  running_.store(true);
  const std::uint32_t workers = std::max<std::uint32_t>(1, options_.workers);
  workers_.reserve(workers);
  for (std::uint32_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  return true;
}

std::optional<SubmitOutcome> Service::submit(const JobRequest& request,
                                             std::string* error,
                                             SubmitError* why) {
  if (why) *why = SubmitError::kNone;
  SubmitOutcome outcome;
  std::string id_error;
  const auto id = job_id(request, scenarios_, sweeps_, &id_error);
  if (!id) {
    if (why) *why = SubmitError::kBadRequest;
    fail_with(error, id_error);
    return std::nullopt;
  }
  outcome.id = *id;

  const auto tracked = queue_.find(*id);
  const bool done_in_queue = tracked && tracked->state == JobState::kDone;
  if (done_in_queue || (!tracked && fs().exists(done_path(*id, "md")))) {
    outcome.cached = true;
    return outcome;
  }

  // Degraded read-only mode: the spool is known-unwritable, so accepting
  // the job would be a lie — it could never survive a crash. Cached
  // reports were already served above; everything else is rejected with
  // a structured error (explsimd maps it to its own exit code).
  if (degraded_.load()) {
    if (why) *why = SubmitError::kUnavailable;
    fail_with(error, "service is degraded (read-only): " + degraded_reason());
    return std::nullopt;
  }

  // Durable before acknowledged: the .req file is what survives a crash.
  // Identical concurrent submissions write identical bytes, and the
  // rename makes the last writer win harmlessly. Transient failures are
  // retried inside durable_write; a permanent one degrades the service.
  const io::Status spooled =
      io::durable_write(fs(), queue_path(*id), request.serialize() + "\n");
  if (!spooled.ok()) {
    if (spooled.permanent()) enter_degraded(spooled.message());
    if (why) *why = SubmitError::kUnavailable;
    fail_with(error, "cannot spool request into '" + queue_path(*id) +
                         "': " + spooled.message());
    return std::nullopt;
  }
  fs().crash_point("service.submit.spooled");
  const JobQueue::Submitted submitted = queue_.submit(*id, request);
  outcome.accepted = submitted.enqueued;
  outcome.deduped = submitted.deduped;
  return outcome;
}

std::optional<SubmitOutcome> Service::submit_line(const std::string& line,
                                                  std::string* error,
                                                  SubmitError* why) {
  std::string parse_error;
  const auto request = JobRequest::parse(line, &parse_error);
  if (!request) {
    if (why) *why = SubmitError::kBadRequest;
    fail_with(error, parse_error);
    return std::nullopt;
  }
  return submit(*request, error, why);
}

void Service::shutdown(Shutdown mode) {
  // The cancel flag is raised before anything else so a worker that is
  // about to start (or mid-way through) a sweep observes it at its next
  // group boundary — even if it wins the race with the join below.
  if (mode == Shutdown::kCancel) cancel_.store(true);
  if (!running_.exchange(false)) return;
  if (mode == Shutdown::kDrain) queue_.wait_idle();
  queue_.stop();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void Service::drain() const { queue_.wait_idle(); }

std::optional<Job> Service::status(const std::string& id) const {
  return queue_.find(id);
}

std::vector<Job> Service::jobs() const { return queue_.jobs(); }

std::optional<std::string> Service::report(const std::string& id,
                                           const std::string& ext) const {
  // done/<id>.md is the commit record: without it the job never finished,
  // and whatever else sits in done/ (a csv whose md lost the crash race)
  // must not be served — it belongs to an execution that will rerun.
  if (!fs().exists(done_path(id, "md"))) return std::nullopt;
  std::string content;
  const io::Status read = io::with_retry(io::kDefaultRetryAttempts, [&] {
    return fs().read_file(done_path(id, ext), &content);
  });
  if (!read.ok()) return std::nullopt;
  return content;
}

std::uint64_t Service::executions() const noexcept {
  return executions_.load();
}

void Service::worker_loop() {
  while (auto job = queue_.claim()) execute(*job);
}

void Service::record_failure(const std::string& id,
                             const std::string& reason) {
  // Best effort on a path that is itself a failure handler: if even
  // failed/<id>.err cannot be written, the .req survives and the job
  // simply reruns at the next start() — failing is not durable state the
  // recovery invariant depends on, unlike finishing.
  const io::Status recorded =
      io::durable_write(fs(), failed_path(id), reason + "\n");
  if (!recorded.ok()) {
    if (recorded.permanent()) enter_degraded(recorded.message());
    return;
  }
  fs().crash_point("service.fail.recorded");
  (void)io::with_retry(io::kDefaultRetryAttempts,
                       [&] { return fs().remove(queue_path(id)); });
}

void Service::execute(const Job& job) {
  if (options_.crash_for_test && options_.crash_for_test(job)) {
    if (!queue_.requeue_or_fail(job.id, "worker crashed")) {
      const auto failed = queue_.find(job.id);
      record_failure(job.id,
                     failed ? failed->error : std::string("worker crashed"));
    }
    return;
  }

  executions_.fetch_add(1);
  std::string error;
  bool cancelled = false;
  const bool ok = job.request.kind == JobKind::kScenario
                      ? run_scenario_job(job, &error)
                      : run_sweep_job(job, &cancelled, &error);
  if (ok) {
    queue_.complete(job.id);
    return;
  }
  if (cancelled) {
    // A graceful stop, not a failure: the checkpoint holds every
    // completed point and the .req file keeps the job submitted, so the
    // next start() resumes it.
    queue_.release(job.id);
    return;
  }
  queue_.fail(job.id, error);
  record_failure(job.id, error);
}

bool Service::run_scenario_job(const Job& job, std::string* error) {
  const scenario::Scenario* s = scenarios_.find(job.request.name);
  if (!s)
    return fail_with(error, "no scenario named '" + job.request.name + "'");
  const scenario::ScenarioResult result =
      scenario::run_scenario(*s, job.request.threads);
  return finish(job, scenario::markdown_report(result),
                scenario::csv_report(result), error);
}

bool Service::run_sweep_job(const Job& job, bool* cancelled,
                            std::string* error) {
  const sweep::SweepSpec* spec = sweeps_.find(job.request.name);
  if (!spec)
    return fail_with(error, "no sweep named '" + job.request.name + "'");
  sweep::SweepRunOptions options;
  options.threads = job.request.threads;
  options.checkpoint_path = checkpoint_path(job.id);
  options.resume = true;  // A missing checkpoint is an empty one.
  options.remove_checkpoint_on_success = true;
  options.cancel = &cancel_;
  options.fs = &fs();
  std::string run_error;
  const auto result = sweep::run_sweep(*spec, scenarios_, options, &run_error);
  if (!result) {
    if (cancel_.load()) {
      *cancelled = true;
      return fail_with(error, run_error);
    }
    return fail_with(error, run_error);
  }
  return finish(job, sweep::sweep_markdown(*result),
                sweep::sweep_csv(*result), error);
}

bool Service::finish(const Job& job, const std::string& md,
                     const std::string& csv, std::string* error) {
  // Publish order is load-bearing: done/<id>.md is the commit record that
  // start(), submit() and report() all trust, so it lands LAST. csv
  // first, then md, then the .req retires — a crash after the csv reruns
  // the job (and rewrites identical bytes); a crash after the md leaves a
  // stale .req that start() retires in the report's favour. The reverse
  // order could serve a committed job whose csv never hit the disk.
  const io::Status csv_written =
      io::durable_write(fs(), done_path(job.id, "csv"), csv);
  if (!csv_written.ok()) {
    if (csv_written.permanent()) enter_degraded(csv_written.message());
    return fail_with(error, "cannot write report into '" +
                                done_path(job.id, "csv") +
                                "': " + csv_written.message());
  }
  fs().crash_point("service.finish.csv-written");
  const io::Status md_written =
      io::durable_write(fs(), done_path(job.id, "md"), md);
  if (!md_written.ok()) {
    if (md_written.permanent()) enter_degraded(md_written.message());
    return fail_with(error, "cannot write report into '" +
                                done_path(job.id, "md") +
                                "': " + md_written.message());
  }
  fs().crash_point("service.finish.committed");
  (void)io::with_retry(io::kDefaultRetryAttempts,
                       [&] { return fs().remove(queue_path(job.id)); });
  return true;
}

}  // namespace explframe::service
