#include "service/service.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "scenario/report.hpp"
#include "support/check.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"

namespace explframe::service {

namespace {

namespace fs = std::filesystem;

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Write `content` durably: unique temp file, fwrite + fsync, then an
/// atomic rename onto `path`. A crash leaves either the old file or the
/// new one, never a torn mix — the property both the .req acknowledgement
/// and the done-cache rely on.
bool durable_write(const std::string& path, const std::string& content) {
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string tmp =
      path + ".tmp" + std::to_string(tmp_counter.fetch_add(1));
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (!file) return false;
  const bool wrote =
      content.empty() ||
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  const bool flushed = wrote && std::fflush(file) == 0;
  if (flushed) ::fsync(::fileno(file));
  std::fclose(file);
  if (!flushed) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

bool fail_with(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

}  // namespace

Service::Service(ServiceOptions options, const scenario::Registry& scenarios,
                 const sweep::Registry& sweeps)
    : options_(std::move(options)),
      scenarios_(scenarios),
      sweeps_(sweeps),
      queue_(options_.max_attempts) {}

Service::~Service() { shutdown(Shutdown::kCancel); }

std::string Service::queue_path(const std::string& id) const {
  return options_.spool_dir + "/queue/" + id + ".req";
}

std::string Service::checkpoint_path(const std::string& id) const {
  return options_.spool_dir + "/checkpoints/" + id + ".ckpt";
}

std::string Service::done_path(const std::string& id,
                               const std::string& ext) const {
  return options_.spool_dir + "/done/" + id + "." + ext;
}

std::string Service::failed_path(const std::string& id) const {
  return options_.spool_dir + "/failed/" + id + ".err";
}

bool Service::start(std::string* error) {
  EXPLFRAME_CHECK(!running_.load());
  for (const char* sub : {"queue", "checkpoints", "done", "failed"}) {
    std::error_code ec;
    fs::create_directories(options_.spool_dir + "/" + sub, ec);
    if (ec)
      return fail_with(error, "cannot create spool directory '" +
                                  options_.spool_dir + "/" + sub +
                                  "': " + ec.message());
  }

  // Re-enqueue every submission a previous process accepted but never
  // retired. Sorted for a deterministic startup order.
  std::vector<std::string> survivors;
  for (const auto& entry :
       fs::directory_iterator(options_.spool_dir + "/queue")) {
    const std::string path = entry.path().string();
    if (entry.path().extension() == ".req") survivors.push_back(path);
  }
  std::sort(survivors.begin(), survivors.end());
  for (const std::string& path : survivors) {
    const auto text = read_file(path);
    if (!text)
      return fail_with(error, "cannot read spooled request '" + path + "'");
    std::string line = *text;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
      line.pop_back();
    std::string parse_error;
    const auto request = JobRequest::parse(line, &parse_error);
    if (!request)
      return fail_with(error, "corrupt spooled request '" + path +
                                  "': " + parse_error);
    std::string id_error;
    const auto id = job_id(*request, scenarios_, sweeps_, &id_error);
    if (!id)
      return fail_with(error, "stale spooled request '" + path +
                                  "': " + id_error);
    if (fs::exists(done_path(*id, "md"))) {
      // Completed by a previous process; the rename beat the crash but
      // the .req removal did not. Retire it now.
      std::error_code ec;
      fs::remove(path, ec);
      continue;
    }
    queue_.submit(*id, *request);
  }

  running_.store(true);
  const std::uint32_t workers = std::max<std::uint32_t>(1, options_.workers);
  workers_.reserve(workers);
  for (std::uint32_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  return true;
}

std::optional<SubmitOutcome> Service::submit(const JobRequest& request,
                                             std::string* error) {
  SubmitOutcome outcome;
  std::string id_error;
  const auto id = job_id(request, scenarios_, sweeps_, &id_error);
  if (!id) {
    fail_with(error, id_error);
    return std::nullopt;
  }
  outcome.id = *id;

  const auto tracked = queue_.find(*id);
  const bool done_in_queue = tracked && tracked->state == JobState::kDone;
  if (done_in_queue ||
      (!tracked && fs::exists(done_path(*id, "md")))) {
    outcome.cached = true;
    return outcome;
  }

  // Durable before acknowledged: the .req file is what survives a crash.
  // Identical concurrent submissions write identical bytes, and the
  // rename makes the last writer win harmlessly.
  if (!durable_write(queue_path(*id), request.serialize() + "\n")) {
    fail_with(error,
              "cannot spool request into '" + queue_path(*id) + "'");
    return std::nullopt;
  }
  const JobQueue::Submitted submitted = queue_.submit(*id, request);
  outcome.accepted = submitted.enqueued;
  outcome.deduped = submitted.deduped;
  return outcome;
}

std::optional<SubmitOutcome> Service::submit_line(const std::string& line,
                                                  std::string* error) {
  std::string parse_error;
  const auto request = JobRequest::parse(line, &parse_error);
  if (!request) {
    fail_with(error, parse_error);
    return std::nullopt;
  }
  return submit(*request, error);
}

void Service::shutdown(Shutdown mode) {
  // The cancel flag is raised before anything else so a worker that is
  // about to start (or mid-way through) a sweep observes it at its next
  // group boundary — even if it wins the race with the join below.
  if (mode == Shutdown::kCancel) cancel_.store(true);
  if (!running_.exchange(false)) return;
  if (mode == Shutdown::kDrain) queue_.wait_idle();
  queue_.stop();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void Service::drain() const { queue_.wait_idle(); }

std::optional<Job> Service::status(const std::string& id) const {
  return queue_.find(id);
}

std::vector<Job> Service::jobs() const { return queue_.jobs(); }

std::optional<std::string> Service::report(const std::string& id,
                                           const std::string& ext) const {
  return read_file(done_path(id, ext));
}

std::uint64_t Service::executions() const noexcept {
  return executions_.load();
}

void Service::worker_loop() {
  while (auto job = queue_.claim()) execute(*job);
}

void Service::execute(const Job& job) {
  if (options_.crash_for_test && options_.crash_for_test(job)) {
    if (!queue_.requeue_or_fail(job.id, "worker crashed")) {
      const auto failed = queue_.find(job.id);
      durable_write(failed_path(job.id),
                    (failed ? failed->error : std::string("worker crashed")) +
                        "\n");
      std::error_code ec;
      fs::remove(queue_path(job.id), ec);
    }
    return;
  }

  executions_.fetch_add(1);
  std::string error;
  bool cancelled = false;
  const bool ok = job.request.kind == JobKind::kScenario
                      ? run_scenario_job(job, &error)
                      : run_sweep_job(job, &cancelled, &error);
  if (ok) {
    queue_.complete(job.id);
    return;
  }
  if (cancelled) {
    // A graceful stop, not a failure: the checkpoint holds every
    // completed point and the .req file keeps the job submitted, so the
    // next start() resumes it.
    queue_.release(job.id);
    return;
  }
  queue_.fail(job.id, error);
  durable_write(failed_path(job.id), error + "\n");
  std::error_code ec;
  fs::remove(queue_path(job.id), ec);
}

bool Service::run_scenario_job(const Job& job, std::string* error) {
  const scenario::Scenario* s = scenarios_.find(job.request.name);
  if (!s)
    return fail_with(error, "no scenario named '" + job.request.name + "'");
  const scenario::ScenarioResult result =
      scenario::run_scenario(*s, job.request.threads);
  return finish(job, scenario::markdown_report(result),
                scenario::csv_report(result), error);
}

bool Service::run_sweep_job(const Job& job, bool* cancelled,
                            std::string* error) {
  const sweep::SweepSpec* spec = sweeps_.find(job.request.name);
  if (!spec)
    return fail_with(error, "no sweep named '" + job.request.name + "'");
  sweep::SweepRunOptions options;
  options.threads = job.request.threads;
  options.checkpoint_path = checkpoint_path(job.id);
  options.resume = true;  // A missing checkpoint is an empty one.
  options.remove_checkpoint_on_success = true;
  options.cancel = &cancel_;
  std::string run_error;
  const auto result = sweep::run_sweep(*spec, scenarios_, options, &run_error);
  if (!result) {
    if (cancel_.load()) {
      *cancelled = true;
      return fail_with(error, run_error);
    }
    return fail_with(error, run_error);
  }
  return finish(job, sweep::sweep_markdown(*result),
                sweep::sweep_csv(*result), error);
}

bool Service::finish(const Job& job, const std::string& md,
                     const std::string& csv, std::string* error) {
  // Reports land before the .req retires: a crash between the two leaves
  // a done file plus a stale .req, which start() resolves in favour of
  // the report. The reverse order could lose an acknowledged job.
  if (!durable_write(done_path(job.id, "md"), md) ||
      !durable_write(done_path(job.id, "csv"), csv))
    return fail_with(error, "cannot write report into '" +
                                done_path(job.id, "md") + "'");
  std::error_code ec;
  fs::remove(queue_path(job.id), ec);
  return true;
}

}  // namespace explframe::service
