#include "service/job_queue.hpp"

#include "support/check.hpp"

namespace explframe::service {

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "queued";
}

JobQueue::JobQueue(std::uint32_t max_attempts)
    : max_attempts_(max_attempts == 0 ? 1 : max_attempts) {}

Job& JobQueue::tracked(const std::string& id) {
  const auto it = jobs_.find(id);
  EXPLFRAME_CHECK(it != jobs_.end());
  return it->second;
}

JobQueue::Submitted JobQueue::submit(const std::string& id,
                                     const JobRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  Submitted outcome;
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    Job job;
    job.id = id;
    job.request = request;
    jobs_.emplace(id, std::move(job));
    order_.push_back(id);
    queue_.push_back(id);
    outcome.enqueued = true;
    work_cv_.notify_one();
    return outcome;
  }
  Job& job = it->second;
  if (job.state == JobState::kFailed) {
    // An explicit resubmission of a failed job is a retry: clear the
    // verdict and start counting attempts afresh.
    job.state = JobState::kQueued;
    job.attempts = 0;
    job.requeues = 0;
    job.error.clear();
    queue_.push_back(id);
    outcome.enqueued = true;
    work_cv_.notify_one();
    return outcome;
  }
  outcome.deduped = true;
  return outcome;
}

std::optional<Job> JobQueue::claim() {
  std::unique_lock<std::mutex> lock(mutex_);
  work_cv_.wait(lock, [&] { return stopped_ || !queue_.empty(); });
  if (stopped_) return std::nullopt;
  const std::string id = queue_.front();
  queue_.pop_front();
  Job& job = tracked(id);
  EXPLFRAME_CHECK(job.state == JobState::kQueued);
  job.state = JobState::kRunning;
  job.attempts += 1;
  return job;
}

void JobQueue::complete(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Job& job = tracked(id);
  EXPLFRAME_CHECK(job.state == JobState::kRunning);
  job.state = JobState::kDone;
  idle_cv_.notify_all();
}

bool JobQueue::requeue_or_fail(const std::string& id,
                               const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  Job& job = tracked(id);
  EXPLFRAME_CHECK(job.state == JobState::kRunning);
  if (job.attempts < max_attempts_) {
    job.state = JobState::kQueued;
    job.requeues += 1;
    queue_.push_back(id);
    work_cv_.notify_one();
    return true;
  }
  job.state = JobState::kFailed;
  job.error = reason + " (gave up after " + std::to_string(job.attempts) +
              " attempt(s))";
  idle_cv_.notify_all();
  return false;
}

void JobQueue::fail(const std::string& id, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  Job& job = tracked(id);
  EXPLFRAME_CHECK(job.state == JobState::kRunning);
  job.state = JobState::kFailed;
  job.error = reason;
  idle_cv_.notify_all();
}

void JobQueue::release(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Job& job = tracked(id);
  EXPLFRAME_CHECK(job.state == JobState::kRunning);
  job.state = JobState::kQueued;
  // Not a crash: the attempt never ran to a verdict, so it does not
  // count against the retry cap.
  EXPLFRAME_CHECK(job.attempts > 0);
  job.attempts -= 1;
  queue_.push_back(id);
  work_cv_.notify_one();
  idle_cv_.notify_all();
}

void JobQueue::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
  work_cv_.notify_all();
  idle_cv_.notify_all();
}

std::optional<Job> JobQueue::find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

std::vector<Job> JobQueue::jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Job> out;
  out.reserve(order_.size());
  for (const std::string& id : order_) out.push_back(jobs_.at(id));
  return out;
}

bool JobQueue::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!queue_.empty()) return false;
  for (const auto& [id, job] : jobs_)
    if (job.state == JobState::kRunning) return false;
  return true;
}

void JobQueue::wait_idle() const {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] {
    if (stopped_) return true;
    if (!queue_.empty()) return false;
    for (const auto& [id, job] : jobs_)
      if (job.state == JobState::kRunning) return false;
    return true;
  });
}

}  // namespace explframe::service
