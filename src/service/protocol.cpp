#include "service/protocol.hpp"

#include <vector>

#include "support/config.hpp"

namespace explframe::service {

namespace {

constexpr char kMagic[] = "explsimd-request";
constexpr char kVersion[] = "v1";

bool set_error(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

std::string hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, value >>= 4) out[i] = digits[value & 0xf];
  return out;
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Split on single spaces. Empty tokens (leading/trailing/double spaces)
/// are preserved so they can be rejected — the canonical form has exactly
/// one space between tokens and no padding.
std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(' ', start);
    if (pos == std::string::npos) {
      tokens.push_back(line.substr(start));
      return tokens;
    }
    tokens.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

const char* to_string(JobKind kind) noexcept {
  switch (kind) {
    case JobKind::kScenario:
      return "scenario";
    case JobKind::kSweep:
      return "sweep";
  }
  return "scenario";
}

std::optional<JobKind> job_kind_from_string(const std::string& name) noexcept {
  if (name == "scenario") return JobKind::kScenario;
  if (name == "sweep") return JobKind::kSweep;
  return std::nullopt;
}

std::string JobRequest::serialize() const {
  std::string out = std::string(kMagic) + " " + kVersion +
                    " kind=" + to_string(kind) + " name=" + name;
  if (threads != 0) out += " threads=" + std::to_string(threads);
  return out;
}

std::optional<JobRequest> JobRequest::parse(const std::string& line,
                                            std::string* error) {
  const auto fail = [&](const std::string& what) -> std::optional<JobRequest> {
    set_error(error, what);
    return std::nullopt;
  };

  if (line.find('\n') != std::string::npos ||
      line.find('\r') != std::string::npos)
    return fail("request must be a single line");
  const auto tokens = split_tokens(line);
  if (tokens.size() < 2 || tokens[0] != kMagic)
    return fail("not an explsimd request (expected '" + std::string(kMagic) +
                " " + kVersion + " ...')");
  if (tokens[1] != kVersion)
    return fail("unsupported request version '" + tokens[1] + "'");

  JobRequest request;
  bool saw_kind = false;
  bool saw_name = false;
  bool saw_threads = false;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.empty()) return fail("stray blank in request line");
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      return fail("malformed field '" + token + "' (want key=value)");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "kind") {
      if (saw_kind) return fail("duplicate field 'kind'");
      const auto kind = job_kind_from_string(value);
      if (!kind)
        return fail("unknown kind '" + value +
                    "' (want scenario or sweep)");
      request.kind = *kind;
      saw_kind = true;
    } else if (key == "name") {
      if (saw_name) return fail("duplicate field 'name'");
      if (!KvFile::valid_key(value))
        return fail("malformed name '" + value +
                    "' (want [A-Za-z0-9_.-]+)");
      request.name = value;
      saw_name = true;
    } else if (key == "threads") {
      if (saw_threads) return fail("duplicate field 'threads'");
      const auto threads = parse_u64(value);
      if (!threads || *threads > 256)
        return fail("bad threads value '" + value + "' (want 0..256)");
      request.threads = static_cast<std::uint32_t>(*threads);
      saw_threads = true;
    } else {
      return fail("unknown field '" + key + "'");
    }
  }
  if (!saw_kind) return fail("missing field 'kind'");
  if (!saw_name) return fail("missing field 'name'");
  return request;
}

std::optional<std::string> job_id(const JobRequest& request,
                                  const scenario::Registry& scenarios,
                                  const sweep::Registry& sweeps,
                                  std::string* error) {
  if (request.kind == JobKind::kScenario) {
    const scenario::Scenario* s = scenarios.find(request.name);
    if (!s) {
      set_error(error, "no scenario named '" + request.name + "'");
      return std::nullopt;
    }
    return "scn-" + hex16(fnv1a64(s->to_scn()));
  }
  const sweep::SweepSpec* spec = sweeps.find(request.name);
  if (!spec) {
    set_error(error, "no sweep named '" + request.name + "'");
    return std::nullopt;
  }
  return "swp-" + hex16(spec->spec_hash(scenarios));
}

}  // namespace explframe::service
