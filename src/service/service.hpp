// service::Service — the long-running job engine behind `explsimd`.
//
// A Service owns a spool directory, a JobQueue and a bounded worker pool,
// and turns one-line JobRequests into finished reports:
//
//   <spool>/queue/<id>.req        durable submissions (tmp + rename + fsync)
//   <spool>/checkpoints/<id>.ckpt sweep progress (SweepRunner's own format)
//   <spool>/done/<id>.md|.csv     completed-report cache
//   <spool>/failed/<id>.err       jobs that exhausted their retry budget
//
// Everything is keyed by the content-bound job id (service::job_id), which
// is also the dedupe key: concurrent submissions of the same experiment
// collapse to one execution, and a submission whose report already sits in
// done/ is served from the cache without running anything (`cached`).
//
// Durability: a submission is acknowledged only after its .req file is
// fsynced into queue/, so a daemon crash loses no accepted work — start()
// rescans queue/ and re-enqueues every pending request, and sweep jobs
// resume from their checkpoint instead of recomputing finished points.
// A worker crash (simulated in tests via `crash_for_test`) requeues the
// job until ServiceOptions::max_attempts is spent, then files it under
// failed/ with the reason — never a silent infinite retry.
//
// Shutdown: shutdown(kDrain) finishes every queued job first;
// shutdown(kCancel) raises the cancel flag SweepRunner checks between
// group steals, so an in-flight sweep stops at a point boundary, keeps
// its fsynced checkpoint, and goes back to queued — the next start()
// (or a resubmission) completes it byte-identically.
//
// Failure model: every spool write goes through io::FileSystem
// (ServiceOptions::fs — io::real() in production, io::FaultyFs in the
// torture suites) and reports through the io::Status taxonomy. Transient
// failures retry deterministically (attempt-counted, no clocks); a
// *permanent* spool-write failure (ENOSPC, EROFS) flips the service into
// degraded read-only mode: cached reports keep being served, new
// submissions are rejected with a structured "unavailable" error, and the
// mode is sticky until the operator fixes the disk and restarts (see
// docs/ARCHITECTURE.md "Failure model").
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "io/fs.hpp"
#include "scenario/registry.hpp"
#include "service/job_queue.hpp"
#include "service/protocol.hpp"
#include "sweep/registry.hpp"

namespace explframe::service {

/// How a Service runs; plain data with usable defaults.
struct ServiceOptions {
  /// Spool root; created (with subdirectories) by start().
  std::string spool_dir;
  /// Worker threads executing jobs (>= 1).
  std::uint32_t workers = 2;
  /// Executions one job may consume before it is filed under failed/
  /// (>= 1; crash-requeues stop at max_attempts - 1).
  std::uint32_t max_attempts = 2;
  /// Test seam: when set, called at the start of every execution attempt.
  /// Returning true makes the worker treat that attempt as a crash
  /// (requeue_or_fail) without running the job — how the integration
  /// tests exercise the retry cap deterministically.
  std::function<bool(const Job&)> crash_for_test;
  /// The filesystem every spool/report/checkpoint byte goes through
  /// (nullptr = io::real()). The torture suites substitute io::FaultyFs;
  /// production never sets this.
  io::FileSystem* fs = nullptr;
};

/// Why Service::submit returned nullopt — the structured half of the
/// error message, so `explsimd` can map failures to distinct exit codes.
enum class SubmitError {
  kNone,        ///< Submit succeeded.
  kBadRequest,  ///< Malformed line or unknown scenario/sweep name.
  kUnavailable, ///< Spool write failed or the service is degraded.
};

/// What Service::submit did with a request.
struct SubmitOutcome {
  std::string id;        ///< Content-bound job id.
  bool accepted = false;  ///< New work was enqueued.
  bool deduped = false;   ///< Identical job already queued/running.
  bool cached = false;    ///< Report already in done/; nothing to run.
};

/// The spool-backed job engine (see the file comment).
class Service {
 public:
  /// Binds the registries the daemon serves; nothing runs until start().
  Service(ServiceOptions options, const scenario::Registry& scenarios,
          const sweep::Registry& sweeps);
  /// Joins the workers (a cancel shutdown) if still running.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Create the spool layout, re-enqueue every queue/*.req survivor from
  /// a previous process, and launch the worker pool. False + `error` when
  /// the spool cannot be created or a survivor is corrupt.
  bool start(std::string* error = nullptr);

  /// Accept one request: resolve its id, serve from the done cache when
  /// possible, otherwise persist queue/<id>.req and enqueue. Nullopt +
  /// `error` when the named entry is unknown, the spool write fails, or
  /// the service is degraded; `why` (when non-null) carries the
  /// structured kind. Cached submissions succeed even in degraded mode —
  /// that is what "read-only" means.
  std::optional<SubmitOutcome> submit(const JobRequest& request,
                                      std::string* error = nullptr,
                                      SubmitError* why = nullptr);
  /// Parse `line` and submit it; protocol errors surface in `error`.
  std::optional<SubmitOutcome> submit_line(const std::string& line,
                                           std::string* error = nullptr,
                                           SubmitError* why = nullptr);

  /// How shutdown treats in-flight and queued work.
  enum class Shutdown {
    kDrain,   ///< Finish every queued job, then stop the workers.
    kCancel,  ///< Stop at the next point boundary; leave resumable state.
  };
  /// Stop the worker pool per `mode`. Idempotent.
  void shutdown(Shutdown mode);
  /// True once a cancel shutdown has begun — the flag in-flight sweeps
  /// poll between point groups (exposed as the tests' handshake for
  /// "stopping now would be observed").
  bool cancel_requested() const noexcept { return cancel_.load(); }

  /// Block until nothing is queued or running (the --once serve mode).
  void drain() const;

  // ---- Introspection ----

  /// The tracked job under `id`, if any.
  std::optional<Job> status(const std::string& id) const;
  /// Every tracked job, in submission order.
  std::vector<Job> jobs() const;
  /// The cached report's bytes (ext is "md" or "csv"); nullopt when the
  /// job has not completed.
  std::optional<std::string> report(const std::string& id,
                                    const std::string& ext) const;
  /// Executions actually started (attempts, not submissions) — what the
  /// dedupe tests count.
  std::uint64_t executions() const noexcept;
  /// True once a permanent spool-write failure flipped the service into
  /// degraded read-only mode (cached reports only; submissions rejected).
  bool degraded() const noexcept { return degraded_.load(); }
  /// The io::Status message of the failure that caused degraded mode
  /// (empty while healthy).
  std::string degraded_reason() const;

  /// Spool paths, exposed so tests and `explsimd` agree on the layout.
  std::string queue_path(const std::string& id) const;
  std::string checkpoint_path(const std::string& id) const;
  std::string done_path(const std::string& id, const std::string& ext) const;
  std::string failed_path(const std::string& id) const;

 private:
  void worker_loop();
  /// Run one claimed job to a queue verdict (complete/fail/requeue/release).
  void execute(const Job& job);
  bool run_scenario_job(const Job& job, std::string* error);
  bool run_sweep_job(const Job& job, bool* cancelled, std::string* error);
  /// Write both report files (csv first, then md — the commit record) and
  /// retire the .req file.
  bool finish(const Job& job, const std::string& md, const std::string& csv,
              std::string* error);
  /// The injectable filesystem (ServiceOptions::fs or io::real()).
  io::FileSystem& fs() const;
  /// Record a permanent spool failure and flip into degraded mode.
  void enter_degraded(const std::string& reason);
  /// Durably file failed/<id>.err and retire the .req (best effort).
  void record_failure(const std::string& id, const std::string& reason);

  const ServiceOptions options_;
  const scenario::Registry& scenarios_;
  const sweep::Registry& sweeps_;
  JobQueue queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> cancel_{false};   ///< SweepRunner's cancel seam.
  std::atomic<bool> running_{false};  ///< start() .. shutdown().
  std::atomic<std::uint64_t> executions_{0};
  std::atomic<bool> degraded_{false};  ///< Sticky read-only mode.
  mutable std::mutex degraded_mutex_;  ///< Guards degraded_reason_.
  std::string degraded_reason_;
};

}  // namespace explframe::service
