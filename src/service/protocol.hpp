// service::protocol — the line-oriented `explsimd` submission format.
//
// A submission is ONE line of text — what a client drops into the spool
// directory (or, one day, writes to a local socket):
//
//   explsimd-request v1 kind=sweep name=defence-grid
//   explsimd-request v1 kind=scenario name=quickstart threads=4
//
// Space-separated tokens: a magic word, a version, then `key=value`
// fields. Parsing is strict — unknown keys, duplicate keys, missing
// required fields, malformed names and out-of-range values are all
// errors with a non-empty message, never a crash (the property tests
// fuzz this parser with mutation storms and raw byte soup, exactly like
// the `.scn`/`.sweep` parsers, because daemon input is untrusted input).
// Serialization is canonical (fixed field order, defaults omitted), so
// parse ∘ serialize is a fixed point and a request file's bytes are a
// complete record of what was asked.
//
// Identity: job_id() maps a request to the id everything downstream keys
// on — dedupe, the checkpoint file, the completed-report cache. The id
// binds the *resolved content* (the canonical `.scn` text of the named
// scenario, or the sweep's spec_hash, which covers the canonical `.sweep`
// text plus the resolved base scenario), not the request line: two
// requests for the same experiment dedupe even when their thread counts
// differ (threads change wall clock only, never a report byte), and a
// re-registered name whose definition drifted gets a fresh id instead of
// a stale cached report.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "scenario/registry.hpp"
#include "sweep/registry.hpp"

namespace explframe::service {

/// What a submission asks the daemon to run.
enum class JobKind {
  kScenario,  ///< One registered scenario (md + csv report).
  kSweep,     ///< One registered sweep grid (md + csv report).
};

/// Canonical name ("scenario" | "sweep").
const char* to_string(JobKind kind) noexcept;
/// Inverse of to_string; nullopt on an unknown name.
std::optional<JobKind> job_kind_from_string(const std::string& name) noexcept;

/// One parsed submission line; plain data.
struct JobRequest {
  JobKind kind = JobKind::kScenario;
  /// Registered scenario/sweep name ([A-Za-z0-9_.-]+, non-empty).
  std::string name;
  /// Worker threads for the job's inner runner (0 = the entry's own
  /// setting). Wall-clock only; never part of the job identity.
  std::uint32_t threads = 0;

  /// The canonical request line (no trailing newline); defaults omitted.
  std::string serialize() const;
  /// Inverse of serialize(); strict (see the file comment). On failure
  /// returns nullopt and fills `error` (when non-null) with a non-empty
  /// message.
  static std::optional<JobRequest> parse(const std::string& line,
                                         std::string* error = nullptr);

  bool operator==(const JobRequest&) const = default;
};

/// The content-bound job id (see the file comment): "scn-"/"swp-" plus 16
/// hex digits. Nullopt + `error` when the named entry is not registered.
std::optional<std::string> job_id(const JobRequest& request,
                                  const scenario::Registry& scenarios,
                                  const sweep::Registry& sweeps,
                                  std::string* error = nullptr);

}  // namespace explframe::service
