// service::JobQueue — the deduplicating, crash-tolerant work queue at the
// heart of `explsimd`.
//
// The queue owns job *lifecycle*, not job *execution*: Service's workers
// claim() jobs, run them, and report back with complete(), fail(),
// requeue_or_fail() (a crashed attempt) or release() (a graceful stop —
// the job goes back unharmed). All state transitions happen under one
// mutex and every waiter is condition-variable driven, so the queue is
// safe at any worker count (the TSan CI leg runs the service tests).
//
// Dedupe contract: jobs are keyed by the content-bound id from
// service::job_id(). Submitting an id that is already queued or running
// is acknowledged but adds nothing (`deduped`); a done id is served from
// the completed-report cache one layer up (`cached`, decided by Service
// before the queue is involved). A failed id may be resubmitted — the
// failure is cleared and the job runs again from its checkpoint.
//
// Crash contract: a claim increments `attempts`. requeue_or_fail() puts
// the job back at most `max_attempts - 1` times (counted in `requeues`);
// past the cap the job is kFailed with the crash reason, never retried
// silently forever.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "service/protocol.hpp"

namespace explframe::service {

/// One submission's position in its lifecycle.
enum class JobState {
  kQueued,   ///< Waiting for a worker.
  kRunning,  ///< Claimed by a worker.
  kDone,     ///< Report written to the done cache.
  kFailed,   ///< Gave up (error message in Job::error).
};

/// Canonical name ("queued" | "running" | "done" | "failed").
const char* to_string(JobState state) noexcept;

/// One job as the queue tracks it; plain data, safe to copy out.
struct Job {
  std::string id;          ///< Content-bound id (service::job_id).
  JobRequest request;      ///< The submission that created it.
  JobState state = JobState::kQueued;
  std::uint32_t attempts = 0;  ///< Execution attempts started.
  std::uint32_t requeues = 0;  ///< Crash-requeues performed.
  std::string error;           ///< Failure reason when kFailed.
};

/// The thread-safe lifecycle store (see the file comment).
class JobQueue {
 public:
  /// `max_attempts` caps executions of one job (>= 1): a job that
  /// crashes on its max_attempts-th claim fails instead of requeueing.
  explicit JobQueue(std::uint32_t max_attempts);

  /// What submit() did with an id.
  struct Submitted {
    bool enqueued = false;  ///< New work was added.
    bool deduped = false;   ///< Already queued/running/done: nothing added.
  };

  /// Register `request` under `id`. Queued/running/done ids dedupe;
  /// failed ids are cleared and re-enqueued (an explicit retry).
  Submitted submit(const std::string& id, const JobRequest& request);

  /// Block until a queued job exists (claim it, mark it running, bump
  /// `attempts`) or stop() is called (nullopt). FIFO order.
  std::optional<Job> claim();

  /// The claimed job finished; its report is in the done cache.
  void complete(const std::string& id);

  /// The claimed job's attempt crashed. Requeue it unless the attempt
  /// cap is reached, in which case it becomes kFailed with `reason`.
  /// Returns true when the job was requeued.
  bool requeue_or_fail(const std::string& id, const std::string& reason);

  /// The claimed job hit a deterministic error (bad spec, unwritable
  /// spool): kFailed immediately, no retry.
  void fail(const std::string& id, const std::string& reason);

  /// A graceful stop interrupted the claimed job mid-run: put it back as
  /// queued with the attempt un-counted (stopping a daemon is not a
  /// crash; the job resumes from its checkpoint).
  void release(const std::string& id);

  /// Wake every claim()er empty-handed and refuse further claims (used
  /// at shutdown; submit() still records, so a drain can finish first).
  void stop();

  // ---- Introspection (copies, safe outside the lock) ----

  /// The job tracked under `id`, if any.
  std::optional<Job> find(const std::string& id) const;
  /// Every tracked job, in submission order.
  std::vector<Job> jobs() const;
  /// True when nothing is queued or running.
  bool idle() const;
  /// Block until idle() (or stop()).
  void wait_idle() const;

 private:
  Job& tracked(const std::string& id);

  const std::uint32_t max_attempts_;
  mutable std::mutex mutex_;
  mutable std::condition_variable work_cv_;  ///< claim() waiters.
  mutable std::condition_variable idle_cv_;  ///< wait_idle() waiters.
  std::map<std::string, Job> jobs_;          ///< All tracked jobs by id.
  std::vector<std::string> order_;           ///< Submission order of ids.
  std::deque<std::string> queue_;            ///< Queued ids, FIFO.
  bool stopped_ = false;
};

}  // namespace explframe::service
