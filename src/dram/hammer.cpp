#include "dram/hammer.hpp"

#include "support/check.hpp"

namespace explframe::dram {

HammerResult HammerEngine::hammer(std::span<const PhysAddr> aggressors,
                                  std::uint64_t iterations) {
  HammerResult result;
  if (aggressors.empty()) return result;
  const SimTime start = device_->now();
  device_->hammer_burst(aggressors, iterations);
  result.iterations = iterations;
  result.elapsed = device_->now() - start;
  result.flips = device_->drain_flips();
  return result;
}

HammerResult HammerEngine::hammer_double_sided(PhysAddr victim_row_addr,
                                               std::uint64_t iterations) {
  const AddressMapping& map = device_->mapping();
  PhysAddr above = 0;
  PhysAddr below = 0;
  if (!map.neighbor_row_addr(victim_row_addr, -1, 0, above) ||
      !map.neighbor_row_addr(victim_row_addr, +1, 0, below)) {
    HammerResult skipped;
    skipped.valid = false;
    return skipped;
  }
  const PhysAddr pair[2] = {above, below};
  return hammer(pair, iterations);
}

HammerResult HammerEngine::hammer_single_sided(PhysAddr aggressor,
                                               std::uint64_t iterations) {
  const AddressMapping& map = device_->mapping();
  PhysAddr partner = 0;
  if (!map.neighbor_row_addr(aggressor, +8, 0, partner) &&
      !map.neighbor_row_addr(aggressor, -8, 0, partner)) {
    HammerResult skipped;
    skipped.valid = false;
    return skipped;
  }
  const PhysAddr pair[2] = {aggressor, partner};
  return hammer(pair, iterations);
}

double HammerEngine::time_alternating(PhysAddr a, PhysAddr b,
                                      std::uint32_t probes) {
  EXPLFRAME_CHECK(probes > 0);
  SimTime total = 0;
  for (std::uint32_t i = 0; i < probes; ++i) {
    total += device_->access(a);
    total += device_->access(b);
  }
  return static_cast<double>(total) / (2.0 * static_cast<double>(probes));
}

bool HammerEngine::same_bank_by_timing(PhysAddr a, PhysAddr b,
                                       std::uint32_t probes) {
  const auto& t = device_->params().timings;
  const double threshold =
      0.5 * static_cast<double>(t.row_hit_ns + t.row_conflict_ns);
  return time_alternating(a, b, probes) > threshold;
}

}  // namespace explframe::dram
