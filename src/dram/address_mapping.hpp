// Physical-address <-> DRAM-coordinate translation.
//
// Two schemes are provided:
//  * kRowMajor — column bits low, then bank, rank, channel, row high. A 4 KiB
//    page frame lies entirely inside one DRAM row; consecutive rows of a bank
//    are far apart in physical address space (as on real parts without
//    channel interleaving).
//  * kBankXor — same bit layout but the bank index is XOR-hashed with the low
//    row bits, modelling Intel's rank/bank address hashing. This is what
//    makes naive "phys addr / row size" adjacency reasoning fail on real
//    machines and why attackers need the row-buffer timing channel.
#pragma once

#include <cstdint>

#include "dram/geometry.hpp"

namespace explframe::dram {

/// Physical-address-to-DRAM-coordinate scheme: linear row-major or the
/// XOR bank hash real controllers use to spread row hits.
enum class MappingScheme {
  kRowMajor,
  kBankXor,
};

const char* to_string(MappingScheme scheme) noexcept;

/// Bijective mapping between physical addresses [0, total_bytes) and DRAM
/// coordinates. All widths must be powers of two.
class AddressMapping {
 public:
  AddressMapping(const Geometry& geometry, MappingScheme scheme);

  DramAddress decode(PhysAddr addr) const noexcept;
  PhysAddr encode(const DramAddress& coord) const noexcept;

  const Geometry& geometry() const noexcept { return geometry_; }
  MappingScheme scheme() const noexcept { return scheme_; }

  /// True if the two addresses hit the same (channel, rank, bank).
  bool same_bank(PhysAddr a, PhysAddr b) const noexcept;

  /// Signed row distance if same bank, or a large sentinel otherwise.
  std::int64_t row_distance(PhysAddr a, PhysAddr b) const noexcept;

  /// Physical address of byte `col` of the row `delta` rows away from the
  /// row containing `addr`, in the same bank. Returns false if out of range.
  bool neighbor_row_addr(PhysAddr addr, std::int32_t delta, std::uint32_t col,
                         PhysAddr& out) const noexcept;

 private:
  Geometry geometry_;
  MappingScheme scheme_;
  std::uint32_t col_bits_;
  std::uint32_t bank_bits_;
  std::uint32_t rank_bits_;
  std::uint32_t channel_bits_;
  std::uint32_t row_bits_;

  std::uint32_t bank_hash(std::uint32_t bank, std::uint32_t row) const noexcept;
};

}  // namespace explframe::dram
