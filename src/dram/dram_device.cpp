#include "dram/dram_device.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "support/check.hpp"

namespace explframe::dram {

namespace {

/// Validated before any member is built: a zero refresh window would make
/// advance() loop forever the first time the clock moves, and a row-less
/// geometry has no storage to model (and would trip the address-mapping
/// bit-width asserts with a far less helpful message).
const Geometry& validate_device_config(const Geometry& geometry,
                                       const DeviceParams& params) {
  EXPLFRAME_CHECK_MSG(params.timings.refresh_window_ns > 0,
                      "refresh_window_ns must be positive");
  EXPLFRAME_CHECK_MSG(geometry.total_rows() > 0 && geometry.row_bytes > 0,
                      "geometry must have at least one non-empty row");
  return geometry;
}

}  // namespace

DramDevice::DramDevice(const Geometry& geometry, const DeviceParams& params,
                       std::uint64_t seed)
    : geometry_(validate_device_config(geometry, params)),
      params_(params),
      mapping_(geometry, params.mapping),
      weak_cells_(geometry, params.weak_cells, seed),
      zero_row_(std::make_unique<std::uint8_t[]>(geometry.row_bytes)),
      open_row_(geometry.total_banks(), -1),
      disturbance_(weak_cells_.row_index(), geometry),
      trr_sampler_(params.trr.sampler_entries),
      next_refresh_(params.timings.refresh_window_ns) {
  std::memset(zero_row_.get(), 0, geometry_.row_bytes);
}

std::uint8_t* DramDevice::row_storage(std::uint64_t flat_row) {
  auto it = rows_.find(flat_row);
  if (it == rows_.end()) {
    std::shared_ptr<std::uint8_t[]> buf(new std::uint8_t[geometry_.row_bytes]);
    std::memset(buf.get(), 0, geometry_.row_bytes);
    it = rows_.emplace(flat_row, std::move(buf)).first;
  } else if (it->second.use_count() > 1) {
    // The payload is shared with at least one snapshot Image: clone before
    // handing out a mutable pointer (copy-on-write).
    std::shared_ptr<std::uint8_t[]> buf(new std::uint8_t[geometry_.row_bytes]);
    std::memcpy(buf.get(), it->second.get(), geometry_.row_bytes);
    it->second = std::move(buf);
  }
  return it->second.get();
}

const std::uint8_t* DramDevice::row_view(std::uint64_t flat_row) const {
  const auto it = rows_.find(flat_row);
  // Untouched rows hold zeros; serve them from the shared zero row instead
  // of allocating (keeps pure reads allocation- and clone-free).
  return it != rows_.end() ? it->second.get() : zero_row_.get();
}

DramDevice::Image DramDevice::capture_image() const {
  Image image;
  image.rows = rows_;  // refcount bumps only — payloads stay shared
  image.open_row = open_row_;
  image.disturbance = disturbance_.capture();  // O(touched this window)
  image.flips = flips_;
  image.live_flips = live_flips_;
  image.trr_sampler = trr_sampler_;
  image.now = now_;
  image.next_refresh = next_refresh_;
  image.mutation_epoch = mutation_epoch_;
  image.total_flips = total_flips_;
  image.total_acts = total_acts_;
  image.refreshes = refreshes_;
  image.trr_hits = trr_hits_;
  image.ecc_corrected = ecc_corrected_;
  image.ecc_uncorrectable = ecc_uncorrectable_;
  return image;
}

void DramDevice::restore_image(const Image& image) {
  rows_ = image.rows;  // share again; the image stays valid for re-restore
  open_row_ = image.open_row;
  disturbance_.restore(image.disturbance);
  flips_ = image.flips;
  live_flips_ = image.live_flips;
  trr_sampler_ = image.trr_sampler;
  now_ = image.now;
  next_refresh_ = image.next_refresh;
  total_flips_ = image.total_flips;
  total_acts_ = image.total_acts;
  refreshes_ = image.refreshes;
  trr_hits_ = image.trr_hits;
  ecc_corrected_ = image.ecc_corrected;
  ecc_uncorrectable_ = image.ecc_uncorrectable;
  // The epoch must move strictly FORWARD across a rollback: a cache keyed
  // on the pre-restore epoch (victim batch-encrypt context) would otherwise
  // collide with a revived value and serve stale bytes.
  mutation_epoch_ = std::max(mutation_epoch_, image.mutation_epoch) + 1;
}

void DramDevice::advance(SimTime dt) {
  now_ += dt;
  while (now_ >= next_refresh_) {
    disturbance_.clear_window();
    trr_sampler_.clear();
    ++refreshes_;
    next_refresh_ += params_.timings.refresh_window_ns;
  }
}

void DramDevice::refresh_now() {
  // An explicit refresh also restarts the retention window.
  disturbance_.clear_window();
  trr_sampler_.clear();
  ++refreshes_;
  next_refresh_ = now_ + params_.timings.refresh_window_ns;
}

void DramDevice::trr_observe(std::uint64_t aggressor_flat) {
  std::size_t slot = trr_sampler_.find(aggressor_flat);
  if (slot == TrrSampler::kNpos) slot = trr_sampler_.insert(aggressor_flat);
  trr_sampler_.add(slot, 1);
  if (trr_sampler_.count(slot) < params_.trr.threshold) return;
  // Targeted refresh of both neighbours: their disturbance is reset.
  ++trr_hits_;
  trr_sampler_.set_count(slot, 0);
  const std::uint64_t row_in_bank =
      aggressor_flat % geometry_.rows_per_bank;
  const RowIndex& weak = weak_cells_.row_index();
  if (row_in_bank > 0) {
    const std::size_t o = weak.find(aggressor_flat - 1);
    if (o != RowIndex::kNpos) disturbance_.reset(o);
  }
  if (row_in_bank + 1 < geometry_.rows_per_bank) {
    const std::size_t o = weak.find(aggressor_flat + 1);
    if (o != RowIndex::kNpos) disturbance_.reset(o);
  }
}

void DramDevice::clear_live_flips(std::uint64_t flat_row, std::uint32_t col,
                                  std::uint64_t len) {
  live_flips_.erase_cols(flat_row, col, len);
}

void DramDevice::ecc_filter(std::uint64_t flat_row, std::uint32_t col,
                            std::span<std::uint8_t> chunk) {
  const LiveFlipTable::Range range = live_flips_.row_range(flat_row);
  if (range.begin == range.end) return;
  // Act per 64-bit word on the row's live flips: one flip in a word is
  // corrected if the read covers it, two or more in a word that the read
  // overlaps are uncorrectable. Sorting the row's (col, bit) records
  // groups words deterministically regardless of flip order.
  std::vector<std::pair<std::uint32_t, std::uint8_t>> flips;
  flips.reserve(range.end - range.begin);
  for (std::size_t i = range.begin; i < range.end; ++i)
    flips.emplace_back(live_flips_.col_at(i), live_flips_.bit_at(i));
  std::sort(flips.begin(), flips.end());
  for (std::size_t i = 0; i < flips.size();) {
    const std::uint32_t word = flips[i].first / 8;
    std::size_t j = i;
    while (j < flips.size() && flips[j].first / 8 == word) ++j;
    // Does this word overlap the chunk at all?
    const std::uint32_t word_lo = word * 8;
    if (word_lo + 8 > col && word_lo < col + chunk.size()) {
      if (j - i == 1) {
        const auto [fcol, fbit] = flips[i];
        if (fcol >= col && fcol < col + chunk.size()) {
          chunk[fcol - col] ^= static_cast<std::uint8_t>(1u << fbit);
          ++ecc_corrected_;
        }
      } else {
        ++ecc_uncorrectable_;  // Detected, not corrected (machine check).
      }
    }
    i = j;
  }
}

void DramDevice::idle(SimTime duration) { advance(duration); }

void DramDevice::read(PhysAddr addr, std::span<std::uint8_t> out) {
  EXPLFRAME_CHECK(addr + out.size() <= geometry_.total_bytes());
  std::size_t done = 0;
  while (done < out.size()) {
    const DramAddress c = mapping_.decode(addr + done);
    const std::uint64_t fr = flat_row(geometry_, c);
    const std::size_t chunk = std::min<std::size_t>(
        out.size() - done, geometry_.row_bytes - c.col);
    std::memcpy(out.data() + done, row_view(fr) + c.col, chunk);
    if (params_.ecc.enabled)
      ecc_filter(fr, c.col, out.subspan(done, chunk));
    done += chunk;
  }
}

void DramDevice::write(PhysAddr addr, std::span<const std::uint8_t> in) {
  EXPLFRAME_CHECK(addr + in.size() <= geometry_.total_bytes());
  ++mutation_epoch_;
  std::size_t done = 0;
  while (done < in.size()) {
    const DramAddress c = mapping_.decode(addr + done);
    const std::uint64_t fr = flat_row(geometry_, c);
    const std::size_t chunk = std::min<std::size_t>(
        in.size() - done, geometry_.row_bytes - c.col);
    std::memcpy(row_storage(fr) + c.col, in.data() + done, chunk);
    clear_live_flips(fr, c.col, chunk);
    done += chunk;
  }
}

std::uint8_t DramDevice::read_byte(PhysAddr addr) {
  std::uint8_t v = 0;
  read(addr, {&v, 1});
  return v;
}

void DramDevice::write_byte(PhysAddr addr, std::uint8_t value) {
  write(addr, {&value, 1});
}

void DramDevice::fill(PhysAddr addr, std::uint8_t value, std::uint64_t len) {
  EXPLFRAME_CHECK(addr + len <= geometry_.total_bytes());
  ++mutation_epoch_;
  std::uint64_t done = 0;
  while (done < len) {
    const DramAddress c = mapping_.decode(addr + done);
    const std::uint64_t fr = flat_row(geometry_, c);
    const std::uint64_t chunk =
        std::min<std::uint64_t>(len - done, geometry_.row_bytes - c.col);
    std::memset(row_storage(fr) + c.col, value, chunk);
    clear_live_flips(fr, c.col, chunk);
    done += chunk;
  }
}

bool DramDevice::aggressor_bit(const DramAddress& victim, std::int32_t delta,
                               std::uint32_t col, std::uint8_t bit) {
  DramAddress a = victim;
  const std::int64_t row = static_cast<std::int64_t>(victim.row) + delta;
  if (row < 0 || row >= static_cast<std::int64_t>(geometry_.rows_per_bank))
    return false;
  a.row = static_cast<std::uint32_t>(row);
  const std::uint64_t fr = flat_row(geometry_, a);
  // Peek without allocating: untouched rows hold zeros.
  const auto it = rows_.find(fr);
  if (it == rows_.end()) return false;
  return (it->second[col] >> bit) & 1u;
}

void DramDevice::check_victim_row(std::uint64_t victim_flat,
                                  const DramAddress& victim,
                                  const RowDisturbance& d) {
  const WeakCellSpan cells = weak_cells_.cells_in_row(victim_flat);
  if (cells.empty()) return;
  // Read through the const view and clone (CoW) only when a bit actually
  // flips — the common no-flip check must not copy snapshot-shared rows.
  // Cell fields are read straight from the packed arena by ordinal; only
  // the fields a step needs are decoded.
  const std::uint8_t* data = row_view(victim_flat);
  std::uint8_t* mut = nullptr;
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const std::size_t o = cells.ordinal(k);
    const std::uint32_t ccol = weak_cells_.col_at(o);
    const std::uint8_t cbit = weak_cells_.bit_at(o);
    const bool stored = ((mut ? mut : data)[ccol] >> cbit) & 1u;
    // Only charged cells can lose charge: true-cell charged at 1, anti at 0.
    if (stored != weak_cells_.true_cell_at(o)) continue;

    double effective =
        static_cast<double>(d.acts_above) * weak_cells_.couple_above_at(o) +
        static_cast<double>(d.acts_below) * weak_cells_.couple_below_at(o);
    if (params_.data_pattern_sensitivity) {
      // Stripe patterns (aggressor bit opposite to victim bit) couple at
      // full strength; matching bits couple more weakly.
      const bool above = aggressor_bit(victim, -1, ccol, cbit);
      const bool below = aggressor_bit(victim, +1, ccol, cbit);
      const bool any_opposite = (above != stored) || (below != stored);
      if (!any_opposite) effective *= params_.same_pattern_coupling;
    }
    if (effective < static_cast<double>(weak_cells_.threshold_at(o))) continue;

    if (!mut) mut = row_storage(victim_flat);  // may clone a shared row
    mut[ccol] = static_cast<std::uint8_t>(mut[ccol] ^ (1u << cbit));
    DramAddress at = victim;
    at.col = ccol;
    flips_.append(mapping_.encode(at), cbit, !stored, now_);
    live_flips_.add(victim_flat, ccol, cbit);
    ++total_flips_;
    ++mutation_epoch_;
  }
}

void DramDevice::apply_disturbance(const DramAddress& aggressor) {
  const std::uint64_t agg_flat = flat_row(geometry_, aggressor);
  if (params_.trr.enabled) trr_observe(agg_flat);
  const RowIndex& weak = weak_cells_.row_index();
  // Victim above the aggressor (row-1): the aggressor is its below-neighbour.
  if (aggressor.row > 0) {
    const std::uint64_t victim_flat = agg_flat - 1;
    const std::size_t o = weak.find(victim_flat);
    if (o != RowIndex::kNpos) {
      const DisturbanceTable::Counters c = disturbance_.touch(o);
      ++c.below;
      DramAddress victim = aggressor;
      victim.row -= 1;
      check_victim_row(victim_flat, victim, {c.above, c.below});
    }
  }
  // Victim below the aggressor (row+1): the aggressor is its above-neighbour.
  if (aggressor.row + 1 < geometry_.rows_per_bank) {
    const std::uint64_t victim_flat = agg_flat + 1;
    const std::size_t o = weak.find(victim_flat);
    if (o != RowIndex::kNpos) {
      const DisturbanceTable::Counters c = disturbance_.touch(o);
      ++c.above;
      DramAddress victim = aggressor;
      victim.row += 1;
      check_victim_row(victim_flat, victim, {c.above, c.below});
    }
  }
}

SimTime DramDevice::access(PhysAddr addr) {
  EXPLFRAME_CHECK(addr < geometry_.total_bytes());
  const DramAddress c = mapping_.decode(addr);
  const std::uint64_t bank = flat_bank(geometry_, c);
  SimTime latency;
  if (open_row_[bank] == static_cast<std::int64_t>(c.row)) {
    latency = params_.timings.row_hit_ns;
  } else {
    latency = params_.timings.row_conflict_ns;
    open_row_[bank] = static_cast<std::int64_t>(c.row);
    ++total_acts_;
    apply_disturbance(c);
  }
  advance(latency);
  return latency;
}

void DramDevice::hammer_burst(std::span<const PhysAddr> aggressors,
                              std::uint64_t iterations) {
  for (const PhysAddr a : aggressors)
    EXPLFRAME_CHECK(a < geometry_.total_bytes());
  if (aggressors.empty() || iterations == 0) return;

  // --- Warm-up: run the first iteration exactly, then the second while
  // recording which accesses activate. After any full pass, the open row of
  // every touched bank is whatever row the pass last accessed there, so the
  // hit/conflict pattern of iteration 1 repeats verbatim in every later
  // iteration (only these aggressors touch these banks during the burst).
  std::uint64_t done = 0;
  for (const PhysAddr a : aggressors) access(a);
  if (++done == iterations) return;

  struct PatternAccess {
    DramAddress coord;
    std::uint64_t flat = 0;
    bool activates = false;
  };
  std::vector<PatternAccess> pattern(aggressors.size());
  for (std::size_t i = 0; i < aggressors.size(); ++i) {
    PatternAccess& p = pattern[i];
    p.coord = mapping_.decode(aggressors[i]);
    p.flat = flat_row(geometry_, p.coord);
    p.activates = open_row_[flat_bank(geometry_, p.coord)] !=
                  static_cast<std::int64_t>(p.coord.row);
    access(aggressors[i]);
  }
  if (++done == iterations) return;

  // --- Steady-state schedule: per-iteration latency and activation count,
  // the per-iteration disturbance increments of each weak victim row, and
  // the per-iteration activation multiplicity of each aggressor row (what
  // the TRR sampler observes).
  struct VictimDelta {
    std::uint64_t flat = 0;
    std::size_t ordinal = 0;  ///< Weak-row ordinal in the packed arena.
    DramAddress coord;       ///< Victim row, col 0 (for the pattern check).
    std::uint32_t above = 0;  ///< acts_above increments per iteration.
    std::uint32_t below = 0;  ///< acts_below increments per iteration.
  };
  struct AggressorActs {
    std::uint64_t flat = 0;
    std::uint32_t per_iter = 0;
  };
  SimTime iter_latency = 0;
  std::uint64_t acts_per_iter = 0;
  std::vector<VictimDelta> victims;
  std::vector<AggressorActs> agg_rows;
  const RowIndex& weak = weak_cells_.row_index();
  const auto victim_at = [&](std::uint64_t flat, std::size_t ordinal,
                             const DramAddress& coord) -> VictimDelta& {
    for (VictimDelta& v : victims)
      if (v.flat == flat) return v;
    victims.push_back({flat, ordinal, coord, 0, 0});
    return victims.back();
  };
  for (const PatternAccess& p : pattern) {
    iter_latency += p.activates ? params_.timings.row_conflict_ns
                                : params_.timings.row_hit_ns;
    if (!p.activates) continue;
    ++acts_per_iter;
    bool known = false;
    for (AggressorActs& r : agg_rows)
      if (r.flat == p.flat) {
        ++r.per_iter;
        known = true;
        break;
      }
    if (!known) agg_rows.push_back({p.flat, 1});
    if (p.coord.row > 0) {
      const std::size_t o = weak.find(p.flat - 1);
      if (o != RowIndex::kNpos) {
        DramAddress v = p.coord;
        v.row -= 1;
        v.col = 0;
        ++victim_at(p.flat - 1, o, v).below;
      }
    }
    if (p.coord.row + 1 < geometry_.rows_per_bank) {
      const std::size_t o = weak.find(p.flat + 1);
      if (o != RowIndex::kNpos) {
        DramAddress v = p.coord;
        v.row += 1;
        v.col = 0;
        ++victim_at(p.flat + 1, o, v).above;
      }
    }
  }

  // --- Fast-path eligibility. The analytic sampler model relies on every
  // activated row staying tracked between refreshes: true when the rows fit
  // the sampler and all survived the warm-up insertions (after the first
  // refresh clears the sampler, only burst rows repopulate it, so no later
  // insertion can evict). A zero per-iteration latency would make the
  // refresh boundary unsolvable. Otherwise, stay on the exact loop.
  bool fast = iter_latency > 0;
  if (fast && params_.trr.enabled) {
    if (agg_rows.size() > params_.trr.sampler_entries) fast = false;
    for (const AggressorActs& r : agg_rows)
      if (fast && trr_sampler_.find(r.flat) == TrrSampler::kNpos) fast = false;
  }
  if (!fast) {
    for (; done < iterations; ++done)
      for (const PhysAddr a : aggressors) access(a);
    return;
  }

  // Apply `n` eventless iterations in bulk. Counter arithmetic is modular
  // like the slow path's, and touch() validates absent entries exactly
  // where the per-access increments would have created them.
  const auto bulk_apply = [&](std::uint64_t n) {
    now_ += n * iter_latency;
    total_acts_ += n * acts_per_iter;
    for (const VictimDelta& v : victims) {
      const DisturbanceTable::Counters c = disturbance_.touch(v.ordinal);
      c.above += static_cast<std::uint32_t>(n * v.above);
      c.below += static_cast<std::uint32_t>(n * v.below);
    }
    if (params_.trr.enabled)
      for (const AggressorActs& r : agg_rows) {
        std::size_t slot = trr_sampler_.find(r.flat);
        if (slot == TrrSampler::kNpos) slot = trr_sampler_.insert(r.flat);
        trr_sampler_.add(slot, static_cast<std::uint32_t>(n * r.per_iter));
      }
  };

  std::uint64_t rem = iterations - done;
  while (rem > 0) {
    // Find the earliest iteration (1-based from here) containing an event.
    // Between events nothing observable happens, so those iterations can be
    // bulk-applied; the event iteration itself is replayed per-access,
    // which reproduces intra-iteration ordering (flip vs TRR vs refresh)
    // exactly.
    std::uint64_t next_event = rem + 1;

    // (a) Refresh: first iteration whose running clock reaches the window
    // boundary (advance() guarantees now_ < next_refresh_ here).
    {
      const SimTime until = next_refresh_ - now_;
      const std::uint64_t i = (until + iter_latency - 1) / iter_latency;
      next_event = std::min(next_event, std::max<std::uint64_t>(i, 1));
    }

    // (b) TRR intervention: a tracked aggressor's activation count reaches
    // the threshold. Counts stay below the threshold between events, so the
    // crossing iteration follows from the per-iteration multiplicity.
    if (params_.trr.enabled) {
      for (const AggressorActs& r : agg_rows) {
        const std::size_t slot = trr_sampler_.find(r.flat);
        const std::uint64_t count =
            slot != TrrSampler::kNpos ? trr_sampler_.count(slot) : 0;
        const std::uint64_t needed =
            params_.trr.threshold > count ? params_.trr.threshold - count : 1;
        next_event =
            std::min(next_event, (needed + r.per_iter - 1) / r.per_iter);
      }
    }

    // (c) Weak-cell flip: the first iteration whose end-of-iteration
    // disturbance satisfies the flip condition — evaluated with the very
    // expression check_victim_row uses, reading thresholds and couplings
    // straight from the packed arena, so the crossing point is exact.
    // Cell data and coupling are constant between events (flips are events
    // themselves), making the condition monotone in the iteration count.
    for (const VictimDelta& v : victims) {
      const WeakCellSpan cells = weak_cells_.cells_in_row(v.flat);
      if (cells.empty()) continue;
      const std::uint32_t a0 = disturbance_.above(v.ordinal);
      const std::uint32_t b0 = disturbance_.below(v.ordinal);
      const std::uint8_t* data = row_view(v.flat);
      for (std::size_t k = 0; k < cells.size(); ++k) {
        const std::size_t o = cells.ordinal(k);
        const std::uint32_t ccol = weak_cells_.col_at(o);
        const std::uint8_t cbit = weak_cells_.bit_at(o);
        const bool stored = (data[ccol] >> cbit) & 1u;
        if (stored != weak_cells_.true_cell_at(o))
          continue;  // not charged: cannot flip
        double factor = 1.0;
        if (params_.data_pattern_sensitivity) {
          const bool above = aggressor_bit(v.coord, -1, ccol, cbit);
          const bool below = aggressor_bit(v.coord, +1, ccol, cbit);
          if (!((above != stored) || (below != stored)))
            factor = params_.same_pattern_coupling;
        }
        const float couple_above = weak_cells_.couple_above_at(o);
        const float couple_below = weak_cells_.couple_below_at(o);
        const double threshold =
            static_cast<double>(weak_cells_.threshold_at(o));
        const auto crosses = [&](std::uint64_t i) {
          double effective =
              static_cast<double>(a0 + i * v.above) * couple_above +
              static_cast<double>(b0 + i * v.below) * couple_below;
          effective *= factor;
          return effective >= threshold;
        };
        if (!crosses(rem)) continue;  // no flip within the remaining budget
        std::uint64_t lo = 1;
        std::uint64_t hi = rem;
        while (lo < hi) {
          const std::uint64_t mid = lo + (hi - lo) / 2;
          if (crosses(mid)) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        next_event = std::min(next_event, lo);
      }
    }

    if (next_event > rem) {  // nothing left to observe: finish in bulk
      bulk_apply(rem);
      return;
    }
    if (next_event > 1) bulk_apply(next_event - 1);
    rem -= next_event - 1;
    for (const PhysAddr a : aggressors) access(a);
    --rem;
  }
}

void DramDevice::inject_flip(PhysAddr addr, std::uint8_t bit) {
  EXPLFRAME_CHECK(addr < geometry_.total_bytes() && bit < 8);
  const DramAddress c = mapping_.decode(addr);
  const std::uint64_t fr = flat_row(geometry_, c);
  std::uint8_t* data = row_storage(fr);
  const bool was_set = (data[c.col] >> bit) & 1u;
  data[c.col] = static_cast<std::uint8_t>(data[c.col] ^ (1u << bit));
  flips_.append(addr, bit, !was_set, now_);
  live_flips_.add(fr, c.col, bit);
  ++total_flips_;
  ++mutation_epoch_;
}

std::vector<FlipEvent> DramDevice::drain_flips() {
  // Index-sorted emit: events leave in append order, coordinates
  // re-derived from the bijective mapping — no map iteration anywhere.
  std::vector<FlipEvent> out;
  out.reserve(flips_.size());
  for (std::size_t i = 0; i < flips_.size(); ++i) {
    FlipEvent ev;
    ev.addr = flips_.addr_at(i);
    ev.coord = mapping_.decode(ev.addr);
    ev.bit = flips_.bit_at(i);
    ev.to_one = flips_.to_one_at(i);
    ev.time = flips_.time_at(i);
    out.push_back(ev);
  }
  flips_.clear();
  return out;
}

std::uint64_t DramDevice::state_bytes() const noexcept {
  return weak_cells_.state_bytes() + disturbance_.heap_bytes() +
         trr_sampler_.heap_bytes() + live_flips_.heap_bytes() +
         flips_.heap_bytes() +
         open_row_.capacity() * sizeof(std::int64_t);
}

}  // namespace explframe::dram
