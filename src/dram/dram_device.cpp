#include "dram/dram_device.hpp"

#include <algorithm>
#include <cstring>

#include "support/check.hpp"

namespace explframe::dram {

DramDevice::DramDevice(const Geometry& geometry, const DeviceParams& params,
                       std::uint64_t seed)
    : geometry_(geometry),
      params_(params),
      mapping_(geometry, params.mapping),
      weak_cells_(geometry, params.weak_cells, seed),
      open_row_(geometry.total_banks(), -1),
      weak_row_(geometry.total_rows(), 0),
      next_refresh_(params.timings.refresh_window_ns) {
  for (const std::uint64_t r : weak_cells_.vulnerable_rows()) weak_row_[r] = 1;
}

std::uint8_t* DramDevice::row_storage(std::uint64_t flat_row) {
  auto it = rows_.find(flat_row);
  if (it == rows_.end()) {
    auto buf = std::make_unique<std::uint8_t[]>(geometry_.row_bytes);
    std::memset(buf.get(), 0, geometry_.row_bytes);
    it = rows_.emplace(flat_row, std::move(buf)).first;
  }
  return it->second.get();
}

void DramDevice::advance(SimTime dt) {
  now_ += dt;
  while (now_ >= next_refresh_) {
    disturbance_.clear();
    trr_sampler_.clear();
    ++refreshes_;
    next_refresh_ += params_.timings.refresh_window_ns;
  }
}

void DramDevice::refresh_now() {
  // An explicit refresh also restarts the retention window.
  disturbance_.clear();
  trr_sampler_.clear();
  ++refreshes_;
  next_refresh_ = now_ + params_.timings.refresh_window_ns;
}

void DramDevice::trr_observe(std::uint64_t aggressor_flat) {
  auto it = trr_sampler_.find(aggressor_flat);
  if (it == trr_sampler_.end()) {
    if (trr_sampler_.size() >= params_.trr.sampler_entries) {
      // Evict the coldest tracked row (the finite-sampler weakness).
      auto coldest = trr_sampler_.begin();
      for (auto i = trr_sampler_.begin(); i != trr_sampler_.end(); ++i)
        if (i->second < coldest->second) coldest = i;
      trr_sampler_.erase(coldest);
    }
    it = trr_sampler_.emplace(aggressor_flat, 0).first;
  }
  if (++it->second < params_.trr.threshold) return;
  // Targeted refresh of both neighbours: their disturbance is reset.
  ++trr_hits_;
  it->second = 0;
  const std::uint64_t row_in_bank =
      aggressor_flat % geometry_.rows_per_bank;
  if (row_in_bank > 0) disturbance_.erase(aggressor_flat - 1);
  if (row_in_bank + 1 < geometry_.rows_per_bank)
    disturbance_.erase(aggressor_flat + 1);
}

void DramDevice::clear_live_flips(std::uint64_t flat_row, std::uint32_t col,
                                  std::uint64_t len) {
  const auto it = live_flips_.find(flat_row);
  if (it == live_flips_.end()) return;
  auto& vec = it->second;
  vec.erase(std::remove_if(vec.begin(), vec.end(),
                           [&](const LiveFlip& f) {
                             return f.col >= col && f.col < col + len;
                           }),
            vec.end());
  if (vec.empty()) live_flips_.erase(it);
}

void DramDevice::ecc_filter(std::uint64_t flat_row, std::uint32_t col,
                            std::span<std::uint8_t> chunk) {
  const auto it = live_flips_.find(flat_row);
  if (it == live_flips_.end()) return;
  // Group the row's live flips by 64-bit word and act on those that overlap
  // the read range.
  std::unordered_map<std::uint32_t, std::vector<const LiveFlip*>> by_word;
  for (const LiveFlip& f : it->second) by_word[f.col / 8].push_back(&f);
  for (const auto& [word, flips] : by_word) {
    // Does this word overlap the chunk at all?
    const std::uint32_t word_lo = word * 8;
    if (word_lo + 8 <= col || word_lo >= col + chunk.size()) continue;
    if (flips.size() == 1) {
      const LiveFlip& f = *flips.front();
      if (f.col >= col && f.col < col + chunk.size()) {
        chunk[f.col - col] ^= static_cast<std::uint8_t>(1u << f.bit);
        ++ecc_corrected_;
      }
    } else {
      ++ecc_uncorrectable_;  // Detected, not corrected (machine check).
    }
  }
}

void DramDevice::idle(SimTime duration) { advance(duration); }

void DramDevice::read(PhysAddr addr, std::span<std::uint8_t> out) {
  EXPLFRAME_CHECK(addr + out.size() <= geometry_.total_bytes());
  std::size_t done = 0;
  while (done < out.size()) {
    const DramAddress c = mapping_.decode(addr + done);
    const std::uint64_t fr = flat_row(geometry_, c);
    const std::size_t chunk = std::min<std::size_t>(
        out.size() - done, geometry_.row_bytes - c.col);
    std::memcpy(out.data() + done, row_storage(fr) + c.col, chunk);
    if (params_.ecc.enabled)
      ecc_filter(fr, c.col, out.subspan(done, chunk));
    done += chunk;
  }
}

void DramDevice::write(PhysAddr addr, std::span<const std::uint8_t> in) {
  EXPLFRAME_CHECK(addr + in.size() <= geometry_.total_bytes());
  std::size_t done = 0;
  while (done < in.size()) {
    const DramAddress c = mapping_.decode(addr + done);
    const std::uint64_t fr = flat_row(geometry_, c);
    const std::size_t chunk = std::min<std::size_t>(
        in.size() - done, geometry_.row_bytes - c.col);
    std::memcpy(row_storage(fr) + c.col, in.data() + done, chunk);
    clear_live_flips(fr, c.col, chunk);
    done += chunk;
  }
}

std::uint8_t DramDevice::read_byte(PhysAddr addr) {
  std::uint8_t v = 0;
  read(addr, {&v, 1});
  return v;
}

void DramDevice::write_byte(PhysAddr addr, std::uint8_t value) {
  write(addr, {&value, 1});
}

void DramDevice::fill(PhysAddr addr, std::uint8_t value, std::uint64_t len) {
  EXPLFRAME_CHECK(addr + len <= geometry_.total_bytes());
  std::uint64_t done = 0;
  while (done < len) {
    const DramAddress c = mapping_.decode(addr + done);
    const std::uint64_t fr = flat_row(geometry_, c);
    const std::uint64_t chunk =
        std::min<std::uint64_t>(len - done, geometry_.row_bytes - c.col);
    std::memset(row_storage(fr) + c.col, value, chunk);
    clear_live_flips(fr, c.col, chunk);
    done += chunk;
  }
}

bool DramDevice::aggressor_bit(const DramAddress& victim, std::int32_t delta,
                               std::uint32_t col, std::uint8_t bit) {
  DramAddress a = victim;
  const std::int64_t row = static_cast<std::int64_t>(victim.row) + delta;
  if (row < 0 || row >= static_cast<std::int64_t>(geometry_.rows_per_bank))
    return false;
  a.row = static_cast<std::uint32_t>(row);
  const std::uint64_t fr = flat_row(geometry_, a);
  // Peek without allocating: untouched rows hold zeros.
  const auto it = rows_.find(fr);
  if (it == rows_.end()) return false;
  return (it->second[col] >> bit) & 1u;
}

void DramDevice::check_victim_row(std::uint64_t victim_flat,
                                  const DramAddress& victim,
                                  const RowDisturbance& d) {
  const auto& cells = weak_cells_.cells_in_row(victim_flat);
  if (cells.empty()) return;
  std::uint8_t* data = row_storage(victim_flat);
  for (const WeakCell& cell : cells) {
    const bool stored = (data[cell.col] >> cell.bit) & 1u;
    // Only charged cells can lose charge: true-cell charged at 1, anti at 0.
    if (stored != cell.true_cell) continue;

    double effective = static_cast<double>(d.acts_above) * cell.couple_above +
                       static_cast<double>(d.acts_below) * cell.couple_below;
    if (params_.data_pattern_sensitivity) {
      // Stripe patterns (aggressor bit opposite to victim bit) couple at
      // full strength; matching bits couple more weakly.
      const bool above = aggressor_bit(victim, -1, cell.col, cell.bit);
      const bool below = aggressor_bit(victim, +1, cell.col, cell.bit);
      const bool any_opposite = (above != stored) || (below != stored);
      if (!any_opposite) effective *= params_.same_pattern_coupling;
    }
    if (effective < static_cast<double>(cell.threshold)) continue;

    data[cell.col] = static_cast<std::uint8_t>(
        data[cell.col] ^ (1u << cell.bit));
    DramAddress at = victim;
    at.col = cell.col;
    FlipEvent ev;
    ev.addr = mapping_.encode(at);
    ev.coord = at;
    ev.bit = cell.bit;
    ev.to_one = !stored;
    ev.time = now_;
    flips_.push_back(ev);
    live_flips_[victim_flat].push_back({cell.col, cell.bit});
    ++total_flips_;
  }
}

void DramDevice::apply_disturbance(const DramAddress& aggressor) {
  const std::uint64_t agg_flat = flat_row(geometry_, aggressor);
  if (params_.trr.enabled) trr_observe(agg_flat);
  // Victim above the aggressor (row-1): the aggressor is its below-neighbour.
  if (aggressor.row > 0) {
    const std::uint64_t victim_flat = agg_flat - 1;
    if (weak_row_[victim_flat] != 0) {
      auto& d = disturbance_[victim_flat];
      ++d.acts_below;
      DramAddress victim = aggressor;
      victim.row -= 1;
      check_victim_row(victim_flat, victim, d);
    }
  }
  // Victim below the aggressor (row+1): the aggressor is its above-neighbour.
  if (aggressor.row + 1 < geometry_.rows_per_bank) {
    const std::uint64_t victim_flat = agg_flat + 1;
    if (weak_row_[victim_flat] != 0) {
      auto& d = disturbance_[victim_flat];
      ++d.acts_above;
      DramAddress victim = aggressor;
      victim.row += 1;
      check_victim_row(victim_flat, victim, d);
    }
  }
}

SimTime DramDevice::access(PhysAddr addr) {
  EXPLFRAME_CHECK(addr < geometry_.total_bytes());
  const DramAddress c = mapping_.decode(addr);
  const std::uint64_t bank = flat_bank(geometry_, c);
  SimTime latency;
  if (open_row_[bank] == static_cast<std::int64_t>(c.row)) {
    latency = params_.timings.row_hit_ns;
  } else {
    latency = params_.timings.row_conflict_ns;
    open_row_[bank] = static_cast<std::int64_t>(c.row);
    ++total_acts_;
    apply_disturbance(c);
  }
  advance(latency);
  return latency;
}

void DramDevice::inject_flip(PhysAddr addr, std::uint8_t bit) {
  EXPLFRAME_CHECK(addr < geometry_.total_bytes() && bit < 8);
  const DramAddress c = mapping_.decode(addr);
  const std::uint64_t fr = flat_row(geometry_, c);
  std::uint8_t* data = row_storage(fr);
  const bool was_set = (data[c.col] >> bit) & 1u;
  data[c.col] = static_cast<std::uint8_t>(data[c.col] ^ (1u << bit));
  FlipEvent ev;
  ev.addr = addr;
  ev.coord = c;
  ev.bit = bit;
  ev.to_one = !was_set;
  ev.time = now_;
  flips_.push_back(ev);
  live_flips_[fr].push_back({c.col, bit});
  ++total_flips_;
}

std::vector<FlipEvent> DramDevice::drain_flips() {
  std::vector<FlipEvent> out;
  out.swap(flips_);
  return out;
}

}  // namespace explframe::dram
