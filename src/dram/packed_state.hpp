// Packed SoA bookkeeping tables for DramDevice.
//
// The seed device kept its per-row mutable state — disturbance counters,
// TRR sampler, live-flip records and the flip log — in unordered_maps of
// heap vectors. Beyond the ~100-byte-per-entry overhead, refresh had to
// clear() whole maps and snapshotting had to deep-copy them. These four
// value types replace the maps:
//
//   DisturbanceTable  dense per-bank counter arrays indexed by weak-row
//                     ordinal, invalidated O(1) per refresh by a window
//                     epoch tag instead of clearing; a touched list makes
//                     snapshot capture O(touched this window).
//   TrrSampler        the finite TRR activation sampler as two parallel
//                     fixed-capacity arrays with deterministic eviction
//                     (min count, tie -> lowest row).
//   LiveFlipTable     flipped-but-not-rewritten bits as row-sorted
//                     parallel arrays (the ECC bookkeeping).
//   FlipLog           the flip event log as parallel arrays storing only
//                     {addr, bit|direction, time}; the DRAM coordinate is
//                     re-derived from the bijective address mapping when
//                     events are drained, in append (index) order.
//
// All four are plain value types: copying one is a valid snapshot, and
// equality compares logical contents.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dram/geometry.hpp"
#include "support/packed.hpp"
#include "support/units.hpp"

namespace explframe::dram {

/// Per-window Rowhammer disturbance counters for weak rows, stored as
/// dense u32 arrays per flat bank (allocated lazily on the bank's first
/// disturbance) and indexed by the weak-row ordinal a RowIndex assigns.
/// A per-entry window tag makes refresh an O(1) epoch bump; entries whose
/// tag is stale read as zero, exactly like the map entries the seed
/// erased.
class DisturbanceTable {
 public:
  /// Mutable view of one weak row's counters for the current window.
  struct Counters {
    std::uint32_t& above;  ///< Activations of row-1 this window.
    std::uint32_t& below;  ///< Activations of row+1 this window.
  };
  /// One touched entry, as captured into a snapshot.
  struct Entry {
    std::uint32_t ordinal = 0;  ///< Weak-row ordinal.
    std::uint32_t above = 0;
    std::uint32_t below = 0;
    /// Field-wise equality (snapshot comparisons in tests).
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// An empty table (no weak rows).
  DisturbanceTable() = default;
  /// Size the per-bank directory for `weak_rows` over `geometry`; counter
  /// arrays are allocated per bank on first touch.
  DisturbanceTable(const RowIndex& weak_rows, const Geometry& geometry);

  /// Activations of row-1 recorded for this weak row this window.
  std::uint32_t above(std::size_t ordinal) const noexcept;
  /// Activations of row+1 recorded for this weak row this window.
  std::uint32_t below(std::size_t ordinal) const noexcept;
  /// Mutable counters for this window, zero-initialising the entry (and
  /// recording it as touched) if this is its first touch since the last
  /// window reset.
  Counters touch(std::size_t ordinal);
  /// Targeted-refresh reset of one row's counters (TRR intervention).
  void reset(std::size_t ordinal) noexcept;
  /// Refresh: forget every counter, O(1) (epoch bump).
  void clear_window() noexcept;

  /// Entries touched this window, in touch order — O(touched).
  std::vector<Entry> capture() const;
  /// Replace the window contents with previously captured entries.
  void restore(std::span<const Entry> entries);

  /// Heap bytes across the directory and all allocated banks.
  std::uint64_t heap_bytes() const noexcept;

 private:
  /// One bank's counter slab: parallel above/below arrays plus the epoch
  /// tag that says whether an entry belongs to the current window.
  struct Bank {
    std::vector<std::uint32_t> above, below, tag;
  };
  std::size_t bank_of(std::size_t ordinal) const noexcept;
  Bank& materialise(std::size_t bank);

  std::vector<std::uint32_t> base_;  ///< bank -> first weak ordinal (+ end)
  std::vector<Bank> banks_;          ///< counter arrays, lazily sized
  std::vector<std::uint32_t> touched_;  ///< ordinals touched this window
  std::uint32_t window_ = 1;            ///< current epoch (tags start at 0)
};

/// The finite TRR activation sampler: at most `capacity` (row, count)
/// pairs in parallel arrays. Linear scans beat hashing at the 32-entry
/// scale real samplers have, and eviction is deterministic: the coldest
/// entry, ties broken towards the lowest row number.
class TrrSampler {
 public:
  /// Returned by find() when a row is not tracked.
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  /// An untracked sampler (capacity 0); assign a sized one before use.
  TrrSampler() = default;
  /// A sampler tracking at most `capacity` rows.
  explicit TrrSampler(std::uint32_t capacity) : capacity_(capacity) {}

  /// Number of rows currently tracked.
  std::size_t size() const noexcept { return rows_.size(); }
  /// Slot of `row`, or kNpos if untracked.
  std::size_t find(std::uint64_t row) const noexcept;
  /// Start tracking `row` at count 0, evicting the coldest tracked row
  /// (min count, tie -> lowest row) if at capacity. Returns the slot.
  std::size_t insert(std::uint64_t row);
  /// Tracked row at `slot`.
  std::uint64_t row(std::size_t slot) const { return rows_[slot]; }
  /// Activation count at `slot`.
  std::uint32_t count(std::size_t slot) const { return counts_[slot]; }
  /// Overwrite the count at `slot` (post-intervention reset).
  void set_count(std::size_t slot, std::uint32_t value) {
    counts_[slot] = value;
  }
  /// Add `delta` activations at `slot` (modular, like the seed's u32).
  void add(std::size_t slot, std::uint32_t delta) { counts_[slot] += delta; }
  /// Refresh: forget every tracked row.
  void clear() noexcept {
    rows_.clear();
    counts_.clear();
  }

  /// Heap bytes of the parallel arrays.
  std::uint64_t heap_bytes() const noexcept {
    return rows_.capacity() * sizeof(std::uint64_t) +
           counts_.capacity() * sizeof(std::uint32_t);
  }
  /// Logical equality: same capacity and same (row, count) set, order
  /// independent — the seed's map had no slot order either.
  friend bool operator==(const TrrSampler& a, const TrrSampler& b);

 private:
  std::uint32_t capacity_ = 0;
  std::vector<std::uint64_t> rows_;
  std::vector<std::uint32_t> counts_;
};

/// Flipped-but-not-yet-rewritten bits (the ECC bookkeeping), held as
/// parallel arrays sorted by flat row; within a row, records keep
/// insertion order like the seed's per-row vectors. Rows are found by
/// binary search; inserts shift the tail (live flips are rare and the
/// table stays small).
class LiveFlipTable {
 public:
  /// Half-open index range of one row's records.
  struct Range {
    std::size_t begin = 0, end = 0;
  };

  /// Total live-flip records.
  std::size_t size() const noexcept { return rows_.size(); }
  /// True when no bits are pending rewrite.
  bool empty() const noexcept { return rows_.empty(); }
  /// Record a flipped bit (appended at the end of the row's run).
  void add(std::uint64_t row, std::uint32_t col, std::uint8_t bit);
  /// Drop records of `row` with col in [col, col+len) (bytes rewritten).
  void erase_cols(std::uint64_t row, std::uint64_t col, std::uint64_t len);
  /// Index range of `row`'s records (empty if none).
  Range row_range(std::uint64_t row) const noexcept;
  /// Column of record `i`.
  std::uint32_t col_at(std::size_t i) const { return cols_[i]; }
  /// Bit index of record `i`.
  std::uint8_t bit_at(std::size_t i) const { return bits_[i]; }

  /// Heap bytes of the parallel arrays.
  std::uint64_t heap_bytes() const noexcept {
    return rows_.capacity() * sizeof(std::uint64_t) +
           cols_.capacity() * sizeof(std::uint32_t) + bits_.capacity();
  }
  /// Logical (content) equality.
  friend bool operator==(const LiveFlipTable&, const LiveFlipTable&) = default;

 private:
  std::vector<std::uint64_t> rows_;
  std::vector<std::uint32_t> cols_;
  std::vector<std::uint8_t> bits_;
};

/// Append-only flip event log as parallel arrays. Only the physical
/// address, bit|direction byte and timestamp are stored — 17 bytes per
/// event against the seed's 40+-byte FlipEvent — and events are emitted
/// in index order, with the DRAM coordinate re-derived via the bijective
/// address mapping at drain time.
class FlipLog {
 public:
  /// Number of logged events.
  std::size_t size() const noexcept { return addrs_.size(); }
  /// True when nothing has been logged since the last drain.
  bool empty() const noexcept { return addrs_.empty(); }
  /// Log one flip.
  void append(std::uint64_t addr, std::uint8_t bit, bool to_one,
              SimTime time) {
    addrs_.push_back(addr);
    meta_.push_back(static_cast<std::uint8_t>(bit | (to_one ? 0x8u : 0u)));
    times_.push_back(time);
  }
  /// Physical byte address of event `i`.
  std::uint64_t addr_at(std::size_t i) const { return addrs_[i]; }
  /// Flipped bit index of event `i`.
  std::uint8_t bit_at(std::size_t i) const {
    return static_cast<std::uint8_t>(meta_[i] & 0x7u);
  }
  /// Direction of event `i` (true = 0->1).
  bool to_one_at(std::size_t i) const { return (meta_[i] & 0x8u) != 0; }
  /// Device clock at event `i`.
  SimTime time_at(std::size_t i) const { return times_[i]; }
  /// Drop all events (after a drain).
  void clear() noexcept {
    addrs_.clear();
    meta_.clear();
    times_.clear();
  }

  /// Heap bytes of the parallel arrays.
  std::uint64_t heap_bytes() const noexcept {
    return addrs_.capacity() * sizeof(std::uint64_t) + meta_.capacity() +
           times_.capacity() * sizeof(SimTime);
  }
  /// Logical (content) equality.
  friend bool operator==(const FlipLog&, const FlipLog&) = default;

 private:
  std::vector<std::uint64_t> addrs_;
  std::vector<std::uint8_t> meta_;
  std::vector<SimTime> times_;
};

}  // namespace explframe::dram
