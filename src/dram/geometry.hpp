// DRAM organisation: channels / ranks / banks / rows / columns, plus the
// coordinate type used throughout the device model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/units.hpp"

namespace explframe::dram {

/// Physical byte address in the simulated machine.
using PhysAddr = std::uint64_t;

/// Shape of the simulated DRAM subsystem. Defaults model a single-channel
/// DDR3 DIMM with 8 banks and 8 KiB rows — the configuration attacked in
/// Kim et al. (ISCA'14) and assumed by the paper.
struct Geometry {
  std::uint32_t channels = 1;
  std::uint32_t ranks = 1;
  std::uint32_t banks = 8;
  std::uint32_t rows_per_bank = 8192;
  std::uint32_t row_bytes = 8 * kKiB;  ///< Row (page) size in bytes.

  constexpr std::uint64_t total_rows() const noexcept {
    return static_cast<std::uint64_t>(channels) * ranks * banks *
           rows_per_bank;
  }
  constexpr std::uint64_t total_bytes() const noexcept {
    return total_rows() * row_bytes;
  }
  constexpr std::uint64_t total_banks() const noexcept {
    return static_cast<std::uint64_t>(channels) * ranks * banks;
  }

  /// A geometry of the given capacity (power-of-two bytes), single channel.
  static Geometry with_capacity(std::uint64_t bytes);

  std::string describe() const;
};

/// Fully decoded DRAM coordinate.
struct DramAddress {
  std::uint32_t channel = 0;
  std::uint32_t rank = 0;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;  ///< Byte offset within the row.

  friend bool operator==(const DramAddress&, const DramAddress&) = default;
};

/// Flat index of a (channel, rank, bank) triple.
constexpr std::uint64_t flat_bank(const Geometry& g,
                                  const DramAddress& a) noexcept {
  return (static_cast<std::uint64_t>(a.channel) * g.ranks + a.rank) * g.banks +
         a.bank;
}

/// Flat index of a (channel, rank, bank, row) — unique per DRAM row.
constexpr std::uint64_t flat_row(const Geometry& g,
                                 const DramAddress& a) noexcept {
  return flat_bank(g, a) * g.rows_per_bank + a.row;
}

}  // namespace explframe::dram
