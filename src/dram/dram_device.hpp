// The simulated DRAM main memory: byte storage, row-buffer timing, refresh,
// and the Rowhammer disturbance mechanism.
//
// Every physical-memory byte in the simulated machine lives here, so a bit
// flip induced by hammering mutates exactly the data a victim process later
// reads — the fault-analysis pipeline never "declares" a fault out of band.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "dram/address_mapping.hpp"
#include "dram/geometry.hpp"
#include "dram/packed_state.hpp"
#include "dram/weak_cells.hpp"
#include "support/units.hpp"

namespace explframe::dram {

/// Access timings (ns) for the row-buffer model. Values follow typical
/// DDR3-1600 parts.
struct DramTimings {
  SimTime row_hit_ns = 50;       ///< Load served from an open row.
  SimTime row_conflict_ns = 90;  ///< Precharge + activate + read.
  SimTime act_ns = 47;           ///< tRC: min row activate-to-activate.
  SimTime refresh_window_ns = 64 * kMillisecond;  ///< tREFW.
};

/// Target Row Refresh: the in-DRAM mitigation on post-2014 parts. A small
/// per-device sampler tracks frequently activated rows; when a sampled row
/// crosses the threshold its neighbours get a targeted refresh, resetting
/// their disturbance. The finite sampler is what many-sided bypasses exploit
/// (not modelled as an attack here, but the capacity knob exists).
struct TrrParams {
  bool enabled = false;
  std::uint32_t threshold = 20'000;    ///< Activations before intervention.
  std::uint32_t sampler_entries = 32;  ///< Rows tracked concurrently.
};

/// SECDED ECC at 64-bit word granularity: one flipped bit per word is
/// corrected on read; two or more are counted as uncorrectable (a machine
/// check on real hardware). Rewriting a word clears its flip records.
struct EccParams {
  bool enabled = false;
};

/// Everything configurable about the simulated module: timings, weak-cell
/// population, address mapping, data-pattern coupling and the TRR/ECC
/// mitigations.
struct DeviceParams {
  DramTimings timings;
  WeakCellParams weak_cells;
  MappingScheme mapping = MappingScheme::kRowMajor;
  /// If true, a victim cell whose stored bit matches the aggressor-row bit
  /// at the same column couples more weakly (stripe patterns flip best).
  bool data_pattern_sensitivity = true;
  double same_pattern_coupling = 0.6;
  TrrParams trr;
  EccParams ecc;
};

/// Record of one induced bit flip.
struct FlipEvent {
  PhysAddr addr = 0;       ///< Physical byte address of the flipped bit.
  DramAddress coord;       ///< Decoded coordinate.
  std::uint8_t bit = 0;    ///< Bit index within the byte.
  bool to_one = false;     ///< Direction: false = 1->0, true = 0->1.
  SimTime time = 0;        ///< Device clock at flip.
};

/// The simulated DRAM module: row storage (CoW, lazily allocated),
/// row-buffer and refresh bookkeeping, disturbance accumulation with
/// closed-form burst fast path, TRR sampling and SECDED ECC filtering.
/// Every stored byte and flip event is deterministic in (geometry,
/// params, seed).
class DramDevice {
 public:
  DramDevice(const Geometry& geometry, const DeviceParams& params,
             std::uint64_t seed);

  /// Disturbance accumulated by one weak row this refresh window.
  struct RowDisturbance {
    std::uint32_t acts_above = 0;  ///< Activations of row-1 this window.
    std::uint32_t acts_below = 0;  ///< Activations of row+1 this window.
  };
  /// A flipped-but-not-yet-rewritten bit (ECC bookkeeping).
  struct LiveFlip {
    std::uint32_t col;
    std::uint8_t bit;
  };

  /// Complete mutable device state, captured copy-on-write: row payloads
  /// are shared with the live device (refcounted) and cloned only when one
  /// side writes, so capturing is O(rows touched), not O(bytes stored);
  /// the packed bookkeeping tables are captured at O(entries touched this
  /// window) likewise. The immutable members (geometry, params, mapping,
  /// weak-cell model) are not part of the image — an image only ever goes
  /// back into the device that produced it.
  struct Image {
    std::unordered_map<std::uint64_t, std::shared_ptr<std::uint8_t[]>> rows;
    std::vector<std::int64_t> open_row;
    std::vector<DisturbanceTable::Entry> disturbance;
    FlipLog flips;
    LiveFlipTable live_flips;
    TrrSampler trr_sampler;
    SimTime now = 0;
    SimTime next_refresh = 0;
    std::uint64_t mutation_epoch = 0;
    std::uint64_t total_flips = 0;
    std::uint64_t total_acts = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t trr_hits = 0;
    std::uint64_t ecc_corrected = 0;
    std::uint64_t ecc_uncorrectable = 0;
  };

  /// Capture the full mutable state (CoW; see Image).
  Image capture_image() const;
  /// Restore a previously captured image exactly — except the mutation
  /// epoch, which lands strictly above both the live and the captured
  /// value so epoch-keyed caches can never mistake pre-rollback state for
  /// post-rollback state (see mutation_epoch()).
  void restore_image(const Image& image);

  const Geometry& geometry() const noexcept { return geometry_; }
  const AddressMapping& mapping() const noexcept { return mapping_; }
  const WeakCellModel& weak_cells() const noexcept { return weak_cells_; }
  const DeviceParams& params() const noexcept { return params_; }

  // ---- Data path -----------------------------------------------------
  void read(PhysAddr addr, std::span<std::uint8_t> out);
  void write(PhysAddr addr, std::span<const std::uint8_t> in);
  std::uint8_t read_byte(PhysAddr addr);
  void write_byte(PhysAddr addr, std::uint8_t value);
  void fill(PhysAddr addr, std::uint8_t value, std::uint64_t len);

  // ---- Timing-visible access path (the attacker's view) ---------------
  /// Perform one uncached access: opens the row (activating it, which also
  /// exerts Rowhammer disturbance on neighbours) and returns the latency.
  /// This is the primitive behind both the hammer loop and the row-conflict
  /// timing side channel.
  SimTime access(PhysAddr addr);

  /// Batched hammer: equivalent to `iterations` rounds of `access()` over
  /// `aggressors` in order, but instead of stepping the model once per
  /// activation it advances the clock analytically between "interesting"
  /// events — refresh-window boundaries, TRR interventions and weak-cell
  /// threshold crossings, each solved for in closed form — and replays only
  /// the iterations containing such an event through the exact per-access
  /// path. Bit-identical to the slow loop: same flip sequence
  /// (addr/bit/direction/time), same refresh count, same TRR interventions
  /// and ECC bookkeeping. Falls back to the per-access loop for
  /// configurations the analytic model does not cover (zero-latency
  /// timings, TRR sampler thrashing).
  void hammer_burst(std::span<const PhysAddr> aggressors,
                    std::uint64_t iterations);

  // ---- Maintenance -----------------------------------------------------
  /// Advance the device clock without accesses (models the attacker waiting).
  void idle(SimTime duration);

  /// Force a full refresh now (normally triggered by the internal clock).
  void refresh_now();

  /// Deterministically flip one stored bit (fault-injection hook for tests
  /// and controlled experiments): toggles the bit, logs a FlipEvent and
  /// registers it with the ECC bookkeeping exactly like a disturbance flip.
  void inject_flip(PhysAddr addr, std::uint8_t bit);

  SimTime now() const noexcept { return now_; }

  /// Memory-mutation epoch: increments whenever stored bytes (or the ECC
  /// bookkeeping that shapes what read() returns) may have changed — every
  /// write/fill, every disturbance flip, every injected flip. Two read()s of
  /// the same range bracketed by an unchanged epoch return identical bytes,
  /// which is the invalidation contract the victim service's batched
  /// encrypt snapshot cache is built on.
  std::uint64_t mutation_epoch() const noexcept { return mutation_epoch_; }

  // ---- Flip log / statistics -------------------------------------------
  /// All flips since the last drain (in occurrence order).
  std::vector<FlipEvent> drain_flips();
  std::uint64_t total_flips() const noexcept { return total_flips_; }
  std::uint64_t total_activations() const noexcept { return total_acts_; }
  std::uint64_t refresh_count() const noexcept { return refreshes_; }
  std::uint64_t trr_interventions() const noexcept { return trr_hits_; }
  std::uint64_t ecc_corrected_bits() const noexcept { return ecc_corrected_; }
  std::uint64_t ecc_uncorrectable_words() const noexcept {
    return ecc_uncorrectable_;
  }

  /// Heap bytes of the representation-dependent bookkeeping (weak-cell
  /// arena, disturbance counters, TRR sampler, flip tables, row-buffer
  /// state) — what bench_geometry compares against the seed layout. Row
  /// payloads are excluded: both representations store those identically.
  std::uint64_t state_bytes() const noexcept;

 private:
  std::uint8_t* row_storage(std::uint64_t flat_row);
  const std::uint8_t* row_view(std::uint64_t flat_row) const;
  void advance(SimTime dt);
  void apply_disturbance(const DramAddress& aggressor);
  void check_victim_row(std::uint64_t victim_flat, const DramAddress& victim,
                        const RowDisturbance& d);
  bool aggressor_bit(const DramAddress& victim, std::int32_t delta,
                     std::uint32_t col, std::uint8_t bit);
  void trr_observe(std::uint64_t aggressor_flat);
  void clear_live_flips(std::uint64_t flat_row, std::uint32_t col,
                        std::uint64_t len);
  void ecc_filter(std::uint64_t flat_row, std::uint32_t col,
                  std::span<std::uint8_t> chunk);

  Geometry geometry_;
  DeviceParams params_;
  AddressMapping mapping_;
  WeakCellModel weak_cells_;

  // Lazily allocated row storage (zero-filled on first touch). Payloads
  // are refcounted so snapshots share them copy-on-write: row_storage()
  // clones a row iff an outstanding Image still references it.
  std::unordered_map<std::uint64_t, std::shared_ptr<std::uint8_t[]>> rows_;

  // Canonical all-zeros row, backing row_view() for untouched rows.
  std::unique_ptr<std::uint8_t[]> zero_row_;

  // Row-buffer state: open row per flat bank (-1 = closed).
  std::vector<std::int64_t> open_row_;

  // Disturbance counters for rows that contain weak cells, this window —
  // dense per-bank arrays over weak-row ordinals (the weak-cell arena's
  // RowIndex doubles as the presence test the seed's weak_row_ byte array
  // provided, without the byte-per-row memory floor).
  DisturbanceTable disturbance_;

  // Flip event log (SoA; coordinates re-derived at drain).
  FlipLog flips_;

  // Flipped-but-not-yet-rewritten bits (ECC bookkeeping), row-sorted SoA.
  LiveFlipTable live_flips_;

  // TRR sampler: activation counts of tracked rows this window.
  TrrSampler trr_sampler_;

  SimTime now_ = 0;
  SimTime next_refresh_ = 0;
  std::uint64_t mutation_epoch_ = 0;
  std::uint64_t total_flips_ = 0;
  std::uint64_t total_acts_ = 0;
  std::uint64_t refreshes_ = 0;
  std::uint64_t trr_hits_ = 0;
  std::uint64_t ecc_corrected_ = 0;
  std::uint64_t ecc_uncorrectable_ = 0;
};

}  // namespace explframe::dram
