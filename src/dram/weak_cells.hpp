// Disturbance-prone ("weak") DRAM cell population.
//
// Kim et al. (ISCA'14) measured that a small, module-dependent fraction of
// cells flip when a neighbouring row is activated more than a per-cell
// threshold number of times within one refresh window; thresholds cluster
// around 50K-140K activations, the flip direction depends on whether the
// cell is a true-cell (charged = 1, flips 1->0) or anti-cell (charged = 0,
// flips 0->1), and flips are strongly repeatable at the same cell.
//
// WeakCellModel samples such a population deterministically from a seed and
// stores it as one bit-packed SoA arena sorted by flat row: a RowIndex maps
// vulnerable rows to dense ordinals, per-row spans address contiguous
// record runs, and each field lives in its own PackedVector at exactly the
// width the domain needs (col:28, bit:3, threshold:19, polarity:1,
// coupling:27). The seed layout — an unordered_map of heap vectors — cost
// ~100 bytes of node overhead per cell; the arena costs ~10 bytes per cell
// with no dense per-row floor, which is what lets multi-GB geometries fit.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dram/geometry.hpp"
#include "support/packed.hpp"
#include "support/rng.hpp"

namespace explframe::dram {

/// One disturbance-prone cell within a row (decoded view; the model stores
/// cells bit-packed, not as this struct).
struct WeakCell {
  std::uint32_t col = 0;     ///< Byte offset within the row.
  std::uint8_t bit = 0;      ///< Bit index within the byte, 0..7.
  std::uint32_t threshold = 0;  ///< Activations-within-window needed to flip.
  bool true_cell = true;     ///< true: flips 1->0; false (anti): flips 0->1.
  /// Sensitivity to each aggressor side; double-sided hammering sums both.
  /// Values in [0,1]; at least one side is 1.0.
  float couple_above = 1.0F;  ///< Coupling to row-1 (the row above).
  float couple_below = 1.0F;  ///< Coupling to row+1 (the row below).
};

/// Statistical model of the module's Rowhammer-vulnerable cell
/// population: density, threshold distribution and polarity mix.
struct WeakCellParams {
  /// Expected weak cells per MiB of DRAM. Kim'14 observed 0.05 - 10^4 errors
  /// per 2^30 cells depending on module; the default (4/MiB ~ 4096/GiB)
  /// models a typically vulnerable DDR3 part.
  double cells_per_mib = 4.0;
  /// Log-normal threshold distribution parameters (median ~ 60K activations).
  double threshold_log_mean = 11.0;   ///< ln(60K) ~ 11.0
  double threshold_log_sigma = 0.35;
  std::uint32_t threshold_min = 25'000;
  std::uint32_t threshold_max = 400'000;
  /// Fraction of weak cells that are true-cells.
  double true_cell_fraction = 0.55;
  /// Fraction of weak cells coupled to only one neighbour side.
  double single_sided_fraction = 0.30;
};

class WeakCellModel;

/// Lightweight view over one row's contiguous run of arena records.
/// Indexing decodes a WeakCell by value; `ordinal(i)` exposes the global
/// arena ordinal so hot paths can read single fields without decoding.
class WeakCellSpan {
 public:
  /// Forward iterator yielding decoded WeakCell values.
  class Iterator {
   public:
    /// Decoded record at the current position.
    WeakCell operator*() const;
    /// Advance to the next record.
    Iterator& operator++() noexcept {
      ++pos_;
      return *this;
    }
    /// Position equality (same span assumed).
    bool operator!=(const Iterator& other) const noexcept {
      return pos_ != other.pos_;
    }

   private:
    friend class WeakCellSpan;
    Iterator(const WeakCellModel* model, std::size_t pos) noexcept
        : model_(model), pos_(pos) {}
    const WeakCellModel* model_;
    std::size_t pos_;
  };

  /// An empty span (no backing model).
  WeakCellSpan() = default;

  /// Number of weak cells in the row.
  std::size_t size() const noexcept { return end_ - begin_; }
  /// True when the row has no weak cells.
  bool empty() const noexcept { return begin_ == end_; }
  /// Decoded `i`-th cell of the row (CHECK via arena bounds).
  WeakCell operator[](std::size_t i) const;
  /// Global arena ordinal of the `i`-th cell (for per-field access).
  std::size_t ordinal(std::size_t i) const noexcept { return begin_ + i; }
  /// Iteration over decoded cells.
  Iterator begin() const noexcept { return Iterator(model_, begin_); }
  /// Past-the-end iterator.
  Iterator end() const noexcept { return Iterator(model_, end_); }

 private:
  friend class WeakCellModel;
  WeakCellSpan(const WeakCellModel* model, std::size_t begin,
               std::size_t end) noexcept
      : model_(model), begin_(begin), end_(end) {}
  const WeakCellModel* model_ = nullptr;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
};

/// Immutable population of weak cells stored as a bit-packed SoA arena
/// sorted by flat row, with a two-level RowIndex directory for row lookup.
class WeakCellModel {
 public:
  /// Packed field widths. Out-of-range values CHECK at construction —
  /// never silently truncated.
  static constexpr unsigned kRowBits = 40;
  static constexpr unsigned kColBits = 28;        ///< byte offset in row
  static constexpr unsigned kBitBits = 3;         ///< bit index 0..7
  static constexpr unsigned kThresholdBits = 19;  ///< activations, < 2^19
  static constexpr unsigned kCoupleBits = 27;     ///< 2+2 codes + mantissa

  /// Sample a population deterministically from `seed`.
  WeakCellModel(const Geometry& geometry, const WeakCellParams& params,
                std::uint64_t seed);
  /// Build from an explicit (row, cell) population — the differential and
  /// property harnesses use this; the arena canonicalises row order while
  /// preserving each row's presentation order, dropping later duplicates
  /// of the same (col, bit) within a row.
  WeakCellModel(const Geometry& geometry, const WeakCellParams& params,
                std::span<const std::pair<std::uint64_t, WeakCell>> cells);

  /// Weak cells in the given row (empty span if none).
  WeakCellSpan cells_in_row(std::uint64_t flat_row) const;

  /// Total cells across all rows.
  std::size_t total_cells() const noexcept { return total_; }
  /// The sampling parameters this population was drawn from.
  const WeakCellParams& params() const noexcept { return params_; }

  /// Rows that contain at least one weak cell, ascending (derived from the
  /// sorted directory — independent of construction order).
  std::vector<std::uint64_t> vulnerable_rows() const;

  /// Sorted directory mapping vulnerable rows to dense row ordinals.
  const RowIndex& row_index() const noexcept { return rows_; }
  /// First arena ordinal of the `row_ordinal`-th vulnerable row; index
  /// size() gives the arena end (CHECK: row_ordinal <= size()).
  std::size_t row_span_begin(std::size_t row_ordinal) const;

  /// Single-field arena reads for hot paths (CHECK: ordinal in range).
  std::uint32_t threshold_at(std::size_t ordinal) const {
    return static_cast<std::uint32_t>(threshold_.get(ordinal));
  }
  /// Byte offset within the row of the `ordinal`-th arena record.
  std::uint32_t col_at(std::size_t ordinal) const {
    return static_cast<std::uint32_t>(col_.get(ordinal));
  }
  /// Bit index within the byte of the `ordinal`-th arena record.
  std::uint8_t bit_at(std::size_t ordinal) const {
    return static_cast<std::uint8_t>(bit_.get(ordinal));
  }
  /// Polarity of the `ordinal`-th arena record.
  bool true_cell_at(std::size_t ordinal) const {
    return polarity_.get(ordinal) != 0;
  }
  /// Coupling to the row above for the `ordinal`-th arena record.
  float couple_above_at(std::size_t ordinal) const;
  /// Coupling to the row below for the `ordinal`-th arena record.
  float couple_below_at(std::size_t ordinal) const;
  /// Fully decoded record (CHECK: ordinal in range).
  WeakCell cell_at(std::size_t ordinal) const;

  /// Heap bytes held by the packed arena and its directory.
  std::uint64_t state_bytes() const noexcept;

 private:
  void build(const Geometry& geometry,
             std::vector<std::pair<std::uint64_t, WeakCell>> staged);

  WeakCellParams params_;
  RowIndex rows_;
  std::vector<std::uint32_t> row_start_;  ///< row ordinal -> arena begin
  PackedVector col_{kColBits};
  PackedVector bit_{kBitBits};
  PackedVector threshold_{kThresholdBits};
  PackedVector polarity_{1};
  PackedVector couple_{kCoupleBits};
  std::size_t total_ = 0;
};

}  // namespace explframe::dram
