// Disturbance-prone ("weak") DRAM cell population.
//
// Kim et al. (ISCA'14) measured that a small, module-dependent fraction of
// cells flip when a neighbouring row is activated more than a per-cell
// threshold number of times within one refresh window; thresholds cluster
// around 50K-140K activations, the flip direction depends on whether the
// cell is a true-cell (charged = 1, flips 1->0) or anti-cell (charged = 0,
// flips 0->1), and flips are strongly repeatable at the same cell.
//
// WeakCellModel samples such a population deterministically from a seed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dram/geometry.hpp"
#include "support/rng.hpp"

namespace explframe::dram {

/// One disturbance-prone cell within a row.
struct WeakCell {
  std::uint32_t col = 0;     ///< Byte offset within the row.
  std::uint8_t bit = 0;      ///< Bit index within the byte, 0..7.
  std::uint32_t threshold = 0;  ///< Activations-within-window needed to flip.
  bool true_cell = true;     ///< true: flips 1->0; false (anti): flips 0->1.
  /// Sensitivity to each aggressor side; double-sided hammering sums both.
  /// Values in [0,1]; at least one side is 1.0.
  float couple_above = 1.0F;  ///< Coupling to row-1 (the row above).
  float couple_below = 1.0F;  ///< Coupling to row+1 (the row below).
};

/// Statistical model of the module's Rowhammer-vulnerable cell
/// population: density, threshold distribution and polarity mix.
struct WeakCellParams {
  /// Expected weak cells per MiB of DRAM. Kim'14 observed 0.05 - 10^4 errors
  /// per 2^30 cells depending on module; the default (4/MiB ~ 4096/GiB)
  /// models a typically vulnerable DDR3 part.
  double cells_per_mib = 4.0;
  /// Log-normal threshold distribution parameters (median ~ 60K activations).
  double threshold_log_mean = 11.0;   ///< ln(60K) ~ 11.0
  double threshold_log_sigma = 0.35;
  std::uint32_t threshold_min = 25'000;
  std::uint32_t threshold_max = 400'000;
  /// Fraction of weak cells that are true-cells.
  double true_cell_fraction = 0.55;
  /// Fraction of weak cells coupled to only one neighbour side.
  double single_sided_fraction = 0.30;
};

/// Immutable population of weak cells, indexed by flat row.
class WeakCellModel {
 public:
  WeakCellModel(const Geometry& geometry, const WeakCellParams& params,
                std::uint64_t seed);

  /// Weak cells in the given row (empty vector if none).
  const std::vector<WeakCell>& cells_in_row(std::uint64_t flat_row) const;

  std::size_t total_cells() const noexcept { return total_; }
  const WeakCellParams& params() const noexcept { return params_; }

  /// Rows that contain at least one weak cell (for test/diagnostic use).
  std::vector<std::uint64_t> vulnerable_rows() const;

 private:
  WeakCellParams params_;
  std::unordered_map<std::uint64_t, std::vector<WeakCell>> by_row_;
  std::size_t total_ = 0;
  static const std::vector<WeakCell> kEmpty;
};

}  // namespace explframe::dram
