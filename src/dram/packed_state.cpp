#include "dram/packed_state.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace explframe::dram {

// ---- DisturbanceTable ------------------------------------------------------

DisturbanceTable::DisturbanceTable(const RowIndex& weak_rows,
                                   const Geometry& geometry) {
  const std::uint64_t banks = geometry.total_banks();
  base_.reserve(static_cast<std::size_t>(banks) + 1);
  for (std::uint64_t b = 0; b < banks; ++b)
    base_.push_back(static_cast<std::uint32_t>(
        weak_rows.lower_bound(b * geometry.rows_per_bank)));
  base_.push_back(static_cast<std::uint32_t>(weak_rows.size()));
  banks_.resize(static_cast<std::size_t>(banks));
}

std::size_t DisturbanceTable::bank_of(std::size_t ordinal) const noexcept {
  // base_ is non-decreasing; the owning bank is the last one whose base is
  // <= ordinal (empty banks share their successor's base, so that bank is
  // never empty for a valid ordinal).
  const auto it = std::upper_bound(base_.begin(), base_.end(),
                                   static_cast<std::uint32_t>(ordinal));
  return static_cast<std::size_t>(it - base_.begin()) - 1;
}

DisturbanceTable::Bank& DisturbanceTable::materialise(std::size_t bank) {
  Bank& slab = banks_[bank];
  if (slab.tag.empty()) {
    const std::size_t span = base_[bank + 1] - base_[bank];
    slab.above.assign(span, 0);
    slab.below.assign(span, 0);
    slab.tag.assign(span, 0);
  }
  return slab;
}

std::uint32_t DisturbanceTable::above(std::size_t ordinal) const noexcept {
  const std::size_t b = bank_of(ordinal);
  const Bank& slab = banks_[b];
  if (slab.tag.empty()) return 0;
  const std::size_t i = ordinal - base_[b];
  return slab.tag[i] == window_ ? slab.above[i] : 0;
}

std::uint32_t DisturbanceTable::below(std::size_t ordinal) const noexcept {
  const std::size_t b = bank_of(ordinal);
  const Bank& slab = banks_[b];
  if (slab.tag.empty()) return 0;
  const std::size_t i = ordinal - base_[b];
  return slab.tag[i] == window_ ? slab.below[i] : 0;
}

DisturbanceTable::Counters DisturbanceTable::touch(std::size_t ordinal) {
  const std::size_t b = bank_of(ordinal);
  Bank& slab = materialise(b);
  const std::size_t i = ordinal - base_[b];
  if (slab.tag[i] != window_) {
    slab.tag[i] = window_;
    slab.above[i] = 0;
    slab.below[i] = 0;
    touched_.push_back(static_cast<std::uint32_t>(ordinal));
  }
  return {slab.above[i], slab.below[i]};
}

void DisturbanceTable::reset(std::size_t ordinal) noexcept {
  const std::size_t b = bank_of(ordinal);
  Bank& slab = banks_[b];
  if (slab.tag.empty()) return;
  const std::size_t i = ordinal - base_[b];
  if (slab.tag[i] != window_) return;
  slab.above[i] = 0;
  slab.below[i] = 0;
}

void DisturbanceTable::clear_window() noexcept {
  touched_.clear();
  if (++window_ == 0) {
    // Epoch wrap (once per 2^32 refreshes): stale tags could alias the
    // recycled window id, so hard-reset the allocated tags.
    for (Bank& slab : banks_) std::fill(slab.tag.begin(), slab.tag.end(), 0);
    window_ = 1;
  }
}

std::vector<DisturbanceTable::Entry> DisturbanceTable::capture() const {
  std::vector<Entry> entries;
  entries.reserve(touched_.size());
  for (const std::uint32_t ordinal : touched_) {
    const std::size_t b = bank_of(ordinal);
    const Bank& slab = banks_[b];
    const std::size_t i = ordinal - base_[b];
    entries.push_back({ordinal, slab.above[i], slab.below[i]});
  }
  return entries;
}

void DisturbanceTable::restore(std::span<const Entry> entries) {
  clear_window();
  for (const Entry& e : entries) {
    const Counters c = touch(e.ordinal);
    c.above = e.above;
    c.below = e.below;
  }
}

std::uint64_t DisturbanceTable::heap_bytes() const noexcept {
  std::uint64_t bytes = base_.capacity() * sizeof(std::uint32_t) +
                        banks_.capacity() * sizeof(Bank) +
                        touched_.capacity() * sizeof(std::uint32_t);
  for (const Bank& slab : banks_)
    bytes += (slab.above.capacity() + slab.below.capacity() +
              slab.tag.capacity()) *
             sizeof(std::uint32_t);
  return bytes;
}

// ---- TrrSampler ------------------------------------------------------------

std::size_t TrrSampler::find(std::uint64_t row) const noexcept {
  for (std::size_t i = 0; i < rows_.size(); ++i)
    if (rows_[i] == row) return i;
  return kNpos;
}

std::size_t TrrSampler::insert(std::uint64_t row) {
  if (rows_.size() >= capacity_ && !rows_.empty()) {
    std::size_t coldest = 0;
    for (std::size_t i = 1; i < rows_.size(); ++i)
      if (counts_[i] < counts_[coldest] ||
          (counts_[i] == counts_[coldest] && rows_[i] < rows_[coldest]))
        coldest = i;
    rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(coldest));
    counts_.erase(counts_.begin() + static_cast<std::ptrdiff_t>(coldest));
  }
  rows_.push_back(row);
  counts_.push_back(0);
  return rows_.size() - 1;
}

bool operator==(const TrrSampler& a, const TrrSampler& b) {
  if (a.capacity_ != b.capacity_ || a.rows_.size() != b.rows_.size())
    return false;
  auto sorted = [](const TrrSampler& s) {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> v;
    v.reserve(s.rows_.size());
    for (std::size_t i = 0; i < s.rows_.size(); ++i)
      v.emplace_back(s.rows_[i], s.counts_[i]);
    std::sort(v.begin(), v.end());
    return v;
  };
  return sorted(a) == sorted(b);
}

// ---- LiveFlipTable ---------------------------------------------------------

void LiveFlipTable::add(std::uint64_t row, std::uint32_t col,
                        std::uint8_t bit) {
  const auto it = std::upper_bound(rows_.begin(), rows_.end(), row);
  const std::size_t pos = static_cast<std::size_t>(it - rows_.begin());
  rows_.insert(it, row);
  cols_.insert(cols_.begin() + static_cast<std::ptrdiff_t>(pos), col);
  bits_.insert(bits_.begin() + static_cast<std::ptrdiff_t>(pos), bit);
}

void LiveFlipTable::erase_cols(std::uint64_t row, std::uint64_t col,
                               std::uint64_t len) {
  const Range r = row_range(row);
  if (r.begin == r.end) return;
  std::size_t out = r.begin;
  for (std::size_t i = r.begin; i < r.end; ++i) {
    if (cols_[i] >= col && cols_[i] < col + len) continue;  // dropped
    rows_[out] = rows_[i];
    cols_[out] = cols_[i];
    bits_[out] = bits_[i];
    ++out;
  }
  if (out == r.end) return;
  rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(out),
              rows_.begin() + static_cast<std::ptrdiff_t>(r.end));
  cols_.erase(cols_.begin() + static_cast<std::ptrdiff_t>(out),
              cols_.begin() + static_cast<std::ptrdiff_t>(r.end));
  bits_.erase(bits_.begin() + static_cast<std::ptrdiff_t>(out),
              bits_.begin() + static_cast<std::ptrdiff_t>(r.end));
}

LiveFlipTable::Range LiveFlipTable::row_range(
    std::uint64_t row) const noexcept {
  const auto lo = std::lower_bound(rows_.begin(), rows_.end(), row);
  const auto hi = std::upper_bound(lo, rows_.end(), row);
  return {static_cast<std::size_t>(lo - rows_.begin()),
          static_cast<std::size_t>(hi - rows_.begin())};
}

}  // namespace explframe::dram
