// Rowhammer primitives built on the uncached-access path of DramDevice:
// the hammer loop itself (flush+read alternation) and the row-conflict
// timing side channel the attacker uses to group addresses by bank.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dram/dram_device.hpp"

namespace explframe::dram {

/// Outcome of one (single- or double-sided) hammer run: flips induced,
/// refresh/TRR interventions seen, and simulated time spent.
struct HammerResult {
  /// False: the requested aggressor rows do not exist (e.g. a neighbour of
  /// an edge row) and nothing was hammered. Callers must not read an
  /// invalid result as "hammered, no flips".
  bool valid = true;
  std::uint64_t iterations = 0;  ///< Alternation rounds executed.
  SimTime elapsed = 0;           ///< Simulated time the loop took.
  std::vector<FlipEvent> flips;  ///< Flips induced during this loop.
};

/// Drives hammering sessions against a DramDevice. All methods operate on
/// physical addresses; callers in the attack layer obtain them through the
/// simulated MMU (i.e. by accessing their own virtual memory).
class HammerEngine {
 public:
  explicit HammerEngine(DramDevice& device) : device_(&device) {}

  /// One iteration = one uncached access of every aggressor in order
  /// (the classic `loop { read a; read b; clflush a; clflush b; }`).
  /// Aggressors in the same bank keep evicting each other's row buffer, so
  /// each access is a row activation. Runs on the device's batched
  /// hammer_burst path (bit-identical to per-access, orders of magnitude
  /// faster).
  HammerResult hammer(std::span<const PhysAddr> aggressors,
                      std::uint64_t iterations);

  /// Double-sided hammer of the rows adjacent to `victim_row_addr`.
  /// Returns valid=false (iterations=0) if either neighbour row is out of
  /// range.
  HammerResult hammer_double_sided(PhysAddr victim_row_addr,
                                   std::uint64_t iterations);

  /// Single-sided hammer: alternates `aggressor` with a same-bank row far
  /// enough away (8 rows) that its own neighbourhood does not overlap the
  /// target's. Returns valid=false if no such partner row exists.
  HammerResult hammer_single_sided(PhysAddr aggressor,
                                   std::uint64_t iterations);

  /// Row-conflict timing probe: average latency (ns) of alternately
  /// accessing `a` and `b`. Same-bank/different-row pairs show conflict
  /// latency; different-bank pairs show hit latency. This is the only
  /// physical-layout oracle an unprivileged attacker has.
  double time_alternating(PhysAddr a, PhysAddr b, std::uint32_t probes = 64);

  /// Classifies a pair as same-bank using the timing probe and a threshold
  /// halfway between hit and conflict latency.
  bool same_bank_by_timing(PhysAddr a, PhysAddr b, std::uint32_t probes = 64);

 private:
  DramDevice* device_;
};

}  // namespace explframe::dram
