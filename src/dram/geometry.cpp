#include "dram/geometry.hpp"

#include <sstream>

#include "support/check.hpp"

namespace explframe::dram {

Geometry Geometry::with_capacity(std::uint64_t bytes) {
  Geometry g;
  EXPLFRAME_CHECK_MSG((bytes & (bytes - 1)) == 0,
                      "DRAM capacity must be a power of two");
  const std::uint64_t rows = bytes / (static_cast<std::uint64_t>(g.channels) *
                                      g.ranks * g.banks * g.row_bytes);
  EXPLFRAME_CHECK_MSG(rows >= 64, "capacity too small for geometry");
  // Keep rows-per-bank <= 64Ki (DDR3 row-address width); add ranks beyond.
  std::uint64_t rpb = rows;
  std::uint32_t ranks = 1;
  while (rpb > 65536) {
    rpb /= 2;
    ranks *= 2;
  }
  g.rows_per_bank = static_cast<std::uint32_t>(rpb);
  g.ranks = ranks;
  EXPLFRAME_CHECK(g.total_bytes() == bytes);
  return g;
}

std::string Geometry::describe() const {
  std::ostringstream os;
  os << channels << " channel(s) x " << ranks << " rank(s) x " << banks
     << " bank(s) x " << rows_per_bank << " rows x " << row_bytes
     << " B/row = " << total_bytes() / kMiB << " MiB";
  return os.str();
}

}  // namespace explframe::dram
