#include "dram/address_mapping.hpp"

#include <bit>
#include <limits>

#include "support/check.hpp"

namespace explframe::dram {

namespace {
std::uint32_t log2_exact(std::uint64_t v, const char* what) {
  EXPLFRAME_CHECK_MSG(v != 0 && (v & (v - 1)) == 0, what);
  return static_cast<std::uint32_t>(std::countr_zero(v));
}
}  // namespace

const char* to_string(MappingScheme scheme) noexcept {
  switch (scheme) {
    case MappingScheme::kRowMajor:
      return "row-major";
    case MappingScheme::kBankXor:
      return "bank-xor";
  }
  return "?";
}

AddressMapping::AddressMapping(const Geometry& geometry, MappingScheme scheme)
    : geometry_(geometry),
      scheme_(scheme),
      col_bits_(log2_exact(geometry.row_bytes, "row_bytes must be pow2")),
      bank_bits_(log2_exact(geometry.banks, "banks must be pow2")),
      rank_bits_(log2_exact(geometry.ranks, "ranks must be pow2")),
      channel_bits_(log2_exact(geometry.channels, "channels must be pow2")),
      row_bits_(log2_exact(geometry.rows_per_bank, "rows must be pow2")) {}

std::uint32_t AddressMapping::bank_hash(std::uint32_t bank,
                                        std::uint32_t row) const noexcept {
  if (scheme_ == MappingScheme::kRowMajor || bank_bits_ == 0) return bank;
  // XOR the low row bits into the bank index (Intel-style BA hashing). The
  // transform is an involution for fixed row, so decode/encode stay inverse.
  const std::uint32_t mask = (1u << bank_bits_) - 1;
  return bank ^ (row & mask);
}

DramAddress AddressMapping::decode(PhysAddr addr) const noexcept {
  DramAddress c;
  std::uint64_t v = addr;
  c.col = static_cast<std::uint32_t>(v & ((1ull << col_bits_) - 1));
  v >>= col_bits_;
  std::uint32_t bank_field =
      static_cast<std::uint32_t>(v & ((1ull << bank_bits_) - 1));
  v >>= bank_bits_;
  c.rank = static_cast<std::uint32_t>(v & ((1ull << rank_bits_) - 1));
  v >>= rank_bits_;
  c.channel = static_cast<std::uint32_t>(v & ((1ull << channel_bits_) - 1));
  v >>= channel_bits_;
  c.row = static_cast<std::uint32_t>(v & ((1ull << row_bits_) - 1));
  c.bank = bank_hash(bank_field, c.row);
  return c;
}

PhysAddr AddressMapping::encode(const DramAddress& coord) const noexcept {
  const std::uint32_t bank_field = bank_hash(coord.bank, coord.row);
  std::uint64_t v = coord.row;
  v = (v << channel_bits_) | coord.channel;
  v = (v << rank_bits_) | coord.rank;
  v = (v << bank_bits_) | bank_field;
  v = (v << col_bits_) | coord.col;
  return v;
}

bool AddressMapping::same_bank(PhysAddr a, PhysAddr b) const noexcept {
  const DramAddress ca = decode(a);
  const DramAddress cb = decode(b);
  return ca.channel == cb.channel && ca.rank == cb.rank && ca.bank == cb.bank;
}

std::int64_t AddressMapping::row_distance(PhysAddr a,
                                          PhysAddr b) const noexcept {
  if (!same_bank(a, b)) return std::numeric_limits<std::int64_t>::max();
  const DramAddress ca = decode(a);
  const DramAddress cb = decode(b);
  return static_cast<std::int64_t>(cb.row) - static_cast<std::int64_t>(ca.row);
}

bool AddressMapping::neighbor_row_addr(PhysAddr addr, std::int32_t delta,
                                       std::uint32_t col,
                                       PhysAddr& out) const noexcept {
  DramAddress c = decode(addr);
  const std::int64_t row = static_cast<std::int64_t>(c.row) + delta;
  if (row < 0 || row >= static_cast<std::int64_t>(geometry_.rows_per_bank))
    return false;
  c.row = static_cast<std::uint32_t>(row);
  c.col = col;
  out = encode(c);
  return true;
}

}  // namespace explframe::dram
