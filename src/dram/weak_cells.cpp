#include "dram/weak_cells.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/check.hpp"
#include "support/units.hpp"

namespace explframe::dram {
namespace {

// Coupling values are drawn from exactly three shapes: 0.0f, 1.0f, or
// float(0.5 + 0.5*u01) in [0.5, 1.0) — the latter has a fixed biased
// exponent of 126, so the 23 mantissa bits encode it losslessly. Each side
// gets a 2-bit shape code (0 = zero, 1 = one, 2 = fractional) and the two
// sides share one mantissa field: generation never produces two distinct
// fractional sides, and the constructor CHECKs rather than rounding if a
// hand-built population tries.
constexpr std::uint32_t kFracExponent = 126;
constexpr std::uint32_t kMantissaMask = (1u << 23) - 1;

std::uint64_t encode_couple(float above, float below) {
  std::uint32_t mantissa = 0;
  bool have_mantissa = false;
  const auto side = [&](float v) -> std::uint64_t {
    if (v == 0.0F) return 0;
    if (v == 1.0F) return 1;
    const auto raw = std::bit_cast<std::uint32_t>(v);
    EXPLFRAME_CHECK_MSG((raw >> 23) == kFracExponent,
                        "weak-cell coupling outside {0, 1} U [0.5, 1)");
    const std::uint32_t m = raw & kMantissaMask;
    EXPLFRAME_CHECK_MSG(!have_mantissa || m == mantissa,
                        "weak-cell coupling: two distinct fractional sides");
    mantissa = m;
    have_mantissa = true;
    return 2;
  };
  const std::uint64_t a = side(above);
  const std::uint64_t b = side(below);
  return (a << 25) | (b << 23) | mantissa;
}

float decode_side(std::uint64_t code, std::uint64_t mantissa) {
  if (code == 0) return 0.0F;
  if (code == 1) return 1.0F;
  return std::bit_cast<float>((kFracExponent << 23) |
                              static_cast<std::uint32_t>(mantissa));
}

void decode_couple(std::uint64_t packed, float& above, float& below) {
  const std::uint64_t mantissa = packed & kMantissaMask;
  above = decode_side((packed >> 25) & 3, mantissa);
  below = decode_side((packed >> 23) & 3, mantissa);
}

}  // namespace

WeakCell WeakCellSpan::Iterator::operator*() const {
  return model_->cell_at(pos_);
}

WeakCell WeakCellSpan::operator[](std::size_t i) const {
  return model_->cell_at(begin_ + i);
}

WeakCellModel::WeakCellModel(const Geometry& geometry,
                             const WeakCellParams& params, std::uint64_t seed)
    : params_(params) {
  EXPLFRAME_CHECK(params.cells_per_mib >= 0.0);
  Rng rng(seed ^ 0xdead5eedULL);

  const double expected =
      params.cells_per_mib *
      (static_cast<double>(geometry.total_bytes()) / static_cast<double>(kMiB));
  // Sample the population count from Poisson via normal approximation for
  // large means, exact inversion for small.
  std::size_t count;
  if (expected > 64.0) {
    count = static_cast<std::size_t>(std::max(
        0.0, std::round(rng.normal(expected, std::sqrt(expected)))));
  } else {
    // Knuth's algorithm.
    const double limit = std::exp(-expected);
    double prod = rng.uniform01();
    count = 0;
    while (prod > limit) {
      ++count;
      prod *= rng.uniform01();
    }
  }

  const std::uint64_t rows = geometry.total_rows();
  std::vector<std::pair<std::uint64_t, WeakCell>> staged;
  staged.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    WeakCell cell;
    cell.col = static_cast<std::uint32_t>(rng.uniform(geometry.row_bytes));
    cell.bit = static_cast<std::uint8_t>(rng.uniform(8));
    const double t =
        std::exp(rng.normal(params.threshold_log_mean, params.threshold_log_sigma));
    cell.threshold = static_cast<std::uint32_t>(std::clamp<double>(
        t, params.threshold_min, params.threshold_max));
    cell.true_cell = rng.bernoulli(params.true_cell_fraction);
    if (rng.bernoulli(params.single_sided_fraction)) {
      if (rng.bernoulli(0.5)) {
        cell.couple_above = 1.0F;
        cell.couple_below = 0.0F;
      } else {
        cell.couple_above = 0.0F;
        cell.couple_below = 1.0F;
      }
    } else {
      // Both sides couple; the weaker side still contributes.
      cell.couple_above = 1.0F;
      cell.couple_below =
          static_cast<float>(0.5 + 0.5 * rng.uniform01());
      if (rng.bernoulli(0.5)) std::swap(cell.couple_above, cell.couple_below);
    }
    staged.emplace_back(rng.uniform(rows), cell);
  }
  build(geometry, std::move(staged));
}

WeakCellModel::WeakCellModel(
    const Geometry& geometry, const WeakCellParams& params,
    std::span<const std::pair<std::uint64_t, WeakCell>> cells)
    : params_(params) {
  build(geometry, {cells.begin(), cells.end()});
}

void WeakCellModel::build(
    const Geometry& geometry,
    std::vector<std::pair<std::uint64_t, WeakCell>> staged) {
  EXPLFRAME_CHECK_MSG(geometry.total_rows() <= (1ull << kRowBits),
                      "geometry exceeds the 40-bit flat-row space");
  // Canonical arena order: ascending row, presentation order within a row
  // (matching the seed layout's per-row insertion order, which the golden
  // flip logs depend on).
  std::stable_sort(staged.begin(), staged.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  // Keep the first occurrence of each (col, bit) within a row — identical
  // to the seed layout's skip-at-insert dedup.
  std::vector<std::pair<std::uint64_t, WeakCell>> kept;
  kept.reserve(staged.size());
  std::size_t run_begin = 0;  // first kept entry of the current row
  for (const auto& [row, cell] : staged) {
    if (!kept.empty() && kept.back().first != row) run_begin = kept.size();
    bool dup = false;
    for (std::size_t j = run_begin; j < kept.size(); ++j) {
      if (kept[j].second.col == cell.col && kept[j].second.bit == cell.bit) {
        dup = true;
        break;
      }
    }
    if (!dup) kept.emplace_back(row, cell);
  }

  std::vector<std::uint64_t> rows;
  col_.reserve(kept.size());
  bit_.reserve(kept.size());
  threshold_.reserve(kept.size());
  polarity_.reserve(kept.size());
  couple_.reserve(kept.size());
  for (const auto& [row, cell] : kept) {
    if (rows.empty() || rows.back() != row) {
      rows.push_back(row);
      row_start_.push_back(static_cast<std::uint32_t>(col_.size()));
    }
    col_.push_back(cell.col);
    bit_.push_back(cell.bit);
    threshold_.push_back(cell.threshold);
    polarity_.push_back(cell.true_cell ? 1 : 0);
    couple_.push_back(encode_couple(cell.couple_above, cell.couple_below));
  }
  row_start_.push_back(static_cast<std::uint32_t>(col_.size()));
  // At realistic densities (~1 cell per vulnerable row) the geometric
  // push_back growth of row_start_ would otherwise be a sizeable slice of
  // the whole arena; the build is one-shot, so trim it.
  row_start_.shrink_to_fit();
  rows_ = RowIndex(rows, geometry.total_rows());
  total_ = kept.size();
}

WeakCellSpan WeakCellModel::cells_in_row(std::uint64_t flat_row) const {
  const std::size_t o = rows_.find(flat_row);
  if (o == RowIndex::kNpos) return {};
  return {this, row_start_[o], row_start_[o + 1]};
}

std::vector<std::uint64_t> WeakCellModel::vulnerable_rows() const {
  std::vector<std::uint64_t> rows;
  rows.reserve(rows_.size());
  for (std::size_t o = 0; o < rows_.size(); ++o) rows.push_back(rows_.key_at(o));
  return rows;
}

std::size_t WeakCellModel::row_span_begin(std::size_t row_ordinal) const {
  EXPLFRAME_CHECK(row_ordinal < row_start_.size());
  return row_start_[row_ordinal];
}

float WeakCellModel::couple_above_at(std::size_t ordinal) const {
  const std::uint64_t packed = couple_.get(ordinal);
  return decode_side((packed >> 25) & 3, packed & kMantissaMask);
}

float WeakCellModel::couple_below_at(std::size_t ordinal) const {
  const std::uint64_t packed = couple_.get(ordinal);
  return decode_side((packed >> 23) & 3, packed & kMantissaMask);
}

WeakCell WeakCellModel::cell_at(std::size_t ordinal) const {
  WeakCell cell;
  cell.col = static_cast<std::uint32_t>(col_.get(ordinal));
  cell.bit = static_cast<std::uint8_t>(bit_.get(ordinal));
  cell.threshold = static_cast<std::uint32_t>(threshold_.get(ordinal));
  cell.true_cell = polarity_.get(ordinal) != 0;
  decode_couple(couple_.get(ordinal), cell.couple_above, cell.couple_below);
  return cell;
}

std::uint64_t WeakCellModel::state_bytes() const noexcept {
  return rows_.heap_bytes() +
         row_start_.capacity() * sizeof(std::uint32_t) + col_.heap_bytes() +
         bit_.heap_bytes() + threshold_.heap_bytes() + polarity_.heap_bytes() +
         couple_.heap_bytes();
}

}  // namespace explframe::dram
