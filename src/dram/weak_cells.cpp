#include "dram/weak_cells.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/units.hpp"

namespace explframe::dram {

const std::vector<WeakCell> WeakCellModel::kEmpty{};

WeakCellModel::WeakCellModel(const Geometry& geometry,
                             const WeakCellParams& params, std::uint64_t seed)
    : params_(params) {
  EXPLFRAME_CHECK(params.cells_per_mib >= 0.0);
  Rng rng(seed ^ 0xdead5eedULL);

  const double expected =
      params.cells_per_mib *
      (static_cast<double>(geometry.total_bytes()) / static_cast<double>(kMiB));
  // Sample the population count from Poisson via normal approximation for
  // large means, exact inversion for small.
  std::size_t count;
  if (expected > 64.0) {
    count = static_cast<std::size_t>(std::max(
        0.0, std::round(rng.normal(expected, std::sqrt(expected)))));
  } else {
    // Knuth's algorithm.
    const double limit = std::exp(-expected);
    double prod = rng.uniform01();
    count = 0;
    while (prod > limit) {
      ++count;
      prod *= rng.uniform01();
    }
  }

  const std::uint64_t rows = geometry.total_rows();
  for (std::size_t i = 0; i < count; ++i) {
    WeakCell cell;
    cell.col = static_cast<std::uint32_t>(rng.uniform(geometry.row_bytes));
    cell.bit = static_cast<std::uint8_t>(rng.uniform(8));
    const double t =
        std::exp(rng.normal(params.threshold_log_mean, params.threshold_log_sigma));
    cell.threshold = static_cast<std::uint32_t>(std::clamp<double>(
        t, params.threshold_min, params.threshold_max));
    cell.true_cell = rng.bernoulli(params.true_cell_fraction);
    if (rng.bernoulli(params.single_sided_fraction)) {
      if (rng.bernoulli(0.5)) {
        cell.couple_above = 1.0F;
        cell.couple_below = 0.0F;
      } else {
        cell.couple_above = 0.0F;
        cell.couple_below = 1.0F;
      }
    } else {
      // Both sides couple; the weaker side still contributes.
      cell.couple_above = 1.0F;
      cell.couple_below =
          static_cast<float>(0.5 + 0.5 * rng.uniform01());
      if (rng.bernoulli(0.5)) std::swap(cell.couple_above, cell.couple_below);
    }
    const std::uint64_t row = rng.uniform(rows);
    auto& vec = by_row_[row];
    // Avoid exact duplicates (same col+bit) within a row.
    const bool dup = std::any_of(vec.begin(), vec.end(), [&](const WeakCell& w) {
      return w.col == cell.col && w.bit == cell.bit;
    });
    if (dup) continue;
    vec.push_back(cell);
    ++total_;
  }
}

const std::vector<WeakCell>& WeakCellModel::cells_in_row(
    std::uint64_t flat_row) const {
  const auto it = by_row_.find(flat_row);
  return it == by_row_.end() ? kEmpty : it->second;
}

std::vector<std::uint64_t> WeakCellModel::vulnerable_rows() const {
  std::vector<std::uint64_t> rows;
  rows.reserve(by_row_.size());
  for (const auto& [row, cells] : by_row_)
    if (!cells.empty()) rows.push_back(row);
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace explframe::dram
