// snap::Timeline — an ordered stack of labelled snapshot layers.
//
// The time-travel debugger's data structure: each layer is a named
// checkpoint of one Restorable target ("post-template", "after plant",
// "after hammer", ...). push() captures the target's current state as a
// new top layer; rewind_to(i) restores layer i and drops every layer
// above it, so the timeline always describes a single linear history.
// Layers below the rewind point are untouched and can be rewound to
// again — that is what makes `rewind` / `bisect-flip` cheap: the same
// base layer is restored from as many times as the search needs.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "snapshot/restorable.hpp"

namespace explframe::snap {

/// Linear history of labelled snapshots of one Restorable.
class Timeline {
 public:
  /// `target` must outlive the timeline.
  explicit Timeline(Restorable& target) : target_(&target) {}

  /// Capture the target's current state as the new top layer. Returns the
  /// new layer's index.
  std::size_t push(std::string label);

  /// Restore layer `index` (CHECK: index < size()) and truncate the
  /// timeline so `index` is the top layer again.
  void rewind_to(std::size_t index);

  /// Restore layer `index` without truncating — for searches that probe a
  /// past state repeatedly and then rewind_to() once at the end.
  void restore_only(std::size_t index) const;

  /// Number of layers.
  std::size_t size() const noexcept { return layers_.size(); }
  /// Label of layer `index` (CHECK: index < size()).
  const std::string& label(std::size_t index) const;

 private:
  /// One checkpoint: its display label and the captured state.
  struct Layer {
    std::string label;
    std::unique_ptr<Snapshot> state;
  };

  Restorable* target_;
  std::vector<Layer> layers_;
};

}  // namespace explframe::snap
