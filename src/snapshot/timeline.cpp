#include "snapshot/timeline.hpp"

#include "support/check.hpp"

namespace explframe::snap {

std::size_t Timeline::push(std::string label) {
  layers_.push_back(Layer{std::move(label), target_->snapshot()});
  return layers_.size() - 1;
}

void Timeline::rewind_to(std::size_t index) {
  EXPLFRAME_CHECK_MSG(index < layers_.size(), "rewind past end of timeline");
  target_->restore(*layers_[index].state);
  layers_.resize(index + 1);
}

void Timeline::restore_only(std::size_t index) const {
  EXPLFRAME_CHECK_MSG(index < layers_.size(), "restore past end of timeline");
  target_->restore(*layers_[index].state);
}

const std::string& Timeline::label(std::size_t index) const {
  EXPLFRAME_CHECK_MSG(index < layers_.size(), "label past end of timeline");
  return layers_[index].label;
}

}  // namespace explframe::snap
