// snap::Snapshot / snap::Restorable — the copy-on-write checkpoint seam.
//
// A Restorable object can capture its complete observable state into an
// opaque Snapshot and later restore it exactly. The contract is strict:
//
//   * snapshot() is CHEAP. Implementations share bulk payloads (DRAM row
//     backing stores) between the live object and the snapshot via
//     refcounted pages; the live side copies a page only when it is next
//     written (copy-on-write). Capturing must not deep-copy row data.
//   * restore() is EXACT. After restore(s), every subsequent observable
//     behaviour (simulated time, RNG-free replay of the same operation
//     sequence, report bytes) is bit-identical to what it would have been
//     right after s was captured — with one deliberate exception: the
//     memory mutation epoch strictly advances across restore so caches
//     keyed on it (attack::VictimCipherService's batch context) can never
//     confuse pre- and post-rollback state.
//   * A Snapshot is immutable and reusable: restoring from it any number
//     of times, in any order with other snapshots of the same object,
//     always reproduces the same state.
//
// fork() is restore() by another name: campaigns "fork a trial from the
// post-templating snapshot" by restoring the machine and re-running the
// per-trial phases. The alias exists to keep call sites self-describing.
#pragma once

#include <memory>

namespace explframe::snap {

/// Opaque state capture. Concrete Restorable implementations define a
/// private subclass holding their image; the base exists so callers can
/// hold and sequence snapshots (snap::Timeline) without knowing the type.
class Snapshot {
 public:
  virtual ~Snapshot() = default;

 protected:
  Snapshot() = default;
};

/// Interface for objects that support exact checkpoint/rollback.
class Restorable {
 public:
  virtual ~Restorable() = default;

  /// Capture the current state. Cheap (CoW): bulk payloads are shared,
  /// not copied. The returned snapshot stays valid for the lifetime of
  /// this object and may be restored from any number of times.
  virtual std::unique_ptr<Snapshot> snapshot() const = 0;

  /// Roll state back to `state`, which must have been produced by this
  /// object's snapshot() (CHECK-fails otherwise). Exact, per the contract
  /// in the file comment.
  virtual void restore(const Snapshot& state) = 0;

  /// Alias of restore() for the campaign trial loop: "fork" a fresh trial
  /// off a shared templated base.
  void fork(const Snapshot& base) { restore(base); }
};

}  // namespace explframe::snap
