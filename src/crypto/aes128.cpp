#include "crypto/aes128.hpp"

namespace explframe::crypto {

namespace {

constexpr std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::array<std::uint8_t, 256> make_inv_sbox() {
  std::array<std::uint8_t, 256> inv{};
  for (std::size_t i = 0; i < 256; ++i)
    inv[kSbox[i]] = static_cast<std::uint8_t>(i);
  return inv;
}

constexpr std::array<std::uint8_t, 256> kInvSbox = make_inv_sbox();

constexpr std::array<std::uint8_t, 11> kRcon = {0x00, 0x01, 0x02, 0x04,
                                                0x08, 0x10, 0x20, 0x40,
                                                0x80, 0x1b, 0x36};

using State = std::array<std::uint8_t, 16>;  // state[r + 4c], column-major.

inline void add_round_key(State& s, const Aes128::RoundKey& k) noexcept {
  for (std::size_t i = 0; i < 16; ++i) s[i] ^= k[i];
}

inline void sub_bytes(State& s,
                      std::span<const std::uint8_t, 256> table) noexcept {
  for (auto& b : s) b = table[b];
}

inline void inv_sub_bytes(State& s) noexcept {
  for (auto& b : s) b = kInvSbox[b];
}

inline void shift_rows(State& s) noexcept {
  State t = s;
  for (std::size_t r = 1; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) s[r + 4 * c] = t[r + 4 * ((c + r) % 4)];
}

inline void inv_shift_rows(State& s) noexcept {
  State t = s;
  for (std::size_t r = 1; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) s[r + 4 * ((c + r) % 4)] = t[r + 4 * c];
}

inline void mix_columns(State& s) noexcept {
  for (std::size_t c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[4 * c];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    const std::uint8_t x = a0 ^ a1 ^ a2 ^ a3;
    col[0] = static_cast<std::uint8_t>(a0 ^ x ^ Aes128::xtime(a0 ^ a1));
    col[1] = static_cast<std::uint8_t>(a1 ^ x ^ Aes128::xtime(a1 ^ a2));
    col[2] = static_cast<std::uint8_t>(a2 ^ x ^ Aes128::xtime(a2 ^ a3));
    col[3] = static_cast<std::uint8_t>(a3 ^ x ^ Aes128::xtime(a3 ^ a0));
  }
}

inline void inv_mix_columns(State& s) noexcept {
  for (std::size_t c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[4 * c];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = Aes128::gmul(a0, 14) ^ Aes128::gmul(a1, 11) ^
             Aes128::gmul(a2, 13) ^ Aes128::gmul(a3, 9);
    col[1] = Aes128::gmul(a0, 9) ^ Aes128::gmul(a1, 14) ^
             Aes128::gmul(a2, 11) ^ Aes128::gmul(a3, 13);
    col[2] = Aes128::gmul(a0, 13) ^ Aes128::gmul(a1, 9) ^
             Aes128::gmul(a2, 14) ^ Aes128::gmul(a3, 11);
    col[3] = Aes128::gmul(a0, 11) ^ Aes128::gmul(a1, 13) ^
             Aes128::gmul(a2, 9) ^ Aes128::gmul(a3, 14);
  }
}

}  // namespace

const std::array<std::uint8_t, 256>& Aes128::sbox() noexcept { return kSbox; }
const std::array<std::uint8_t, 256>& Aes128::inv_sbox() noexcept {
  return kInvSbox;
}

std::uint8_t Aes128::gmul(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t p = 0;
  while (b != 0) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

Aes128::RoundKeys Aes128::expand_key(const Key& key) noexcept {
  // Words w[0..43]; w[i] = 4 bytes.
  std::array<std::array<std::uint8_t, 4>, 44> w{};
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) w[i][j] = key[4 * i + j];
  for (std::size_t i = 4; i < 44; ++i) {
    std::array<std::uint8_t, 4> temp = w[i - 1];
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[i / 4]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    }
    for (std::size_t j = 0; j < 4; ++j) w[i][j] = w[i - 4][j] ^ temp[j];
  }
  RoundKeys rk{};
  for (std::size_t r = 0; r < 11; ++r)
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j) rk[r][4 * i + j] = w[4 * r + i][j];
  return rk;
}

Aes128::Key Aes128::master_key_from_round10(const RoundKey& k10) noexcept {
  std::array<std::array<std::uint8_t, 4>, 44> w{};
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) w[40 + i][j] = k10[4 * i + j];
  for (std::size_t i = 40; i-- > 0;) {
    // w[i] = w[i+4] ^ f(w[i+3]) where f depends on (i+4) % 4.
    std::array<std::uint8_t, 4> temp = w[i + 3];
    if ((i + 4) % 4 == 0) {
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[(i + 4) / 4]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    }
    for (std::size_t j = 0; j < 4; ++j) w[i][j] = w[i + 4][j] ^ temp[j];
  }
  Key key{};
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) key[4 * i + j] = w[i][j];
  return key;
}

Aes128::Block Aes128::encrypt_with_sbox(
    const Block& plaintext, const RoundKeys& rk,
    std::span<const std::uint8_t, 256> table) noexcept {
  State s = plaintext;
  add_round_key(s, rk[0]);
  for (std::size_t round = 1; round <= 9; ++round) {
    sub_bytes(s, table);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, rk[round]);
  }
  sub_bytes(s, table);
  shift_rows(s);
  add_round_key(s, rk[10]);
  return s;
}

Aes128::Block Aes128::encrypt(const Block& plaintext,
                              const RoundKeys& rk) noexcept {
  return encrypt_with_sbox(plaintext, rk, kSbox);
}

Aes128::Block Aes128::encrypt_with_transient_fault(
    const Block& plaintext, const RoundKeys& rk, std::size_t round,
    std::size_t byte_index, std::uint8_t mask) noexcept {
  State s = plaintext;
  add_round_key(s, rk[0]);
  for (std::size_t r = 1; r <= 9; ++r) {
    if (r == round) s[byte_index % 16] ^= mask;
    sub_bytes(s, kSbox);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, rk[r]);
  }
  if (round == 10) s[byte_index % 16] ^= mask;
  sub_bytes(s, kSbox);
  shift_rows(s);
  add_round_key(s, rk[10]);
  return s;
}

Aes128::Block Aes128::decrypt(const Block& ciphertext,
                              const RoundKeys& rk) noexcept {
  State s = ciphertext;
  add_round_key(s, rk[10]);
  inv_shift_rows(s);
  inv_sub_bytes(s);
  for (std::size_t round = 9; round >= 1; --round) {
    add_round_key(s, rk[round]);
    inv_mix_columns(s);
    inv_shift_rows(s);
    inv_sub_bytes(s);
  }
  add_round_key(s, rk[0]);
  return s;
}

}  // namespace explframe::crypto
