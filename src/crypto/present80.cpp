#include "crypto/present80.hpp"

namespace explframe::crypto {

namespace {

constexpr std::array<std::uint8_t, 16> kSbox = {0xC, 0x5, 0x6, 0xB, 0x9, 0x0,
                                                0xA, 0xD, 0x3, 0xE, 0xF, 0x8,
                                                0x4, 0x7, 0x1, 0x2};

constexpr std::array<std::uint8_t, 16> make_inv() {
  std::array<std::uint8_t, 16> inv{};
  for (std::size_t i = 0; i < 16; ++i) inv[kSbox[i]] = static_cast<std::uint8_t>(i);
  return inv;
}
constexpr std::array<std::uint8_t, 16> kInvSbox = make_inv();

inline std::uint64_t sbox_layer(std::uint64_t s,
                                std::span<const std::uint8_t, 16> table) noexcept {
  std::uint64_t out = 0;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t nib = (s >> (4 * i)) & 0xF;
    // Table entries are stored one nibble per byte; the implementation
    // masks on use, so only low-nibble faults in a stored byte are live.
    out |= static_cast<std::uint64_t>(table[nib] & 0xF) << (4 * i);
  }
  return out;
}

inline std::uint64_t inv_sbox_layer(std::uint64_t s) noexcept {
  std::uint64_t out = 0;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t nib = (s >> (4 * i)) & 0xF;
    out |= static_cast<std::uint64_t>(kInvSbox[nib]) << (4 * i);
  }
  return out;
}

}  // namespace

const std::array<std::uint8_t, 16>& Present80::sbox() noexcept { return kSbox; }
const std::array<std::uint8_t, 16>& Present80::inv_sbox() noexcept {
  return kInvSbox;
}

std::uint64_t Present80::p_layer(std::uint64_t s) noexcept {
  std::uint64_t out = 0;
  for (int i = 0; i < 64; ++i) {
    const int to = (i == 63) ? 63 : (16 * i) % 63;
    out |= ((s >> i) & 1ULL) << to;
  }
  return out;
}

std::uint64_t Present80::p_layer_inv(std::uint64_t s) noexcept {
  std::uint64_t out = 0;
  for (int i = 0; i < 64; ++i) {
    const int to = (i == 63) ? 63 : (16 * i) % 63;
    out |= ((s >> to) & 1ULL) << i;
  }
  return out;
}

Present80::RoundKeys Present80::expand_key(const Key& key) noexcept {
  // 80-bit register, k79 (msb) .. k0.
  __uint128_t reg = 0;
  for (const std::uint8_t b : key) reg = (reg << 8) | b;
  const __uint128_t mask80 = (static_cast<__uint128_t>(1) << 80) - 1;

  RoundKeys rk{};
  for (std::uint32_t round = 1; round <= 32; ++round) {
    rk[round - 1] = static_cast<std::uint64_t>(reg >> 16);  // leftmost 64 bits
    if (round == 32) break;
    // 1. rotate left by 61
    reg = ((reg << 61) | (reg >> 19)) & mask80;
    // 2. S-box on the top nibble (bits 79..76)
    const auto top = static_cast<std::uint8_t>((reg >> 76) & 0xF);
    reg = (reg & ~(static_cast<__uint128_t>(0xF) << 76)) |
          (static_cast<__uint128_t>(kSbox[top]) << 76);
    // 3. XOR round counter into bits 19..15
    reg ^= static_cast<__uint128_t>(round) << 15;
  }
  return rk;
}

std::uint64_t Present80::encrypt_with_sbox(
    Block plaintext, const RoundKeys& rk,
    std::span<const std::uint8_t, 16> table) noexcept {
  std::uint64_t state = plaintext;
  for (std::size_t round = 0; round < 31; ++round) {
    state ^= rk[round];
    state = sbox_layer(state, table);
    state = p_layer(state);
  }
  return state ^ rk[31];
}

std::uint64_t Present80::encrypt(Block plaintext,
                                 const RoundKeys& rk) noexcept {
  return encrypt_with_sbox(plaintext, rk, kSbox);
}

Present80::SpTables Present80::derive_sp_tables(
    std::span<const std::uint8_t, 16> table) noexcept {
  SpTables sp{};
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t b = 0; b < 256; ++b) {
      // Substitute both nibbles of the byte exactly as sbox_layer does
      // (stored entries are masked on use), then permute its 8 bits.
      const std::uint64_t sub =
          static_cast<std::uint64_t>(table[b & 0xF] & 0xF) |
          (static_cast<std::uint64_t>(table[(b >> 4) & 0xF] & 0xF) << 4);
      sp[i][b] = p_layer(sub << (8 * i));
    }
  }
  return sp;
}

std::uint64_t Present80::encrypt_with_sp(Block plaintext, const RoundKeys& rk,
                                         const SpTables& sp) noexcept {
  std::uint64_t state = plaintext;
  for (std::size_t round = 0; round < 31; ++round) {
    state ^= rk[round];
    std::uint64_t next = 0;
    for (std::size_t i = 0; i < 8; ++i)
      next ^= sp[i][(state >> (8 * i)) & 0xFF];
    state = next;
  }
  return state ^ rk[31];
}

std::uint64_t Present80::decrypt(Block ciphertext,
                                 const RoundKeys& rk) noexcept {
  std::uint64_t state = ciphertext ^ rk[31];
  for (std::size_t round = 31; round-- > 0;) {
    state = p_layer_inv(state);
    state = inv_sbox_layer(state);
    state ^= rk[round];
  }
  return state;
}

}  // namespace explframe::crypto
