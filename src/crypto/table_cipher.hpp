// crypto::TableCipher — the cipher-agnostic seam of the attack pipeline.
//
// ExplFrame only cares about three properties of the victim's cipher:
//   * it keeps an S-box table at a known offset of a memory page (the flip
//     target window, with per-entry live bits);
//   * its key schedule can be expanded once and serialized into the pages
//     the victim installs;
//   * it can encrypt a block through a caller-supplied (possibly faulty)
//     table, so a persistent flip in the stored table yields genuinely
//     faulty ciphertexts.
//
// Everything else — templating's "usable flip" test, the victim service's
// table installation, the campaign driver — is written against this
// interface, so adding a cipher is one adapter class, not a new attack.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace explframe::crypto {

/// The ciphers the simulation ships adapters for.
enum class CipherKind {
  kAes128,     ///< AES-128, 256-byte S-box table, 16-byte blocks/keys.
  kPresent80,  ///< PRESENT-80, 16-byte table (low nibbles live), 8-byte blocks.
};

const char* to_string(CipherKind kind) noexcept;

/// Opaque decoded encryption state for one (round keys, stored table)
/// snapshot: round keys unpacked from their serialized byte blob once, the
/// table decoded into the cipher's native lookup form once (AES additionally
/// derives its T-tables; PRESENT extracts the live nibbles). Built by
/// TableCipher::make_context and consumed by encrypt_batch, which would
/// otherwise redo that decode for every block of a harvest. Contexts are
/// immutable and cipher-specific; a context is only valid with the cipher
/// that created it.
class EncryptContext {
 public:
  virtual ~EncryptContext() = default;

  /// The cipher this context was decoded for (guards mismatched use).
  CipherKind kind() const noexcept { return kind_; }

 protected:
  explicit EncryptContext(CipherKind kind) noexcept : kind_(kind) {}

 private:
  CipherKind kind_;
};

/// The cipher-agnostic interface described in the file comment. Adapters
/// are stateless; get one from cipher_for().
class TableCipher {
 public:
  virtual ~TableCipher() = default;

  virtual CipherKind kind() const noexcept = 0;
  virtual const char* name() const noexcept = 0;

  // ---- Table geometry (templating + victim installation) ------------------
  /// Bytes the stored S-box table occupies in the victim's page.
  virtual std::size_t table_size() const noexcept = 0;
  /// The canonical (fault-free) stored table.
  virtual std::span<const std::uint8_t> canonical_table() const noexcept = 0;
  /// Bits of stored table entry `index` the implementation actually reads
  /// (PRESENT stores one 4-bit nibble per byte; a flip in a dead bit is
  /// harmless). Default: all eight bits live.
  virtual std::uint8_t live_bits(std::size_t index) const noexcept;

  /// Templating's "usable flip" test: the flip must land in a live bit and
  /// the canonical byte must store the opposite polarity, so the cell flips
  /// again once the victim's table occupies the frame. `to_one` is the
  /// observed flip direction (anti cell: 0 -> 1).
  bool usable_flip(std::size_t index, std::uint8_t bit,
                   bool to_one) const noexcept;

  // ---- Key / block shapes --------------------------------------------------
  virtual std::size_t key_size() const noexcept = 0;
  virtual std::size_t block_size() const noexcept = 0;
  /// Size of the serialized round-key blob the victim stores.
  virtual std::size_t round_key_size() const noexcept = 0;

  /// Expand `key` (key_size() bytes) into the serialized round-key blob
  /// (round_key_size() bytes) the victim writes into its pages.
  virtual void expand_key(std::span<const std::uint8_t> key,
                          std::span<std::uint8_t> round_keys) const = 0;

  /// Encrypt one block, reading SubBytes from the caller-supplied stored
  /// table (table_size() bytes, possibly faulty) and the serialized round
  /// keys — the victim's reload-from-memory data path.
  virtual void encrypt(std::span<const std::uint8_t> plaintext,
                       std::span<const std::uint8_t> round_keys,
                       std::span<const std::uint8_t> table,
                       std::span<std::uint8_t> ciphertext) const = 0;

  // ---- Batched harvest fast path ------------------------------------------
  /// Decode (round_keys, table) — both in the stored byte layout encrypt()
  /// consumes — into a reusable EncryptContext. The context encrypts
  /// bit-identically to encrypt() over the same inputs; callers own cache
  /// invalidation (the victim service revalidates against the memory
  /// mutation epoch).
  virtual std::unique_ptr<EncryptContext> make_context(
      std::span<const std::uint8_t> round_keys,
      std::span<const std::uint8_t> table) const = 0;

  /// Encrypt plaintexts.size() / block_size() concatenated blocks through
  /// `ctx` in one virtual dispatch. Ciphertext stream is byte-identical to
  /// block_size()-sized encrypt() calls with the snapshot `ctx` was built
  /// from. `ctx` must come from this cipher's make_context.
  virtual void encrypt_batch(const EncryptContext& ctx,
                             std::span<const std::uint8_t> plaintexts,
                             std::span<std::uint8_t> ciphertexts) const = 0;
};

/// Stateless singleton adapter for `kind` (valid for the program lifetime).
/// CHECK-fails on an out-of-range enum value (e.g. a corrupted config cast
/// straight into CipherKind) instead of silently handing back AES.
const TableCipher& cipher_for(CipherKind kind) noexcept;

/// A uniformly random key for `cipher`, as the victim config stores it.
std::vector<std::uint8_t> random_key(const TableCipher& cipher,
                                     std::uint64_t seed);

}  // namespace explframe::crypto
