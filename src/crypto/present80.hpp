// PRESENT-80 (Bogdanov et al., CHES 2007): 64-bit block, 80-bit key,
// 31 rounds. Included as the second block cipher the title's plural
// promises: its 4-bit S-box makes an interesting contrast for persistent
// fault analysis (16-entry table, nibble-wise key recovery).
//
// As with Aes128, the S-box is pluggable so that a flipped table bit in the
// victim's memory produces genuinely faulty ciphertexts.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace explframe::crypto {

/// PRESENT-80 ultra-lightweight block cipher (64-bit block, 31 rounds),
/// with the 16-byte packed S-box table variant targeted by the PRESENT
/// persistent-fault campaign.
class Present80 {
 public:
  using Block = std::uint64_t;
  /// 80-bit key, big-endian bytes (key[0] = most significant).
  using Key = std::array<std::uint8_t, 10>;
  /// Round keys K1..K32 (K32 is the final whitening key).
  using RoundKeys = std::array<std::uint64_t, 32>;

  static const std::array<std::uint8_t, 16>& sbox() noexcept;
  static const std::array<std::uint8_t, 16>& inv_sbox() noexcept;

  static RoundKeys expand_key(const Key& key) noexcept;

  static Block encrypt(Block plaintext, const RoundKeys& rk) noexcept;
  static Block decrypt(Block ciphertext, const RoundKeys& rk) noexcept;

  /// Encrypt with a caller-supplied (possibly faulty) S-box table.
  static Block encrypt_with_sbox(
      Block plaintext, const RoundKeys& rk,
      std::span<const std::uint8_t, 16> table) noexcept;

  /// Combined sBoxLayer+pLayer lookup tables: SP[i][b] is the pLayer image
  /// of byte value b substituted through `table` at byte position i, so one
  /// round becomes eight table XORs instead of sixteen nibble substitutions
  /// plus a 64-step bit permutation. Exact by linearity of pLayer over
  /// disjoint bit sets — encrypt_with_sp is byte-identical to
  /// encrypt_with_sbox over the same table (differentially tested). Derived
  /// once per harvest snapshot by the batched EncryptContext.
  using SpTables = std::array<std::array<std::uint64_t, 256>, 8>;
  static SpTables derive_sp_tables(
      std::span<const std::uint8_t, 16> table) noexcept;

  /// encrypt_with_sbox through precomputed SP tables (same table).
  static Block encrypt_with_sp(Block plaintext, const RoundKeys& rk,
                               const SpTables& sp) noexcept;

  /// Bit permutation pLayer and its inverse (exposed for the PFA attack,
  /// which needs P^-1 to make nibble positions independent).
  static std::uint64_t p_layer(std::uint64_t s) noexcept;
  static std::uint64_t p_layer_inv(std::uint64_t s) noexcept;
};

}  // namespace explframe::crypto
