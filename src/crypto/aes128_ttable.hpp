// T-table AES-128 — the classic 32-bit-word software implementation
// (OpenSSL's aes_core style): rounds 1..9 are four table lookups + XORs per
// column using Te0..Te3 (1 KiB each), the last round uses the plain S-box.
//
// Relevance to the paper: this is the implementation shape whose tables a
// real victim keeps in writable(-ish) memory pages — the 4 KiB of Te tables
// fill exactly one page frame, which is why steering a single vulnerable
// frame under the victim suffices. A flip in any Te byte perturbs
// MixColumns-multiplied S-box outputs in every round it is used.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/aes128.hpp"

namespace explframe::crypto {

/// T-table AES-128: the lookup-table implementation the paper attacks —
/// round transforms folded into four 1 KiB tables whose entries live in
/// DRAM and can be flipped by Rowhammer.
class Aes128T {
 public:
  using Block = Aes128::Block;
  using RoundKeys = Aes128::RoundKeys;

  /// The four encryption tables, each 256 words:
  ///   Te0[x] = (2*S[x], S[x], S[x], 3*S[x])  and rotations thereof.
  struct Tables {
    std::array<std::uint32_t, 256> te0, te1, te2, te3;
  };

  /// Derive the tables from an S-box (canonical or faulted).
  static Tables derive_tables(std::span<const std::uint8_t, 256> sbox);
  static const Tables& canonical_tables();

  /// Encrypt with the given tables (rounds 1-9) and S-box (final round).
  static Block encrypt(const Block& plaintext, const RoundKeys& rk,
                       const Tables& tables,
                       std::span<const std::uint8_t, 256> sbox);

  /// Convenience: canonical tables + canonical S-box.
  static Block encrypt(const Block& plaintext, const RoundKeys& rk);
};

}  // namespace explframe::crypto
