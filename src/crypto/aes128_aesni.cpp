#include "crypto/aes128_aesni.hpp"

#include "support/check.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace explframe::crypto {

namespace {

// Every function touching intrinsics carries the target attribute so the
// translation unit builds without global -maes/-mssse3 flags; dispatch is
// guarded by available() at runtime.
#define EXPLFRAME_AESNI __attribute__((target("aes,ssse3")))

/// AES ShiftRows as a byte shuffle (state in standard column-major order).
EXPLFRAME_AESNI inline __m128i shift_rows(__m128i v) noexcept {
  const __m128i ctl =
      _mm_setr_epi8(0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11);
  return _mm_shuffle_epi8(v, ctl);
}

/// MixColumns of a full state vector: out = xt(d) ^ rot1(xt(d) ^ d) ^
/// rot2(d) ^ rot3(d), where xt is per-byte GF(2^8) doubling and rotN
/// rotates bytes within each 4-byte column.
EXPLFRAME_AESNI inline __m128i mix_columns(__m128i d) noexcept {
  const __m128i rot1 =
      _mm_setr_epi8(1, 2, 3, 0, 5, 6, 7, 4, 9, 10, 11, 8, 13, 14, 15, 12);
  const __m128i rot2 =
      _mm_setr_epi8(2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13);
  const __m128i rot3 =
      _mm_setr_epi8(3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14);
  const __m128i hi = _mm_set1_epi8(static_cast<char>(0x80));
  const __m128i red =
      _mm_and_si128(_mm_cmpeq_epi8(_mm_and_si128(d, hi), hi),
                    _mm_set1_epi8(0x1b));
  const __m128i xt = _mm_xor_si128(_mm_add_epi8(d, d), red);
  __m128i out =
      _mm_xor_si128(xt, _mm_shuffle_epi8(_mm_xor_si128(xt, d), rot1));
  out = _mm_xor_si128(out, _mm_shuffle_epi8(d, rot2));
  return _mm_xor_si128(out, _mm_shuffle_epi8(d, rot3));
}

/// SubBytes-output fault delta for the round whose SubBytes *input* is `s`:
/// m at every byte position equal to x0, 0 elsewhere.
EXPLFRAME_AESNI inline __m128i fault_delta(__m128i s, __m128i vx0,
                                           __m128i vm) noexcept {
  return _mm_and_si128(_mm_cmpeq_epi8(s, vx0), vm);
}

/// W blocks in flight: aesenc latency hides behind the other lanes, so the
/// loop runs at near ISA throughput instead of the one-block latency chain.
template <int W>
EXPLFRAME_AESNI inline void encrypt_w(const std::uint8_t* in,
                                      std::uint8_t* out, const __m128i* k,
                                      __m128i vx0, __m128i vm,
                                      bool faulty) noexcept {
  __m128i s[W];
  for (int b = 0; b < W; ++b)
    s[b] = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * b)), k[0]);
  for (int r = 1; r <= 9; ++r) {
    if (faulty) {
      __m128i d[W];
      for (int b = 0; b < W; ++b)
        d[b] = mix_columns(shift_rows(fault_delta(s[b], vx0, vm)));
      for (int b = 0; b < W; ++b)
        s[b] = _mm_xor_si128(_mm_aesenc_si128(s[b], k[r]), d[b]);
    } else {
      for (int b = 0; b < W; ++b) s[b] = _mm_aesenc_si128(s[b], k[r]);
    }
  }
  for (int b = 0; b < W; ++b) {
    __m128i last = _mm_aesenclast_si128(s[b], k[10]);
    if (faulty)
      last = _mm_xor_si128(last, shift_rows(fault_delta(s[b], vx0, vm)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * b), last);
  }
}

EXPLFRAME_AESNI void encrypt_blocks_impl(const std::uint8_t* in,
                                         std::uint8_t* out, std::size_t n,
                                         const Aes128::RoundKeys& rk,
                                         std::uint8_t x0,
                                         std::uint8_t m) noexcept {
  __m128i k[11];
  for (int r = 0; r < 11; ++r)
    k[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk[r].data()));
  const __m128i vx0 = _mm_set1_epi8(static_cast<char>(x0));
  const __m128i vm = _mm_set1_epi8(static_cast<char>(m));
  const bool faulty = m != 0;

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    encrypt_w<4>(in + 16 * i, out + 16 * i, k, vx0, vm, faulty);
  for (; i < n; ++i)
    encrypt_w<1>(in + 16 * i, out + 16 * i, k, vx0, vm, faulty);
}

#undef EXPLFRAME_AESNI

}  // namespace

bool Aes128Ni::available() noexcept {
  return __builtin_cpu_supports("aes") && __builtin_cpu_supports("ssse3");
}

void Aes128Ni::encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                              std::size_t n, const Aes128::RoundKeys& rk,
                              std::uint8_t x0, std::uint8_t m) noexcept {
  encrypt_blocks_impl(in, out, n, rk, x0, m);
}

}  // namespace explframe::crypto

#else  // non-x86: the dispatcher reports unavailable; calls are invalid.

namespace explframe::crypto {

bool Aes128Ni::available() noexcept { return false; }

void Aes128Ni::encrypt_blocks(const std::uint8_t*, std::uint8_t*, std::size_t,
                              const Aes128::RoundKeys&, std::uint8_t,
                              std::uint8_t) noexcept {
  EXPLFRAME_CHECK_MSG(false, "Aes128Ni unavailable on this target");
}

}  // namespace explframe::crypto

#endif
