// AES-128 (FIPS-197), S-box table driven.
//
// Two encryption paths are provided:
//  * encrypt()            — canonical S-box, for tests/baselines;
//  * encrypt_with_sbox()  — SubBytes reads from a caller-supplied 256-byte
//    table. The victim process stores that table in its own (simulated)
//    memory pages, so a Rowhammer flip in the page yields genuinely faulty
//    ciphertexts; this is the Persistent Fault Analysis target of the paper
//    (ref [12], Zhang et al. TCHES 2018).
//
// The key schedule is computed once at set-up time with the clean S-box
// (matching a victim that expands its key before the fault is injected)
// and is invertible: round-10 key -> master key.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace explframe::crypto {

/// Reference AES-128: textbook byte-oriented rounds over the canonical
/// S-box. The ground-truth implementation every faulted/table variant is
/// differential-tested against.
class Aes128 {
 public:
  using Block = std::array<std::uint8_t, 16>;
  using Key = std::array<std::uint8_t, 16>;
  using RoundKey = std::array<std::uint8_t, 16>;
  /// 11 round keys: K0 (whitening) .. K10 (final).
  using RoundKeys = std::array<RoundKey, 11>;

  static const std::array<std::uint8_t, 256>& sbox() noexcept;
  static const std::array<std::uint8_t, 256>& inv_sbox() noexcept;

  static RoundKeys expand_key(const Key& key) noexcept;

  /// Invert the key schedule: recover the master key from the last round
  /// key (the step PFA finishes with).
  static Key master_key_from_round10(const RoundKey& k10) noexcept;

  static Block encrypt(const Block& plaintext, const RoundKeys& rk) noexcept;
  static Block decrypt(const Block& ciphertext, const RoundKeys& rk) noexcept;

  /// Encrypt using `table` for every SubBytes (all 10 rounds), as a
  /// table-based software AES does. `table` may contain faults.
  static Block encrypt_with_sbox(
      const Block& plaintext, const RoundKeys& rk,
      std::span<const std::uint8_t, 256> table) noexcept;

  /// Encrypt with a *transient* fault: `mask` is XORed into state byte
  /// `byte_index` (state layout: row + 4*col) at the entry of `round`
  /// (1-based, before that round's SubBytes). This is the classic DFA
  /// fault model (Piret-Quisquater), implemented as the comparison point
  /// for persistent faults in EXP-T6.
  static Block encrypt_with_transient_fault(const Block& plaintext,
                                            const RoundKeys& rk,
                                            std::size_t round,
                                            std::size_t byte_index,
                                            std::uint8_t mask) noexcept;

  /// GF(2^8) helpers (exposed for the DFA implementation).
  static std::uint8_t xtime(std::uint8_t x) noexcept {
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
  }
  static std::uint8_t gmul(std::uint8_t a, std::uint8_t b) noexcept;
};

}  // namespace explframe::crypto
