#include "crypto/table_cipher.hpp"

#include <algorithm>
#include <array>

#include "crypto/aes128.hpp"
#include "crypto/aes128_aesni.hpp"
#include "crypto/aes128_ttable.hpp"
#include "crypto/present80.hpp"
#include "support/bytes.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace explframe::crypto {

const char* to_string(CipherKind kind) noexcept {
  switch (kind) {
    case CipherKind::kAes128:
      return "aes128";
    case CipherKind::kPresent80:
      return "present80";
  }
  return "?";
}

std::uint8_t TableCipher::live_bits(std::size_t /*index*/) const noexcept {
  return 0xFF;
}

bool TableCipher::usable_flip(std::size_t index, std::uint8_t bit,
                              bool to_one) const noexcept {
  if (index >= table_size() || bit >= 8) return false;
  if (((live_bits(index) >> bit) & 1u) == 0) return false;
  const bool bit_set = ((canonical_table()[index] >> bit) & 1u) != 0;
  // An anti cell (flips 0 -> 1) needs the canonical bit clear; a true cell
  // (1 -> 0) needs it set.
  return to_one ? !bit_set : bit_set;
}

namespace {

// Decoded AES snapshot: unpacked round keys plus the fastest encryption
// path the stored S-box admits. A table that is canonical, or canonical
// with exactly one byte XOR-faulted (the paper's persistent-fault model),
// runs on hardware AES-NI with the SIMD fault correction; anything else
// falls back to T-tables derived from the stored bytes. Both are
// bit-identical to Aes128::encrypt_with_sbox over the source table
// (asserted by tests/crypto/aes128_ttable_test.cpp and
// tests/crypto/aes128_aesni_test.cpp), so the batch path changes no
// ciphertext byte.
class Aes128Context final : public EncryptContext {
 public:
  Aes128Context(std::span<const std::uint8_t> round_keys,
                std::span<const std::uint8_t> table)
      : EncryptContext(CipherKind::kAes128) {
    for (std::size_t r = 0; r < 11; ++r)
      for (std::size_t i = 0; i < 16; ++i) rk_[r][i] = round_keys[16 * r + i];
    std::copy(table.begin(), table.end(), sbox_.begin());
    const auto& canonical = Aes128::sbox();
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < 256 && diffs <= 1; ++i) {
      if (sbox_[i] != canonical[i]) {
        ++diffs;
        fault_x0_ = static_cast<std::uint8_t>(i);
        fault_m_ = static_cast<std::uint8_t>(sbox_[i] ^ canonical[i]);
      }
    }
    use_ni_ = diffs <= 1 && Aes128Ni::available();
    if (diffs == 0) fault_m_ = 0;
    if (!use_ni_) tables_ = Aes128T::derive_tables(sbox_);
  }

  Aes128::RoundKeys rk_{};
  std::array<std::uint8_t, 256> sbox_{};
  Aes128T::Tables tables_{};
  bool use_ni_ = false;
  std::uint8_t fault_x0_ = 0;  ///< Faulted table index (when fault_m_ != 0).
  std::uint8_t fault_m_ = 0;   ///< XOR mask of the fault (0 = canonical).
};

// Decoded PRESENT snapshot: round keys as native 64-bit words, live nibbles
// extracted from the stored bytes once, and the combined sBoxLayer+pLayer
// byte tables derived from them (turning each round's 64-step bit
// permutation into eight XORed lookups — exact, see
// Present80::derive_sp_tables).
class Present80Context final : public EncryptContext {
 public:
  Present80Context(std::span<const std::uint8_t> round_keys,
                   std::span<const std::uint8_t> table)
      : EncryptContext(CipherKind::kPresent80) {
    for (std::size_t r = 0; r < 32; ++r)
      rk_[r] = le_bytes_to_u64(round_keys.subspan(8 * r, 8));
    for (std::size_t i = 0; i < 16; ++i)
      nibbles_[i] = static_cast<std::uint8_t>(table[i] & 0xF);
    sp_ = Present80::derive_sp_tables(nibbles_);
  }

  Present80::RoundKeys rk_{};
  std::array<std::uint8_t, 16> nibbles_{};
  Present80::SpTables sp_{};
};

class Aes128TableCipher final : public TableCipher {
 public:
  CipherKind kind() const noexcept override { return CipherKind::kAes128; }
  const char* name() const noexcept override { return "AES-128"; }

  std::size_t table_size() const noexcept override { return 256; }
  std::span<const std::uint8_t> canonical_table() const noexcept override {
    return Aes128::sbox();
  }

  std::size_t key_size() const noexcept override { return 16; }
  std::size_t block_size() const noexcept override { return 16; }
  std::size_t round_key_size() const noexcept override { return 11 * 16; }

  void expand_key(std::span<const std::uint8_t> key,
                  std::span<std::uint8_t> round_keys) const override {
    EXPLFRAME_CHECK(key.size() == key_size());
    EXPLFRAME_CHECK(round_keys.size() == round_key_size());
    Aes128::Key k;
    std::copy(key.begin(), key.end(), k.begin());
    const auto rk = Aes128::expand_key(k);
    for (std::size_t r = 0; r < 11; ++r)
      for (std::size_t i = 0; i < 16; ++i) round_keys[16 * r + i] = rk[r][i];
  }

  void encrypt(std::span<const std::uint8_t> plaintext,
               std::span<const std::uint8_t> round_keys,
               std::span<const std::uint8_t> table,
               std::span<std::uint8_t> ciphertext) const override {
    EXPLFRAME_CHECK(plaintext.size() == 16 && ciphertext.size() == 16);
    EXPLFRAME_CHECK(round_keys.size() == round_key_size());
    EXPLFRAME_CHECK(table.size() == 256);
    Aes128::Block pt;
    std::copy(plaintext.begin(), plaintext.end(), pt.begin());
    Aes128::RoundKeys rk{};
    for (std::size_t r = 0; r < 11; ++r)
      for (std::size_t i = 0; i < 16; ++i) rk[r][i] = round_keys[16 * r + i];
    const Aes128::Block ct = Aes128::encrypt_with_sbox(
        pt, rk, std::span<const std::uint8_t, 256>(table.data(), 256));
    std::copy(ct.begin(), ct.end(), ciphertext.begin());
  }

  std::unique_ptr<EncryptContext> make_context(
      std::span<const std::uint8_t> round_keys,
      std::span<const std::uint8_t> table) const override {
    EXPLFRAME_CHECK(round_keys.size() == round_key_size());
    EXPLFRAME_CHECK(table.size() == 256);
    return std::make_unique<Aes128Context>(round_keys, table);
  }

  void encrypt_batch(const EncryptContext& ctx,
                     std::span<const std::uint8_t> plaintexts,
                     std::span<std::uint8_t> ciphertexts) const override {
    EXPLFRAME_CHECK(ctx.kind() == CipherKind::kAes128);
    EXPLFRAME_CHECK(plaintexts.size() == ciphertexts.size());
    EXPLFRAME_CHECK(plaintexts.size() % 16 == 0);
    const auto& c = static_cast<const Aes128Context&>(ctx);
    if (c.use_ni_) {
      Aes128Ni::encrypt_blocks(plaintexts.data(), ciphertexts.data(),
                               plaintexts.size() / 16, c.rk_, c.fault_x0_,
                               c.fault_m_);
      return;
    }
    const std::span<const std::uint8_t, 256> sbox(c.sbox_);
    for (std::size_t off = 0; off < plaintexts.size(); off += 16) {
      Aes128::Block pt;
      std::copy_n(plaintexts.begin() + off, 16, pt.begin());
      const Aes128::Block ct = Aes128T::encrypt(pt, c.rk_, c.tables_, sbox);
      std::copy(ct.begin(), ct.end(), ciphertexts.begin() + off);
    }
  }
};

class Present80TableCipher final : public TableCipher {
 public:
  CipherKind kind() const noexcept override { return CipherKind::kPresent80; }
  const char* name() const noexcept override { return "PRESENT-80"; }

  std::size_t table_size() const noexcept override { return 16; }
  std::span<const std::uint8_t> canonical_table() const noexcept override {
    return Present80::sbox();
  }
  std::uint8_t live_bits(std::size_t /*index*/) const noexcept override {
    return 0x0F;  // one nibble stored per byte; the high nibble is dead
  }

  std::size_t key_size() const noexcept override { return 10; }
  std::size_t block_size() const noexcept override { return 8; }
  std::size_t round_key_size() const noexcept override { return 32 * 8; }

  void expand_key(std::span<const std::uint8_t> key,
                  std::span<std::uint8_t> round_keys) const override {
    EXPLFRAME_CHECK(key.size() == key_size());
    EXPLFRAME_CHECK(round_keys.size() == round_key_size());
    Present80::Key k;
    std::copy(key.begin(), key.end(), k.begin());
    const auto rk = Present80::expand_key(k);
    for (std::size_t r = 0; r < 32; ++r)
      u64_to_le_bytes(rk[r], round_keys.subspan(8 * r, 8));
  }

  void encrypt(std::span<const std::uint8_t> plaintext,
               std::span<const std::uint8_t> round_keys,
               std::span<const std::uint8_t> table,
               std::span<std::uint8_t> ciphertext) const override {
    EXPLFRAME_CHECK(plaintext.size() == 8 && ciphertext.size() == 8);
    EXPLFRAME_CHECK(round_keys.size() == round_key_size());
    EXPLFRAME_CHECK(table.size() == 16);
    const std::uint64_t pt = le_bytes_to_u64(plaintext);
    Present80::RoundKeys rk{};
    for (std::size_t r = 0; r < 32; ++r)
      rk[r] = le_bytes_to_u64(round_keys.subspan(8 * r, 8));
    // Only the low nibble of each stored byte is live.
    std::array<std::uint8_t, 16> nibbles{};
    for (std::size_t i = 0; i < 16; ++i)
      nibbles[i] = static_cast<std::uint8_t>(table[i] & 0xF);
    const std::uint64_t ct = Present80::encrypt_with_sbox(
        pt, rk, std::span<const std::uint8_t, 16>(nibbles));
    u64_to_le_bytes(ct, ciphertext);
  }

  std::unique_ptr<EncryptContext> make_context(
      std::span<const std::uint8_t> round_keys,
      std::span<const std::uint8_t> table) const override {
    EXPLFRAME_CHECK(round_keys.size() == round_key_size());
    EXPLFRAME_CHECK(table.size() == 16);
    return std::make_unique<Present80Context>(round_keys, table);
  }

  void encrypt_batch(const EncryptContext& ctx,
                     std::span<const std::uint8_t> plaintexts,
                     std::span<std::uint8_t> ciphertexts) const override {
    EXPLFRAME_CHECK(ctx.kind() == CipherKind::kPresent80);
    EXPLFRAME_CHECK(plaintexts.size() == ciphertexts.size());
    EXPLFRAME_CHECK(plaintexts.size() % 8 == 0);
    const auto& c = static_cast<const Present80Context&>(ctx);
    for (std::size_t off = 0; off < plaintexts.size(); off += 8) {
      const std::uint64_t pt = le_bytes_to_u64(plaintexts.subspan(off, 8));
      const std::uint64_t ct = Present80::encrypt_with_sp(pt, c.rk_, c.sp_);
      u64_to_le_bytes(ct, ciphertexts.subspan(off, 8));
    }
  }
};

}  // namespace

const TableCipher& cipher_for(CipherKind kind) noexcept {
  static const Aes128TableCipher aes;
  static const Present80TableCipher present;
  switch (kind) {
    case CipherKind::kAes128:
      return aes;
    case CipherKind::kPresent80:
      return present;
  }
  EXPLFRAME_CHECK_MSG(false, "cipher_for: invalid CipherKind");
  return aes;  // unreachable
}

std::vector<std::uint8_t> random_key(const TableCipher& cipher,
                                     std::uint64_t seed) {
  std::vector<std::uint8_t> key(cipher.key_size());
  Rng rng(seed);
  rng.fill_bytes(key);
  return key;
}

}  // namespace explframe::crypto
