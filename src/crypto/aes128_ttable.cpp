#include "crypto/aes128_ttable.hpp"

namespace explframe::crypto {

namespace {

constexpr std::uint32_t pack(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                             std::uint8_t d) noexcept {
  return (std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
         (std::uint32_t{c} << 8) | d;
}

inline std::uint32_t word_of(const std::uint8_t* bytes) noexcept {
  return pack(bytes[0], bytes[1], bytes[2], bytes[3]);
}

}  // namespace

Aes128T::Tables Aes128T::derive_tables(
    std::span<const std::uint8_t, 256> sbox) {
  Tables t;
  for (std::size_t i = 0; i < 256; ++i) {
    const std::uint8_t s = sbox[i];
    const std::uint8_t s2 = Aes128::xtime(s);
    const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
    t.te0[i] = pack(s2, s, s, s3);
    t.te1[i] = pack(s3, s2, s, s);
    t.te2[i] = pack(s, s3, s2, s);
    t.te3[i] = pack(s, s, s3, s2);
  }
  return t;
}

const Aes128T::Tables& Aes128T::canonical_tables() {
  static const Tables tables = derive_tables(Aes128::sbox());
  return tables;
}

Aes128T::Block Aes128T::encrypt(const Block& plaintext, const RoundKeys& rk,
                                const Tables& tables,
                                std::span<const std::uint8_t, 256> sbox) {
  // State as four big-endian column words.
  std::uint32_t s[4];
  for (std::size_t j = 0; j < 4; ++j)
    s[j] = word_of(&plaintext[4 * j]) ^ word_of(&rk[0][4 * j]);

  for (std::size_t round = 1; round <= 9; ++round) {
    std::uint32_t t[4];
    for (std::size_t j = 0; j < 4; ++j) {
      t[j] = tables.te0[s[j] >> 24] ^
             tables.te1[(s[(j + 1) % 4] >> 16) & 0xFF] ^
             tables.te2[(s[(j + 2) % 4] >> 8) & 0xFF] ^
             tables.te3[s[(j + 3) % 4] & 0xFF] ^ word_of(&rk[round][4 * j]);
    }
    for (std::size_t j = 0; j < 4; ++j) s[j] = t[j];
  }

  Block out;
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t r = 0; r < 4; ++r) {
      const std::uint32_t word = s[(j + r) % 4];
      const auto byte =
          static_cast<std::uint8_t>((word >> (24 - 8 * r)) & 0xFF);
      out[4 * j + r] = static_cast<std::uint8_t>(sbox[byte] ^ rk[10][4 * j + r]);
    }
  }
  return out;
}

Aes128T::Block Aes128T::encrypt(const Block& plaintext, const RoundKeys& rk) {
  return encrypt(plaintext, rk, canonical_tables(), Aes128::sbox());
}

}  // namespace explframe::crypto
