// Hardware AES-128 (AES-NI) with a persistent S-box-fault correction — the
// batched harvest's fastest AES path.
//
// AES-NI bakes the canonical S-box into silicon, so it cannot evaluate an
// arbitrary faulty table. But the paper's fault model is exactly one stored
// S-box byte XORed with a mask: S*(x0) = S(x0) ^ m. A SubBytes-output
// difference is linear through ShiftRows and MixColumns, so each round can
// run as a plain `aesenc` plus an XORed correction delta — compare the
// round's SubBytes *input* bytes against x0, place m at the matching
// positions, push that sparse vector through ShiftRows/MixColumns in SIMD,
// and XOR it into the aesenc result. Byte-identical to
// Aes128::encrypt_with_sbox over the faulted table (differentially tested),
// at hardware-AES speed.
//
// m == 0 degenerates to canonical AES-NI. Tables differing from the
// canonical S-box in more than one byte are out of this model — callers
// (crypto::TableCipher's AES context) fall back to the T-table path then.
#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/aes128.hpp"

namespace explframe::crypto {

/// Hardware AES-128 kernel (AES-NI + SSSE3), runtime-dispatched: encrypts
/// through aesenc with a SIMD ShiftRows/MixColumns correction layer for
/// the single-byte S-box fault model. Batch workhorse of encrypt_batch.
class Aes128Ni {
 public:
  /// True when the CPU supports the required ISA (AES-NI + SSSE3); the
  /// dispatch is runtime, so the build needs no -maes flag.
  static bool available() noexcept;

  /// Encrypt `n` consecutive 16-byte blocks under the single-byte fault
  /// model table[x0] = S[x0] ^ m (m == 0 → canonical AES). Byte-identical
  /// to per-block Aes128::encrypt_with_sbox over that table. Only call
  /// when available().
  static void encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                             std::size_t n, const Aes128::RoundKeys& rk,
                             std::uint8_t x0, std::uint8_t m) noexcept;
};

}  // namespace explframe::crypto
