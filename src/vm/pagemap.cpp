#include "vm/pagemap.hpp"

namespace explframe::vm {

PagemapEntry pagemap_read(const AddressSpace& space, VirtAddr va,
                          bool cap_sys_admin) {
  PagemapEntry entry;
  const Pte* pte = space.page_table().find(va & ~VirtAddr{kPageSize - 1});
  if (pte == nullptr) return entry;
  entry.present = true;
  entry.pfn = cap_sys_admin ? pte->pfn : 0;
  return entry;
}

}  // namespace explframe::vm
