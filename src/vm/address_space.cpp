#include "vm/address_space.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace explframe::vm {

AddressSpace::AddressSpace(FrameClient table_frames)
    : table_(std::move(table_frames)) {}

VirtAddr AddressSpace::mmap(std::uint64_t length) {
  EXPLFRAME_CHECK(length > 0);
  const std::uint64_t bytes =
      bytes_to_pages(length) * static_cast<std::uint64_t>(kPageSize);
  const VirtAddr start = mmap_cursor_;
  // One guard page between mappings keeps ranges unambiguous.
  mmap_cursor_ += bytes + kPageSize;
  vmas_.emplace(start, Vma{start, start + bytes});
  ++counters_.mmap_calls;
  return start;
}

bool AddressSpace::valid(VirtAddr va) const {
  auto it = vmas_.upper_bound(va);
  if (it == vmas_.begin()) return false;
  --it;
  return it->second.contains(va);
}

bool AddressSpace::munmap(VirtAddr addr, std::uint64_t length,
                          const std::function<void(mm::Pfn)>& release) {
  EXPLFRAME_CHECK_MSG((addr & (kPageSize - 1)) == 0, "unaligned munmap");
  EXPLFRAME_CHECK(length > 0);
  const VirtAddr end =
      addr + bytes_to_pages(length) * static_cast<std::uint64_t>(kPageSize);

  bool any = false;
  // Collect overlapping VMAs, then rewrite them (split / trim / drop).
  std::vector<Vma> overlapped;
  for (auto it = vmas_.begin(); it != vmas_.end();) {
    if (it->second.end <= addr || it->second.start >= end) {
      ++it;
      continue;
    }
    overlapped.push_back(it->second);
    it = vmas_.erase(it);
    any = true;
  }
  for (const Vma& vma : overlapped) {
    if (vma.start < addr) vmas_.emplace(vma.start, Vma{vma.start, addr});
    if (vma.end > end) vmas_.emplace(end, Vma{end, vma.end});
    const VirtAddr lo = std::max(vma.start, addr);
    const VirtAddr hi = std::min(vma.end, end);
    for (VirtAddr va = lo; va < hi; va += kPageSize) {
      if (const auto pfn = table_.unmap(va)) release(*pfn);
    }
  }
  if (any) ++counters_.munmap_calls;
  return any;
}

void AddressSpace::release_all(const std::function<void(mm::Pfn)>& release) {
  std::vector<VirtAddr> mapped;
  table_.for_each([&](VirtAddr va, const Pte&) { mapped.push_back(va); });
  for (const VirtAddr va : mapped) {
    if (const auto pfn = table_.unmap(va)) release(*pfn);
  }
  vmas_.clear();
}

}  // namespace explframe::vm
