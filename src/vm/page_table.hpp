// Four-level x86-64-style page table (PGD -> PUD -> PMD -> PTE), 48-bit
// virtual addresses, 4 KiB pages.
//
// Table nodes themselves consume physical page frames through a
// FrameClient, because on real Linux the kernel's PTE-page allocations go
// through the very same per-CPU page frame cache the attack manipulates —
// a victim's first fault in a fresh region can consume the planted frame
// for a page-table page instead of the data page (measured in EXP-A1).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "mm/page.hpp"
#include "support/units.hpp"

namespace explframe::vm {

using VirtAddr = std::uint64_t;

inline constexpr std::uint32_t kVaBits = 48;
inline constexpr std::uint32_t kLevelBits = 9;
inline constexpr std::uint32_t kLevels = 4;

/// Page table entry for a mapped 4 KiB page.
struct Pte {
  mm::Pfn pfn = mm::kInvalidPfn;
  bool writable = true;
  bool accessed = false;
  bool dirty = false;
};

/// Supplies/reclaims the physical frames backing page-table nodes.
/// `alloc` may return kInvalidPfn (allocation failure is propagated).
struct FrameClient {
  std::function<mm::Pfn()> alloc;
  std::function<void(mm::Pfn)> free;
};

/// 4-level x86-64-shaped page table (9 bits per level, 4 KiB leaves).
/// Node frames are charged through the FrameClient so table pages
/// travel the same allocator path as data pages (EXP-A1).
class PageTable {
 public:
  /// `client` may be null: nodes are then bookkept but not charged frames.
  explicit PageTable(FrameClient client = {});
  ~PageTable();
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  /// Allocate the intermediate table nodes covering vaddr without
  /// installing a PTE. Linux's fault path does this (pte_alloc) *before*
  /// allocating the data page — the ordering matters to the attack, because
  /// a table node allocated mid-fault consumes the per-CPU cache head.
  bool prepare(VirtAddr vaddr);

  /// Map vaddr (page aligned) to pfn. Returns false if a needed table node
  /// could not be charged a frame.
  bool map(VirtAddr vaddr, mm::Pfn pfn, bool writable = true);

  /// Remove the mapping; returns the pfn that was mapped, if any. Empty
  /// intermediate nodes are freed (and their frames returned).
  std::optional<mm::Pfn> unmap(VirtAddr vaddr);

  /// Lookup without side effects.
  const Pte* find(VirtAddr vaddr) const;
  Pte* find(VirtAddr vaddr);

  std::uint64_t mapped_pages() const noexcept { return mapped_; }
  std::uint64_t table_nodes() const noexcept { return nodes_; }

  /// Walk all mappings in ascending vaddr order.
  void for_each(const std::function<void(VirtAddr, const Pte&)>& fn) const;

  /// One table node in a snapshot: its level (kLevels-1 = root, 0 = leaf),
  /// the base virtual address of the region it covers, and the physical
  /// frame charged to it.
  struct NodeImage {
    std::uint32_t level = 0;
    VirtAddr base = 0;
    mm::Pfn frame = mm::kInvalidPfn;
  };
  /// Complete structural snapshot: every node in pre-order (parents before
  /// children, front() = root) plus every installed PTE in vaddr order.
  struct TableImage {
    std::vector<NodeImage> nodes;
    std::vector<std::pair<VirtAddr, Pte>> ptes;
  };

  /// Capture the table structure and mappings for a snapshot.
  TableImage capture_image() const;
  /// Rebuild the table from a captured image. Never calls the FrameClient:
  /// node frames come from the image, and the page allocator restored
  /// alongside already accounts those frames as allocated. (Plain node
  /// destruction frees no frames either — only unmap/release do — so
  /// dropping the current tree leaves the allocator untouched.)
  void restore_image(const TableImage& image);

 private:
  struct Node;
  struct Entry;

  static std::uint32_t index_at(VirtAddr vaddr, std::uint32_t level) noexcept;
  Node* ensure_child(Node& parent, std::uint32_t slot);
  void release_node(Node* node);
  void for_each_rec(const Node& node, std::uint32_t level, VirtAddr base,
                    const std::function<void(VirtAddr, const Pte&)>& fn) const;
  void capture_nodes(const Node& node, std::uint32_t level, VirtAddr base,
                     std::vector<NodeImage>* out) const;

  FrameClient client_;
  std::unique_ptr<Node> root_;
  std::uint64_t mapped_ = 0;
  std::uint64_t nodes_ = 0;
};

}  // namespace explframe::vm
