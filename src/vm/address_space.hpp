// Per-task virtual address space: VMA list + page table + demand-paging
// hooks. The frame-allocation policy itself lives in kernel::System; this
// class owns the virtual-address bookkeeping (mmap/munmap semantics).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "vm/page_table.hpp"

namespace explframe::vm {

/// One mapped region [start, end), anonymous private memory.
struct Vma {
  VirtAddr start = 0;
  VirtAddr end = 0;  ///< Exclusive, page aligned.

  std::uint64_t pages() const noexcept { return (end - start) / kPageSize; }
  bool contains(VirtAddr va) const noexcept { return va >= start && va < end; }
};

/// Per-address-space fault/mmap accounting (/proc/<pid>/stat shape).
struct VmCounters {
  std::uint64_t minor_faults = 0;
  std::uint64_t mmap_calls = 0;
  std::uint64_t munmap_calls = 0;
  std::uint64_t mapped_peak = 0;
};

/// One task's virtual memory: VMA list plus the 4-level page table,
/// with mmap/munmap/translate and demand-fault plumbing. Owns no
/// physical frames itself — those come and go through the FrameClient
/// and fault callbacks.
class AddressSpace {
 public:
  /// mmap region grows upward from here (x86-64 userspace mmap base).
  static constexpr VirtAddr kMmapBase = 0x7f00'0000'0000ULL;

  explicit AddressSpace(FrameClient table_frames = {});

  /// Reserve `length` bytes (rounded up to pages) of anonymous memory.
  /// No physical frames are allocated until first touch — the property the
  /// paper highlights ("the program must store some data into the allocated
  /// pages, otherwise the physical page frames will not be allocated").
  VirtAddr mmap(std::uint64_t length);

  /// Unmap [addr, addr+length). Present pages are returned through
  /// `release`; VMAs are split/trimmed as needed. Returns false if the
  /// range intersects no VMA.
  bool munmap(VirtAddr addr, std::uint64_t length,
              const std::function<void(mm::Pfn)>& release);

  /// True if va lies inside some VMA (i.e. access is legal).
  bool valid(VirtAddr va) const;

  PageTable& page_table() noexcept { return table_; }
  const PageTable& page_table() const noexcept { return table_; }

  const std::map<VirtAddr, Vma>& vmas() const noexcept { return vmas_; }
  VmCounters& counters() noexcept { return counters_; }
  const VmCounters& counters() const noexcept { return counters_; }

  /// Release every mapped page (process exit).
  void release_all(const std::function<void(mm::Pfn)>& release);

  /// Snapshot of the complete address-space state. Restoring the mmap
  /// cursor is what makes post-restore mmap() return exactly the addresses
  /// a fresh run would have — forked trials see identical VAs.
  struct Image {
    std::map<VirtAddr, Vma> vmas;
    PageTable::TableImage table;
    VirtAddr mmap_cursor = kMmapBase;
    VmCounters counters;
  };

  /// Capture the full state for a snapshot.
  Image capture_image() const {
    return {vmas_, table_.capture_image(), mmap_cursor_, counters_};
  }
  /// Restore a previously captured image exactly.
  void restore_image(const Image& image) {
    vmas_ = image.vmas;
    table_.restore_image(image.table);
    mmap_cursor_ = image.mmap_cursor;
    counters_ = image.counters;
  }

 private:
  std::map<VirtAddr, Vma> vmas_;  ///< Keyed by start address.
  PageTable table_;
  VirtAddr mmap_cursor_ = kMmapBase;
  VmCounters counters_;
};

}  // namespace explframe::vm
