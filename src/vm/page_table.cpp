#include "vm/page_table.hpp"

#include <utility>

#include "support/check.hpp"

namespace explframe::vm {

namespace {
constexpr std::uint32_t kFanout = 1u << kLevelBits;  // 512
}

/// Leaf (level 0) nodes store Ptes; interior nodes store children.
struct PageTable::Node {
  std::array<std::unique_ptr<Node>, kFanout> children{};
  std::array<Pte, kFanout> ptes{};
  std::array<bool, kFanout> present{};
  std::uint32_t used = 0;            ///< Occupied slots (children or ptes).
  mm::Pfn frame = mm::kInvalidPfn;   ///< Physical frame charged to this node.
};

PageTable::PageTable(FrameClient client) : client_(std::move(client)) {
  root_ = std::make_unique<Node>();
  ++nodes_;
  if (client_.alloc) root_->frame = client_.alloc();
}

PageTable::~PageTable() {
  // Free data mappings first so table-node frames are released last.
  if (root_) release_node(root_.get());
}

void PageTable::release_node(Node* node) {
  for (auto& child : node->children) {
    if (child) release_node(child.get());
    child.reset();
  }
  if (client_.free && node->frame != mm::kInvalidPfn) {
    client_.free(node->frame);
    node->frame = mm::kInvalidPfn;
  }
}

std::uint32_t PageTable::index_at(VirtAddr vaddr,
                                  std::uint32_t level) noexcept {
  // level 3 = PGD (bits 47:39) ... level 0 = PTE (bits 20:12).
  const std::uint32_t shift =
      static_cast<std::uint32_t>(kPageShift) + kLevelBits * level;
  return static_cast<std::uint32_t>((vaddr >> shift) & (kFanout - 1));
}

PageTable::Node* PageTable::ensure_child(Node& parent, std::uint32_t slot) {
  if (!parent.children[slot]) {
    auto node = std::make_unique<Node>();
    if (client_.alloc) {
      node->frame = client_.alloc();
      if (node->frame == mm::kInvalidPfn) return nullptr;
    }
    parent.children[slot] = std::move(node);
    ++parent.used;
    ++nodes_;
  }
  return parent.children[slot].get();
}

bool PageTable::prepare(VirtAddr vaddr) {
  EXPLFRAME_CHECK(vaddr < (VirtAddr{1} << kVaBits));
  Node* node = root_.get();
  for (std::uint32_t level = kLevels - 1; level >= 1; --level) {
    node = ensure_child(*node, index_at(vaddr, level));
    if (node == nullptr) return false;
  }
  return true;
}

bool PageTable::map(VirtAddr vaddr, mm::Pfn pfn, bool writable) {
  EXPLFRAME_CHECK_MSG((vaddr & (kPageSize - 1)) == 0, "unaligned map");
  EXPLFRAME_CHECK(vaddr < (VirtAddr{1} << kVaBits));
  Node* node = root_.get();
  for (std::uint32_t level = kLevels - 1; level >= 1; --level) {
    node = ensure_child(*node, index_at(vaddr, level));
    if (node == nullptr) return false;
  }
  const std::uint32_t slot = index_at(vaddr, 0);
  EXPLFRAME_CHECK_MSG(!node->present[slot], "double map");
  node->ptes[slot] = Pte{pfn, writable, false, false};
  node->present[slot] = true;
  ++node->used;
  ++mapped_;
  return true;
}

std::optional<mm::Pfn> PageTable::unmap(VirtAddr vaddr) {
  EXPLFRAME_CHECK_MSG((vaddr & (kPageSize - 1)) == 0, "unaligned unmap");
  // Walk down, remembering the path so empty nodes can be pruned.
  Node* path[kLevels] = {};
  std::uint32_t slots[kLevels] = {};
  Node* node = root_.get();
  for (std::uint32_t level = kLevels - 1; level >= 1; --level) {
    path[level] = node;
    slots[level] = index_at(vaddr, level);
    node = node->children[slots[level]].get();
    if (node == nullptr) return std::nullopt;
  }
  const std::uint32_t slot = index_at(vaddr, 0);
  if (!node->present[slot]) return std::nullopt;
  const mm::Pfn pfn = node->ptes[slot].pfn;
  node->present[slot] = false;
  node->ptes[slot] = Pte{};
  --node->used;
  --mapped_;

  // Prune empty table nodes bottom-up (frees their frames).
  Node* child = node;
  for (std::uint32_t level = 1; level < kLevels && child->used == 0; ++level) {
    Node* parent = path[level];
    if (client_.free && child->frame != mm::kInvalidPfn) {
      client_.free(child->frame);
      child->frame = mm::kInvalidPfn;
    }
    parent->children[slots[level]].reset();
    --parent->used;
    --nodes_;
    child = parent;
  }
  return pfn;
}

const Pte* PageTable::find(VirtAddr vaddr) const {
  const Node* node = root_.get();
  for (std::uint32_t level = kLevels - 1; level >= 1; --level) {
    node = node->children[index_at(vaddr, level)].get();
    if (node == nullptr) return nullptr;
  }
  const std::uint32_t slot = index_at(vaddr, 0);
  return node->present[slot] ? &node->ptes[slot] : nullptr;
}

Pte* PageTable::find(VirtAddr vaddr) {
  return const_cast<Pte*>(std::as_const(*this).find(vaddr));
}

void PageTable::for_each_rec(
    const Node& node, std::uint32_t level, VirtAddr base,
    const std::function<void(VirtAddr, const Pte&)>& fn) const {
  const std::uint32_t shift =
      static_cast<std::uint32_t>(kPageShift) + kLevelBits * level;
  for (std::uint32_t i = 0; i < kFanout; ++i) {
    const VirtAddr va = base + (static_cast<VirtAddr>(i) << shift);
    if (level == 0) {
      if (node.present[i]) fn(va, node.ptes[i]);
    } else if (node.children[i]) {
      for_each_rec(*node.children[i], level - 1, va, fn);
    }
  }
}

void PageTable::for_each(
    const std::function<void(VirtAddr, const Pte&)>& fn) const {
  for_each_rec(*root_, kLevels - 1, 0, fn);
}

void PageTable::capture_nodes(const Node& node, std::uint32_t level,
                              VirtAddr base,
                              std::vector<NodeImage>* out) const {
  out->push_back(NodeImage{level, base, node.frame});
  if (level == 0) return;
  const std::uint32_t shift =
      static_cast<std::uint32_t>(kPageShift) + kLevelBits * level;
  for (std::uint32_t i = 0; i < kFanout; ++i)
    if (node.children[i])
      capture_nodes(*node.children[i], level - 1,
                    base + (static_cast<VirtAddr>(i) << shift), out);
}

PageTable::TableImage PageTable::capture_image() const {
  TableImage image;
  capture_nodes(*root_, kLevels - 1, 0, &image.nodes);
  for_each([&](VirtAddr va, const Pte& pte) {
    image.ptes.emplace_back(va, pte);
  });
  return image;
}

void PageTable::restore_image(const TableImage& image) {
  EXPLFRAME_CHECK_MSG(!image.nodes.empty() &&
                          image.nodes.front().level == kLevels - 1,
                      "malformed table image");
  // See the header comment: destroying the live tree frees no frames, and
  // the node frames recorded in the image are reinstalled verbatim.
  root_ = std::make_unique<Node>();
  root_->frame = image.nodes.front().frame;
  for (std::size_t i = 1; i < image.nodes.size(); ++i) {
    const NodeImage& n = image.nodes[i];
    // Pre-order guarantees the parent chain already exists; walk down to
    // the parent (level n.level + 1) and hang the new node off it.
    Node* parent = root_.get();
    for (std::uint32_t level = kLevels - 1; level > n.level + 1; --level)
      parent = parent->children[index_at(n.base, level)].get();
    const std::uint32_t slot = index_at(n.base, n.level + 1);
    auto node = std::make_unique<Node>();
    node->frame = n.frame;
    parent->children[slot] = std::move(node);
    ++parent->used;
  }
  for (const auto& [va, pte] : image.ptes) {
    Node* node = root_.get();
    for (std::uint32_t level = kLevels - 1; level >= 1; --level)
      node = node->children[index_at(va, level)].get();
    const std::uint32_t slot = index_at(va, 0);
    node->ptes[slot] = pte;
    node->present[slot] = true;
    ++node->used;
  }
  nodes_ = image.nodes.size();
  mapped_ = image.ptes.size();
}

}  // namespace explframe::vm
