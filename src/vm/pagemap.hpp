// The /proc/<pid>/pagemap interface with the Linux >= 4.0 policy the paper
// relies on: "only users with the CAP_SYS_ADMIN capability can get PFNs".
// An unprivileged reader sees the present bit but a zeroed PFN field.
#pragma once

#include <cstdint>
#include <optional>

#include "vm/address_space.hpp"

namespace explframe::vm {

/// One /proc/<pid>/pagemap read: presence + (privileged) frame number.
struct PagemapEntry {
  bool present = false;
  /// PFN if the caller had CAP_SYS_ADMIN, otherwise 0 (as on Linux >= 4.0).
  mm::Pfn pfn = 0;
};

/// Read the pagemap entry for one virtual page of `space`.
PagemapEntry pagemap_read(const AddressSpace& space, VirtAddr va,
                          bool cap_sys_admin);

}  // namespace explframe::vm
