// io::FaultyFs — a scripted fault-injecting FileSystem for the torture
// suites.
//
// FaultyFs wraps a base filesystem (normally io::real()) and executes a
// deterministic failure plan on top of it:
//
//   fail_nth / fail_from    fail the Nth (or every >= Nth) operation of a
//                           kind with a chosen Status — "the 3rd fsync
//                           returns EIO", "every rename fails ENOSPC";
//   short_write_nth         the Nth write persists only a prefix before
//                           failing (the POSIX short-write case);
//   set_capacity            ENOSPC once the cumulative bytes written
//                           through the filesystem exceed a budget —
//                           partial bytes that fit are kept, modelling a
//                           disk that fills mid-file;
//   crash_at_op /           abandon the process state mid-operation: the
//   crash_at_point          op (or the named io::crash_point) has at most
//                           a partial effect, every *later* operation
//                           fails, and all bytes written but never
//                           sync()ed are DROPPED — the page-cache loss a
//                           real crash inflicts.
//
// Durability model: writes buffer in memory; File::sync() flushes the
// buffer to the base filesystem and fsyncs it (durable); a clean
// File::close() flushes without the durability guarantee (visible, and
// kept here since the process did not crash). A crash at a sync flushes
// only HALF of the pending bytes — the torn write the checkpoint format's
// torn-tail tolerance exists for.
//
// Every operation is recorded in an in-order trace, so a torture harness
// first runs a counting pass (no faults), then re-runs the pipeline once
// per recorded operation index with a crash or error injected there —
// enumerating every failure point instead of sampling a few.
//
// Thread-safe (the Service worker pool runs through it under TSan);
// deterministic (no clocks, no randomness — the plan is the only input).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "io/fs.hpp"

namespace explframe::io {

/// The scripted fault-injecting filesystem (see the file comment).
class FaultyFs final : public FileSystem {
 public:
  /// One recorded operation: its kind and primary path, in global order.
  struct OpRecord {
    Op op = Op::kOpen;
    std::string path;

    /// "write#3 foo/bar.req" — the name torture trace logs print.
    std::string describe(std::uint64_t index) const;
  };

  /// Wraps `base` (which outlives this object); no faults armed.
  explicit FaultyFs(FileSystem& base) : base_(base) {}

  // ---- Scripting -----------------------------------------------------------

  /// Fail the `nth` (0-based, per-kind) operation of kind `op` with
  /// `status`, once.
  void fail_nth(Op op, std::uint64_t nth, Status status);
  /// Fail every operation of kind `op` from the `nth` on with `status`
  /// (a persistently broken disk).
  void fail_from(Op op, std::uint64_t nth, Status status);
  /// The `nth` write persists only `keep_bytes` of its payload, then
  /// fails with `status` (a short write).
  void short_write_nth(std::uint64_t nth, std::size_t keep_bytes,
                       Status status);
  /// ENOSPC once cumulative bytes written exceed `bytes`; what fits is
  /// kept. Pass nullopt to lift the limit.
  void set_capacity(std::optional<std::uint64_t> bytes);
  /// Simulate a process crash at global operation index `index` (0-based
  /// over all kinds, the trace order of a counting pass). If `index` has
  /// already passed, the crash fires at the next operation instead —
  /// arming never silently does nothing.
  void crash_at_op(std::uint64_t index);
  /// Simulate a process crash at the named io::crash_point.
  void crash_at_point(std::string name);
  /// Forget the plan, counters, trace and crash state. Files written to
  /// the base filesystem stay — this is "replace the disk", not "wipe it".
  void reset();

  // ---- Introspection -------------------------------------------------------

  /// Every operation observed since construction/reset, in order.
  std::vector<OpRecord> trace() const;
  /// Total operations observed (the exclusive bound for crash_at_op).
  std::uint64_t op_count() const;
  /// Crash-point names visited, in first-visit order (the torture
  /// harness asserts its pipeline covers the registered list).
  std::vector<std::string> visited_points() const;
  /// True once a scripted crash has triggered.
  bool crashed() const;

  // ---- FileSystem ----------------------------------------------------------

  /// All operations honour the plan; after a crash they all fail and
  /// have no effect. See the file comment for the durability model.
  Status open(const std::string& path, OpenMode mode,
              std::unique_ptr<File>* out) override;
  Status read_file(const std::string& path, std::string* out) override;
  Status rename(const std::string& from, const std::string& to) override;
  Status remove(const std::string& path) override;
  Status list(const std::string& dir,
              std::vector<std::string>* names) override;
  Status truncate(const std::string& path, std::uint64_t size) override;
  Status create_directories(const std::string& path) override;
  bool exists(const std::string& path) const override;
  void crash_point(const std::string& name) override;

 private:
  friend class FaultyFile;  ///< The buffering File handle (faulty_fs.cpp).

  /// One scripted failure.
  struct Fault {
    Op op = Op::kOpen;
    std::uint64_t nth = 0;
    bool sticky = false;        ///< fail_from (>= nth) vs fail_nth (== nth).
    bool fired = false;         ///< One-shot faults fire once.
    Status status;
    std::optional<std::size_t> short_keep;  ///< Short write: bytes kept.
  };

  /// What note() decided to do to the operation it just recorded.
  struct Injection {
    /// Let it through, fail it with `status`, or crash the "process".
    enum class Kind { kNone, kFail, kCrash } kind = Kind::kNone;
    Status status;                          ///< The error, when not kNone.
    std::optional<std::size_t> short_keep;  ///< Short write: bytes kept.
  };

  /// Record the operation in the trace, advance the counters, and decide
  /// whether to let it through, fail it, or crash (takes the lock).
  Injection note(Op op, const std::string& path);
  /// The "everything fails after the crash" status.
  static Status crashed_status();
  /// Charge `bytes` against the capacity budget (takes the lock);
  /// returns how many fit.
  std::size_t charge_capacity(std::size_t bytes);

  FileSystem& base_;
  mutable std::mutex mutex_;
  std::vector<Fault> faults_;
  std::vector<OpRecord> trace_;
  std::vector<std::string> visited_points_;
  std::map<Op, std::uint64_t> per_op_count_;
  std::optional<std::uint64_t> capacity_;
  std::uint64_t written_bytes_ = 0;
  std::optional<std::uint64_t> crash_op_;
  std::optional<std::string> crash_point_name_;
  bool crashed_ = false;
};

}  // namespace explframe::io
