#include "io/faulty_fs.hpp"

#include <algorithm>
#include <utility>

namespace explframe::io {

// Not in an anonymous namespace: FaultyFs befriends this exact class so
// it may drive note()/charge_capacity().
/// A buffering handle over a base File. Writes accumulate in memory;
/// sync() flushes + fsyncs them to the base (durable); a clean close()
/// flushes without the durability guarantee; a crash drops everything
/// still buffered — the page-cache loss model the file comment in
/// faulty_fs.hpp describes.
class FaultyFile final : public File {
 public:
  FaultyFile(FaultyFs& fs, std::string path, std::unique_ptr<File> base)
      : fs_(fs), path_(std::move(path)), base_(std::move(base)) {}

  ~FaultyFile() override {
    if (!closed_) (void)close();
  }

  Status write(const std::string& bytes) override {
    const FaultyFs::Injection what = fs_.note(Op::kWrite, path_);
    if (what.kind == FaultyFs::Injection::Kind::kCrash) {
      // Crash mid-write: nothing from this write survives (it was never
      // synced), and everything still pending is lost with the process.
      pending_.clear();
      return what.status;
    }
    if (what.kind == FaultyFs::Injection::Kind::kFail) {
      if (what.short_keep) {
        const std::size_t keep = std::min(*what.short_keep, bytes.size());
        pending_.append(bytes, 0, fs_.charge_capacity(keep));
      }
      return what.status;
    }
    const std::size_t fit = fs_.charge_capacity(bytes.size());
    pending_.append(bytes, 0, fit);
    if (fit < bytes.size())
      return Status::permanent_error("short write to '" + path_ +
                                     "' (ENOSPC)");
    return Status::ok_status();
  }

  Status sync() override {
    const FaultyFs::Injection what = fs_.note(Op::kSync, path_);
    if (what.kind == FaultyFs::Injection::Kind::kCrash) {
      // Crash mid-sync: the torn-write case. Half of the pending bytes
      // reach the disk, the rest die with the process.
      (void)base_->write(pending_.substr(0, pending_.size() / 2));
      pending_.clear();
      return what.status;
    }
    if (what.kind == FaultyFs::Injection::Kind::kFail) return what.status;
    Status status = flush();
    if (status.ok()) status = base_->sync();
    return status;
  }

  Status close() override {
    if (closed_) return Status::ok_status();
    closed_ = true;
    const FaultyFs::Injection what = fs_.note(Op::kClose, path_);
    if (what.kind == FaultyFs::Injection::Kind::kCrash) {
      pending_.clear();
      (void)base_->close();
      return what.status;
    }
    if (what.kind == FaultyFs::Injection::Kind::kFail) {
      // A failed close loses what was never flushed, like the real thing.
      pending_.clear();
      (void)base_->close();
      return what.status;
    }
    Status status = flush();
    const Status closed = base_->close();
    return status.ok() ? closed : status;
  }

 private:
  /// Move the pending buffer into the base file (no fsync).
  Status flush() {
    if (pending_.empty()) return Status::ok_status();
    const Status status = base_->write(pending_);
    if (status.ok()) pending_.clear();
    return status;
  }

  FaultyFs& fs_;
  const std::string path_;
  std::unique_ptr<File> base_;
  std::string pending_;
  bool closed_ = false;
};

std::string FaultyFs::OpRecord::describe(std::uint64_t index) const {
  return std::string(to_string(op)) + "@op#" + std::to_string(index) + " " +
         path;
}

void FaultyFs::fail_nth(Op op, std::uint64_t nth, Status status) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Fault fault;
  fault.op = op;
  fault.nth = nth;
  fault.status = std::move(status);
  faults_.push_back(std::move(fault));
}

void FaultyFs::fail_from(Op op, std::uint64_t nth, Status status) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Fault fault;
  fault.op = op;
  fault.nth = nth;
  fault.sticky = true;
  fault.status = std::move(status);
  faults_.push_back(std::move(fault));
}

void FaultyFs::short_write_nth(std::uint64_t nth, std::size_t keep_bytes,
                               Status status) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Fault fault;
  fault.op = Op::kWrite;
  fault.nth = nth;
  fault.status = std::move(status);
  fault.short_keep = keep_bytes;
  faults_.push_back(std::move(fault));
}

void FaultyFs::set_capacity(std::optional<std::uint64_t> bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = bytes;
  written_bytes_ = 0;
}

void FaultyFs::crash_at_op(std::uint64_t index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  crash_op_ = index;
}

void FaultyFs::crash_at_point(std::string name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  crash_point_name_ = std::move(name);
}

void FaultyFs::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  faults_.clear();
  trace_.clear();
  visited_points_.clear();
  per_op_count_.clear();
  capacity_.reset();
  written_bytes_ = 0;
  crash_op_.reset();
  crash_point_name_.reset();
  crashed_ = false;
}

std::vector<FaultyFs::OpRecord> FaultyFs::trace() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trace_;
}

std::uint64_t FaultyFs::op_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trace_.size();
}

std::vector<std::string> FaultyFs::visited_points() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return visited_points_;
}

bool FaultyFs::crashed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

Status FaultyFs::crashed_status() {
  return Status::permanent_error("simulated process crash");
}

FaultyFs::Injection FaultyFs::note(Op op, const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t global = trace_.size();
  OpRecord record;
  record.op = op;
  record.path = path;
  trace_.push_back(std::move(record));
  const std::uint64_t nth = per_op_count_[op]++;

  Injection out;
  if (crashed_) {
    out.kind = Injection::Kind::kCrash;
    out.status = crashed_status();
    return out;
  }
  if (crash_op_ && global >= *crash_op_) {
    crashed_ = true;
    out.kind = Injection::Kind::kCrash;
    out.status = crashed_status();
    return out;
  }
  for (Fault& fault : faults_) {
    if (fault.op != op) continue;
    const bool hit = fault.sticky ? nth >= fault.nth
                                  : (nth == fault.nth && !fault.fired);
    if (!hit) continue;
    fault.fired = true;
    out.kind = Injection::Kind::kFail;
    out.status = fault.status;
    out.short_keep = fault.short_keep;
    return out;
  }
  return out;
}

std::size_t FaultyFs::charge_capacity(std::size_t bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!capacity_) return bytes;
  const std::uint64_t room =
      written_bytes_ >= *capacity_ ? 0 : *capacity_ - written_bytes_;
  const std::size_t fit =
      static_cast<std::size_t>(std::min<std::uint64_t>(room, bytes));
  written_bytes_ += fit;
  return fit;
}

Status FaultyFs::open(const std::string& path, OpenMode mode,
                      std::unique_ptr<File>* out) {
  const Injection what = note(Op::kOpen, path);
  if (what.kind != Injection::Kind::kNone) return what.status;
  std::unique_ptr<File> base_file;
  const Status status = base_.open(path, mode, &base_file);
  if (!status.ok()) return status;
  *out = std::make_unique<FaultyFile>(*this, path, std::move(base_file));
  return Status::ok_status();
}

Status FaultyFs::read_file(const std::string& path, std::string* out) {
  const Injection what = note(Op::kRead, path);
  if (what.kind != Injection::Kind::kNone) return what.status;
  return base_.read_file(path, out);
}

Status FaultyFs::rename(const std::string& from, const std::string& to) {
  const Injection what = note(Op::kRename, from);
  if (what.kind != Injection::Kind::kNone) return what.status;
  return base_.rename(from, to);
}

Status FaultyFs::remove(const std::string& path) {
  const Injection what = note(Op::kRemove, path);
  if (what.kind != Injection::Kind::kNone) return what.status;
  return base_.remove(path);
}

Status FaultyFs::list(const std::string& dir,
                      std::vector<std::string>* names) {
  const Injection what = note(Op::kList, dir);
  if (what.kind != Injection::Kind::kNone) return what.status;
  return base_.list(dir, names);
}

Status FaultyFs::truncate(const std::string& path, std::uint64_t size) {
  const Injection what = note(Op::kTruncate, path);
  if (what.kind != Injection::Kind::kNone) return what.status;
  return base_.truncate(path, size);
}

Status FaultyFs::create_directories(const std::string& path) {
  const Injection what = note(Op::kMkdir, path);
  if (what.kind != Injection::Kind::kNone) return what.status;
  return base_.create_directories(path);
}

bool FaultyFs::exists(const std::string& path) const {
  // Advisory probe: recorded nowhere, never scripted — the crash model
  // only cares about operations with effects or payloads.
  return base_.exists(path);
}

void FaultyFs::crash_point(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (std::find(visited_points_.begin(), visited_points_.end(), name) ==
      visited_points_.end())
    visited_points_.push_back(name);
  if (crash_point_name_ && *crash_point_name_ == name) crashed_ = true;
}

}  // namespace explframe::io
