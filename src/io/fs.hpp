// io::FileSystem — the fault-injectable seam every durable path goes
// through.
//
// All file I/O that the recovery story depends on — the `explsimd` spool
// (queue/done/failed submissions and reports), the sweep checkpoint, the
// report/golden emitters and `.scn`/`.sweep` file loads — is routed
// through this small virtual interface instead of touching stdio or
// std::filesystem directly. Production code uses the passthrough
// `io::real()`; tests substitute `io::FaultyFs` (faulty_fs.hpp), which
// executes a scripted failure plan: fail the Nth write/fsync/rename,
// short writes, ENOSPC after a byte budget, EIO on reads, and named
// "crash points" that abandon the process state mid-operation. That is
// what makes the crash-consistency claims in docs/ARCHITECTURE.md
// *testable*: the torture suites (tests/torture/) enumerate every
// operation index and every crash point and assert the recovery
// invariant at each one.
//
// Error taxonomy (io::Status): every operation reports `ok`, `transient`
// (worth retrying: EINTR/EAGAIN/EIO-class flakes), `permanent` (retry
// cannot help: ENOSPC, EROFS, EACCES) or `not found` (a permanent error
// callers often treat as "empty"). Retries are *deterministic and
// bounded* — io::with_retry counts attempts, never sleeps and never reads
// a clock, so fault-injected runs replay bit-identically (the determinism
// lint bans wall-clock backoff outright).
//
// Durability vocabulary: File::sync() is the only durability barrier.
// io::durable_write publishes whole files with the tmp + write + sync +
// rename discipline (a crash leaves the old bytes or the new bytes, never
// a torn mix, and a failed attempt never strands its tmp file); the sweep
// CheckpointWriter appends line-at-a-time with a sync per record.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace explframe::io {

/// How an operation failed, if it did. kNotFound is permanent but kept
/// distinct because several callers legitimately map it to "empty"
/// (a missing checkpoint is an empty checkpoint).
enum class ErrorKind { kOk, kTransient, kPermanent, kNotFound };

/// One operation's outcome: a taxonomy kind plus a human-readable message
/// (empty iff ok). Plain value type, cheap to copy.
class Status {
 public:
  /// Success.
  Status() = default;
  /// Success (named, for symmetry with the error factories).
  static Status ok_status() { return Status(); }
  /// A retryable failure (flaky media, interrupted call).
  static Status transient_error(std::string message);
  /// A failure retrying cannot fix (disk full, permissions, read-only fs).
  static Status permanent_error(std::string message);
  /// The path does not exist.
  static Status not_found(std::string message);
  /// Map a POSIX errno to the taxonomy; `context` prefixes the message.
  static Status from_errno(int err, const std::string& context);

  bool ok() const noexcept { return kind_ == ErrorKind::kOk; }
  bool transient() const noexcept { return kind_ == ErrorKind::kTransient; }
  /// True for both kPermanent and kNotFound (neither is worth a retry).
  bool permanent() const noexcept {
    return kind_ == ErrorKind::kPermanent || kind_ == ErrorKind::kNotFound;
  }
  bool is_not_found() const noexcept { return kind_ == ErrorKind::kNotFound; }
  ErrorKind kind() const noexcept { return kind_; }
  const std::string& message() const noexcept { return message_; }

 private:
  Status(ErrorKind kind, std::string message)
      : kind_(kind), message_(std::move(message)) {}

  ErrorKind kind_ = ErrorKind::kOk;
  std::string message_;
};

/// How open() positions an opened file.
enum class OpenMode {
  kTruncate,  ///< Create or truncate; writes start at offset 0.
  kAppend,    ///< Create if missing; writes go to the end.
};

/// The operation vocabulary FaultyFs scripts against (and records in its
/// trace). One enumerator per FileSystem/File entry point that can fail.
enum class Op {
  kOpen,
  kWrite,
  kSync,
  kClose,
  kRead,
  kRename,
  kRemove,
  kList,
  kTruncate,
  kMkdir,
};

/// Canonical lower-case name ("open", "write", ...), for trace logs.
const char* to_string(Op op) noexcept;

/// An open file handle. write() buffers or persists bytes; sync() is the
/// durability barrier (bytes are crash-safe only after a successful
/// sync); close() releases the handle (idempotent — later calls are ok).
/// The destructor closes best-effort; durable paths must call close()
/// and check it.
class File {
 public:
  virtual ~File() = default;
  /// Append `bytes` at the current position. All-or-error at this seam:
  /// a short write surfaces as a failure (partial bytes may still have
  /// reached the file — callers recover via their torn-tail handling).
  virtual Status write(const std::string& bytes) = 0;
  /// Flush and fsync: on success every preceding write is durable.
  virtual Status sync() = 0;
  /// Close the handle (flushes buffered bytes, without the durability
  /// guarantee of sync()). Idempotent.
  virtual Status close() = 0;
};

/// The injectable filesystem interface (see the file comment). All paths
/// are plain strings; implementations are thread-safe.
class FileSystem {
 public:
  virtual ~FileSystem() = default;
  /// Open `path` per `mode` into `*out`. `*out` is set only on success.
  virtual Status open(const std::string& path, OpenMode mode,
                      std::unique_ptr<File>* out) = 0;
  /// Read the whole file into `*out` (replaced only on success). A
  /// missing file is kNotFound.
  virtual Status read_file(const std::string& path, std::string* out) = 0;
  /// Atomically rename `from` onto `to` (the publish step of
  /// durable_write).
  virtual Status rename(const std::string& from, const std::string& to) = 0;
  /// Remove `path`. A missing file is OK (remove is used for cleanup and
  /// retirement, where "already gone" is the goal state).
  virtual Status remove(const std::string& path) = 0;
  /// The names (not paths) of regular files directly under `dir`, sorted.
  virtual Status list(const std::string& dir,
                      std::vector<std::string>* names) = 0;
  /// Truncate `path` to `size` bytes (torn-tail repair on checkpoints).
  virtual Status truncate(const std::string& path, std::uint64_t size) = 0;
  /// Create `path` and any missing parents.
  virtual Status create_directories(const std::string& path) = 0;
  /// True when `path` exists (advisory — a cache-probe, never a lock).
  virtual bool exists(const std::string& path) const = 0;
  /// A named crash point: a no-op in production, but FaultyFs can be
  /// armed to "crash the process" exactly here — every operation after
  /// it fails and un-synced bytes are lost. Names must come from
  /// crash_point_names() so the torture harness can enumerate them.
  virtual void crash_point(const std::string& name);
};

/// The passthrough production filesystem (stdio + POSIX fsync +
/// std::filesystem), shared and stateless.
FileSystem& real();

/// Every named crash point compiled into the durable paths, in pipeline
/// order. The torture harness iterates this list and asserts the recovery
/// invariant at each point; FaultyFs records which names a run visited so
/// the list can never silently go stale.
const std::vector<std::string>& crash_point_names();

/// Default bounded-retry budget for transient errors (attempt count —
/// deterministic, no clocks, no sleeping).
inline constexpr std::uint32_t kDefaultRetryAttempts = 3;

/// Run `op` up to `attempts` times (>= 1), stopping on success or on the
/// first non-transient failure. Returns the last status. The retry is a
/// plain counter loop: no backoff, no clock — byte-identical replays.
Status with_retry(std::uint32_t attempts, const std::function<Status()>& op);

/// Write `content` to `path` via open/write/close (no durability
/// guarantee — the golden-report emitters' write, where the git diff is
/// the real safety net).
Status write_file(FileSystem& fs, const std::string& path,
                  const std::string& content);

/// Publish `content` at `path` durably: unique tmp file, write + sync,
/// then an atomic rename. A crash leaves the old file or the new one,
/// never a torn mix. A failed attempt removes its tmp file (never strands
/// it), and transient failures are retried up to `attempts` times.
Status durable_write(FileSystem& fs, const std::string& path,
                     const std::string& content,
                     std::uint32_t attempts = kDefaultRetryAttempts);

}  // namespace explframe::io
