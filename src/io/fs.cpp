#include "io/fs.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

namespace explframe::io {

namespace {

namespace stdfs = std::filesystem;

/// Spell the errnos our failure model names; anything else prints its
/// number. (strerror is not thread-safe and the workers are concurrent,
/// so we do not use it.)
std::string errno_name(int err) {
  switch (err) {
    case EINTR: return "EINTR";
    case EAGAIN: return "EAGAIN";
    case EIO: return "EIO";
    case EBUSY: return "EBUSY";
    case ENOSPC: return "ENOSPC";
    case EDQUOT: return "EDQUOT";
    case EROFS: return "EROFS";
    case EACCES: return "EACCES";
    case EPERM: return "EPERM";
    case ENOENT: return "ENOENT";
    case EISDIR: return "EISDIR";
    case ENOTDIR: return "ENOTDIR";
    case EMFILE: return "EMFILE";
    case ENFILE: return "ENFILE";
    default: return "errno=" + std::to_string(err);
  }
}

/// stdio handle behind the File interface. Durability comes from sync()
/// (fflush + fsync); close() flushes but does not fsync.
class RealFile final : public File {
 public:
  RealFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~RealFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status write(const std::string& bytes) override {
    if (file_ == nullptr)
      return Status::permanent_error("write on closed file '" + path_ + "'");
    if (bytes.empty()) return Status::ok_status();
    errno = 0;
    if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size())
      return Status::from_errno(errno != 0 ? errno : EIO,
                                "short write to '" + path_ + "'");
    return Status::ok_status();
  }

  Status sync() override {
    if (file_ == nullptr)
      return Status::permanent_error("sync on closed file '" + path_ + "'");
    errno = 0;
    if (std::fflush(file_) != 0)
      return Status::from_errno(errno != 0 ? errno : EIO,
                                "cannot flush '" + path_ + "'");
    errno = 0;
    if (::fsync(::fileno(file_)) != 0)
      return Status::from_errno(errno != 0 ? errno : EIO,
                                "cannot fsync '" + path_ + "'");
    return Status::ok_status();
  }

  Status close() override {
    if (file_ == nullptr) return Status::ok_status();
    std::FILE* file = file_;
    file_ = nullptr;
    errno = 0;
    if (std::fclose(file) != 0)
      return Status::from_errno(errno != 0 ? errno : EIO,
                                "cannot close '" + path_ + "'");
    return Status::ok_status();
  }

 private:
  std::FILE* file_;
  const std::string path_;
};

/// The production passthrough (see io::real()).
class RealFs final : public FileSystem {
 public:
  Status open(const std::string& path, OpenMode mode,
              std::unique_ptr<File>* out) override {
    errno = 0;
    std::FILE* file =
        std::fopen(path.c_str(), mode == OpenMode::kAppend ? "ab" : "wb");
    if (file == nullptr)
      return Status::from_errno(errno != 0 ? errno : EIO,
                                "cannot open '" + path + "'");
    *out = std::make_unique<RealFile>(file, path);
    return Status::ok_status();
  }

  Status read_file(const std::string& path, std::string* out) override {
    errno = 0;
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
      return Status::from_errno(errno != 0 ? errno : EIO,
                                "cannot open '" + path + "'");
    std::string content;
    char buffer[1 << 16];
    while (true) {
      errno = 0;
      const std::size_t got = std::fread(buffer, 1, sizeof(buffer), file);
      content.append(buffer, got);
      if (got < sizeof(buffer)) {
        if (std::ferror(file) != 0) {
          const Status status = Status::from_errno(
              errno != 0 ? errno : EIO, "cannot read '" + path + "'");
          std::fclose(file);
          return status;
        }
        break;
      }
    }
    std::fclose(file);
    *out = std::move(content);
    return Status::ok_status();
  }

  Status rename(const std::string& from, const std::string& to) override {
    errno = 0;
    if (std::rename(from.c_str(), to.c_str()) != 0)
      return Status::from_errno(errno != 0 ? errno : EIO,
                                "cannot rename '" + from + "' to '" + to +
                                    "'");
    return Status::ok_status();
  }

  Status remove(const std::string& path) override {
    errno = 0;
    if (std::remove(path.c_str()) != 0 && errno != ENOENT)
      return Status::from_errno(errno != 0 ? errno : EIO,
                                "cannot remove '" + path + "'");
    return Status::ok_status();
  }

  Status list(const std::string& dir,
              std::vector<std::string>* names) override {
    std::error_code ec;
    std::vector<std::string> found;
    for (stdfs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (it->is_regular_file(ec))
        found.push_back(it->path().filename().string());
    }
    if (ec)
      return Status::permanent_error("cannot list '" + dir +
                                     "': " + ec.message());
    std::sort(found.begin(), found.end());
    *names = std::move(found);
    return Status::ok_status();
  }

  Status truncate(const std::string& path, std::uint64_t size) override {
    errno = 0;
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0)
      return Status::from_errno(errno != 0 ? errno : EIO,
                                "cannot truncate '" + path + "'");
    return Status::ok_status();
  }

  Status create_directories(const std::string& path) override {
    std::error_code ec;
    stdfs::create_directories(path, ec);
    if (ec)
      return Status::permanent_error("cannot create directory '" + path +
                                     "': " + ec.message());
    return Status::ok_status();
  }

  bool exists(const std::string& path) const override {
    std::error_code ec;
    return stdfs::exists(path, ec);
  }
};

/// Monotonic suffix making concurrent durable_write tmp names unique
/// within the process.
std::atomic<std::uint64_t> g_tmp_counter{0};

}  // namespace

Status Status::transient_error(std::string message) {
  return Status(ErrorKind::kTransient, std::move(message));
}

Status Status::permanent_error(std::string message) {
  return Status(ErrorKind::kPermanent, std::move(message));
}

Status Status::not_found(std::string message) {
  return Status(ErrorKind::kNotFound, std::move(message));
}

Status Status::from_errno(int err, const std::string& context) {
  const std::string message = context + " (" + errno_name(err) + ")";
  switch (err) {
    case EINTR:
    case EAGAIN:
    case EIO:
    case EBUSY:
      return transient_error(message);
    case ENOENT:
      return not_found(message);
    default:
      return permanent_error(message);
  }
}

const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::kOpen: return "open";
    case Op::kWrite: return "write";
    case Op::kSync: return "sync";
    case Op::kClose: return "close";
    case Op::kRead: return "read";
    case Op::kRename: return "rename";
    case Op::kRemove: return "remove";
    case Op::kList: return "list";
    case Op::kTruncate: return "truncate";
    case Op::kMkdir: return "mkdir";
  }
  return "?";
}

void FileSystem::crash_point(const std::string&) {}

FileSystem& real() {
  static RealFs fs;
  return fs;
}

const std::vector<std::string>& crash_point_names() {
  // Keep this list in pipeline order and in sync with every
  // fs.crash_point(...) call site; the torture suites arm each name in
  // turn and assert recovery, and they fail if a name is never visited.
  static const std::vector<std::string> names = {
      "durable-write.tmp-synced",     // tmp synced, rename not yet done
      "service.submit.spooled",       // .req durable, queue not yet told
      "service.finish.csv-written",   // csv report durable, md not yet
      "service.finish.committed",     // md (the commit record) durable,
                                      // .req not yet retired
      "service.fail.recorded",        // failed/<id>.err durable, .req not
                                      // yet retired
      "sweep.checkpoint.appended",    // record line durable, in-memory
                                      // slot not yet updated
  };
  return names;
}

Status with_retry(std::uint32_t attempts, const std::function<Status()>& op) {
  if (attempts == 0) attempts = 1;
  Status status;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    status = op();
    if (!status.transient()) return status;
  }
  return status;
}

Status write_file(FileSystem& fs, const std::string& path,
                  const std::string& content) {
  std::unique_ptr<File> file;
  Status status = fs.open(path, OpenMode::kTruncate, &file);
  if (!status.ok()) return status;
  status = file->write(content);
  const Status closed = file->close();
  return status.ok() ? closed : status;
}

Status durable_write(FileSystem& fs, const std::string& path,
                     const std::string& content, std::uint32_t attempts) {
  return with_retry(attempts, [&fs, &path, &content] {
    const std::string tmp =
        path + ".tmp" + std::to_string(g_tmp_counter.fetch_add(1));
    std::unique_ptr<File> file;
    Status status = fs.open(tmp, OpenMode::kTruncate, &file);
    if (!status.ok()) return status;
    status = file->write(content);
    if (status.ok()) status = file->sync();
    const Status closed = file->close();
    if (status.ok()) status = closed;
    if (status.ok()) {
      fs.crash_point("durable-write.tmp-synced");
      status = fs.rename(tmp, path);
    }
    // Never strand the tmp file: whatever failed above, take the partial
    // artifact with us (best effort — after a simulated crash even the
    // remove fails, which is exactly what a real crash leaves behind).
    if (!status.ok()) (void)fs.remove(tmp);
    return status;
  });
}

}  // namespace explframe::io
