// The end-to-end ExplFrame campaign (§V + §VI of the paper), cipher- and
// analysis-agnostic:
//
//   1. TEMPLATE  — hammer the attacker's own buffer until a page with a
//                  usable flip is found (usable = the flip's page offset
//                  falls inside the victim's table window, the bit is live
//                  for the cipher, and its polarity matches the canonical
//                  table bit at that position).
//   2. PLANT     — munmap that single page; its frame lands at the hot head
//                  of the current CPU's page frame cache. Stay active.
//   3. STEER     — the victim (same CPU) installs its crypto context; its
//                  first-touched page receives the planted frame.
//   4. HAMMER    — re-hammer the SAME aggressor virtual addresses (still
//                  mapped); the same weak cell flips again, now corrupting
//                  the victim's table.
//   5. HARVEST   — collect ciphertexts of the victim encrypting unknown
//                  plaintexts.
//   6. ANALYSE   — the fault::Analysis engine (PFA) recovers the master key.
//
// One ExplFrameCampaign drives every (cipher, analysis) combination; what
// used to be two near-duplicate attack classes is now a CampaignConfig.
// The attacker never reads /proc/<pid>/pagemap; PFNs appear only in the
// report's ground-truth section, filled in by the harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/templating.hpp"
#include "attack/victim.hpp"
#include "crypto/table_cipher.hpp"
#include "fault/analysis.hpp"
#include "kernel/system.hpp"

namespace explframe::attack {

/// Everything one campaign needs: the (cipher, analysis) pair, per-phase
/// budgets, the contention knobs and the master seed. Plain data — a
/// scenario or bench fills it in and hands it to ExplFrameCampaign.
struct CampaignConfig {
  crypto::CipherKind cipher = crypto::CipherKind::kAes128;
  fault::AnalysisKind analysis = fault::AnalysisKind::kPfaMissingValue;
  TemplateConfig templating;
  VictimConfig victim;
  std::uint32_t cpu = 0;  ///< CPU shared by attacker and victim.
  /// Ciphertexts harvested before giving up on key recovery.
  std::uint32_t ciphertext_budget = 6000;
  /// Harvested ciphertexts between key-recovery attempts (0 = a cadence
  /// matched to the cipher's table alphabet: 256 for AES, 25 for PRESENT).
  std::uint32_t analysis_check_interval = 0;
  /// Harvest through the batched fast path (snapshot-validated
  /// VictimCipherService::encrypt_batch + Analysis::add_ciphertext_batch,
  /// chunked at the check cadence). Byte-identical reports either way —
  /// false exists only as the differential-testing escape hatch.
  bool batched_harvest = true;
  /// Background noise operations between plant and victim allocation
  /// (models other activity racing for the planted frame). CPU of the
  /// noise task and whether it shares the attack CPU are configurable.
  std::uint32_t noise_ops = 0;
  std::uint32_t noise_cpu = 0;
  /// If true, the attacker sleeps (yields the CPU to the noise task)
  /// between plant and victim allocation — the failure mode the paper
  /// warns about. If false the attacker stays active (paper's attack).
  bool attacker_sleeps = false;
  /// Master seed. The campaign derives independent sub-seeds from it for
  /// templating, the victim key (when victim.key is empty), the noise
  /// workload and the harvested plaintexts, so parallel trials seeded with
  /// distinct values share no RNG stream. TemplateConfig::seed is
  /// overridden by the derived value.
  std::uint64_t seed = 42;
};

/// Every phase outcome, for the experiment tables — one struct for all
/// ciphers (keys are raw bytes sized by the cipher).
struct CampaignReport {
  crypto::CipherKind cipher = crypto::CipherKind::kAes128;

  // Phase 1: templating.
  bool template_found = false;
  std::uint64_t rows_scanned = 0;
  std::uint64_t flips_found = 0;
  FlipRecord chosen;              ///< The flip used for the attack.
  std::uint16_t table_index = 0;  ///< Table entry the flip corrupts.
  std::uint8_t fault_mask = 0;

  // Phase 3: steering (ground truth).
  bool steered = false;  ///< Victim's table page received the planted frame.
  mm::Pfn planted_pfn = mm::kInvalidPfn;
  mm::Pfn victim_table_pfn = mm::kInvalidPfn;

  // Phase 4: fault injection (ground truth).
  bool fault_injected = false;  ///< Victim table corrupted after re-hammer.
  bool fault_as_predicted = false;  ///< Exactly the templated bit flipped.

  // Phase 5/6: analysis.
  std::uint32_t ciphertexts_used = 0;
  std::uint32_t residual_search = 0;  ///< Brute-force candidates (PRESENT).
  bool key_recovered = false;
  std::vector<std::uint8_t> recovered_key;

  // Ground truth: the key the victim actually used (config key, or the
  // seed-derived key when the config left it empty).
  std::vector<std::uint8_t> victim_key;

  bool success = false;  ///< key_recovered && matches victim key.
  SimTime total_time = 0;

  /// First pipeline phase that failed ("none" on success).
  std::string failure_stage() const;
};

/// Drives the six-phase pipeline above over one kernel::System. run() never
/// mutates the stored config (derived seeds and the seed-derived victim key
/// live in locals), so a campaign object is re-runnable — though each run()
/// attacks the same System, whose state the previous run already changed;
/// for bit-identical repeats, rebuild the System too.
class ExplFrameCampaign {
 public:
  ExplFrameCampaign(kernel::System& system, const CampaignConfig& config);

  CampaignReport run() const;

  const CampaignConfig& config() const noexcept { return config_; }

 private:
  kernel::System* system_;
  CampaignConfig config_;
};

}  // namespace explframe::attack
