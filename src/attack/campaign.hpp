// The end-to-end ExplFrame campaign (§V + §VI of the paper), cipher- and
// analysis-agnostic:
//
//   1. TEMPLATE  — hammer the attacker's own buffer until a page with a
//                  usable flip is found (usable = the flip's page offset
//                  falls inside the victim's table window, the bit is live
//                  for the cipher, and its polarity matches the canonical
//                  table bit at that position).
//   2. PLANT     — munmap that single page; its frame lands at the hot head
//                  of the current CPU's page frame cache. Stay active.
//   3. STEER     — the victim (same CPU) installs its crypto context; its
//                  first-touched page receives the planted frame.
//   4. HAMMER    — re-hammer the SAME aggressor virtual addresses (still
//                  mapped); the same weak cell flips again, now corrupting
//                  the victim's table.
//   5. HARVEST   — collect ciphertexts of the victim encrypting unknown
//                  plaintexts.
//   6. ANALYSE   — the fault::Analysis engine (PFA) recovers the master key.
//
// One ExplFrameCampaign drives every (cipher, analysis) combination; what
// used to be two near-duplicate attack classes is now a CampaignConfig.
// The attacker never reads /proc/<pid>/pagemap; PFNs appear only in the
// report's ground-truth section, filled in by the harness.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/templating.hpp"
#include "attack/victim.hpp"
#include "crypto/table_cipher.hpp"
#include "fault/analysis.hpp"
#include "kernel/system.hpp"
#include "snapshot/restorable.hpp"

namespace explframe::attack {

/// Everything one campaign needs: the (cipher, analysis) pair, per-phase
/// budgets, the contention knobs and the master seed. Plain data — a
/// scenario or bench fills it in and hands it to ExplFrameCampaign.
struct CampaignConfig {
  crypto::CipherKind cipher = crypto::CipherKind::kAes128;
  fault::AnalysisKind analysis = fault::AnalysisKind::kPfaMissingValue;
  TemplateConfig templating;
  VictimConfig victim;
  std::uint32_t cpu = 0;  ///< CPU shared by attacker and victim.
  /// Ciphertexts harvested before giving up on key recovery.
  std::uint32_t ciphertext_budget = 6000;
  /// Harvested ciphertexts between key-recovery attempts (0 = a cadence
  /// matched to the cipher's table alphabet: 256 for AES, 25 for PRESENT).
  std::uint32_t analysis_check_interval = 0;
  /// Harvest through the batched fast path (snapshot-validated
  /// VictimCipherService::encrypt_batch + Analysis::add_ciphertext_batch,
  /// chunked at the check cadence). Byte-identical reports either way —
  /// false exists only as the differential-testing escape hatch.
  bool batched_harvest = true;
  /// Run the post-templating phases off a machine snapshot captured right
  /// after templating (TemplatedCampaign). Byte-identical reports either
  /// way — false exists only as the differential-testing escape hatch;
  /// true additionally lets campaign groups sharing a templated base fork
  /// trials instead of re-templating (the sweep amortization).
  bool fork_from_snapshot = true;
  /// Background noise operations between plant and victim allocation
  /// (models other activity racing for the planted frame). CPU of the
  /// noise task and whether it shares the attack CPU are configurable.
  std::uint32_t noise_ops = 0;
  std::uint32_t noise_cpu = 0;
  /// If true, the attacker sleeps (yields the CPU to the noise task)
  /// between plant and victim allocation — the failure mode the paper
  /// warns about. If false the attacker stays active (paper's attack).
  bool attacker_sleeps = false;
  /// Master seed. The campaign derives independent sub-seeds from it for
  /// templating, the victim key (when victim.key is empty), the noise
  /// workload and the harvested plaintexts, so parallel trials seeded with
  /// distinct values share no RNG stream. TemplateConfig::seed is
  /// overridden by the derived value.
  std::uint64_t seed = 42;
};

/// Every phase outcome, for the experiment tables — one struct for all
/// ciphers (keys are raw bytes sized by the cipher).
struct CampaignReport {
  crypto::CipherKind cipher = crypto::CipherKind::kAes128;

  // Phase 1: templating.
  bool template_found = false;
  std::uint64_t rows_scanned = 0;
  std::uint64_t flips_found = 0;
  FlipRecord chosen;              ///< The flip used for the attack.
  std::uint16_t table_index = 0;  ///< Table entry the flip corrupts.
  std::uint8_t fault_mask = 0;

  // Phase 3: steering (ground truth).
  bool steered = false;  ///< Victim's table page received the planted frame.
  mm::Pfn planted_pfn = mm::kInvalidPfn;
  mm::Pfn victim_table_pfn = mm::kInvalidPfn;

  // Phase 4: fault injection (ground truth).
  bool fault_injected = false;  ///< Victim table corrupted after re-hammer.
  bool fault_as_predicted = false;  ///< Exactly the templated bit flipped.

  // Phase 5/6: analysis.
  std::uint32_t ciphertexts_used = 0;
  std::uint32_t residual_search = 0;  ///< Brute-force candidates (PRESENT).
  bool key_recovered = false;
  std::vector<std::uint8_t> recovered_key;

  // Ground truth: the key the victim actually used (config key, or the
  // seed-derived key when the config left it empty).
  std::vector<std::uint8_t> victim_key;

  bool success = false;  ///< key_recovered && matches victim key.
  SimTime total_time = 0;

  // ---- Timing breakdown --------------------------------------------------
  /// Simulated time spent in phase 1 (templating); the rest of total_time
  /// is the post-template attack. Deterministic (simulated clock).
  SimTime template_time = 0;
  /// Host wall-clock seconds spent templating. NOT byte-stable — excluded
  /// from every golden-checked emitter; stdout/bench diagnostics only.
  double template_wall_seconds = 0.0;
  /// True if this report was produced by forking from a post-templating
  /// snapshot (its templating phase was shared, not re-run). Diagnostic
  /// only; every other field is byte-identical either way.
  bool forked_from_template = false;

  /// First pipeline phase that failed ("none" on success).
  std::string failure_stage() const;
};

/// Canonical serialization of every (system, campaign) field that shapes
/// the templating phase's outcome — geometry/timings/weak cells/defences,
/// the full templating config, the victim allocation shape, the CPU —
/// and nothing that only matters after templating (analysis kind, budgets,
/// noise, harvest/fork flags, the campaign master seed). Two configs with
/// equal keys and equal master seeds template identically, so their trials
/// may fork from one shared post-templating snapshot (SweepRunner groups
/// grid points by this key).
std::string template_key(const kernel::SystemConfig& system,
                         const CampaignConfig& campaign);

/// The campaign split at its natural seam: construction runs setup +
/// templating (phase 1) exactly as ExplFrameCampaign::run() would, then —
/// when `take_snapshot` — captures a machine snapshot; run_fork() restores
/// that snapshot and runs the post-template phases (2-6), so N variants
/// sharing a templated base cost one templating plus N cheap forks. With
/// take_snapshot = false there is no snapshot machinery at all and a
/// single run_fork() is exactly the legacy single-shot campaign (the
/// differential-testing escape hatch mirrors batched_harvest's).
///
/// Reports are byte-identical to fresh single-shot runs because (a) the
/// machine restore is exact (snap::Restorable contract; the mmap cursor
/// restore makes the victim's post-fork VAs match a fresh run), and
/// (b) every post-template knob comes from the run_fork argument while
/// every template-shaping field is CHECKed equal to the templated base
/// (template_key + master seed).
class TemplatedCampaign {
 public:
  /// Runs setup + templating immediately on `system` (which must be
  /// freshly constructed, as in CampaignRunner::run_trial).
  TemplatedCampaign(kernel::System& system, const CampaignConfig& config,
                    bool take_snapshot);

  /// Run phases 2-6 under `config`. CHECK: `config` agrees with the
  /// templated base on template_key and master seed. Restores the
  /// post-template snapshot first when one was taken, so calls are
  /// independent; without one, at most a single call is meaningful.
  CampaignReport run_fork(const CampaignConfig& config);

  // ---- Introspection (debugger + tests) ---------------------------------
  /// The templated base configuration.
  const CampaignConfig& config() const noexcept { return config_; }
  /// Phase-1 outcome fields (template_found, chosen flip, victim key, ...).
  const CampaignReport& template_result() const noexcept { return partial_; }
  /// The fault model derived from the chosen flip (valid iff
  /// template_result().template_found).
  const fault::FaultModel& fault_model() const noexcept { return fault_model_; }
  kernel::System& system() noexcept { return *system_; }
  kernel::Task& attacker() noexcept { return *attacker_; }
  VictimCipherService& victim() noexcept { return *victim_; }
  Templater& templater() noexcept { return *templater_; }
  const crypto::TableCipher& cipher() const noexcept { return *cipher_; }
  std::uint64_t noise_seed() const noexcept { return noise_seed_; }
  std::uint64_t plaintext_seed() const noexcept { return plaintext_seed_; }
  /// Simulated clock at campaign start (before setup + templating).
  SimTime start_time() const noexcept { return start_; }

 private:
  kernel::System* system_;
  CampaignConfig config_;
  const crypto::TableCipher* cipher_ = nullptr;
  std::unique_ptr<VictimCipherService> victim_;
  std::unique_ptr<Templater> templater_;
  kernel::Task* attacker_ = nullptr;
  CampaignReport partial_;  ///< Phase-1 fields, copied into every fork.
  fault::FaultModel fault_model_;
  std::uint64_t noise_seed_ = 0;
  std::uint64_t plaintext_seed_ = 0;
  SimTime start_ = 0;
  SimTime template_time_ = 0;
  double template_wall_ = 0.0;
  std::unique_ptr<snap::Snapshot> post_template_;
};

/// Drives the six-phase pipeline above over one kernel::System. run() never
/// mutates the stored config (derived seeds and the seed-derived victim key
/// live in locals), so a campaign object is re-runnable — though each run()
/// attacks the same System, whose state the previous run already changed;
/// for bit-identical repeats, rebuild the System too.
///
/// run() is a thin wrapper over TemplatedCampaign: template once, fork
/// once. config().fork_from_snapshot selects whether the fork really goes
/// through a snapshot restore (exercising the CoW machinery on every
/// campaign) or runs straight through (the legacy path).
class ExplFrameCampaign {
 public:
  ExplFrameCampaign(kernel::System& system, const CampaignConfig& config);

  CampaignReport run() const;

  const CampaignConfig& config() const noexcept { return config_; }

 private:
  kernel::System* system_;
  CampaignConfig config_;
};

}  // namespace explframe::attack
