// attack::CampaignRunner — executes N independent campaign trials across a
// worker-thread pool and aggregates the per-phase outcome statistics.
//
// Each trial gets its own kernel::System (simulated machine) and its own
// deterministically derived (system seed, campaign seed) pair, so results
// are bit-identical for a fixed master seed regardless of thread count or
// scheduling — parallelism changes only the wall clock.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "attack/campaign.hpp"
#include "kernel/system.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace explframe::attack {

/// A sweep: N trials of one campaign configuration across a worker pool.
struct RunnerConfig {
  /// Independent simulated machines to attack.
  std::uint32_t trials = 8;
  /// Worker threads (each owns one System at a time). 0 = 1.
  std::uint32_t threads = 2;
  /// Per-trial machine; its seed is overridden by the derived trial seed.
  kernel::SystemConfig system;
  /// Per-trial campaign; its seed is overridden by the derived trial seed.
  CampaignConfig campaign;
  /// Master seed all per-trial seeds derive from.
  std::uint64_t seed = 1;
};

/// Aggregated outcome of a campaign sweep.
struct CampaignAggregate {
  std::uint32_t trials = 0;
  std::uint32_t templated = 0;
  std::uint32_t steered = 0;
  std::uint32_t fault_injected = 0;
  std::uint32_t key_recovered = 0;
  std::uint32_t succeeded = 0;

  Samples rows_scanned;      ///< All trials.
  Samples ciphertexts_used;  ///< Successful trials only.
  Samples sim_seconds;       ///< Simulated attack time, all trials.
  /// Simulated templating time per trial — the slice of sim_seconds the
  /// snapshot/fork engine amortizes away when trials share a base.
  Samples template_sim_seconds;
  /// Host seconds spent templating, summed over trials as reported (trials
  /// forked from one base repeat the shared run's value). Diagnostic only;
  /// never part of byte-stable emitters.
  double template_wall_seconds = 0.0;
  /// failure_stage() -> count, including "none" for successes.
  std::map<std::string, std::uint32_t> failure_stages;

  /// Per-trial reports in trial order (independent of worker scheduling).
  std::vector<CampaignReport> reports;

  double wall_seconds = 0.0;  ///< Host wall-clock time for the whole sweep.
  double trials_per_second() const noexcept {
    return wall_seconds > 0.0 ? trials / wall_seconds : 0.0;
  }
  double success_rate() const noexcept {
    return trials > 0 ? static_cast<double>(succeeded) / trials : 0.0;
  }

  /// Per-phase success table (the EXP-T4-style bench output).
  Table phase_table() const;
};

/// Executes a RunnerConfig; see the file comment for the determinism
/// guarantee (results are independent of thread count and scheduling).
class CampaignRunner {
 public:
  explicit CampaignRunner(const RunnerConfig& config) : config_(config) {}

  CampaignAggregate run();

  /// The (system seed, campaign seed) pair trial `trial` runs with —
  /// exposed so a single trial can be reproduced outside the runner.
  static std::pair<std::uint64_t, std::uint64_t> trial_seeds(
      std::uint64_t master_seed, std::uint32_t trial) noexcept;

  /// Run exactly one trial (the runner's unit of work) synchronously.
  static CampaignReport run_trial(const RunnerConfig& config,
                                  std::uint32_t trial);

  /// Run one trial of several campaign variants that agree on every
  /// template-shaping field (attack::template_key; CHECKed) over ONE
  /// machine: template once, snapshot, fork each variant from the shared
  /// post-templating state. Element i corresponds to variants[i] and is
  /// byte-identical to run_trial with that campaign config — this is the
  /// sweep amortization (SweepRunner groups grid points by template_key).
  static std::vector<CampaignReport> run_trial_group(
      const RunnerConfig& base, const std::vector<CampaignConfig>& variants,
      std::uint32_t trial);

  const RunnerConfig& config() const noexcept { return config_; }

 private:
  RunnerConfig config_;
};

}  // namespace explframe::attack
