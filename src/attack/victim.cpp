#include "attack/victim.hpp"

#include "support/check.hpp"

namespace explframe::attack {

VictimCipherService::VictimCipherService(kernel::System& system,
                                         std::uint32_t cpu,
                                         const crypto::TableCipher& cipher,
                                         const VictimConfig& config)
    : system_(&system),
      cpu_(cpu),
      cipher_(&cipher),
      config_(config),
      table_scratch_(cipher.table_size()),
      rk_scratch_(cipher.round_key_size()) {
  EXPLFRAME_CHECK(config.sbox_offset + cipher.table_size() <= kPageSize);
  EXPLFRAME_CHECK(cipher.round_key_size() <= kPageSize);
  EXPLFRAME_CHECK(config.data_pages >= 2);
  EXPLFRAME_CHECK_MSG(config.key.size() == cipher.key_size(),
                      "victim key size must match the cipher");
}

void VictimCipherService::start() {
  task_ = &system_->spawn("victim", cpu_);
  if (config_.warm_up) {
    const vm::VirtAddr warm = system_->sys_mmap(*task_, kPageSize);
    const std::uint8_t b = 0xA5;
    system_->mem_write(*task_, warm, {&b, 1});
  }
}

void VictimCipherService::install_tables() {
  EXPLFRAME_CHECK_MSG(task_ != nullptr, "start() first");
  region_va_ = system_->sys_mmap(
      *task_, static_cast<std::uint64_t>(config_.data_pages) * kPageSize);
  // Page 0: crypto context header + S-box table (touched first, so it
  // receives the head of the CPU's page frame cache). Page 1: round keys.
  table_va_ = region_va_;
  keys_va_ = region_va_ + kPageSize;

  const auto table = cipher_->canonical_table();
  EXPLFRAME_CHECK(system_->mem_write(*task_, table_va_ + config_.sbox_offset,
                                     {table.data(), table.size()}));
  std::vector<std::uint8_t> rk(cipher_->round_key_size());
  cipher_->expand_key(config_.key, rk);
  EXPLFRAME_CHECK(
      system_->mem_write(*task_, keys_va_, {rk.data(), rk.size()}));
  // Touch the remaining context pages (buffers, bignum scratch, ...).
  for (std::uint32_t p = 2; p < config_.data_pages; ++p) {
    const std::uint8_t zero = 0;
    system_->mem_write(*task_, region_va_ + p * kPageSize, {&zero, 1});
  }
}

std::vector<std::uint8_t> VictimCipherService::read_table() {
  std::vector<std::uint8_t> table(cipher_->table_size());
  EXPLFRAME_CHECK(system_->mem_read(*task_, table_va_ + config_.sbox_offset,
                                    {table.data(), table.size()}));
  return table;
}

bool VictimCipherService::table_corrupted() {
  const auto table = read_table();
  const auto canonical = cipher_->canonical_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::uint8_t live = cipher_->live_bits(i);
    if ((table[i] & live) != (canonical[i] & live)) return true;
  }
  return false;
}

void VictimCipherService::encrypt(std::span<const std::uint8_t> plaintext,
                                  std::span<std::uint8_t> ciphertext) {
  EXPLFRAME_CHECK_MSG(table_va_ != 0, "install_tables() first");
  EXPLFRAME_CHECK(plaintext.size() == cipher_->block_size());
  EXPLFRAME_CHECK(ciphertext.size() == cipher_->block_size());
  EXPLFRAME_CHECK(system_->mem_read(
      *task_, table_va_ + config_.sbox_offset,
      {table_scratch_.data(), table_scratch_.size()}));
  EXPLFRAME_CHECK(system_->mem_read(
      *task_, keys_va_, {rk_scratch_.data(), rk_scratch_.size()}));
  cipher_->encrypt(plaintext, rk_scratch_, table_scratch_, ciphertext);
  ++encryptions_;
}

std::vector<std::uint8_t> VictimCipherService::encrypt(
    std::span<const std::uint8_t> plaintext) {
  std::vector<std::uint8_t> ct(cipher_->block_size());
  encrypt(plaintext, ct);
  return ct;
}

void VictimCipherService::encrypt_batch(
    std::span<const std::uint8_t> plaintexts,
    std::span<std::uint8_t> ciphertexts) {
  EXPLFRAME_CHECK_MSG(table_va_ != 0, "install_tables() first");
  const std::size_t block = cipher_->block_size();
  EXPLFRAME_CHECK(plaintexts.size() == ciphertexts.size());
  EXPLFRAME_CHECK(plaintexts.size() % block == 0);
  // Per-call encrypt() re-reads table + round keys before every block; the
  // memory epoch certifies that those reads would all return the same bytes
  // while it is unchanged, so one snapshot pair of mem_reads per epoch is
  // observationally identical. Nothing inside the batch mutates simulated
  // memory (reads do not advance the device clock, and the victim's pages
  // are already faulted in), so one check per batch suffices.
  if (!batch_ctx_ || batch_epoch_ != system_->memory_epoch()) {
    EXPLFRAME_CHECK(system_->mem_read(
        *task_, table_va_ + config_.sbox_offset,
        {table_scratch_.data(), table_scratch_.size()}));
    EXPLFRAME_CHECK(system_->mem_read(
        *task_, keys_va_, {rk_scratch_.data(), rk_scratch_.size()}));
    batch_ctx_ = cipher_->make_context(rk_scratch_, table_scratch_);
    // Read the epoch after the snapshot: a demand fault during the reads
    // (possible if the pages were reclaimed) would bump it.
    batch_epoch_ = system_->memory_epoch();
  }
  cipher_->encrypt_batch(*batch_ctx_, plaintexts, ciphertexts);
  encryptions_ += plaintexts.size() / block;
}

}  // namespace explframe::attack
