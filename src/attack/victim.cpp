#include "attack/victim.hpp"

#include "support/check.hpp"

namespace explframe::attack {

using crypto::Aes128;

VictimAesService::VictimAesService(kernel::System& system, std::uint32_t cpu,
                                   const VictimConfig& config)
    : system_(&system), cpu_(cpu), config_(config) {
  EXPLFRAME_CHECK(config.sbox_offset + 256 <= kPageSize);
  EXPLFRAME_CHECK(config.data_pages >= 2);
}

void VictimAesService::start() {
  task_ = &system_->spawn("victim", cpu_);
  if (config_.warm_up) {
    const vm::VirtAddr warm = system_->sys_mmap(*task_, kPageSize);
    const std::uint8_t b = 0xA5;
    system_->mem_write(*task_, warm, {&b, 1});
  }
}

void VictimAesService::install_tables() {
  EXPLFRAME_CHECK_MSG(task_ != nullptr, "start() first");
  region_va_ = system_->sys_mmap(
      *task_, static_cast<std::uint64_t>(config_.data_pages) * kPageSize);
  // Page 0: crypto context header + S-box (touched first, so it receives
  // the head of the CPU's page frame cache). Page 1: expanded round keys.
  table_va_ = region_va_;
  keys_va_ = region_va_ + kPageSize;

  const auto& sbox = Aes128::sbox();
  EXPLFRAME_CHECK(system_->mem_write(*task_, table_va_ + config_.sbox_offset,
                                     {sbox.data(), sbox.size()}));
  const auto rk = Aes128::expand_key(config_.key);
  std::array<std::uint8_t, 11 * 16> rk_bytes{};
  for (std::size_t r = 0; r < 11; ++r)
    for (std::size_t i = 0; i < 16; ++i) rk_bytes[16 * r + i] = rk[r][i];
  EXPLFRAME_CHECK(
      system_->mem_write(*task_, keys_va_, {rk_bytes.data(), rk_bytes.size()}));
  // Touch the remaining context pages (buffers, bignum scratch, ...).
  for (std::uint32_t p = 2; p < config_.data_pages; ++p) {
    const std::uint8_t zero = 0;
    system_->mem_write(*task_, region_va_ + p * kPageSize, {&zero, 1});
  }
}

std::array<std::uint8_t, 256> VictimAesService::read_table() {
  std::array<std::uint8_t, 256> table{};
  EXPLFRAME_CHECK(system_->mem_read(*task_, table_va_ + config_.sbox_offset,
                                    {table.data(), table.size()}));
  return table;
}

bool VictimAesService::table_corrupted() {
  return read_table() != Aes128::sbox();
}

crypto::Aes128::Block VictimAesService::encrypt(
    const crypto::Aes128::Block& plaintext) {
  EXPLFRAME_CHECK_MSG(table_va_ != 0, "install_tables() first");
  const auto table = read_table();
  std::array<std::uint8_t, 11 * 16> rk_bytes{};
  EXPLFRAME_CHECK(
      system_->mem_read(*task_, keys_va_, {rk_bytes.data(), rk_bytes.size()}));
  Aes128::RoundKeys rk{};
  for (std::size_t r = 0; r < 11; ++r)
    for (std::size_t i = 0; i < 16; ++i) rk[r][i] = rk_bytes[16 * r + i];
  ++encryptions_;
  return Aes128::encrypt_with_sbox(plaintext, rk,
                                   std::span<const std::uint8_t, 256>(table));
}

}  // namespace explframe::attack
