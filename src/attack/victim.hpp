// The victim: a long-running crypto service whose AES S-box and round keys
// live in its own anonymous pages — the "sensitive data" the paper's
// attacker steers onto a Rowhammer-vulnerable frame.
//
// The service reloads its tables from (simulated) memory on every
// encryption, as a table-based implementation whose cache lines the
// attacker keeps evicting would; a persistent flip in the table page is
// therefore visible in every subsequent ciphertext.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/aes128.hpp"
#include "kernel/system.hpp"

namespace explframe::attack {

struct VictimConfig {
  crypto::Aes128::Key key{};
  /// Byte offset of the S-box within the table page (OpenSSL-style layout:
  /// table at some fixed, binary-known offset).
  std::uint32_t sbox_offset = 0x400;
  /// Total pages the service touches when installing its state; the table
  /// page is touched FIRST (it is the first field of the context struct).
  std::uint32_t data_pages = 4;
  /// Touch a warm-up region before installation so page-table nodes for the
  /// mmap area already exist and do not consume the planted frame.
  bool warm_up = true;
};

class VictimAesService {
 public:
  VictimAesService(kernel::System& system, std::uint32_t cpu,
                   const VictimConfig& config);

  /// Spawn the process and fault in the warm-up region (models the service
  /// having been running before the attack window opens).
  void start();

  /// Allocate the crypto context pages and write the S-box + expanded key
  /// into them. This is the small allocation the attacker's planted frame
  /// is meant to satisfy.
  void install_tables();

  /// Encrypt one block, reloading S-box and round keys from memory.
  crypto::Aes128::Block encrypt(const crypto::Aes128::Block& plaintext);

  std::uint64_t encryptions() const noexcept { return encryptions_; }

  // ---- Ground truth for the harness --------------------------------------
  kernel::Task& task() noexcept { return *task_; }
  vm::VirtAddr table_page_va() const noexcept { return table_va_; }
  const VictimConfig& config() const noexcept { return config_; }
  /// Current table content as stored in memory (may contain the fault).
  std::array<std::uint8_t, 256> read_table();
  /// True if the in-memory table differs from the canonical S-box.
  bool table_corrupted();

 private:
  kernel::System* system_;
  std::uint32_t cpu_;
  VictimConfig config_;
  kernel::Task* task_ = nullptr;
  vm::VirtAddr region_va_ = 0;
  vm::VirtAddr table_va_ = 0;  ///< Page holding the S-box.
  vm::VirtAddr keys_va_ = 0;   ///< Page holding the round keys.
  std::uint64_t encryptions_ = 0;
};

}  // namespace explframe::attack
