// The victim: a long-running crypto service whose S-box table and round
// keys live in its own anonymous pages — the "sensitive data" the paper's
// attacker steers onto a Rowhammer-vulnerable frame.
//
// The service is cipher-agnostic: everything cipher-specific (table size,
// live bits, key schedule, block shape) comes through crypto::TableCipher,
// so the same installation and reload-from-memory data path serves AES-128,
// PRESENT-80 and any future table cipher. The service reloads its tables
// from (simulated) memory on every encryption, as a table-based
// implementation whose cache lines the attacker keeps evicting would; a
// persistent flip in the table page is therefore visible in every
// subsequent ciphertext.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "crypto/table_cipher.hpp"
#include "kernel/system.hpp"

namespace explframe::attack {

/// Shape of the victim's crypto context allocation.
struct VictimConfig {
  /// Cipher key bytes; size must equal the cipher's key_size(). The
  /// campaign driver fills an empty key deterministically from its seed.
  std::vector<std::uint8_t> key;
  /// Byte offset of the S-box table within the table page (OpenSSL-style
  /// layout: table at some fixed, binary-known offset).
  std::uint32_t sbox_offset = 0x400;
  /// Total pages the service touches when installing its state; the table
  /// page is touched FIRST (it is the first field of the context struct).
  std::uint32_t data_pages = 4;
  /// Touch a warm-up region before installation so page-table nodes for the
  /// mmap area already exist and do not consume the planted frame.
  bool warm_up = true;
};

/// The victim process: installs its table + round keys into demand-faulted
/// pages and encrypts through them (reloading from memory every time).
class VictimCipherService {
 public:
  VictimCipherService(kernel::System& system, std::uint32_t cpu,
                      const crypto::TableCipher& cipher,
                      const VictimConfig& config);

  /// Spawn the process and fault in the warm-up region (models the service
  /// having been running before the attack window opens).
  void start();

  /// Allocate the crypto context pages and write the S-box table + expanded
  /// key into them. This is the small allocation the attacker's planted
  /// frame is meant to satisfy.
  void install_tables();

  /// Encrypt one block (cipher block_size() bytes), reloading the table and
  /// round keys from memory. The span overload writes into caller storage
  /// and does not allocate — the harvest loop's hot path.
  void encrypt(std::span<const std::uint8_t> plaintext,
               std::span<std::uint8_t> ciphertext);
  std::vector<std::uint8_t> encrypt(std::span<const std::uint8_t> plaintext);

  /// Batched harvest fast path: encrypt plaintexts.size() / block_size()
  /// concatenated blocks, byte-identical to that many encrypt() calls.
  /// The table + round keys are snapshotted through ONE pair of mem_reads
  /// and decoded into a cached crypto::EncryptContext; the cache is
  /// revalidated against kernel::System::memory_epoch(), so any mutation of
  /// simulated memory between batches (a hammer flip, a defence
  /// intervention, another task's write) invalidates the snapshot and the
  /// next batch falls back to re-reading exactly like the per-call path.
  /// Note: DRAM read-side diagnostics (e.g. the ECC corrected-bit counter)
  /// scale with reads actually performed, so the batched path — doing one
  /// read pair per epoch instead of per block — accrues proportionally
  /// fewer; ciphertexts and reports are unaffected.
  void encrypt_batch(std::span<const std::uint8_t> plaintexts,
                     std::span<std::uint8_t> ciphertexts);

  std::uint64_t encryptions() const noexcept { return encryptions_; }

  // ---- Ground truth for the harness --------------------------------------
  kernel::Task& task() noexcept { return *task_; }
  vm::VirtAddr table_page_va() const noexcept { return table_va_; }
  const VictimConfig& config() const noexcept { return config_; }
  const crypto::TableCipher& cipher() const noexcept { return *cipher_; }
  /// Current stored table bytes (may contain the fault; dead bits raw).
  std::vector<std::uint8_t> read_table();
  /// True if any live bit of the stored table differs from the canonical
  /// table (dead-bit corruption is invisible to the implementation).
  bool table_corrupted();

 private:
  kernel::System* system_;
  std::uint32_t cpu_;
  const crypto::TableCipher* cipher_;
  VictimConfig config_;
  kernel::Task* task_ = nullptr;
  vm::VirtAddr region_va_ = 0;
  vm::VirtAddr table_va_ = 0;  ///< Page holding the S-box table.
  vm::VirtAddr keys_va_ = 0;   ///< Page holding the round keys.
  std::uint64_t encryptions_ = 0;
  // Reload scratch (sized once per cipher) so encrypt() does not allocate.
  std::vector<std::uint8_t> table_scratch_;
  std::vector<std::uint8_t> rk_scratch_;
  // Batched-path snapshot cache: decoded (round keys, table) plus the
  // memory epoch it was read at. Invalid whenever the epoch moved.
  std::unique_ptr<crypto::EncryptContext> batch_ctx_;
  std::uint64_t batch_epoch_ = 0;
};

}  // namespace explframe::attack
