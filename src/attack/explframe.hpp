// The end-to-end ExplFrame attack (§V + §VI of the paper):
//
//   1. TEMPLATE  — hammer the attacker's own buffer until a page with a
//                  usable flip is found (usable = the flip's page offset
//                  falls inside the victim's S-box window and its polarity
//                  matches the canonical S-box bit at that position).
//   2. PLANT     — munmap that single page; its frame lands at the hot head
//                  of the current CPU's page frame cache. Stay active.
//   3. STEER     — the victim (same CPU) installs its crypto context; its
//                  first-touched page receives the planted frame.
//   4. HAMMER    — re-hammer the SAME aggressor virtual addresses (still
//                  mapped); the same weak cell flips again, now corrupting
//                  the victim's S-box.
//   5. HARVEST   — collect ciphertexts of the victim encrypting unknown
//                  plaintexts.
//   6. ANALYSE   — Persistent Fault Analysis recovers K10, then the master
//                  key via the inverse key schedule.
//
// The attacker never reads /proc/<pid>/pagemap; PFNs appear only in the
// report's ground-truth section, filled in by the harness.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "attack/templating.hpp"
#include "attack/victim.hpp"
#include "fault/pfa_aes.hpp"
#include "kernel/noise.hpp"

namespace explframe::attack {

struct ExplFrameConfig {
  TemplateConfig templating;
  VictimConfig victim;
  std::uint32_t cpu = 0;  ///< CPU shared by attacker and victim.
  /// Ciphertexts harvested before running PFA.
  std::uint32_t ciphertext_budget = 6000;
  fault::PfaStrategy strategy = fault::PfaStrategy::kMissingValue;
  /// Background noise operations between plant and victim allocation
  /// (models other activity racing for the planted frame). CPU of the
  /// noise task and whether it shares the attack CPU are configurable.
  std::uint32_t noise_ops = 0;
  std::uint32_t noise_cpu = 0;
  /// If true, the attacker sleeps (yields the CPU to the noise task)
  /// between plant and victim allocation — the failure mode the paper
  /// warns about. If false the attacker stays active (paper's attack).
  bool attacker_sleeps = false;
  std::uint64_t seed = 42;
};

/// Every phase outcome, for the experiment tables.
struct ExplFrameReport {
  // Phase 1: templating.
  bool template_found = false;
  std::uint64_t rows_scanned = 0;
  std::uint64_t flips_found = 0;
  FlipRecord chosen;             ///< The flip used for the attack.
  std::uint16_t sbox_index = 0;  ///< Table entry the flip corrupts.
  std::uint8_t fault_mask = 0;

  // Phase 3: steering (ground truth).
  bool steered = false;  ///< Victim's table page received the planted frame.
  mm::Pfn planted_pfn = mm::kInvalidPfn;
  mm::Pfn victim_table_pfn = mm::kInvalidPfn;

  // Phase 4: fault injection (ground truth).
  bool fault_injected = false;   ///< Victim table corrupted after re-hammer.
  bool fault_as_predicted = false;  ///< Exactly the templated bit flipped.

  // Phase 5/6: analysis.
  std::uint32_t ciphertexts_used = 0;
  bool key_recovered = false;
  crypto::Aes128::Key recovered_key{};

  bool success = false;  ///< key_recovered && matches victim key.
  SimTime total_time = 0;

  std::string failure_stage() const;
};

class ExplFrameAttack {
 public:
  ExplFrameAttack(kernel::System& system, const ExplFrameConfig& config)
      : system_(&system), config_(config) {}

  ExplFrameReport run();

 private:
  kernel::System* system_;
  ExplFrameConfig config_;
};

}  // namespace explframe::attack
