#include "attack/spray.hpp"

#include "attack/templating.hpp"
#include "support/check.hpp"

namespace explframe::attack {

SprayReport SprayBaseline::run() {
  SprayReport report;
  const SimTime start = system_->now();
  Rng rng(config_.seed);

  kernel::Task& attacker = system_->spawn("spray-attacker", config_.cpu);
  const crypto::TableCipher& cipher = crypto::cipher_for(config_.cipher);
  if (config_.victim.key.empty())
    config_.victim.key = crypto::random_key(cipher, rng.next());
  VictimCipherService victim(*system_, config_.cpu, cipher, config_.victim);
  victim.start();

  // Victim installs its context first — the attacker has no influence on
  // frame placement in this baseline.
  victim.install_tables();

  // Attacker allocates a buffer and hammers random row pairs inside it.
  const vm::VirtAddr buf = system_->sys_mmap(attacker, config_.buffer_bytes);
  const std::uint64_t pages = config_.buffer_bytes / kPageSize;
  for (std::uint64_t p = 0; p < pages; ++p) {
    const std::uint8_t b = 0x55;
    EXPLFRAME_CHECK(system_->mem_write(attacker, buf + p * kPageSize, {&b, 1}));
  }

  const std::uint32_t row_bytes = system_->dram().geometry().row_bytes;
  const std::uint64_t stride =
      discover_row_stride(*system_, attacker, buf, config_.buffer_bytes);
  EXPLFRAME_CHECK_MSG(stride != 0, "bank stride discovery failed");
  const std::uint64_t rows = (config_.buffer_bytes - 2 * stride) / row_bytes;
  system_->dram().drain_flips();
  for (std::uint32_t i = 0; i < config_.pairs; ++i) {
    // A double-sided pair around a random row of the buffer.
    const std::uint64_t r = rng.uniform(rows);
    const vm::VirtAddr lo = buf + r * row_bytes;
    const vm::VirtAddr hi = lo + 2 * stride;
    for (std::uint64_t it = 0; it < config_.hammer_iterations; ++it) {
      system_->uncached_access(attacker, lo);
      system_->uncached_access(attacker, hi);
    }
  }
  report.flips_anywhere = system_->dram().drain_flips().size();
  report.victim_corrupted = victim.table_corrupted();
  report.total_time = system_->now() - start;
  return report;
}

}  // namespace explframe::attack
