#include "attack/campaign_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace explframe::attack {

Table CampaignAggregate::phase_table() const {
  Table t({"phase", "success", "rate"});
  const auto pct = [&](std::uint32_t n) {
    const auto ci = wilson_interval(n, trials);
    return Table::percent(ci.p) + "  [" + Table::percent(ci.lo) + ", " +
           Table::percent(ci.hi) + "]";
  };
  t.row("1 template (usable flip found)", templated, pct(templated));
  t.row("3 steer (victim got planted frame)", steered, pct(steered));
  t.row("4 fault injected into table", fault_injected, pct(fault_injected));
  t.row("6 key recovered", key_recovered, pct(key_recovered));
  t.row("overall success", succeeded, pct(succeeded));
  return t;
}

std::pair<std::uint64_t, std::uint64_t> CampaignRunner::trial_seeds(
    std::uint64_t master_seed, std::uint32_t trial) noexcept {
  // Hash (master, trial) once, then give each consumer its own salted
  // stream. Two draws from ONE incremented SplitMix64 state would overlap
  // across trials: the per-trial jump and the generator's own step are the
  // same golden-ratio constant, making trial t's campaign seed identical
  // to trial t+1's system seed.
  SplitMix64 base(master_seed + 0x9e3779b97f4a7c15ULL * (trial + 1ULL));
  const std::uint64_t h = base.next();
  const std::uint64_t system_seed = SplitMix64(h ^ 0x243f6a8885a308d3ULL).next();
  const std::uint64_t campaign_seed =
      SplitMix64(h ^ 0x452821e638d01377ULL).next();
  return {system_seed, campaign_seed};
}

CampaignReport CampaignRunner::run_trial(const RunnerConfig& config,
                                         std::uint32_t trial) {
  const auto [system_seed, campaign_seed] =
      trial_seeds(config.seed, trial);
  kernel::SystemConfig sys_cfg = config.system;
  sys_cfg.seed = system_seed;
  kernel::System sys(sys_cfg);
  CampaignConfig campaign_cfg = config.campaign;
  campaign_cfg.seed = campaign_seed;
  ExplFrameCampaign campaign(sys, campaign_cfg);
  return campaign.run();
}

std::vector<CampaignReport> CampaignRunner::run_trial_group(
    const RunnerConfig& base, const std::vector<CampaignConfig>& variants,
    std::uint32_t trial) {
  EXPLFRAME_CHECK(!variants.empty());
  const auto [system_seed, campaign_seed] = trial_seeds(base.seed, trial);
  kernel::SystemConfig sys_cfg = base.system;
  sys_cfg.seed = system_seed;
  kernel::System sys(sys_cfg);
  CampaignConfig first = variants.front();
  first.seed = campaign_seed;
  // Template once; every variant forks from the shared snapshot (run_fork
  // CHECKs that each variant matches the base's template_key).
  TemplatedCampaign templated(sys, first, /*take_snapshot=*/true);
  std::vector<CampaignReport> reports;
  reports.reserve(variants.size());
  for (const CampaignConfig& variant : variants) {
    CampaignConfig cfg = variant;
    cfg.seed = campaign_seed;
    reports.push_back(templated.run_fork(cfg));
  }
  return reports;
}

CampaignAggregate CampaignRunner::run() {
  EXPLFRAME_CHECK(config_.trials > 0);
  // RunnerConfig promises threads == 0 behaves like 1, and there is never a
  // point in spinning up more workers than there are trials.
  const std::uint32_t workers =
      std::clamp<std::uint32_t>(config_.threads, 1u, config_.trials);

  // determinism: allow(steady-clock) aggregate wall_seconds diagnostic, never emitted
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<CampaignReport> reports(config_.trials);
  std::atomic<std::uint32_t> next{0};
  auto worker = [&] {
    for (std::uint32_t trial = next.fetch_add(1); trial < config_.trials;
         trial = next.fetch_add(1)) {
      reports[trial] = run_trial(config_, trial);
    }
  };
  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  const std::chrono::duration<double> wall =
      // determinism: allow(steady-clock) aggregate wall_seconds diagnostic, never emitted
      std::chrono::steady_clock::now() - wall_start;

  // Aggregate serially, in trial order, so the aggregate is independent of
  // which worker ran which trial.
  CampaignAggregate agg;
  agg.trials = config_.trials;
  agg.wall_seconds = wall.count();
  for (CampaignReport& r : reports) {
    agg.templated += r.template_found;
    agg.steered += r.steered;
    agg.fault_injected += r.fault_injected;
    agg.key_recovered += r.key_recovered;
    agg.succeeded += r.success;
    agg.rows_scanned.add(static_cast<double>(r.rows_scanned));
    if (r.success)
      agg.ciphertexts_used.add(static_cast<double>(r.ciphertexts_used));
    agg.sim_seconds.add(static_cast<double>(r.total_time) / kSecond);
    agg.template_sim_seconds.add(static_cast<double>(r.template_time) /
                                 kSecond);
    agg.template_wall_seconds += r.template_wall_seconds;
    ++agg.failure_stages[r.failure_stage()];
    agg.reports.push_back(std::move(r));
  }
  return agg;
}

}  // namespace explframe::attack
