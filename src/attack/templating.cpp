#include "attack/templating.hpp"

#include <vector>

#include "support/check.hpp"

namespace explframe::attack {

std::uint64_t discover_row_stride(kernel::System& system, kernel::Task& task,
                                  vm::VirtAddr base, std::uint64_t limit) {
  const auto& t = system.dram().params().timings;
  const double threshold =
      0.5 * static_cast<double>(t.row_hit_ns + t.row_conflict_ns);
  const std::uint64_t row_bytes = system.dram().geometry().row_bytes;

  const auto conflicts = [&](vm::VirtAddr a, vm::VirtAddr b) {
    SimTime total = 0;
    constexpr std::uint32_t kProbes = 8;
    for (std::uint32_t i = 0; i < kProbes; ++i) {
      total += system.uncached_access(task, a);
      total += system.uncached_access(task, b);
    }
    return static_cast<double>(total) / (2.0 * kProbes) > threshold;
  };

  // Probe at several bases and take a majority vote: the first pages of a
  // fresh buffer are often physical-contiguity outliers (their frames were
  // interleaved with the kernel's own page-table allocations).
  for (std::uint64_t stride = row_bytes; 4 * stride <= limit; stride *= 2) {
    int votes = 0;
    for (std::uint64_t frac = 4; frac <= 8; frac += 2) {
      const vm::VirtAddr probe_base =
          base + (limit / frac / row_bytes) * row_bytes;
      if (conflicts(probe_base, probe_base + stride)) ++votes;
    }
    if (votes >= 2) return stride;
  }
  return 0;
}

Templater::Templater(kernel::System& system, kernel::Task& attacker,
                     const TemplateConfig& config)
    : system_(&system),
      attacker_(&attacker),
      config_(config),
      row_bytes_(system.dram().geometry().row_bytes) {
  EXPLFRAME_CHECK(config.buffer_bytes >= 4 * row_bytes_);
}

void Templater::allocate_buffer() {
  buffer_va_ = system_->sys_mmap(*attacker_, config_.buffer_bytes);
  buffer_pages_ = config_.buffer_bytes / kPageSize;
  // Fault every page in, in ascending order: on a fresh buddy allocator
  // this yields a mostly physically-contiguous buffer.
  for (std::uint64_t p = 0; p < buffer_pages_; ++p) {
    const std::uint8_t b = 0xFF;
    EXPLFRAME_CHECK(
        system_->mem_write(*attacker_, buffer_va_ + p * kPageSize, {&b, 1}));
  }
  row_stride_ = discover_row_stride(*system_, *attacker_, buffer_va_,
                                    config_.buffer_bytes);
  // Under XOR bank hashing no single stride conflicts; the contiguous
  // strategy cannot work then, but random-pair templating still can.
  EXPLFRAME_CHECK_MSG(
      row_stride_ != 0 ||
          config_.strategy == TemplateStrategy::kRandomPairs,
      "could not discover the bank stride by timing");
}

void Templater::probe_row(vm::VirtAddr target_row_va, std::uint8_t pattern,
                          TemplateReport& report) {
  const vm::VirtAddr agg_lo = target_row_va - row_stride_;
  const vm::VirtAddr agg_hi = target_row_va + row_stride_;

  // Fill target row with `pattern`, aggressor rows with its complement
  // (stripe patterns maximise coupling).
  std::vector<std::uint8_t> victim_fill(row_bytes_, pattern);
  std::vector<std::uint8_t> agg_fill(row_bytes_,
                                     static_cast<std::uint8_t>(~pattern));
  system_->mem_write(*attacker_, target_row_va,
                     {victim_fill.data(), victim_fill.size()});
  system_->mem_write(*attacker_, agg_lo, {agg_fill.data(), agg_fill.size()});
  system_->mem_write(*attacker_, agg_hi, {agg_fill.data(), agg_fill.size()});

  // Hammer on the batched-activation path (identical to per-access).
  const vm::VirtAddr aggressors[2] = {agg_lo, agg_hi};
  system_->hammer_burst(*attacker_, aggressors, config_.hammer_iterations);

  // Scan the target row for bits that changed.
  std::vector<std::uint8_t> readback(row_bytes_);
  system_->mem_read(*attacker_, target_row_va,
                    {readback.data(), readback.size()});
  for (std::uint32_t off = 0; off < row_bytes_; ++off) {
    const std::uint8_t delta =
        static_cast<std::uint8_t>(readback[off] ^ pattern);
    if (delta == 0) continue;
    for (std::uint8_t bit = 0; bit < 8; ++bit) {
      if (((delta >> bit) & 1u) == 0) continue;
      FlipRecord rec;
      rec.page_va = target_row_va + (off / kPageSize) * kPageSize;
      rec.offset = off % kPageSize;
      rec.bit = bit;
      rec.to_one = ((readback[off] >> bit) & 1u) != 0;
      rec.aggressor_lo = agg_lo;
      rec.aggressor_hi = agg_hi;
      report.flips.push_back(rec);
    }
  }
}

TemplateReport Templater::scan() { return scan_until(nullptr); }

TemplateReport Templater::scan_until(
    const std::function<bool(const FlipRecord&)>& good) {
  EXPLFRAME_CHECK_MSG(buffer_va_ != 0, "allocate_buffer() first");
  return config_.strategy == TemplateStrategy::kRandomPairs
             ? scan_random_pairs(good)
             : scan_contiguous(good);
}

TemplateReport Templater::scan_random_pairs(
    const std::function<bool(const FlipRecord&)>& good) {
  TemplateReport report;
  const SimTime start = system_->now();
  Rng rng(config_.seed ^ 0xfeedULL);
  const std::uint64_t rows = config_.buffer_bytes / row_bytes_;
  const std::uint64_t budget = config_.max_rows != 0 ? config_.max_rows : rows;

  const auto& t = system_->dram().params().timings;
  const double threshold =
      0.5 * static_cast<double>(t.row_hit_ns + t.row_conflict_ns);

  // Work one polarity at a time over the whole buffer: fill, hammer random
  // same-bank pairs, rescan after every session.
  std::vector<std::uint8_t> pattern_buf;
  std::vector<std::uint8_t> readback(config_.buffer_bytes);
  std::vector<vm::VirtAddr> flip_pages;
  const int passes = config_.both_polarities ? 2 : 1;
  bool done = false;
  for (int pass = 0; pass < passes && !done; ++pass) {
    const std::uint8_t pattern = pass == 0 ? 0xFF : 0x00;
    pattern_buf.assign(config_.buffer_bytes, pattern);
    system_->mem_write(*attacker_, buffer_va_,
                       {pattern_buf.data(), pattern_buf.size()});
    for (std::uint64_t session = 0; session < budget && !done; ++session) {
      // Find a timing-verified same-bank pair of distinct rows.
      vm::VirtAddr a = 0, b = 0;
      bool have_pair = false;
      for (int attempt = 0; attempt < 64; ++attempt) {
        a = buffer_va_ + rng.uniform(rows) * row_bytes_;
        b = buffer_va_ + rng.uniform(rows) * row_bytes_;
        if (a == b) continue;
        SimTime total = 0;
        for (std::uint32_t p = 0; p < 8; ++p) {
          total += system_->uncached_access(*attacker_, a);
          total += system_->uncached_access(*attacker_, b);
        }
        if (static_cast<double>(total) / 16.0 > threshold) {
          have_pair = true;
          break;
        }
      }
      if (!have_pair) continue;
      ++report.rows_scanned;  // counts hammer sessions in this mode

      const vm::VirtAddr aggressors[2] = {a, b};
      system_->hammer_burst(*attacker_, aggressors, config_.hammer_iterations);

      // Full-buffer rescan: any byte differing from the pattern (outside
      // the aggressor rows themselves, which the probe loop dirtied the
      // row buffers of, not the data) is a new flip.
      system_->mem_read(*attacker_, buffer_va_,
                        {readback.data(), readback.size()});
      for (std::uint64_t off = 0; off < readback.size(); ++off) {
        const std::uint8_t delta =
            static_cast<std::uint8_t>(readback[off] ^ pattern);
        if (delta == 0) continue;
        for (std::uint8_t bit = 0; bit < 8; ++bit) {
          if (((delta >> bit) & 1u) == 0) continue;
          FlipRecord rec;
          rec.page_va = buffer_va_ + (off / kPageSize) * kPageSize;
          rec.offset = static_cast<std::uint32_t>(off % kPageSize);
          rec.bit = bit;
          rec.to_one = ((readback[off] >> bit) & 1u) != 0;
          rec.aggressor_lo = std::min(a, b);
          rec.aggressor_hi = std::max(a, b);
          report.flips.push_back(rec);
          bool known = false;
          for (const vm::VirtAddr pv : flip_pages) known |= pv == rec.page_va;
          if (!known) flip_pages.push_back(rec.page_va);
          if (good && good(rec)) done = true;
        }
        // Restore the pattern so the flip is not double-counted.
        std::uint8_t fix = pattern;
        system_->mem_write(*attacker_, buffer_va_ + off, {&fix, 1});
      }
      if (config_.stop_after != 0 && flip_pages.size() >= config_.stop_after)
        done = true;
    }
  }
  report.pages_with_flips = flip_pages.size();
  report.elapsed = system_->now() - start;
  return report;
}

TemplateReport Templater::scan_contiguous(
    const std::function<bool(const FlipRecord&)>& good) {
  TemplateReport report;
  const SimTime start = system_->now();
  // Every row_bytes-sized block of the buffer is one DRAM row of some bank;
  // its same-bank neighbours sit row_stride away on either side.
  const vm::VirtAddr first = buffer_va_ + row_stride_;
  const vm::VirtAddr last = buffer_va_ + config_.buffer_bytes - row_stride_;

  std::vector<vm::VirtAddr> flip_pages;
  for (vm::VirtAddr target = first; target + row_bytes_ <= last;
       target += row_bytes_) {
    if (config_.max_rows != 0 && report.rows_scanned >= config_.max_rows)
      break;
    ++report.rows_scanned;
    // A target whose physical row sits at a bank edge has only one real
    // neighbour; hammering the VA "neighbours" would disturb unrelated rows.
    // Count it as skipped instead of recording a hammered-no-flips row.
    // (Harness-side accounting: the attacker herself would only see the
    // timing check below fail.)
    const dram::DramAddress target_coord =
        system_->dram().mapping().decode(system_->phys_of(*attacker_, target));
    if (target_coord.row == 0 ||
        target_coord.row + 1 >= system_->dram().geometry().rows_per_bank) {
      ++report.rows_skipped_edge;
      continue;
    }
    // Bank sanity check through the timing channel: if the two aggressor
    // rows do not conflict, the VA->PA contiguity assumption broke here.
    SimTime total = 0;
    for (std::uint32_t p = 0; p < config_.timing_probes; ++p) {
      total += system_->uncached_access(*attacker_, target - row_stride_);
      total += system_->uncached_access(*attacker_, target + row_stride_);
    }
    const auto& t = system_->dram().params().timings;
    const double avg = static_cast<double>(total) /
                       (2.0 * config_.timing_probes);
    if (avg < 0.5 * static_cast<double>(t.row_hit_ns + t.row_conflict_ns)) {
      ++report.rows_skipped_timing;
      continue;
    }

    const std::size_t before = report.flips.size();
    probe_row(target, 0xFF, report);
    if (config_.both_polarities) probe_row(target, 0x00, report);
    bool found_good = false;
    for (std::size_t i = before; i < report.flips.size(); ++i) {
      const vm::VirtAddr pv = report.flips[i].page_va;
      bool known = false;
      for (const vm::VirtAddr existing : flip_pages) known |= existing == pv;
      if (!known) flip_pages.push_back(pv);
      if (good && good(report.flips[i])) found_good = true;
    }
    if (found_good) break;
    if (config_.stop_after != 0 && flip_pages.size() >= config_.stop_after)
      break;
  }
  report.pages_with_flips = flip_pages.size();
  report.elapsed = system_->now() - start;
  return report;
}

SimTime Templater::hammer_aggressors(const FlipRecord& flip) const {
  return hammer_aggressors(flip, config_.hammer_iterations);
}

SimTime Templater::hammer_aggressors(const FlipRecord& flip,
                                     std::uint64_t iterations) const {
  const vm::VirtAddr aggressors[2] = {flip.aggressor_lo, flip.aggressor_hi};
  return system_->hammer_burst(*attacker_, aggressors, iterations);
}

}  // namespace explframe::attack
