#include "attack/explframe.hpp"

#include "support/check.hpp"
#include "support/log.hpp"

namespace explframe::attack {

using crypto::Aes128;

std::string ExplFrameReport::failure_stage() const {
  if (success) return "none";
  if (!template_found) return "templating";
  if (!steered) return "steering";
  if (!fault_injected) return "fault-injection";
  if (!key_recovered) return "key-recovery";
  return "key-mismatch";
}

ExplFrameReport ExplFrameAttack::run() {
  ExplFrameReport report;
  const SimTime start = system_->now();
  Rng rng(config_.seed);

  // ---------------------------------------------------------------- setup
  kernel::Task& attacker = system_->spawn("attacker", config_.cpu);

  // The victim service is already running (it is a long-lived daemon); it
  // has not yet allocated the crypto context.
  VictimAesService victim(*system_, config_.cpu, config_.victim);
  victim.start();

  // ------------------------------------------------------------ 1 TEMPLATE
  Templater templater(*system_, attacker, config_.templating);
  templater.allocate_buffer();

  const std::uint32_t sbox_off = config_.victim.sbox_offset;
  const auto& sbox = Aes128::sbox();
  // Usable flip: lands in the S-box window, and the canonical S-box bit at
  // that position is in the cell's charged state (so it will flip again
  // when the victim's table occupies the frame).
  const auto usable = [&](const FlipRecord& f) {
    if (f.offset < sbox_off || f.offset >= sbox_off + 256) return false;
    const std::uint8_t value = sbox[f.offset - sbox_off];
    const bool bit_set = ((value >> f.bit) & 1u) != 0;
    // to_one == true means an anti cell (flips 0->1): needs the bit clear.
    return f.to_one ? !bit_set : bit_set;
  };

  const TemplateReport tmpl = templater.scan_until(usable);
  report.rows_scanned = tmpl.rows_scanned;
  report.flips_found = tmpl.flips.size();
  for (const FlipRecord& f : tmpl.flips) {
    if (usable(f)) {
      report.template_found = true;
      report.chosen = f;
      break;
    }
  }
  if (!report.template_found) {
    report.total_time = system_->now() - start;
    return report;
  }
  report.sbox_index =
      static_cast<std::uint16_t>(report.chosen.offset - sbox_off);
  report.fault_mask = static_cast<std::uint8_t>(1u << report.chosen.bit);
  EXPLFRAME_LOG_INFO("template: flip at page offset 0x", std::hex,
                     report.chosen.offset, std::dec, " bit ",
                     int(report.chosen.bit), " -> S-box index ",
                     report.sbox_index);

  // -------------------------------------------------------------- 2 PLANT
  report.planted_pfn = system_->translate(attacker, report.chosen.page_va);
  EXPLFRAME_CHECK(report.planted_pfn != mm::kInvalidPfn);
  system_->sys_munmap(attacker, report.chosen.page_va, kPageSize);

  // Optional contention window between plant and victim allocation.
  if (config_.noise_ops > 0) {
    kernel::Task& noisy = system_->spawn("noise", config_.noise_cpu);
    kernel::NoiseWorkload noise(*system_, noisy, {}, rng.next());
    if (config_.attacker_sleeps) attacker.set_state(kernel::TaskState::kSleeping);
    noise.run(config_.noise_ops);
    if (config_.attacker_sleeps) attacker.set_state(kernel::TaskState::kRunnable);
  }

  // -------------------------------------------------------------- 3 STEER
  victim.install_tables();
  report.victim_table_pfn =
      system_->translate(victim.task(), victim.table_page_va());
  report.steered = report.victim_table_pfn == report.planted_pfn;

  // ------------------------------------------------------------- 4 HAMMER
  templater.hammer_aggressors(report.chosen);
  report.fault_injected = victim.table_corrupted();
  if (report.fault_injected) {
    const auto table = victim.read_table();
    const std::uint8_t expected = static_cast<std::uint8_t>(
        sbox[report.sbox_index] ^ report.fault_mask);
    std::uint32_t diffs = 0;
    for (std::size_t i = 0; i < 256; ++i)
      if (table[i] != sbox[i]) ++diffs;
    report.fault_as_predicted =
        diffs == 1 && table[report.sbox_index] == expected;
  }
  if (!report.steered || !report.fault_injected) {
    report.total_time = system_->now() - start;
    return report;
  }

  // ---------------------------------------------------- 5 + 6 HARVEST/PFA
  // v = the vanished S-box output; v' = its replacement. ExplFrame knows
  // both from the template (index + bit), without seeing the victim.
  const std::uint8_t v = sbox[report.sbox_index];
  const std::uint8_t v_new = static_cast<std::uint8_t>(v ^ report.fault_mask);

  fault::AesPfa pfa;
  for (std::uint32_t i = 0; i < config_.ciphertext_budget; ++i) {
    Aes128::Block pt;
    rng.fill_bytes({pt.data(), pt.size()});
    pfa.add_ciphertext(victim.encrypt(pt));
    // Periodically test whether the key is already pinned down.
    if ((i + 1) % 256 == 0 || i + 1 == config_.ciphertext_budget) {
      if (const auto key = pfa.recover_master_key(config_.strategy, v, v_new)) {
        report.key_recovered = true;
        report.recovered_key = *key;
        report.ciphertexts_used = i + 1;
        break;
      }
    }
  }
  if (!report.key_recovered)
    report.ciphertexts_used = config_.ciphertext_budget;

  report.success =
      report.key_recovered && report.recovered_key == config_.victim.key;
  report.total_time = system_->now() - start;
  return report;
}

}  // namespace explframe::attack
