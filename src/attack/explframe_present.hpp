// ExplFrame against a PRESENT-80 service — the "block cipherS" half of the
// paper's title. Same pipeline as the AES attack; the differences that
// matter are quantitative and are measured in EXP-T7:
//   * the target window is 16 table bytes (vs 256) and only the low nibble
//     of each is live, so templating needs a ~10x longer scan;
//   * PFA saturates after ~100 ciphertexts (16-value alphabet) plus a
//     <= 2^16 residual key-schedule search.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "attack/templating.hpp"
#include "crypto/present80.hpp"
#include "fault/pfa_present.hpp"
#include "kernel/system.hpp"

namespace explframe::attack {

/// A long-running PRESENT-80 encryption service; its 16-byte S-box table
/// (one nibble per byte) and round keys live in its own pages.
class VictimPresentService {
 public:
  struct Config {
    crypto::Present80::Key key{};
    std::uint32_t sbox_offset = 0x400;
    std::uint32_t data_pages = 4;
    bool warm_up = true;
  };

  VictimPresentService(kernel::System& system, std::uint32_t cpu,
                       const Config& config);

  void start();
  void install_tables();
  std::uint64_t encrypt(std::uint64_t plaintext);

  kernel::Task& task() noexcept { return *task_; }
  vm::VirtAddr table_page_va() const noexcept { return table_va_; }
  const Config& config() const noexcept { return config_; }
  std::array<std::uint8_t, 16> read_table();
  bool table_corrupted();

 private:
  kernel::System* system_;
  std::uint32_t cpu_;
  Config config_;
  kernel::Task* task_ = nullptr;
  vm::VirtAddr table_va_ = 0;
  vm::VirtAddr keys_va_ = 0;
};

struct ExplFramePresentConfig {
  TemplateConfig templating;
  VictimPresentService::Config victim;
  std::uint32_t cpu = 0;
  std::uint32_t ciphertext_budget = 2000;
  std::uint64_t seed = 42;
};

struct ExplFramePresentReport {
  bool template_found = false;
  std::uint64_t rows_scanned = 0;
  std::uint64_t flips_found = 0;
  FlipRecord chosen;
  std::uint8_t sbox_index = 0;  ///< 0..15
  std::uint8_t fault_mask = 0;  ///< Low-nibble bit.

  bool steered = false;
  mm::Pfn planted_pfn = mm::kInvalidPfn;
  mm::Pfn victim_table_pfn = mm::kInvalidPfn;
  bool fault_injected = false;

  std::uint32_t ciphertexts_used = 0;
  std::uint32_t residual_search = 0;  ///< Candidates tried in the 2^16 step.
  bool key_recovered = false;
  crypto::Present80::Key recovered_key{};

  bool success = false;
  SimTime total_time = 0;

  std::string failure_stage() const;
};

class ExplFramePresentAttack {
 public:
  ExplFramePresentAttack(kernel::System& system,
                         const ExplFramePresentConfig& config)
      : system_(&system), config_(config) {}

  ExplFramePresentReport run();

 private:
  kernel::System* system_;
  ExplFramePresentConfig config_;
};

}  // namespace explframe::attack
