#include "attack/explframe_present.hpp"

#include "support/check.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace explframe::attack {

using crypto::Present80;

VictimPresentService::VictimPresentService(kernel::System& system,
                                           std::uint32_t cpu,
                                           const Config& config)
    : system_(&system), cpu_(cpu), config_(config) {
  EXPLFRAME_CHECK(config.sbox_offset + 16 <= kPageSize);
  EXPLFRAME_CHECK(config.data_pages >= 2);
}

void VictimPresentService::start() {
  task_ = &system_->spawn("present-victim", cpu_);
  if (config_.warm_up) {
    const vm::VirtAddr warm = system_->sys_mmap(*task_, kPageSize);
    const std::uint8_t b = 0x5A;
    system_->mem_write(*task_, warm, {&b, 1});
  }
}

void VictimPresentService::install_tables() {
  EXPLFRAME_CHECK_MSG(task_ != nullptr, "start() first");
  const vm::VirtAddr region = system_->sys_mmap(
      *task_, static_cast<std::uint64_t>(config_.data_pages) * kPageSize);
  table_va_ = region;
  keys_va_ = region + kPageSize;

  const auto& sbox = Present80::sbox();
  EXPLFRAME_CHECK(system_->mem_write(*task_, table_va_ + config_.sbox_offset,
                                     {sbox.data(), sbox.size()}));
  const auto rk = Present80::expand_key(config_.key);
  std::array<std::uint8_t, 32 * 8> rk_bytes{};
  for (std::size_t r = 0; r < 32; ++r)
    for (std::size_t b = 0; b < 8; ++b)
      rk_bytes[8 * r + b] = static_cast<std::uint8_t>(rk[r] >> (8 * b));
  EXPLFRAME_CHECK(
      system_->mem_write(*task_, keys_va_, {rk_bytes.data(), rk_bytes.size()}));
  for (std::uint32_t p = 2; p < config_.data_pages; ++p) {
    const std::uint8_t zero = 0;
    system_->mem_write(*task_, region + p * kPageSize, {&zero, 1});
  }
}

std::array<std::uint8_t, 16> VictimPresentService::read_table() {
  std::array<std::uint8_t, 16> table{};
  EXPLFRAME_CHECK(system_->mem_read(*task_, table_va_ + config_.sbox_offset,
                                    {table.data(), table.size()}));
  return table;
}

bool VictimPresentService::table_corrupted() {
  const auto table = read_table();
  const auto& sbox = Present80::sbox();
  for (std::size_t i = 0; i < 16; ++i)
    if ((table[i] & 0xF) != sbox[i]) return true;
  return false;
}

std::uint64_t VictimPresentService::encrypt(std::uint64_t plaintext) {
  EXPLFRAME_CHECK_MSG(table_va_ != 0, "install_tables() first");
  const auto table = read_table();
  std::array<std::uint8_t, 32 * 8> rk_bytes{};
  EXPLFRAME_CHECK(
      system_->mem_read(*task_, keys_va_, {rk_bytes.data(), rk_bytes.size()}));
  Present80::RoundKeys rk{};
  for (std::size_t r = 0; r < 32; ++r)
    for (std::size_t b = 0; b < 8; ++b)
      rk[r] |= static_cast<std::uint64_t>(rk_bytes[8 * r + b]) << (8 * b);
  return Present80::encrypt_with_sbox(
      plaintext, rk, std::span<const std::uint8_t, 16>(table));
}

std::string ExplFramePresentReport::failure_stage() const {
  if (success) return "none";
  if (!template_found) return "templating";
  if (!steered) return "steering";
  if (!fault_injected) return "fault-injection";
  if (!key_recovered) return "key-recovery";
  return "key-mismatch";
}

ExplFramePresentReport ExplFramePresentAttack::run() {
  ExplFramePresentReport report;
  const SimTime start = system_->now();
  Rng rng(config_.seed);

  kernel::Task& attacker = system_->spawn("attacker", config_.cpu);
  VictimPresentService victim(*system_, config_.cpu, config_.victim);
  victim.start();

  Templater templater(*system_, attacker, config_.templating);
  templater.allocate_buffer();

  const std::uint32_t off = config_.victim.sbox_offset;
  const auto& sbox = Present80::sbox();
  // Usable: inside the 16-byte window, low-nibble bit, polarity compatible
  // with the canonical stored byte (high nibble stored as 0).
  const auto usable = [&](const FlipRecord& f) {
    if (f.offset < off || f.offset >= off + 16) return false;
    if (f.bit >= 4) return false;  // masked out by the implementation
    const std::uint8_t value = sbox[f.offset - off];
    const bool bit_set = ((value >> f.bit) & 1u) != 0;
    return f.to_one ? !bit_set : bit_set;
  };

  const TemplateReport tmpl = templater.scan_until(usable);
  report.rows_scanned = tmpl.rows_scanned;
  report.flips_found = tmpl.flips.size();
  for (const FlipRecord& f : tmpl.flips) {
    if (usable(f)) {
      report.template_found = true;
      report.chosen = f;
      break;
    }
  }
  if (!report.template_found) {
    report.total_time = system_->now() - start;
    return report;
  }
  report.sbox_index = static_cast<std::uint8_t>(report.chosen.offset - off);
  report.fault_mask = static_cast<std::uint8_t>(1u << report.chosen.bit);

  report.planted_pfn = system_->translate(attacker, report.chosen.page_va);
  system_->sys_munmap(attacker, report.chosen.page_va, kPageSize);

  victim.install_tables();
  report.victim_table_pfn =
      system_->translate(victim.task(), victim.table_page_va());
  report.steered = report.victim_table_pfn == report.planted_pfn;

  templater.hammer_aggressors(report.chosen);
  report.fault_injected = victim.table_corrupted();
  if (!report.steered || !report.fault_injected) {
    report.total_time = system_->now() - start;
    return report;
  }

  const std::uint8_t v = sbox[report.sbox_index];
  fault::PresentPfa pfa;
  // One known plaintext/ciphertext pair for the residual search — the
  // attacker can see (or choose) one plaintext in the PFA model's usual
  // known-plaintext variant.
  const std::uint64_t known_pt = rng.next();
  const std::uint64_t known_ct = victim.encrypt(known_pt);
  auto faulty_table = victim.read_table();
  for (auto& b : faulty_table) b &= 0xF;

  for (std::uint32_t i = 0; i < config_.ciphertext_budget; ++i) {
    pfa.add_ciphertext(victim.encrypt(rng.next()));
    if ((i + 1) % 25 == 0 || i + 1 == config_.ciphertext_budget) {
      if (!pfa.recover_k32(v)) continue;
      const auto result = pfa.recover_master_key(
          v, known_pt, known_ct,
          std::span<const std::uint8_t, 16>(faulty_table));
      if (result) {
        report.key_recovered = true;
        report.recovered_key = result->key;
        report.residual_search = result->search_tried;
        report.ciphertexts_used = i + 1;
        break;
      }
    }
  }
  if (!report.key_recovered)
    report.ciphertexts_used = config_.ciphertext_budget;

  report.success =
      report.key_recovered && report.recovered_key == config_.victim.key;
  report.total_time = system_->now() - start;
  return report;
}

}  // namespace explframe::attack
