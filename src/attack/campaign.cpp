#include "attack/campaign.hpp"

#include <algorithm>

#include "kernel/noise.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace explframe::attack {

std::string CampaignReport::failure_stage() const {
  if (success) return "none";
  if (!template_found) return "templating";
  if (!steered) return "steering";
  if (!fault_injected) return "fault-injection";
  if (!key_recovered) return "key-recovery";
  return "key-mismatch";
}

ExplFrameCampaign::ExplFrameCampaign(kernel::System& system,
                                     const CampaignConfig& config)
    : system_(&system), config_(config) {
  EXPLFRAME_CHECK_MSG(config.analysis != fault::AnalysisKind::kDfa,
                      "the campaign injects persistent faults; DFA needs "
                      "transient (correct, faulty) pairs");
  // Fail fast on combinations make_analysis would reject mid-run.
  EXPLFRAME_CHECK_MSG(
      config.analysis != fault::AnalysisKind::kPfaMaxLikelihood ||
          config.cipher == crypto::CipherKind::kAes128,
      "max-likelihood PFA is AES-only");
}

CampaignReport ExplFrameCampaign::run() const {
  const crypto::TableCipher& cipher = crypto::cipher_for(config_.cipher);
  CampaignReport report;
  report.cipher = config_.cipher;
  const SimTime start = system_->now();

  // Independent per-component sub-seeds: trials that differ only in the
  // master seed share no RNG stream, and no component's draw count can
  // perturb another's (the cross-talk the old per-attack Rng had).
  SplitMix64 seeds(config_.seed);
  const std::uint64_t templating_seed = seeds.next();
  const std::uint64_t victim_key_seed = seeds.next();
  const std::uint64_t noise_seed = seeds.next();
  const std::uint64_t plaintext_seed = seeds.next();

  // Derived values stay in locals: run() must not mutate config_, so the
  // object remains re-runnable and config() keeps reporting what the caller
  // actually configured.
  TemplateConfig templating_cfg = config_.templating;
  templating_cfg.seed = templating_seed;
  VictimConfig victim_cfg = config_.victim;
  if (victim_cfg.key.empty())
    victim_cfg.key = crypto::random_key(cipher, victim_key_seed);
  report.victim_key = victim_cfg.key;

  // ---------------------------------------------------------------- setup
  kernel::Task& attacker = system_->spawn("attacker", config_.cpu);

  // The victim service is already running (it is a long-lived daemon); it
  // has not yet allocated the crypto context.
  VictimCipherService victim(*system_, config_.cpu, cipher, victim_cfg);
  victim.start();

  // ------------------------------------------------------------ 1 TEMPLATE
  Templater templater(*system_, attacker, templating_cfg);
  templater.allocate_buffer();

  const std::uint32_t table_off = victim_cfg.sbox_offset;
  const std::size_t table_size = cipher.table_size();
  const auto usable = [&](const FlipRecord& f) {
    if (f.offset < table_off || f.offset >= table_off + table_size)
      return false;
    return cipher.usable_flip(f.offset - table_off, f.bit, f.to_one);
  };

  const TemplateReport tmpl = templater.scan_until(usable);
  report.rows_scanned = tmpl.rows_scanned;
  report.flips_found = tmpl.flips.size();
  for (const FlipRecord& f : tmpl.flips) {
    if (usable(f)) {
      report.template_found = true;
      report.chosen = f;
      break;
    }
  }
  if (!report.template_found) {
    report.total_time = system_->now() - start;
    return report;
  }
  report.table_index =
      static_cast<std::uint16_t>(report.chosen.offset - table_off);
  const fault::FaultModel fault_model =
      fault::fault_model_for(cipher, report.table_index, report.chosen.bit);
  report.fault_mask = fault_model.mask;
  EXPLFRAME_LOG_INFO("template: flip at page offset ",
                     log_hex(report.chosen.offset), " bit ",
                     int(report.chosen.bit), " -> ", cipher.name(),
                     " table index ", report.table_index);

  // -------------------------------------------------------------- 2 PLANT
  report.planted_pfn = system_->translate(attacker, report.chosen.page_va);
  EXPLFRAME_CHECK(report.planted_pfn != mm::kInvalidPfn);
  system_->sys_munmap(attacker, report.chosen.page_va, kPageSize);

  // Optional contention window between plant and victim allocation.
  if (config_.noise_ops > 0) {
    kernel::Task& noisy = system_->spawn("noise", config_.noise_cpu);
    kernel::NoiseWorkload noise(*system_, noisy, {}, noise_seed);
    if (config_.attacker_sleeps)
      attacker.set_state(kernel::TaskState::kSleeping);
    noise.run(config_.noise_ops);
    if (config_.attacker_sleeps)
      attacker.set_state(kernel::TaskState::kRunnable);
  }

  // -------------------------------------------------------------- 3 STEER
  victim.install_tables();
  report.victim_table_pfn =
      system_->translate(victim.task(), victim.table_page_va());
  report.steered = report.victim_table_pfn == report.planted_pfn;

  // ------------------------------------------------------------- 4 HAMMER
  templater.hammer_aggressors(report.chosen);
  report.fault_injected = victim.table_corrupted();
  if (report.fault_injected) {
    const auto table = victim.read_table();
    const auto canonical = cipher.canonical_table();
    std::uint32_t live_diffs = 0;
    for (std::size_t i = 0; i < table.size(); ++i) {
      const std::uint8_t live = cipher.live_bits(i);
      if ((table[i] & live) != (canonical[i] & live)) ++live_diffs;
    }
    report.fault_as_predicted =
        live_diffs == 1 &&
        (table[report.table_index] &
         cipher.live_bits(report.table_index)) == fault_model.v_new;
  }
  if (!report.steered || !report.fault_injected) {
    report.total_time = system_->now() - start;
    return report;
  }

  // ---------------------------------------------- 5 + 6 HARVEST + ANALYSE
  // The engine knows v and v' from the template alone (index + bit) —
  // ExplFrame never observes the victim's memory.
  auto analysis = fault::make_analysis(config_.analysis, cipher, fault_model);
  Rng rng(plaintext_seed);
  const std::size_t block = cipher.block_size();
  std::vector<std::uint8_t> pt(block);
  std::vector<std::uint8_t> ct(block);

  if (analysis->wants_known_pair()) {
    // One known plaintext/ciphertext pair (the PFA model's usual
    // known-plaintext variant) for PRESENT's residual key-schedule search.
    rng.fill_bytes(pt);
    victim.encrypt(pt, ct);
    analysis->set_known_pair(pt, ct);
  }

  std::uint32_t check_interval = config_.analysis_check_interval;
  if (check_interval == 0) check_interval = table_size >= 256 ? 256 : 25;

  if (config_.batched_harvest) {
    // Chunked fill/encrypt/absorb with the same check cadence as the
    // per-call loop below: chunks end exactly at the check_interval
    // multiples (and at the budget), the plaintext RNG stream is identical
    // (block sizes are multiples of fill_bytes' 8-byte words, so one flat
    // fill equals that many per-block fills), and the key checks fire at
    // the same ciphertext counts — so reports are byte-identical.
    const std::uint32_t chunk_cap =
        std::min(check_interval, config_.ciphertext_budget);
    std::vector<std::uint8_t> pts(static_cast<std::size_t>(chunk_cap) * block);
    std::vector<std::uint8_t> cts(static_cast<std::size_t>(chunk_cap) * block);
    std::uint32_t done = 0;
    while (done < config_.ciphertext_budget) {
      const std::uint32_t n =
          std::min(check_interval, config_.ciphertext_budget - done);
      const std::span<std::uint8_t> pt_span(pts.data(), n * block);
      const std::span<std::uint8_t> ct_span(cts.data(), n * block);
      rng.fill_bytes(pt_span);
      victim.encrypt_batch(pt_span, ct_span);
      analysis->add_ciphertext_batch(ct_span, block);
      done += n;
      if (auto key = analysis->recover_key()) {
        report.key_recovered = true;
        report.recovered_key = std::move(*key);
        report.residual_search = analysis->residual_search();
        report.ciphertexts_used = done;
        break;
      }
    }
  } else {
    for (std::uint32_t i = 0; i < config_.ciphertext_budget; ++i) {
      rng.fill_bytes(pt);
      victim.encrypt(pt, ct);
      analysis->add_ciphertext(ct);
      // Periodically test whether the key is already pinned down.
      if ((i + 1) % check_interval == 0 ||
          i + 1 == config_.ciphertext_budget) {
        if (auto key = analysis->recover_key()) {
          report.key_recovered = true;
          report.recovered_key = std::move(*key);
          report.residual_search = analysis->residual_search();
          report.ciphertexts_used = i + 1;
          break;
        }
      }
    }
  }
  if (!report.key_recovered)
    report.ciphertexts_used = config_.ciphertext_budget;

  report.success =
      report.key_recovered && report.recovered_key == report.victim_key;
  report.total_time = system_->now() - start;
  return report;
}

}  // namespace explframe::attack
