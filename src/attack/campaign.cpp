#include "attack/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "kernel/noise.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace explframe::attack {

std::string CampaignReport::failure_stage() const {
  if (success) return "none";
  if (!template_found) return "templating";
  if (!steered) return "steering";
  if (!fault_injected) return "fault-injection";
  if (!key_recovered) return "key-recovery";
  return "key-mismatch";
}

namespace {

/// Both campaign drivers reject the same invalid (cipher, analysis)
/// combinations before any simulated work happens.
void check_analysis_combo(const CampaignConfig& config) {
  EXPLFRAME_CHECK_MSG(config.analysis != fault::AnalysisKind::kDfa,
                      "the campaign injects persistent faults; DFA needs "
                      "transient (correct, faulty) pairs");
  EXPLFRAME_CHECK_MSG(
      config.analysis != fault::AnalysisKind::kPfaMaxLikelihood ||
          config.cipher == crypto::CipherKind::kAes128,
      "max-likelihood PFA is AES-only");
}

}  // namespace

std::string template_key(const kernel::SystemConfig& system,
                         const CampaignConfig& campaign) {
  std::ostringstream out;
  out.precision(17);
  const dram::DeviceParams& d = system.dram;
  out << "mem=" << system.memory_bytes << " cpus=" << system.num_cpus
      << " seed=" << system.seed << " zero=" << system.zero_on_alloc
      << " charge_pt=" << system.charge_page_tables << '\n'
      << "pcp=" << system.pcp.high << ',' << system.pcp.batch << ','
      << system.pcp.lifo << '\n'
      << "timings=" << d.timings.row_hit_ns << ',' << d.timings.row_conflict_ns
      << ',' << d.timings.act_ns << ',' << d.timings.refresh_window_ns << '\n'
      << "weak=" << d.weak_cells.cells_per_mib << ','
      << d.weak_cells.threshold_log_mean << ','
      << d.weak_cells.threshold_log_sigma << ','
      << d.weak_cells.threshold_min << ',' << d.weak_cells.threshold_max << ','
      << d.weak_cells.true_cell_fraction << ','
      << d.weak_cells.single_sided_fraction << '\n'
      << "mapping=" << static_cast<int>(d.mapping)
      << " dps=" << d.data_pattern_sensitivity
      << " spc=" << d.same_pattern_coupling << '\n'
      << "trr=" << d.trr.enabled << ',' << d.trr.threshold << ','
      << d.trr.sampler_entries << " ecc=" << d.ecc.enabled << '\n'
      << "cipher=" << static_cast<int>(campaign.cipher)
      << " cpu=" << campaign.cpu << '\n'
      << "tmpl=" << static_cast<int>(campaign.templating.strategy) << ','
      << campaign.templating.buffer_bytes << ','
      << campaign.templating.hammer_iterations << ','
      << campaign.templating.both_polarities << ','
      << campaign.templating.stop_after << ',' << campaign.templating.max_rows
      << ',' << campaign.templating.timing_probes << '\n'
      << "victim=" << campaign.victim.sbox_offset << ','
      << campaign.victim.data_pages << ',' << campaign.victim.warm_up
      << " key=";
  for (const std::uint8_t b : campaign.victim.key)
    out << static_cast<int>(b) << '.';
  return out.str();
}

TemplatedCampaign::TemplatedCampaign(kernel::System& system,
                                     const CampaignConfig& config,
                                     bool take_snapshot)
    : system_(&system), config_(config) {
  check_analysis_combo(config);
  const crypto::TableCipher& cipher = crypto::cipher_for(config.cipher);
  cipher_ = &cipher;
  partial_.cipher = config.cipher;
  start_ = system.now();
  // determinism: allow(steady-clock) template_wall_seconds diagnostic, never emitted
  const auto wall_start = std::chrono::steady_clock::now();

  // Independent per-component sub-seeds: trials that differ only in the
  // master seed share no RNG stream, and no component's draw count can
  // perturb another's (the cross-talk the old per-attack Rng had).
  SplitMix64 seeds(config.seed);
  const std::uint64_t templating_seed = seeds.next();
  const std::uint64_t victim_key_seed = seeds.next();
  noise_seed_ = seeds.next();
  plaintext_seed_ = seeds.next();

  // Derived values stay in locals/members: config_ must keep reporting
  // what the caller actually configured.
  TemplateConfig templating_cfg = config.templating;
  templating_cfg.seed = templating_seed;
  VictimConfig victim_cfg = config.victim;
  if (victim_cfg.key.empty())
    victim_cfg.key = crypto::random_key(cipher, victim_key_seed);
  partial_.victim_key = victim_cfg.key;

  // ---------------------------------------------------------------- setup
  attacker_ = &system.spawn("attacker", config.cpu);

  // The victim service is already running (it is a long-lived daemon); it
  // has not yet allocated the crypto context.
  victim_ = std::make_unique<VictimCipherService>(system, config.cpu, cipher,
                                                  victim_cfg);
  victim_->start();

  // ------------------------------------------------------------ 1 TEMPLATE
  templater_ = std::make_unique<Templater>(system, *attacker_, templating_cfg);
  templater_->allocate_buffer();

  const std::uint32_t table_off = victim_cfg.sbox_offset;
  const std::size_t table_size = cipher.table_size();
  const auto usable = [&](const FlipRecord& f) {
    if (f.offset < table_off || f.offset >= table_off + table_size)
      return false;
    return cipher.usable_flip(f.offset - table_off, f.bit, f.to_one);
  };

  const TemplateReport tmpl = templater_->scan_until(usable);
  partial_.rows_scanned = tmpl.rows_scanned;
  partial_.flips_found = tmpl.flips.size();
  for (const FlipRecord& f : tmpl.flips) {
    if (usable(f)) {
      partial_.template_found = true;
      partial_.chosen = f;
      break;
    }
  }
  if (partial_.template_found) {
    partial_.table_index =
        static_cast<std::uint16_t>(partial_.chosen.offset - table_off);
    fault_model_ =
        fault::fault_model_for(cipher, partial_.table_index,
                               partial_.chosen.bit);
    partial_.fault_mask = fault_model_.mask;
    EXPLFRAME_LOG_INFO("template: flip at page offset ",
                       log_hex(partial_.chosen.offset), " bit ",
                       int(partial_.chosen.bit), " -> ", cipher.name(),
                       " table index ", partial_.table_index);
  }
  template_time_ = system.now() - start_;
  template_wall_ = std::chrono::duration<double>(
                       // determinism: allow(steady-clock) template_wall_seconds diagnostic, never emitted
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  // A failed templating run has no post-template phases to fork into; the
  // machine is left untouched by run_fork then, so no snapshot is needed.
  if (take_snapshot && partial_.template_found)
    post_template_ = system.snapshot();
}

CampaignReport TemplatedCampaign::run_fork(const CampaignConfig& config) {
  check_analysis_combo(config);
  EXPLFRAME_CHECK_MSG(
      config.seed == config_.seed &&
          template_key(system_->config(), config) ==
              template_key(system_->config(), config_),
      "run_fork config diverges from the templated base on a "
      "template-shaping field");

  // Rewind the machine to the instant templating finished. The first fork
  // after construction is a state-wise no-op (nothing ran in between), so
  // a single-shot campaign pays only the epoch bump — which read paths
  // never observe.
  if (post_template_) system_->restore(*post_template_);

  const crypto::TableCipher& cipher = *cipher_;
  CampaignReport report = partial_;
  report.template_time = template_time_;
  report.template_wall_seconds = template_wall_;
  report.forked_from_template = post_template_ != nullptr;
  if (!report.template_found) {
    report.total_time = system_->now() - start_;
    return report;
  }
  kernel::Task& attacker = *attacker_;
  VictimCipherService& victim = *victim_;

  // -------------------------------------------------------------- 2 PLANT
  report.planted_pfn = system_->translate(attacker, report.chosen.page_va);
  EXPLFRAME_CHECK(report.planted_pfn != mm::kInvalidPfn);
  system_->sys_munmap(attacker, report.chosen.page_va, kPageSize);

  // Optional contention window between plant and victim allocation.
  if (config.noise_ops > 0) {
    kernel::Task& noisy = system_->spawn("noise", config.noise_cpu);
    kernel::NoiseWorkload noise(*system_, noisy, {}, noise_seed_);
    if (config.attacker_sleeps)
      attacker.set_state(kernel::TaskState::kSleeping);
    noise.run(config.noise_ops);
    if (config.attacker_sleeps)
      attacker.set_state(kernel::TaskState::kRunnable);
  }

  // -------------------------------------------------------------- 3 STEER
  victim.install_tables();
  report.victim_table_pfn =
      system_->translate(victim.task(), victim.table_page_va());
  report.steered = report.victim_table_pfn == report.planted_pfn;

  // ------------------------------------------------------------- 4 HAMMER
  templater_->hammer_aggressors(report.chosen);
  report.fault_injected = victim.table_corrupted();
  if (report.fault_injected) {
    const auto table = victim.read_table();
    const auto canonical = cipher.canonical_table();
    std::uint32_t live_diffs = 0;
    for (std::size_t i = 0; i < table.size(); ++i) {
      const std::uint8_t live = cipher.live_bits(i);
      if ((table[i] & live) != (canonical[i] & live)) ++live_diffs;
    }
    report.fault_as_predicted =
        live_diffs == 1 &&
        (table[report.table_index] &
         cipher.live_bits(report.table_index)) == fault_model_.v_new;
  }
  if (!report.steered || !report.fault_injected) {
    report.total_time = system_->now() - start_;
    return report;
  }

  // ---------------------------------------------- 5 + 6 HARVEST + ANALYSE
  // The engine knows v and v' from the template alone (index + bit) —
  // ExplFrame never observes the victim's memory.
  auto analysis = fault::make_analysis(config.analysis, cipher, fault_model_);
  Rng rng(plaintext_seed_);
  const std::size_t block = cipher.block_size();
  const std::size_t table_size = cipher.table_size();
  std::vector<std::uint8_t> pt(block);
  std::vector<std::uint8_t> ct(block);

  if (analysis->wants_known_pair()) {
    // One known plaintext/ciphertext pair (the PFA model's usual
    // known-plaintext variant) for PRESENT's residual key-schedule search.
    rng.fill_bytes(pt);
    victim.encrypt(pt, ct);
    analysis->set_known_pair(pt, ct);
  }

  std::uint32_t check_interval = config.analysis_check_interval;
  if (check_interval == 0) check_interval = table_size >= 256 ? 256 : 25;

  if (config.batched_harvest) {
    // Chunked fill/encrypt/absorb with the same check cadence as the
    // per-call loop below: chunks end exactly at the check_interval
    // multiples (and at the budget), the plaintext RNG stream is identical
    // (block sizes are multiples of fill_bytes' 8-byte words, so one flat
    // fill equals that many per-block fills), and the key checks fire at
    // the same ciphertext counts — so reports are byte-identical.
    const std::uint32_t chunk_cap =
        std::min(check_interval, config.ciphertext_budget);
    std::vector<std::uint8_t> pts(static_cast<std::size_t>(chunk_cap) * block);
    std::vector<std::uint8_t> cts(static_cast<std::size_t>(chunk_cap) * block);
    std::uint32_t done = 0;
    while (done < config.ciphertext_budget) {
      const std::uint32_t n =
          std::min(check_interval, config.ciphertext_budget - done);
      const std::span<std::uint8_t> pt_span(pts.data(), n * block);
      const std::span<std::uint8_t> ct_span(cts.data(), n * block);
      rng.fill_bytes(pt_span);
      victim.encrypt_batch(pt_span, ct_span);
      analysis->add_ciphertext_batch(ct_span, block);
      done += n;
      if (auto key = analysis->recover_key()) {
        report.key_recovered = true;
        report.recovered_key = std::move(*key);
        report.residual_search = analysis->residual_search();
        report.ciphertexts_used = done;
        break;
      }
    }
  } else {
    for (std::uint32_t i = 0; i < config.ciphertext_budget; ++i) {
      rng.fill_bytes(pt);
      victim.encrypt(pt, ct);
      analysis->add_ciphertext(ct);
      // Periodically test whether the key is already pinned down.
      if ((i + 1) % check_interval == 0 ||
          i + 1 == config.ciphertext_budget) {
        if (auto key = analysis->recover_key()) {
          report.key_recovered = true;
          report.recovered_key = std::move(*key);
          report.residual_search = analysis->residual_search();
          report.ciphertexts_used = i + 1;
          break;
        }
      }
    }
  }
  if (!report.key_recovered)
    report.ciphertexts_used = config.ciphertext_budget;

  report.success =
      report.key_recovered && report.recovered_key == report.victim_key;
  report.total_time = system_->now() - start_;
  return report;
}

ExplFrameCampaign::ExplFrameCampaign(kernel::System& system,
                                     const CampaignConfig& config)
    : system_(&system), config_(config) {
  check_analysis_combo(config);
}

CampaignReport ExplFrameCampaign::run() const {
  TemplatedCampaign base(*system_, config_, config_.fork_from_snapshot);
  return base.run_fork(config_);
}

}  // namespace explframe::attack
