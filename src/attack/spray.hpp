// Baseline: naive unprivileged Rowhammer ("spray"). The attacker hammers
// aggressor rows inside her own buffer but has no way to steer the victim
// onto a vulnerable frame (§VI: "the bit flips, if any, will be uncontrolled
// and does not guarantee any meaningful exploitation"). The victim's table
// page ends up wherever the allocator happens to place it, and is corrupted
// only if that frame sits in a row adjacent to the attacker's aggressors
// AND contains a suitably weak cell.
#pragma once

#include <cstdint>

#include "attack/victim.hpp"
#include "kernel/system.hpp"
#include "support/rng.hpp"

namespace explframe::attack {

/// Budgets and target for one spray trial.
struct SprayConfig {
  std::uint64_t buffer_bytes = 16 * kMiB;
  std::uint64_t hammer_iterations = 500'000;
  /// Aggressor row pairs hammered per trial.
  std::uint32_t pairs = 32;
  crypto::CipherKind cipher = crypto::CipherKind::kAes128;
  VictimConfig victim;
  std::uint32_t cpu = 0;
  std::uint64_t seed = 7;
};

/// Outcome of one spray trial.
struct SprayReport {
  bool victim_corrupted = false;  ///< Any bit of the victim's table flipped.
  std::uint64_t flips_anywhere = 0;  ///< Flips induced anywhere in DRAM.
  SimTime total_time = 0;
};

/// Runs one blind-hammering trial (the paper's comparison point for the
/// steered attack).
class SprayBaseline {
 public:
  SprayBaseline(kernel::System& system, const SprayConfig& config)
      : system_(&system), config_(config) {}

  SprayReport run();

 private:
  kernel::System* system_;
  SprayConfig config_;
};

}  // namespace explframe::attack
