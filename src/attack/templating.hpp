// Memory templating (§VI of the paper): the attacker allocates a large
// buffer, hammers it and records which of her own pages contain cells that
// flip — entirely from user level, using only virtual addresses and the
// row-conflict timing channel.
//
// The attacker assumes that pages faulted in sequentially are mostly
// physically contiguous (true on a freshly booted buddy allocator, and in
// this simulation for the same reason), so for a candidate target row she
// hammers the rows one row-size above and below it, verifying the bank
// guess with the timing channel first.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "kernel/system.hpp"
#include "support/rng.hpp"

namespace explframe::attack {

/// One reproducible flip found during templating, in attacker VA space.
struct FlipRecord {
  vm::VirtAddr page_va = 0;     ///< Attacker page containing the flip.
  std::uint32_t offset = 0;     ///< Byte offset within the page.
  std::uint8_t bit = 0;
  bool to_one = false;          ///< Direction observed (0->1 or 1->0).
  vm::VirtAddr aggressor_lo = 0;  ///< The two rows hammered (VAs).
  vm::VirtAddr aggressor_hi = 0;

  bool operator==(const FlipRecord&) const = default;
};

/// How the attacker picks aggressor rows.
enum class TemplateStrategy {
  /// Assume VA contiguity, discover the bank stride by timing, hammer
  /// double-sided around each candidate row. Fast, but requires a linear
  /// bank function (defeated by XOR bank hashing).
  kContiguousDoubleSided,
  /// Pick random same-bank pairs (verified by timing) and rescan the whole
  /// buffer after each hammer session — the original Kim'14 approach. Works
  /// under any bank hash at a (measured) efficiency cost.
  kRandomPairs,
};

/// The attacker's templating budgets and strategy choice.
struct TemplateConfig {
  TemplateStrategy strategy = TemplateStrategy::kContiguousDoubleSided;
  std::uint64_t buffer_bytes = 16 * kMiB;
  /// Hammer iterations per candidate row (each iteration touches both
  /// aggressors once). Must span at least one full refresh window of
  /// activations for the strongest cells to have a chance.
  std::uint64_t hammer_iterations = 500'000;
  /// Test both data polarities (finds anti-cells as well as true cells at
  /// twice the cost).
  bool both_polarities = true;
  /// Stop scanning once this many vulnerable pages are known (0 = scan all).
  std::uint32_t stop_after = 0;
  /// Give up after scanning this many candidate rows / hammering this many
  /// random pairs (0 = one pass over the buffer) — the attacker's budget.
  std::uint64_t max_rows = 0;
  /// Probe count for the timing-channel bank check.
  std::uint32_t timing_probes = 16;
  /// Seed for the random-pair strategy.
  std::uint64_t seed = 1;
};

/// What a scan found, plus the cost accounting the experiments report.
struct TemplateReport {
  std::vector<FlipRecord> flips;
  std::uint64_t rows_scanned = 0;
  std::uint64_t rows_skipped_timing = 0;  ///< Bank check failed (layout gap).
  /// Target row sits at a physical bank edge (one neighbour missing) — the
  /// row was skipped, not hammered (previously miscounted as "no flips").
  std::uint64_t rows_skipped_edge = 0;
  std::uint64_t pages_with_flips = 0;
  SimTime elapsed = 0;
};

/// Discover the same-bank row stride of the machine purely through the
/// row-conflict timing channel: the smallest power-of-two stride at which
/// `base` and `base + stride` keep evicting each other's row buffer. On the
/// default geometry this finds banks * row_bytes (physically consecutive
/// 8 KiB blocks interleave across banks; same-bank neighbouring rows are one
/// full bank sweep apart). Returns 0 if no stride up to `limit` conflicts.
std::uint64_t discover_row_stride(kernel::System& system, kernel::Task& task,
                                  vm::VirtAddr base, std::uint64_t limit);

/// The templating phase: allocates the attack buffer, scans it for
/// hammerable pages and can later re-hammer a recorded flip's aggressors.
class Templater {
 public:
  Templater(kernel::System& system, kernel::Task& attacker,
            const TemplateConfig& config);

  /// Allocate and fault in the attack buffer. Must be called once first.
  void allocate_buffer();

  /// Scan the buffer for hammerable pages.
  TemplateReport scan();

  /// Scan, stopping early as soon as a flip satisfying `good` is found
  /// (e.g. "flip lands inside the S-box window and has usable polarity").
  TemplateReport scan_until(const std::function<bool(const FlipRecord&)>& good);

  vm::VirtAddr buffer_va() const noexcept { return buffer_va_; }
  std::uint64_t buffer_pages() const noexcept { return buffer_pages_; }
  /// VA distance between same-bank neighbouring rows (timing-discovered).
  std::uint64_t row_stride() const noexcept { return row_stride_; }

  /// Re-hammer the aggressors recorded for a flip (used again after the
  /// victim owns the page). Returns the simulated time spent.
  SimTime hammer_aggressors(const FlipRecord& flip) const;

  /// Same, with an explicit iteration count — the time-travel debugger's
  /// bisection probe hammers partial budgets to find the flipping
  /// iteration.
  SimTime hammer_aggressors(const FlipRecord& flip,
                            std::uint64_t iterations) const;

 private:
  /// Hammer the pair and check the candidate row's pages for flips.
  void probe_row(vm::VirtAddr target_row_va, std::uint8_t pattern,
                 TemplateReport& report);

  TemplateReport scan_contiguous(
      const std::function<bool(const FlipRecord&)>& good);
  TemplateReport scan_random_pairs(
      const std::function<bool(const FlipRecord&)>& good);

  kernel::System* system_;
  kernel::Task* attacker_;
  TemplateConfig config_;
  vm::VirtAddr buffer_va_ = 0;
  std::uint64_t buffer_pages_ = 0;
  std::uint32_t row_bytes_ = 0;
  std::uint64_t row_stride_ = 0;
};

}  // namespace explframe::attack
