// Per-CPU page frame cache — Linux's `struct per_cpu_pages` (pcp lists).
//
// This is the mechanism the paper exploits (§V): order-0 frees from a CPU go
// to the *head* of that CPU's cache; the next order-0 allocation on the same
// CPU is served from the head. A frame munmap'ed by the attacker is therefore
// handed, with probability ~1, to the next small allocation on that CPU —
// i.e. to the victim.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "mm/page.hpp"

namespace explframe::mm {

/// Tuning of one per-CPU page frame cache (Linux per_cpu_pages).
struct PcpConfig {
  /// Drain back to the buddy allocator when count exceeds this
  /// (Linux: zone-size dependent; 186 is a typical x86-64 desktop value).
  std::uint32_t high = 186;
  /// Bulk transfer size for refill and drain (Linux default 31).
  std::uint32_t batch = 31;
  /// LIFO (Linux behaviour): allocate hottest = most recently freed first.
  /// Setting this false gives FIFO, used by the EXP-A1 ablation.
  bool lifo = true;
};

/// Activity counters of one per-CPU cache.
struct PcpStats {
  std::uint64_t alloc_hits = 0;    ///< Served from the cache.
  std::uint64_t refills = 0;       ///< Bulk refills from buddy.
  std::uint64_t frees = 0;         ///< Frames pushed into the cache.
  std::uint64_t drains = 0;        ///< Bulk drains back to buddy.
  std::uint64_t drained_pages = 0;
};

/// The cache itself: a deque of pfns. Hot end = front.
class PerCpuPageCache {
 public:
  explicit PerCpuPageCache(const PcpConfig& config) : config_(config) {}

  bool empty() const noexcept { return pages_.empty(); }
  std::uint32_t count() const noexcept {
    return static_cast<std::uint32_t>(pages_.size());
  }
  const PcpConfig& config() const noexcept { return config_; }

  /// Take one frame (hot end unless cold requested). Caller must check
  /// !empty().
  Pfn take(bool cold = false);

  /// Insert one freed frame (hot end unless cold). Returns true if the
  /// cache is now over `high` and the caller must drain.
  bool put(Pfn pfn, bool cold = false);

  /// Pop up to `n` frames from the cold end (for draining back to buddy).
  std::vector<Pfn> pop_cold(std::uint32_t n);

  /// Push frames refilled from the buddy allocator onto the cold end, so a
  /// frame freed by a process stays hotter than bulk refills.
  void refill(const std::vector<Pfn>& pfns);

  /// Non-destructive view, hot end first (experiment ground truth).
  std::vector<Pfn> peek() const;

  PcpStats& stats() noexcept { return stats_; }
  const PcpStats& stats() const noexcept { return stats_; }

  /// Snapshot of the cache's mutable state (config is immutable).
  struct Image {
    std::deque<Pfn> pages;
    PcpStats stats;
  };

  /// Capture the mutable state for a snapshot.
  Image capture_image() const { return {pages_, stats_}; }
  /// Restore a previously captured image exactly.
  void restore_image(const Image& image) {
    pages_ = image.pages;
    stats_ = image.stats;
  }

 private:
  PcpConfig config_;
  std::deque<Pfn> pages_;
  PcpStats stats_;
};

}  // namespace explframe::mm
