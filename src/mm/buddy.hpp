// Binary buddy allocator — the core physical page allocator of one zone
// (Linux's `free_area[]` / `__rmqueue` / `__free_one_page`).
//
// Blocks are 2^order pages, order 0..kMaxOrder-1. Allocation splits the
// smallest sufficient free block; freeing greedily coalesces with the buddy
// block (address XOR (1 << order)) while possible — exactly the mechanism in
// Fig. 1 of the paper.
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <vector>

#include "mm/page.hpp"

namespace explframe::mm {

/// Counters of buddy-allocator activity (split/coalesce totals drive the
/// Fig. 1 reproduction).
struct BuddyStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t splits = 0;     ///< Block split events (Fig. 1 left-to-right).
  std::uint64_t coalesces = 0;  ///< Buddy merge events (Fig. 1 right-to-left).
  std::uint64_t failed = 0;
};

/// One step of the split path taken by an allocation, for the Fig. 1
/// reproduction: "took a block of `from_order`, split down to `to_order`".
struct SplitTraceEntry {
  Pfn block = kInvalidPfn;
  std::uint32_t from_order = 0;
  std::uint32_t to_order = 0;
};

/// Binary buddy allocator over one zone's pfn range: power-of-two block
/// split/coalesce exactly as Linux mm/page_alloc.c models it, with the
/// split-trace hook the templating story reads.
class BuddyAllocator {
 public:
  /// Manages pfns [start_pfn, start_pfn + pages). `pages` need not be a
  /// power of two; the range is tiled greedily with maximal aligned blocks.
  BuddyAllocator(PageFrameDatabase& db, Pfn start_pfn, std::uint64_t pages,
                 std::uint8_t zone_index);

  BuddyAllocator(const BuddyAllocator&) = delete;
  BuddyAllocator& operator=(const BuddyAllocator&) = delete;
  BuddyAllocator(BuddyAllocator&&) = default;

  /// Allocate a 2^order block. Returns kInvalidPfn on failure. If `trace`
  /// is non-null the split path is appended to it.
  Pfn alloc_block(std::uint32_t order,
                  std::vector<SplitTraceEntry>* trace = nullptr);

  /// Free a 2^order block previously returned by alloc_block.
  void free_block(Pfn pfn, std::uint32_t order);

  std::uint64_t free_pages() const noexcept { return free_pages_; }
  std::uint64_t free_blocks(std::uint32_t order) const;
  const BuddyStats& stats() const noexcept { return stats_; }

  Pfn start_pfn() const noexcept { return start_; }
  std::uint64_t managed_pages() const noexcept { return pages_; }

  /// /proc/buddyinfo-style row: free block count per order.
  std::array<std::uint64_t, kMaxOrder> buddyinfo() const;

  /// Exhaustive consistency check (tests): free lists vs page states, no
  /// overlapping blocks, free page accounting. Aborts on violation.
  void verify() const;

  /// Snapshot of the allocator's mutable state (the page-frame states live
  /// in the shared PageFrameDatabase and are captured there).
  struct Image {
    std::array<std::set<Pfn>, kMaxOrder> free_lists;
    std::uint64_t free_pages = 0;
    BuddyStats stats;
  };

  /// Capture the mutable state for a snapshot.
  Image capture_image() const { return {free_lists_, free_pages_, stats_}; }
  /// Restore a previously captured image exactly.
  void restore_image(const Image& image) {
    free_lists_ = image.free_lists;
    free_pages_ = image.free_pages;
    stats_ = image.stats;
  }

 private:
  Pfn buddy_of(Pfn rel, std::uint32_t order) const noexcept {
    return rel ^ (Pfn{1} << order);
  }
  void insert_free(Pfn rel, std::uint32_t order);
  void remove_free(Pfn rel, std::uint32_t order);
  void mark_allocated(Pfn rel, std::uint32_t order);

  PageFrameDatabase* db_;
  Pfn start_;
  std::uint64_t pages_;
  std::uint8_t zone_index_;
  // Zone-relative pfns of free block heads, ordered by address. Linux uses
  // FIFO/LIFO lists; address order is deterministic and makes the split
  // traces stable across runs (the pcp cache, not buddy order, carries the
  // paper's exploit).
  std::array<std::set<Pfn>, kMaxOrder> free_lists_;
  std::uint64_t free_pages_ = 0;
  BuddyStats stats_;
};

}  // namespace explframe::mm
