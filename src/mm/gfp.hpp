// Allocation modifier flags — the subset of Linux GFP semantics the
// simulation distinguishes.
#pragma once

#include <cstdint>

namespace explframe::mm {

/// Zone fallback chain an allocation walks, mirroring Linux GFP zone
/// modifiers.
enum class GfpZonePreference : std::uint8_t {
  kNormal,    ///< GFP_KERNEL: NORMAL -> (DMA32) -> DMA; never HIGHMEM.
  kHighUser,  ///< GFP_HIGHUSER: user pages; on 32-bit starts at HIGHMEM,
              ///< on 64-bit identical to kNormal (no HIGHMEM zone).
  kDma32,     ///< GFP_DMA32: DMA32 -> DMA.
  kDma,       ///< GFP_DMA: DMA only.
};

/// Allocation context flags (zone preference, hot/cold placement,
/// atomicity) — the subset of Linux gfp_t the simulation distinguishes.
struct GfpFlags {
  GfpZonePreference zone = GfpZonePreference::kNormal;
  /// Cold allocation: take from the tail of the per-CPU cache (page-cache
  /// readahead style) instead of the hot head.
  bool cold = false;
  /// Atomic allocation: may dip below the min watermark, never falls back to
  /// reclaim (which the simulation models as failure).
  bool atomic = false;

  static GfpFlags kernel() { return {}; }
  static GfpFlags user() {
    return {GfpZonePreference::kHighUser, false, false};
  }
  static GfpFlags dma() { return {GfpZonePreference::kDma, false, false}; }
  static GfpFlags dma32() { return {GfpZonePreference::kDma32, false, false}; }
};

}  // namespace explframe::mm
