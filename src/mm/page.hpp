// Page frame bookkeeping — the simulated `struct page` array (memmap).
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/units.hpp"

namespace explframe::mm {

/// Page frame number: physical address >> 12.
using Pfn = std::uint64_t;

inline constexpr Pfn kInvalidPfn = ~0ULL;
inline constexpr std::uint32_t kMaxOrder = 11;  ///< Blocks of 1..1024 pages.

/// Where a physical frame currently lives, from the allocator's point of
/// view.
enum class PageState : std::uint8_t {
  kReserved,   ///< Not managed by the allocator (holes, firmware).
  kFreeBuddy,  ///< Head page of a free buddy block.
  kFreeTail,   ///< Non-head page inside a free buddy block.
  kPcp,        ///< Sitting in a per-CPU page frame cache.
  kAllocated,  ///< Handed out to a task or the kernel.
};

const char* to_string(PageState state) noexcept;

/// Per-frame metadata, mirroring the fields of Linux's struct page that the
/// allocator needs: state, buddy order (valid for kFreeBuddy heads), owning
/// zone, and — for experiment ground truth — the id of the task that last
/// touched the frame.
struct PageFrame {
  PageState state = PageState::kReserved;
  std::uint8_t order = 0;     ///< Buddy order if state == kFreeBuddy.
  std::uint8_t zone_index = 0;
  std::int32_t owner_task = -1;  ///< Last allocator client (diagnostics).
  std::uint64_t alloc_seq = 0;   ///< Global sequence number of last alloc.
};

/// Flat array of PageFrame covering all physical memory.
class PageFrameDatabase {
 public:
  explicit PageFrameDatabase(std::uint64_t total_pages)
      : frames_(total_pages) {}

  PageFrame& at(Pfn pfn) {
    EXPLFRAME_CHECK(pfn < frames_.size());
    return frames_[pfn];
  }
  const PageFrame& at(Pfn pfn) const {
    EXPLFRAME_CHECK(pfn < frames_.size());
    return frames_[pfn];
  }

  std::uint64_t size() const noexcept { return frames_.size(); }

  // ---- Snapshot support (whole-array capture/restore) ----
  /// The full frame array, for snapshot capture.
  const std::vector<PageFrame>& all_frames() const noexcept { return frames_; }
  /// Restore a previously captured frame array (same machine, same size).
  void restore_frames(const std::vector<PageFrame>& frames) {
    EXPLFRAME_CHECK(frames.size() == frames_.size());
    frames_ = frames;
  }

 private:
  std::vector<PageFrame> frames_;
};

}  // namespace explframe::mm
