// Memory zones (ZONE_DMA / ZONE_DMA32 / ZONE_NORMAL) and their watermarks —
// the x86-64 layout described in §III of the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mm/buddy.hpp"
#include "mm/pcp.hpp"

namespace explframe::mm {

/// Ordered low to high; zonelists fall back downward through this order.
/// kHighMem exists only on 32-bit machines (paper §III).
enum class ZoneType : std::uint8_t {
  kDma = 0,
  kDma32 = 1,
  kNormal = 2,
  kHighMem = 3,
};

const char* to_string(ZoneType type) noexcept;

/// Allocation-pressure thresholds, in pages (Linux's min/low/high marks).
struct Watermarks {
  std::uint64_t min = 0;
  std::uint64_t low = 0;
  std::uint64_t high = 0;

  static Watermarks for_zone_pages(std::uint64_t pages);
};

/// One zone: a pfn range, its buddy allocator, one page-frame cache per CPU
/// (the paper's "page frame cache is maintained for each CPU inside each
/// zone"), and watermarks.
class Zone {
 public:
  Zone(ZoneType type, std::uint8_t index, PageFrameDatabase& db, Pfn start_pfn,
       std::uint64_t pages, std::uint32_t num_cpus, const PcpConfig& pcp_cfg);

  ZoneType type() const noexcept { return type_; }
  std::uint8_t index() const noexcept { return index_; }
  Pfn start_pfn() const noexcept { return buddy_.start_pfn(); }
  std::uint64_t pages() const noexcept { return buddy_.managed_pages(); }
  Pfn end_pfn() const noexcept { return start_pfn() + pages(); }
  bool contains(Pfn pfn) const noexcept {
    return pfn >= start_pfn() && pfn < end_pfn();
  }

  BuddyAllocator& buddy() noexcept { return buddy_; }
  const BuddyAllocator& buddy() const noexcept { return buddy_; }
  PerCpuPageCache& pcp(std::uint32_t cpu);
  const PerCpuPageCache& pcp(std::uint32_t cpu) const;
  std::uint32_t num_cpus() const noexcept {
    return static_cast<std::uint32_t>(pcp_.size());
  }

  const Watermarks& watermarks() const noexcept { return marks_; }

  /// Pages free in the buddy lists (pcp-cached pages are *not* free from the
  /// zone's perspective, matching NR_FREE_PAGES accounting).
  std::uint64_t free_pages() const noexcept { return buddy_.free_pages(); }

  /// Pages currently parked across all per-CPU caches.
  std::uint64_t pcp_pages() const noexcept;

  std::string name() const;

 private:
  ZoneType type_;
  std::uint8_t index_;
  BuddyAllocator buddy_;
  std::vector<PerCpuPageCache> pcp_;
  Watermarks marks_;
};

}  // namespace explframe::mm
