// The zoned page frame allocator (Fig. 2 of the paper): zonelist fallback
// in front, per-CPU page frame caches for order-0 traffic, buddy allocator
// underneath.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mm/gfp.hpp"
#include "mm/page.hpp"
#include "mm/zone.hpp"

namespace explframe::mm {

/// Architecture flavour: decides the zone carving (paper §III lists both).
enum class Arch : std::uint8_t {
  kX86_64,  ///< DMA [0,16M) | DMA32 [16M,4G) | NORMAL [4G,..)
  kX86_32,  ///< DMA [0,16M) | NORMAL [16M,896M) | HIGHMEM [896M,..)
};

/// Machine-level allocator shape: physical memory size, CPU count,
/// architecture zone carving, per-CPU cache tuning and low-memory
/// reservations.
struct AllocatorConfig {
  std::uint64_t total_bytes = 256 * kMiB;
  std::uint32_t num_cpus = 2;
  Arch arch = Arch::kX86_64;
  PcpConfig pcp;
  /// Pages 0..reserved_pages-1 are kept out of the allocator, modelling
  /// firmware/kernel-image reservations at the bottom of ZONE_DMA.
  std::uint64_t reserved_pages = 256;  // first 1 MiB
};

/// Aggregate /proc/vmstat-style counters over all zones and CPUs.
struct VmStats {
  std::uint64_t pgalloc = 0;          ///< Successful allocations (blocks).
  std::uint64_t pgfree = 0;           ///< Frees (blocks).
  std::uint64_t pcp_alloc_hits = 0;   ///< Order-0 allocs served by a pcp.
  std::uint64_t pcp_refills = 0;      ///< Bulk pcp refills from buddy.
  std::uint64_t buddy_direct = 0;     ///< Allocations served by buddy direct.
  std::uint64_t zone_fallbacks = 0;   ///< Served by a non-preferred zone.
  std::uint64_t watermark_skips = 0;  ///< Zone skipped on watermark.
  std::uint64_t failures = 0;         ///< Complete allocation failures.
};

/// Result of a successful allocation.
struct Allocation {
  Pfn pfn = kInvalidPfn;
  std::uint32_t order = 0;
  std::uint8_t zone_index = 0;
  bool from_pcp = false;
};

/// The zoned physical page allocator: per-zone buddy systems behind
/// per-CPU page frame caches with watermark-gated zone fallback — the
/// Linux allocation path (§III) whose reuse behaviour the attack
/// steers.
class PageAllocator {
 public:
  explicit PageAllocator(const AllocatorConfig& config);

  PageAllocator(const PageAllocator&) = delete;
  PageAllocator& operator=(const PageAllocator&) = delete;

  /// Allocate a 2^order block on behalf of `task` running on `cpu`.
  /// Returns std::nullopt when no zone in the fallback list can satisfy the
  /// request (the simulation's OOM).
  std::optional<Allocation> alloc_pages(std::uint32_t order,
                                        const GfpFlags& gfp, std::uint32_t cpu,
                                        std::int32_t task = -1);

  /// Free a block previously returned by alloc_pages. Order-0 frees enter
  /// the per-CPU page frame cache of `cpu` (the paper's exploited path).
  void free_pages(Pfn pfn, std::uint32_t order, std::uint32_t cpu,
                  bool cold = false);

  // ---- Introspection ----------------------------------------------------
  std::uint32_t num_cpus() const noexcept { return config_.num_cpus; }
  std::uint64_t total_pages() const noexcept { return db_.size(); }
  const PageFrameDatabase& frames() const noexcept { return db_; }
  PageFrameDatabase& frames() noexcept { return db_; }

  std::size_t zone_count() const noexcept { return zones_.size(); }
  Zone& zone(std::size_t i) { return *zones_[i]; }
  const Zone& zone(std::size_t i) const { return *zones_[i]; }
  Zone* zone_of(Pfn pfn);
  Zone* zone_by_type(ZoneType type);

  /// Fallback order for a zone preference (highest zone first), as indices
  /// into zone(i). Mirrors the x86-64 zonelist.
  std::vector<std::size_t> zonelist(GfpZonePreference pref) const;

  const VmStats& stats() const noexcept { return vmstat_; }
  std::uint64_t alloc_sequence() const noexcept { return alloc_seq_; }

  /// Total pages free in buddy lists across zones.
  std::uint64_t global_free_pages() const noexcept;

  /// Drain every per-CPU cache back to the buddy allocator (the
  /// `vm.drop_caches`-adjacent knob; used by tests and ablations).
  void drain_all_pcp();

  /// Consistency check across all zones (tests).
  void verify() const;

  /// Snapshot of the allocator's complete mutable state: the page-frame
  /// database plus, per zone, the buddy free lists and every CPU's page
  /// cache. Zone layout/watermarks are config-derived and immutable.
  struct Image {
    std::vector<PageFrame> frames;
    std::vector<BuddyAllocator::Image> buddies;          ///< Per zone.
    std::vector<std::vector<PerCpuPageCache::Image>> pcps;  ///< [zone][cpu].
    VmStats vmstat;
    std::uint64_t alloc_seq = 0;
  };

  /// Capture the full mutable state for a snapshot.
  Image capture_image() const {
    Image image;
    image.frames = db_.all_frames();
    for (const auto& z : zones_) {
      image.buddies.push_back(z->buddy().capture_image());
      std::vector<PerCpuPageCache::Image> cpus;
      for (std::uint32_t c = 0; c < z->num_cpus(); ++c)
        cpus.push_back(z->pcp(c).capture_image());
      image.pcps.push_back(std::move(cpus));
    }
    image.vmstat = vmstat_;
    image.alloc_seq = alloc_seq_;
    return image;
  }

  /// Restore a previously captured image exactly (same configuration).
  void restore_image(const Image& image) {
    EXPLFRAME_CHECK(image.buddies.size() == zones_.size());
    db_.restore_frames(image.frames);
    for (std::size_t i = 0; i < zones_.size(); ++i) {
      zones_[i]->buddy().restore_image(image.buddies[i]);
      for (std::uint32_t c = 0; c < zones_[i]->num_cpus(); ++c)
        zones_[i]->pcp(c).restore_image(image.pcps[i][c]);
    }
    vmstat_ = image.vmstat;
    alloc_seq_ = image.alloc_seq;
  }

 private:
  Pfn rmqueue_pcp(Zone& zone, std::uint32_t cpu, const GfpFlags& gfp);
  Pfn rmqueue_buddy(Zone& zone, std::uint32_t order);
  bool watermark_ok(const Zone& zone, std::uint32_t order,
                    const GfpFlags& gfp) const;
  void drain_pcp(Zone& zone, std::uint32_t cpu);
  void finish_alloc(Allocation& alloc, std::uint32_t cpu, std::int32_t task);

  AllocatorConfig config_;
  PageFrameDatabase db_;
  std::vector<std::unique_ptr<Zone>> zones_;
  VmStats vmstat_;
  std::uint64_t alloc_seq_ = 0;
};

}  // namespace explframe::mm
