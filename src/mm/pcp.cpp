#include "mm/pcp.hpp"

#include "support/check.hpp"

namespace explframe::mm {

Pfn PerCpuPageCache::take(bool cold) {
  EXPLFRAME_CHECK(!pages_.empty());
  Pfn pfn;
  // Hot allocations always come from the front; in LIFO mode that is where
  // hot frees land (Linux), in FIFO mode it is the oldest entry.
  const bool from_front = !cold;
  if (from_front) {
    pfn = pages_.front();
    pages_.pop_front();
  } else {
    pfn = pages_.back();
    pages_.pop_back();
  }
  ++stats_.alloc_hits;
  return pfn;
}

bool PerCpuPageCache::put(Pfn pfn, bool cold) {
  const bool to_front = config_.lifo ? !cold : cold;
  if (to_front) {
    pages_.push_front(pfn);
  } else {
    pages_.push_back(pfn);
  }
  ++stats_.frees;
  return pages_.size() > config_.high;
}

std::vector<Pfn> PerCpuPageCache::pop_cold(std::uint32_t n) {
  std::vector<Pfn> out;
  out.reserve(n);
  while (n-- != 0 && !pages_.empty()) {
    out.push_back(pages_.back());
    pages_.pop_back();
  }
  if (!out.empty()) {
    ++stats_.drains;
    stats_.drained_pages += out.size();
  }
  return out;
}

void PerCpuPageCache::refill(const std::vector<Pfn>& pfns) {
  for (const Pfn p : pfns) pages_.push_back(p);
  if (!pfns.empty()) ++stats_.refills;
}

std::vector<Pfn> PerCpuPageCache::peek() const {
  return {pages_.begin(), pages_.end()};
}

}  // namespace explframe::mm
