#include "mm/page_allocator.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace explframe::mm {

namespace {
constexpr std::uint64_t kDmaLimitPages = (16 * kMiB) / kPageSize;
constexpr std::uint64_t kDma32LimitPages = (4 * kGiB) / kPageSize;
constexpr std::uint64_t kLowmemLimitPages = (896 * kMiB) / kPageSize;
}  // namespace

PageAllocator::PageAllocator(const AllocatorConfig& config)
    : config_(config), db_(config.total_bytes / kPageSize) {
  EXPLFRAME_CHECK(config.num_cpus > 0);
  EXPLFRAME_CHECK(config.total_bytes % kPageSize == 0);
  const std::uint64_t total = db_.size();
  EXPLFRAME_CHECK_MSG(config.reserved_pages < total,
                      "reservation exceeds memory");

  // Zone carving per §III of the paper. Zones absent on small machines are
  // simply not created, as on real hardware.
  //   x86-64: DMA [0,16M) | DMA32 [16M,4G)   | NORMAL  [4G,..)
  //   x86-32: DMA [0,16M) | NORMAL [16M,896M) | HIGHMEM [896M,..)
  struct Span {
    ZoneType type;
    Pfn start;
    std::uint64_t pages;
  };
  std::vector<Span> spans;
  const Pfn dma_start = config.reserved_pages;
  const Pfn dma_end = std::min(total, kDmaLimitPages);
  if (dma_end > dma_start)
    spans.push_back({ZoneType::kDma, dma_start, dma_end - dma_start});
  if (config.arch == Arch::kX86_64) {
    if (total > kDmaLimitPages) {
      const Pfn d32_end = std::min(total, kDma32LimitPages);
      spans.push_back(
          {ZoneType::kDma32, kDmaLimitPages, d32_end - kDmaLimitPages});
    }
    if (total > kDma32LimitPages)
      spans.push_back(
          {ZoneType::kNormal, kDma32LimitPages, total - kDma32LimitPages});
  } else {
    if (total > kDmaLimitPages) {
      const Pfn low_end = std::min(total, kLowmemLimitPages);
      spans.push_back(
          {ZoneType::kNormal, kDmaLimitPages, low_end - kDmaLimitPages});
    }
    if (total > kLowmemLimitPages)
      spans.push_back({ZoneType::kHighMem, kLowmemLimitPages,
                       total - kLowmemLimitPages});
  }
  EXPLFRAME_CHECK(!spans.empty());

  std::uint8_t index = 0;
  for (const Span& s : spans) {
    zones_.push_back(std::make_unique<Zone>(s.type, index, db_, s.start,
                                            s.pages, config.num_cpus,
                                            config.pcp));
    ++index;
  }
}

Zone* PageAllocator::zone_of(Pfn pfn) {
  for (auto& z : zones_)
    if (z->contains(pfn)) return z.get();
  return nullptr;
}

Zone* PageAllocator::zone_by_type(ZoneType type) {
  for (auto& z : zones_)
    if (z->type() == type) return z.get();
  return nullptr;
}

std::vector<std::size_t> PageAllocator::zonelist(
    GfpZonePreference pref) const {
  // Highest permissible zone first, falling back downward.
  ZoneType highest = ZoneType::kNormal;
  switch (pref) {
    case GfpZonePreference::kNormal:
      highest = ZoneType::kNormal;
      break;
    case GfpZonePreference::kHighUser:
      highest = ZoneType::kHighMem;
      break;
    case GfpZonePreference::kDma32:
      highest = ZoneType::kDma32;
      break;
    case GfpZonePreference::kDma:
      highest = ZoneType::kDma;
      break;
  }
  std::vector<std::size_t> order;
  for (std::size_t i = zones_.size(); i-- > 0;) {
    if (static_cast<std::uint8_t>(zones_[i]->type()) <=
        static_cast<std::uint8_t>(highest)) {
      order.push_back(i);
    }
  }
  return order;
}

bool PageAllocator::watermark_ok(const Zone& zone, std::uint32_t order,
                                 const GfpFlags& gfp) const {
  const std::uint64_t need = Pfn{1} << order;
  std::uint64_t mark = zone.watermarks().min;
  if (gfp.atomic) mark /= 2;  // ALLOC_HARDER
  return zone.free_pages() >= need + mark;
}

Pfn PageAllocator::rmqueue_pcp(Zone& zone, std::uint32_t cpu,
                               const GfpFlags& gfp) {
  PerCpuPageCache& cache = zone.pcp(cpu);
  if (cache.empty()) {
    // Bulk-refill from buddy (rmqueue_bulk): up to `batch` order-0 blocks,
    // never draining the zone below its (alloc-flag adjusted) reserve.
    std::uint64_t reserve = zone.watermarks().min;
    if (gfp.atomic) reserve /= 2;
    std::vector<Pfn> refill;
    refill.reserve(cache.config().batch);
    for (std::uint32_t i = 0; i < cache.config().batch; ++i) {
      if (zone.free_pages() <= reserve) break;
      const Pfn p = zone.buddy().alloc_block(0);
      if (p == kInvalidPfn) break;
      db_.at(p).state = PageState::kPcp;
      refill.push_back(p);
    }
    if (refill.empty()) return kInvalidPfn;
    cache.refill(refill);
    ++vmstat_.pcp_refills;
  }
  return cache.take(gfp.cold);
}

Pfn PageAllocator::rmqueue_buddy(Zone& zone, std::uint32_t order) {
  return zone.buddy().alloc_block(order);
}

void PageAllocator::finish_alloc(Allocation& alloc, std::uint32_t cpu,
                                 std::int32_t task) {
  (void)cpu;
  ++alloc_seq_;
  const Pfn n = Pfn{1} << alloc.order;
  for (Pfn i = 0; i < n; ++i) {
    PageFrame& f = db_.at(alloc.pfn + i);
    f.state = PageState::kAllocated;
    f.owner_task = task;
    f.alloc_seq = alloc_seq_;
  }
  ++vmstat_.pgalloc;
}

std::optional<Allocation> PageAllocator::alloc_pages(std::uint32_t order,
                                                     const GfpFlags& gfp,
                                                     std::uint32_t cpu,
                                                     std::int32_t task) {
  EXPLFRAME_CHECK(order < kMaxOrder);
  EXPLFRAME_CHECK(cpu < config_.num_cpus);
  const auto list = zonelist(gfp.zone);
  bool preferred = true;
  for (const std::size_t zi : list) {
    Zone& zone = *zones_[zi];
    if (zone.pages() == 0) {
      preferred = false;
      continue;
    }
    // Order-0 requests go through the per-CPU page frame cache. The cache
    // itself may hold pages even when the zone is below its watermark.
    if (order == 0) {
      const bool cache_has_pages = !zone.pcp(cpu).empty();
      if (!cache_has_pages && !watermark_ok(zone, order, gfp)) {
        ++vmstat_.watermark_skips;
        preferred = false;
        continue;
      }
      const Pfn pfn = rmqueue_pcp(zone, cpu, gfp);
      if (pfn != kInvalidPfn) {
        Allocation a{pfn, 0, zone.index(), true};
        finish_alloc(a, cpu, task);
        ++vmstat_.pcp_alloc_hits;
        if (!preferred) ++vmstat_.zone_fallbacks;
        return a;
      }
    } else {
      if (!watermark_ok(zone, order, gfp)) {
        ++vmstat_.watermark_skips;
        preferred = false;
        continue;
      }
      const Pfn pfn = rmqueue_buddy(zone, order);
      if (pfn != kInvalidPfn) {
        Allocation a{pfn, order, zone.index(), false};
        finish_alloc(a, cpu, task);
        ++vmstat_.buddy_direct;
        if (!preferred) ++vmstat_.zone_fallbacks;
        return a;
      }
    }
    preferred = false;
  }
  ++vmstat_.failures;
  return std::nullopt;
}

void PageAllocator::drain_pcp(Zone& zone, std::uint32_t cpu) {
  PerCpuPageCache& cache = zone.pcp(cpu);
  for (const Pfn p : cache.pop_cold(cache.config().batch))
    zone.buddy().free_block(p, 0);
}

void PageAllocator::free_pages(Pfn pfn, std::uint32_t order, std::uint32_t cpu,
                               bool cold) {
  EXPLFRAME_CHECK(order < kMaxOrder);
  EXPLFRAME_CHECK(cpu < config_.num_cpus);
  Zone* zone = zone_of(pfn);
  EXPLFRAME_CHECK_MSG(zone != nullptr, "free of unmanaged pfn");
  ++vmstat_.pgfree;
  if (order == 0) {
    PageFrame& f = db_.at(pfn);
    EXPLFRAME_CHECK_MSG(f.state == PageState::kAllocated,
                        "free of non-allocated page");
    f.state = PageState::kPcp;
    f.owner_task = -1;
    if (zone->pcp(cpu).put(pfn, cold)) drain_pcp(*zone, cpu);
    return;
  }
  for (Pfn i = 0; i < (Pfn{1} << order); ++i) db_.at(pfn + i).owner_task = -1;
  zone->buddy().free_block(pfn, order);
}

std::uint64_t PageAllocator::global_free_pages() const noexcept {
  std::uint64_t total = 0;
  for (const auto& z : zones_) total += z->free_pages();
  return total;
}

void PageAllocator::drain_all_pcp() {
  for (auto& z : zones_) {
    for (std::uint32_t c = 0; c < z->num_cpus(); ++c) {
      PerCpuPageCache& cache = z->pcp(c);
      while (!cache.empty()) {
        for (const Pfn p : cache.pop_cold(cache.config().batch))
          z->buddy().free_block(p, 0);
      }
    }
  }
}

void PageAllocator::verify() const {
  for (const auto& z : zones_) {
    z->buddy().verify();
    // Every pcp-resident page must be marked kPcp and belong to the zone.
    for (std::uint32_t c = 0; c < z->num_cpus(); ++c) {
      for (const Pfn p : z->pcp(c).peek()) {
        EXPLFRAME_CHECK(z->contains(p));
        EXPLFRAME_CHECK(db_.at(p).state == PageState::kPcp);
      }
    }
  }
}

}  // namespace explframe::mm
