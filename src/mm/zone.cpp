#include "mm/zone.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace explframe::mm {

const char* to_string(ZoneType type) noexcept {
  switch (type) {
    case ZoneType::kDma:
      return "DMA";
    case ZoneType::kDma32:
      return "DMA32";
    case ZoneType::kNormal:
      return "Normal";
    case ZoneType::kHighMem:
      return "HighMem";
  }
  return "?";
}

Watermarks Watermarks::for_zone_pages(std::uint64_t pages) {
  // Linux derives these from min_free_kbytes ~ 4*sqrt(lowmem_kb); the shape
  // that matters here is min << zone size with low/high at 125%/150%.
  Watermarks w;
  w.min = std::max<std::uint64_t>(8, pages / 256);
  w.low = w.min + w.min / 4;
  w.high = w.min + w.min / 2;
  return w;
}

Zone::Zone(ZoneType type, std::uint8_t index, PageFrameDatabase& db,
           Pfn start_pfn, std::uint64_t pages, std::uint32_t num_cpus,
           const PcpConfig& pcp_cfg)
    : type_(type),
      index_(index),
      buddy_(db, start_pfn, pages, index),
      marks_(Watermarks::for_zone_pages(pages)) {
  EXPLFRAME_CHECK(num_cpus > 0);
  pcp_.reserve(num_cpus);
  for (std::uint32_t c = 0; c < num_cpus; ++c) pcp_.emplace_back(pcp_cfg);
}

PerCpuPageCache& Zone::pcp(std::uint32_t cpu) {
  EXPLFRAME_CHECK(cpu < pcp_.size());
  return pcp_[cpu];
}

const PerCpuPageCache& Zone::pcp(std::uint32_t cpu) const {
  EXPLFRAME_CHECK(cpu < pcp_.size());
  return pcp_[cpu];
}

std::uint64_t Zone::pcp_pages() const noexcept {
  std::uint64_t total = 0;
  for (const auto& cache : pcp_) total += cache.count();
  return total;
}

std::string Zone::name() const { return to_string(type_); }

}  // namespace explframe::mm
