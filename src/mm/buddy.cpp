#include "mm/buddy.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"

namespace explframe::mm {

const char* to_string(PageState state) noexcept {
  switch (state) {
    case PageState::kReserved:
      return "reserved";
    case PageState::kFreeBuddy:
      return "free-buddy";
    case PageState::kFreeTail:
      return "free-tail";
    case PageState::kPcp:
      return "pcp";
    case PageState::kAllocated:
      return "allocated";
  }
  return "?";
}

BuddyAllocator::BuddyAllocator(PageFrameDatabase& db, Pfn start_pfn,
                               std::uint64_t pages, std::uint8_t zone_index)
    : db_(&db), start_(start_pfn), pages_(pages), zone_index_(zone_index) {
  EXPLFRAME_CHECK(start_pfn + pages <= db.size());
  for (Pfn p = start_; p < start_ + pages_; ++p) {
    db_->at(p).zone_index = zone_index_;
    db_->at(p).state = PageState::kAllocated;  // insert_free flips below
  }
  // Tile the range with maximal aligned blocks.
  Pfn rel = 0;
  while (rel < pages_) {
    std::uint32_t order = kMaxOrder - 1;
    while (order > 0 &&
           ((rel & ((Pfn{1} << order) - 1)) != 0 ||
            rel + (Pfn{1} << order) > pages_)) {
      --order;
    }
    insert_free(rel, order);
    rel += Pfn{1} << order;
  }
}

void BuddyAllocator::insert_free(Pfn rel, std::uint32_t order) {
  const auto [it, inserted] = free_lists_[order].insert(rel);
  EXPLFRAME_CHECK(inserted);
  PageFrame& head = db_->at(start_ + rel);
  head.state = PageState::kFreeBuddy;
  head.order = static_cast<std::uint8_t>(order);
  const Pfn n = Pfn{1} << order;
  for (Pfn i = 1; i < n; ++i)
    db_->at(start_ + rel + i).state = PageState::kFreeTail;
  free_pages_ += n;
}

void BuddyAllocator::remove_free(Pfn rel, std::uint32_t order) {
  const auto erased = free_lists_[order].erase(rel);
  EXPLFRAME_CHECK(erased == 1);
  free_pages_ -= Pfn{1} << order;
}

void BuddyAllocator::mark_allocated(Pfn rel, std::uint32_t order) {
  const Pfn n = Pfn{1} << order;
  for (Pfn i = 0; i < n; ++i)
    db_->at(start_ + rel + i).state = PageState::kAllocated;
}

Pfn BuddyAllocator::alloc_block(std::uint32_t order,
                                std::vector<SplitTraceEntry>* trace) {
  EXPLFRAME_CHECK(order < kMaxOrder);
  std::uint32_t o = order;
  while (o < kMaxOrder && free_lists_[o].empty()) ++o;
  if (o == kMaxOrder) {
    ++stats_.failed;
    return kInvalidPfn;
  }
  const Pfn rel = *free_lists_[o].begin();
  remove_free(rel, o);
  if (trace != nullptr && o != order)
    trace->push_back({start_ + rel, o, order});
  // Split down to the requested order, returning the upper buddy of each
  // split to the free list (Fig. 1, left panel).
  while (o > order) {
    --o;
    const Pfn upper = rel + (Pfn{1} << o);
    insert_free(upper, o);
    ++stats_.splits;
  }
  mark_allocated(rel, order);
  ++stats_.allocs;
  return start_ + rel;
}

void BuddyAllocator::free_block(Pfn pfn, std::uint32_t order) {
  EXPLFRAME_CHECK(order < kMaxOrder);
  EXPLFRAME_CHECK(pfn >= start_ && pfn + (Pfn{1} << order) <= start_ + pages_);
  Pfn rel = pfn - start_;
  EXPLFRAME_CHECK_MSG((rel & ((Pfn{1} << order) - 1)) == 0,
                      "free of unaligned block");
  EXPLFRAME_CHECK_MSG(db_->at(pfn).state == PageState::kAllocated ||
                          db_->at(pfn).state == PageState::kPcp,
                      "double free");
  ++stats_.frees;
  // Coalesce with the buddy while it is free and the same order
  // (Fig. 1, right panel).
  std::uint32_t o = order;
  while (o < kMaxOrder - 1) {
    const Pfn buddy = buddy_of(rel, o);
    if (buddy + (Pfn{1} << o) > pages_) break;
    const PageFrame& bf = db_->at(start_ + buddy);
    if (bf.state != PageState::kFreeBuddy || bf.order != o) break;
    remove_free(buddy, o);
    rel = std::min(rel, buddy);
    ++o;
    ++stats_.coalesces;
  }
  insert_free(rel, o);
}

std::uint64_t BuddyAllocator::free_blocks(std::uint32_t order) const {
  EXPLFRAME_CHECK(order < kMaxOrder);
  return free_lists_[order].size();
}

std::array<std::uint64_t, kMaxOrder> BuddyAllocator::buddyinfo() const {
  std::array<std::uint64_t, kMaxOrder> info{};
  for (std::uint32_t o = 0; o < kMaxOrder; ++o)
    info[o] = free_lists_[o].size();
  return info;
}

void BuddyAllocator::verify() const {
  std::uint64_t counted = 0;
  std::vector<bool> covered(pages_, false);
  for (std::uint32_t o = 0; o < kMaxOrder; ++o) {
    for (const Pfn rel : free_lists_[o]) {
      const Pfn n = Pfn{1} << o;
      EXPLFRAME_CHECK_MSG((rel & (n - 1)) == 0, "unaligned free block");
      EXPLFRAME_CHECK_MSG(rel + n <= pages_, "free block out of range");
      const PageFrame& head = db_->at(start_ + rel);
      EXPLFRAME_CHECK(head.state == PageState::kFreeBuddy);
      EXPLFRAME_CHECK(head.order == o);
      for (Pfn i = 0; i < n; ++i) {
        EXPLFRAME_CHECK_MSG(!covered[rel + i], "overlapping free blocks");
        covered[rel + i] = true;
        if (i > 0)
          EXPLFRAME_CHECK(db_->at(start_ + rel + i).state ==
                          PageState::kFreeTail);
      }
      counted += n;
      // A free block must never coexist with a free buddy of equal order
      // (they should have been coalesced).
      if (o < kMaxOrder - 1) {
        const Pfn buddy = buddy_of(rel, o);
        if (buddy + n <= pages_) {
          const PageFrame& bf = db_->at(start_ + buddy);
          EXPLFRAME_CHECK_MSG(
              !(bf.state == PageState::kFreeBuddy && bf.order == o),
              "uncoalesced buddy pair");
        }
      }
    }
  }
  EXPLFRAME_CHECK_MSG(counted == free_pages_, "free page accounting drift");
}

}  // namespace explframe::mm
