// Deterministic random number generation for the whole simulation.
//
// Every stochastic component (weak-cell placement, scheduler jitter, workload
// noise, plaintext generation) pulls from an explframe::Rng that was seeded
// from a single experiment seed, so any run is exactly reproducible from
// (code version, seed).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

namespace explframe {

/// SplitMix64 — used only to expand a user seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high quality, tiny state —
/// well suited to a simulator that draws billions of variates.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection method.
  std::uint64_t uniform(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // 128-bit multiply rejection sampling; bias-free.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform01() - 1.0;
      v = 2.0 * uniform01() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = sqrt_impl(-2.0 * log_impl(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return mean + stddev * u * factor;
  }

  /// Geometric: number of Bernoulli(p) failures before the first success.
  std::uint64_t geometric(double p) noexcept {
    if (p >= 1.0) return 0;
    std::uint64_t n = 0;
    while (!bernoulli(p)) ++n;
    return n;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = uniform(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    shuffle(std::span<T>(items));
  }

  /// Pick a uniformly random element (container must be non-empty).
  template <typename Container>
  auto& pick(Container& c) noexcept {
    return c[uniform(c.size())];
  }

  /// Fill with the generator's byte stream (little-endian bytes of
  /// successive next() words — one whole-word store per 8 bytes on
  /// little-endian targets, which is the batch plaintext generator's hot
  /// loop). Filling N*8 bytes in one call produces the same bytes as N
  /// 8-byte calls, so batched and per-block plaintext generation share one
  /// stream.
  void fill_bytes(std::span<std::uint8_t> out) noexcept {
    std::size_t i = 0;
    while (i + 8 <= out.size()) {
      const std::uint64_t v = next();
      if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(out.data() + i, &v, 8);
      } else {
        for (int b = 0; b < 8; ++b)
          out[i + static_cast<std::size_t>(b)] =
              static_cast<std::uint8_t>(v >> (8 * b));
      }
      i += 8;
    }
    if (i < out.size()) {
      const std::uint64_t v = next();
      for (int b = 0; b < 8 && i < out.size(); ++i, ++b)
        out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }

  /// Derive an independent child generator (for per-component streams).
  Rng fork() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  // Local wrappers keep <cmath> out of this hot header's interface.
  static double sqrt_impl(double x) noexcept;
  static double log_impl(double x) noexcept;

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace explframe
