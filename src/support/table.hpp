// ASCII table printer. Every experiment harness emits its results through
// this so bench output lines up with the tables in EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace explframe {

/// Output formats for Table::render — ASCII for terminals, Markdown for
/// experiment write-ups, CSV for downstream plotting.
enum class TableFormat {
  kAscii,
  kMarkdown,
  kCsv,
};

/// Parse a format name ("ascii" | "markdown" | "md" | "csv"); nullopt on
/// anything else. Benches accept `--format=<name>` and reject unknown names.
std::optional<TableFormat> try_parse_table_format(const std::string& name);

/// Lenient variant: falls back to `fallback` on an unknown name.
TableFormat parse_table_format(const std::string& name,
                               TableFormat fallback = TableFormat::kAscii);

/// Column-aligned result table; render() emits any TableFormat.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  Table(std::initializer_list<std::string> headers);

  /// Append one row; row size must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format heterogeneous cells.
  template <typename... Ts>
  void row(const Ts&... cells) {
    add_row({to_cell(cells)...});
  }

  std::string render(TableFormat format = TableFormat::kAscii) const;
  void print(std::ostream& os, TableFormat format = TableFormat::kAscii) const;

  std::size_t rows() const noexcept { return rows_.size(); }

  // Cell formatting helpers (public so harnesses can reuse them).
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(std::size_t v);
  static std::string to_cell(int v);
  static std::string to_cell(long v);
  static std::string to_cell(unsigned v);
  static std::string to_cell(long long v);
  static std::string to_cell(unsigned long long v);
  static std::string to_cell(bool v);

  /// "p [lo, hi]" rendering for success-rate cells.
  static std::string percent(double p, int precision = 1);

 private:
  std::string render_markdown() const;
  std::string render_csv() const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner used to delimit experiments in bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace explframe
