// Little-endian (de)serialization of 64-bit words — the byte layout used
// wherever a PRESENT block or round-key word crosses the byte-span APIs
// (stored victim pages, TableCipher blocks, Analysis ciphertexts).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace explframe {

inline void u64_to_le_bytes(std::uint64_t v,
                            std::span<std::uint8_t> out) noexcept {
  for (std::size_t b = 0; b < 8 && b < out.size(); ++b)
    out[b] = static_cast<std::uint8_t>(v >> (8 * b));
}

inline std::array<std::uint8_t, 8> u64_to_le_bytes(std::uint64_t v) noexcept {
  std::array<std::uint8_t, 8> out;
  u64_to_le_bytes(v, out);
  return out;
}

inline std::uint64_t le_bytes_to_u64(
    std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t v = 0;
  for (std::size_t b = 0; b < 8 && b < bytes.size(); ++b)
    v |= static_cast<std::uint64_t>(bytes[b]) << (8 * b);
  return v;
}

}  // namespace explframe
