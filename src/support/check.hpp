// Internal invariant checking. These fire in all build types: the library
// models a kernel subsystem, and a silently-corrupt free list would
// invalidate every experiment downstream.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace explframe::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "explframe: invariant violated: %s at %s:%d%s%s\n",
               expr, file, line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace explframe::detail

#define EXPLFRAME_CHECK(expr)                                               \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::explframe::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                       \
  } while (0)

#define EXPLFRAME_CHECK_MSG(expr, msg)                                   \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::explframe::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                    \
  } while (0)
