// Key=value configuration files (".scn" scenario files and friends).
//
// The format is deliberately tiny — one `key = value` pair per line, `#`
// comments, no sections, no quoting — so a scenario is fully described by a
// flat, diffable text file and serialization is trivially canonical:
// re-serializing a parsed file reproduces the emitter's output byte for
// byte (comments and blank lines are not preserved; key order is).
//
//   # ExplFrame scenario
//   cipher = aes128
//   trials = 8
//
// Parsing is strict: a line that is not blank, a comment or a well-formed
// pair is an error, as is a duplicate key. Schema-level validation (unknown
// keys, value ranges) is the caller's job; KvReader tracks which keys a
// reader consumed so "unknown key" errors come for free.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace explframe {

/// Strict decimal uint64 parse: digits only — no sign, blanks or trailing
/// junk — and overflow-checked. Nullopt on anything else. The shared
/// value parser for kv-derived text (axis ranges, checkpoint records).
std::optional<std::uint64_t> parse_u64(const std::string& text) noexcept;

/// Copy of `s` with leading/trailing whitespace removed (the same
/// trimming KvFile applies to keys and values).
std::string trim_copy(const std::string& s);

/// An ordered key=value document. Keys are unique ([A-Za-z0-9_.-]+);
/// values are arbitrary single-line strings (leading/trailing blanks
/// trimmed). Insertion order is preserved and is the serialization order.
class KvFile {
 public:
  /// Parse `text`. On failure returns nullopt and, if `error` is non-null,
  /// fills it with a "line N: ..." message. Failures: a non-comment line
  /// without '=', an empty or ill-formed key, a duplicate key.
  static std::optional<KvFile> parse(const std::string& text,
                                     std::string* error = nullptr);

  /// Canonical text form: `key = value\n` per entry, insertion order.
  std::string serialize() const;

  /// Insert `key` (or overwrite its value, keeping its position). The
  /// value must be single-line (CHECK-enforced) and is stored trimmed, so
  /// every stored value is closed under serialize -> parse.
  void set(const std::string& key, std::string value);
  /// The value of `key`, or nullptr if absent.
  const std::string* find(const std::string& key) const noexcept;
  bool contains(const std::string& key) const noexcept {
    return find(key) != nullptr;
  }

  const std::vector<std::pair<std::string, std::string>>& entries()
      const noexcept {
    return entries_;
  }
  std::size_t size() const noexcept { return entries_.size(); }

  /// True iff `key` is non-empty and made of [A-Za-z0-9_.-] only.
  static bool valid_key(const std::string& key) noexcept;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Schema-aware read cursor over a KvFile: typed getters that record the
/// first conversion error and mark keys as consumed, so after reading a
/// whole schema the caller can reject leftovers as unknown keys.
///
///   KvReader r(kv);
///   cfg.trials = r.get_u32("trials", cfg.trials);
///   if (auto err = r.finish()) ...  // malformed value or unknown key
class KvReader {
 public:
  explicit KvReader(const KvFile& file) : file_(&file) {
    consumed_.resize(file.size(), false);
  }

  /// Each getter returns the parsed value, or `fallback` when the key is
  /// absent or malformed (the first malformed value is recorded as the
  /// error). Integer getters reject trailing junk, signs and overflow;
  /// get_bool accepts true/false/yes/no/1/0.
  std::string get_string(const std::string& key, const std::string& fallback);
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback);
  std::uint32_t get_u32(const std::string& key, std::uint32_t fallback);
  double get_double(const std::string& key, double fallback);
  bool get_bool(const std::string& key, bool fallback);

  /// Record a schema-level error against `key` (e.g. an enum name the
  /// caller failed to map). Keeps the first error only.
  void fail(const std::string& key, const std::string& what);

  /// Nullopt if every key was consumed and every value parsed; otherwise
  /// the first error ("key 'x': bad unsigned integer 'y'" or
  /// "unknown key 'z'").
  std::optional<std::string> finish() const;

 private:
  const std::string* take(const std::string& key);

  const KvFile* file_;
  std::vector<bool> consumed_;
  std::optional<std::string> error_;
};

}  // namespace explframe
