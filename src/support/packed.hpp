// Bit-packed SoA building blocks for giant sparse tables.
//
// The DRAM model keeps per-row bookkeeping (weak cells, disturbance
// counters, live-flip records) whose natural keys are flat row numbers —
// multi-GB geometries have hundreds of millions of rows, of which only a
// sparse scattering carries state. The seed kept these tables as
// unordered_maps of heap vectors: ~100 bytes of node/bucket/allocator
// overhead per entry, plus a 1-byte-per-row presence array, capped the
// simulable geometry long before row payloads did.
//
// This header provides the two primitives the packed representation is
// built from (the CXCollections StrideVector idiom, generalised):
//
//   PackedVector  a vector of unsigned integers stored in exactly `bits`
//                 bits each — one heap array, no per-element overhead.
//                 Out-of-range values are rejected (CHECK), never
//                 silently truncated.
//
//   RowIndex      a two-level sparse directory mapping a static sorted
//                 key set (flat rows) to dense ordinals [0, size): a
//                 per-block offset table plus, per occupied block, a
//                 packed sorted key list and a coarse presence bitmap.
//                 Lookup is O(1) + a short binary search; memory is
//                 ~4 bytes per 512-row block plus ~2 bytes per present
//                 key — no dense per-row floor.
//
// Both containers are deterministic value types: equality compares
// logical contents, and their bytes never depend on insertion history.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace explframe {

/// Vector of unsigned integers, each stored in exactly `bits` bits
/// (1..64) within one contiguous word array. set/push_back CHECK that the
/// value fits the field width — saturation is a caller bug, not a silent
/// truncation. insert/erase shift the tail element-wise (O(n)); intended
/// for small dynamic tables and large build-once arenas.
class PackedVector {
 public:
  /// An empty 1-bit vector (for default-constructed members; assign a
  /// properly sized instance before use).
  PackedVector() = default;
  /// An empty vector with the given field width (CHECK: 1..64).
  explicit PackedVector(unsigned bits);

  /// Field width in bits.
  unsigned bits() const noexcept { return bits_; }
  /// Largest storable value (all-ones of the field width).
  std::uint64_t max_value() const noexcept { return mask_; }
  /// Element count.
  std::size_t size() const noexcept { return size_; }
  /// True when no elements are stored.
  bool empty() const noexcept { return size_ == 0; }

  /// Element at `i` (CHECK: in range).
  std::uint64_t get(std::size_t i) const;
  /// Overwrite element `i` (CHECK: in range, value fits `bits()`).
  void set(std::size_t i, std::uint64_t value);
  /// Append (CHECK: value fits `bits()`).
  void push_back(std::uint64_t value);
  /// Insert before `pos` (CHECK: pos <= size, value fits), shifting the
  /// tail one slot right.
  void insert(std::size_t pos, std::uint64_t value);
  /// Remove `count` elements starting at `pos` (CHECK: range valid),
  /// shifting the tail left.
  void erase(std::size_t pos, std::size_t count = 1);
  /// Drop all elements (capacity retained).
  void clear() noexcept { size_ = 0; }
  /// Grow (zero-filled) or shrink to `count` elements.
  void resize(std::size_t count);
  /// Pre-allocate backing words for `count` elements.
  void reserve(std::size_t count);

  /// Heap bytes of the backing word array (capacity, not size).
  std::uint64_t heap_bytes() const noexcept {
    return words_.capacity() * sizeof(std::uint64_t);
  }

  /// Logical equality: same width, size and element values.
  friend bool operator==(const PackedVector& a, const PackedVector& b);

 private:
  static std::size_t words_for(std::size_t count, unsigned bits) noexcept {
    return (count * bits + 63) / 64;
  }

  unsigned bits_ = 1;
  std::uint64_t mask_ = 1;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Two-level sparse directory over a static, sorted set of uint64 keys in
/// [0, key_limit): level 1 is a dense per-block slot table (one u32 per
/// 2^kBlockBits keys), level 2 stores each occupied block's sorted
/// key-within-block list bit-packed plus a coarse 64-bit presence bitmap
/// for O(1) miss rejection. Maps each present key to its dense ordinal in
/// sorted key order; `key_at` inverts. Built once from the full key set
/// (the weak-cell population is immutable after sampling).
class RowIndex {
 public:
  /// Keys per level-2 block (512: bitmap fits one u64 at 8 keys/bit).
  static constexpr unsigned kBlockBits = 9;
  /// Returned by find() for absent keys.
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  /// An empty directory over an empty key universe.
  RowIndex() = default;
  /// Build from strictly increasing keys, all < key_limit (CHECKed).
  RowIndex(std::span<const std::uint64_t> sorted_keys,
           std::uint64_t key_limit);

  /// Number of present keys.
  std::size_t size() const noexcept { return keys_; }
  /// Exclusive upper bound of the key universe.
  std::uint64_t key_limit() const noexcept { return key_limit_; }

  /// True when `key` is present (keys outside the universe are absent).
  bool contains(std::uint64_t key) const noexcept;
  /// Dense ordinal of `key` in sorted order, or kNpos if absent.
  std::size_t find(std::uint64_t key) const noexcept;
  /// Ordinal of the first present key >= `key` (size() if none).
  std::size_t lower_bound(std::uint64_t key) const noexcept;
  /// Dense ordinal of a present key (CHECK: present).
  std::size_t ordinal(std::uint64_t key) const;
  /// The `ordinal`-th smallest present key (CHECK: ordinal < size()).
  std::uint64_t key_at(std::size_t ordinal) const;

  /// Heap bytes across both levels (capacities).
  std::uint64_t heap_bytes() const noexcept;

  /// Logical equality: same universe and key set.
  friend bool operator==(const RowIndex& a, const RowIndex& b);

 private:
  static constexpr std::uint32_t kAbsentBlock = 0xFFFFFFFFu;
  static constexpr std::uint64_t kBlockSize = 1ull << kBlockBits;

  std::uint64_t key_limit_ = 0;
  std::size_t keys_ = 0;
  std::vector<std::uint32_t> dir_;       ///< block -> slot | kAbsentBlock
  std::vector<std::uint32_t> block_id_;  ///< slot -> block number
  std::vector<std::uint32_t> start_;     ///< slot -> first ordinal (+ end)
  std::vector<std::uint64_t> coarse_;    ///< slot -> 8-keys-per-bit bitmap
  PackedVector in_block_;                ///< ordinal -> key within block
};

}  // namespace explframe
