#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace explframe {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  EXPLFRAME_CHECK(!headers_.empty());
}

Table::Table(std::initializer_list<std::string> headers)
    : headers_(headers) {
  EXPLFRAME_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  EXPLFRAME_CHECK_MSG(cells.size() == headers_.size(),
                      "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_cell(double v) {
  std::ostringstream os;
  if (v != 0.0 && (std::fabs(v) < 1e-3 || std::fabs(v) >= 1e7)) {
    os << std::scientific << std::setprecision(3) << v;
  } else {
    os << std::fixed << std::setprecision(3) << v;
    // Trim trailing zeros but keep at least one decimal digit.
    std::string s = os.str();
    const auto dot = s.find('.');
    const auto last = s.find_last_not_of('0');
    s.erase(std::max(last + 1, dot + 2));
    return s;
  }
  return os.str();
}

std::string Table::to_cell(std::size_t v) { return std::to_string(v); }
std::string Table::to_cell(int v) { return std::to_string(v); }
std::string Table::to_cell(long v) { return std::to_string(v); }
std::string Table::to_cell(unsigned v) { return std::to_string(v); }
std::string Table::to_cell(long long v) { return std::to_string(v); }
std::string Table::to_cell(unsigned long long v) { return std::to_string(v); }
std::string Table::to_cell(bool v) { return v ? "yes" : "no"; }

std::string Table::percent(double p, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << p * 100.0 << "%";
  return os.str();
}

std::optional<TableFormat> try_parse_table_format(const std::string& name) {
  if (name == "ascii") return TableFormat::kAscii;
  if (name == "markdown" || name == "md") return TableFormat::kMarkdown;
  if (name == "csv") return TableFormat::kCsv;
  return std::nullopt;
}

TableFormat parse_table_format(const std::string& name, TableFormat fallback) {
  return try_parse_table_format(name).value_or(fallback);
}

namespace {

/// CSV quoting per RFC 4180: quote when the cell contains a comma, a quote
/// or a newline; embedded quotes are doubled.
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Markdown cells cannot contain the column separator.
std::string md_escape(const std::string& cell) {
  std::string out;
  for (const char c : cell) {
    if (c == '|') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string Table::render_markdown() const {
  std::ostringstream os;
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (const auto& c : cells) os << ' ' << md_escape(c) << " |";
    os << '\n';
  };
  line(headers_);
  os << '|';
  for (std::size_t i = 0; i < headers_.size(); ++i) os << " --- |";
  os << '\n';
  for (const auto& r : rows_) line(r);
  return os.str();
}

std::string Table::render_csv() const {
  std::ostringstream os;
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ',';
      os << csv_escape(cells[i]);
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& r : rows_) line(r);
  return os.str();
}

std::string Table::render(TableFormat format) const {
  switch (format) {
    case TableFormat::kMarkdown:
      return render_markdown();
    case TableFormat::kCsv:
      return render_csv();
    case TableFormat::kAscii:
      break;
  }
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& r : rows_)
    for (std::size_t i = 0; i < r.size(); ++i)
      widths[i] = std::max(widths[i], r[i].size());

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << ' ' << std::setw(static_cast<int>(widths[i])) << std::left
         << cells[i] << " |";
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& r : rows_) line(r);
  rule();
  return os.str();
}

void Table::print(std::ostream& os, TableFormat format) const {
  os << render(format);
}

void print_banner(std::ostream& os, const std::string& title) {
  const std::string bar(title.size() + 8, '=');
  os << '\n' << bar << '\n' << "==  " << title << "  ==\n" << bar << '\n';
}

}  // namespace explframe
