#include "support/config.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "support/check.hpp"

namespace explframe {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::optional<std::uint64_t> parse_u64(const std::string& text) noexcept {
  if (text.empty() || text.size() > 20) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

std::string trim_copy(const std::string& s) { return trim(s); }

bool KvFile::valid_key(const std::string& key) noexcept {
  if (key.empty()) return false;
  for (const char c : key) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::optional<KvFile> KvFile::parse(const std::string& text,
                                    std::string* error) {
  const auto fail = [&](std::size_t line, const std::string& what) {
    if (error) *error = "line " + std::to_string(line) + ": " + what;
    return std::nullopt;
  };

  KvFile out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;

    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos)
      return fail(line_no, "expected 'key = value', got '" + stripped + "'");
    const std::string key = trim(stripped.substr(0, eq));
    if (!valid_key(key))
      return fail(line_no, "bad key '" + key + "'");
    if (out.contains(key))
      return fail(line_no, "duplicate key '" + key + "'");
    out.entries_.emplace_back(key, trim(stripped.substr(eq + 1)));
  }
  return out;
}

std::string KvFile::serialize() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  return out;
}

void KvFile::set(const std::string& key, std::string value) {
  EXPLFRAME_CHECK_MSG(valid_key(key), "KvFile::set: invalid key");
  // Keep values closed under serialize -> parse: an embedded newline would
  // corrupt the file and surrounding blanks would be trimmed on re-parse,
  // so a multi-line value is a programming error and blanks are
  // canonicalized here.
  EXPLFRAME_CHECK_MSG(value.find('\n') == std::string::npos &&
                          value.find('\r') == std::string::npos,
                      "KvFile::set: value must be single-line");
  value = trim(value);
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(key, std::move(value));
}

const std::string* KvFile::find(const std::string& key) const noexcept {
  for (const auto& [k, v] : entries_)
    if (k == key) return &v;
  return nullptr;
}

// ---- KvReader --------------------------------------------------------------

const std::string* KvReader::take(const std::string& key) {
  const auto& entries = file_->entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].first == key) {
      consumed_[i] = true;
      return &entries[i].second;
    }
  }
  return nullptr;
}

void KvReader::fail(const std::string& key, const std::string& what) {
  if (!error_) error_ = "key '" + key + "': " + what;
}

std::string KvReader::get_string(const std::string& key,
                                 const std::string& fallback) {
  const std::string* v = take(key);
  return v ? *v : fallback;
}

std::uint64_t KvReader::get_u64(const std::string& key,
                                std::uint64_t fallback) {
  const std::string* v = take(key);
  if (!v) return fallback;
  // strtoull accepts leading sign/whitespace; the format does not.
  if (v->empty() || !std::isdigit(static_cast<unsigned char>((*v)[0]))) {
    fail(key, "bad unsigned integer '" + *v + "'");
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
  if (errno == ERANGE || end != v->c_str() + v->size()) {
    fail(key, "bad unsigned integer '" + *v + "'");
    return fallback;
  }
  return parsed;
}

std::uint32_t KvReader::get_u32(const std::string& key,
                                std::uint32_t fallback) {
  const std::uint64_t wide = get_u64(key, fallback);
  if (wide > std::numeric_limits<std::uint32_t>::max()) {
    fail(key, "value " + std::to_string(wide) + " exceeds 32 bits");
    return fallback;
  }
  return static_cast<std::uint32_t>(wide);
}

double KvReader::get_double(const std::string& key, double fallback) {
  const std::string* v = take(key);
  if (!v) return fallback;
  if (v->empty()) {
    fail(key, "bad number ''");
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (errno == ERANGE || end != v->c_str() + v->size()) {
    fail(key, "bad number '" + *v + "'");
    return fallback;
  }
  return parsed;
}

bool KvReader::get_bool(const std::string& key, bool fallback) {
  const std::string* v = take(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "yes" || *v == "1") return true;
  if (*v == "false" || *v == "no" || *v == "0") return false;
  fail(key, "bad boolean '" + *v + "' (want true/false)");
  return fallback;
}

std::optional<std::string> KvReader::finish() const {
  if (error_) return error_;
  const auto& entries = file_->entries();
  for (std::size_t i = 0; i < entries.size(); ++i)
    if (!consumed_[i]) return "unknown key '" + entries[i].first + "'";
  return std::nullopt;
}

}  // namespace explframe
