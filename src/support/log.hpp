// Minimal leveled logger. Default level is Warn so library internals stay
// quiet under tests/benches; examples raise it to Info/Debug to narrate the
// attack timeline.
#pragma once

#include <sstream>
#include <string>

namespace explframe {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Ts>
void log_fmt(LogLevel level, const Ts&... parts) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << parts);
  log_message(level, os.str());
}
}  // namespace detail

}  // namespace explframe

#define EXPLFRAME_LOG_DEBUG(...) \
  ::explframe::detail::log_fmt(::explframe::LogLevel::kDebug, __VA_ARGS__)
#define EXPLFRAME_LOG_INFO(...) \
  ::explframe::detail::log_fmt(::explframe::LogLevel::kInfo, __VA_ARGS__)
#define EXPLFRAME_LOG_WARN(...) \
  ::explframe::detail::log_fmt(::explframe::LogLevel::kWarn, __VA_ARGS__)
#define EXPLFRAME_LOG_ERROR(...) \
  ::explframe::detail::log_fmt(::explframe::LogLevel::kError, __VA_ARGS__)
