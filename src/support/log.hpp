// Minimal leveled logger. Default level is Warn so library internals stay
// quiet under tests/benches; examples raise it to Info/Debug to narrate the
// attack timeline.
//
// Messages are formatted by direct string append (std::to_chars for
// numbers) instead of a std::ostringstream — no locale machinery, no
// stream-state flags, and nothing at all happens below the active level
// beyond the level compare. Hex output goes through log_hex(v) rather than
// a std::hex manipulator.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>

namespace explframe {

/// Severity levels, ordered; kOff disables every message.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// The active level (process-global; messages below it cost one compare).
LogLevel log_level() noexcept;
/// Set the active level (examples raise it to narrate the attack).
void set_log_level(LogLevel level) noexcept;
/// Emit one already-formatted message at `level` (used by the macros).
void log_message(LogLevel level, const std::string& msg);

namespace detail {

/// A value to be rendered in lowercase hex (no leading "0x"; callers write
/// the prefix literal so the digits stay aligned with the old output).
struct LogHex {
  std::uint64_t value;
};

inline void log_append(std::string& out, std::string_view v) { out += v; }
inline void log_append(std::string& out, const char* v) { out += v; }
inline void log_append(std::string& out, char v) { out += v; }
inline void log_append(std::string& out, bool v) {
  out += v ? "true" : "false";
}

inline void log_append(std::string& out, LogHex v) {
  char buf[16];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v.value, 16);
  out.append(buf, res.ptr);
}

template <typename T>
  requires std::is_integral_v<T>
void log_append(std::string& out, T v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

template <typename T>
  requires std::is_floating_point_v<T>
void log_append(std::string& out, T v) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(v));
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

template <typename... Ts>
void log_fmt(LogLevel level, const Ts&... parts) {
  if (level < log_level()) return;
  std::string msg;
  msg.reserve(96);
  (log_append(msg, parts), ...);
  log_message(level, msg);
}

}  // namespace detail

/// Wrap an integer so the log macros render it as lowercase hex digits:
/// EXPLFRAME_LOG_INFO("addr 0x", log_hex(va)).
template <typename T>
  requires std::is_integral_v<T>
detail::LogHex log_hex(T v) noexcept {
  return detail::LogHex{static_cast<std::uint64_t>(v)};
}

}  // namespace explframe

#define EXPLFRAME_LOG_DEBUG(...) \
  ::explframe::detail::log_fmt(::explframe::LogLevel::kDebug, __VA_ARGS__)
#define EXPLFRAME_LOG_INFO(...) \
  ::explframe::detail::log_fmt(::explframe::LogLevel::kInfo, __VA_ARGS__)
#define EXPLFRAME_LOG_WARN(...) \
  ::explframe::detail::log_fmt(::explframe::LogLevel::kWarn, __VA_ARGS__)
#define EXPLFRAME_LOG_ERROR(...) \
  ::explframe::detail::log_fmt(::explframe::LogLevel::kError, __VA_ARGS__)
