#include "support/rng.hpp"

#include <cmath>

namespace explframe {

double Rng::sqrt_impl(double x) noexcept { return std::sqrt(x); }
double Rng::log_impl(double x) noexcept { return std::log(x); }

}  // namespace explframe
