#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace explframe {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

void Samples::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = xs_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::mean() const noexcept {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::stddev() const noexcept {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double Samples::min() const noexcept {
  return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const noexcept {
  return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

double Samples::percentile(double p) const {
  EXPLFRAME_CHECK(p >= 0.0 && p <= 100.0);
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  EXPLFRAME_CHECK(hi > lo && bins > 0);
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return bin_lo(i + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream os;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") ";
    const auto bar = counts_[i] * width / peak;
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

ProportionCi wilson_interval(std::size_t successes, std::size_t trials,
                             double z) noexcept {
  if (trials == 0) return {0.0, 0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {p, std::max(0.0, center - half), std::min(1.0, center + half)};
}

}  // namespace explframe
