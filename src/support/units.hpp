// Size and time unit helpers shared across the simulation.
#pragma once

#include <cstddef>
#include <cstdint>

namespace explframe {

inline constexpr std::size_t kKiB = 1024;
inline constexpr std::size_t kMiB = 1024 * kKiB;
inline constexpr std::size_t kGiB = 1024 * kMiB;

/// Page size used throughout the simulated machine (x86-64 base page).
inline constexpr std::size_t kPageSize = 4096;
inline constexpr std::size_t kPageShift = 12;

/// Simulated time is kept in nanoseconds.
using SimTime = std::uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Bytes -> number of base pages, rounding up.
constexpr std::size_t bytes_to_pages(std::size_t bytes) noexcept {
  return (bytes + kPageSize - 1) / kPageSize;
}

}  // namespace explframe
