// Small statistics toolkit used by the experiment harnesses: running
// moments, percentiles, histograms and binomial confidence intervals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace explframe {

/// Streaming mean / variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< Sample variance (n-1 denominator).
  double stddev() const noexcept;
  double stderr_mean() const noexcept;  ///< Standard error of the mean.
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects samples; computes order statistics on demand.
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_valid_ = false;
  }
  std::size_t count() const noexcept { return xs_.size(); }
  bool empty() const noexcept { return xs_.empty(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Linear-interpolated percentile, p in [0,100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& values() const noexcept { return xs_; }

 private:
  std::vector<double> xs_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  void ensure_sorted() const;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;

  /// Render as a compact ASCII bar chart (for experiment logs).
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Wilson score interval for a binomial proportion — the right interval for
/// attack-success-rate experiments with small trial counts.
struct ProportionCi {
  double p;   ///< Point estimate successes/trials.
  double lo;  ///< Lower 95% bound.
  double hi;  ///< Upper 95% bound.
};
ProportionCi wilson_interval(std::size_t successes, std::size_t trials,
                             double z = 1.96) noexcept;

}  // namespace explframe
