#include "support/packed.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace explframe {

// ---- PackedVector ----------------------------------------------------------

PackedVector::PackedVector(unsigned bits) : bits_(bits) {
  EXPLFRAME_CHECK_MSG(bits >= 1 && bits <= 64,
                      "PackedVector field width must be 1..64 bits");
  mask_ = bits == 64 ? ~0ull : (1ull << bits) - 1;
}

std::uint64_t PackedVector::get(std::size_t i) const {
  EXPLFRAME_CHECK(i < size_);
  const std::size_t off = i * bits_;
  const std::size_t word = off / 64;
  const unsigned shift = static_cast<unsigned>(off % 64);
  std::uint64_t value = words_[word] >> shift;
  if (shift + bits_ > 64) value |= words_[word + 1] << (64 - shift);
  return value & mask_;
}

void PackedVector::set(std::size_t i, std::uint64_t value) {
  EXPLFRAME_CHECK(i < size_);
  EXPLFRAME_CHECK_MSG(value <= mask_,
                      "PackedVector: value exceeds field width");
  const std::size_t off = i * bits_;
  const std::size_t word = off / 64;
  const unsigned shift = static_cast<unsigned>(off % 64);
  words_[word] = (words_[word] & ~(mask_ << shift)) | (value << shift);
  if (shift + bits_ > 64) {
    const unsigned spill = static_cast<unsigned>(shift + bits_ - 64);
    const std::uint64_t high_mask = (1ull << spill) - 1;
    words_[word + 1] =
        (words_[word + 1] & ~high_mask) | (value >> (64 - shift));
  }
}

void PackedVector::push_back(std::uint64_t value) {
  EXPLFRAME_CHECK_MSG(value <= mask_,
                      "PackedVector: value exceeds field width");
  ++size_;
  if (words_for(size_, bits_) > words_.size())
    words_.resize(words_for(size_, bits_), 0);
  set(size_ - 1, value);
}

void PackedVector::insert(std::size_t pos, std::uint64_t value) {
  EXPLFRAME_CHECK(pos <= size_);
  push_back(0);  // width-checks `value` via the set() below
  for (std::size_t i = size_ - 1; i > pos; --i) set(i, get(i - 1));
  set(pos, value);
}

void PackedVector::erase(std::size_t pos, std::size_t count) {
  EXPLFRAME_CHECK(pos <= size_ && count <= size_ - pos);
  for (std::size_t i = pos; i + count < size_; ++i) set(i, get(i + count));
  size_ -= count;
  words_.resize(words_for(size_, bits_));
}

void PackedVector::resize(std::size_t count) {
  const std::size_t old = size_;
  size_ = count;
  words_.resize(words_for(count, bits_), 0);
  // Zero any tail bits a previous, larger size left behind.
  for (std::size_t i = old; i < count; ++i) set(i, 0);
}

void PackedVector::reserve(std::size_t count) {
  words_.reserve(words_for(count, bits_));
}

bool operator==(const PackedVector& a, const PackedVector& b) {
  if (a.bits_ != b.bits_ || a.size_ != b.size_) return false;
  for (std::size_t i = 0; i < a.size_; ++i)
    if (a.get(i) != b.get(i)) return false;
  return true;
}

// ---- RowIndex --------------------------------------------------------------

RowIndex::RowIndex(std::span<const std::uint64_t> sorted_keys,
                   std::uint64_t key_limit)
    : key_limit_(key_limit),
      keys_(sorted_keys.size()),
      in_block_(kBlockBits) {
  EXPLFRAME_CHECK_MSG(sorted_keys.empty() || key_limit > 0,
                      "RowIndex: keys in an empty universe");
  EXPLFRAME_CHECK_MSG(keys_ < kAbsentBlock,
                      "RowIndex: key count exceeds 32-bit ordinals");
  const std::uint64_t blocks = (key_limit + kBlockSize - 1) / kBlockSize;
  EXPLFRAME_CHECK_MSG(blocks <= kAbsentBlock,
                      "RowIndex: key universe exceeds 32-bit block numbers");
  if (keys_ == 0) {
    start_.push_back(0);  // no keys: no directory, every lookup misses
    return;
  }
  dir_.assign(static_cast<std::size_t>(blocks), kAbsentBlock);
  in_block_.reserve(keys_);

  std::uint64_t prev = 0;
  bool first = true;
  for (const std::uint64_t key : sorted_keys) {
    EXPLFRAME_CHECK_MSG(key < key_limit, "RowIndex: key out of universe");
    EXPLFRAME_CHECK_MSG(first || key > prev,
                        "RowIndex: keys must be strictly increasing");
    first = false;
    prev = key;
    const std::uint32_t block = static_cast<std::uint32_t>(key >> kBlockBits);
    const std::uint64_t within = key & (kBlockSize - 1);
    if (dir_[block] == kAbsentBlock) {
      dir_[block] = static_cast<std::uint32_t>(block_id_.size());
      block_id_.push_back(block);
      start_.push_back(static_cast<std::uint32_t>(in_block_.size()));
      coarse_.push_back(0);
    }
    coarse_.back() |= 1ull << (within >> 3);
    in_block_.push_back(within);
  }
  start_.push_back(static_cast<std::uint32_t>(in_block_.size()));
}

bool RowIndex::contains(std::uint64_t key) const noexcept {
  return find(key) != kNpos;
}

std::size_t RowIndex::find(std::uint64_t key) const noexcept {
  if (keys_ == 0 || key >= key_limit_) return kNpos;
  const std::uint32_t slot = dir_[static_cast<std::size_t>(key >> kBlockBits)];
  if (slot == kAbsentBlock) return kNpos;
  const std::uint64_t within = key & (kBlockSize - 1);
  if (((coarse_[slot] >> (within >> 3)) & 1ull) == 0) return kNpos;
  std::size_t lo = start_[slot];
  std::size_t hi = start_[slot + 1];
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::uint64_t v = in_block_.get(mid);
    if (v == within) return mid;
    if (v < within) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return kNpos;
}

std::size_t RowIndex::lower_bound(std::uint64_t key) const noexcept {
  if (key >= key_limit_) return keys_;
  const std::uint32_t block = static_cast<std::uint32_t>(key >> kBlockBits);
  const std::uint64_t within = key & (kBlockSize - 1);
  // First occupied block at or after `block`; within the first candidate,
  // binary-search for the first key-within-block >= `within`.
  for (std::size_t b = block; b < dir_.size(); ++b) {
    const std::uint32_t slot = dir_[b];
    if (slot == kAbsentBlock) continue;
    std::size_t lo = start_[slot];
    const std::size_t hi = start_[slot + 1];
    if (b == block) {
      std::size_t left = lo;
      std::size_t right = hi;
      while (left < right) {
        const std::size_t mid = left + (right - left) / 2;
        if (in_block_.get(mid) < within) {
          left = mid + 1;
        } else {
          right = mid;
        }
      }
      if (left == hi) continue;  // whole block is below `key`
      return left;
    }
    return lo;
  }
  return keys_;
}

std::size_t RowIndex::ordinal(std::uint64_t key) const {
  const std::size_t o = find(key);
  EXPLFRAME_CHECK_MSG(o != kNpos, "RowIndex: key not present");
  return o;
}

std::uint64_t RowIndex::key_at(std::size_t ordinal) const {
  EXPLFRAME_CHECK(ordinal < keys_);
  // The occupied block whose [start, end) ordinal range holds `ordinal`.
  const auto it = std::upper_bound(start_.begin(), start_.end(),
                                   static_cast<std::uint32_t>(ordinal));
  const std::size_t slot = static_cast<std::size_t>(it - start_.begin()) - 1;
  return static_cast<std::uint64_t>(block_id_[slot]) * kBlockSize +
         in_block_.get(ordinal);
}

std::uint64_t RowIndex::heap_bytes() const noexcept {
  return dir_.capacity() * sizeof(std::uint32_t) +
         block_id_.capacity() * sizeof(std::uint32_t) +
         start_.capacity() * sizeof(std::uint32_t) +
         coarse_.capacity() * sizeof(std::uint64_t) + in_block_.heap_bytes();
}

bool operator==(const RowIndex& a, const RowIndex& b) {
  if (a.key_limit_ != b.key_limit_ || a.keys_ != b.keys_) return false;
  for (std::size_t i = 0; i < a.keys_; ++i)
    if (a.key_at(i) != b.key_at(i)) return false;
  return true;
}

}  // namespace explframe
