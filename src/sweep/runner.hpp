// sweep::SweepRunner — executes an expanded sweep grid across a worker
// pool, with a crash-safe checkpoint so interrupted sweeps resume.
//
// Execution model: the expanded points form a shared work queue of
// *groups* — points whose (attack::template_key, master seed, trial
// count) coincide share one templated machine state, so each trial of a
// group templates once and every member forks from the snapshot
// (CampaignRunner::run_trial_group). Points that share with nobody run
// through scenario::run_scenario exactly as before. Each worker thread
// steals the next unfinished group and runs it single-threaded. Results
// are keyed by point index, so the aggregate is bit-identical regardless
// of thread count, grouping or completion order — sharing and parallelism
// change only the wall clock, exactly like CampaignRunner's own guarantee
// one level down.
//
// Checkpoint contract: when a checkpoint path is configured, every
// completed point is appended to the file as one self-contained record
// line and fsynced before the worker moves on, so a killed process loses
// at most in-flight points. A checkpoint is bound to SweepSpec::spec_hash
// (canonical spec text + resolved base scenario, seeds included): resuming
// against a file whose hash does not match is an error, never a silent
// partial rerun. Resumed points are *not* re-executed — their stored trial
// records feed the emitters byte-identically to a fresh run, which
// `explsim sweep run --resume` relies on and tests assert.
//
// Sharding contract: a grid can be split across N independent processes
// with `shard_index`/`shard_count`. The partition is deterministic
// round-robin over the expanded point indices (point i belongs to shard
// i % N), so every shard expands the same grid, agrees on every point's
// identity and seed, and owns a disjoint subset. A shard run writes its
// owned records to its own checkpoint file — same format, same spec-hash
// binding — and *keeps* the file on completion: the checkpoint IS the
// shard's output artifact. merge_checkpoints() reassembles any set of
// checkpoint files (shardings may even overlap, e.g. a rerun shard plus
// an old full checkpoint) into one complete SweepResult whose emitted
// CSV/markdown bytes are identical to an unsharded run's, because the
// records are keyed by point index and every byte the emitters publish is
// simulation-derived.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "attack/campaign.hpp"
#include "io/fs.hpp"
#include "scenario/registry.hpp"
#include "support/units.hpp"
#include "sweep/spec.hpp"

namespace explframe::sweep {

/// The per-trial outcome fields the sweep emitters publish — the sweep-side
/// mirror of attack::CampaignReport restricted to the long-form CSV columns,
/// and the unit of checkpoint serialization (everything here round-trips
/// losslessly as text, so a resumed point emits the same bytes as a fresh
/// one).
struct TrialRow {
  bool template_found = false;
  std::uint64_t rows_scanned = 0;
  std::uint64_t flips_found = 0;
  bool steered = false;
  bool fault_injected = false;
  bool fault_as_predicted = false;
  bool key_recovered = false;
  std::uint32_t ciphertexts_used = 0;
  std::uint32_t residual_search = 0;
  bool success = false;
  std::string failure_stage;  ///< CampaignReport::failure_stage() string.
  SimTime total_time = 0;     ///< Simulated nanoseconds (exact integer).

  /// Project a campaign report onto the published columns.
  static TrialRow from_report(const attack::CampaignReport& report);

  bool operator==(const TrialRow&) const = default;
};

/// One completed grid point: its position plus every trial's outcome. One
/// PointRecord is one checkpoint line.
struct PointRecord {
  std::size_t index = 0;
  std::string id;  ///< Coordinate id, must match the expanded point's.
  std::vector<TrialRow> trials;

  /// The checkpoint line (no trailing newline): space-separated header
  /// fields, then one comma-joined field list per trial, ';'-joined.
  std::string serialize() const;
  /// Inverse of serialize(). Nullopt + `error` on any malformed field.
  static std::optional<PointRecord> parse(const std::string& line,
                                          std::string* error = nullptr);

  std::uint32_t successes() const noexcept;

  bool operator==(const PointRecord&) const = default;
};

/// Parse a checkpoint file for the sweep identified by `spec_hash`.
/// Returns the completed records (possibly empty; a missing file is an
/// empty checkpoint, not an error). Only newline-terminated lines count:
/// a torn final fragment without its newline (the mid-write crash fsync
/// cannot rule out) is ignored and its point simply reruns — the resumed
/// run truncates it before appending. Duplicate records for one point are
/// deduplicated when byte-identical (a requeued job that re-logged a
/// point) and an error when they conflict — two different results for the
/// same point mean the file mixes incompatible runs. Other errors: a
/// malformed header, a hash or sweep-name mismatch, or any malformed
/// *durable* line (those were fsynced, so that is real corruption, never
/// a crash artifact).
/// All I/O goes through `fs` (nullptr = io::real()); reads retry
/// transient errors (a flaky EIO) a bounded number of times before the
/// failure surfaces.
std::optional<std::vector<PointRecord>> load_checkpoint(
    const std::string& path, const std::string& sweep_name,
    std::uint64_t spec_hash, std::string* error = nullptr,
    io::FileSystem* fs = nullptr);

/// How run_sweep executes and checkpoints; plain data with usable defaults.
struct SweepRunOptions {
  /// Worker threads stealing points (0 = hardware concurrency, clamped to
  /// the point count). Wall-clock only; results are identical.
  std::uint32_t threads = 0;
  /// Completed-point log; empty disables checkpointing.
  std::string checkpoint_path;
  /// Load `checkpoint_path` first and skip the recorded points. Without
  /// this flag an existing checkpoint is truncated and the sweep reruns
  /// from scratch.
  bool resume = false;
  /// Delete the checkpoint after the last point completes (a finished
  /// sweep has nothing left to resume).
  bool remove_checkpoint_on_success = true;
  /// Group grid points that agree on every template-shaping field plus
  /// master seed and trial count, templating once per (group, trial) and
  /// forking each member from the snapshot. Byte-identical either way
  /// (forked reports equal fresh ones); false is the differential escape
  /// hatch and the bench baseline.
  bool share_templates = true;
  /// This process's shard (0-based) out of `shard_count`. With the default
  /// 1-way sharding the run owns every point; otherwise it owns the
  /// round-robin subset i % shard_count == shard_index, requires a
  /// checkpoint path, and keeps the checkpoint on completion (it is the
  /// shard's output, consumed by merge_checkpoints).
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;  ///< Total shards the grid is split into.
  /// When non-null, checked between work-group steals: once it reads true
  /// no further points start, the checkpoint (holding every completed
  /// point) is retained, and run_sweep fails with a "cancelled" error —
  /// the graceful-stop seam explsimd's shutdown uses; a later resume
  /// completes byte-identically.
  const std::atomic<bool>* cancel = nullptr;
  /// Progress hook, called under a lock in completion order.
  /// `resumed` marks points served from the checkpoint.
  std::function<void(const SweepPoint&, const PointRecord&, bool resumed)>
      on_point;
  /// The filesystem every checkpoint read/append goes through (nullptr =
  /// io::real()). Tests substitute io::FaultyFs to torture the
  /// append→resume pipeline; production never sets this.
  io::FileSystem* fs = nullptr;
};

/// A finished sweep: the spec, its expanded grid and one record per owned
/// point (index order). An unsharded or merged result covers the whole
/// grid and is ready for the report emitters; a shard run's records cover
/// only its round-robin subset (`complete()` distinguishes the two).
struct SweepResult {
  SweepSpec spec;
  std::vector<SweepPoint> points;
  std::vector<PointRecord> records;
  std::size_t resumed_points = 0;  ///< Served from the checkpoint.
  double wall_seconds = 0.0;       ///< Host wall clock (stdout only).
  std::uint32_t shard_index = 0;   ///< Which shard produced `records`.
  std::uint32_t shard_count = 1;   ///< 1 = the result covers the grid.

  /// True when `records` holds every expanded point — the precondition of
  /// every report emitter (shard results are merged first).
  bool complete() const noexcept { return records.size() == points.size(); }
};

/// Expand and execute `spec` against `registry` per `options`. Nullopt +
/// `error` on expansion, sharding or checkpoint errors, or when
/// `options.cancel` fired before the owned points finished (never on
/// attack outcomes — a failing attack is a result, not an error).
/// Checkpoint I/O failures are real errors, not warnings: a transient one
/// (io::Status taxonomy) is retried a bounded, deterministic number of
/// times; a persistent one aborts the sweep after the in-flight groups
/// drain, keeping the checkpoint (every *recorded* point was fsynced, so
/// `--resume` continues from it once the disk recovers).
std::optional<SweepResult> run_sweep(const SweepSpec& spec,
                                     const scenario::Registry& registry,
                                     const SweepRunOptions& options = {},
                                     std::string* error = nullptr);

/// Reassemble one complete SweepResult from shard checkpoint files.
/// Every file must carry `spec`'s hash (foreign checkpoints are refused),
/// torn final lines are tolerated exactly as in load_checkpoint, records
/// duplicated across files deduplicate when identical and hard-error when
/// they conflict, and every expanded point must be covered by exactly one
/// surviving record — a missing point is an error naming it, never a
/// silently partial report. The merged result's emitted CSV/markdown is
/// byte-identical to an unsharded run of the same spec.
std::optional<SweepResult> merge_checkpoints(
    const SweepSpec& spec, const scenario::Registry& registry,
    const std::vector<std::string>& checkpoint_paths,
    std::string* error = nullptr, io::FileSystem* fs = nullptr);

}  // namespace explframe::sweep
