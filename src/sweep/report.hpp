// sweep::report — render a finished sweep as the generated ablation pages.
//
// Same byte-stability contract as scenario::report: for a fixed spec the
// CSV and markdown output is identical across runs, thread counts,
// resume/fresh executions and machines, because it contains only
// simulation-derived values — never wall-clock time, hostnames or dates.
// That is what lets CI regenerate docs/results/sweeps/ with
// `explsim sweep all --check` and fail on any byte of drift.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sweep/runner.hpp"

namespace explframe::sweep {

/// The long-form CSV (docs/results/sweeps/<name>.csv): one row per
/// (point, trial) with one column per swept axis — pivot-ready for any
/// plotting tool.
std::string sweep_csv(const SweepResult& result);

/// The per-sweep markdown page (docs/results/sweeps/<name>.md): the
/// canonical `.sweep` configuration, the full grid table, one marginal
/// table per axis, and (for 2-axis grids) a success-rate pivot.
std::string sweep_markdown(const SweepResult& result);

/// The sweep index (docs/results/sweeps/README.md): one summary row per
/// sweep, in registry order.
std::string sweeps_index(const std::vector<SweepResult>& results);

/// Every generated file for `results` as (path, content) pairs, with paths
/// under `dir` — the write/check unit used by `explsim sweep all`.
std::vector<std::pair<std::string, std::string>> sweep_files(
    const std::vector<SweepResult>& results, const std::string& dir);

/// Compare regenerated (path, content) pairs against what is on disk.
/// Returns one human-readable issue per problem: MISSING (no such file),
/// DRIFT (bytes differ) and ORPHAN (a .md/.csv file in `dir` that no entry
/// generates — a renamed sweep must take its old reports with it). Empty
/// means the directory matches byte for byte. Reads go through `fs`
/// (nullptr = io::real()) like every other durable path; an unreadable
/// existing file reports as MISSING with the read error appended.
std::vector<std::string> check_generated_files(
    const std::vector<std::pair<std::string, std::string>>& files,
    const std::string& dir, io::FileSystem* fs = nullptr);

}  // namespace explframe::sweep
