#include "sweep/spec.hpp"

#include <cctype>
#include <limits>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace explframe::sweep {

namespace {

/// One axis may expand to at most this many values, and a grid to at most
/// this many points — a typo like `1:1000000:+1` should be a parse error,
/// not an hour of CI time.
constexpr std::size_t kMaxAxisValues = 1024;
constexpr std::size_t kMaxPoints = 4096;

/// Keys that define a scenario's *identity* rather than its configuration;
/// the sweep owns these per point, so neither overrides nor axes may touch
/// them (and sweeping `seed` would fight the spec's seed mode).
bool is_reserved_scenario_key(const std::string& key) noexcept {
  return key == "name" || key == "title" || key == "description" ||
         key == "paper_ref" || key == "seed";
}

bool set_error(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

bool has_whitespace(const std::string& s) noexcept {
  for (const char c : s)
    if (std::isspace(static_cast<unsigned char>(c))) return true;
  return false;
}

std::string join_values(const std::vector<std::string>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += values[i];
  }
  return out;
}

}  // namespace

const char* to_string(SeedMode mode) noexcept {
  return mode == SeedMode::kShared ? "shared" : "derived";
}

std::optional<SeedMode> seed_mode_from_string(
    const std::string& name) noexcept {
  if (name == "shared") return SeedMode::kShared;
  if (name == "derived") return SeedMode::kDerived;
  return std::nullopt;
}

std::uint64_t derive_point_seed(std::uint64_t base_seed,
                                std::size_t index) noexcept {
  // Mix the index into the seed before the SplitMix64 scramble so nearby
  // base seeds / indices land in unrelated xoshiro streams.
  SplitMix64 sm(base_seed ^
                (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) +
                                          1)));
  return sm.next();
}

std::optional<std::vector<std::string>> expand_axis_values(
    const std::string& text, std::string* error) {
  const auto fail = [&](const std::string& what)
      -> std::optional<std::vector<std::string>> {
    set_error(error, what);
    return std::nullopt;
  };

  // Range syntax: lo:hi:x<factor> (geometric) or lo:hi:+<step> (linear).
  if (text.find(':') != std::string::npos) {
    const std::size_t c1 = text.find(':');
    const std::size_t c2 = text.find(':', c1 + 1);
    if (c2 == std::string::npos || text.find(':', c2 + 1) != std::string::npos)
      return fail("range must be lo:hi:x<factor> or lo:hi:+<step>: '" + text +
                  "'");
    const auto lo = parse_u64(trim_copy(text.substr(0, c1)));
    const auto hi = parse_u64(trim_copy(text.substr(c1 + 1, c2 - c1 - 1)));
    const std::string step_text = trim_copy(text.substr(c2 + 1));
    if (!lo || !hi || step_text.size() < 2)
      return fail("bad range '" + text + "'");
    if (*lo > *hi)
      return fail("empty range '" + text + "' (lo > hi)");
    const auto step = parse_u64(step_text.substr(1));
    std::vector<std::string> values;
    if (step_text[0] == 'x') {
      if (!step || *step < 2)
        return fail("geometric factor must be an integer >= 2: '" + text +
                    "'");
      if (*lo == 0)
        return fail("geometric range needs lo >= 1 (0 never advances): '" +
                    text + "'");
      for (std::uint64_t v = *lo;; v *= *step) {
        values.push_back(std::to_string(v));
        if (values.size() > kMaxAxisValues)
          return fail("axis expands to more than " +
                      std::to_string(kMaxAxisValues) + " values: '" + text +
                      "'");
        if (v > *hi / *step || v * *step > *hi) break;
      }
    } else if (step_text[0] == '+') {
      if (!step || *step < 1)
        return fail("linear step must be an integer >= 1: '" + text + "'");
      for (std::uint64_t v = *lo;; v += *step) {
        values.push_back(std::to_string(v));
        if (values.size() > kMaxAxisValues)
          return fail("axis expands to more than " +
                      std::to_string(kMaxAxisValues) + " values: '" + text +
                      "'");
        if (*hi - v < *step) break;  // v <= hi here; avoids underflow.
      }
    } else {
      return fail("range step must start with 'x' or '+': '" + text + "'");
    }
    return values;
  }

  // Comma-list syntax.
  std::vector<std::string> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string value = trim_copy(text.substr(start, comma - start));
    if (value.empty())
      return fail("empty axis value in '" + text + "'");
    if (has_whitespace(value))
      return fail("axis value '" + value + "' must not contain whitespace");
    for (const std::string& seen : values)
      if (seen == value)
        return fail("duplicate axis value '" + value + "'");
    values.push_back(value);
    if (values.size() > kMaxAxisValues)
      return fail("axis expands to more than " +
                  std::to_string(kMaxAxisValues) + " values");
    start = comma + 1;
    if (comma == text.size()) break;
  }
  if (values.empty()) return fail("axis has no values");
  return values;
}

std::size_t SweepSpec::point_count() const noexcept {
  if (axes.empty()) return 0;
  std::size_t n = 1;
  for (const Axis& axis : axes) n *= axis.values.size();
  return n;
}

std::string SweepSpec::to_sweep() const {
  KvFile kv;
  kv.set("name", name);
  kv.set("title", title);
  kv.set("description", description);
  kv.set("paper_ref", paper_ref);
  kv.set("base", base);
  kv.set("seed_mode", to_string(seed_mode));
  for (const auto& [key, value] : base_overrides) kv.set("base." + key, value);
  for (const Axis& axis : axes) kv.set("axis." + axis.key,
                                       join_values(axis.values));
  return kv.serialize();
}

std::optional<SweepSpec> SweepSpec::from_sweep(const std::string& text,
                                               std::string* error) {
  const auto kv = KvFile::parse(text, error);
  if (!kv) return std::nullopt;

  const auto fail = [&](const std::string& what) -> std::optional<SweepSpec> {
    set_error(error, what);
    return std::nullopt;
  };

  SweepSpec spec;
  for (const auto& [key, value] : kv->entries()) {
    if (key == "name") {
      spec.name = value;
    } else if (key == "title") {
      spec.title = value;
    } else if (key == "description") {
      spec.description = value;
    } else if (key == "paper_ref") {
      spec.paper_ref = value;
    } else if (key == "base") {
      spec.base = value;
    } else if (key == "seed_mode") {
      const auto mode = seed_mode_from_string(value);
      if (!mode)
        return fail("key 'seed_mode': unknown mode '" + value +
                    "' (want shared|derived)");
      spec.seed_mode = *mode;
    } else if (key.rfind("base.", 0) == 0) {
      const std::string field = key.substr(5);
      if (field.empty() || is_reserved_scenario_key(field))
        return fail("key '" + key + "': '" + field +
                    "' cannot be overridden by a sweep");
      spec.base_overrides.emplace_back(field, value);
    } else if (key.rfind("axis.", 0) == 0) {
      const std::string field = key.substr(5);
      if (field.empty() || is_reserved_scenario_key(field))
        return fail("key '" + key + "': '" + field + "' cannot be swept");
      std::string axis_error;
      const auto values = expand_axis_values(value, &axis_error);
      if (!values) return fail("key '" + key + "': " + axis_error);
      spec.axes.push_back(Axis{field, *values});
    } else {
      return fail("unknown key '" + key + "'");
    }
  }

  if (spec.name.empty() || !KvFile::valid_key(spec.name))
    return fail("key 'name': missing or not a valid identifier");
  if (spec.title.empty()) return fail("key 'title': missing");
  if (spec.base.empty()) return fail("key 'base': missing");
  if (spec.axes.empty()) return fail("a sweep needs at least one axis.<key>");
  if (spec.axes.size() > 3)
    return fail("a sweep supports at most 3 axes (got " +
                std::to_string(spec.axes.size()) + ")");
  for (const auto& [key, value] : spec.base_overrides)
    for (const Axis& axis : spec.axes)
      if (axis.key == key)
        return fail("key '" + key + "' is both overridden (base." + key +
                    ") and swept (axis." + key + ")");
  if (spec.point_count() > kMaxPoints)
    return fail("grid expands to " + std::to_string(spec.point_count()) +
                " points (max " + std::to_string(kMaxPoints) + ")");
  return spec;
}

std::optional<scenario::Scenario> SweepSpec::base_scenario(
    const scenario::Registry& registry, std::string* error) const {
  const auto fail = [&](const std::string& what)
      -> std::optional<scenario::Scenario> {
    set_error(error, what);
    return std::nullopt;
  };

  const scenario::Scenario* found = registry.find(base);
  if (!found)
    return fail("key 'base': no registered scenario named '" + base + "'");
  if (base_overrides.empty()) return *found;

  // The canonical .scn text writes every key explicitly, so applying an
  // override is a plain KvFile::set and Scenario::from_scn revalidates the
  // result (unknown keys, bad values, broken invariants) for free.
  auto kv = KvFile::parse(found->to_scn());
  EXPLFRAME_CHECK(kv.has_value());
  for (const auto& [key, value] : base_overrides) {
    if (!kv->contains(key))
      return fail("key 'base." + key + "': not a scenario key");
    kv->set(key, value);
  }
  std::string scn_error;
  const auto scenario = scenario::Scenario::from_scn(kv->serialize(),
                                                     &scn_error);
  if (!scenario) return fail("base override: " + scn_error);
  return scenario;
}

std::optional<std::vector<SweepPoint>> SweepSpec::expand(
    const scenario::Registry& registry, std::string* error) const {
  const auto base_scn = base_scenario(registry, error);
  if (!base_scn) return std::nullopt;

  const auto base_kv = KvFile::parse(base_scn->to_scn());
  EXPLFRAME_CHECK(base_kv.has_value());

  const std::size_t total = point_count();
  std::size_t digits = 1;
  for (std::size_t n = total > 0 ? total - 1 : 0; n >= 10; n /= 10) ++digits;
  if (digits < 2) digits = 2;

  std::vector<SweepPoint> points;
  points.reserve(total);
  // Row-major expansion: odometer over the axes, last axis fastest.
  std::vector<std::size_t> at(axes.size(), 0);
  for (std::size_t index = 0; index < total; ++index) {
    SweepPoint point;
    point.index = index;
    KvFile kv = *base_kv;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const std::string& value = axes[a].values[at[a]];
      point.coords.emplace_back(axes[a].key, value);
      if (!point.id.empty()) point.id += ',';
      point.id += axes[a].key + "=" + value;
      kv.set(axes[a].key, value);
    }

    std::string number = std::to_string(index);
    number.insert(0, digits - number.size(), '0');
    kv.set("name", name + ".p" + number);
    kv.set("title", point.id);

    std::string scn_error;
    auto scenario = scenario::Scenario::from_scn(kv.serialize(), &scn_error);
    if (!scenario) {
      set_error(error, "point " + point.id + ": " + scn_error);
      return std::nullopt;
    }
    if (seed_mode == SeedMode::kDerived)
      scenario->seed = derive_point_seed(base_scn->seed, index);
    point.scenario = std::move(*scenario);
    points.push_back(std::move(point));

    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++at[a] < axes[a].values.size()) break;
      at[a] = 0;
    }
  }
  return points;
}

std::uint64_t SweepSpec::spec_hash(const scenario::Registry& registry) const {
  std::string base_error;
  const auto base_scn = base_scenario(registry, &base_error);
  EXPLFRAME_CHECK_MSG(base_scn.has_value(),
                      "spec_hash needs a resolvable base scenario");
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64.
  const auto mix = [&hash](const std::string& text) {
    for (const char c : text) {
      hash ^= static_cast<std::uint8_t>(c);
      hash *= 0x100000001b3ULL;
    }
    hash ^= 0xff;  // Separator so (a, b) and (a + b, "") differ.
    hash *= 0x100000001b3ULL;
  };
  mix(to_sweep());
  mix(base_scn->to_scn());
  return hash;
}

}  // namespace explframe::sweep
