// sweep::SweepSpec — a declarative multi-dimensional scenario grid.
//
// A sweep is the paper's unit of *ablation*: one base scenario plus 1–3
// swept axes (flips vs. hammer budget, key-recovery rate vs. defence
// configuration, templating cost vs. row budget). A SweepSpec captures
// that as plain data, round-trips through the flat `.sweep` key=value
// format (support/config.hpp, same parser as `.scn`), and expands into a
// deterministic grid of fully-validated scenario::Scenario points:
//
//   name = defence-grid
//   title = Key-recovery rate under each hardware mitigation
//   base = defence-none          # a registered scenario
//   base.trials = 6              # optional base-field overrides
//   axis.defence = none,trr,ecc,trr+ecc
//   axis.weak_cells = realistic,vulnerable
//
// Axis values are either an explicit comma list or an integer range —
// `lo:hi:x2` (geometric, factor >= 2) or `lo:hi:+50` (linear, step >= 1),
// both inclusive of `hi` when landed on exactly. The canonical `.sweep`
// serialization always writes the expanded list, so parse -> serialize ->
// parse is closed and the serialized text is a complete record of the grid.
//
// Determinism contract: `expand()` is a pure function of (spec, scenario
// registry). Point order is row-major in axis declaration order (the last
// declared axis varies fastest), and per-point seeds are either the base
// scenario's seed (`seed_mode = shared`, for paired ablations) or derived
// from (base seed, point index) via SplitMix64 (`seed_mode = derived`,
// for independent machine populations per point).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"

namespace explframe::sweep {

/// How each grid point's master seed is chosen (see the file comment).
enum class SeedMode {
  kShared,   ///< Every point keeps the base scenario's seed (paired runs).
  kDerived,  ///< Per-point seed derived from (base seed, point index).
};

/// Canonical name ("shared" | "derived").
const char* to_string(SeedMode mode) noexcept;
/// Inverse of to_string; nullopt on an unknown name.
std::optional<SeedMode> seed_mode_from_string(const std::string& name) noexcept;

/// The seed a `derived`-mode point runs with. Exposed so a single grid
/// point can be reproduced outside the sweep (`explsim run` on the .scn
/// that `describe` prints uses exactly this value).
std::uint64_t derive_point_seed(std::uint64_t base_seed,
                                std::size_t index) noexcept;

/// Expand the axis value syntax into an explicit, validated value list:
/// a comma list ("none,trr,ecc"), a geometric integer range ("1000:64000:x2")
/// or a linear integer range ("16:256:+48"). Returns nullopt and fills
/// `error` on malformed syntax, empty ranges (lo > hi, factor < 2,
/// step < 1), empty/duplicate/whitespace-bearing list entries.
std::optional<std::vector<std::string>> expand_axis_values(
    const std::string& text, std::string* error = nullptr);

/// One swept dimension: a scenario `.scn` key plus its explicit value list
/// (already expanded from range syntax at parse time).
struct Axis {
  std::string key;
  std::vector<std::string> values;

  bool operator==(const Axis&) const = default;
};

/// One expanded grid point: its position, human-readable coordinate id
/// ("defence=trr,weak_cells=realistic") and the fully-validated scenario
/// (named `<sweep>.p<index>`, titled by the coordinate id, seed already
/// resolved per the spec's seed mode).
struct SweepPoint {
  std::size_t index = 0;
  std::string id;
  /// (axis key, value) in axis declaration order.
  std::vector<std::pair<std::string, std::string>> coords;
  scenario::Scenario scenario;
};

/// The declarative sweep: identity, base scenario reference, overrides and
/// axes. Plain data; `expand()` does all registry-dependent validation.
struct SweepSpec {
  // ---- Identity (the handbook entry) ----
  std::string name;         ///< Registry key, kebab-case, unique.
  std::string title;        ///< One-line human title.
  std::string description;  ///< One-paragraph handbook description.
  std::string paper_ref;    ///< Paper figure/table this grid reproduces.

  // ---- The grid ----
  std::string base;  ///< Registered scenario name the grid starts from.
  SeedMode seed_mode = SeedMode::kDerived;
  /// `base.<key> = value` overrides, applied to the base scenario before
  /// the axes (file order). Keys are scenario `.scn` keys.
  std::vector<std::pair<std::string, std::string>> base_overrides;
  /// 1–3 swept dimensions, declaration order (= grid nesting order).
  std::vector<Axis> axes;

  /// Product of the axis sizes (0 if there are no axes).
  std::size_t point_count() const noexcept;

  /// Serialize to canonical `.sweep` text (fixed key order, expanded axis
  /// value lists). parse(serialize()) == *this.
  std::string to_sweep() const;

  /// Parse `.sweep` text. Syntax-level validation only (key shapes, axis
  /// count and value syntax, seed mode names); registry-dependent checks
  /// (base exists, axis keys are scenario keys, every point is a valid
  /// scenario) happen in expand(). On failure returns nullopt and fills
  /// `error` (when non-null).
  static std::optional<SweepSpec> from_sweep(const std::string& text,
                                             std::string* error = nullptr);

  /// The base scenario with `base_overrides` applied (and validated), or
  /// nullopt + `error` if the base is unknown or an override is invalid.
  std::optional<scenario::Scenario> base_scenario(
      const scenario::Registry& registry, std::string* error = nullptr) const;

  /// Expand the full grid in deterministic order. Every point is validated
  /// through Scenario::from_scn, so an unknown or out-of-range axis key
  /// surfaces here as a parse-style error.
  std::optional<std::vector<SweepPoint>> expand(
      const scenario::Registry& registry, std::string* error = nullptr) const;

  /// FNV-1a 64 over (canonical .sweep text, resolved base .scn text) —
  /// the identity a checkpoint file is bound to. Any spec edit, seed
  /// change or drift in the registered base scenario changes the hash and
  /// invalidates outstanding checkpoints.
  std::uint64_t spec_hash(const scenario::Registry& registry) const;

  bool operator==(const SweepSpec&) const = default;
};

}  // namespace explframe::sweep
