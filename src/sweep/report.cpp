#include "sweep/report.hpp"

#include <algorithm>
#include <filesystem>

#include "support/check.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace explframe::sweep {

namespace {

std::string rate_cell(std::uint32_t hits, std::uint32_t trials) {
  const auto ci = wilson_interval(hits, trials);
  return Table::percent(ci.p) + " [" + Table::percent(ci.lo) + ", " +
         Table::percent(ci.hi) + "]";
}

std::string samples_cell(const Samples& s) {
  if (s.empty()) return "-";
  return Table::to_cell(s.mean()) + " (min " + Table::to_cell(s.min()) +
         ", max " + Table::to_cell(s.max()) + ")";
}

double sim_seconds(const TrialRow& trial) {
  return static_cast<double>(trial.total_time) / kSecond;
}

/// The aggregate slice the tables publish for any set of trials.
struct TrialStats {
  std::uint32_t trials = 0;
  std::uint32_t successes = 0;
  Samples rows_scanned;      ///< All trials.
  Samples ciphertexts_used;  ///< Successful trials only.
  Samples sim_secs;          ///< All trials.

  void add(const TrialRow& trial) {
    ++trials;
    if (trial.success) {
      ++successes;
      ciphertexts_used.add(trial.ciphertexts_used);
    }
    rows_scanned.add(static_cast<double>(trial.rows_scanned));
    sim_secs.add(sim_seconds(trial));
  }
};

TrialStats point_stats(const PointRecord& record) {
  TrialStats stats;
  for (const TrialRow& trial : record.trials) stats.add(trial);
  return stats;
}

}  // namespace

std::string sweep_csv(const SweepResult& result) {
  std::vector<std::string> headers{"point"};
  for (const Axis& axis : result.spec.axes) headers.push_back(axis.key);
  for (const char* column :
       {"trial", "template_found", "rows_scanned", "flips_found", "steered",
        "fault_injected", "fault_as_predicted", "key_recovered",
        "ciphertexts_used", "residual_search", "success", "failure_stage",
        "sim_seconds"})
    headers.emplace_back(column);

  Table t(headers);
  for (const PointRecord& record : result.records) {
    const SweepPoint& point = result.points[record.index];
    for (std::size_t trial = 0; trial < record.trials.size(); ++trial) {
      const TrialRow& r = record.trials[trial];
      std::vector<std::string> cells{Table::to_cell(record.index)};
      for (const auto& [key, value] : point.coords) cells.push_back(value);
      for (const std::string& cell :
           {Table::to_cell(trial), Table::to_cell(r.template_found),
            Table::to_cell(r.rows_scanned), Table::to_cell(r.flips_found),
            Table::to_cell(r.steered), Table::to_cell(r.fault_injected),
            Table::to_cell(r.fault_as_predicted),
            Table::to_cell(r.key_recovered),
            Table::to_cell(r.ciphertexts_used),
            Table::to_cell(r.residual_search), Table::to_cell(r.success),
            r.failure_stage, Table::to_cell(sim_seconds(r))})
        cells.push_back(cell);
      t.add_row(std::move(cells));
    }
  }
  return t.render(TableFormat::kCsv);
}

std::string sweep_markdown(const SweepResult& result) {
  const SweepSpec& spec = result.spec;

  std::string out;
  out += "# " + spec.title + "\n\n";
  out += "Sweep `" + spec.name + "` — base scenario `" + spec.base +
         "`, seeds " +
         (spec.seed_mode == SeedMode::kShared
              ? std::string("shared across points (paired ablation)")
              : std::string("derived per point (independent populations)")) +
         ".";
  if (!spec.paper_ref.empty()) out += " Paper ref: " + spec.paper_ref + ".";
  out += "\n\n";
  if (!spec.description.empty()) out += spec.description + "\n\n";

  out += "## Configuration\n\n";
  out += "Reproduce with `explsim sweep run " + spec.name +
         "`; the canonical `.sweep` form (save it, edit it, `explsim sweep "
         "run <file>`):\n\n";
  out += "```ini\n" + spec.to_sweep() + "```\n\n";

  out += "## Grid\n\n";
  std::vector<std::string> headers{"point"};
  for (const Axis& axis : spec.axes) headers.push_back(axis.key);
  for (const char* column :
       {"success", "ciphertexts to key", "rows templated", "sim seconds"})
    headers.emplace_back(column);
  Table grid(headers);
  for (const PointRecord& record : result.records) {
    const SweepPoint& point = result.points[record.index];
    const TrialStats stats = point_stats(record);
    std::vector<std::string> cells{Table::to_cell(record.index)};
    for (const auto& [key, value] : point.coords) cells.push_back(value);
    cells.push_back(std::to_string(stats.successes) + "/" +
                    std::to_string(stats.trials));
    cells.push_back(samples_cell(stats.ciphertexts_used));
    cells.push_back(samples_cell(stats.rows_scanned));
    cells.push_back(samples_cell(stats.sim_secs));
    grid.add_row(std::move(cells));
  }
  out += grid.render(TableFormat::kMarkdown);
  out += "\n";

  // One marginal per axis: every value aggregated across the other axes.
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    const Axis& axis = spec.axes[a];
    out += "## Marginal: `" + axis.key + "`\n\n";
    Table marginal({axis.key, "points", "trials", "success",
                    "ciphertexts to key", "rows templated"});
    for (const std::string& value : axis.values) {
      TrialStats stats;
      std::size_t points = 0;
      for (const PointRecord& record : result.records) {
        if (result.points[record.index].coords[a].second != value) continue;
        ++points;
        for (const TrialRow& trial : record.trials) stats.add(trial);
      }
      marginal.row(value, points, stats.trials,
                   rate_cell(stats.successes, stats.trials),
                   samples_cell(stats.ciphertexts_used),
                   samples_cell(stats.rows_scanned));
    }
    out += marginal.render(TableFormat::kMarkdown);
    out += "\n";
  }

  // For two axes the whole grid fits one success-rate pivot.
  if (spec.axes.size() == 2) {
    const Axis& rows = spec.axes[0];
    const Axis& cols = spec.axes[1];
    out += "## Success pivot: `" + rows.key + "` x `" + cols.key + "`\n\n";
    std::vector<std::string> headers{rows.key + " \\ " + cols.key};
    for (const std::string& value : cols.values) headers.push_back(value);
    Table pivot(headers);
    for (const std::string& row_value : rows.values) {
      std::vector<std::string> cells{row_value};
      for (const std::string& col_value : cols.values) {
        std::uint32_t successes = 0;
        std::uint32_t trials = 0;
        for (const PointRecord& record : result.records) {
          const SweepPoint& point = result.points[record.index];
          if (point.coords[0].second != row_value ||
              point.coords[1].second != col_value)
            continue;
          trials += static_cast<std::uint32_t>(record.trials.size());
          successes += record.successes();
        }
        cells.push_back(std::to_string(successes) + "/" +
                        std::to_string(trials));
      }
      pivot.add_row(std::move(cells));
    }
    out += pivot.render(TableFormat::kMarkdown);
    out += "\n";
  }

  out +=
      "*Generated by `explsim` from the sweep registry — do not edit; "
      "regenerate with `explsim sweep all`.*\n";
  return out;
}

std::string sweeps_index(const std::vector<SweepResult>& results) {
  std::string out;
  out += "# Sweep grids\n\n";
  out +=
      "One ablation grid per registered sweep, generated by `explsim sweep "
      "all`. Like the per-scenario reports one directory up, every number "
      "is derived from the simulation alone, so regeneration is "
      "byte-identical and CI enforces it with `explsim sweep all --check`. "
      "Interrupted runs resume from their checkpoint (`explsim sweep run "
      "<name> --resume`) and still reproduce these bytes exactly.\n\n";
  Table t({"sweep", "title", "base", "axes", "points", "trials", "success",
           "report"});
  for (const SweepResult& r : results) {
    std::string axes;
    for (const Axis& axis : r.spec.axes) {
      if (!axes.empty()) axes += ", ";
      axes += "`" + axis.key + "` (" + std::to_string(axis.values.size()) +
              ")";
    }
    std::uint32_t trials = 0;
    std::uint32_t successes = 0;
    for (const PointRecord& record : r.records) {
      trials += static_cast<std::uint32_t>(record.trials.size());
      successes += record.successes();
    }
    t.row("`" + r.spec.name + "`", r.spec.title, "`" + r.spec.base + "`",
          axes, r.points.size(), trials,
          std::to_string(successes) + "/" + std::to_string(trials),
          "[md](" + r.spec.name + ".md), [csv](" + r.spec.name + ".csv)");
  }
  out += t.render(TableFormat::kMarkdown);
  out +=
      "\n*Regenerate: `cmake --build build && ./build/explsim sweep all`.*\n";
  return out;
}

std::vector<std::pair<std::string, std::string>> sweep_files(
    const std::vector<SweepResult>& results, const std::string& dir) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const SweepResult& r : results) {
    files.emplace_back(dir + "/" + r.spec.name + ".md", sweep_markdown(r));
    files.emplace_back(dir + "/" + r.spec.name + ".csv", sweep_csv(r));
  }
  files.emplace_back(dir + "/README.md", sweeps_index(results));
  return files;
}

std::vector<std::string> check_generated_files(
    const std::vector<std::pair<std::string, std::string>>& files,
    const std::string& dir, io::FileSystem* fs) {
  io::FileSystem& the_fs = fs != nullptr ? *fs : io::real();
  std::vector<std::string> issues;
  for (const auto& [path, content] : files) {
    std::string on_disk;
    const io::Status read = io::with_retry(
        io::kDefaultRetryAttempts,
        [&] { return the_fs.read_file(path, &on_disk); });
    if (!read.ok()) {
      issues.push_back("MISSING " + path +
                       (read.is_not_found() ? "" : " (" + read.message() + ")"));
      continue;
    }
    if (on_disk != content)
      issues.push_back("DRIFT   " + path +
                       " (regenerated report differs from the checked-in "
                       "golden)");
  }
  // A renamed or deleted entry must take its old reports with it: any
  // .md/.csv in the directory we did not just regenerate would silently
  // keep shipping stale numbers.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string path = entry.path().generic_string();
    const std::string ext = entry.path().extension().string();
    if (!entry.is_regular_file() || (ext != ".md" && ext != ".csv")) continue;
    const bool generated =
        std::any_of(files.begin(), files.end(),
                    [&](const auto& f) { return f.first == path; });
    if (!generated)
      issues.push_back("ORPHAN  " + path +
                       " (no registered entry generates this file)");
  }
  std::sort(issues.begin(), issues.end());
  return issues;
}

}  // namespace explframe::sweep
