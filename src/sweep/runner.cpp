#include "sweep/runner.hpp"

#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "attack/campaign_runner.hpp"
#include "scenario/report.hpp"
#include "support/check.hpp"

namespace explframe::sweep {

namespace {

constexpr char kCheckpointMagic[] = "explsim-sweep-checkpoint v1";

bool set_error(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

std::string hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, value >>= 4) out[i] = digits[value & 0xf];
  return out;
}

std::optional<bool> parse_bool_field(const std::string& text) {
  if (text == "1") return true;
  if (text == "0") return false;
  return std::nullopt;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::optional<TrialRow> parse_trial(const std::string& text) {
  const auto fields = split(text, ',');
  if (fields.size() != 12) return std::nullopt;
  TrialRow row;
  const auto tf = parse_bool_field(fields[0]);
  const auto rows = parse_u64(fields[1]);
  const auto flips = parse_u64(fields[2]);
  const auto steered = parse_bool_field(fields[3]);
  const auto injected = parse_bool_field(fields[4]);
  const auto predicted = parse_bool_field(fields[5]);
  const auto recovered = parse_bool_field(fields[6]);
  const auto cts = parse_u64(fields[7]);
  const auto residual = parse_u64(fields[8]);
  const auto success = parse_bool_field(fields[9]);
  const auto time = parse_u64(fields[11]);
  if (!tf || !rows || !flips || !steered || !injected || !predicted ||
      !recovered || !cts || !residual || !success || !time ||
      fields[10].empty() ||
      *cts > std::numeric_limits<std::uint32_t>::max() ||
      *residual > std::numeric_limits<std::uint32_t>::max())
    return std::nullopt;
  row.template_found = *tf;
  row.rows_scanned = *rows;
  row.flips_found = *flips;
  row.steered = *steered;
  row.fault_injected = *injected;
  row.fault_as_predicted = *predicted;
  row.key_recovered = *recovered;
  row.ciphertexts_used = static_cast<std::uint32_t>(*cts);
  row.residual_search = static_cast<std::uint32_t>(*residual);
  row.success = *success;
  row.failure_stage = fields[10];
  row.total_time = *time;
  return row;
}

std::string serialize_trial(const TrialRow& row) {
  std::string out;
  const auto field = [&out](const std::string& text) {
    if (!out.empty()) out += ',';
    out += text;
  };
  field(row.template_found ? "1" : "0");
  field(std::to_string(row.rows_scanned));
  field(std::to_string(row.flips_found));
  field(row.steered ? "1" : "0");
  field(row.fault_injected ? "1" : "0");
  field(row.fault_as_predicted ? "1" : "0");
  field(row.key_recovered ? "1" : "0");
  field(std::to_string(row.ciphertexts_used));
  field(std::to_string(row.residual_search));
  field(row.success ? "1" : "0");
  field(row.failure_stage);
  field(std::to_string(row.total_time));
  return out;
}

/// The length of `content`'s durable prefix: everything up to and
/// including the last newline. A trailing fragment with no newline is a
/// torn final line — the crash fsync cannot rule out — and is *not*
/// durable: load_checkpoint ignores it and CheckpointWriter truncates it
/// before appending (so a resumed record never concatenates onto it).
std::size_t durable_prefix(const std::string& content) noexcept {
  const std::size_t last_newline = content.rfind('\n');
  return last_newline == std::string::npos ? 0 : last_newline + 1;
}

/// Append-only, line-fsynced checkpoint writer over io::FileSystem.
/// Every append is durable (synced) before it returns OK, so a kill loses
/// only in-flight points — and every failure now *surfaces*: an append
/// whose write or fsync fails reports an io::Status instead of silently
/// pretending the line hit the disk. Transient failures retry a bounded,
/// deterministic number of times; each retry drops the handle and reopens
/// in append mode, truncating the torn tail first so the re-written line
/// never concatenates onto partial bytes.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(io::FileSystem& fs) : fs_(fs) {}
  ~CheckpointWriter() { close(); }

  io::Status open(const std::string& path, const std::string& sweep_name,
                  std::uint64_t spec_hash, bool append) {
    path_ = path;
    header_ = std::string(kCheckpointMagic) + " sweep=" + sweep_name +
              " spec_hash=" + hex16(spec_hash) + "\n";
    return io::with_retry(io::kDefaultRetryAttempts,
                          [this, append] { return prepare(append); });
  }

  /// Durably log one completed point. Never called concurrently (the
  /// worker pool appends under the run_sweep mutex).
  io::Status append(const PointRecord& record) {
    if (path_.empty()) return io::Status::ok_status();  // Disabled.
    const std::string line = record.serialize() + "\n";
    return io::with_retry(io::kDefaultRetryAttempts, [this, &line] {
      if (!file_) {
        // A previous attempt failed and dropped the handle; reopening in
        // append mode runs the torn-tail truncation, so the retried line
        // lands after the last durable record, not after a fragment.
        const io::Status reopened = prepare(/*append=*/true);
        if (!reopened.ok()) return reopened;
      }
      io::Status status = file_->write(line);
      if (status.ok()) status = file_->sync();
      if (status.ok()) {
        fs_.crash_point("sweep.checkpoint.appended");
        return status;
      }
      // The file may hold a torn prefix of the line; drop the handle so
      // the next attempt (or the next resume) truncates it.
      (void)file_->close();
      file_.reset();
      return status;
    });
  }

  void close() {
    if (!file_) return;
    (void)file_->close();
    file_.reset();
  }

 private:
  /// One open attempt: truncate any torn tail (append mode), then open
  /// the handle via open_handle(). The retry unit of open() and of the
  /// mid-append reopen.
  io::Status prepare(bool append) {
    bool continue_existing = false;
    if (append && fs_.exists(path_)) {
      // Drop a torn final line before appending, mirroring what
      // load_checkpoint just ignored — otherwise the next record would
      // concatenate onto the fragment and corrupt the file for good.
      std::string content;
      const io::Status read = fs_.read_file(path_, &content);
      if (read.ok()) {
        const std::size_t keep = durable_prefix(content);
        if (keep != content.size()) {
          const io::Status truncated = fs_.truncate(path_, keep);
          if (!truncated.ok()) return truncated;
        }
        // A file torn before its header completed holds nothing durable;
        // start it over.
        continue_existing = keep > 0;
      } else if (!read.is_not_found()) {
        return read;
      }
    }
    return open_handle(continue_existing);
  }

  /// (Re)open the handle; a fresh file gets the header, written and
  /// synced before any record may follow it.
  io::Status open_handle(bool continue_existing) {
    io::Status status =
        fs_.open(path_, continue_existing ? io::OpenMode::kAppend
                                          : io::OpenMode::kTruncate,
                 &file_);
    if (!status.ok()) return status;
    if (!continue_existing) {
      status = file_->write(header_);
      if (status.ok()) status = file_->sync();
      if (!status.ok()) {
        (void)file_->close();
        file_.reset();
        return status;
      }
    }
    return io::Status::ok_status();
  }

  io::FileSystem& fs_;
  std::unique_ptr<io::File> file_;
  std::string path_;    ///< Empty until open(): appends are no-ops.
  std::string header_;  ///< The full header line, built once in open().
};

}  // namespace

TrialRow TrialRow::from_report(const attack::CampaignReport& report) {
  TrialRow row;
  row.template_found = report.template_found;
  row.rows_scanned = report.rows_scanned;
  row.flips_found = report.flips_found;
  row.steered = report.steered;
  row.fault_injected = report.fault_injected;
  row.fault_as_predicted = report.fault_as_predicted;
  row.key_recovered = report.key_recovered;
  row.ciphertexts_used = report.ciphertexts_used;
  row.residual_search = report.residual_search;
  row.success = report.success;
  row.failure_stage = report.failure_stage();
  row.total_time = report.total_time;
  return row;
}

std::string PointRecord::serialize() const {
  std::string out = "point " + std::to_string(index) + " " + id + " ";
  for (std::size_t i = 0; i < trials.size(); ++i) {
    if (i > 0) out += ';';
    out += serialize_trial(trials[i]);
  }
  return out;
}

std::optional<PointRecord> PointRecord::parse(const std::string& line,
                                              std::string* error) {
  const auto fail = [&](const std::string& what)
      -> std::optional<PointRecord> {
    set_error(error, what);
    return std::nullopt;
  };

  const auto tokens = split(line, ' ');
  if (tokens.size() != 4 || tokens[0] != "point")
    return fail("malformed record line '" + line + "'");
  const auto index = parse_u64(tokens[1]);
  if (!index) return fail("bad point index '" + tokens[1] + "'");
  PointRecord record;
  record.index = static_cast<std::size_t>(*index);
  record.id = tokens[2];
  if (record.id.empty()) return fail("empty point id");
  for (const std::string& text : split(tokens[3], ';')) {
    const auto trial = parse_trial(text);
    if (!trial) return fail("malformed trial record '" + text + "'");
    record.trials.push_back(*trial);
  }
  return record;
}

std::uint32_t PointRecord::successes() const noexcept {
  std::uint32_t n = 0;
  for (const TrialRow& trial : trials)
    if (trial.success) ++n;
  return n;
}

std::optional<std::vector<PointRecord>> load_checkpoint(
    const std::string& path, const std::string& sweep_name,
    std::uint64_t spec_hash, std::string* error, io::FileSystem* fs_arg) {
  io::FileSystem& fs = fs_arg ? *fs_arg : io::real();

  const auto fail = [&](const std::string& what)
      -> std::optional<std::vector<PointRecord>> {
    set_error(error, path + ": " + what);
    return std::nullopt;
  };

  std::vector<PointRecord> records;
  std::string file_content;
  const io::Status read = io::with_retry(
      io::kDefaultRetryAttempts,
      [&] { return fs.read_file(path, &file_content); });
  // A missing checkpoint is an empty one — nothing completed yet. A file
  // that exists but cannot be read (EIO through the retry budget) is NOT:
  // treating it as empty would silently rerun completed points.
  if (read.is_not_found()) return records;
  if (!read.ok()) return fail(read.message());

  // Only newline-terminated lines are durable; a torn final fragment is
  // the mid-write crash and its point simply reruns (the writer truncates
  // it before appending). Every durable line, by contrast, was fsynced —
  // if one fails to parse that is real corruption, never a crash artifact.
  std::istringstream in(
      file_content.substr(0, durable_prefix(file_content)));
  std::string header;
  if (!std::getline(in, header)) return records;  // Torn before the header.
  const std::string expected = std::string(kCheckpointMagic) + " sweep=" +
                               sweep_name + " spec_hash=" + hex16(spec_hash);
  if (header != expected) {
    if (header.rfind(kCheckpointMagic, 0) != 0)
      return fail("not a sweep checkpoint");
    return fail(
        "checkpoint belongs to a different sweep spec (its spec_hash does "
        "not match; the spec, its seeds or its base scenario changed). "
        "Delete the file to start over.");
  }

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string parse_error;
    const auto record = PointRecord::parse(line, &parse_error);
    if (!record) return fail(parse_error);
    // A point logged twice with the same outcome deduplicates (a requeued
    // job may re-log work it had already made durable); two *different*
    // outcomes for one point mean the file mixes incompatible runs.
    bool duplicate = false;
    for (const PointRecord& seen : records) {
      if (seen.index != record->index) continue;
      if (seen == *record) {
        duplicate = true;
        break;
      }
      return fail("conflicting duplicate records for point " +
                  std::to_string(record->index) +
                  " (same index, different results)");
    }
    if (!duplicate) records.push_back(*record);
  }
  return records;
}

std::optional<SweepResult> run_sweep(const SweepSpec& spec,
                                     const scenario::Registry& registry,
                                     const SweepRunOptions& options,
                                     std::string* error) {
  const auto points = spec.expand(registry, error);
  if (!points) return std::nullopt;
  EXPLFRAME_CHECK(!points->empty());
  const std::uint64_t hash = spec.spec_hash(registry);
  io::FileSystem& fs = options.fs ? *options.fs : io::real();

  const auto fail = [&](const std::string& what)
      -> std::optional<SweepResult> {
    set_error(error, what);
    return std::nullopt;
  };

  // Sharding: this run owns the round-robin subset i % N == shard_index.
  // The partition is a pure function of the expanded point order, so every
  // shard of a grid agrees on who owns what without coordination.
  if (options.shard_count == 0)
    return fail("shard_count must be at least 1");
  if (options.shard_index >= options.shard_count)
    return fail("shard index " + std::to_string(options.shard_index) +
                " is out of range for " +
                std::to_string(options.shard_count) + " shard(s)");
  const bool sharded = options.shard_count > 1;
  const auto owns = [&](std::size_t index) {
    return index % options.shard_count == options.shard_index;
  };
  if (sharded && options.checkpoint_path.empty())
    return fail(
        "a sharded run needs a checkpoint path (the checkpoint is the "
        "shard's output, consumed by merge)");
  if (sharded && (*points).size() < options.shard_count &&
      options.shard_index >= (*points).size())
    return fail("shard " + std::to_string(options.shard_index + 1) + "/" +
                std::to_string(options.shard_count) + " owns none of the " +
                std::to_string((*points).size()) +
                " point(s); use fewer shards");

  // Completed records, indexed by point; resumed ones come pre-filled.
  std::vector<std::optional<PointRecord>> slots(points->size());
  std::size_t resumed = 0;
  if (!options.checkpoint_path.empty() && options.resume) {
    const auto loaded =
        load_checkpoint(options.checkpoint_path, spec.name, hash, error, &fs);
    if (!loaded) return std::nullopt;
    for (const PointRecord& record : *loaded) {
      if (record.index >= points->size() ||
          record.id != (*points)[record.index].id ||
          record.trials.size() != (*points)[record.index].scenario.trials)
        return fail(options.checkpoint_path + ": record for point " +
                    std::to_string(record.index) +
                    " does not match the expanded grid");
      if (!owns(record.index))
        return fail(options.checkpoint_path + ": record for point " +
                    std::to_string(record.index) + " belongs to another " +
                    "shard (this run is shard " +
                    std::to_string(options.shard_index + 1) + "/" +
                    std::to_string(options.shard_count) + ")");
      slots[record.index] = record;
      ++resumed;
    }
  }

  CheckpointWriter writer(fs);
  if (!options.checkpoint_path.empty()) {
    const io::Status opened =
        writer.open(options.checkpoint_path, spec.name, hash, options.resume);
    if (!opened.ok())
      return fail("cannot open checkpoint '" + options.checkpoint_path +
                  "': " + opened.message());
  }

  std::mutex mutex;  // Guards the writer, the slots and the progress hook.
  // The first checkpoint-append failure (after its bounded retries); once
  // set, workers stop stealing groups and the sweep aborts.
  io::Status append_failure;
  if (options.on_point) {
    for (const auto& slot : slots)
      if (slot) options.on_point((*points)[slot->index], *slot, true);
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < slots.size(); ++i)
    if (owns(i) && !slots[i]) pending.push_back(i);

  // determinism: allow(steady-clock) sweep wall_seconds diagnostic, stdout only
  const auto start = std::chrono::steady_clock::now();
  if (!pending.empty()) {
    // Group points that share a templated base: same template-shaping
    // fields (attack::template_key), same master seed, same trial count.
    // A group templates once per trial and forks every member from the
    // snapshot; sharing never changes a reported byte, only wall clock.
    // With sharing off every point is its own group (the bench baseline).
    std::vector<std::vector<std::size_t>> groups;
    if (options.share_templates) {
      std::map<std::string, std::size_t> group_index;
      for (const std::size_t index : pending) {
        const attack::RunnerConfig rc =
            (*points)[index].scenario.runner_config();
        const std::string key =
            attack::template_key(rc.system, rc.campaign) +
            "|seed=" + std::to_string(rc.seed) +
            "|trials=" + std::to_string(rc.trials);
        const auto [it, inserted] = group_index.emplace(key, groups.size());
        if (inserted) groups.emplace_back();
        groups[it->second].push_back(index);
      }
    } else {
      for (const std::size_t index : pending) groups.push_back({index});
    }

    std::uint32_t threads = options.threads;
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    if (threads > groups.size())
      threads = static_cast<std::uint32_t>(groups.size());

    // Work stealing: each worker pulls the next unfinished group; a worker
    // stuck on a slow group never blocks the rest of the grid.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> io_failed{false};
    const auto worker = [&] {
      while (true) {
        // The graceful-stop seam: once `cancel` reads true no further
        // group starts; everything already appended to the checkpoint
        // stays durable, so a later --resume completes byte-identically.
        // A checkpoint-append failure stops the pool the same way: points
        // the sweep cannot make durable must not be treated as done.
        if (options.cancel && options.cancel->load()) return;
        if (io_failed.load()) return;
        const std::size_t slot = next.fetch_add(1);
        if (slot >= groups.size()) return;
        const std::vector<std::size_t>& group = groups[slot];
        std::vector<PointRecord> done(group.size());
        for (std::size_t i = 0; i < group.size(); ++i) {
          done[i].index = group[i];
          done[i].id = (*points)[group[i]].id;
        }
        if (group.size() == 1) {
          // One thread per point: the sweep parallelises across groups, so
          // the inner CampaignRunner runs its trials serially.
          const scenario::ScenarioResult result = scenario::run_scenario(
              (*points)[group[0]].scenario, /*threads_override=*/1);
          for (const attack::CampaignReport& report :
               result.aggregate.reports)
            done[0].trials.push_back(TrialRow::from_report(report));
        } else {
          // Shared-template group: one machine per trial, one templating
          // pass, one snapshot fork per member point.
          const attack::RunnerConfig base =
              (*points)[group[0]].scenario.runner_config();
          std::vector<attack::CampaignConfig> variants;
          variants.reserve(group.size());
          for (const std::size_t index : group)
            variants.push_back(
                (*points)[index].scenario.runner_config().campaign);
          for (std::uint32_t trial = 0; trial < base.trials; ++trial) {
            const std::vector<attack::CampaignReport> reports =
                attack::CampaignRunner::run_trial_group(base, variants,
                                                        trial);
            for (std::size_t i = 0; i < group.size(); ++i)
              done[i].trials.push_back(TrialRow::from_report(reports[i]));
          }
        }

        const std::lock_guard<std::mutex> lock(mutex);
        for (std::size_t i = 0; i < group.size(); ++i) {
          const std::size_t index = group[i];
          const io::Status appended = writer.append(done[i]);
          if (!appended.ok()) {
            // The retries are spent; this point is computed but not
            // durable, so it is NOT completed — drop it (a resume reruns
            // it) and abort the sweep.
            if (append_failure.ok()) append_failure = appended;
            io_failed.store(true);
            return;
          }
          slots[index] = std::move(done[i]);
          if (options.on_point)
            options.on_point((*points)[index], *slots[index], false);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  const std::chrono::duration<double> elapsed =
      // determinism: allow(steady-clock) sweep wall_seconds diagnostic, stdout only
      std::chrono::steady_clock::now() - start;

  writer.close();

  // A persistent checkpoint-append failure aborted the pool. Everything
  // *recorded* is durable, so the checkpoint stays for --resume; the
  // error carries the io::Status taxonomy message (ENOSPC vs EIO).
  if (!append_failure.ok())
    return fail("sweep '" + spec.name + "': cannot write checkpoint '" +
                options.checkpoint_path + "': " + append_failure.message() +
                "; completed points are retained and --resume finishes the "
                "run once the disk recovers");

  // A cancelled run is not a finished run: keep the checkpoint (it holds
  // every completed point, each fsynced) and report the interruption so
  // callers never mistake a partial grid for a result.
  bool incomplete = false;
  for (std::size_t i = 0; i < slots.size(); ++i)
    if (owns(i) && !slots[i]) incomplete = true;
  if (incomplete) {
    EXPLFRAME_CHECK(options.cancel && options.cancel->load());
    return fail("sweep '" + spec.name +
                "' was cancelled before completing; completed points are "
                "retained in the checkpoint and --resume finishes the run");
  }

  // A completed shard keeps its checkpoint: the file is the shard's
  // output artifact, consumed by merge_checkpoints. Removal is cleanup,
  // not correctness — if it fails the leftover file merely resumes to a
  // no-op — so it gets the retry budget and no error path.
  if (!options.checkpoint_path.empty() &&
      options.remove_checkpoint_on_success && !sharded)
    (void)io::with_retry(io::kDefaultRetryAttempts, [&] {
      return fs.remove(options.checkpoint_path);
    });

  SweepResult result;
  result.spec = spec;
  result.points = std::move(*points);
  result.records.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i)
    if (slots[i]) result.records.push_back(std::move(*slots[i]));
  result.resumed_points = resumed;
  result.wall_seconds = elapsed.count();
  result.shard_index = options.shard_index;
  result.shard_count = options.shard_count;
  EXPLFRAME_CHECK(sharded || result.complete());
  return result;
}

std::optional<SweepResult> merge_checkpoints(
    const SweepSpec& spec, const scenario::Registry& registry,
    const std::vector<std::string>& checkpoint_paths, std::string* error,
    io::FileSystem* fs_arg) {
  io::FileSystem& fs = fs_arg ? *fs_arg : io::real();
  const auto points = spec.expand(registry, error);
  if (!points) return std::nullopt;
  const std::uint64_t hash = spec.spec_hash(registry);

  const auto fail = [&](const std::string& what)
      -> std::optional<SweepResult> {
    set_error(error, what);
    return std::nullopt;
  };
  if (checkpoint_paths.empty())
    return fail("sweep '" + spec.name + "': no checkpoint files to merge");

  // One slot per expanded point; remember which file filled it so a
  // conflict names both sides.
  std::vector<std::optional<PointRecord>> slots(points->size());
  std::vector<std::string> sources(points->size());
  for (const std::string& path : checkpoint_paths) {
    // Unlike a resume (where "no checkpoint yet" means "nothing done"),
    // a merge operand the user named must exist — a typo that silently
    // contributed zero records would surface as a confusing
    // missing-points error far from its cause.
    if (!fs.exists(path))
      return fail("cannot read checkpoint '" + path + "'");
    const auto records = load_checkpoint(path, spec.name, hash, error, &fs);
    if (!records) return std::nullopt;
    for (const PointRecord& record : *records) {
      if (record.index >= points->size() ||
          record.id != (*points)[record.index].id ||
          record.trials.size() != (*points)[record.index].scenario.trials)
        return fail(path + ": record for point " +
                    std::to_string(record.index) +
                    " does not match the expanded grid");
      auto& slot = slots[record.index];
      if (!slot) {
        slot = record;
        sources[record.index] = path;
        continue;
      }
      // Overlapping shardings are fine as long as they agree: identical
      // duplicates deduplicate, conflicting ones are corruption.
      if (*slot == record) continue;
      return fail("conflicting records for point " +
                  std::to_string(record.index) + " (" + record.id + "): '" +
                  sources[record.index] + "' and '" + path +
                  "' disagree — the checkpoints mix incompatible runs");
    }
  }

  std::string missing;
  std::size_t missing_count = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i]) continue;
    ++missing_count;
    if (missing_count <= 8) {
      if (!missing.empty()) missing += ", ";
      missing += std::to_string(i) + " (" + (*points)[i].id + ")";
    }
  }
  if (missing_count > 8) missing += ", ...";
  if (missing_count > 0)
    return fail("merge of sweep '" + spec.name + "' is incomplete: " +
                std::to_string(missing_count) + " point(s) missing: " +
                missing + " — run the missing shard(s) or pass their "
                "checkpoints");

  SweepResult result;
  result.spec = spec;
  result.points = std::move(*points);
  result.records.reserve(slots.size());
  for (auto& slot : slots) result.records.push_back(std::move(*slot));
  result.resumed_points = result.records.size();
  return result;
}

}  // namespace explframe::sweep
