#include "sweep/registry.hpp"

#include "scenario/registry.hpp"
#include "support/check.hpp"

namespace explframe::sweep {

void Registry::add(SweepSpec spec) {
  EXPLFRAME_CHECK_MSG(KvFile::valid_key(spec.name),
                      "sweep name must be a valid identifier");
  EXPLFRAME_CHECK_MSG(find(spec.name) == nullptr, "duplicate sweep name");
  std::string error;
  EXPLFRAME_CHECK_MSG(
      spec.expand(scenario::Registry::builtin(), &error).has_value(),
      "builtin sweep must expand against the builtin scenario registry");
  sweeps_.push_back(std::move(spec));
}

namespace {

/// Builtin sweeps are authored as literal `.sweep` documents — the same
/// text a user would put in a file — so the parser is exercised on every
/// start-up and `describe` prints exactly what was registered.
SweepSpec parse_builtin(const char* text) {
  std::string error;
  const auto spec = SweepSpec::from_sweep(text, &error);
  EXPLFRAME_CHECK_MSG(spec.has_value(), "builtin sweep failed to parse");
  return *spec;
}

Registry make_builtin() {
  Registry reg;

  reg.add(parse_builtin(R"(
# Flips-vs-budget: how many hammer activations per row the attack needs.
name = aes-budget-curve
title = AES key-recovery rate vs per-row hammer budget
description = The paper's cost axis: the same single-flip AES campaign under a per-row activation budget swept from far below the weakest cell's disturbance threshold to 2x the stock budget. Below ~25k activations no weak cell can cross its threshold, so templating finds nothing; the curve shows where the success probability turns on and saturates. Seeds are derived per point, modelling independent machine populations at each budget.
paper_ref = SVI (hammer budget discussion, EXP-T4/T8)
base = aes-single-flip
seed_mode = derived
base.trials = 6
base.max_rows = 192
axis.hammer_iterations = 12500:200000:x2
)"));

  reg.add(parse_builtin(R"(
# PFA data complexity on PRESENT: ciphertexts vs recovery rate.
name = present-budget-curve
title = PRESENT key-recovery rate vs ciphertext budget
description = The data-complexity curve for PRESENT-80: with a planted single-bit table fault, how many faulty ciphertexts does persistent fault analysis need before the residual key-schedule search closes? The harvest budget is swept from 125 to 2000 ciphertexts; the 16-byte table window (4 live bits per entry) makes low budgets fail in key recovery rather than templating.
paper_ref = SVI (EXP-T7, data complexity)
base = present-single-flip
seed_mode = derived
base.trials = 6
base.max_rows = 192
axis.ciphertext_budget = 125:2000:x2
)"));

  reg.add(parse_builtin(R"(
# The defence ablation as one paired grid instead of four scenarios.
name = defence-grid
title = Key recovery under each hardware mitigation and module profile
description = The countermeasure grid: every combination of DRAM mitigation (none, TRR, ECC, both) and module weak-cell profile (realistic DDR3 part vs the highly vulnerable part the paper attacks). Seeds are shared across points, so each cell of the grid attacks the same per-trial machines and the table reads as a paired ablation: TRR starves templating, ECC corrects the planted flip on read, and either alone already stops the single-flip attack.
paper_ref = SVII (countermeasure discussion, EXP-D1)
base = defence-none
seed_mode = shared
base.trials = 6
axis.defence = none,trr,ecc,trr+ecc
axis.weak_cells = realistic,vulnerable
)"));

  reg.add(parse_builtin(R"(
# Templating cost frontier: row budget x polarity coverage.
name = templating-frontier
title = Templating success frontier: row budget x polarity coverage
description = What the templating phase buys per unit of work: the attacker's candidate-row budget swept 16..256 rows, crossed with whether the scan hammers both data polarities or only one. Shared seeds pair every cell against the same machines, so the frontier isolates the budget effect: more rows monotonically help, and single-polarity scans need roughly twice the rows to find a usable onto-table flip.
paper_ref = SVI (templating cost discussion, EXP-T8)
base = templating-budget-tight
seed_mode = shared
base.trials = 6
axis.max_rows = 16,32,64,128,256
axis.both_polarities = false,true
)"));

  return reg;
}

}  // namespace

const SweepSpec* Registry::find(const std::string& name) const noexcept {
  for (const SweepSpec& spec : sweeps_)
    if (spec.name == name) return &spec;
  return nullptr;
}

const Registry& Registry::builtin() {
  static const Registry registry = make_builtin();
  return registry;
}

const SweepSpec& builtin_sweep(const std::string& name) {
  const SweepSpec* spec = Registry::builtin().find(name);
  EXPLFRAME_CHECK_MSG(spec != nullptr, "no such built-in sweep");
  return *spec;
}

}  // namespace explframe::sweep
