// sweep::Registry — the named ablation-grid catalogue.
//
// The sweep-level mirror of scenario::Registry: Registry::builtin() holds
// the paper's headline ablations as declarative SweepSpec entries, and
// `explsim sweep` (list/describe/run/all) looks grids up here. Adding an
// ablation is one registration; it immediately appears in `explsim sweep
// list` and the generated docs/results/sweeps/ pages, and registration
// CHECK-verifies that the spec expands cleanly against the builtin
// scenario registry (a builtin sweep must be runnable).
#pragma once

#include <string>
#include <vector>

#include "sweep/spec.hpp"

namespace explframe::sweep {

/// An ordered, name-unique collection of sweep specs.
class Registry {
 public:
  /// The built-in catalogue (built once, immutable, program lifetime).
  static const Registry& builtin();

  /// Register `spec`; the name must be unique and the spec must expand
  /// against the builtin scenario registry (CHECK-enforced).
  void add(SweepSpec spec);

  /// Sweep named `name`, or nullptr.
  const SweepSpec* find(const std::string& name) const noexcept;

  /// All sweeps, in registration order (== handbook order).
  const std::vector<SweepSpec>& all() const noexcept { return sweeps_; }

 private:
  std::vector<SweepSpec> sweeps_;
};

/// Convenience: the built-in sweep `name`; CHECK-fails if absent (for
/// benches whose sweep is part of their contract).
const SweepSpec& builtin_sweep(const std::string& name);

}  // namespace explframe::sweep
