// The complete ExplFrame attack, narrated phase by phase.
//
//   $ ./example_explframe_attack [seed] [--cipher=aes|present]
//
// Template -> plant -> steer -> re-hammer -> harvest -> PFA, as a single
// trial of the registered headline scenario (`aes-single-flip` or
// `present-single-flip`) — the machine, budgets and cipher all come from
// the scenario registry; only the seed is a command-line knob. The attacker
// never reads pagemap. Ground-truth lines (marked [truth]) come from the
// harness, not the attacker's view.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "attack/campaign_runner.hpp"
#include "scenario/registry.hpp"
#include "support/log.hpp"

using namespace explframe;
using namespace explframe::attack;

namespace {
void print_key(const char* label, const std::vector<std::uint8_t>& key) {
  std::printf("%s", label);
  for (const auto b : key) std::printf("%02x", b);
  std::printf("\n");
}
}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 3;
  crypto::CipherKind cipher = crypto::CipherKind::kAes128;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cipher=present") {
      cipher = crypto::CipherKind::kPresent80;
    } else if (arg == "--cipher=aes") {
      cipher = crypto::CipherKind::kAes128;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "unknown option %s\nusage: %s [seed] "
                   "[--cipher=aes|present]\n",
                   arg.c_str(), argv[0]);
      return 2;
    } else {
      seed = std::strtoull(arg.c_str(), nullptr, 10);
    }
  }
  set_log_level(LogLevel::kInfo);

  // One trial of the registered headline scenario for the chosen cipher
  // (PRESENT's 16-byte window comes with a denser weak-cell profile there).
  scenario::Scenario s = scenario::builtin_scenario(
      cipher == crypto::CipherKind::kPresent80 ? "present-single-flip"
                                               : "aes-single-flip");
  s.seed = seed;
  s.trials = 1;

  std::printf("scenario: %s (seed %llu, cipher %s)\n", s.name.c_str(),
              (unsigned long long)seed, crypto::to_string(cipher));
  std::printf("\nrunning ExplFrame...\n\n");

  const CampaignReport r =
      CampaignRunner::run_trial(s.runner_config(), /*trial=*/0);
  print_key("[truth] victim key: ", r.victim_key);

  std::printf("phase 1  TEMPLATE: %s (%llu rows scanned, %llu flips)\n",
              r.template_found ? "usable flip found" : "FAILED",
              (unsigned long long)r.rows_scanned,
              (unsigned long long)r.flips_found);
  if (r.template_found) {
    std::printf("         flip @ page offset 0x%x bit %d -> corrupts "
                "table[0x%02x] with mask 0x%02x\n",
                r.chosen.offset, r.chosen.bit, r.table_index, r.fault_mask);
  }
  std::printf("phase 2  PLANT:    munmap'ed the vulnerable page "
              "([truth] pfn %llu now at pcp head)\n",
              (unsigned long long)r.planted_pfn);
  std::printf("phase 3  STEER:    victim installed its crypto context "
              "([truth] table page pfn %llu) -> %s\n",
              (unsigned long long)r.victim_table_pfn,
              r.steered ? "STEERED onto the planted frame" : "missed");
  std::printf("phase 4  HAMMER:   re-hammered the stored aggressors -> "
              "table %s%s\n",
              r.fault_injected ? "corrupted" : "intact",
              r.fault_as_predicted ? " (exactly the templated bit)" : "");
  std::printf("phase 5+6 HARVEST+ANALYSE: %s after %u ciphertexts",
              r.key_recovered ? "unique key" : "no unique key",
              r.ciphertexts_used);
  if (r.residual_search > 0)
    std::printf(" (+ %u-candidate residual search)", r.residual_search);
  std::printf("\n");
  if (r.key_recovered) print_key("         recovered key:     ", r.recovered_key);
  std::printf("\nresult: %s (failure stage: %s), %.2f simulated seconds\n",
              r.success ? "SUCCESS — full key recovered" : "attack failed",
              r.failure_stage().c_str(),
              static_cast<double>(r.total_time) / kSecond);
  return r.success ? 0 : 1;
}
