// The complete ExplFrame attack, narrated phase by phase.
//
//   $ ./examples/explframe_attack [seed]
//
// Template -> plant -> steer -> re-hammer -> harvest -> PFA. The victim is
// an AES-128 service whose S-box lives in its own pages; the attacker never
// reads pagemap. Ground-truth lines (marked [truth]) come from the harness,
// not the attacker's view.
#include <cstdio>
#include <cstdlib>

#include "attack/explframe.hpp"
#include "support/log.hpp"

using namespace explframe;
using namespace explframe::attack;

namespace {
void print_key(const char* label, const crypto::Aes128::Key& key) {
  std::printf("%s", label);
  for (const auto b : key) std::printf("%02x", b);
  std::printf("\n");
}
}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  set_log_level(LogLevel::kInfo);

  kernel::SystemConfig sys_cfg;
  sys_cfg.memory_bytes = 64 * kMiB;
  sys_cfg.num_cpus = 2;
  sys_cfg.dram.weak_cells.cells_per_mib = 128.0;
  sys_cfg.dram.weak_cells.threshold_log_mean = 10.4;
  sys_cfg.dram.weak_cells.threshold_max = 60'000;
  sys_cfg.dram.data_pattern_sensitivity = false;
  sys_cfg.seed = seed;
  kernel::System sys(sys_cfg);

  ExplFrameConfig cfg;
  cfg.templating.buffer_bytes = 4 * kMiB;
  cfg.templating.hammer_iterations = 100'000;
  Rng rng(seed * 31 + 7);
  rng.fill_bytes(cfg.victim.key);
  cfg.ciphertext_budget = 8000;
  cfg.seed = seed;

  std::printf("machine: %s, seed %llu\n",
              sys.dram().geometry().describe().c_str(),
              (unsigned long long)seed);
  print_key("[truth] victim AES-128 key: ", cfg.victim.key);
  std::printf("\nrunning ExplFrame...\n\n");

  ExplFrameAttack attack(sys, cfg);
  const auto r = attack.run();

  std::printf("phase 1  TEMPLATE: %s (%llu rows scanned, %llu flips)\n",
              r.template_found ? "usable flip found" : "FAILED",
              (unsigned long long)r.rows_scanned,
              (unsigned long long)r.flips_found);
  if (r.template_found) {
    std::printf("         flip @ page offset 0x%x bit %d -> corrupts "
                "S[0x%02x] with mask 0x%02x\n",
                r.chosen.offset, r.chosen.bit, r.sbox_index, r.fault_mask);
  }
  std::printf("phase 2  PLANT:    munmap'ed the vulnerable page "
              "([truth] pfn %llu now at pcp head)\n",
              (unsigned long long)r.planted_pfn);
  std::printf("phase 3  STEER:    victim installed its crypto context "
              "([truth] table page pfn %llu) -> %s\n",
              (unsigned long long)r.victim_table_pfn,
              r.steered ? "STEERED onto the planted frame" : "missed");
  std::printf("phase 4  HAMMER:   re-hammered the stored aggressors -> "
              "S-box %s%s\n",
              r.fault_injected ? "corrupted" : "intact",
              r.fault_as_predicted ? " (exactly the templated bit)" : "");
  std::printf("phase 5+6 HARVEST+PFA: %s after %u ciphertexts\n",
              r.key_recovered ? "unique key" : "no unique key",
              r.ciphertexts_used);
  if (r.key_recovered) print_key("         recovered key:     ", r.recovered_key);
  std::printf("\nresult: %s (failure stage: %s), %.2f simulated seconds\n",
              r.success ? "SUCCESS — full AES-128 key recovered"
                        : "attack failed",
              r.failure_stage().c_str(),
              static_cast<double>(r.total_time) / kSecond);
  return r.success ? 0 : 1;
}
