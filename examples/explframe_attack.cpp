// The complete ExplFrame attack, narrated phase by phase.
//
//   $ ./example_explframe_attack [seed] [--cipher=aes|present]
//
// Template -> plant -> steer -> re-hammer -> harvest -> PFA, through the
// unified Campaign API: the same driver runs the AES-128 and PRESENT-80
// victims; the cipher is a command-line switch. The attacker never reads
// pagemap. Ground-truth lines (marked [truth]) come from the harness, not
// the attacker's view.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "attack/campaign.hpp"
#include "support/log.hpp"

using namespace explframe;
using namespace explframe::attack;

namespace {
void print_key(const char* label, const std::vector<std::uint8_t>& key) {
  std::printf("%s", label);
  for (const auto b : key) std::printf("%02x", b);
  std::printf("\n");
}
}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 3;
  crypto::CipherKind cipher = crypto::CipherKind::kAes128;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cipher=present") {
      cipher = crypto::CipherKind::kPresent80;
    } else if (arg == "--cipher=aes") {
      cipher = crypto::CipherKind::kAes128;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "unknown option %s\nusage: %s [seed] "
                   "[--cipher=aes|present]\n",
                   arg.c_str(), argv[0]);
      return 2;
    } else {
      seed = std::strtoull(arg.c_str(), nullptr, 10);
    }
  }
  set_log_level(LogLevel::kInfo);

  kernel::SystemConfig sys_cfg;
  sys_cfg.memory_bytes = 64 * kMiB;
  sys_cfg.num_cpus = 2;
  // PRESENT's 16-byte window needs a denser weak-cell population.
  sys_cfg.dram.weak_cells.cells_per_mib =
      cipher == crypto::CipherKind::kPresent80 ? 512.0 : 128.0;
  sys_cfg.dram.weak_cells.threshold_log_mean = 10.4;
  sys_cfg.dram.weak_cells.threshold_max = 60'000;
  sys_cfg.dram.data_pattern_sensitivity = false;
  sys_cfg.seed = seed;
  kernel::System sys(sys_cfg);

  CampaignConfig cfg;
  cfg.cipher = cipher;
  cfg.templating.buffer_bytes = 4 * kMiB;
  cfg.templating.hammer_iterations = 100'000;
  cfg.ciphertext_budget =
      cipher == crypto::CipherKind::kPresent80 ? 2000 : 8000;
  cfg.seed = seed;

  std::printf("machine: %s, seed %llu, cipher %s\n",
              sys.dram().geometry().describe().c_str(),
              (unsigned long long)seed, crypto::to_string(cipher));
  std::printf("\nrunning ExplFrame...\n\n");

  ExplFrameCampaign attack(sys, cfg);
  const CampaignReport r = attack.run();
  print_key("[truth] victim key: ", r.victim_key);

  std::printf("phase 1  TEMPLATE: %s (%llu rows scanned, %llu flips)\n",
              r.template_found ? "usable flip found" : "FAILED",
              (unsigned long long)r.rows_scanned,
              (unsigned long long)r.flips_found);
  if (r.template_found) {
    std::printf("         flip @ page offset 0x%x bit %d -> corrupts "
                "table[0x%02x] with mask 0x%02x\n",
                r.chosen.offset, r.chosen.bit, r.table_index, r.fault_mask);
  }
  std::printf("phase 2  PLANT:    munmap'ed the vulnerable page "
              "([truth] pfn %llu now at pcp head)\n",
              (unsigned long long)r.planted_pfn);
  std::printf("phase 3  STEER:    victim installed its crypto context "
              "([truth] table page pfn %llu) -> %s\n",
              (unsigned long long)r.victim_table_pfn,
              r.steered ? "STEERED onto the planted frame" : "missed");
  std::printf("phase 4  HAMMER:   re-hammered the stored aggressors -> "
              "table %s%s\n",
              r.fault_injected ? "corrupted" : "intact",
              r.fault_as_predicted ? " (exactly the templated bit)" : "");
  std::printf("phase 5+6 HARVEST+ANALYSE: %s after %u ciphertexts",
              r.key_recovered ? "unique key" : "no unique key",
              r.ciphertexts_used);
  if (r.residual_search > 0)
    std::printf(" (+ %u-candidate residual search)", r.residual_search);
  std::printf("\n");
  if (r.key_recovered) print_key("         recovered key:     ", r.recovered_key);
  std::printf("\nresult: %s (failure stage: %s), %.2f simulated seconds\n",
              r.success ? "SUCCESS — full key recovered" : "attack failed",
              r.failure_stage().c_str(),
              static_cast<double>(r.total_time) / kSecond);
  return r.success ? 0 : 1;
}
