// Memory templating from user level (§VI of the paper).
//
//   $ ./examples/rowhammer_templating [seed]
//
// The attacker mmaps a buffer, discovers the same-bank row stride purely by
// timing, double-side hammers each candidate row and records which of her
// own pages flip — no pagemap, no privileges, virtual addresses only.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "attack/templating.hpp"
#include "support/table.hpp"

using namespace explframe;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  kernel::SystemConfig config;
  config.memory_bytes = 64 * kMiB;
  config.num_cpus = 1;
  // A vulnerable DDR3 module (dense weak cells, moderate thresholds).
  config.dram.weak_cells.cells_per_mib = 64.0;
  config.dram.weak_cells.threshold_log_mean = 10.4;
  config.dram.weak_cells.threshold_max = 60'000;
  config.seed = seed;
  kernel::System sys(config);

  kernel::Task& attacker = sys.spawn("attacker", 0);

  attack::TemplateConfig tc;
  tc.buffer_bytes = 4 * kMiB;
  tc.hammer_iterations = 120'000;
  tc.both_polarities = true;
  attack::Templater templater(sys, attacker, tc);

  templater.allocate_buffer();
  std::printf("buffer: %llu pages at VA 0x%llx\n",
              (unsigned long long)templater.buffer_pages(),
              (unsigned long long)templater.buffer_va());
  std::printf("timing-discovered same-bank row stride: %llu KiB\n",
              (unsigned long long)(templater.row_stride() / kKiB));

  const auto report = templater.scan();
  std::printf("scanned %llu rows (%llu skipped by the bank timing check), "
              "found %zu flips in %llu pages, %.1f simulated seconds\n\n",
              (unsigned long long)report.rows_scanned,
              (unsigned long long)report.rows_skipped_timing,
              report.flips.size(),
              (unsigned long long)report.pages_with_flips,
              static_cast<double>(report.elapsed) / kSecond);

  Table t({"page VA", "offset", "bit", "direction", "aggressor VAs"});
  std::size_t shown = 0;
  for (const auto& f : report.flips) {
    if (++shown > 16) break;
    char va[32], off[16], aggs[64];
    std::snprintf(va, sizeof va, "0x%llx", (unsigned long long)f.page_va);
    std::snprintf(off, sizeof off, "0x%x", f.offset);
    std::snprintf(aggs, sizeof aggs, "0x%llx / 0x%llx",
                  (unsigned long long)f.aggressor_lo,
                  (unsigned long long)f.aggressor_hi);
    t.row(va, off, static_cast<int>(f.bit), f.to_one ? "0->1" : "1->0", aggs);
  }
  t.print(std::cout);
  if (report.flips.size() > 16)
    std::printf("(+%zu more)\n", report.flips.size() - 16);

  // Verify reproducibility of the first flip, as the attack will rely on.
  if (!report.flips.empty()) {
    const auto& f = report.flips.front();
    const std::uint8_t charged = f.to_one ? 0x00 : 0xFF;
    sys.mem_write(attacker, f.page_va + f.offset, {&charged, 1});
    sys.dram().refresh_now();
    templater.hammer_aggressors(f);
    std::uint8_t now = 0;
    sys.mem_read(attacker, f.page_va + f.offset, {&now, 1});
    const bool again = (((now >> f.bit) & 1u) != 0) == f.to_one;
    std::printf("\nre-hammering the first flip's aggressors: flip %s\n",
                again ? "REPRODUCED (the property ExplFrame exploits)"
                      : "did not reproduce");
  }
  return 0;
}
