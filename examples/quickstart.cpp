// Quickstart: the page-frame-cache property the whole attack rests on,
// in ~40 lines of the public API.
//
//   $ ./examples/quickstart
//
// A process releases one page frame; the very next small allocation on the
// same CPU receives the same frame (LIFO per-CPU page frame cache). On a
// different CPU it does not.
#include <cstdio>

#include "kernel/system.hpp"

using namespace explframe;

int main() {
  kernel::SystemConfig config;
  config.memory_bytes = 64 * kMiB;
  config.num_cpus = 2;
  config.dram.weak_cells.cells_per_mib = 0.0;  // healthy DRAM for this demo
  kernel::System sys(config);

  kernel::Task& releaser = sys.spawn("releaser", /*cpu=*/0);
  kernel::Task& same_cpu = sys.spawn("same-cpu", /*cpu=*/0);
  kernel::Task& other_cpu = sys.spawn("other-cpu", /*cpu=*/1);

  // Warm every process (fault in one page) so page-table allocations do not
  // interleave with the demonstration below.
  for (kernel::Task* t : {&releaser, &same_cpu, &other_cpu}) {
    const vm::VirtAddr w = sys.sys_mmap(*t, kPageSize);
    const std::uint8_t b = 1;
    sys.mem_write(*t, w, {&b, 1});
  }

  // mmap alone allocates nothing: frames appear on first touch.
  const vm::VirtAddr va = sys.sys_mmap(releaser, 4 * kPageSize);
  std::printf("after mmap:  mapped pages = %llu (demand paging)\n",
              (unsigned long long)releaser.space().page_table().mapped_pages());
  for (int p = 0; p < 4; ++p) {
    const std::uint8_t b = 0xAB;
    sys.mem_write(releaser, va + p * kPageSize, {&b, 1});
  }
  std::printf("after touch: mapped pages = %llu\n",
              (unsigned long long)releaser.space().page_table().mapped_pages());

  const mm::Pfn released = sys.translate(releaser, va + kPageSize);
  sys.sys_munmap(releaser, va + kPageSize, kPageSize);
  std::printf("released frame pfn %llu into cpu 0's page frame cache\n",
              (unsigned long long)released);

  // Same CPU: the released frame comes right back.
  const vm::VirtAddr vs = sys.sys_mmap(same_cpu, kPageSize);
  const std::uint8_t b = 2;
  sys.mem_write(same_cpu, vs, {&b, 1});
  std::printf("same-cpu allocation got pfn %llu  -> %s\n",
              (unsigned long long)sys.translate(same_cpu, vs),
              sys.translate(same_cpu, vs) == released ? "SAME FRAME"
                                                      : "different frame");

  // Different CPU: separate cache, different frame.
  const vm::VirtAddr vo = sys.sys_mmap(other_cpu, kPageSize);
  sys.mem_write(other_cpu, vo, {&b, 1});
  std::printf("other-cpu allocation got pfn %llu -> %s\n",
              (unsigned long long)sys.translate(other_cpu, vo),
              sys.translate(other_cpu, vo) == released ? "SAME FRAME"
                                                       : "different frame");

  // The unprivileged view: pagemap hides PFNs (Linux >= 4.0).
  const auto entry = sys.sys_pagemap(same_cpu, vs, /*cap_sys_admin=*/false);
  std::printf("unprivileged pagemap read: present=%d pfn=%llu (hidden)\n",
              entry.present, (unsigned long long)entry.pfn);
  return 0;
}
