// Quickstart: one end-to-end ExplFrame attack, driven entirely by the
// scenario registry — the same configuration `explsim run quickstart` uses.
//
//   $ ./example_quickstart
//
// Everything (machine, cipher, budgets, seed) comes from the registered
// `quickstart` scenario; swapping experiments is a name change. To tweak a
// knob without recompiling: `explsim describe quickstart --scn > my.scn`,
// edit, `explsim run my.scn`.
#include <cstdio>

#include "scenario/registry.hpp"
#include "scenario/report.hpp"

using namespace explframe;

int main() {
  const scenario::Scenario& s = scenario::builtin_scenario("quickstart");
  std::printf("scenario: %s — %s\n\n", s.name.c_str(), s.title.c_str());

  const scenario::ScenarioResult result = scenario::run_scenario(s);
  const attack::CampaignReport& r = result.aggregate.reports.front();

  std::printf("cipher: %s\n", crypto::to_string(r.cipher));
  std::printf("failure stage: %s\n", r.failure_stage().c_str());
  if (r.success) {
    std::printf("recovered the victim key from %u faulty ciphertexts: ",
                r.ciphertexts_used);
    for (const auto b : r.recovered_key) std::printf("%02x", b);
    std::printf("\n");
  }
  return r.success ? 0 : 1;
}
