// Quickstart: one end-to-end ExplFrame attack through the Campaign API —
// pick a simulated machine, pick a cipher, run.
//
//   $ ./example_quickstart
//
// Everything the old hand-wired version spelled out (spawn attacker, build
// victim, template, plant, steer, hammer, harvest, analyse) is now driven
// by one CampaignConfig; swapping AES-128 for PRESENT-80 is one enum.
#include <cstdio>

#include "attack/campaign.hpp"

using namespace explframe;

int main() {
  kernel::SystemConfig machine;  // a small, Rowhammer-vulnerable DDR3 box
  machine.memory_bytes = 64 * kMiB;
  machine.dram.weak_cells.cells_per_mib = 128.0;
  machine.dram.weak_cells.threshold_log_mean = 10.4;
  machine.dram.weak_cells.threshold_max = 60'000;
  machine.dram.data_pattern_sensitivity = false;
  machine.seed = 3;
  kernel::System sys(machine);

  attack::CampaignConfig cfg;
  cfg.cipher = crypto::CipherKind::kAes128;  // or kPresent80 — same pipeline
  cfg.templating.buffer_bytes = 4 * kMiB;
  cfg.templating.hammer_iterations = 100'000;
  cfg.ciphertext_budget = 8000;
  cfg.seed = 3;  // victim key, templating and plaintexts derive from this

  const attack::CampaignReport r = attack::ExplFrameCampaign(sys, cfg).run();

  std::printf("cipher: %s\n", crypto::to_string(r.cipher));
  std::printf("failure stage: %s\n", r.failure_stage().c_str());
  if (r.success) {
    std::printf("recovered the victim key from %u faulty ciphertexts: ",
                r.ciphertexts_used);
    for (const auto b : r.recovered_key) std::printf("%02x", b);
    std::printf("\n");
  }
  return r.success ? 0 : 1;
}
