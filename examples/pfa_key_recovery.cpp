// Persistent Fault Analysis in isolation (paper ref [12]), through the
// fault::Analysis interface.
//
//   $ ./example_pfa_key_recovery
//
// Injects one single-bit S-box fault, collects ciphertexts of random
// unknown plaintexts, and watches the key space collapse — the SAME loop
// runs AES-128 (256-entry table, ~2300 ciphertexts) and PRESENT-80
// (16-nibble table, ~100 ciphertexts + a 2^16 residual search); only the
// oracle and the FaultModel differ.
#include <algorithm>
#include <cstdio>
#include <functional>

#include "crypto/aes128.hpp"
#include "crypto/present80.hpp"
#include "crypto/table_cipher.hpp"
#include "fault/analysis.hpp"
#include "fault/injection.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

using namespace explframe;
using namespace explframe::crypto;
using namespace explframe::fault;

namespace {

/// Drive one Analysis engine against a faulty-ciphertext oracle until the
/// key is unique (or the budget runs out). Returns the recovered key bytes.
std::optional<std::vector<std::uint8_t>> collapse_keyspace(
    Analysis& analysis, std::size_t budget, std::size_t step,
    const std::function<std::vector<std::uint8_t>()>& next_ciphertext) {
  std::printf("\n%s:\n%12s  %s\n", analysis.name(), "ciphertexts",
              "log2(remaining key space)");
  while (analysis.ciphertext_count() < budget) {
    for (std::size_t i = 0; i < step; ++i)
      analysis.add_ciphertext(next_ciphertext());
    std::printf("%12zu  %.1f\n", analysis.ciphertext_count(),
                analysis.remaining_keyspace_log2());
    if (auto key = analysis.recover_key()) return key;
  }
  return std::nullopt;
}

void print_key(const char* label, const std::vector<std::uint8_t>& key) {
  std::printf("%s", label);
  for (const auto b : key) std::printf("%02x", b);
  std::printf("\n");
}

}  // namespace

int main() {
  Rng rng(2020);

  // ---------------- AES-128 ----------------
  Aes128::Key key;
  rng.fill_bytes(key);
  const auto rk = Aes128::expand_key(key);
  auto table = Aes128::sbox();
  const SboxByteFault fault{0x42, 0x08};
  const auto [v, v_new] = apply_fault(table, fault);
  std::printf("AES-128: injected persistent fault %s (S-box output 0x%02x "
              "vanished, 0x%02x doubled)\n",
              describe(fault).c_str(), v, v_new);

  const auto aes_analysis =
      make_analysis(AnalysisKind::kPfaMissingValue,
                    cipher_for(CipherKind::kAes128),
                    FaultModel{fault.index, fault.mask, v, v_new});
  const auto aes_key = collapse_keyspace(*aes_analysis, 8000, 250, [&] {
    Aes128::Block pt;
    rng.fill_bytes(pt);
    const Aes128::Block ct = Aes128::encrypt_with_sbox(pt, rk, table);
    return std::vector<std::uint8_t>(ct.begin(), ct.end());
  });
  if (!aes_key ||
      !std::equal(aes_key->begin(), aes_key->end(), key.begin(), key.end())) {
    std::printf("AES key recovery failed\n");
    return 1;
  }
  print_key("recovered AES-128 master key: ", *aes_key);

  // ---------------- PRESENT-80 ----------------
  Present80::Key pkey;
  rng.fill_bytes(pkey);
  const auto prk = Present80::expand_key(pkey);
  auto ptable = Present80::sbox();
  const SboxByteFault pfault{0x5, 0x2};
  const auto [pv, pv_new] = apply_fault(ptable, pfault);
  std::printf("\nPRESENT-80: injected persistent fault S[0x5] ^= 0x2\n");

  const auto present_oracle = [&](std::uint64_t pt) {
    const auto ct = u64_to_le_bytes(Present80::encrypt_with_sbox(pt, prk, ptable));
    return std::vector<std::uint8_t>(ct.begin(), ct.end());
  };
  const auto present_analysis =
      make_analysis(AnalysisKind::kPfaMissingValue,
                    cipher_for(CipherKind::kPresent80),
                    FaultModel{pfault.index, pfault.mask, pv, pv_new});
  // One known plaintext/ciphertext pair for the residual search.
  const std::uint64_t known_pt = rng.next();
  present_analysis->set_known_pair(u64_to_le_bytes(known_pt),
                                   present_oracle(known_pt));

  const auto present_key = collapse_keyspace(
      *present_analysis, 2000, 25, [&] { return present_oracle(rng.next()); });
  if (!present_key || !std::equal(present_key->begin(), present_key->end(),
                                  pkey.begin(), pkey.end())) {
    std::printf("PRESENT key recovery failed\n");
    return 1;
  }
  std::printf("residual search tried %u of 65536 candidates\n",
              present_analysis->residual_search());
  print_key("recovered PRESENT-80 master key: ", *present_key);
  return 0;
}
