// Persistent Fault Analysis in isolation (paper ref [12]).
//
//   $ ./examples/pfa_key_recovery
//
// Injects one single-bit S-box fault, collects ciphertexts of random
// unknown plaintexts, and watches the AES-128 key space collapse; then does
// the same for PRESENT-80 (16-nibble S-box -> ~100 ciphertexts + a 2^16
// residual search).
#include <cstdio>

#include "crypto/present80.hpp"
#include "fault/injection.hpp"
#include "fault/pfa_aes.hpp"
#include "fault/pfa_present.hpp"
#include "support/rng.hpp"

using namespace explframe;
using namespace explframe::crypto;
using namespace explframe::fault;

int main() {
  Rng rng(2020);

  // ---------------- AES-128 ----------------
  Aes128::Key key;
  rng.fill_bytes(key);
  const auto rk = Aes128::expand_key(key);
  auto table = Aes128::sbox();
  const SboxByteFault fault{0x42, 0x08};
  const auto [v, v_new] = apply_fault(table, fault);
  std::printf("AES-128: injected persistent fault %s (S-box output 0x%02x "
              "vanished, 0x%02x doubled)\n",
              describe(fault).c_str(), v, v_new);

  AesPfa pfa;
  std::printf("\n%12s  %s\n", "ciphertexts", "log2(remaining K10 key space)");
  std::size_t used = 0;
  while (used < 8000) {
    for (int i = 0; i < 250; ++i) {
      Aes128::Block pt;
      rng.fill_bytes(pt);
      pfa.add_ciphertext(Aes128::encrypt_with_sbox(pt, rk, table));
    }
    used += 250;
    const double bits =
        pfa.remaining_keyspace_log2(PfaStrategy::kMissingValue, v, v_new);
    std::printf("%12zu  %.1f\n", used, bits);
    if (bits == 0.0) break;
  }
  const auto recovered =
      pfa.recover_master_key(PfaStrategy::kMissingValue, v, v_new);
  if (recovered && *recovered == key) {
    std::printf("\nrecovered master key from %zu ciphertexts: ", used);
    for (const auto b : *recovered) std::printf("%02x", b);
    std::printf("  == victim key\n");
  } else {
    std::printf("\nkey recovery failed\n");
    return 1;
  }

  // ---------------- PRESENT-80 ----------------
  Present80::Key pkey;
  rng.fill_bytes(pkey);
  const auto prk = Present80::expand_key(pkey);
  auto ptable = Present80::sbox();
  const SboxByteFault pfault{0x5, 0x2};
  const auto [pv, pv_new] = apply_fault(ptable, pfault);
  (void)pv_new;
  std::printf("\nPRESENT-80: injected persistent fault S[0x5] ^= 0x2\n");

  PresentPfa ppfa;
  const std::uint64_t known_pt = rng.next();
  const std::uint64_t known_ct =
      Present80::encrypt_with_sbox(known_pt, prk, ptable);
  std::size_t pused = 0;
  while (pused < 2000) {
    for (int i = 0; i < 25; ++i)
      ppfa.add_ciphertext(
          Present80::encrypt_with_sbox(rng.next(), prk, ptable));
    pused += 25;
    if (ppfa.recover_k32(pv)) break;
  }
  std::printf("last round key K32 pinned after %zu ciphertexts\n", pused);
  const auto presult =
      ppfa.recover_master_key(pv, known_pt, known_ct, ptable);
  if (presult && presult->key == pkey) {
    std::printf("master key recovered after a %u-candidate residual search "
                "(<= 2^16): ",
                presult->search_tried);
    for (const auto b : presult->key) std::printf("%02x", b);
    std::printf("\n");
    return 0;
  }
  std::printf("PRESENT key recovery failed\n");
  return 1;
}
