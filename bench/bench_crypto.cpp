// Crypto micro-benchmarks (supporting data): byte-wise vs T-table AES-128
// and PRESENT-80 throughput, plus the PFA analysis cost itself. Not a paper
// table — included so the victim-service modelling choices are grounded.
#include <benchmark/benchmark.h>

#include "crypto/aes128.hpp"
#include "crypto/aes128_ttable.hpp"
#include "crypto/present80.hpp"
#include "fault/pfa_aes.hpp"
#include "support/rng.hpp"

namespace {

using namespace explframe;
using namespace explframe::crypto;

void BM_Aes128Bytewise(benchmark::State& state) {
  Rng rng(1);
  Aes128::Key key;
  Aes128::Block pt;
  rng.fill_bytes(key);
  rng.fill_bytes(pt);
  const auto rk = Aes128::expand_key(key);
  for (auto _ : state) {
    pt = Aes128::encrypt(pt, rk);
    benchmark::DoNotOptimize(pt);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128Bytewise);

void BM_Aes128TTable(benchmark::State& state) {
  Rng rng(2);
  Aes128::Key key;
  Aes128::Block pt;
  rng.fill_bytes(key);
  rng.fill_bytes(pt);
  const auto rk = Aes128::expand_key(key);
  for (auto _ : state) {
    pt = Aes128T::encrypt(pt, rk);
    benchmark::DoNotOptimize(pt);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128TTable);

void BM_Present80(benchmark::State& state) {
  Rng rng(3);
  Present80::Key key;
  rng.fill_bytes(key);
  const auto rk = Present80::expand_key(key);
  std::uint64_t block = rng.next();
  for (auto _ : state) {
    block = Present80::encrypt(block, rk);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_Present80);

void BM_AesKeyExpansion(benchmark::State& state) {
  Rng rng(4);
  Aes128::Key key;
  rng.fill_bytes(key);
  for (auto _ : state) {
    auto rk = Aes128::expand_key(key);
    benchmark::DoNotOptimize(rk);
    key[0] ^= 1;
  }
}
BENCHMARK(BM_AesKeyExpansion);

void BM_PfaIngestCiphertext(benchmark::State& state) {
  Rng rng(5);
  fault::AesPfa pfa;
  Aes128::Block c;
  rng.fill_bytes(c);
  for (auto _ : state) {
    pfa.add_ciphertext(c);
    c[0] = static_cast<std::uint8_t>(c[0] + 1);
  }
}
BENCHMARK(BM_PfaIngestCiphertext);

void BM_PfaCandidateExtraction(benchmark::State& state) {
  Rng rng(6);
  fault::AesPfa pfa;
  for (int i = 0; i < 3000; ++i) {
    Aes128::Block c;
    rng.fill_bytes(c);
    pfa.add_ciphertext(c);
  }
  for (auto _ : state) {
    auto cand = pfa.candidates(fault::PfaStrategy::kMissingValue, 0x63, 0x62);
    benchmark::DoNotOptimize(cand);
  }
}
BENCHMARK(BM_PfaCandidateExtraction);

}  // namespace

BENCHMARK_MAIN();
