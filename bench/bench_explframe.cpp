// EXP-T4 — End-to-end ExplFrame vs the spray baseline (the headline
// experiment of the DATE'20 paper).
//
// ExplFrame: template -> plant (munmap) -> steer -> re-hammer -> harvest
// ciphertexts -> PFA key recovery. Baseline: blind unprivileged hammering
// with no frame steering. Reported per phase, with the victim-corruption
// probability contrast and the AES-128 key recovery outcome.
#include <iostream>

#include "attack/explframe.hpp"
#include "attack/spray.hpp"
#include "common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::bench;
using namespace explframe::attack;

namespace {

constexpr std::uint32_t kTrials = 12;

ExplFrameConfig attack_cfg(std::uint64_t seed) {
  ExplFrameConfig cfg;
  cfg.templating.buffer_bytes = 4 * kMiB;
  cfg.templating.hammer_iterations = 100'000;
  cfg.templating.both_polarities = true;
  Rng rng(seed * 7919 + 3);
  rng.fill_bytes(cfg.victim.key);
  cfg.ciphertext_budget = 8000;
  cfg.seed = seed;
  return cfg;
}

void run_explframe() {
  std::cout << "\nExplFrame end-to-end, " << kTrials
            << " independent machines (64 MiB, vulnerable DDR3 module):\n";
  std::size_t templated = 0, steered = 0, faulted = 0, recovered = 0,
              success = 0;
  Samples rows_scanned, cts_used, sim_seconds;
  for (std::uint32_t i = 0; i < kTrials; ++i) {
    kernel::System sys(vulnerable_system(100 + i));
    ExplFrameAttack attack(sys, attack_cfg(100 + i));
    const auto r = attack.run();
    templated += r.template_found;
    steered += r.steered;
    faulted += r.fault_injected;
    recovered += r.key_recovered;
    success += r.success;
    rows_scanned.add(static_cast<double>(r.rows_scanned));
    if (r.success) cts_used.add(static_cast<double>(r.ciphertexts_used));
    sim_seconds.add(static_cast<double>(r.total_time) / kSecond);
  }
  Table t({"phase", "success", "rate"});
  const auto pct = [&](std::size_t n) {
    const auto ci = wilson_interval(n, kTrials);
    return Table::percent(ci.p) + "  [" + Table::percent(ci.lo) + ", " +
           Table::percent(ci.hi) + "]";
  };
  t.row("1 template (usable flip found)", templated, pct(templated));
  t.row("3 steer (victim got planted frame)", steered, pct(steered));
  t.row("4 fault injected into S-box", faulted, pct(faulted));
  t.row("6 AES-128 key recovered (PFA)", recovered, pct(recovered));
  t.row("overall success", success, pct(success));
  t.print(std::cout);
  std::cout << "mean rows templated: " << rows_scanned.mean()
            << "; mean ciphertexts to unique key: " << cts_used.mean()
            << "; mean simulated attack time: " << sim_seconds.mean()
            << " s\n";
}

void run_spray_baseline() {
  std::cout << "\nSpray baseline (blind unprivileged Rowhammer, same hammer "
               "budget, no steering), "
            << kTrials << " machines:\n";
  std::size_t corrupted = 0;
  Samples flips;
  for (std::uint32_t i = 0; i < kTrials; ++i) {
    kernel::System sys(vulnerable_system(100 + i));
    SprayConfig cfg;
    cfg.buffer_bytes = 4 * kMiB;
    cfg.hammer_iterations = 100'000;
    cfg.pairs = 32;
    Rng rng(100 + i);
    rng.fill_bytes(cfg.victim.key);
    cfg.seed = 100 + i;
    SprayBaseline spray(sys, cfg);
    const auto r = spray.run();
    corrupted += r.victim_corrupted;
    flips.add(static_cast<double>(r.flips_anywhere));
  }
  Table t({"metric", "value"});
  const auto ci = wilson_interval(corrupted, kTrials);
  t.row("P(victim S-box corrupted)",
        Table::percent(ci.p) + "  [" + Table::percent(ci.lo) + ", " +
            Table::percent(ci.hi) + "]");
  t.row("mean flips induced anywhere", flips.mean());
  t.print(std::cout);
  std::cout << "\npaper claim: ExplFrame turns an untargeted fault primitive "
               "into a targeted one — the baseline flips bits *somewhere* "
               "but (almost) never in the victim's single page.\n";
}

}  // namespace

int main() {
  print_banner(std::cout,
               "EXP-T4: end-to-end ExplFrame vs spray baseline (SV+SVI)");
  run_explframe();
  run_spray_baseline();
  return 0;
}
