// EXP-T4 — End-to-end ExplFrame vs the spray baseline (the headline
// experiment of the DATE'20 paper), driven through the Campaign API.
//
// ExplFrame: template -> plant (munmap) -> steer -> re-hammer -> harvest
// ciphertexts -> PFA key recovery, one CampaignRunner sweep across a worker
// pool (one simulated machine per trial). Baseline: blind unprivileged
// hammering with no frame steering. Reported per phase, with the
// victim-corruption probability contrast and the AES-128 key recovery
// outcome.
//
//   $ ./bench_explframe [--format=ascii|markdown|csv] [--threads=N]
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "attack/campaign_runner.hpp"
#include "attack/spray.hpp"
#include "common.hpp"
#include "scenario/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::bench;
using namespace explframe::attack;

namespace {

// The configuration lives in the scenario registry (`explsim run
// aes-single-flip` reproduces exactly this sweep); the bench only adds the
// spray-baseline contrast and the throughput line.
const scenario::Scenario& headline() {
  return scenario::builtin_scenario("aes-single-flip");
}

TableFormat g_format = TableFormat::kAscii;

void run_explframe(std::uint32_t threads) {
  const scenario::Scenario& s = headline();
  RunnerConfig cfg = s.runner_config();
  cfg.threads = threads;
  std::cout << "\nExplFrame end-to-end (scenario `" << s.name << "`), "
            << cfg.trials
            << " independent machines (64 MiB, vulnerable DDR3 module), "
            << threads << " worker threads:\n";
  CampaignRunner runner(cfg);
  const CampaignAggregate agg = runner.run();

  agg.phase_table().print(std::cout, g_format);
  std::cout << "mean rows templated: " << agg.rows_scanned.mean()
            << "; mean ciphertexts to unique key: "
            << agg.ciphertexts_used.mean()
            << "; mean simulated attack time: " << agg.sim_seconds.mean()
            << " s\n";
  std::cout << "sweep throughput: " << agg.trials << " trials in "
            << agg.wall_seconds << " s wall = " << agg.trials_per_second()
            << " trials/sec\n";
}

void run_spray_baseline() {
  const scenario::Scenario& s = headline();
  const RunnerConfig runner = s.runner_config();  // same machine as the sweep
  const std::uint32_t trials = s.trials;
  std::cout << "\nSpray baseline (blind unprivileged Rowhammer, same hammer "
               "budget, no steering), "
            << trials << " machines:\n";
  std::size_t corrupted = 0;
  Samples flips;
  for (std::uint32_t i = 0; i < trials; ++i) {
    kernel::SystemConfig sys_cfg = runner.system;
    sys_cfg.seed = s.seed + i;
    kernel::System sys(sys_cfg);
    SprayConfig cfg;
    cfg.buffer_bytes = s.buffer_mib * kMiB;
    cfg.hammer_iterations = s.hammer_iterations;
    cfg.pairs = 32;
    cfg.seed = s.seed + i;
    SprayBaseline spray(sys, cfg);
    const auto r = spray.run();
    corrupted += r.victim_corrupted;
    flips.add(static_cast<double>(r.flips_anywhere));
  }
  Table t({"metric", "value"});
  const auto ci = wilson_interval(corrupted, trials);
  t.row("P(victim S-box corrupted)",
        Table::percent(ci.p) + "  [" + Table::percent(ci.lo) + ", " +
            Table::percent(ci.hi) + "]");
  t.row("mean flips induced anywhere", flips.mean());
  t.print(std::cout, g_format);
  std::cout << "\npaper claim: ExplFrame turns an untargeted fault primitive "
               "into a targeted one — the baseline flips bits *somewhere* "
               "but (almost) never in the victim's single page.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t threads = 2;
  const auto usage = [&] {
    std::cerr << "usage: " << argv[0]
              << " [--format=ascii|markdown|csv] [--threads=N]\n";
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      const std::string value = arg.substr(std::strlen("--format="));
      const auto format = try_parse_table_format(value);
      if (!format) {
        std::cerr << "unknown table format '" << value << "'\n";
        return usage();
      }
      g_format = *format;
    } else if (arg.rfind("--threads=", 0) == 0) {
      const std::string value = arg.substr(std::strlen("--threads="));
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || parsed > 256) {
        std::cerr << "bad --threads value '" << value << "' (want 1..256)\n";
        return usage();
      }
      threads = static_cast<std::uint32_t>(parsed);
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return usage();
    }
  }
  if (threads == 0) threads = 1;  // the runner clamps; keep the banner honest
  print_banner(std::cout,
               "EXP-T4: end-to-end ExplFrame vs spray baseline (SV+SVI)");
  run_explframe(threads);
  run_spray_baseline();
  return 0;
}
