// EXP-T3 — Rowhammer characterisation on the DRAM model.
//
//   (a) flips vs hammer budget, double-sided vs single-sided;
//   (b) templating yield: vulnerable rows/pages found per scanned capacity;
//   (c) flip reproducibility at the same cell across repeated hammering —
//       the §VI observation ExplFrame's re-hammer phase relies on.
#include <iostream>
#include <set>
#include <vector>

#include "dram/hammer.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

using namespace explframe;
using namespace explframe::dram;

namespace {

DeviceParams bench_params(double density) {
  DeviceParams p;
  p.weak_cells.cells_per_mib = density;
  return p;
}

void flips_vs_budget() {
  std::cout << "\n(a) flips in targeted rows vs hammer budget (100 rows per "
               "point, density 64 cells/MiB):\n";
  Table t({"activations per aggressor", "double-sided flips",
           "single-sided flips"});
  const auto g = Geometry::with_capacity(64 * kMiB);
  for (const std::uint64_t budget :
       {20'000ull, 40'000ull, 80'000ull, 160'000ull, 320'000ull}) {
    std::uint64_t dbl = 0, sgl = 0;
    for (const bool double_sided : {true, false}) {
      DramDevice dev(g, bench_params(64.0), 99);
      dev.fill(0, 0xFF, 16 * kMiB);  // charge true cells in the scanned area
      HammerEngine engine(dev);
      AddressMapping map(g, MappingScheme::kRowMajor);
      for (std::uint32_t row = 2; row < 202; row += 2) {
        const PhysAddr target = map.encode({0, 0, 0, row, 0});
        // Recharge: collateral disturbance from neighbouring sessions may
        // have discharged cells here already.
        dev.fill(target, 0xFF, g.row_bytes);
        HammerResult r;
        if (double_sided) {
          r = engine.hammer_double_sided(target, budget);
        } else {
          PhysAddr agg = 0;
          map.neighbor_row_addr(target, -1, 0, agg);
          r = engine.hammer_single_sided(agg, budget);
        }
        for (const auto& f : r.flips)
          if (f.coord.row == row && f.coord.bank == 0)
            (double_sided ? dbl : sgl)++;
        dev.refresh_now();  // fresh disturbance window per row
      }
    }
    t.row(budget, dbl, sgl);
  }
  t.print(std::cout);
  std::cout << "shape check (Kim et al. ISCA'14): no flips below the "
               "threshold knee, then rising with budget; double-sided >= "
               "single-sided throughout.\n";
}

void templating_yield() {
  std::cout << "\n(b) templating yield vs module vulnerability (256 rows "
               "scanned at 300K activations, extrapolated per GiB):\n";
  Table t({"cells/MiB (module)", "rows w/ flips", "pages w/ flips",
           "flips", "est. vulnerable pages/GiB"});
  const auto g = Geometry::with_capacity(64 * kMiB);
  for (const double density : {1.0, 4.0, 16.0, 64.0}) {
    DramDevice dev(g, bench_params(density), 7);
    dev.fill(0, 0xFF, 16 * kMiB);
    HammerEngine engine(dev);
    AddressMapping map(g, MappingScheme::kRowMajor);
    std::set<std::uint32_t> rows_with;
    std::set<std::uint64_t> pages_with;
    std::uint64_t flips = 0;
    constexpr std::uint32_t kRows = 256;
    for (std::uint32_t row = 2; row < 2 + kRows; ++row) {
      const PhysAddr target = map.encode({0, 0, 0, row, 0});
      dev.fill(target, 0xFF, g.row_bytes);
      const auto r = engine.hammer_double_sided(target, 300'000);
      for (const auto& f : r.flips) {
        if (f.coord.row != row || f.coord.bank != 0) continue;
        ++flips;
        rows_with.insert(row);
        pages_with.insert(f.addr / kPageSize);
      }
      dev.refresh_now();
    }
    const double scanned_bytes = static_cast<double>(kRows) * g.row_bytes;
    const double per_gib =
        static_cast<double>(pages_with.size()) * (double{kGiB} / scanned_bytes);
    t.row(density, rows_with.size(), pages_with.size(), flips, per_gib);
  }
  t.print(std::cout);
}

void reproducibility() {
  std::cout << "\n(c) flip reproducibility at the same cell (SVI: \"high "
               "probability of getting bit flips in the same location\"):\n";
  const auto g = Geometry::with_capacity(64 * kMiB);
  DramDevice dev(g, bench_params(64.0), 13);
  dev.fill(0, 0xFF, 16 * kMiB);
  HammerEngine engine(dev);
  AddressMapping map(g, MappingScheme::kRowMajor);

  // Template pass: find flips.
  struct Found {
    std::uint32_t row;
    PhysAddr addr;
    std::uint8_t bit;
    bool to_one;
  };
  std::vector<Found> found;
  for (std::uint32_t row = 2; row < 402 && found.size() < 24; row += 2) {
    const PhysAddr target = map.encode({0, 0, 0, row, 0});
    dev.fill(target, 0xFF, g.row_bytes);
    const auto r = engine.hammer_double_sided(target, 300'000);
    for (const auto& f : r.flips)
      if (f.coord.row == row && f.coord.bank == 0)
        found.push_back({row, f.addr, f.bit, f.to_one});
    dev.refresh_now();
  }

  std::size_t reproduced = 0, attempts = 0;
  constexpr int kRounds = 5;
  for (const auto& cell : found) {
    for (int round = 0; round < kRounds; ++round) {
      // Recharge the cell and re-hammer the same rows.
      const std::uint8_t byte = dev.read_byte(cell.addr);
      dev.write_byte(cell.addr,
                     cell.to_one
                         ? static_cast<std::uint8_t>(byte & ~(1u << cell.bit))
                         : static_cast<std::uint8_t>(byte | (1u << cell.bit)));
      dev.refresh_now();
      const PhysAddr target = map.encode({0, 0, cell.row, 0, 0});
      (void)target;
      const auto r = engine.hammer_double_sided(
          map.encode({0, 0, 0, cell.row, 0}), 300'000);
      ++attempts;
      for (const auto& f : r.flips)
        if (f.addr == cell.addr && f.bit == cell.bit) {
          ++reproduced;
          break;
        }
    }
  }
  Table t({"templated cells", "re-hammer attempts", "reproduced",
           "reproducibility"});
  const auto ci = wilson_interval(reproduced, attempts);
  t.row(found.size(), attempts, reproduced,
        Table::percent(ci.p) + "  [" + Table::percent(ci.lo) + ", " +
            Table::percent(ci.hi) + "]");
  t.print(std::cout);
}

}  // namespace

int main() {
  print_banner(std::cout, "EXP-T3: Rowhammer characterisation (SVI)");
  flips_vs_budget();
  templating_yield();
  reproducibility();
  return 0;
}
