// EXP-T8 — Templating strategy comparison (extension).
//
// The paper's attacker "allocates a large memory and starts the Rowhammer
// process" (§VI) — the two practical ways to do that without pagemap:
//   * contiguous double-sided: assume VA->PA contiguity, discover the bank
//     stride by timing, hammer row neighbours directly;
//   * random same-bank pairs (Kim'14 style): timing-verified random pairs,
//     full-buffer rescans.
// Compared on hammer sessions and simulated time to the first flip, under
// both a linear bank function and Intel-style XOR bank hashing (which
// defeats stride discovery entirely).
#include <iostream>

#include "attack/templating.hpp"
#include "common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::bench;
using namespace explframe::attack;

namespace {

constexpr std::uint32_t kTrials = 6;

struct Outcome {
  bool found = false;
  double sessions = 0;
  double sim_seconds = 0;
  double flips = 0;
};

Outcome run_one(TemplateStrategy strategy, dram::MappingScheme mapping,
                std::uint64_t seed) {
  kernel::SystemConfig sys_cfg = vulnerable_system(seed);
  sys_cfg.dram.mapping = mapping;
  kernel::System sys(sys_cfg);
  kernel::Task& attacker = sys.spawn("attacker", 0);
  TemplateConfig cfg;
  cfg.strategy = strategy;
  cfg.buffer_bytes = 4 * kMiB;
  cfg.hammer_iterations = 100'000;
  cfg.stop_after = 1;  // stop at the first vulnerable page
  cfg.max_rows = 256;
  cfg.seed = seed;
  Templater templater(sys, attacker, cfg);
  templater.allocate_buffer();
  const auto report = templater.scan();
  Outcome o;
  o.found = !report.flips.empty();
  o.sessions = static_cast<double>(report.rows_scanned);
  o.sim_seconds = static_cast<double>(report.elapsed) / kSecond;
  o.flips = static_cast<double>(report.flips.size());
  return o;
}

}  // namespace

int main() {
  print_banner(std::cout, "EXP-T8: templating strategy x bank hashing");
  std::cout << "(time/sessions to the FIRST vulnerable page; " << kTrials
            << " machines per row; budget 256 sessions)\n\n";

  struct RowSpec {
    const char* strategy_name;
    TemplateStrategy strategy;
    const char* mapping_name;
    dram::MappingScheme mapping;
  };
  const RowSpec rows[] = {
      {"contiguous double-sided", TemplateStrategy::kContiguousDoubleSided,
       "linear (row-major)", dram::MappingScheme::kRowMajor},
      {"contiguous double-sided", TemplateStrategy::kContiguousDoubleSided,
       "XOR bank hashing", dram::MappingScheme::kBankXor},
      {"random same-bank pairs", TemplateStrategy::kRandomPairs,
       "linear (row-major)", dram::MappingScheme::kRowMajor},
      {"random same-bank pairs", TemplateStrategy::kRandomPairs,
       "XOR bank hashing", dram::MappingScheme::kBankXor},
  };

  Table t({"strategy", "bank function", "P(found)", "mean sessions",
           "mean simulated s"});
  for (const RowSpec& spec : rows) {
    std::size_t found = 0;
    Samples sessions, secs;
    for (std::uint32_t i = 0; i < kTrials; ++i) {
      const auto o = run_one(spec.strategy, spec.mapping, 900 + i);
      found += o.found;
      if (o.found) {
        sessions.add(o.sessions);
        secs.add(o.sim_seconds);
      }
    }
    t.row(spec.strategy_name, spec.mapping_name,
          Table::percent(wilson_interval(found, kTrials).p), sessions.mean(),
          secs.mean());
  }
  t.print(std::cout);
  std::cout << "\nnotes: (1) under XOR bank hashing the smallest conflicting "
               "stride is a whole bank sweep times the bank count, so the "
               "contiguous strategy hammers rows far from its scan target "
               "and silently finds nothing; random pairs are mapping-"
               "agnostic. (2) random pairs look cheap per session here "
               "because the full-buffer rescan runs on the cached data path "
               "(free in simulated time); on real hardware those rescans "
               "dominate, which is why targeted double-sided templating won "
               "once reverse-engineered maps became available.\n";
  return 0;
}
