// EXP-F1 — Buddy allocation scheme (paper Fig. 1).
//
// Part 1 reproduces the figure's mechanism as a trace: the split path taken
// when a small block is carved out of a large free block, and the coalesce
// cascade when it is freed again.
// Part 2 measures allocator throughput with google-benchmark.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "mm/buddy.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace explframe;
using namespace explframe::mm;

void print_split_and_coalesce_trace() {
  print_banner(std::cout, "EXP-F1: buddy allocation scheme (Fig. 1)");

  PageFrameDatabase db(4096);
  BuddyAllocator buddy(db, 0, 4096, 0);

  std::cout << "\nfree blocks per order before allocation (buddyinfo):\n";
  {
    Table t({"order", "block pages", "free blocks"});
    const auto info = buddy.buddyinfo();
    for (std::uint32_t o = 0; o < kMaxOrder; ++o)
      t.row(o, std::size_t{1} << o, info[o]);
    t.print(std::cout);
  }

  std::vector<SplitTraceEntry> trace;
  const Pfn p = buddy.alloc_block(0, &trace);
  std::cout << "\nalloc_block(order=0) -> pfn " << p
            << " (split path, Fig. 1 left):\n";
  {
    Table t({"took block at pfn", "from order", "split down to"});
    for (const auto& e : trace) t.row(e.block, e.from_order, e.to_order);
    t.print(std::cout);
    std::cout << "splits performed: " << buddy.stats().splits << "\n";
  }

  std::cout << "\nfree blocks per order after the order-0 allocation:\n";
  {
    Table t({"order", "free blocks"});
    const auto info = buddy.buddyinfo();
    for (std::uint32_t o = 0; o < kMaxOrder; ++o) t.row(o, info[o]);
    t.print(std::cout);
  }

  buddy.free_block(p, 0);
  std::cout << "\nfree_block(pfn " << p
            << ") coalesced back (Fig. 1 right): coalesce events = "
            << buddy.stats().coalesces << ", max-order blocks restored = "
            << buddy.free_blocks(kMaxOrder - 1) << "\n";

  // The paper's 1 MiB example: a 2^8-page request.
  PageFrameDatabase db2(4096);
  BuddyAllocator buddy2(db2, 0, 4096, 0);
  std::vector<SplitTraceEntry> trace2;
  const Pfn big = buddy2.alloc_block(8, &trace2);
  std::cout << "\nalloc_block(order=8) [the paper's 1 MiB example] -> pfn "
            << big << ", splits = " << buddy2.stats().splits << "\n";
  buddy2.verify();
}

void BM_BuddyAllocFreeOrder0(benchmark::State& state) {
  PageFrameDatabase db(1 << 16);
  BuddyAllocator buddy(db, 0, 1 << 16, 0);
  for (auto _ : state) {
    const Pfn p = buddy.alloc_block(0);
    benchmark::DoNotOptimize(p);
    buddy.free_block(p, 0);
  }
}
BENCHMARK(BM_BuddyAllocFreeOrder0);

void BM_BuddyAllocFreeByOrder(benchmark::State& state) {
  PageFrameDatabase db(1 << 16);
  BuddyAllocator buddy(db, 0, 1 << 16, 0);
  const auto order = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const Pfn p = buddy.alloc_block(order);
    benchmark::DoNotOptimize(p);
    buddy.free_block(p, order);
  }
}
BENCHMARK(BM_BuddyAllocFreeByOrder)->DenseRange(0, 10, 2);

void BM_BuddyChurn(benchmark::State& state) {
  PageFrameDatabase db(1 << 16);
  BuddyAllocator buddy(db, 0, 1 << 16, 0);
  Rng rng(1);
  std::vector<std::pair<Pfn, std::uint32_t>> held;
  for (auto _ : state) {
    if (held.size() < 512 && (held.empty() || rng.bernoulli(0.6))) {
      const auto order = static_cast<std::uint32_t>(rng.uniform(4));
      const Pfn p = buddy.alloc_block(order);
      if (p != kInvalidPfn) held.push_back({p, order});
    } else {
      const auto i = rng.uniform(held.size());
      buddy.free_block(held[i].first, held[i].second);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  for (const auto& [p, o] : held) buddy.free_block(p, o);
}
BENCHMARK(BM_BuddyChurn);

}  // namespace

int main(int argc, char** argv) {
  print_split_and_coalesce_trace();
  std::cout << "\nallocator micro-throughput:\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
