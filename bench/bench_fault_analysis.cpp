// EXP-T6 — Fault-analysis technique comparison: why ExplFrame pairs with
// *persistent* fault analysis (§I: "sophisticated fault analysis
// techniques"; conclusion: "induce persistent faults [12]").
//
//   (a) PFA (persistent S-box fault) vs DFA (transient round-9 fault) on
//       AES-128: what each needs from the fault primitive and how much data;
//   (b) PFA on PRESENT-80 vs AES-128: data complexity scales with the
//       S-box alphabet (16 vs 256 values).
#include <iostream>

#include "crypto/present80.hpp"
#include "fault/dfa_aes.hpp"
#include "fault/injection.hpp"
#include "fault/pfa_aes.hpp"
#include "fault/pfa_present.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::crypto;
using namespace explframe::fault;

namespace {

double measure_aes_pfa(std::uint64_t seed) {
  Rng rng(seed);
  Aes128::Key key;
  rng.fill_bytes(key);
  const auto rk = Aes128::expand_key(key);
  auto table = Aes128::sbox();
  SboxByteFault fault{static_cast<std::uint16_t>(rng.uniform(256)),
                      static_cast<std::uint8_t>(1u << rng.uniform(8))};
  const auto [v, v_new] = apply_fault(table, fault);
  (void)v_new;
  AesPfa pfa;
  std::size_t used = 0;
  while (used < 60'000) {
    for (int i = 0; i < 32; ++i) {
      Aes128::Block pt;
      rng.fill_bytes(pt);
      pfa.add_ciphertext(Aes128::encrypt_with_sbox(pt, rk, table));
    }
    used += 32;
    if (pfa.recover_round10(PfaStrategy::kMissingValue, v, v_new)) break;
  }
  return static_cast<double>(used);
}

double measure_aes_dfa_pairs(std::uint64_t seed) {
  Rng rng(seed);
  Aes128::Key key;
  rng.fill_bytes(key);
  const auto rk = Aes128::expand_key(key);
  AesDfa dfa;
  std::size_t pairs = 0;
  while (pairs < 64) {
    Aes128::Block pt;
    rng.fill_bytes(pt);
    const auto byte = static_cast<std::size_t>(rng.uniform(16));
    const auto mask = static_cast<std::uint8_t>(1 + rng.uniform(255));
    const auto good = Aes128::encrypt(pt, rk);
    const auto bad =
        Aes128::encrypt_with_transient_fault(pt, rk, 9, byte, mask);
    if (dfa.add_pair(good, bad)) ++pairs;
    if (dfa.recover_round10().has_value()) break;
  }
  return static_cast<double>(pairs);
}

double measure_present_pfa(std::uint64_t seed) {
  Rng rng(seed);
  Present80::Key key;
  rng.fill_bytes(key);
  const auto rk = Present80::expand_key(key);
  auto table = Present80::sbox();
  SboxByteFault fault{static_cast<std::uint16_t>(rng.uniform(16)),
                      static_cast<std::uint8_t>(1u << rng.uniform(4))};
  const auto [v, v_new] = apply_fault(table, fault);
  (void)v_new;
  PresentPfa pfa;
  std::size_t used = 0;
  while (used < 10'000) {
    for (int i = 0; i < 8; ++i)
      pfa.add_ciphertext(Present80::encrypt_with_sbox(rng.next(), rk, table));
    used += 8;
    if (pfa.recover_k32(v)) break;
  }
  return static_cast<double>(used);
}

}  // namespace

int main() {
  print_banner(std::cout, "EXP-T6: fault-analysis technique comparison");
  constexpr int kRepeats = 25;

  Samples pfa_aes, dfa_pairs, pfa_present;
  for (int i = 0; i < kRepeats; ++i) {
    pfa_aes.add(measure_aes_pfa(400 + i));
    dfa_pairs.add(measure_aes_dfa_pairs(500 + i));
    pfa_present.add(measure_present_pfa(600 + i));
  }

  std::cout << "\n(a) what each technique demands of the attacker (" << kRepeats
            << " trials each):\n";
  Table t({"technique", "fault primitive", "data needed (mean)",
           "needs chosen/correct pairs?", "fault timing"});
  t.row("PFA on AES-128 (ExplFrame)",
        "one persistent S-box bit (Rowhammer flip)",
        std::to_string(static_cast<int>(pfa_aes.mean())) +
            " faulty ciphertexts",
        "no - ciphertext-only", "none (fault persists)");
  t.row("DFA on AES-128 (Piret-Quisquater style)",
        "transient byte fault, round 9 only",
        std::to_string(static_cast<int>(dfa_pairs.mean())) +
            " correct/faulty pairs",
        "yes - same plaintext twice", "cycle-accurate injection");
  t.row("PFA on PRESENT-80", "one persistent S-box bit",
        std::to_string(static_cast<int>(pfa_present.mean())) +
            " faulty ciphertexts (+2^16 search)",
        "no - ciphertext-only", "none (fault persists)");
  t.print(std::cout);

  std::cout << "\n(b) data complexity detail:\n";
  Table t2({"attack", "mean", "median", "p90"});
  t2.row("AES PFA ciphertexts", pfa_aes.mean(), pfa_aes.median(),
         pfa_aes.percentile(90));
  t2.row("AES DFA pairs", dfa_pairs.mean(), dfa_pairs.median(),
         dfa_pairs.percentile(90));
  t2.row("PRESENT PFA ciphertexts", pfa_present.mean(), pfa_present.median(),
         pfa_present.percentile(90));
  t2.print(std::cout);

  std::cout << "\ntakeaway: a Rowhammer-induced table fault is persistent "
               "and untimed, which is exactly PFA's model — DFA would "
               "require transient faults timed to one round, which "
               "Rowhammer cannot deliver. PRESENT's 16-value S-box "
               "saturates ~40x faster than AES's 256-value one.\n";
  return 0;
}
