// Shared experiment configuration for the bench harnesses.
//
// Scaling note (recorded in EXPERIMENTS.md): the paper's testbed is a
// multi-GiB DDR3 machine hammered for hours. The simulated experiments use
// 64-256 MiB of DRAM and a denser weak-cell population so each data point
// runs in seconds; every *relative* claim (who wins, which probabilities are
// ~1 vs ~0, where the curves bend) is preserved under this scaling.
#pragma once

#include <cstdint>

#include "kernel/system.hpp"

namespace explframe::bench {

/// A DDR3 module with a typical weak-cell population (used where absolute
/// flip statistics matter, EXP-T3).
inline kernel::SystemConfig realistic_system(std::uint64_t seed,
                                             std::uint64_t mem_mib = 256) {
  kernel::SystemConfig c;
  c.memory_bytes = mem_mib * kMiB;
  c.num_cpus = 2;
  c.seed = seed;
  return c;
}

/// A highly vulnerable module + weakened thresholds so attack trials finish
/// in seconds (used for the end-to-end experiments, EXP-T2/T4/A1).
inline kernel::SystemConfig vulnerable_system(std::uint64_t seed,
                                              std::uint64_t mem_mib = 64) {
  kernel::SystemConfig c;
  c.memory_bytes = mem_mib * kMiB;
  c.num_cpus = 2;
  c.dram.weak_cells.cells_per_mib = 128.0;
  c.dram.weak_cells.threshold_log_mean = 10.4;
  c.dram.weak_cells.threshold_min = 25'000;
  c.dram.weak_cells.threshold_max = 60'000;
  c.dram.data_pattern_sensitivity = false;
  c.seed = seed;
  return c;
}

/// A quiet system (no weak cells) for allocator-only experiments.
inline kernel::SystemConfig quiet_system(std::uint64_t seed,
                                         std::uint64_t mem_mib = 64) {
  kernel::SystemConfig c;
  c.memory_bytes = mem_mib * kMiB;
  c.num_cpus = 2;
  c.dram.weak_cells.cells_per_mib = 0.0;
  c.seed = seed;
  return c;
}

}  // namespace explframe::bench
