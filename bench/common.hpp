// Shared experiment configuration for the bench harnesses.
//
// Scaling note (recorded in EXPERIMENTS.md): the paper's testbed is a
// multi-GiB DDR3 machine hammered for hours. The simulated experiments use
// 64-256 MiB of DRAM and a denser weak-cell population so each data point
// runs in seconds; every *relative* claim (who wins, which probabilities are
// ~1 vs ~0, where the curves bend) is preserved under this scaling.
#pragma once

#include <cstdint>

#include "kernel/system.hpp"
#include "scenario/scenario.hpp"

namespace explframe::bench {

/// The canned machine the benches share: `mem_mib` of DDR3, two CPUs, the
/// named weak-cell preset. The preset constants live in one place —
/// scenario::apply_weak_cell_profile — so benches and registered scenarios
/// can never drift apart.
inline kernel::SystemConfig profiled_system(scenario::WeakCellProfile profile,
                                            std::uint64_t seed,
                                            std::uint64_t mem_mib) {
  kernel::SystemConfig c;
  c.memory_bytes = mem_mib * kMiB;
  c.num_cpus = 2;
  c.seed = seed;
  scenario::apply_weak_cell_profile(profile, c);
  return c;
}

/// A DDR3 module with a typical weak-cell population (used where absolute
/// flip statistics matter, EXP-T3).
inline kernel::SystemConfig realistic_system(std::uint64_t seed,
                                             std::uint64_t mem_mib = 256) {
  return profiled_system(scenario::WeakCellProfile::kRealistic, seed, mem_mib);
}

/// A highly vulnerable module + weakened thresholds so attack trials finish
/// in seconds (used for the end-to-end experiments, EXP-T2/T4/A1).
inline kernel::SystemConfig vulnerable_system(std::uint64_t seed,
                                              std::uint64_t mem_mib = 64) {
  return profiled_system(scenario::WeakCellProfile::kVulnerable, seed,
                         mem_mib);
}

/// A quiet system (no weak cells) for allocator-only experiments.
inline kernel::SystemConfig quiet_system(std::uint64_t seed,
                                         std::uint64_t mem_mib = 64) {
  return profiled_system(scenario::WeakCellProfile::kQuiet, seed, mem_mib);
}

}  // namespace explframe::bench
