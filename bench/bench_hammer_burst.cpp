// PERF — batched-activation hammer path.
//
//   (a) activations/sec: per-access loop vs DramDevice::hammer_burst, with
//       and without TRR (the burst must win by >= 10x on the bare device);
//   (b) campaign throughput the fast path unlocks (trials/sec through
//       CampaignRunner, whose templating loop rides the burst).
//
// Writes the headline numbers to BENCH_hammer.json (override with
// --json=PATH) so CI can archive the perf trajectory per PR.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "attack/campaign_runner.hpp"
#include "common.hpp"
#include "dram/hammer.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::dram;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> d =
      std::chrono::steady_clock::now() - start;
  return d.count();
}

DeviceParams device_params(bool trr) {
  DeviceParams p;
  p.weak_cells.cells_per_mib = 64.0;
  p.trr.enabled = trr;
  return p;
}

struct HammerRate {
  double acts_per_sec = 0.0;
  std::uint64_t flips = 0;
};

/// Hammers a double-sided pair for `iterations` rounds and returns the host
/// throughput in DRAM activations per second.
template <typename RunFn>
HammerRate measure(bool trr, std::uint64_t iterations, RunFn run) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  DramDevice dev(g, device_params(trr), 99);
  dev.fill(0, 0xFF, 4 * kMiB);
  AddressMapping map(g, MappingScheme::kRowMajor);
  const PhysAddr pair[2] = {map.encode({0, 0, 0, 19, 0}),
                            map.encode({0, 0, 0, 21, 0})};
  const auto start = std::chrono::steady_clock::now();
  run(dev, pair, iterations);
  const double secs = seconds_since(start);
  HammerRate r;
  r.acts_per_sec =
      secs > 0.0 ? static_cast<double>(dev.total_activations()) / secs : 0.0;
  r.flips = dev.total_flips();
  return r;
}

HammerRate per_access_rate(bool trr, std::uint64_t iterations) {
  return measure(trr, iterations,
                 [](DramDevice& dev, const PhysAddr (&pair)[2],
                    std::uint64_t iters) {
                   for (std::uint64_t i = 0; i < iters; ++i) {
                     dev.access(pair[0]);
                     dev.access(pair[1]);
                   }
                 });
}

HammerRate burst_rate(bool trr, std::uint64_t iterations) {
  return measure(trr, iterations,
                 [](DramDevice& dev, const PhysAddr (&pair)[2],
                    std::uint64_t iters) { dev.hammer_burst(pair, iters); });
}

double campaign_trials_per_sec() {
  attack::RunnerConfig cfg;
  cfg.trials = 8;
  cfg.threads = 2;
  cfg.system = bench::vulnerable_system(42);
  cfg.campaign.templating.buffer_bytes = 4 * kMiB;
  cfg.campaign.templating.hammer_iterations = 100'000;
  cfg.campaign.ciphertext_budget = 8000;
  cfg.seed = 42;
  const attack::CampaignAggregate agg = attack::CampaignRunner(cfg).run();
  return agg.trials_per_second();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_hammer.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }

  print_banner(std::cout, "PERF: batched-activation hammer path");

  // The slow path steps the full device model per access; keep its budget
  // moderate so the bench stays quick. The burst gets a larger budget so
  // its rate is not warm-up-dominated.
  constexpr std::uint64_t kSlowIters = 2'000'000;
  constexpr std::uint64_t kBurstIters = 50'000'000;

  const HammerRate slow = per_access_rate(false, kSlowIters);
  const HammerRate fast = burst_rate(false, kBurstIters);
  const HammerRate slow_trr = per_access_rate(true, kSlowIters);
  const HammerRate fast_trr = burst_rate(true, kBurstIters);
  const double speedup =
      slow.acts_per_sec > 0.0 ? fast.acts_per_sec / slow.acts_per_sec : 0.0;
  const double speedup_trr = slow_trr.acts_per_sec > 0.0
                                 ? fast_trr.acts_per_sec / slow_trr.acts_per_sec
                                 : 0.0;

  std::cout << "\n(a) double-sided hammer throughput (host wall clock):\n";
  Table t({"defences", "path", "activations/sec", "speedup"});
  t.row("none", "per-access", slow.acts_per_sec, 1.0);
  t.row("none", "burst", fast.acts_per_sec, speedup);
  t.row("TRR", "per-access", slow_trr.acts_per_sec, 1.0);
  t.row("TRR", "burst", fast_trr.acts_per_sec, speedup_trr);
  t.print(std::cout);

  std::cout << "\n(b) campaign sweep throughput (templating on the burst "
               "path, 8 trials x 2 threads):\n";
  const auto start = std::chrono::steady_clock::now();
  const double trials_per_sec = campaign_trials_per_sec();
  Table c({"trials/sec", "bench wall s"});
  c.row(trials_per_sec, seconds_since(start));
  c.print(std::cout);

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"hammer_burst\",\n"
       << "  \"per_access_acts_per_sec\": " << slow.acts_per_sec << ",\n"
       << "  \"burst_acts_per_sec\": " << fast.acts_per_sec << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"per_access_acts_per_sec_trr\": " << slow_trr.acts_per_sec
       << ",\n"
       << "  \"burst_acts_per_sec_trr\": " << fast_trr.acts_per_sec << ",\n"
       << "  \"speedup_trr\": " << speedup_trr << ",\n"
       << "  \"campaign_trials_per_sec\": " << trials_per_sec << "\n"
       << "}\n";
  std::cout << "\nwrote " << json_path << "\n";

  // The acceptance bar: the burst path must be at least 10x the per-access
  // loop on the undefended device.
  if (speedup < 10.0) {
    std::cerr << "FAIL: burst speedup " << speedup << " < 10x\n";
    return 1;
  }
  return 0;
}
