// PERF — snapshot/fork amortized templating.
//
// The whole point of the CoW snapshot engine: campaign variants that agree
// on every template-shaping field (attack::template_key) should pay for
// templating ONCE and fork the post-template machine state per variant,
// instead of re-templating from scratch. This bench builds the
// representative workload — one base scenario and a family of variants
// differing only in a post-template knob (ciphertext_budget, the axis a
// budget-curve sweep varies) — and runs every (variant, trial) both ways:
//
//   fresh  — CampaignRunner::run_trial per variant: templating re-runs for
//            every point (what a sweep cost before the snapshot engine);
//   forked — CampaignRunner::run_trial_group: one templating pass per
//            trial, one snapshot fork per variant (what SweepRunner's
//            template-sharing groups do now).
//
// Before timing, both paths' reports are compared field by field — the
// speedup only counts if the forked results are exactly the fresh ones.
// Writes BENCH_snapshot.json (override with --json=PATH) and exits
// non-zero below the end-to-end speedup bar (default 5x, --bar=X) or on
// any report mismatch.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "attack/campaign_runner.hpp"
#include "scenario/registry.hpp"
#include "support/table.hpp"

using namespace explframe;

namespace {

constexpr std::uint32_t kTrials = 2;

double seconds_since(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> d =
      std::chrono::steady_clock::now() - start;
  return d.count();
}

std::string speedup_label(double speedup) {
  std::ostringstream out;
  out.precision(2);
  out << std::fixed << speedup << "x";
  return out.str();
}

/// The variant family: the quickstart machine with a ciphertext-budget
/// curve (a post-template knob, so every variant shares one template_key).
std::vector<attack::CampaignConfig> make_variants(
    const attack::RunnerConfig& base) {
  std::vector<attack::CampaignConfig> variants;
  for (std::uint32_t budget = 500; budget <= 8000; budget += 500) {
    attack::CampaignConfig cfg = base.campaign;
    cfg.ciphertext_budget = budget;
    variants.push_back(cfg);
  }
  return variants;
}

/// One trial of every variant through the fresh path (templating re-runs
/// per variant).
std::vector<attack::CampaignReport> run_fresh(
    const attack::RunnerConfig& base,
    const std::vector<attack::CampaignConfig>& variants,
    std::uint32_t trial) {
  std::vector<attack::CampaignReport> reports;
  reports.reserve(variants.size());
  for (const attack::CampaignConfig& variant : variants) {
    attack::RunnerConfig config = base;
    config.campaign = variant;
    reports.push_back(attack::CampaignRunner::run_trial(config, trial));
  }
  return reports;
}

double fresh_seconds(const attack::RunnerConfig& base,
                     const std::vector<attack::CampaignConfig>& variants) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t trial = 0; trial < kTrials; ++trial)
    (void)run_fresh(base, variants, trial);
  return seconds_since(start);
}

double forked_seconds(const attack::RunnerConfig& base,
                      const std::vector<attack::CampaignConfig>& variants) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t trial = 0; trial < kTrials; ++trial)
    (void)attack::CampaignRunner::run_trial_group(base, variants, trial);
  return seconds_since(start);
}

/// Every field the handbook emitters publish, plus the ground truth.
bool reports_equal(const attack::CampaignReport& a,
                   const attack::CampaignReport& b) {
  return a.template_found == b.template_found &&
         a.rows_scanned == b.rows_scanned && a.flips_found == b.flips_found &&
         a.chosen == b.chosen && a.table_index == b.table_index &&
         a.fault_mask == b.fault_mask && a.steered == b.steered &&
         a.planted_pfn == b.planted_pfn &&
         a.victim_table_pfn == b.victim_table_pfn &&
         a.fault_injected == b.fault_injected &&
         a.fault_as_predicted == b.fault_as_predicted &&
         a.ciphertexts_used == b.ciphertexts_used &&
         a.residual_search == b.residual_search &&
         a.key_recovered == b.key_recovered &&
         a.recovered_key == b.recovered_key && a.victim_key == b.victim_key &&
         a.success == b.success && a.total_time == b.total_time &&
         a.template_time == b.template_time;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_snapshot.json";
  double bar = 5.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--bar=", 0) == 0) bar = std::atof(arg.c_str() + 6);
  }

  print_banner(std::cout, "PERF: snapshot/fork amortized templating");

  attack::RunnerConfig base =
      scenario::builtin_scenario("quickstart").runner_config();
  base.threads = 1;
  base.trials = kTrials;
  const std::vector<attack::CampaignConfig> variants = make_variants(base);

  // Correctness gate first: the forked reports must BE the fresh reports.
  bool identical = true;
  for (std::uint32_t trial = 0; trial < kTrials && identical; ++trial) {
    const auto fresh = run_fresh(base, variants, trial);
    const auto forked =
        attack::CampaignRunner::run_trial_group(base, variants, trial);
    for (std::size_t i = 0; i < variants.size(); ++i) {
      if (!reports_equal(fresh[i], forked[i])) {
        std::cerr << "FAIL: forked report diverges from fresh (trial "
                  << trial << ", variant " << i << ")\n";
        identical = false;
        break;
      }
    }
  }

  // Interleaved best-of-3 after the verification pass warmed both paths:
  // the minimum cancels frequency/scheduler noise, interleaving keeps a
  // mid-bench thermal drift from taxing one side only.
  double fresh = 0.0;
  double forked = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const double f = fresh_seconds(base, variants);
    const double g = forked_seconds(base, variants);
    if (rep == 0 || f < fresh) fresh = f;
    if (rep == 0 || g < forked) forked = g;
  }
  const double speedup = forked > 0.0 ? fresh / forked : 0.0;

  Table t({"path", "seconds", "speedup"});
  t.row("fresh (re-template per point)", fresh, "-");
  t.row("forked (snapshot per trial)", forked, speedup_label(speedup));
  t.print(std::cout);
  std::cout << variants.size() << " budget-curve points x " << kTrials
            << " trials, single-threaded; reports "
            << (identical ? "byte-identical" : "DIVERGED") << "\n";

  const bool pass = identical && speedup >= bar;
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"snapshot\",\n"
       << "  \"points\": " << variants.size() << ",\n"
       << "  \"trials\": " << kTrials << ",\n"
       << "  \"base_seconds\": " << fresh << ",\n"
       << "  \"forked_seconds\": " << forked << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"bar\": " << bar << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "\nwrote " << json_path << "\n";

  if (!identical) return 1;
  if (speedup < bar) {
    std::cerr << "FAIL: end-to-end speedup " << speedup << "x below " << bar
              << "x\n";
    return 1;
  }
  return 0;
}
