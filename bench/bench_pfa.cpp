// EXP-T5 — Persistent Fault Analysis data complexity (paper ref [12],
// Zhang et al. TCHES 2018), driven through the fault::Analysis interface.
//
//   (a) remaining AES-128 key space vs number of faulty ciphertexts;
//   (b) ciphertexts needed for a unique key: missing-value vs
//       max-likelihood, over random keys and random single-bit S-box
//       faults. Ref [12] reports ~2000-2500 ciphertexts on average for the
//       missing-value attack; the shape to reproduce is the coupon-collector
//       knee around 2000.
#include <iostream>

#include "crypto/aes128.hpp"
#include "crypto/table_cipher.hpp"
#include "fault/analysis.hpp"
#include "fault/injection.hpp"
#include "fault/pfa_aes.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::crypto;
using namespace explframe::fault;

namespace {

struct FaultedOracle {
  Aes128::Key key;
  Aes128::RoundKeys rk;
  std::array<std::uint8_t, 256> table;
  FaultModel fault_model;
  Rng rng;

  explicit FaultedOracle(std::uint64_t seed) : rng(seed) {
    rng.fill_bytes(key);
    rk = Aes128::expand_key(key);
    table = Aes128::sbox();
    SboxByteFault fault;
    fault.index = static_cast<std::uint16_t>(rng.uniform(256));
    fault.mask = static_cast<std::uint8_t>(1u << rng.uniform(8));
    const auto [before, after] = apply_fault(table, fault);
    fault_model = {fault.index, fault.mask, before, after};
  }

  Aes128::Block next_ciphertext() {
    Aes128::Block pt;
    rng.fill_bytes(pt);
    return Aes128::encrypt_with_sbox(pt, rk, table);
  }
};

void keyspace_curve() {
  std::cout << "\n(a) remaining key space vs ciphertexts (mean over 20 "
               "random key/fault pairs):\n";
  constexpr int kRepeats = 20;
  const TableCipher& aes = cipher_for(CipherKind::kAes128);
  const std::vector<std::size_t> checkpoints = {125,  250,  500,  1000,
                                                1500, 2000, 3000, 4000};
  Table t({"ciphertexts", "mean log2(keyspace), missing-value",
           "mean log2(argmax ties), max-likelihood", "P(unique), missing"});
  for (const std::size_t n : checkpoints) {
    RunningStats missing_bits, ml_bits;
    std::size_t unique = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      FaultedOracle oracle(1000 + rep);
      const auto missing = make_analysis(AnalysisKind::kPfaMissingValue, aes,
                                         oracle.fault_model);
      const auto ml = make_analysis(AnalysisKind::kPfaMaxLikelihood, aes,
                                    oracle.fault_model);
      for (std::size_t i = 0; i < n; ++i) {
        const Aes128::Block ct = oracle.next_ciphertext();
        missing->add_ciphertext(ct);
        ml->add_ciphertext(ct);
      }
      missing_bits.add(missing->remaining_keyspace_log2());
      ml_bits.add(ml->remaining_keyspace_log2());
      if (missing->recover_key()) ++unique;
    }
    t.row(n, missing_bits.mean(), ml_bits.mean(),
          Table::percent(static_cast<double>(unique) / kRepeats));
  }
  t.print(std::cout);
}

void ciphertexts_to_unique() {
  std::cout << "\n(b) ciphertexts needed for a unique AES-128 key (50 random "
               "key/fault pairs, counted in steps of 32):\n";
  constexpr int kRepeats = 50;
  constexpr std::size_t kStep = 32;
  constexpr std::size_t kCap = 60'000;
  const TableCipher& aes = cipher_for(CipherKind::kAes128);
  Samples missing_needed;
  for (int rep = 0; rep < kRepeats; ++rep) {
    FaultedOracle oracle(5000 + rep);
    const auto missing = make_analysis(AnalysisKind::kPfaMissingValue, aes,
                                       oracle.fault_model);
    std::size_t used = 0;
    while (used < kCap) {
      for (std::size_t i = 0; i < kStep; ++i)
        missing->add_ciphertext(oracle.next_ciphertext());
      used += kStep;
      if (missing->recover_key()) {
        missing_needed.add(static_cast<double>(used));
        break;
      }
    }
  }
  Table t({"strategy", "mean", "median", "p90", "min", "max"});
  t.row("missing-value", missing_needed.mean(), missing_needed.median(),
        missing_needed.percentile(90), missing_needed.min(),
        missing_needed.max());
  t.print(std::cout);
  std::cout << "reference: Zhang et al. report ~2000-2500 ciphertexts on "
               "average for the missing-value attack (coupon collector over "
               "256 values x 16 bytes).\n";

  std::cout << "\n    max-likelihood comparison: the frequency peak must "
               "dominate 254 competitors at all 16 bytes simultaneously, so "
               "it needs several times more data than the missing value:\n";
  constexpr int kMlRepeats = 20;
  Table t2({"ciphertexts", "P(ML top-guess key correct)"});
  for (const std::size_t n :
       {1000ull, 2000ull, 4000ull, 8000ull, 16000ull, 32000ull}) {
    std::size_t correct = 0;
    for (int rep = 0; rep < kMlRepeats; ++rep) {
      FaultedOracle oracle(9000 + rep);
      // The top-guess diagnostic needs the raw frequency tables, which are
      // an engine detail below the Analysis interface.
      AesPfa pfa;
      for (std::size_t i = 0; i < n; ++i)
        pfa.add_ciphertext(oracle.next_ciphertext());
      // Top guess: argmax per byte, ties broken arbitrarily (first).
      Aes128::RoundKey guess{};
      for (std::size_t j = 0; j < 16; ++j) {
        const auto& f = pfa.frequencies(j);
        std::uint32_t best = 0;
        std::size_t best_t = 0;
        for (std::size_t tv = 0; tv < 256; ++tv)
          if (f[tv] > best) {
            best = f[tv];
            best_t = tv;
          }
        guess[j] =
            static_cast<std::uint8_t>(best_t ^ oracle.fault_model.v_new);
      }
      if (Aes128::master_key_from_round10(guess) == oracle.key) ++correct;
    }
    t2.row(n, Table::percent(static_cast<double>(correct) / kMlRepeats));
  }
  t2.print(std::cout);
}

}  // namespace

int main() {
  print_banner(std::cout,
               "EXP-T5: PFA data complexity on AES-128 (paper ref [12])");
  keyspace_curve();
  ciphertexts_to_unique();
  return 0;
}
