// EXP-F2 — Components of the zoned page frame allocator (paper Fig. 2).
//
// Prints the zone carving for several machine sizes, the zonelist fallback
// order per allocation class, and demonstrates fallback + per-CPU cache
// structure under memory pressure — the mechanism diagrammed in Fig. 2.
#include <iostream>

#include "common.hpp"
#include "mm/page_allocator.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::mm;

namespace {

void print_zone_carving() {
  print_banner(std::cout, "EXP-F2: zoned page frame allocator (Fig. 2)");
  std::cout << "\nzone carving by machine size and architecture (SIII):\n";
  Table t({"machine", "zone", "start", "end", "pages", "wmark min/low/high"});
  const auto add_rows = [&](std::uint64_t mib, Arch arch, const char* label) {
    AllocatorConfig cfg;
    cfg.total_bytes = mib * kMiB;
    cfg.arch = arch;
    PageAllocator alloc(cfg);
    for (std::size_t z = 0; z < alloc.zone_count(); ++z) {
      const Zone& zone = alloc.zone(z);
      const auto& w = zone.watermarks();
      t.row(std::to_string(mib) + " MiB " + label, zone.name(),
            std::to_string(zone.start_pfn() * kPageSize / kMiB) + " MiB",
            std::to_string(zone.end_pfn() * kPageSize / kMiB) + " MiB",
            zone.pages(),
            std::to_string(w.min) + "/" + std::to_string(w.low) + "/" +
                std::to_string(w.high));
    }
  };
  for (const std::uint64_t mib : {64ull, 512ull, 8192ull})
    add_rows(mib, Arch::kX86_64, "x86-64");
  add_rows(2048, Arch::kX86_32, "x86-32");
  t.print(std::cout);
}

void print_zonelists() {
  std::cout << "\nzonelist fallback order per allocation class:\n";
  AllocatorConfig cfg;
  cfg.total_bytes = 8 * kGiB;
  PageAllocator alloc(cfg);
  Table t({"request class", "fallback order"});
  const auto render = [&](GfpZonePreference pref) {
    std::string s;
    for (const auto zi : alloc.zonelist(pref)) {
      if (!s.empty()) s += " -> ";
      s += alloc.zone(zi).name();
    }
    return s;
  };
  t.row("GFP_KERNEL", render(GfpZonePreference::kNormal));
  t.row("GFP_HIGHUSER", render(GfpZonePreference::kHighUser));
  t.row("GFP_DMA32", render(GfpZonePreference::kDma32));
  t.row("GFP_DMA", render(GfpZonePreference::kDma));
  t.print(std::cout);
}

void demonstrate_fallback_under_pressure() {
  std::cout << "\nzone fallback under pressure (order-0 user allocations on "
               "a 64 MiB machine):\n";
  AllocatorConfig cfg;
  cfg.total_bytes = 64 * kMiB;
  PageAllocator alloc(cfg);
  Table t({"phase", "allocs served", "zone", "fallbacks", "watermark skips"});
  std::uint64_t served_dma32 = 0, served_dma = 0;
  for (;;) {
    const auto a = alloc.alloc_pages(0, GfpFlags::user(), 0, 1);
    if (!a) break;
    if (alloc.zone(a->zone_index).type() == ZoneType::kDma32) {
      ++served_dma32;
    } else {
      ++served_dma;
    }
  }
  t.row("preferred zone", served_dma32, "DMA32", std::size_t{0},
        std::size_t{0});
  t.row("after fallback", served_dma, "DMA", alloc.stats().zone_fallbacks,
        alloc.stats().watermark_skips);
  t.print(std::cout);
}

void print_per_cpu_cache_structure() {
  std::cout << "\nper-CPU page frame cache per (zone, cpu) — \"the page "
               "frame cache is maintained for each CPU inside each zone\" "
               "(paper SV):\n";
  AllocatorConfig cfg;
  cfg.total_bytes = 64 * kMiB;
  cfg.num_cpus = 4;
  PageAllocator alloc(cfg);
  // Touch each CPU's cache once.
  for (std::uint32_t cpu = 0; cpu < 4; ++cpu) {
    const auto a = alloc.alloc_pages(0, GfpFlags::user(), cpu, 1);
    if (a) alloc.free_pages(a->pfn, 0, cpu);
  }
  Table t({"zone", "cpu", "cached pages", "batch", "high"});
  for (std::size_t z = 0; z < alloc.zone_count(); ++z) {
    Zone& zone = alloc.zone(z);
    for (std::uint32_t cpu = 0; cpu < zone.num_cpus(); ++cpu) {
      t.row(zone.name(), cpu, std::size_t{zone.pcp(cpu).count()},
            std::size_t{zone.pcp(cpu).config().batch},
            std::size_t{zone.pcp(cpu).config().high});
    }
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  print_zone_carving();
  print_zonelists();
  demonstrate_fallback_under_pressure();
  print_per_cpu_cache_structure();
  return 0;
}
