// EXP-T7 — ExplFrame against PRESENT-80 (the title's "block cipherS").
//
// Same pipeline as EXP-T4 with a PRESENT victim. The quantitative contrast
// with AES:
//   * the table target window is 16 bytes with only 4 live bits each
//     (vs 256 x 8 for AES) — templating needs a much longer scan and can
//     exhaust the buffer;
//   * once the fault lands, PFA needs ~100 ciphertexts (16-value alphabet)
//     plus a <= 2^16 residual key-schedule search — far below AES's ~2300.
#include <iostream>

#include "attack/explframe_present.hpp"
#include "common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::bench;
using namespace explframe::attack;

namespace {

constexpr std::uint32_t kTrials = 8;

ExplFramePresentConfig attack_cfg(std::uint64_t seed) {
  ExplFramePresentConfig cfg;
  cfg.templating.buffer_bytes = 4 * kMiB;
  cfg.templating.hammer_iterations = 100'000;
  Rng rng(seed * 131 + 17);
  rng.fill_bytes(cfg.victim.key);
  cfg.ciphertext_budget = 2000;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main() {
  print_banner(std::cout, "EXP-T7: end-to-end ExplFrame on PRESENT-80");
  std::cout << "(" << kTrials
            << " machines; denser weak-cell population than EXP-T4 because "
               "the PRESENT table exposes only 16 bytes x 4 live bits)\n\n";

  std::size_t templated = 0, steered = 0, faulted = 0, success = 0;
  Samples rows, cts, residual;
  for (std::uint32_t i = 0; i < kTrials; ++i) {
    kernel::SystemConfig sys_cfg = vulnerable_system(700 + i);
    sys_cfg.dram.weak_cells.cells_per_mib = 512.0;
    kernel::System sys(sys_cfg);
    ExplFramePresentAttack attack(sys, attack_cfg(700 + i));
    const auto r = attack.run();
    templated += r.template_found;
    steered += r.steered;
    faulted += r.fault_injected;
    success += r.success;
    rows.add(static_cast<double>(r.rows_scanned));
    if (r.success) {
      cts.add(static_cast<double>(r.ciphertexts_used));
      residual.add(static_cast<double>(r.residual_search));
    }
  }

  Table t({"phase", "success", "rate"});
  const auto pct = [&](std::size_t n) {
    const auto ci = wilson_interval(n, kTrials);
    return Table::percent(ci.p) + "  [" + Table::percent(ci.lo) + ", " +
           Table::percent(ci.hi) + "]";
  };
  t.row("1 template (usable low-nibble flip)", templated, pct(templated));
  t.row("3 steer", steered, pct(steered));
  t.row("4 fault injected", faulted, pct(faulted));
  t.row("overall success (80-bit key)", success, pct(success));
  t.print(std::cout);
  std::cout << "mean rows templated: " << rows.mean()
            << " (vs ~70 for AES in EXP-T4 — the 16-byte window costs a "
               "longer scan)\n";
  if (cts.count() > 0) {
    std::cout << "mean ciphertexts to key: " << cts.mean()
              << " (vs ~2500 for AES); mean residual search: "
              << residual.mean() << " of 65536 candidates\n";
  }
  return 0;
}
