// EXP-T7 — ExplFrame against PRESENT-80 (the title's "block cipherS"),
// through the SAME Campaign code path as the AES run in EXP-T4 — only the
// CampaignConfig differs. The quantitative contrast with AES:
//   * the table target window is 16 bytes with only 4 live bits each
//     (vs 256 x 8 for AES) — templating needs a much longer scan and can
//     exhaust the buffer;
//   * once the fault lands, PFA needs ~100 ciphertexts (16-value alphabet)
//     plus a <= 2^16 residual key-schedule search — far below AES's ~2300.
//
//   $ ./bench_present [--format=ascii|markdown|csv]
#include <cstring>
#include <iostream>
#include <string>

#include "attack/campaign_runner.hpp"
#include "common.hpp"
#include "scenario/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::bench;
using namespace explframe::attack;

namespace {

// Configuration lives in the registry: `explsim run present-single-flip`
// reproduces this sweep (and docs/results/present-single-flip.md archives
// its report).
RunnerConfig runner_cfg() {
  return scenario::builtin_scenario("present-single-flip").runner_config();
}

}  // namespace

int main(int argc, char** argv) {
  TableFormat format = TableFormat::kAscii;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto parsed =
        arg.rfind("--format=", 0) == 0
            ? try_parse_table_format(arg.substr(std::strlen("--format=")))
            : std::nullopt;
    if (!parsed) {
      std::cerr << "unknown option " << arg << "\nusage: " << argv[0]
                << " [--format=ascii|markdown|csv]\n";
      return 2;
    }
    format = *parsed;
  }
  print_banner(std::cout, "EXP-T7: end-to-end ExplFrame on PRESENT-80");
  std::cout << "(" << runner_cfg().trials
            << " machines; denser weak-cell population than EXP-T4 because "
               "the PRESENT table exposes only 16 bytes x 4 live bits)\n\n";

  CampaignRunner runner(runner_cfg());
  const CampaignAggregate agg = runner.run();

  Samples residual;
  for (const CampaignReport& r : agg.reports)
    if (r.success) residual.add(static_cast<double>(r.residual_search));

  agg.phase_table().print(std::cout, format);
  std::cout << "mean rows templated: " << agg.rows_scanned.mean()
            << " (vs ~70 for AES in EXP-T4 — the 16-byte window costs a "
               "longer scan)\n";
  if (agg.ciphertexts_used.count() > 0) {
    std::cout << "mean ciphertexts to key: " << agg.ciphertexts_used.mean()
              << " (vs ~2500 for AES); mean residual search: "
              << residual.mean() << " of 65536 candidates\n";
  }
  std::cout << "sweep throughput: " << agg.trials_per_second()
            << " trials/sec over " << agg.wall_seconds << " s\n";
  return 0;
}
