// PERF — packed-SoA DRAM state vs the seed layout at multi-GB geometries.
//
// The bit-packed arenas exist to make giant simulated modules affordable:
// the seed kept weak cells in an unordered_map of heap vectors (~100 B of
// node overhead per cell) plus a 1-byte-per-row presence array, so
// geometry-scaled bookkeeping — not the analytic hammer kernel — capped
// the capacity a campaign could simulate. This bench builds both
// representations across a rows × ranks × channels scaling curve (the
// seed layout via tests/dram/reference_dram.hpp, under the documented
// conservative cost model; the packed layout via DramDevice::state_bytes)
// and derives, from each side's measured bytes-per-simulated-GiB, the
// maximum capacity that fits a fixed bookkeeping budget.
//
// Writes BENCH_geometry.json (override with --json=PATH) and exits
// non-zero unless the packed representation sustains BOTH bars:
//   * >= 8x the seed's maximum simulated capacity (--bar-capacity=X)
//   * <  2x the seed's resident bytes per simulated GiB (--bar-memory=X)
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "../tests/dram/reference_dram.hpp"
#include "dram/dram_device.hpp"
#include "dram/geometry.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

using namespace explframe;

namespace {

/// Host-RAM budget the "maximum simulated geometry" is defined against.
constexpr std::uint64_t kStateBudget = 64 * kMiB;
constexpr std::uint64_t kSeed = 42;

/// The population density both layouts carry: the stock realistic profile
/// (WeakCellParams' default 4 cells/MiB, scenario::Scenario::kRealistic) —
/// the density multi-GB capacity sweeps actually run at. The seed layout's
/// dominant cost at this density is its 1-byte-per-row presence array plus
/// ~100 B of map-node overhead per cell; denser artificial profiles
/// (kVulnerable's 128/MiB) amortize the per-row floor and narrow the gap,
/// so this bench deliberately measures the density the capacity claim is
/// about rather than the one most flattering to either side.
dram::DeviceParams bench_params() {
  dram::DeviceParams params;
  params.weak_cells.threshold_log_mean = 10.4;
  params.weak_cells.threshold_min = 25'000;
  return params;
}

/// One measured point of the scaling curve.
struct Point {
  std::string label;       ///< geometry description
  std::uint64_t capacity;  ///< simulated bytes
  std::uint64_t ranks = 1;
  std::uint64_t channels = 1;
  std::uint64_t seed_bytes = 0;    ///< reference-layout state bytes
  std::uint64_t packed_bytes = 0;  ///< packed-layout state bytes
};

double per_gib(std::uint64_t state_bytes, std::uint64_t capacity) {
  return static_cast<double>(state_bytes) /
         (static_cast<double>(capacity) / static_cast<double>(kGiB));
}

std::uint64_t measure_packed(const dram::Geometry& g) {
  const dram::DramDevice device(g, bench_params(), kSeed);
  return device.state_bytes();
}

std::uint64_t measure_seed_layout(const dram::Geometry& g) {
  const refdram::RefDevice device(g, bench_params(), kSeed);
  return device.state_bytes();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_geometry.json";
  double bar_capacity = 8.0;
  double bar_memory = 2.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--bar-capacity=", 0) == 0)
      bar_capacity = std::atof(arg.c_str() + 15);
    if (arg.rfind("--bar-memory=", 0) == 0)
      bar_memory = std::atof(arg.c_str() + 13);
  }

  print_banner(std::cout, "PERF: packed DRAM state vs seed layout");

  // The curve. The seed layout is measured only while it still fits a
  // few multiples of the budget (its map alone would hold ~20 MB/GiB);
  // the packed layout keeps climbing through the multi-rank region
  // (with_capacity adds ranks past 4 GiB) and one explicit multi-channel
  // shape.
  std::vector<Point> curve;
  for (const std::uint64_t gib : {1ull, 2ull, 4ull, 8ull, 16ull, 32ull}) {
    const dram::Geometry g = dram::Geometry::with_capacity(gib * kGiB);
    Point p;
    p.label = std::to_string(gib) + " GiB";
    p.capacity = g.total_bytes();
    p.ranks = g.ranks;
    p.channels = g.channels;
    if (gib <= 8) p.seed_bytes = measure_seed_layout(g);
    p.packed_bytes = measure_packed(g);
    curve.push_back(p);
  }
  {
    dram::Geometry g;  // 2 channels x 2 ranks x 8 banks x 64Ki rows = 16 GiB
    g.channels = 2;
    g.ranks = 2;
    g.rows_per_bank = 65536;
    Point p;
    p.label = "16 GiB 2ch";
    p.capacity = g.total_bytes();
    p.ranks = g.ranks;
    p.channels = g.channels;
    p.packed_bytes = measure_packed(g);
    curve.push_back(p);
  }

  Table t({"geometry", "ranks", "ch", "seed B/GiB", "packed B/GiB"});
  double seed_bpg = 0.0;    // at the largest seed-measured point
  double packed_bpg = 0.0;  // at the largest packed point
  for (const Point& p : curve) {
    const double sb = p.seed_bytes ? per_gib(p.seed_bytes, p.capacity) : 0.0;
    const double pb = per_gib(p.packed_bytes, p.capacity);
    if (p.seed_bytes) seed_bpg = sb;
    packed_bpg = pb;
    t.row(p.label, p.ranks, p.channels,
          p.seed_bytes ? std::to_string(static_cast<std::uint64_t>(sb)) : "-",
          static_cast<std::uint64_t>(pb));
  }
  t.print(std::cout);

  // Bytes-per-GiB is flat in capacity for both layouts (both are linear
  // in cells + rows), so the budgeted maximum follows from the largest
  // measured point of each curve.
  const double seed_max_gib = static_cast<double>(kStateBudget) / seed_bpg;
  const double packed_max_gib = static_cast<double>(kStateBudget) / packed_bpg;
  const double capacity_ratio = packed_max_gib / seed_max_gib;
  const double memory_ratio = packed_bpg / seed_bpg;

  std::cout << "budget " << kStateBudget / kMiB << " MiB of bookkeeping: seed "
            << "layout caps at " << seed_max_gib << " GiB, packed at "
            << packed_max_gib << " GiB (" << capacity_ratio
            << "x capacity, " << memory_ratio << "x memory per GiB)\n";

  const bool pass =
      capacity_ratio >= bar_capacity && memory_ratio < bar_memory;
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"geometry\",\n"
       << "  \"cells_per_mib\": " << bench_params().weak_cells.cells_per_mib
       << ",\n"
       << "  \"state_budget_bytes\": " << kStateBudget << ",\n"
       << "  \"curve\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const Point& p = curve[i];
    json << "    {\"geometry\": \"" << p.label << "\", \"capacity_bytes\": "
         << p.capacity << ", \"ranks\": " << p.ranks << ", \"channels\": "
         << p.channels << ", \"seed_state_bytes\": " << p.seed_bytes
         << ", \"packed_state_bytes\": " << p.packed_bytes << "}"
         << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"seed_bytes_per_gib\": " << seed_bpg << ",\n"
       << "  \"packed_bytes_per_gib\": " << packed_bpg << ",\n"
       << "  \"seed_max_gib\": " << seed_max_gib << ",\n"
       << "  \"packed_max_gib\": " << packed_max_gib << ",\n"
       << "  \"capacity_ratio\": " << capacity_ratio << ",\n"
       << "  \"memory_ratio\": " << memory_ratio << ",\n"
       << "  \"bar_capacity\": " << bar_capacity << ",\n"
       << "  \"bar_memory\": " << bar_memory << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "\nwrote " << json_path << "\n";

  if (capacity_ratio < bar_capacity) {
    std::cerr << "FAIL: capacity headroom " << capacity_ratio << "x below "
              << bar_capacity << "x\n";
    return 1;
  }
  if (memory_ratio >= bar_memory) {
    std::cerr << "FAIL: memory per simulated GiB " << memory_ratio
              << "x not below " << bar_memory << "x\n";
    return 1;
  }
  return 0;
}
