// EXP-A1 — Ablations of the design choices DESIGN.md calls out.
//
//   (a) pcp list policy: LIFO (Linux) vs FIFO — the exploit needs LIFO;
//   (b) pcp `high` watermark: how long a planted frame survives cache
//       pressure before being drained back to buddy;
//   (c) page-table charging: a cold victim's first fault spends the planted
//       frame on a PTE page instead of the data page;
//   (d) zero-on-allocation: without it, released attacker data leaks into
//       the victim (and vice versa).
#include <iostream>

#include "attack/victim.hpp"
#include "common.hpp"
#include "kernel/noise.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::bench;
using namespace explframe::attack;

namespace {

constexpr std::uint32_t kTrials = 150;

/// Steering trial with a configurable system; returns whether the victim's
/// table page received the planted frame.
bool steer_once(kernel::SystemConfig sys_cfg, std::uint64_t seed,
                bool victim_warm, std::uint32_t noise_ops) {
  sys_cfg.seed = seed;
  kernel::System sys(sys_cfg);
  kernel::Task& attacker = sys.spawn("attacker", 0);
  const crypto::TableCipher& cipher =
      crypto::cipher_for(crypto::CipherKind::kAes128);
  VictimConfig vc;
  vc.key = crypto::random_key(cipher, seed);
  vc.warm_up = victim_warm;
  VictimCipherService victim(sys, 0, cipher, vc);
  victim.start();

  const vm::VirtAddr va = sys.sys_mmap(attacker, 8 * kPageSize);
  for (int p = 0; p < 8; ++p) {
    const std::uint8_t b = 0xEE;
    sys.mem_write(attacker, va + p * kPageSize, {&b, 1});
  }
  const mm::Pfn planted = sys.translate(attacker, va + 3 * kPageSize);
  sys.sys_munmap(attacker, va + 3 * kPageSize, kPageSize);

  if (noise_ops > 0) {
    kernel::Task& n = sys.spawn("noise", 0);
    kernel::NoiseWorkload noise(sys, n, {}, seed ^ 0xABCD);
    noise.run(noise_ops);
  }

  victim.install_tables();
  return sys.translate(victim.task(), victim.table_page_va()) == planted;
}

std::string rate(std::size_t hits) {
  const auto ci = wilson_interval(hits, kTrials);
  return Table::percent(ci.p) + "  [" + Table::percent(ci.lo) + ", " +
         Table::percent(ci.hi) + "]";
}

void ablate_lifo() {
  std::cout << "\n(a) pcp list policy (the exploit's core assumption):\n";
  Table t({"pcp policy", "P(steered)"});
  for (const bool lifo : {true, false}) {
    kernel::SystemConfig cfg = quiet_system(0);
    cfg.pcp.lifo = lifo;
    std::size_t hits = 0;
    for (std::uint32_t i = 0; i < kTrials; ++i)
      hits += steer_once(cfg, 1000 + i, true, 0) ? 1 : 0;
    t.row(lifo ? "LIFO (Linux)" : "FIFO (ablated)", rate(hits));
  }
  t.print(std::cout);
  std::cout << "FIFO still steers eventually (the frame waits behind the "
               "refilled batch) but loses head-of-line placement: any "
               "intervening allocation takes the planted frame's slot.\n";

  Table t2({"pcp policy", "noise ops", "P(steered)"});
  for (const bool lifo : {true, false}) {
    for (const std::uint32_t ops : {2u, 8u}) {
      kernel::SystemConfig cfg = quiet_system(0);
      cfg.pcp.lifo = lifo;
      std::size_t hits = 0;
      for (std::uint32_t i = 0; i < kTrials; ++i)
        hits += steer_once(cfg, 1500 + i, true, ops) ? 1 : 0;
      t2.row(lifo ? "LIFO" : "FIFO", ops, rate(hits));
    }
  }
  t2.print(std::cout);
}

void ablate_pcp_high() {
  std::cout << "\n(b) planted-frame fate under additional frees from the "
               "releasing CPU (hot frees bury the head; past `high` the "
               "cache drains its cold end back to buddy):\n";
  Table t({"pcp high", "extra frees", "free temp",
           "P(head still planted)", "P(planted drained to buddy)"});
  for (const std::uint32_t high : {16u, 186u}) {
    for (const std::uint32_t extra : {4u, 32u, 256u}) {
      for (const bool cold : {false, true}) {
        kernel::SystemConfig cfg = quiet_system(0);
        cfg.pcp.high = high;
        std::size_t head_planted = 0, drained = 0;
        for (std::uint32_t i = 0; i < kTrials; ++i) {
          cfg.seed = 2000 + i;
          kernel::System sys(cfg);
          kernel::Task& attacker = sys.spawn("attacker", 0);
          const std::uint32_t pages = extra + 4;
          const vm::VirtAddr va = sys.sys_mmap(attacker, pages * kPageSize);
          for (std::uint32_t p = 0; p < pages; ++p) {
            const std::uint8_t b = 0xEE;
            sys.mem_write(attacker, va + p * kPageSize, {&b, 1});
          }
          const mm::Pfn planted = sys.translate(attacker, va);
          sys.sys_munmap(attacker, va, kPageSize);  // plant
          // Extra frees from the same CPU, one page at a time.
          for (std::uint32_t p = 1; p <= extra; ++p) {
            const mm::Pfn pfn =
                sys.translate(attacker, va + p * kPageSize);
            attacker.space().page_table().unmap(va + p * kPageSize);
            sys.allocator().free_pages(pfn, 0, 0, cold);
          }
          const auto& frame = sys.allocator().frames().at(planted);
          if (frame.state == mm::PageState::kFreeBuddy ||
              frame.state == mm::PageState::kFreeTail) {
            ++drained;
          } else {
            mm::Zone* zone = sys.allocator().zone_of(planted);
            const auto view = zone->pcp(0).peek();
            if (!view.empty() && view.front() == planted) ++head_planted;
          }
        }
        t.row(high, extra, cold ? "cold (tail)" : "hot (head)",
              rate(head_planted), rate(drained));
      }
    }
  }
  t.print(std::cout);
  std::cout << "cold frees leave the planted frame at the hot head "
               "indefinitely; hot frees bury it, and once the cache "
               "overflows `high` it is eventually drained to buddy — the "
               "attack window is bounded by same-CPU free traffic.\n";
}

void ablate_page_table_charging() {
  std::cout << "\n(c) victim warm-up (page-table nodes pre-faulted) vs cold "
               "start, with page-table charging on/off:\n";
  Table t({"page tables charged", "victim warm", "P(table page steered)"});
  for (const bool charged : {true, false}) {
    for (const bool warm : {true, false}) {
      kernel::SystemConfig cfg = quiet_system(0);
      cfg.charge_page_tables = charged;
      std::size_t hits = 0;
      for (std::uint32_t i = 0; i < kTrials; ++i)
        hits += steer_once(cfg, 3000 + i, warm, 0) ? 1 : 0;
      t.row(charged, warm, rate(hits));
    }
  }
  t.print(std::cout);
  std::cout << "with charging on and a cold victim, the first fault's PTE "
               "page consumes the planted frame — the attack must target "
               "warm victims (long-running services), as the paper's "
               "scenario does.\n";
}

void ablate_zero_on_alloc() {
  std::cout << "\n(d) zero-on-allocation (defence-in-depth interaction):\n";
  Table t({"zero on alloc", "victim page still holds attacker data"});
  for (const bool zero : {true, false}) {
    kernel::SystemConfig cfg = quiet_system(0);
    cfg.zero_on_alloc = zero;
    cfg.charge_page_tables = false;
    std::size_t leaked = 0;
    for (std::uint32_t i = 0; i < kTrials; ++i) {
      cfg.seed = 4000 + i;
      kernel::System sys(cfg);
      kernel::Task& a = sys.spawn("a", 0);
      const vm::VirtAddr va = sys.sys_mmap(a, kPageSize);
      const std::uint8_t mark[8] = {0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4};
      sys.mem_write(a, va, mark);
      sys.sys_munmap(a, va, kPageSize);
      kernel::Task& b = sys.spawn("b", 0);
      const vm::VirtAddr vb = sys.sys_mmap(b, kPageSize);
      std::uint8_t out[8] = {};
      sys.mem_read(b, vb, out);
      leaked += std::equal(out, out + 8, mark) ? 1 : 0;
    }
    t.row(zero, rate(leaked));
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  print_banner(std::cout, "EXP-A1: design-choice ablations");
  ablate_lifo();
  ablate_pcp_high();
  ablate_page_table_charging();
  ablate_zero_on_alloc();
  return 0;
}
