// PERF — shard-scaling on the templating-frontier grid.
//
// Sharding exists to buy wall-clock: N processes each run the round-robin
// subset i % N of a grid's points and a merge reassembles byte-identical
// reports. This bench proves the partition actually scales by running the
// SAME three shard workloads two ways:
//
//   sequential — shard 1/3, 2/3, 3/3 back to back, one worker thread each
//                (what a single machine without sharding would pay);
//   sharded    — the three shards concurrently, one worker thread each
//                (what three cooperating processes pay, modelled in-process
//                so the comparison excludes process startup).
//
// Both sides include the full checkpoint tax (every point fsynced), and
// the sharded run's checkpoints are merged and verified complete at the
// end — a speedup that broke the output would be no speedup at all.
// Writes BENCH_shard.json (override with --json=PATH) and exits non-zero
// if the 3-way speedup falls under the bar (default 2.0x, override with
// --bar=FACTOR) — the CI smoke check that shard scaling stays real. The
// bar is enforced only when the host has at least 3 cores: concurrency
// cannot beat sequential on fewer, and a scaling bench that fails on a
// laptop's power-saver profile would just get deleted.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "scenario/registry.hpp"
#include "support/check.hpp"
#include "support/table.hpp"
#include "sweep/registry.hpp"
#include "sweep/runner.hpp"

using namespace explframe;

namespace {

constexpr std::uint32_t kShards = 3;

double seconds_since(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> d =
      std::chrono::steady_clock::now() - start;
  return d.count();
}

std::string shard_checkpoint(std::uint32_t index) {
  return (std::filesystem::temp_directory_path() /
          ("bench_shard." + std::to_string(index) + ".ckpt"))
      .string();
}

/// Run one shard with a single worker thread, fresh checkpoint.
void run_one_shard(const sweep::SweepSpec& spec, std::uint32_t index) {
  sweep::SweepRunOptions options;
  options.threads = 1;
  options.checkpoint_path = shard_checkpoint(index);
  options.shard_index = index;
  options.shard_count = kShards;
  const auto result =
      sweep::run_sweep(spec, scenario::Registry::builtin(), options);
  EXPLFRAME_CHECK_MSG(result.has_value(), "bench shard run must succeed");
}

double sequential_seconds(const sweep::SweepSpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t index = 0; index < kShards; ++index)
    run_one_shard(spec, index);
  return seconds_since(start);
}

double sharded_seconds(const sweep::SweepSpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> shards;
  for (std::uint32_t index = 0; index < kShards; ++index)
    shards.emplace_back([&spec, index] { run_one_shard(spec, index); });
  for (std::thread& shard : shards) shard.join();
  return seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_shard.json";
  double bar = 2.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--bar=", 0) == 0) bar = std::atof(arg.c_str() + 6);
  }

  print_banner(std::cout, "PERF: shard scaling (templating-frontier)");

  const sweep::SweepSpec& spec = sweep::builtin_sweep("templating-frontier");
  std::string error;
  const auto points = spec.expand(scenario::Registry::builtin(), &error);
  EXPLFRAME_CHECK_MSG(points.has_value(), "builtin sweep must expand");

  // Warm-up, then interleaved best-of-3: minima cancel scheduler noise,
  // interleaving keeps thermal drift from taxing one side only.
  (void)sequential_seconds(spec);
  double sequential = 0.0;
  double sharded = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const double seq = sequential_seconds(spec);
    const double par = sharded_seconds(spec);
    if (rep == 0 || seq < sequential) sequential = seq;
    if (rep == 0 || par < sharded) sharded = par;
  }
  const double speedup = sharded > 0.0 ? sequential / sharded : 0.0;

  // The speedup must not have cost correctness: the last sharded run's
  // checkpoints merge into the complete grid.
  std::vector<std::string> checkpoints;
  for (std::uint32_t index = 0; index < kShards; ++index)
    checkpoints.push_back(shard_checkpoint(index));
  const auto merged = sweep::merge_checkpoints(
      spec, scenario::Registry::builtin(), checkpoints, &error);
  EXPLFRAME_CHECK_MSG(merged.has_value(), "shard checkpoints must merge");
  EXPLFRAME_CHECK_MSG(merged->complete(), "merged grid must be complete");
  for (const std::string& path : checkpoints)
    std::filesystem::remove(path);

  Table t({"mode", "seconds", "speedup"});
  t.row("sequential shards", sequential, "-");
  t.row("concurrent shards", sharded,
        std::to_string(speedup).substr(0, 4) + "x");
  t.print(std::cout);
  std::cout << spec.name << ": " << points->size() << " points, "
            << kShards << " shards, 1 worker thread per shard\n";

  const unsigned cores = std::thread::hardware_concurrency();
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"shard\",\n"
       << "  \"sweep\": \"" << spec.name << "\",\n"
       << "  \"points\": " << points->size() << ",\n"
       << "  \"shards\": " << kShards << ",\n"
       << "  \"cores\": " << cores << ",\n"
       << "  \"sequential_seconds\": " << sequential << ",\n"
       << "  \"sharded_seconds\": " << sharded << ",\n"
       << "  \"speedup\": " << speedup << "\n"
       << "}\n";
  std::cout << "\nwrote " << json_path << "\n";

  // The acceptance bar: three concurrent shards must buy at least `bar`x
  // (default 2x) over running the same shards back to back.
  if (cores < kShards) {
    std::cout << "SKIP: " << cores << " core(s) < " << kShards
              << " shards — speedup bar not enforced on this host\n";
    return 0;
  }
  if (speedup < bar) {
    std::cerr << "FAIL: shard speedup " << speedup << "x is under " << bar
              << "x\n";
    return 1;
  }
  return 0;
}
