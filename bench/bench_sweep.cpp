// PERF — sweep-engine overhead.
//
// A sweep must cost what its points cost: the grid expansion, the
// work-stealing pool, the per-point record building and the fsynced
// checkpoint log all ride on top of CampaignRunner, and this bench keeps
// that tax honest. It runs one registered grid twice:
//
//   standalone — every expanded point executed directly through
//                CampaignRunner (the cost floor: no sweep machinery);
//   sweep      — the same points through run_sweep with checkpointing
//                enabled (the full engine, as `explsim sweep run` uses it).
//
// Both run single-threaded so the comparison measures machinery, not
// scheduling luck. Writes BENCH_sweep.json (override with --json=PATH) so
// CI can archive the trajectory, and exits non-zero if the sweep path
// costs more than 5% over the summed standalone runs (override with
// --bar=FRACTION) — the CI smoke check that the engine stays thin.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "attack/campaign_runner.hpp"
#include "scenario/registry.hpp"
#include "support/table.hpp"
#include "sweep/registry.hpp"
#include "sweep/runner.hpp"

using namespace explframe;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> d =
      std::chrono::steady_clock::now() - start;
  return d.count();
}

/// Cost floor: each point as a bare CampaignRunner, no sweep machinery.
double standalone_seconds(const std::vector<sweep::SweepPoint>& points) {
  const auto start = std::chrono::steady_clock::now();
  for (const sweep::SweepPoint& point : points) {
    attack::RunnerConfig config = point.scenario.runner_config();
    config.threads = 1;
    attack::CampaignRunner runner(config);
    (void)runner.run();
  }
  return seconds_since(start);
}

double sweep_seconds(const sweep::SweepSpec& spec,
                     const std::string& checkpoint) {
  sweep::SweepRunOptions options;
  options.threads = 1;
  options.checkpoint_path = checkpoint;
  const auto start = std::chrono::steady_clock::now();
  const auto result =
      sweep::run_sweep(spec, scenario::Registry::builtin(), options);
  EXPLFRAME_CHECK(result.has_value());
  return seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sweep.json";
  double bar = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    if (arg.rfind("--bar=", 0) == 0) bar = std::atof(arg.c_str() + 6);
  }

  print_banner(std::cout, "PERF: sweep-engine overhead");

  const sweep::SweepSpec& spec = sweep::builtin_sweep("defence-grid");
  std::string error;
  const auto points =
      spec.expand(scenario::Registry::builtin(), &error);
  EXPLFRAME_CHECK_MSG(points.has_value(), "builtin sweep must expand");
  const std::string checkpoint =
      (std::filesystem::temp_directory_path() / "bench_sweep.ckpt").string();

  // Warm-up (allocator pools, code paths), then interleaved best-of-3:
  // the minimum of repeated runs cancels frequency/scheduler noise that a
  // single 0.3 s measurement cannot, and interleaving keeps a mid-bench
  // thermal drift from taxing one side only.
  (void)standalone_seconds(*points);
  double standalone = 0.0;
  double swept = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const double alone = standalone_seconds(*points);
    const double engine = sweep_seconds(spec, checkpoint);
    if (rep == 0 || alone < standalone) standalone = alone;
    if (rep == 0 || engine < swept) swept = engine;
  }
  const double overhead =
      standalone > 0.0 ? swept / standalone - 1.0 : 0.0;

  Table t({"path", "seconds", "overhead"});
  t.row("standalone campaigns", standalone, "-");
  t.row("sweep engine", swept, Table::percent(overhead));
  t.print(std::cout);
  std::cout << spec.name << ": " << points->size()
            << " points, single-threaded, checkpointing enabled\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"sweep\",\n"
       << "  \"sweep\": \"" << spec.name << "\",\n"
       << "  \"points\": " << points->size() << ",\n"
       << "  \"standalone_seconds\": " << standalone << ",\n"
       << "  \"sweep_seconds\": " << swept << ",\n"
       << "  \"overhead_fraction\": " << overhead << "\n"
       << "}\n";
  std::cout << "\nwrote " << json_path << "\n";

  // The acceptance bar: the engine may add at most `bar` (default 5%)
  // over the summed standalone campaign runs.
  if (overhead > bar) {
    std::cerr << "FAIL: sweep overhead " << Table::percent(overhead)
              << " exceeds " << Table::percent(bar) << "\n";
    return 1;
  }
  return 0;
}
