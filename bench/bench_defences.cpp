// EXP-D1 — Countermeasure evaluation (extension).
//
// Runs the full ExplFrame campaign against hardware mitigations:
//   * none            — baseline vulnerable module;
//   * TRR             — in-DRAM target row refresh (post-2014 parts);
//   * SECDED ECC      — server memory, single-bit correction on read;
//   * TRR + ECC       — both.
// Also reports where in the pipeline each mitigation stops the attack and
// the mitigation-side counters (interventions / corrections). Each defence
// row is a registered scenario (defence-none / defence-trr / defence-ecc /
// defence-trr-ecc) — `explsim run <name>` reproduces any row on its own.
// Trials run individually (not via CampaignRunner) because the mitigation
// counters live on each trial's System, which the runner owns transiently;
// the per-trial seeds still come from CampaignRunner so the sweep is
// reproducible trial by trial.
#include <iostream>
#include <map>

#include "attack/campaign_runner.hpp"
#include "common.hpp"
#include "scenario/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::bench;
using namespace explframe::attack;

namespace {

struct DefenceSpec {
  const char* label;
  const char* scenario;
};

}  // namespace

int main() {
  const DefenceSpec specs[] = {
      {"none (baseline)", "defence-none"},
      {"TRR", "defence-trr"},
      {"SECDED ECC", "defence-ecc"},
      {"TRR + ECC", "defence-trr-ecc"},
  };

  print_banner(std::cout, "EXP-D1: ExplFrame vs hardware mitigations");
  std::cout << "(" << scenario::builtin_scenario("defence-none").trials
            << " machines per row; attacker gives up after "
            << scenario::builtin_scenario("defence-none").max_rows
            << " templated rows)\n\n";

  Table t({"defence", "P(usable template)", "P(key recovered)",
           "failure stage (mode)", "mitigation counters (mean)"});
  for (const DefenceSpec& spec : specs) {
    const scenario::Scenario& s = scenario::builtin_scenario(spec.scenario);
    const RunnerConfig cfg = s.runner_config();
    const std::uint32_t kTrials = cfg.trials;
    const bool has_trr = cfg.system.dram.trr.enabled;
    const bool has_ecc = cfg.system.dram.ecc.enabled;
    std::size_t templated = 0, success = 0;
    Samples trr_hits, ecc_corr;
    std::map<std::string, std::uint32_t> stages;
    for (std::uint32_t i = 0; i < kTrials; ++i) {
      const auto [sys_seed, camp_seed] = CampaignRunner::trial_seeds(s.seed, i);
      kernel::SystemConfig sys_cfg = cfg.system;
      sys_cfg.seed = sys_seed;
      kernel::System sys(sys_cfg);
      CampaignConfig camp = cfg.campaign;
      camp.seed = camp_seed;
      const CampaignReport r = ExplFrameCampaign(sys, camp).run();
      templated += r.template_found;
      success += r.success;
      if (!r.success) ++stages[r.failure_stage()];
      trr_hits.add(static_cast<double>(sys.dram().trr_interventions()));
      ecc_corr.add(static_cast<double>(sys.dram().ecc_corrected_bits()));
    }

    std::string stage = "none";
    std::uint32_t stage_count = 0;
    for (const auto& [name, count] : stages) {
      if (count > stage_count) {
        stage = name;
        stage_count = count;
      }
    }

    std::string counters = "-";
    if (has_trr || has_ecc) {
      counters.clear();
      if (has_trr) {
        counters.append("TRR interventions ");
        counters.append(std::to_string(static_cast<long>(trr_hits.mean())));
      }
      if (has_ecc) {
        if (has_trr) counters.append(", ");
        counters.append("ECC corrections ");
        counters.append(std::to_string(static_cast<long>(ecc_corr.mean())));
      }
    }

    t.row(spec.label,
          Table::percent(static_cast<double>(templated) / kTrials),
          Table::percent(static_cast<double>(success) / kTrials), stage,
          counters);
  }
  t.print(std::cout);

  std::cout
      << "\nhow each mitigation breaks the chain:\n"
         "  TRR refreshes the neighbours of hot rows before any weak cell\n"
         "  crosses its threshold - templating finds nothing to plant.\n"
         "  ECC corrects the single-bit flip on every read - the attacker's\n"
         "  template scan sees clean data, and even a planted flip would be\n"
         "  corrected when the victim loads its S-box.\n";
  return 0;
}
