// EXP-D1 — Countermeasure evaluation (extension).
//
// Runs the full ExplFrame pipeline against hardware mitigations:
//   * none            — baseline vulnerable module;
//   * TRR             — in-DRAM target row refresh (post-2014 parts);
//   * SECDED ECC      — server memory, single-bit correction on read;
//   * TRR + ECC       — both.
// Also reports where in the pipeline each mitigation stops the attack and
// the mitigation-side counters (interventions / corrections).
#include <iostream>

#include "attack/explframe.hpp"
#include "common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::bench;
using namespace explframe::attack;

namespace {

constexpr std::uint32_t kTrials = 6;

struct DefenceSpec {
  const char* name;
  bool trr;
  bool ecc;
};

ExplFrameConfig attack_cfg(std::uint64_t seed) {
  ExplFrameConfig cfg;
  cfg.templating.buffer_bytes = 4 * kMiB;
  cfg.templating.hammer_iterations = 100'000;
  cfg.templating.max_rows = 192;  // the attacker's time budget
  Rng rng(seed * 977 + 5);
  rng.fill_bytes(cfg.victim.key);
  cfg.ciphertext_budget = 8000;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main() {
  print_banner(std::cout, "EXP-D1: ExplFrame vs hardware mitigations");
  std::cout << "(" << kTrials
            << " machines per row; attacker gives up after 192 templated "
               "rows)\n\n";

  const DefenceSpec specs[] = {
      {"none (baseline)", false, false},
      {"TRR", true, false},
      {"SECDED ECC", false, true},
      {"TRR + ECC", true, true},
  };

  Table t({"defence", "P(usable template)", "P(key recovered)",
           "failure stage (mode)", "mitigation counters (mean)"});
  for (const DefenceSpec& spec : specs) {
    std::size_t templated = 0, success = 0;
    Samples trr_hits, ecc_corr;
    std::string stage = "none";
    for (std::uint32_t i = 0; i < kTrials; ++i) {
      kernel::SystemConfig sys_cfg = vulnerable_system(300 + i);
      sys_cfg.dram.trr.enabled = spec.trr;
      sys_cfg.dram.trr.threshold = 12'000;
      sys_cfg.dram.ecc.enabled = spec.ecc;
      kernel::System sys(sys_cfg);
      ExplFrameAttack attack(sys, attack_cfg(300 + i));
      const auto r = attack.run();
      templated += r.template_found;
      success += r.success;
      if (!r.success) stage = r.failure_stage();
      trr_hits.add(static_cast<double>(sys.dram().trr_interventions()));
      ecc_corr.add(static_cast<double>(sys.dram().ecc_corrected_bits()));
    }
    const auto pt = wilson_interval(templated, kTrials);
    const auto ps = wilson_interval(success, kTrials);
    std::string counters;
    if (spec.trr)
      counters += "TRR interventions " +
                  std::to_string(static_cast<long>(trr_hits.mean()));
    if (spec.ecc) {
      if (!counters.empty()) counters += ", ";
      counters += "ECC corrections " +
                  std::to_string(static_cast<long>(ecc_corr.mean()));
    }
    if (counters.empty()) counters = "-";
    t.row(spec.name, Table::percent(pt.p), Table::percent(ps.p),
          success == kTrials ? "none" : stage, counters);
  }
  t.print(std::cout);

  std::cout
      << "\nhow each mitigation breaks the chain:\n"
         "  TRR refreshes the neighbours of hot rows before any weak cell\n"
         "  crosses its threshold - templating finds nothing to plant.\n"
         "  ECC corrects the single-bit flip on every read - the attacker's\n"
         "  template scan sees clean data, and even a planted flip would be\n"
         "  corrected when the victim loads its S-box.\n";
  return 0;
}
