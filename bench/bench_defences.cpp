// EXP-D1 — Countermeasure evaluation (extension).
//
// Runs the full ExplFrame campaign against hardware mitigations:
//   * none            — baseline vulnerable module;
//   * TRR             — in-DRAM target row refresh (post-2014 parts);
//   * SECDED ECC      — server memory, single-bit correction on read;
//   * TRR + ECC       — both.
// Also reports where in the pipeline each mitigation stops the attack and
// the mitigation-side counters (interventions / corrections). Each defence
// is a SystemConfig entry driven through the same CampaignConfig — not a
// code change. Trials run individually (not via CampaignRunner) because the
// mitigation counters live on each trial's System, which the runner owns
// transiently; the per-trial seeds still come from CampaignRunner so the
// sweep is reproducible trial by trial.
#include <iostream>
#include <map>

#include "attack/campaign_runner.hpp"
#include "common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::bench;
using namespace explframe::attack;

namespace {

constexpr std::uint32_t kTrials = 6;

struct DefenceSpec {
  const char* name;
  bool trr;
  bool ecc;
};

CampaignConfig campaign_cfg() {
  CampaignConfig cfg;
  cfg.templating.buffer_bytes = 4 * kMiB;
  cfg.templating.hammer_iterations = 100'000;
  cfg.templating.max_rows = 192;  // the attacker's time budget
  cfg.ciphertext_budget = 8000;
  return cfg;
}

}  // namespace

int main() {
  print_banner(std::cout, "EXP-D1: ExplFrame vs hardware mitigations");
  std::cout << "(" << kTrials
            << " machines per row; attacker gives up after 192 templated "
               "rows)\n\n";

  const DefenceSpec specs[] = {
      {"none (baseline)", false, false},
      {"TRR", true, false},
      {"SECDED ECC", false, true},
      {"TRR + ECC", true, true},
  };

  Table t({"defence", "P(usable template)", "P(key recovered)",
           "failure stage (mode)", "mitigation counters (mean)"});
  for (const DefenceSpec& spec : specs) {
    std::size_t templated = 0, success = 0;
    Samples trr_hits, ecc_corr;
    std::map<std::string, std::uint32_t> stages;
    for (std::uint32_t i = 0; i < kTrials; ++i) {
      const auto [sys_seed, camp_seed] = CampaignRunner::trial_seeds(300, i);
      kernel::SystemConfig sys_cfg = vulnerable_system(0);
      sys_cfg.seed = sys_seed;
      sys_cfg.dram.trr.enabled = spec.trr;
      sys_cfg.dram.trr.threshold = 12'000;
      sys_cfg.dram.ecc.enabled = spec.ecc;
      kernel::System sys(sys_cfg);
      CampaignConfig camp = campaign_cfg();
      camp.seed = camp_seed;
      const CampaignReport r = ExplFrameCampaign(sys, camp).run();
      templated += r.template_found;
      success += r.success;
      if (!r.success) ++stages[r.failure_stage()];
      trr_hits.add(static_cast<double>(sys.dram().trr_interventions()));
      ecc_corr.add(static_cast<double>(sys.dram().ecc_corrected_bits()));
    }

    std::string stage = "none";
    std::uint32_t stage_count = 0;
    for (const auto& [name, count] : stages) {
      if (count > stage_count) {
        stage = name;
        stage_count = count;
      }
    }

    std::string counters = "-";
    if (spec.trr || spec.ecc) {
      counters.clear();
      if (spec.trr) {
        counters.append("TRR interventions ");
        counters.append(std::to_string(static_cast<long>(trr_hits.mean())));
      }
      if (spec.ecc) {
        if (spec.trr) counters.append(", ");
        counters.append("ECC corrections ");
        counters.append(std::to_string(static_cast<long>(ecc_corr.mean())));
      }
    }

    t.row(spec.name,
          Table::percent(static_cast<double>(templated) / kTrials),
          Table::percent(static_cast<double>(success) / kTrials), stage,
          counters);
  }
  t.print(std::cout);

  std::cout
      << "\nhow each mitigation breaks the chain:\n"
         "  TRR refreshes the neighbours of hot rows before any weak cell\n"
         "  crosses its threshold - templating finds nothing to plant.\n"
         "  ECC corrects the single-bit flip on every read - the attacker's\n"
         "  template scan sees clean data, and even a planted flip would be\n"
         "  corrected when the victim loads its S-box.\n";
  return 0;
}
