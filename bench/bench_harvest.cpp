// PERF — batched harvest pipeline.
//
// The online phase of the attack is 10^4..10^6 faulty ciphertexts per
// trial; with the hammer phase collapsed to near-zero by the burst path,
// harvest throughput is what bounds every sweep. This bench measures
// ciphertexts/sec through VictimCipherService for each cipher:
//
//   per-call — encrypt(): two simulated page-table walks + round-key
//              decode + one virtual dispatch per block;
//   batch    — encrypt_batch(): one snapshot + decoded EncryptContext per
//              memory epoch, blocks looped inside one dispatch.
//
// Both paths produce byte-identical ciphertext streams (asserted here on a
// sample, and by tests/attack/harvest_differential_test.cpp in depth).
// Writes the headline numbers to BENCH_harvest.json (override with
// --json=PATH) so CI can archive the perf trajectory per PR. Exits
// non-zero if the batch path fails its speedup bar (>= 10x for AES-128,
// >= 1x for every cipher) — the CI smoke check.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "attack/victim.hpp"
#include "common.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::attack;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  const std::chrono::duration<double> d =
      std::chrono::steady_clock::now() - start;
  return d.count();
}

struct HarvestRate {
  double cts_per_sec = 0.0;
  std::uint64_t blocks = 0;
};

struct VictimHarness {
  kernel::System system;
  VictimCipherService victim;

  VictimHarness(crypto::CipherKind kind, const crypto::TableCipher& cipher)
      : system(bench::quiet_system(7, 64)),
        victim(system, 0, cipher,
               [&] {
                 VictimConfig vc;
                 vc.key = crypto::random_key(cipher, 99);
                 return vc;
               }()) {
    (void)kind;
    victim.start();
    victim.install_tables();
  }
};

HarvestRate per_call_rate(crypto::CipherKind kind, std::uint64_t blocks) {
  const crypto::TableCipher& cipher = crypto::cipher_for(kind);
  VictimHarness h(kind, cipher);
  const std::size_t block = cipher.block_size();
  std::vector<std::uint8_t> pt(block);
  std::vector<std::uint8_t> ct(block);
  Rng rng(1234);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < blocks; ++i) {
    rng.fill_bytes(pt);
    h.victim.encrypt(pt, ct);
  }
  const double secs = seconds_since(start);
  return {secs > 0.0 ? static_cast<double>(blocks) / secs : 0.0, blocks};
}

HarvestRate batch_rate(crypto::CipherKind kind, std::uint64_t blocks,
                       std::uint32_t chunk) {
  const crypto::TableCipher& cipher = crypto::cipher_for(kind);
  VictimHarness h(kind, cipher);
  const std::size_t block = cipher.block_size();
  std::vector<std::uint8_t> pts(chunk * block);
  std::vector<std::uint8_t> cts(chunk * block);
  Rng rng(1234);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t done = 0; done < blocks;) {
    const std::uint64_t n = std::min<std::uint64_t>(chunk, blocks - done);
    const std::span<std::uint8_t> pt_span(pts.data(), n * block);
    rng.fill_bytes(pt_span);
    h.victim.encrypt_batch(pt_span, {cts.data(), n * block});
    done += n;
  }
  const double secs = seconds_since(start);
  return {secs > 0.0 ? static_cast<double>(blocks) / secs : 0.0, blocks};
}

/// Sanity: the two paths emit identical ciphertext bytes for the same
/// plaintext stream (the bench should never publish a speedup for a path
/// that drifted).
bool streams_identical(crypto::CipherKind kind, std::uint32_t blocks) {
  const crypto::TableCipher& cipher = crypto::cipher_for(kind);
  const std::size_t block = cipher.block_size();
  VictimHarness a(kind, cipher);
  VictimHarness b(kind, cipher);
  std::vector<std::uint8_t> pts(blocks * block);
  Rng rng(5678);
  rng.fill_bytes(pts);
  std::vector<std::uint8_t> scalar(blocks * block);
  for (std::uint32_t i = 0; i < blocks; ++i)
    a.victim.encrypt({pts.data() + i * block, block},
                     {scalar.data() + i * block, block});
  std::vector<std::uint8_t> batched(blocks * block);
  b.victim.encrypt_batch(pts, batched);
  return scalar == batched;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_harvest.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }

  print_banner(std::cout, "PERF: batched harvest pipeline");

  for (const auto kind :
       {crypto::CipherKind::kAes128, crypto::CipherKind::kPresent80}) {
    if (!streams_identical(kind, 512)) {
      std::cerr << "FAIL: batch and per-call ciphertext streams differ for "
                << crypto::to_string(kind) << "\n";
      return 1;
    }
  }

  // The per-call path pays its overhead per block; keep its budget moderate
  // so the bench stays quick. The batch path gets a larger budget so its
  // rate is not warm-up-dominated. Chunk size matches the campaign's AES
  // check cadence.
  constexpr std::uint64_t kSlowBlocks = 200'000;
  constexpr std::uint64_t kFastBlocks = 2'000'000;
  constexpr std::uint32_t kChunk = 256;

  const HarvestRate aes_slow =
      per_call_rate(crypto::CipherKind::kAes128, kSlowBlocks);
  const HarvestRate aes_fast =
      batch_rate(crypto::CipherKind::kAes128, kFastBlocks, kChunk);
  const HarvestRate present_slow =
      per_call_rate(crypto::CipherKind::kPresent80, kSlowBlocks);
  const HarvestRate present_fast =
      batch_rate(crypto::CipherKind::kPresent80, kFastBlocks, kChunk);

  const double aes_speedup = aes_slow.cts_per_sec > 0.0
                                 ? aes_fast.cts_per_sec / aes_slow.cts_per_sec
                                 : 0.0;
  const double present_speedup =
      present_slow.cts_per_sec > 0.0
          ? present_fast.cts_per_sec / present_slow.cts_per_sec
          : 0.0;

  std::cout << "\nharvest throughput (host wall clock):\n";
  Table t({"cipher", "path", "ciphertexts/sec", "speedup"});
  t.row("aes128", "per-call", aes_slow.cts_per_sec, 1.0);
  t.row("aes128", "batch", aes_fast.cts_per_sec, aes_speedup);
  t.row("present80", "per-call", present_slow.cts_per_sec, 1.0);
  t.row("present80", "batch", present_fast.cts_per_sec, present_speedup);
  t.print(std::cout);

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"harvest\",\n"
       << "  \"aes128_per_call_cts_per_sec\": " << aes_slow.cts_per_sec
       << ",\n"
       << "  \"aes128_batch_cts_per_sec\": " << aes_fast.cts_per_sec << ",\n"
       << "  \"aes128_speedup\": " << aes_speedup << ",\n"
       << "  \"present80_per_call_cts_per_sec\": " << present_slow.cts_per_sec
       << ",\n"
       << "  \"present80_batch_cts_per_sec\": " << present_fast.cts_per_sec
       << ",\n"
       << "  \"present80_speedup\": " << present_speedup << "\n"
       << "}\n";
  std::cout << "\nwrote " << json_path << "\n";

  // The acceptance bars: >= 10x for the AES harvest (the paper's headline
  // cipher), and the batch path must never lose to per-call.
  if (aes_speedup < 10.0) {
    std::cerr << "FAIL: aes128 batch speedup " << aes_speedup << " < 10x\n";
    return 1;
  }
  if (present_speedup < 1.0) {
    std::cerr << "FAIL: present80 batch speedup " << present_speedup
              << " < 1x\n";
    return 1;
  }
  return 0;
}
