// EXP-T2 — Cross-process frame steering (the §V exploit, allocator level).
//
// The attacker releases template-selected frames; the victim then installs
// its crypto context. Measured: P(victim's table page receives the planted
// frame) vs
//   (a) victim request size,
//   (b) number of frames the attacker releases,
//   (c) same vs different CPU,
//   (d) attacker active vs sleeping through a noisy window (the paper's
//       "must remain active" requirement).
#include <iostream>

#include "attack/victim.hpp"
#include "common.hpp"
#include "kernel/noise.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::bench;
using namespace explframe::attack;

namespace {

constexpr std::uint32_t kTrials = 150;

struct SteerSpec {
  std::uint32_t victim_pages = 4;
  std::uint32_t released_frames = 1;
  std::uint32_t victim_cpu = 0;  ///< Attacker is always on CPU 0.
  std::uint32_t noise_ops = 0;   ///< Same-CPU noise during the wait window.
  bool attacker_sleeps = false;  ///< Sleep (and let noise run) vs stay active.
};

/// Returns true if the victim's table page landed on a planted frame.
bool run_trial(std::uint64_t seed, const SteerSpec& spec) {
  kernel::System sys(quiet_system(seed));
  kernel::Task& attacker = sys.spawn("attacker", 0);

  const crypto::TableCipher& cipher =
      crypto::cipher_for(crypto::CipherKind::kAes128);
  VictimConfig vc;
  vc.key = crypto::random_key(cipher, seed);
  vc.data_pages = spec.victim_pages;
  VictimCipherService victim(sys, spec.victim_cpu, cipher, vc);
  victim.start();

  // Attacker allocates a working buffer and releases `released_frames`.
  const std::uint32_t buf_pages = std::max(spec.released_frames * 2, 8u);
  const vm::VirtAddr va = sys.sys_mmap(attacker, buf_pages * kPageSize);
  for (std::uint32_t p = 0; p < buf_pages; ++p) {
    const std::uint8_t b = 0xEE;
    sys.mem_write(attacker, va + p * kPageSize, {&b, 1});
  }
  std::vector<mm::Pfn> planted;
  for (std::uint32_t f = 0; f < spec.released_frames; ++f) {
    const vm::VirtAddr pv = va + 2 * f * kPageSize;
    planted.push_back(sys.translate(attacker, pv));
    sys.sys_munmap(attacker, pv, kPageSize);
  }

  // The wait window: if the attacker sleeps, a housekeeping process on the
  // same CPU churns the cache; if it stays active, it keeps the CPU busy
  // and the noise process is held off (modelled as no same-CPU churn).
  if (spec.noise_ops > 0 && spec.attacker_sleeps) {
    kernel::Task& n = sys.spawn("noise", 0);
    kernel::NoiseWorkload noise(sys, n, {}, seed ^ 0x5555);
    noise.run(spec.noise_ops);
  }

  victim.install_tables();
  const mm::Pfn got = sys.translate(victim.task(), victim.table_page_va());
  for (const mm::Pfn p : planted)
    if (p == got) return true;
  return false;
}

std::string measure(const SteerSpec& spec, std::uint32_t base_seed) {
  std::size_t hits = 0;
  for (std::uint32_t i = 0; i < kTrials; ++i)
    hits += run_trial(base_seed + i, spec) ? 1 : 0;
  const auto ci = wilson_interval(hits, kTrials);
  return Table::percent(ci.p) + "  [" + Table::percent(ci.lo) + ", " +
         Table::percent(ci.hi) + "]";
}

}  // namespace

int main() {
  print_banner(std::cout, "EXP-T2: cross-process page-frame steering (SV)");
  std::cout << "(P that the victim's S-box page lands on a planted frame; " << kTrials
            << " trials per row)\n";

  {
    std::cout << "\n(a) vs victim context size (1 released frame, same CPU):\n";
    Table t({"victim pages", "P(steered)"});
    for (const std::uint32_t pages : {2u, 4u, 8u, 16u, 32u}) {
      SteerSpec s;
      s.victim_pages = pages;
      t.row(pages, measure(s, 1000));
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n(b) vs number of released frames (victim 4 pages, same "
                 "CPU):\n";
    Table t({"released frames", "P(steered)"});
    for (const std::uint32_t frames : {1u, 2u, 4u, 8u}) {
      SteerSpec s;
      s.released_frames = frames;
      t.row(frames, measure(s, 2000));
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n(c) same vs different CPU (the paper's same-CPU "
                 "requirement):\n";
    Table t({"victim CPU", "P(steered)"});
    for (const std::uint32_t cpu : {0u, 1u}) {
      SteerSpec s;
      s.victim_cpu = cpu;
      t.row(cpu == 0 ? "same as attacker" : "different", measure(s, 3000));
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n(d) attacker active vs sleeping through a noisy window "
                 "(the paper's \"must remain active\" requirement):\n";
    Table t({"attacker", "same-CPU noise ops", "P(steered)"});
    for (const std::uint32_t ops : {0u, 8u, 32u, 128u}) {
      SteerSpec active;
      active.noise_ops = ops;
      active.attacker_sleeps = false;
      t.row("active", ops, measure(active, 4000));
      SteerSpec asleep;
      asleep.noise_ops = ops;
      asleep.attacker_sleeps = true;
      t.row("sleeping", ops, measure(asleep, 4000));
    }
    t.print(std::cout);
  }

  std::cout << "\npaper claim: steering succeeds with probability ~1 when "
               "attacker and victim share a CPU and the attacker stays "
               "active; fails cross-CPU; degrades if the attacker sleeps "
               "while other processes allocate.\n";
  return 0;
}
