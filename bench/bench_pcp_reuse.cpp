// EXP-T1 — Page-frame-cache reuse probability.
//
// The paper (§V): "with a probability of almost 1, if the process requests
// for a few pages, the recently deallocated page frames will be reallocated".
// Measured here:
//   (a) P(released frame is handed to the next allocation on the same CPU)
//       as a function of the request size;
//   (b) how that probability decays with intervening allocation noise on
//       the same CPU (and that cross-CPU noise does not affect it);
//   (c) same-CPU vs cross-CPU reuse.
#include <iostream>

#include "common.hpp"
#include "kernel/noise.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace explframe;
using namespace explframe::bench;

namespace {

constexpr std::uint32_t kTrials = 200;

/// One trial: task A touches+releases one frame; then `noise_ops` noise
/// operations run on `noise_cpu`; then task B on `alloc_cpu` touches
/// `request_pages` pages. Returns (planted received at all, received as the
/// first-touched page).
struct TrialResult {
  bool received = false;
  bool first = false;
};

TrialResult run_trial(std::uint64_t seed, std::uint32_t request_pages,
                      std::uint32_t noise_ops, std::uint32_t noise_cpu,
                      std::uint32_t alloc_cpu) {
  kernel::System sys(quiet_system(seed));
  kernel::Task& a = sys.spawn("releaser", 0);
  kernel::Task& b = sys.spawn("allocator", alloc_cpu);
  kernel::Task& n = sys.spawn("noise", noise_cpu);
  kernel::NoiseWorkload noise(sys, n, {}, seed ^ 0x1234);
  // Warm all tasks so page-table nodes do not interfere.
  for (kernel::Task* t : {&a, &b, &n}) {
    const vm::VirtAddr w = sys.sys_mmap(*t, kPageSize);
    const std::uint8_t wb = 1;
    sys.mem_write(*t, w, {&wb, 1});
  }

  const vm::VirtAddr va = sys.sys_mmap(a, 4 * kPageSize);
  for (int p = 0; p < 4; ++p) {
    const std::uint8_t byte = 0xAB;
    sys.mem_write(a, va + p * kPageSize, {&byte, 1});
  }
  const mm::Pfn planted = sys.translate(a, va + kPageSize);
  sys.sys_munmap(a, va + kPageSize, kPageSize);

  noise.run(noise_ops);

  const vm::VirtAddr vb = sys.sys_mmap(b, request_pages * kPageSize);
  TrialResult r;
  for (std::uint32_t p = 0; p < request_pages; ++p) {
    const std::uint8_t byte = 0xCD;
    sys.mem_write(b, vb + p * kPageSize, {&byte, 1});
    if (sys.translate(b, vb + p * kPageSize) == planted) {
      r.received = true;
      if (p == 0) r.first = true;
    }
  }
  return r;
}

void sweep_request_size() {
  std::cout << "\n(a) reuse probability vs victim request size (same CPU, "
               "no noise, "
            << kTrials << " trials/row):\n";
  Table t({"request pages", "P(frame received)", "P(received as 1st page)"});
  for (const std::uint32_t pages : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    std::size_t received = 0, first = 0;
    for (std::uint32_t i = 0; i < kTrials; ++i) {
      const auto r = run_trial(1000 + i, pages, 0, 1, 0);
      received += r.received;
      first += r.first;
    }
    const auto ci_r = wilson_interval(received, kTrials);
    const auto ci_f = wilson_interval(first, kTrials);
    t.row(pages,
          Table::percent(ci_r.p) + "  [" + Table::percent(ci_r.lo) + ", " +
              Table::percent(ci_r.hi) + "]",
          Table::percent(ci_f.p) + "  [" + Table::percent(ci_f.lo) + ", " +
              Table::percent(ci_f.hi) + "]");
  }
  t.print(std::cout);
}

void sweep_noise() {
  std::cout << "\n(b) reuse probability vs intervening noise operations "
               "(request = 4 pages, "
            << kTrials << " trials/row):\n";
  Table t({"noise ops", "noise CPU", "P(frame received)"});
  for (const std::uint32_t ops : {0u, 1u, 2u, 4u, 8u, 16u, 64u, 256u}) {
    for (const std::uint32_t noise_cpu : {0u, 1u}) {
      std::size_t received = 0;
      for (std::uint32_t i = 0; i < kTrials; ++i)
        received += run_trial(2000 + i, 4, ops, noise_cpu, 0).received;
      const auto ci = wilson_interval(received, kTrials);
      t.row(ops, noise_cpu == 0 ? "same" : "other",
            Table::percent(ci.p) + "  [" + Table::percent(ci.lo) + ", " +
                Table::percent(ci.hi) + "]");
    }
  }
  t.print(std::cout);
}

void same_vs_cross_cpu() {
  std::cout << "\n(c) same-CPU vs cross-CPU allocation (request = 4 pages, "
               "no noise):\n";
  Table t({"allocating CPU", "P(frame received)"});
  for (const std::uint32_t cpu : {0u, 1u}) {
    std::size_t received = 0;
    for (std::uint32_t i = 0; i < kTrials; ++i)
      received += run_trial(3000 + i, 4, 0, 1, cpu).received;
    const auto ci = wilson_interval(received, kTrials);
    t.row(cpu == 0 ? "same (cpu 0)" : "other (cpu 1)",
          Table::percent(ci.p) + "  [" + Table::percent(ci.lo) + ", " +
              Table::percent(ci.hi) + "]");
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  print_banner(std::cout,
               "EXP-T1: per-CPU page frame cache reuse probability (SV)");
  sweep_request_size();
  sweep_noise();
  same_vs_cross_cpu();
  std::cout << "\npaper claim: reuse probability ~ 1 for small same-CPU "
               "requests; requires the releaser's CPU cache to stay "
               "undisturbed.\n";
  return 0;
}
