#include "dram/address_mapping.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace explframe::dram {
namespace {

class AddressMappingRoundTrip
    : public ::testing::TestWithParam<MappingScheme> {};

TEST_P(AddressMappingRoundTrip, DecodeEncodeIsIdentity) {
  Geometry g;
  g.channels = 2;
  g.ranks = 2;
  g.rows_per_bank = 1024;
  AddressMapping map(g, GetParam());
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const PhysAddr a = rng.uniform(g.total_bytes());
    const DramAddress c = map.decode(a);
    EXPECT_EQ(map.encode(c), a);
    EXPECT_LT(c.channel, g.channels);
    EXPECT_LT(c.rank, g.ranks);
    EXPECT_LT(c.bank, g.banks);
    EXPECT_LT(c.row, g.rows_per_bank);
    EXPECT_LT(c.col, g.row_bytes);
  }
}

TEST_P(AddressMappingRoundTrip, EncodeDecodeIsIdentity) {
  Geometry g;
  AddressMapping map(g, GetParam());
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    DramAddress c;
    c.bank = static_cast<std::uint32_t>(rng.uniform(g.banks));
    c.row = static_cast<std::uint32_t>(rng.uniform(g.rows_per_bank));
    c.col = static_cast<std::uint32_t>(rng.uniform(g.row_bytes));
    EXPECT_EQ(map.decode(map.encode(c)), c);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AddressMappingRoundTrip,
                         ::testing::Values(MappingScheme::kRowMajor,
                                           MappingScheme::kBankXor));

TEST(AddressMapping, RowMajorKeepsPageInOneRow) {
  Geometry g;  // 8 KiB rows
  AddressMapping map(g, MappingScheme::kRowMajor);
  // Any aligned 4 KiB page must decode to a single (bank, row).
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const PhysAddr page = rng.uniform(g.total_bytes() / kPageSize) * kPageSize;
    const DramAddress first = map.decode(page);
    const DramAddress last = map.decode(page + kPageSize - 1);
    EXPECT_EQ(first.bank, last.bank);
    EXPECT_EQ(first.row, last.row);
  }
}

TEST(AddressMapping, RowMajorConsecutiveRowsAreRowSizeApart) {
  Geometry g;
  AddressMapping map(g, MappingScheme::kRowMajor);
  const PhysAddr a = 0;
  PhysAddr up = 0;
  ASSERT_TRUE(map.neighbor_row_addr(a, +1, 0, up));
  EXPECT_EQ(map.row_distance(a, up), 1);
  EXPECT_TRUE(map.same_bank(a, up));
}

TEST(AddressMapping, SameBankDetectsDifferentBanks) {
  Geometry g;
  AddressMapping map(g, MappingScheme::kRowMajor);
  DramAddress a{0, 0, 0, 10, 0};
  DramAddress b{0, 0, 1, 10, 0};
  EXPECT_FALSE(map.same_bank(map.encode(a), map.encode(b)));
  EXPECT_EQ(map.row_distance(map.encode(a), map.encode(b)),
            std::numeric_limits<std::int64_t>::max());
}

TEST(AddressMapping, NeighborRowOutOfRange) {
  Geometry g;
  AddressMapping map(g, MappingScheme::kRowMajor);
  DramAddress top{0, 0, 0, 0, 0};
  PhysAddr out = 0;
  EXPECT_FALSE(map.neighbor_row_addr(map.encode(top), -1, 0, out));
  DramAddress bottom{0, 0, 0, g.rows_per_bank - 1, 0};
  EXPECT_FALSE(map.neighbor_row_addr(map.encode(bottom), +1, 0, out));
  EXPECT_TRUE(map.neighbor_row_addr(map.encode(bottom), -1, 0, out));
}

TEST(AddressMapping, BankXorChangesBankAcrossRows) {
  Geometry g;
  AddressMapping map(g, MappingScheme::kBankXor);
  // With XOR hashing, physically consecutive row-size blocks usually land
  // in different banks for consecutive row indices.
  int changed = 0;
  for (std::uint32_t r = 0; r + 1 < 64; ++r) {
    DramAddress a{0, 0, 0, r, 0};
    DramAddress b{0, 0, 0, r + 1, 0};
    if (map.encode(a) / g.row_bytes % g.banks !=
        map.encode(b) / g.row_bytes % g.banks) {
      ++changed;
    }
  }
  EXPECT_GT(changed, 0);
}

TEST(AddressMapping, RowDistanceSigned) {
  Geometry g;
  AddressMapping map(g, MappingScheme::kRowMajor);
  DramAddress a{0, 0, 3, 100, 0};
  DramAddress b{0, 0, 3, 97, 0};
  EXPECT_EQ(map.row_distance(map.encode(a), map.encode(b)), -3);
  EXPECT_EQ(map.row_distance(map.encode(b), map.encode(a)), 3);
}

}  // namespace
}  // namespace explframe::dram
