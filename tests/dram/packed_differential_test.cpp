// Representation-differential test: the packed-SoA DramDevice against the
// frozen pre-refactor layout in reference_dram.hpp.
//
// Both implementations are driven through identical operation storms —
// pattern fills, double-sided hammering (burst fast path vs the reference
// per-access loop), ECC-filtered reads, fault injection, refreshes and a
// snapshot/restore cycle — and every observable is asserted equal: the
// drained flip-event sequence, all statistics counters, read-back bytes,
// the device clock and the captured Image contents. The storm repeats for
// all four defence configurations and for every scenario in the built-in
// registry, so any divergence the packed representation could introduce
// shows up here before it could touch a golden report.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "dram/address_mapping.hpp"
#include "dram/dram_device.hpp"
#include "dram/geometry.hpp"
#include "reference_dram.hpp"
#include "scenario/registry.hpp"
#include "support/rng.hpp"
#include "support/units.hpp"

namespace explframe::dram {
namespace {

/// Invert flat_row(): the coordinate (col 0) of a flat row index.
DramAddress coord_of_flat_row(const Geometry& g, std::uint64_t fr) {
  DramAddress c;
  c.row = static_cast<std::uint32_t>(fr % g.rows_per_bank);
  const std::uint64_t fb = fr / g.rows_per_bank;
  c.bank = static_cast<std::uint32_t>(fb % g.banks);
  const std::uint64_t rr = fb / g.banks;
  c.rank = static_cast<std::uint32_t>(rr % g.ranks);
  c.channel = static_cast<std::uint32_t>(rr / g.ranks);
  c.col = 0;
  return c;
}

/// The packed device and the reference device built from one configuration,
/// plus the storm utilities that drive both and assert equality.
class DevicePair {
 public:
  DevicePair(const Geometry& geometry, const DeviceParams& params,
             std::uint64_t seed)
      : geometry_(geometry),
        params_(params),
        mapping_(geometry, params.mapping),
        dev_(geometry, params, seed),
        ref_(geometry, params, seed) {}

  DramDevice& dev() { return dev_; }
  refdram::RefDevice& ref() { return ref_; }
  const Geometry& geometry() const { return geometry_; }
  const AddressMapping& mapping() const { return mapping_; }

  /// Weak-cell populations decode identically (same RNG stream, same
  /// per-row insertion order) — the precondition for everything else.
  void expect_same_population() {
    const auto rows = dev_.weak_cells().vulnerable_rows();
    ASSERT_EQ(rows, ref_.weak_cells().vulnerable_rows());
    ASSERT_EQ(dev_.weak_cells().total_cells(),
              ref_.weak_cells().total_cells());
    for (const std::uint64_t row : rows) {
      const auto span = dev_.weak_cells().cells_in_row(row);
      const auto& vec = ref_.weak_cells().cells_in_row(row);
      ASSERT_EQ(span.size(), vec.size());
      for (std::size_t i = 0; i < vec.size(); ++i) {
        const WeakCell a = span[i];
        const WeakCell& b = vec[i];
        EXPECT_EQ(a.col, b.col);
        EXPECT_EQ(a.bit, b.bit);
        EXPECT_EQ(a.threshold, b.threshold);
        EXPECT_EQ(a.true_cell, b.true_cell);
        EXPECT_EQ(a.couple_above, b.couple_above);
        EXPECT_EQ(a.couple_below, b.couple_below);
      }
    }
  }

  /// Every statistics counter and the device clock agree.
  void expect_same_counters() {
    EXPECT_EQ(dev_.now(), ref_.now());
    EXPECT_EQ(dev_.mutation_epoch(), ref_.mutation_epoch());
    EXPECT_EQ(dev_.total_flips(), ref_.total_flips());
    EXPECT_EQ(dev_.total_activations(), ref_.total_activations());
    EXPECT_EQ(dev_.refresh_count(), ref_.refresh_count());
    EXPECT_EQ(dev_.trr_interventions(), ref_.trr_interventions());
    EXPECT_EQ(dev_.ecc_corrected_bits(), ref_.ecc_corrected_bits());
    EXPECT_EQ(dev_.ecc_uncorrectable_words(), ref_.ecc_uncorrectable_words());
  }

  /// Drain both flip logs and require identical event sequences.
  void expect_same_flips() {
    const auto a = dev_.drain_flips();
    const auto b = ref_.drain_flips();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].addr, b[i].addr) << "event " << i;
      EXPECT_EQ(a[i].coord, b[i].coord) << "event " << i;
      EXPECT_EQ(a[i].bit, b[i].bit) << "event " << i;
      EXPECT_EQ(a[i].to_one, b[i].to_one) << "event " << i;
      EXPECT_EQ(a[i].time, b[i].time) << "event " << i;
    }
  }

  /// Read `len` bytes at `addr` from both devices (exercising the ECC
  /// filter identically) and require identical bytes.
  void expect_same_bytes(PhysAddr addr, std::size_t len) {
    std::vector<std::uint8_t> a(len), b(len);
    dev_.read(addr, a);
    ref_.read(addr, b);
    EXPECT_EQ(a, b) << "read at " << addr;
  }

  /// Apply one mutation to both sides.
  void write_both(PhysAddr addr, std::span<const std::uint8_t> bytes) {
    dev_.write(addr, bytes);
    ref_.write(addr, bytes);
  }
  void fill_both(PhysAddr addr, std::uint8_t value, std::uint64_t len) {
    dev_.fill(addr, value, len);
    ref_.fill(addr, value, len);
  }
  void access_both(PhysAddr addr) {
    EXPECT_EQ(dev_.access(addr), ref_.access(addr));
  }
  void hammer_both(std::span<const PhysAddr> aggressors,
                   std::uint64_t iterations) {
    // The packed side takes the analytic burst fast path; the reference
    // runs the plain per-access loop. Bit-identical results required.
    dev_.hammer_burst(aggressors, iterations);
    ref_.hammer(aggressors, iterations);
  }
  void idle_both(SimTime duration) {
    dev_.idle(duration);
    ref_.idle(duration);
  }
  void refresh_both() {
    dev_.refresh_now();
    ref_.refresh_now();
  }
  void inject_both(PhysAddr addr, std::uint8_t bit) {
    dev_.inject_flip(addr, bit);
    ref_.inject_flip(addr, bit);
  }

  /// Aggressor addresses (col 0 of row±1) around a vulnerable flat row.
  std::vector<PhysAddr> aggressors_around(std::uint64_t victim_flat) {
    DramAddress victim = coord_of_flat_row(geometry_, victim_flat);
    std::vector<PhysAddr> aggs;
    if (victim.row > 0) {
      DramAddress a = victim;
      a.row -= 1;
      aggs.push_back(mapping_.encode(a));
    }
    if (victim.row + 1 < geometry_.rows_per_bank) {
      DramAddress a = victim;
      a.row += 1;
      aggs.push_back(mapping_.encode(a));
    }
    return aggs;
  }

  /// Semantic equality of captured images: CoW row payloads, row-buffer
  /// state, disturbance counters (packed ordinals translated back to flat
  /// rows; zeroed entries dropped — the reference erases where the packed
  /// table zeroes in place), flip logs, live-flip records, the TRR sampler
  /// and every scalar.
  void expect_same_image(const DramDevice::Image& p,
                         const refdram::RefDevice::Image& r) {
    ASSERT_EQ(p.rows.size(), r.rows.size());
    for (const auto& [row, bytes] : r.rows) {
      const auto it = p.rows.find(row);
      ASSERT_NE(it, p.rows.end()) << "row " << row;
      EXPECT_EQ(0, std::memcmp(it->second.get(), bytes.get(),
                               geometry_.row_bytes))
          << "row " << row;
    }
    EXPECT_EQ(p.open_row, r.open_row);

    using Dist = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>;
    std::vector<Dist> pd, rd;
    const RowIndex& index = dev_.weak_cells().row_index();
    for (const auto& e : p.disturbance)
      if (e.above != 0 || e.below != 0)
        pd.emplace_back(index.key_at(e.ordinal), e.above, e.below);
    for (const auto& [row, d] : r.disturbance)
      if (d.acts_above != 0 || d.acts_below != 0)
        rd.emplace_back(row, d.acts_above, d.acts_below);
    std::sort(pd.begin(), pd.end());
    std::sort(rd.begin(), rd.end());
    EXPECT_EQ(pd, rd);

    ASSERT_EQ(p.flips.size(), r.flips.size());
    for (std::size_t i = 0; i < r.flips.size(); ++i) {
      EXPECT_EQ(p.flips.addr_at(i), r.flips[i].addr);
      EXPECT_EQ(p.flips.bit_at(i), r.flips[i].bit);
      EXPECT_EQ(p.flips.to_one_at(i), r.flips[i].to_one);
      EXPECT_EQ(p.flips.time_at(i), r.flips[i].time);
    }

    std::size_t ref_live = 0;
    for (const auto& [row, flips] : r.live_flips) {
      ref_live += flips.size();
      const auto range = p.live_flips.row_range(row);
      ASSERT_EQ(range.end - range.begin, flips.size()) << "row " << row;
      for (std::size_t i = 0; i < flips.size(); ++i) {
        EXPECT_EQ(p.live_flips.col_at(range.begin + i), flips[i].col);
        EXPECT_EQ(p.live_flips.bit_at(range.begin + i), flips[i].bit);
      }
    }
    EXPECT_EQ(p.live_flips.size(), ref_live);

    ASSERT_EQ(p.trr_sampler.size(), r.trr_sampler.size());
    for (const auto& [row, count] : r.trr_sampler) {
      const std::size_t slot = p.trr_sampler.find(row);
      ASSERT_NE(slot, TrrSampler::kNpos) << "row " << row;
      EXPECT_EQ(p.trr_sampler.count(slot), count);
    }

    EXPECT_EQ(p.now, r.now);
    EXPECT_EQ(p.next_refresh, r.next_refresh);
    EXPECT_EQ(p.mutation_epoch, r.mutation_epoch);
    EXPECT_EQ(p.total_flips, r.total_flips);
    EXPECT_EQ(p.total_acts, r.total_acts);
    EXPECT_EQ(p.refreshes, r.refreshes);
    EXPECT_EQ(p.trr_hits, r.trr_hits);
    EXPECT_EQ(p.ecc_corrected, r.ecc_corrected);
    EXPECT_EQ(p.ecc_uncorrectable, r.ecc_uncorrectable);
  }

 private:
  Geometry geometry_;
  DeviceParams params_;
  AddressMapping mapping_;
  DramDevice dev_;
  refdram::RefDevice ref_;
};

/// A dense, easily-flipped population so every defence path actually fires
/// within a short storm.
DeviceParams vulnerable_params() {
  DeviceParams params;
  params.weak_cells.cells_per_mib = 64.0;
  params.weak_cells.threshold_log_mean = 10.4;
  params.weak_cells.threshold_min = 25'000;
  params.trr.threshold = 9'000;
  return params;
}

/// The full storm: pattern fills, double-sided hammering in both stored-bit
/// polarities, ECC-filtered read-back, fault injection into one ECC word,
/// random writes/reads, per-access equivalence, refresh/idle boundaries and
/// one snapshot/restore cycle.
void run_storm(DevicePair& pair, std::uint64_t rng_seed) {
  pair.expect_same_population();

  const Geometry& g = pair.geometry();
  const auto rows = pair.dev().weak_cells().vulnerable_rows();
  ASSERT_FALSE(rows.empty());

  // Hammer four victim rows spread across the module, each with all-ones
  // stored bits (true cells flip) then all-zeros (anti cells flip). 60K
  // double-sided iterations clear the lognormal threshold distribution's
  // bulk; a refresh between polarities restarts the disturbance window.
  for (int k = 0; k < 4; ++k) {
    const std::uint64_t victim = rows[rows.size() / 4 * k];
    const PhysAddr addr = pair.mapping().encode(coord_of_flat_row(g, victim));
    const auto aggs = pair.aggressors_around(victim);
    ASSERT_FALSE(aggs.empty());
    pair.fill_both(addr, 0xFF, g.row_bytes);
    pair.hammer_both(aggs, 60'000);
    pair.expect_same_counters();
    pair.expect_same_bytes(addr, g.row_bytes);
    pair.expect_same_counters();  // ECC read-back updated both sides alike
    pair.refresh_both();
    pair.fill_both(addr, 0x00, g.row_bytes);
    pair.hammer_both(aggs, 60'000);
    pair.expect_same_bytes(addr, g.row_bytes);
    pair.expect_same_counters();
  }
  pair.expect_same_flips();

  const std::uint64_t victim = rows[rows.size() / 2];
  const PhysAddr victim_addr =
      pair.mapping().encode(coord_of_flat_row(g, victim));
  const auto aggs = pair.aggressors_around(victim);
  ASSERT_FALSE(aggs.empty());

  // Two injected flips into one 64-bit ECC word: uncorrectable on read.
  pair.inject_both(victim_addr + 8, 1);
  pair.inject_both(victim_addr + 9, 6);
  pair.expect_same_bytes(victim_addr, 64);
  pair.expect_same_counters();

  // Snapshot, keep mutating, then roll back and require the restored
  // worlds to agree — including the captured images themselves.
  const auto dev_image = pair.dev().capture_image();
  const auto ref_image = pair.ref().capture_image();
  pair.expect_same_image(dev_image, ref_image);

  pair.fill_both(victim_addr, 0xA5, g.row_bytes);
  pair.hammer_both(aggs, 7'500);
  pair.expect_same_counters();

  pair.dev().restore_image(dev_image);
  pair.ref().restore_image(ref_image);
  pair.expect_same_counters();
  pair.expect_same_bytes(victim_addr, g.row_bytes);

  // Refresh boundaries: explicit, then implicit via idle.
  pair.refresh_both();
  pair.hammer_both(aggs, 10'000);
  pair.idle_both(70 * kMillisecond);
  pair.expect_same_counters();

  // Random write/read/access storm over the whole module.
  Rng rng(rng_seed);
  std::vector<std::uint8_t> buf(256);
  for (int i = 0; i < 64; ++i) {
    const PhysAddr addr = rng.uniform(g.total_bytes() - buf.size());
    rng.fill_bytes(buf);
    pair.write_both(addr, buf);
    pair.expect_same_bytes(addr, buf.size());
  }
  for (int i = 0; i < 512; ++i)
    pair.access_both(rng.uniform(g.total_bytes()));

  pair.expect_same_flips();
  pair.expect_same_counters();
}

class PackedDifferential : public ::testing::TestWithParam<int> {};

TEST_P(PackedDifferential, StormMatchesReferenceAcrossDefences) {
  DeviceParams params = vulnerable_params();
  const int defence = GetParam();
  params.trr.enabled = defence == 1 || defence == 3;
  params.ecc.enabled = defence == 2 || defence == 3;
  DevicePair pair(Geometry::with_capacity(64 * kMiB), params, 1234);
  run_storm(pair, 99 + static_cast<std::uint64_t>(defence));

  // The storm must exercise the path it certifies: undefended (and
  // ECC-only) configs flip bits; TRR configs intervene; ECC configs
  // filter at least the two colliding injected flips.
  if (!params.trr.enabled) EXPECT_GT(pair.dev().total_flips(), 0u);
  if (params.trr.enabled) EXPECT_GT(pair.dev().trr_interventions(), 0u);
  if (params.ecc.enabled) {
    EXPECT_GT(pair.dev().ecc_corrected_bits() +
                  pair.dev().ecc_uncorrectable_words(),
              0u);
  }
}

std::string defence_name(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"none", "trr", "ecc", "trr_ecc"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllDefenceConfigs, PackedDifferential,
                         ::testing::Values(0, 1, 2, 3), defence_name);

/// Bank-XOR mapping changes aggressor adjacency; the representations must
/// still agree (the packed device re-derives coordinates from addresses).
TEST(PackedDifferential, StormMatchesUnderBankXorMapping) {
  DeviceParams params = vulnerable_params();
  params.mapping = MappingScheme::kBankXor;
  params.trr.enabled = true;
  params.ecc.enabled = true;
  DevicePair pair(Geometry::with_capacity(64 * kMiB), params, 77);
  run_storm(pair, 7);
}

/// Every registered scenario's derived machine, under a shorter storm: the
/// exact geometry/defence/weak-cell configurations the handbook runs are
/// all certified against the reference layout.
TEST(PackedDifferential, EveryRegisteredScenarioMatchesReference) {
  for (const scenario::Scenario& s : scenario::Registry::builtin().all()) {
    SCOPED_TRACE(s.name);
    const attack::RunnerConfig cfg = s.runner_config();
    const Geometry g = Geometry::with_capacity(cfg.system.memory_bytes);
    DevicePair pair(g, cfg.system.dram, s.seed);
    pair.expect_same_population();

    const auto rows = pair.dev().weak_cells().vulnerable_rows();
    if (!rows.empty()) {
      const std::uint64_t victim = rows.front();
      const PhysAddr victim_addr =
          pair.mapping().encode(coord_of_flat_row(g, victim));
      pair.fill_both(victim_addr, 0xFF, g.row_bytes);
      pair.hammer_both(pair.aggressors_around(victim), 60'000);
      pair.expect_same_bytes(victim_addr, g.row_bytes);
    }

    const auto dev_image = pair.dev().capture_image();
    const auto ref_image = pair.ref().capture_image();
    pair.expect_same_image(dev_image, ref_image);
    pair.refresh_both();
    pair.dev().restore_image(dev_image);
    pair.ref().restore_image(ref_image);

    pair.expect_same_flips();
    pair.expect_same_counters();
  }
}

/// Regression for the arena canonicalisation: presenting the same per-row
/// cell sequences in a different global interleaving must produce the same
/// model (the seed's unordered_map made global order invisible; the arena
/// must too).
TEST(PackedDifferential, ArenaIndependentOfInsertionOrder) {
  const Geometry g = Geometry::with_capacity(64 * kMiB);
  const WeakCellParams params;

  const auto cell = [](std::uint32_t col, std::uint8_t bit,
                       std::uint32_t threshold, bool true_cell,
                       float above, float below) {
    WeakCell c;
    c.col = col;
    c.bit = bit;
    c.threshold = threshold;
    c.true_cell = true_cell;
    c.couple_above = above;
    c.couple_below = below;
    return c;
  };
  // Three rows; row 900 holds a later duplicate of (col 7, bit 2) that the
  // canonicaliser must drop in favour of the first record.
  const auto r900a = cell(7, 2, 30'000, true, 1.0F, 0.75F);
  const auto r900b = cell(11, 5, 40'000, false, 0.0F, 1.0F);
  const auto r900dup = cell(7, 2, 99'000, false, 1.0F, 1.0F);
  const auto r12 = cell(100, 0, 25'000, true, 1.0F, 0.5F);
  const auto r4000 = cell(8000, 7, 60'000, false, 0.625F, 1.0F);

  using Pop = std::vector<std::pair<std::uint64_t, WeakCell>>;
  const Pop forward = {{900, r900a}, {900, r900b}, {900, r900dup},
                       {12, r12},    {4000, r4000}};
  const Pop shuffled = {{4000, r4000}, {900, r900a},   {12, r12},
                        {900, r900b},  {900, r900dup}};

  WeakCellModel a(g, params, forward);
  WeakCellModel b(g, params, shuffled);

  const std::vector<std::uint64_t> expected_rows = {12, 900, 4000};
  EXPECT_EQ(a.vulnerable_rows(), expected_rows);
  EXPECT_EQ(b.vulnerable_rows(), expected_rows);
  ASSERT_EQ(a.total_cells(), 4u);  // duplicate dropped
  ASSERT_EQ(b.total_cells(), 4u);

  for (const std::uint64_t row : expected_rows) {
    const auto sa = a.cells_in_row(row);
    const auto sb = b.cells_in_row(row);
    ASSERT_EQ(sa.size(), sb.size()) << "row " << row;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      const WeakCell ca = sa[i], cb = sb[i];
      EXPECT_EQ(ca.col, cb.col);
      EXPECT_EQ(ca.bit, cb.bit);
      EXPECT_EQ(ca.threshold, cb.threshold);
      EXPECT_EQ(ca.true_cell, cb.true_cell);
      EXPECT_EQ(ca.couple_above, cb.couple_above);
      EXPECT_EQ(ca.couple_below, cb.couple_below);
    }
  }
  // The duplicate kept the FIRST record's payload.
  const auto span = a.cells_in_row(900);
  EXPECT_EQ(span[0].threshold, 30'000u);
  EXPECT_TRUE(span[0].true_cell);
}

}  // namespace
}  // namespace explframe::dram
