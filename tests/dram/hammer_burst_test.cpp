// Differential test for DramDevice::hammer_burst: the batched path must be
// bit-identical to the per-access loop — same flip sequence (address, bit,
// direction, simulated time), same refresh count, same TRR interventions and
// ECC bookkeeping, same final memory image — on a small geometry under all
// four defence configurations (none / TRR / ECC / TRR+ECC).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dram/dram_device.hpp"
#include "dram/hammer.hpp"

namespace explframe::dram {
namespace {

Geometry small_geometry() {
  Geometry g;
  g.channels = 1;
  g.ranks = 1;
  g.banks = 2;
  g.rows_per_bank = 64;
  g.row_bytes = 4 * kKiB;  // 512 KiB total
  return g;
}

DeviceParams base_params(bool trr, bool ecc) {
  DeviceParams p;
  // Dense, weak population so flips occur within a short burst; short
  // refresh window so the burst spans several windows; low TRR threshold so
  // interventions fire between refreshes.
  p.weak_cells.cells_per_mib = 4096.0;
  p.weak_cells.threshold_log_mean = 8.3;  // median ~ 4K activations
  p.weak_cells.threshold_log_sigma = 0.5;
  p.weak_cells.threshold_min = 2'000;
  p.weak_cells.threshold_max = 12'000;
  p.timings.refresh_window_ns = 1 * kMillisecond;
  p.trr.enabled = trr;
  p.trr.threshold = 1'500;
  p.trr.sampler_entries = 8;
  p.ecc.enabled = ecc;
  return p;
}

struct Outcome {
  std::vector<FlipEvent> flips;
  SimTime now = 0;
  std::uint64_t activations = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t trr_hits = 0;
  std::uint64_t ecc_corrected = 0;
  std::uint64_t ecc_uncorrectable = 0;
  std::uint64_t total_flips = 0;
  std::vector<std::uint8_t> image;
};

Outcome capture(DramDevice& dev) {
  Outcome o;
  o.flips = dev.drain_flips();
  o.now = dev.now();
  o.activations = dev.total_activations();
  o.refreshes = dev.refresh_count();
  o.trr_hits = dev.trr_interventions();
  o.ecc_corrected = dev.ecc_corrected_bits();
  o.ecc_uncorrectable = dev.ecc_uncorrectable_words();
  o.total_flips = dev.total_flips();
  o.image.resize(dev.geometry().total_bytes());
  dev.read(0, o.image);
  return o;
}

void expect_identical(const Outcome& slow, const Outcome& burst,
                      const std::string& label) {
  EXPECT_EQ(slow.now, burst.now) << label;
  EXPECT_EQ(slow.activations, burst.activations) << label;
  EXPECT_EQ(slow.refreshes, burst.refreshes) << label;
  EXPECT_EQ(slow.trr_hits, burst.trr_hits) << label;
  EXPECT_EQ(slow.ecc_corrected, burst.ecc_corrected) << label;
  EXPECT_EQ(slow.ecc_uncorrectable, burst.ecc_uncorrectable) << label;
  EXPECT_EQ(slow.total_flips, burst.total_flips) << label;
  ASSERT_EQ(slow.flips.size(), burst.flips.size()) << label;
  for (std::size_t i = 0; i < slow.flips.size(); ++i) {
    const FlipEvent& a = slow.flips[i];
    const FlipEvent& b = burst.flips[i];
    EXPECT_EQ(a.addr, b.addr) << label << " flip " << i;
    EXPECT_EQ(a.coord, b.coord) << label << " flip " << i;
    EXPECT_EQ(a.bit, b.bit) << label << " flip " << i;
    EXPECT_EQ(a.to_one, b.to_one) << label << " flip " << i;
    EXPECT_EQ(a.time, b.time) << label << " flip " << i;
  }
  EXPECT_EQ(slow.image, burst.image) << label;
}

/// Runs the same aggressor burst through the per-access loop and through
/// hammer_burst on identically seeded devices and asserts every observable
/// matches. Returns the number of flips (so callers can assert coverage).
std::size_t run_differential(const DeviceParams& params, std::uint64_t seed,
                             const std::vector<DramAddress>& aggressors,
                             std::uint64_t iterations,
                             const std::string& label) {
  const Geometry g = small_geometry();
  DramDevice slow_dev(g, params, seed);
  DramDevice burst_dev(g, params, seed);
  // 0xAA charges true cells on odd bits and anti cells on even bits, so both
  // flip directions are exercised; it also gives the data-pattern
  // sensitivity model a mix of matching and opposite aggressor bits.
  slow_dev.fill(0, 0xAA, g.total_bytes());
  burst_dev.fill(0, 0xAA, g.total_bytes());

  std::vector<PhysAddr> addrs;
  for (const DramAddress& c : aggressors)
    addrs.push_back(slow_dev.mapping().encode(c));

  for (std::uint64_t i = 0; i < iterations; ++i)
    for (const PhysAddr a : addrs) slow_dev.access(a);
  burst_dev.hammer_burst(addrs, iterations);

  const Outcome slow = capture(slow_dev);
  const Outcome burst = capture(burst_dev);
  expect_identical(slow, burst, label);
  return slow.flips.size();
}

std::string config_label(bool trr, bool ecc) {
  return std::string(trr ? "trr" : "no-trr") + "/" + (ecc ? "ecc" : "no-ecc");
}

TEST(HammerBurstDifferential, DoubleSidedAllDefenceConfigs) {
  // Double-sided pair around row 20 of bank 0: the canonical hot loop.
  const std::vector<DramAddress> pair = {{0, 0, 0, 19, 0}, {0, 0, 0, 21, 0}};
  std::size_t flips_without_defences = 0;
  for (const bool trr : {false, true}) {
    for (const bool ecc : {false, true}) {
      const std::size_t flips =
          run_differential(base_params(trr, ecc), 21, pair, 20'000,
                           "double-sided " + config_label(trr, ecc));
      if (!trr && !ecc) flips_without_defences = flips;
    }
  }
  // The equivalence must be demonstrated on a burst that actually flips.
  EXPECT_GT(flips_without_defences, 0u);
}

TEST(HammerBurstDifferential, ManySidedAndAdjacentAggressors) {
  // Four same-bank aggressors, two of them adjacent (so one aggressor row is
  // itself a victim of another — data in an aggressor row can change
  // mid-burst, which the event predictor must pick up).
  const std::vector<DramAddress> many = {
      {0, 0, 0, 10, 0}, {0, 0, 0, 12, 0}, {0, 0, 0, 13, 0}, {0, 0, 0, 30, 0}};
  for (const bool trr : {false, true})
    run_differential(base_params(trr, false), 33, many, 15'000,
                     "many-sided " + config_label(trr, false));
}

TEST(HammerBurstDifferential, CrossBankPairOnlyRowHits) {
  // Different banks: after the first iteration every access is a row hit, so
  // zero activations accrue — the burst must still advance time and cross
  // refresh boundaries identically.
  const std::vector<DramAddress> cross = {{0, 0, 0, 19, 0}, {0, 0, 1, 21, 0}};
  run_differential(base_params(true, true), 5, cross, 30'000, "cross-bank");
}

TEST(HammerBurstDifferential, SingleAggressorAndDuplicates) {
  run_differential(base_params(false, false), 7, {{0, 0, 1, 40, 0}}, 25'000,
                   "single");
  // Duplicate aggressor with a same-bank row between the copies: the second
  // copy conflicts again, so one row activates twice per iteration.
  const std::vector<DramAddress> dup = {
      {0, 0, 1, 40, 0}, {0, 0, 1, 42, 0}, {0, 0, 1, 40, 64}};
  run_differential(base_params(true, false), 7, dup, 12'000, "duplicates");
}

TEST(HammerBurstDifferential, TrrSamplerPressureFallsBackIdentically) {
  // More distinct aggressor rows than sampler entries: the analytic sampler
  // model does not apply and the burst must take the per-access fallback —
  // still bit-identical, just not fast.
  DeviceParams p = base_params(true, false);
  p.trr.sampler_entries = 2;
  const std::vector<DramAddress> many = {
      {0, 0, 0, 10, 0}, {0, 0, 0, 20, 0}, {0, 0, 0, 31, 0}, {0, 0, 0, 44, 0}};
  run_differential(p, 5, many, 8'000, "sampler-pressure");
}

TEST(HammerBurstDifferential, EdgeRowsAndTinyIterationCounts) {
  // Aggressors at the physical edges of the bank (rows 0 and 63) have only
  // one neighbour each; plus warm-up-only burst lengths.
  const std::vector<DramAddress> edges = {{0, 0, 0, 0, 0}, {0, 0, 0, 63, 0}};
  for (const std::uint64_t iters : {1ull, 2ull, 3ull, 7'000ull})
    run_differential(base_params(true, true), 11, edges, iters,
                     "edges x" + std::to_string(iters));
}

TEST(HammerBurstDifferential, ResumesMidWindowWithPriorState) {
  // A burst issued after unrelated traffic (partially filled disturbance
  // counters, TRR sampler state, part of the window consumed) must continue
  // from that state exactly as the slow path does.
  const Geometry g = small_geometry();
  const DeviceParams p = base_params(true, false);
  DramDevice slow_dev(g, p, 21);
  DramDevice burst_dev(g, p, 21);
  slow_dev.fill(0, 0xAA, g.total_bytes());
  burst_dev.fill(0, 0xAA, g.total_bytes());

  const PhysAddr warm_a = slow_dev.mapping().encode({0, 0, 0, 19, 0});
  const PhysAddr warm_b = slow_dev.mapping().encode({0, 0, 0, 21, 0});
  for (int i = 0; i < 900; ++i) {
    slow_dev.access(i % 2 ? warm_a : warm_b);
    burst_dev.access(i % 2 ? warm_a : warm_b);
  }
  slow_dev.idle(100 * kMicrosecond);
  burst_dev.idle(100 * kMicrosecond);

  const std::vector<PhysAddr> pair = {warm_a, warm_b};
  for (std::uint64_t i = 0; i < 18'000; ++i)
    for (const PhysAddr a : pair) slow_dev.access(a);
  burst_dev.hammer_burst(pair, 18'000);
  expect_identical(capture(slow_dev), capture(burst_dev), "mid-window");
}

TEST(HammerBurstDifferential, HammerEngineUsesBurstPath) {
  // HammerEngine::hammer rides the burst path; its result must match a
  // hand-rolled per-access loop byte for byte.
  const Geometry g = small_geometry();
  const DeviceParams p = base_params(false, false);
  DramDevice slow_dev(g, p, 21);
  DramDevice engine_dev(g, p, 21);
  slow_dev.fill(0, 0xAA, g.total_bytes());
  engine_dev.fill(0, 0xAA, g.total_bytes());

  const PhysAddr a = slow_dev.mapping().encode({0, 0, 0, 19, 0});
  const PhysAddr b = slow_dev.mapping().encode({0, 0, 0, 21, 0});
  const SimTime slow_start = slow_dev.now();
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    slow_dev.access(a);
    slow_dev.access(b);
  }
  const SimTime slow_elapsed = slow_dev.now() - slow_start;

  HammerEngine engine(engine_dev);
  const PhysAddr pair[2] = {a, b};
  const HammerResult r = engine.hammer(pair, 20'000);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.iterations, 20'000u);
  EXPECT_EQ(r.elapsed, slow_elapsed);
  // engine.hammer drains the device's flip log into r.flips; put the events
  // back into an Outcome so the comparison covers them too.
  Outcome engine_out = capture(engine_dev);
  EXPECT_TRUE(engine_out.flips.empty());  // drained by the engine
  engine_out.flips = r.flips;
  expect_identical(capture(slow_dev), engine_out, "engine");
}

}  // namespace
}  // namespace explframe::dram
