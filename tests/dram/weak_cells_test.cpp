#include "dram/weak_cells.hpp"

#include <gtest/gtest.h>

namespace explframe::dram {
namespace {

Geometry small_geometry() { return Geometry::with_capacity(64 * kMiB); }

TEST(WeakCellModel, DeterministicForSeed) {
  const auto g = small_geometry();
  WeakCellParams p;
  WeakCellModel a(g, p, 42), b(g, p, 42);
  EXPECT_EQ(a.total_cells(), b.total_cells());
  EXPECT_EQ(a.vulnerable_rows(), b.vulnerable_rows());
}

TEST(WeakCellModel, DifferentSeedsDiffer) {
  const auto g = small_geometry();
  WeakCellParams p;
  WeakCellModel a(g, p, 1), b(g, p, 2);
  EXPECT_NE(a.vulnerable_rows(), b.vulnerable_rows());
}

TEST(WeakCellModel, PopulationScalesWithDensity) {
  const auto g = small_geometry();
  WeakCellParams lo, hi;
  lo.cells_per_mib = 1.0;
  hi.cells_per_mib = 16.0;
  WeakCellModel a(g, lo, 7), b(g, hi, 7);
  // 64 MiB: expect ~64 vs ~1024 cells; allow generous slack.
  EXPECT_GT(a.total_cells(), 20u);
  EXPECT_LT(a.total_cells(), 200u);
  EXPECT_GT(b.total_cells(), 600u);
  EXPECT_GT(b.total_cells(), 4 * a.total_cells());
}

TEST(WeakCellModel, ZeroDensityYieldsNoCells) {
  const auto g = small_geometry();
  WeakCellParams p;
  p.cells_per_mib = 0.0;
  WeakCellModel m(g, p, 3);
  EXPECT_EQ(m.total_cells(), 0u);
  EXPECT_TRUE(m.vulnerable_rows().empty());
}

TEST(WeakCellModel, ThresholdsWithinConfiguredBounds) {
  const auto g = small_geometry();
  WeakCellParams p;
  p.cells_per_mib = 16.0;
  WeakCellModel m(g, p, 9);
  for (const auto row : m.vulnerable_rows()) {
    for (const auto& cell : m.cells_in_row(row)) {
      EXPECT_GE(cell.threshold, p.threshold_min);
      EXPECT_LE(cell.threshold, p.threshold_max);
      EXPECT_LT(cell.col, g.row_bytes);
      EXPECT_LT(cell.bit, 8);
      EXPECT_TRUE(cell.couple_above == 1.0F || cell.couple_below == 1.0F);
    }
  }
}

TEST(WeakCellModel, MixOfTrueAndAntiCells) {
  const auto g = small_geometry();
  WeakCellParams p;
  p.cells_per_mib = 32.0;
  WeakCellModel m(g, p, 13);
  std::size_t true_cells = 0, anti_cells = 0;
  for (const auto row : m.vulnerable_rows()) {
    for (const auto& cell : m.cells_in_row(row))
      (cell.true_cell ? true_cells : anti_cells)++;
  }
  EXPECT_GT(true_cells, 0u);
  EXPECT_GT(anti_cells, 0u);
}

TEST(WeakCellModel, SomeSingleSidedCells) {
  const auto g = small_geometry();
  WeakCellParams p;
  p.cells_per_mib = 32.0;
  p.single_sided_fraction = 0.5;
  WeakCellModel m(g, p, 21);
  std::size_t single = 0, total = 0;
  for (const auto row : m.vulnerable_rows()) {
    for (const auto& cell : m.cells_in_row(row)) {
      ++total;
      if (cell.couple_above == 0.0F || cell.couple_below == 0.0F) ++single;
    }
  }
  EXPECT_GT(single, total / 4);
  EXPECT_LT(single, 3 * total / 4);
}

TEST(WeakCellModel, CellsInUnknownRowEmpty) {
  const auto g = small_geometry();
  WeakCellParams p;
  p.cells_per_mib = 0.0;
  WeakCellModel m(g, p, 1);
  EXPECT_TRUE(m.cells_in_row(123).empty());
}

TEST(WeakCellModel, VulnerableRowsSortedAndInRange) {
  const auto g = small_geometry();
  WeakCellParams p;
  p.cells_per_mib = 8.0;
  WeakCellModel m(g, p, 17);
  const auto rows = m.vulnerable_rows();
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_LT(rows[i - 1], rows[i]);
  for (const auto r : rows) EXPECT_LT(r, g.total_rows());
}

}  // namespace
}  // namespace explframe::dram
