#include "dram/geometry.hpp"

#include <gtest/gtest.h>

namespace explframe::dram {
namespace {

TEST(Geometry, DefaultsAreConsistent) {
  Geometry g;
  EXPECT_EQ(g.total_banks(), 8u);
  EXPECT_EQ(g.total_rows(), 8u * 8192);
  EXPECT_EQ(g.total_bytes(), 8ull * 8192 * 8192);
}

TEST(Geometry, WithCapacityRoundTrips) {
  for (const std::uint64_t mib : {64ull, 128ull, 256ull, 512ull, 1024ull}) {
    const auto g = Geometry::with_capacity(mib * kMiB);
    EXPECT_EQ(g.total_bytes(), mib * kMiB) << mib;
    EXPECT_LE(g.rows_per_bank, 65536u);
  }
}

TEST(Geometry, WithCapacityLargeAddsRanks) {
  const auto g = Geometry::with_capacity(8 * kGiB);
  EXPECT_EQ(g.total_bytes(), 8 * kGiB);
  EXPECT_GT(g.ranks, 1u);
}

TEST(Geometry, DescribeMentionsCapacity) {
  const auto g = Geometry::with_capacity(256 * kMiB);
  EXPECT_NE(g.describe().find("256"), std::string::npos);
}

TEST(Geometry, FlatIndicesAreUniquePerRow) {
  Geometry g;
  g.channels = 2;
  g.ranks = 2;
  DramAddress a{1, 1, 7, 100, 0};
  DramAddress b{1, 1, 7, 101, 0};
  DramAddress c{0, 1, 7, 100, 0};
  EXPECT_EQ(flat_row(g, b), flat_row(g, a) + 1);
  EXPECT_NE(flat_row(g, a), flat_row(g, c));
  EXPECT_EQ(flat_bank(g, a), flat_bank(g, b));
}

}  // namespace
}  // namespace explframe::dram
