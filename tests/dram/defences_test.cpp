// Tests for the in-DRAM mitigations: Target Row Refresh and SECDED ECC.
#include <gtest/gtest.h>

#include "dram/hammer.hpp"
#include "support/check.hpp"

namespace explframe::dram {
namespace {

DeviceParams vulnerable_params() {
  DeviceParams p;
  p.weak_cells.cells_per_mib = 512.0;
  p.weak_cells.threshold_log_mean = 10.3;
  p.weak_cells.threshold_max = 120'000;
  p.data_pattern_sensitivity = false;
  return p;
}

/// Find a hammerable (double-coupled, charged-on-0xFF) cell and return its
/// victim coordinate; charges the row.
bool find_target(DramDevice& dev, AddressMapping& map, DramAddress& victim,
                 WeakCell& cell) {
  const auto& g = dev.geometry();
  for (const auto fr : dev.weak_cells().vulnerable_rows()) {
    const auto in_bank = static_cast<std::uint32_t>(fr % g.rows_per_bank);
    if (in_bank == 0 || in_bank + 1 >= g.rows_per_bank) continue;
    const auto& c = dev.weak_cells().cells_in_row(fr)[0];
    if (c.couple_above <= 0.0F || c.couple_below <= 0.0F) continue;
    if (!c.true_cell) continue;
    victim.channel = 0;
    const std::uint64_t bank_flat = fr / g.rows_per_bank;
    victim.bank = static_cast<std::uint32_t>(bank_flat % g.banks);
    const std::uint64_t cr = bank_flat / g.banks;
    victim.rank = static_cast<std::uint32_t>(cr % g.ranks);
    victim.channel = static_cast<std::uint32_t>(cr / g.ranks);
    victim.row = in_bank;
    victim.col = c.col;
    cell = c;
    dev.fill(map.encode({victim.channel, victim.rank, victim.bank,
                         victim.row, 0}),
             0xFF, g.row_bytes);
    return true;
  }
  return false;
}

TEST(Trr, BlocksDoubleSidedHammering) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  DeviceParams p = vulnerable_params();
  p.trr.enabled = true;
  p.trr.threshold = 8'000;  // well below every weak-cell threshold
  DramDevice dev(g, p, 21);
  AddressMapping map(g, p.mapping);
  HammerEngine engine(dev);
  DramAddress victim;
  WeakCell cell;
  ASSERT_TRUE(find_target(dev, map, victim, cell));
  const auto r = engine.hammer_double_sided(map.encode(victim), 400'000);
  for (const auto& f : r.flips)
    EXPECT_FALSE(f.coord.row == victim.row && f.coord.bank == victim.bank);
  EXPECT_GT(dev.trr_interventions(), 0u);
}

TEST(Trr, SameHammeringFlipsWithoutTrr) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  DeviceParams p = vulnerable_params();
  DramDevice dev(g, p, 21);
  AddressMapping map(g, p.mapping);
  HammerEngine engine(dev);
  DramAddress victim;
  WeakCell cell;
  ASSERT_TRUE(find_target(dev, map, victim, cell));
  const auto r = engine.hammer_double_sided(map.encode(victim), 400'000);
  bool flipped = false;
  for (const auto& f : r.flips)
    flipped |= f.coord.row == victim.row && f.coord.col == cell.col;
  EXPECT_TRUE(flipped);
  EXPECT_EQ(dev.trr_interventions(), 0u);
}

TEST(Trr, HighThresholdDoesNotIntervene) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  DeviceParams p = vulnerable_params();
  p.trr.enabled = true;
  p.trr.threshold = 10'000'000;  // never reached within a window
  DramDevice dev(g, p, 21);
  AddressMapping map(g, p.mapping);
  HammerEngine engine(dev);
  DramAddress victim;
  WeakCell cell;
  ASSERT_TRUE(find_target(dev, map, victim, cell));
  engine.hammer_double_sided(map.encode(victim), 400'000);
  EXPECT_EQ(dev.trr_interventions(), 0u);
}

class EccTest : public ::testing::Test {
 protected:
  EccTest()
      : geometry_(Geometry::with_capacity(64 * kMiB)),
        params_(make_params()),
        dev_(geometry_, params_, 21),
        map_(geometry_, params_.mapping),
        engine_(dev_) {}

  static DeviceParams make_params() {
    DeviceParams p = vulnerable_params();
    p.ecc.enabled = true;
    return p;
  }

  /// Hammer until one flip lands; returns its event.
  FlipEvent induce_flip() {
    DramAddress victim;
    WeakCell cell;
    EXPLFRAME_CHECK(find_target(dev_, map_, victim, cell));
    const auto r = engine_.hammer_double_sided(
        map_.encode({victim.channel, victim.rank, victim.bank, victim.row, 0}),
        400'000);
    EXPLFRAME_CHECK(!r.flips.empty());
    for (const auto& f : r.flips)
      if (f.coord.row == victim.row) return f;
    return r.flips.front();
  }

  Geometry geometry_;
  DeviceParams params_;
  DramDevice dev_;
  AddressMapping map_;
  HammerEngine engine_;
};

TEST_F(EccTest, SingleBitFlipCorrectedOnRead) {
  const FlipEvent flip = induce_flip();
  // The cell array holds the flipped value, but reads are corrected.
  EXPECT_EQ(dev_.read_byte(flip.addr), 0xFF);
  EXPECT_GT(dev_.ecc_corrected_bits(), 0u);
  EXPECT_EQ(dev_.ecc_uncorrectable_words(), 0u);
}

TEST_F(EccTest, RewriteClearsCorrectionState) {
  const FlipEvent flip = induce_flip();
  const auto corrected_before = dev_.ecc_corrected_bits();
  dev_.write_byte(flip.addr, 0x5A);
  EXPECT_EQ(dev_.read_byte(flip.addr), 0x5A);
  // No further corrections: the flip record was absorbed by the write.
  EXPECT_EQ(dev_.ecc_corrected_bits(), corrected_before);
}

TEST_F(EccTest, DoubleFlipInWordIsUncorrectable) {
  // Two injected flips in the same 64-bit word defeat SECDED: the read is
  // flagged uncorrectable and returns the raw (corrupted) data.
  const PhysAddr word_base = 4096 * 8;  // word-aligned
  dev_.fill(word_base, 0xFF, 8);
  dev_.inject_flip(word_base + 1, 3);
  dev_.inject_flip(word_base + 5, 6);
  EXPECT_EQ(dev_.read_byte(word_base + 1), 0xFF ^ 0x08);
  EXPECT_EQ(dev_.read_byte(word_base + 5), 0xFF ^ 0x40);
  EXPECT_GE(dev_.ecc_uncorrectable_words(), 2u);
}

TEST_F(EccTest, InjectedSingleFlipCorrected) {
  const PhysAddr addr = 4096 * 12 + 16;
  dev_.fill(addr & ~PhysAddr{7}, 0xA5, 8);
  dev_.inject_flip(addr, 2);
  EXPECT_EQ(dev_.read_byte(addr), 0xA5);  // corrected on read
  EXPECT_GT(dev_.ecc_corrected_bits(), 0u);
}

TEST_F(EccTest, FlipsInSeparateWordsCorrectedIndependently) {
  dev_.fill(0, 0x00, 64);
  dev_.inject_flip(0, 0);
  dev_.inject_flip(8, 7);  // next word
  std::uint8_t buf[16] = {};
  dev_.read(0, buf);
  EXPECT_EQ(buf[0], 0x00);
  EXPECT_EQ(buf[8], 0x00);
  EXPECT_EQ(dev_.ecc_uncorrectable_words(), 0u);
}

TEST(EccDisabled, FlipVisibleWithoutEcc) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  DeviceParams p = vulnerable_params();
  DramDevice dev(g, p, 21);
  AddressMapping map(g, p.mapping);
  HammerEngine engine(dev);
  DramAddress victim;
  WeakCell cell;
  ASSERT_TRUE(find_target(dev, map, victim, cell));
  const auto r = engine.hammer_double_sided(
      map.encode({victim.channel, victim.rank, victim.bank, victim.row, 0}),
      400'000);
  ASSERT_FALSE(r.flips.empty());
  bool corrupted_read = false;
  for (const auto& f : r.flips)
    corrupted_read |= dev.read_byte(f.addr) != 0xFF;
  EXPECT_TRUE(corrupted_read);
  EXPECT_EQ(dev.ecc_corrected_bits(), 0u);
}

}  // namespace
}  // namespace explframe::dram
