// Test-only reference copy of the PRE-PACKED DRAM state representation.
//
// This header freezes the seed's hash-map-of-heap-rows bookkeeping exactly
// as it stood before the bit-packed SoA refactor:
//
//   * RefWeakCellModel  — std::unordered_map<row, std::vector<WeakCell>>
//   * RefDevice         — per-row disturbance / TRR sampler / live-flip
//                         unordered_maps, a 1-byte-per-row weak-row array,
//                         and an AoS FlipEvent log
//
// tests/dram/packed_differential_test.cpp drives this implementation and
// the production (packed) DramDevice through identical operation storms
// and asserts observable equality: representation-differential testing.
// bench/bench_geometry.cpp instantiates it to measure the seed layout's
// resident footprint against the packed arenas.
//
// ONE deliberate divergence from the seed, shared with the packed
// implementation: TRR sampler eviction breaks count ties by smallest row.
// The seed broke ties by unordered_map iteration order (a latent
// platform dependence); no registered scenario or sweep ever fires an
// eviction (verified by instrumentation), so goldens pin both versions.
//
// NEVER include this from src/ — it exists so the old layout stays
// testable against, not so it stays usable.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "dram/address_mapping.hpp"
#include "dram/dram_device.hpp"
#include "dram/geometry.hpp"
#include "dram/weak_cells.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/units.hpp"

namespace explframe::refdram {

using dram::DeviceParams;
using dram::DramAddress;
using dram::FlipEvent;
using dram::Geometry;
using dram::PhysAddr;
using dram::WeakCell;
using dram::WeakCellParams;

/// Seed-layout weak-cell population: unordered map of flat row to a heap
/// vector of WeakCell. Same RNG stream and population as the packed model.
class RefWeakCellModel {
 public:
  RefWeakCellModel(const Geometry& geometry, const WeakCellParams& params,
                   std::uint64_t seed)
      : params_(params) {
    EXPLFRAME_CHECK(params.cells_per_mib >= 0.0);
    Rng rng(seed ^ 0xdead5eedULL);

    const double expected =
        params.cells_per_mib *
        (static_cast<double>(geometry.total_bytes()) /
         static_cast<double>(kMiB));
    std::size_t count;
    if (expected > 64.0) {
      count = static_cast<std::size_t>(std::max(
          0.0, std::round(rng.normal(expected, std::sqrt(expected)))));
    } else {
      const double limit = std::exp(-expected);
      double prod = rng.uniform01();
      count = 0;
      while (prod > limit) {
        ++count;
        prod *= rng.uniform01();
      }
    }

    const std::uint64_t rows = geometry.total_rows();
    for (std::size_t i = 0; i < count; ++i) {
      WeakCell cell;
      cell.col = static_cast<std::uint32_t>(rng.uniform(geometry.row_bytes));
      cell.bit = static_cast<std::uint8_t>(rng.uniform(8));
      const double t = std::exp(
          rng.normal(params.threshold_log_mean, params.threshold_log_sigma));
      cell.threshold = static_cast<std::uint32_t>(
          std::clamp<double>(t, params.threshold_min, params.threshold_max));
      cell.true_cell = rng.bernoulli(params.true_cell_fraction);
      if (rng.bernoulli(params.single_sided_fraction)) {
        if (rng.bernoulli(0.5)) {
          cell.couple_above = 1.0F;
          cell.couple_below = 0.0F;
        } else {
          cell.couple_above = 0.0F;
          cell.couple_below = 1.0F;
        }
      } else {
        cell.couple_above = 1.0F;
        cell.couple_below = static_cast<float>(0.5 + 0.5 * rng.uniform01());
        if (rng.bernoulli(0.5)) std::swap(cell.couple_above, cell.couple_below);
      }
      const std::uint64_t row = rng.uniform(rows);
      auto& vec = by_row_[row];
      const bool dup =
          std::any_of(vec.begin(), vec.end(), [&](const WeakCell& w) {
            return w.col == cell.col && w.bit == cell.bit;
          });
      if (dup) continue;
      vec.push_back(cell);
      ++total_;
    }
  }

  /// Weak cells in the given row (empty vector if none), insertion order.
  const std::vector<WeakCell>& cells_in_row(std::uint64_t flat_row) const {
    static const std::vector<WeakCell> kEmpty;
    const auto it = by_row_.find(flat_row);
    return it == by_row_.end() ? kEmpty : it->second;
  }

  std::size_t total_cells() const noexcept { return total_; }

  /// Rows with at least one weak cell, sorted (the seed sorted after
  /// walking the map).
  std::vector<std::uint64_t> vulnerable_rows() const {
    std::vector<std::uint64_t> rows;
    rows.reserve(by_row_.size());
    for (const auto& [row, cells] : by_row_)
      if (!cells.empty()) rows.push_back(row);
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  /// Resident bytes of this layout under a transparent cost model:
  /// hash nodes (value + list pointer + allocator overhead), the bucket
  /// array, and each row's heap vector (capacity, + one malloc header).
  /// Documented in bench/bench_geometry.cpp; deliberately conservative
  /// (real malloc rounds sizes up further).
  std::uint64_t state_bytes() const {
    constexpr std::uint64_t kPtr = sizeof(void*);
    constexpr std::uint64_t kMallocHeader = 16;
    std::uint64_t bytes = by_row_.bucket_count() * kPtr;
    for (const auto& [row, cells] : by_row_) {
      bytes += sizeof(row) + sizeof(cells) + kPtr + kMallocHeader;  // node
      bytes += cells.capacity() * sizeof(WeakCell) + kMallocHeader;
    }
    return bytes;
  }

 private:
  WeakCellParams params_;
  std::unordered_map<std::uint64_t, std::vector<WeakCell>> by_row_;
  std::size_t total_ = 0;
};

/// Seed-layout DRAM device: behaviourally the pre-refactor DramDevice,
/// copied verbatim (modulo the documented eviction tie-break) with its
/// unordered_map bookkeeping intact.
class RefDevice {
 public:
  /// Disturbance accumulated by one weak row this refresh window.
  struct RowDisturbance {
    std::uint32_t acts_above = 0;
    std::uint32_t acts_below = 0;
  };
  /// A flipped-but-not-yet-rewritten bit (ECC bookkeeping).
  struct LiveFlip {
    std::uint32_t col;
    std::uint8_t bit;
  };

  /// Old-layout snapshot image (maps and AoS vectors, CoW row payloads).
  struct Image {
    std::unordered_map<std::uint64_t, std::shared_ptr<std::uint8_t[]>> rows;
    std::vector<std::int64_t> open_row;
    std::unordered_map<std::uint64_t, RowDisturbance> disturbance;
    std::vector<FlipEvent> flips;
    std::unordered_map<std::uint64_t, std::vector<LiveFlip>> live_flips;
    std::unordered_map<std::uint64_t, std::uint32_t> trr_sampler;
    SimTime now = 0;
    SimTime next_refresh = 0;
    std::uint64_t mutation_epoch = 0;
    std::uint64_t total_flips = 0;
    std::uint64_t total_acts = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t trr_hits = 0;
    std::uint64_t ecc_corrected = 0;
    std::uint64_t ecc_uncorrectable = 0;
  };

  RefDevice(const Geometry& geometry, const DeviceParams& params,
            std::uint64_t seed)
      : geometry_(geometry),
        params_(params),
        mapping_(geometry, params.mapping),
        weak_cells_(geometry, params.weak_cells, seed),
        zero_row_(std::make_unique<std::uint8_t[]>(geometry.row_bytes)),
        open_row_(geometry.total_banks(), -1),
        weak_row_(geometry.total_rows(), 0),
        next_refresh_(params.timings.refresh_window_ns) {
    EXPLFRAME_CHECK(params.timings.refresh_window_ns > 0);
    EXPLFRAME_CHECK(geometry.total_rows() > 0 && geometry.row_bytes > 0);
    std::memset(zero_row_.get(), 0, geometry_.row_bytes);
    for (const std::uint64_t r : weak_cells_.vulnerable_rows())
      weak_row_[r] = 1;
  }

  // ---- Snapshot --------------------------------------------------------
  /// Capture the full mutable state (CoW row payloads).
  Image capture_image() const {
    Image image;
    image.rows = rows_;
    image.open_row = open_row_;
    image.disturbance = disturbance_;
    image.flips = flips_;
    image.live_flips = live_flips_;
    image.trr_sampler = trr_sampler_;
    image.now = now_;
    image.next_refresh = next_refresh_;
    image.mutation_epoch = mutation_epoch_;
    image.total_flips = total_flips_;
    image.total_acts = total_acts_;
    image.refreshes = refreshes_;
    image.trr_hits = trr_hits_;
    image.ecc_corrected = ecc_corrected_;
    image.ecc_uncorrectable = ecc_uncorrectable_;
    return image;
  }

  /// Restore exactly; the mutation epoch strictly advances.
  void restore_image(const Image& image) {
    rows_ = image.rows;
    open_row_ = image.open_row;
    disturbance_ = image.disturbance;
    flips_ = image.flips;
    live_flips_ = image.live_flips;
    trr_sampler_ = image.trr_sampler;
    now_ = image.now;
    next_refresh_ = image.next_refresh;
    total_flips_ = image.total_flips;
    total_acts_ = image.total_acts;
    refreshes_ = image.refreshes;
    trr_hits_ = image.trr_hits;
    ecc_corrected_ = image.ecc_corrected;
    ecc_uncorrectable_ = image.ecc_uncorrectable;
    mutation_epoch_ = std::max(mutation_epoch_, image.mutation_epoch) + 1;
  }

  // ---- Data path -------------------------------------------------------
  /// Read bytes (ECC-filtered when enabled).
  void read(PhysAddr addr, std::span<std::uint8_t> out) {
    EXPLFRAME_CHECK(addr + out.size() <= geometry_.total_bytes());
    std::size_t done = 0;
    while (done < out.size()) {
      const DramAddress c = mapping_.decode(addr + done);
      const std::uint64_t fr = dram::flat_row(geometry_, c);
      const std::size_t chunk = std::min<std::size_t>(
          out.size() - done, geometry_.row_bytes - c.col);
      std::memcpy(out.data() + done, row_view(fr) + c.col, chunk);
      if (params_.ecc.enabled) ecc_filter(fr, c.col, out.subspan(done, chunk));
      done += chunk;
    }
  }

  /// Write bytes; rewrites clear live-flip records in range.
  void write(PhysAddr addr, std::span<const std::uint8_t> in) {
    EXPLFRAME_CHECK(addr + in.size() <= geometry_.total_bytes());
    ++mutation_epoch_;
    std::size_t done = 0;
    while (done < in.size()) {
      const DramAddress c = mapping_.decode(addr + done);
      const std::uint64_t fr = dram::flat_row(geometry_, c);
      const std::size_t chunk =
          std::min<std::size_t>(in.size() - done, geometry_.row_bytes - c.col);
      std::memcpy(row_storage(fr) + c.col, in.data() + done, chunk);
      clear_live_flips(fr, c.col, chunk);
      done += chunk;
    }
  }

  /// Fill a byte range; rewrites clear live-flip records in range.
  void fill(PhysAddr addr, std::uint8_t value, std::uint64_t len) {
    EXPLFRAME_CHECK(addr + len <= geometry_.total_bytes());
    ++mutation_epoch_;
    std::uint64_t done = 0;
    while (done < len) {
      const DramAddress c = mapping_.decode(addr + done);
      const std::uint64_t fr = dram::flat_row(geometry_, c);
      const std::uint64_t chunk =
          std::min<std::uint64_t>(len - done, geometry_.row_bytes - c.col);
      std::memset(row_storage(fr) + c.col, value, chunk);
      clear_live_flips(fr, c.col, chunk);
      done += chunk;
    }
  }

  // ---- Timing-visible access path --------------------------------------
  /// One uncached access: activation + disturbance + latency.
  SimTime access(PhysAddr addr) {
    EXPLFRAME_CHECK(addr < geometry_.total_bytes());
    const DramAddress c = mapping_.decode(addr);
    const std::uint64_t bank = dram::flat_bank(geometry_, c);
    SimTime latency;
    if (open_row_[bank] == static_cast<std::int64_t>(c.row)) {
      latency = params_.timings.row_hit_ns;
    } else {
      latency = params_.timings.row_conflict_ns;
      open_row_[bank] = static_cast<std::int64_t>(c.row);
      ++total_acts_;
      apply_disturbance(c);
    }
    advance(latency);
    return latency;
  }

  /// The seed's per-access hammer loop (no analytic fast path: the
  /// reference is the semantics, not the speed).
  void hammer(std::span<const PhysAddr> aggressors, std::uint64_t iterations) {
    for (std::uint64_t i = 0; i < iterations; ++i)
      for (const PhysAddr a : aggressors) access(a);
  }

  // ---- Maintenance -----------------------------------------------------
  /// Advance the device clock without accesses.
  void idle(SimTime duration) { advance(duration); }

  /// Force a full refresh now.
  void refresh_now() {
    disturbance_.clear();
    trr_sampler_.clear();
    ++refreshes_;
    next_refresh_ = now_ + params_.timings.refresh_window_ns;
  }

  /// Deterministically flip one stored bit.
  void inject_flip(PhysAddr addr, std::uint8_t bit) {
    EXPLFRAME_CHECK(addr < geometry_.total_bytes() && bit < 8);
    const DramAddress c = mapping_.decode(addr);
    const std::uint64_t fr = dram::flat_row(geometry_, c);
    std::uint8_t* data = row_storage(fr);
    const bool was_set = (data[c.col] >> bit) & 1u;
    data[c.col] = static_cast<std::uint8_t>(data[c.col] ^ (1u << bit));
    FlipEvent ev;
    ev.addr = addr;
    ev.coord = c;
    ev.bit = bit;
    ev.to_one = !was_set;
    ev.time = now_;
    flips_.push_back(ev);
    live_flips_[fr].push_back({c.col, bit});
    ++total_flips_;
    ++mutation_epoch_;
  }

  // ---- Flip log / statistics -------------------------------------------
  /// All flips since the last drain, in occurrence order.
  std::vector<FlipEvent> drain_flips() {
    std::vector<FlipEvent> out;
    out.swap(flips_);
    return out;
  }

  const RefWeakCellModel& weak_cells() const noexcept { return weak_cells_; }
  SimTime now() const noexcept { return now_; }
  std::uint64_t mutation_epoch() const noexcept { return mutation_epoch_; }
  std::uint64_t total_flips() const noexcept { return total_flips_; }
  std::uint64_t total_activations() const noexcept { return total_acts_; }
  std::uint64_t refresh_count() const noexcept { return refreshes_; }
  std::uint64_t trr_interventions() const noexcept { return trr_hits_; }
  std::uint64_t ecc_corrected_bits() const noexcept { return ecc_corrected_; }
  std::uint64_t ecc_uncorrectable_words() const noexcept {
    return ecc_uncorrectable_;
  }

  /// Resident bytes of the seed layout's geometry-scaled state under the
  /// cost model documented in bench/bench_geometry.cpp: the weak-cell map,
  /// the 1-byte-per-row weak-row array, and the open-row table. Transient
  /// window state (disturbance, sampler, live flips) is excluded on both
  /// sides of the comparison.
  std::uint64_t state_bytes() const {
    return weak_cells_.state_bytes() + weak_row_.capacity() +
           open_row_.capacity() * sizeof(std::int64_t);
  }

 private:
  std::uint8_t* row_storage(std::uint64_t flat_row) {
    auto it = rows_.find(flat_row);
    if (it == rows_.end()) {
      std::shared_ptr<std::uint8_t[]> buf(
          new std::uint8_t[geometry_.row_bytes]);
      std::memset(buf.get(), 0, geometry_.row_bytes);
      it = rows_.emplace(flat_row, std::move(buf)).first;
    } else if (it->second.use_count() > 1) {
      std::shared_ptr<std::uint8_t[]> buf(
          new std::uint8_t[geometry_.row_bytes]);
      std::memcpy(buf.get(), it->second.get(), geometry_.row_bytes);
      it->second = std::move(buf);
    }
    return it->second.get();
  }

  const std::uint8_t* row_view(std::uint64_t flat_row) const {
    const auto it = rows_.find(flat_row);
    return it != rows_.end() ? it->second.get() : zero_row_.get();
  }

  void advance(SimTime dt) {
    now_ += dt;
    while (now_ >= next_refresh_) {
      disturbance_.clear();
      trr_sampler_.clear();
      ++refreshes_;
      next_refresh_ += params_.timings.refresh_window_ns;
    }
  }

  void trr_observe(std::uint64_t aggressor_flat) {
    auto it = trr_sampler_.find(aggressor_flat);
    if (it == trr_sampler_.end()) {
      if (trr_sampler_.size() >= params_.trr.sampler_entries) {
        // Evict the coldest tracked row; ties break to the smallest row
        // (the documented divergence from the seed's iteration-order tie).
        auto coldest = trr_sampler_.begin();
        for (auto i = trr_sampler_.begin(); i != trr_sampler_.end(); ++i)
          if (i->second < coldest->second ||
              (i->second == coldest->second && i->first < coldest->first))
            coldest = i;
        trr_sampler_.erase(coldest);
      }
      it = trr_sampler_.emplace(aggressor_flat, 0).first;
    }
    if (++it->second < params_.trr.threshold) return;
    ++trr_hits_;
    it->second = 0;
    const std::uint64_t row_in_bank = aggressor_flat % geometry_.rows_per_bank;
    if (row_in_bank > 0) disturbance_.erase(aggressor_flat - 1);
    if (row_in_bank + 1 < geometry_.rows_per_bank)
      disturbance_.erase(aggressor_flat + 1);
  }

  void clear_live_flips(std::uint64_t flat_row, std::uint32_t col,
                        std::uint64_t len) {
    const auto it = live_flips_.find(flat_row);
    if (it == live_flips_.end()) return;
    auto& vec = it->second;
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [&](const LiveFlip& f) {
                               return f.col >= col && f.col < col + len;
                             }),
              vec.end());
    if (vec.empty()) live_flips_.erase(it);
  }

  void ecc_filter(std::uint64_t flat_row, std::uint32_t col,
                  std::span<std::uint8_t> chunk) {
    const auto it = live_flips_.find(flat_row);
    if (it == live_flips_.end()) return;
    std::unordered_map<std::uint32_t, std::vector<const LiveFlip*>> by_word;
    for (const LiveFlip& f : it->second) by_word[f.col / 8].push_back(&f);
    for (const auto& [word, flips] : by_word) {
      const std::uint32_t word_lo = word * 8;
      if (word_lo + 8 <= col || word_lo >= col + chunk.size()) continue;
      if (flips.size() == 1) {
        const LiveFlip& f = *flips.front();
        if (f.col >= col && f.col < col + chunk.size()) {
          chunk[f.col - col] ^= static_cast<std::uint8_t>(1u << f.bit);
          ++ecc_corrected_;
        }
      } else {
        ++ecc_uncorrectable_;
      }
    }
  }

  bool aggressor_bit(const DramAddress& victim, std::int32_t delta,
                     std::uint32_t col, std::uint8_t bit) {
    DramAddress a = victim;
    const std::int64_t row = static_cast<std::int64_t>(victim.row) + delta;
    if (row < 0 || row >= static_cast<std::int64_t>(geometry_.rows_per_bank))
      return false;
    a.row = static_cast<std::uint32_t>(row);
    const std::uint64_t fr = dram::flat_row(geometry_, a);
    const auto it = rows_.find(fr);
    if (it == rows_.end()) return false;
    return (it->second[col] >> bit) & 1u;
  }

  void check_victim_row(std::uint64_t victim_flat, const DramAddress& victim,
                        const RowDisturbance& d) {
    const auto& cells = weak_cells_.cells_in_row(victim_flat);
    if (cells.empty()) return;
    const std::uint8_t* data = row_view(victim_flat);
    std::uint8_t* mut = nullptr;
    for (const WeakCell& cell : cells) {
      const bool stored = ((mut ? mut : data)[cell.col] >> cell.bit) & 1u;
      if (stored != cell.true_cell) continue;

      double effective =
          static_cast<double>(d.acts_above) * cell.couple_above +
          static_cast<double>(d.acts_below) * cell.couple_below;
      if (params_.data_pattern_sensitivity) {
        const bool above = aggressor_bit(victim, -1, cell.col, cell.bit);
        const bool below = aggressor_bit(victim, +1, cell.col, cell.bit);
        const bool any_opposite = (above != stored) || (below != stored);
        if (!any_opposite) effective *= params_.same_pattern_coupling;
      }
      if (effective < static_cast<double>(cell.threshold)) continue;

      if (!mut) mut = row_storage(victim_flat);
      mut[cell.col] =
          static_cast<std::uint8_t>(mut[cell.col] ^ (1u << cell.bit));
      DramAddress at = victim;
      at.col = cell.col;
      FlipEvent ev;
      ev.addr = mapping_.encode(at);
      ev.coord = at;
      ev.bit = cell.bit;
      ev.to_one = !stored;
      ev.time = now_;
      flips_.push_back(ev);
      live_flips_[victim_flat].push_back({cell.col, cell.bit});
      ++total_flips_;
      ++mutation_epoch_;
    }
  }

  void apply_disturbance(const DramAddress& aggressor) {
    const std::uint64_t agg_flat = dram::flat_row(geometry_, aggressor);
    if (params_.trr.enabled) trr_observe(agg_flat);
    if (aggressor.row > 0) {
      const std::uint64_t victim_flat = agg_flat - 1;
      if (weak_row_[victim_flat] != 0) {
        auto& d = disturbance_[victim_flat];
        ++d.acts_below;
        DramAddress victim = aggressor;
        victim.row -= 1;
        check_victim_row(victim_flat, victim, d);
      }
    }
    if (aggressor.row + 1 < geometry_.rows_per_bank) {
      const std::uint64_t victim_flat = agg_flat + 1;
      if (weak_row_[victim_flat] != 0) {
        auto& d = disturbance_[victim_flat];
        ++d.acts_above;
        DramAddress victim = aggressor;
        victim.row += 1;
        check_victim_row(victim_flat, victim, d);
      }
    }
  }

  Geometry geometry_;
  DeviceParams params_;
  dram::AddressMapping mapping_;
  RefWeakCellModel weak_cells_;

  std::unordered_map<std::uint64_t, std::shared_ptr<std::uint8_t[]>> rows_;
  std::unique_ptr<std::uint8_t[]> zero_row_;
  std::vector<std::int64_t> open_row_;
  std::vector<std::uint8_t> weak_row_;
  std::unordered_map<std::uint64_t, RowDisturbance> disturbance_;
  std::vector<FlipEvent> flips_;
  std::unordered_map<std::uint64_t, std::vector<LiveFlip>> live_flips_;
  std::unordered_map<std::uint64_t, std::uint32_t> trr_sampler_;

  SimTime now_ = 0;
  SimTime next_refresh_ = 0;
  std::uint64_t mutation_epoch_ = 0;
  std::uint64_t total_flips_ = 0;
  std::uint64_t total_acts_ = 0;
  std::uint64_t refreshes_ = 0;
  std::uint64_t trr_hits_ = 0;
  std::uint64_t ecc_corrected_ = 0;
  std::uint64_t ecc_uncorrectable_ = 0;
};

}  // namespace explframe::refdram
