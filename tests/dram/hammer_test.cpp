#include "dram/hammer.hpp"

#include <gtest/gtest.h>

namespace explframe::dram {
namespace {

DeviceParams no_flip_params() {
  DeviceParams p;
  p.weak_cells.cells_per_mib = 0.0;
  return p;
}

TEST(HammerEngine, TimingChannelSeparatesBanks) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  const DeviceParams p = no_flip_params();
  DramDevice dev(g, p, 1);
  HammerEngine engine(dev);
  AddressMapping map(g, p.mapping);

  const PhysAddr same_bank_a = map.encode({0, 0, 2, 100, 0});
  const PhysAddr same_bank_b = map.encode({0, 0, 2, 300, 0});
  const PhysAddr other_bank = map.encode({0, 0, 3, 100, 0});

  const double conflict = engine.time_alternating(same_bank_a, same_bank_b);
  const double hit = engine.time_alternating(same_bank_a, other_bank);
  EXPECT_GT(conflict, hit);
  EXPECT_TRUE(engine.same_bank_by_timing(same_bank_a, same_bank_b));
  EXPECT_FALSE(engine.same_bank_by_timing(same_bank_a, other_bank));
}

TEST(HammerEngine, HammerCountsIterationsAndTime) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  const DeviceParams p = no_flip_params();
  DramDevice dev(g, p, 1);
  HammerEngine engine(dev);
  AddressMapping map(g, p.mapping);
  const PhysAddr pair[2] = {map.encode({0, 0, 0, 10, 0}),
                            map.encode({0, 0, 0, 12, 0})};
  const auto result = engine.hammer(pair, 1000);
  EXPECT_EQ(result.iterations, 1000u);
  // Same-bank alternation: every access is a conflict.
  EXPECT_EQ(result.elapsed, 2000 * p.timings.row_conflict_ns);
  EXPECT_TRUE(result.flips.empty());
}

TEST(HammerEngine, EmptyAggressorListIsNoop) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  DramDevice dev(g, no_flip_params(), 1);
  HammerEngine engine(dev);
  const auto result = engine.hammer({}, 100);
  EXPECT_TRUE(result.valid);  // a no-op, not a failure
  EXPECT_EQ(result.iterations, 0u);
}

TEST(HammerEngine, SingleSidedRefusesWhenNoPartnerRow) {
  Geometry g;
  g.banks = 2;
  g.rows_per_bank = 8;  // no row has a same-bank partner 8 rows away
  g.row_bytes = 4 * kKiB;
  const DeviceParams p = no_flip_params();
  DramDevice dev(g, p, 1);
  HammerEngine engine(dev);
  AddressMapping map(g, p.mapping);
  const auto result =
      engine.hammer_single_sided(map.encode({0, 0, 0, 3, 0}), 10);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(HammerEngine, DoubleSidedRefusesEdgeRows) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  const DeviceParams p = no_flip_params();
  DramDevice dev(g, p, 1);
  HammerEngine engine(dev);
  AddressMapping map(g, p.mapping);
  // An edge row has only one neighbour: the result must be flagged invalid,
  // not look like a successful hammer that found no flips.
  const PhysAddr top_row = map.encode({0, 0, 0, 0, 0});
  const HammerResult top = engine.hammer_double_sided(top_row, 10);
  EXPECT_FALSE(top.valid);
  EXPECT_EQ(top.iterations, 0u);
  const PhysAddr bottom_row =
      map.encode({0, 0, 0, g.rows_per_bank - 1, 0});
  EXPECT_FALSE(engine.hammer_double_sided(bottom_row, 10).valid);
  const PhysAddr mid_row = map.encode({0, 0, 0, 100, 0});
  const HammerResult mid = engine.hammer_double_sided(mid_row, 10);
  EXPECT_TRUE(mid.valid);
  EXPECT_EQ(mid.iterations, 10u);
}

TEST(HammerEngine, DoubleSidedFlipsFasterThanSingleSided) {
  // For a fixed hammer budget, double-sided hammering must flip at least as
  // many cells *in the targeted rows* as single-sided (both neighbours
  // contribute disturbance), and typically strictly more.
  const auto g = Geometry::with_capacity(64 * kMiB);
  DeviceParams p;
  p.weak_cells.cells_per_mib = 512.0;  // dense population for statistics
  p.weak_cells.threshold_log_mean = 10.3;  // weaker cells
  p.data_pattern_sensitivity = false;

  auto targeted_flips = [&](bool double_sided, std::uint64_t seed) {
    DramDevice dev(g, p, seed);
    dev.fill(0, 0xFF, g.total_bytes() / 8);  // charge true cells
    HammerEngine engine(dev);
    AddressMapping map(g, p.mapping);
    std::uint64_t count = 0;
    for (std::uint32_t row = 2; row < 60; row += 5) {
      const PhysAddr target = map.encode({0, 0, 0, row, 0});
      HammerResult result;
      if (double_sided) {
        result = engine.hammer_double_sided(target, 80'000);
      } else {
        PhysAddr agg = 0;
        if (!map.neighbor_row_addr(target, -1, 0, agg)) continue;
        result = engine.hammer_single_sided(agg, 80'000);
      }
      for (const auto& f : result.flips)
        if (f.coord.row == row && f.coord.bank == 0) ++count;
    }
    return count;
  };

  std::uint64_t double_flips = 0, single_flips = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    double_flips += targeted_flips(true, seed);
    single_flips += targeted_flips(false, seed);
  }
  EXPECT_GT(double_flips, 0u);
  EXPECT_GE(double_flips, single_flips);
}

}  // namespace
}  // namespace explframe::dram
