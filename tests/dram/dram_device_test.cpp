#include "dram/dram_device.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace explframe::dram {
namespace {

DeviceParams quiet_params() {
  DeviceParams p;
  p.weak_cells.cells_per_mib = 0.0;  // no flips unless a test plants them
  return p;
}

TEST(DramDeviceDeathTest, RejectsZeroRefreshWindow) {
  // A zero tREFW would make advance() loop forever on the first access.
  DeviceParams p = quiet_params();
  p.timings.refresh_window_ns = 0;
  EXPECT_DEATH(DramDevice(Geometry::with_capacity(64 * kMiB), p, 1),
               "refresh_window_ns");
}

TEST(DramDeviceDeathTest, RejectsRowlessGeometry) {
  Geometry g;
  g.rows_per_bank = 0;
  EXPECT_DEATH(DramDevice(g, quiet_params(), 1), "geometry");
  Geometry g2;
  g2.row_bytes = 0;
  EXPECT_DEATH(DramDevice(g2, quiet_params(), 1), "geometry");
}

TEST(DramDevice, ReadBackWrittenData) {
  DramDevice dev(Geometry::with_capacity(64 * kMiB), quiet_params(), 1);
  std::vector<std::uint8_t> data(100);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  dev.write(12345, data);
  std::vector<std::uint8_t> out(100);
  dev.read(12345, out);
  EXPECT_EQ(data, out);
}

TEST(DramDevice, UntouchedMemoryReadsZero) {
  DramDevice dev(Geometry::with_capacity(64 * kMiB), quiet_params(), 1);
  std::vector<std::uint8_t> out(64, 0xAA);
  dev.read(9999, out);
  for (const auto b : out) EXPECT_EQ(b, 0);
}

TEST(DramDevice, ReadWriteAcrossRowBoundary) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  DramDevice dev(g, quiet_params(), 1);
  const PhysAddr addr = g.row_bytes - 10;  // spans two rows
  std::vector<std::uint8_t> data(32, 0x5A);
  dev.write(addr, data);
  std::vector<std::uint8_t> out(32);
  dev.read(addr, out);
  EXPECT_EQ(data, out);
}

TEST(DramDevice, FillThenRead) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  DramDevice dev(g, quiet_params(), 1);
  dev.fill(4096, 0xEE, 8192);
  EXPECT_EQ(dev.read_byte(4096), 0xEE);
  EXPECT_EQ(dev.read_byte(4096 + 8191), 0xEE);
  EXPECT_EQ(dev.read_byte(4095), 0x00);
  EXPECT_EQ(dev.read_byte(4096 + 8192), 0x00);
}

TEST(DramDevice, RowBufferHitVsConflict) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  DeviceParams p = quiet_params();
  DramDevice dev(g, p, 1);
  AddressMapping map(g, p.mapping);
  DramAddress a{0, 0, 0, 100, 0};
  DramAddress b{0, 0, 0, 200, 0};

  EXPECT_EQ(dev.access(map.encode(a)), p.timings.row_conflict_ns);  // open
  EXPECT_EQ(dev.access(map.encode(a)), p.timings.row_hit_ns);       // hit
  EXPECT_EQ(dev.access(map.encode(b)), p.timings.row_conflict_ns);  // evict
  EXPECT_EQ(dev.access(map.encode(a)), p.timings.row_conflict_ns);
}

TEST(DramDevice, DifferentBanksDoNotConflict) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  DeviceParams p = quiet_params();
  DramDevice dev(g, p, 1);
  AddressMapping map(g, p.mapping);
  DramAddress a{0, 0, 0, 100, 0};
  DramAddress b{0, 0, 1, 200, 0};
  dev.access(map.encode(a));
  dev.access(map.encode(b));
  EXPECT_EQ(dev.access(map.encode(a)), p.timings.row_hit_ns);
  EXPECT_EQ(dev.access(map.encode(b)), p.timings.row_hit_ns);
}

TEST(DramDevice, ClockAdvancesWithAccesses) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  DeviceParams p = quiet_params();
  DramDevice dev(g, p, 1);
  const SimTime t0 = dev.now();
  dev.access(0);
  EXPECT_EQ(dev.now(), t0 + p.timings.row_conflict_ns);
  dev.idle(kMillisecond);
  EXPECT_EQ(dev.now(), t0 + p.timings.row_conflict_ns + kMillisecond);
}

TEST(DramDevice, RefreshHappensPeriodically) {
  const auto g = Geometry::with_capacity(64 * kMiB);
  DeviceParams p = quiet_params();
  DramDevice dev(g, p, 1);
  EXPECT_EQ(dev.refresh_count(), 0u);
  dev.idle(p.timings.refresh_window_ns * 3 + 10);
  EXPECT_EQ(dev.refresh_count(), 3u);
}

// Plant a deterministic weak cell by picking the device seed so that some
// cells exist, then find one and verify flip mechanics against it.
class DramDeviceHammerTest : public ::testing::Test {
 protected:
  DramDeviceHammerTest()
      : geometry_(Geometry::with_capacity(64 * kMiB)),
        params_(make_params()),
        dev_(geometry_, params_, 77),
        map_(geometry_, params_.mapping) {}

  static DeviceParams make_params() {
    DeviceParams p;
    p.weak_cells.cells_per_mib = 8.0;
    p.data_pattern_sensitivity = false;  // polarity-only for determinism
    return p;
  }

  /// Find a double-side-coupled, moderate-threshold weak cell whose row has
  /// both neighbours in range.
  bool find_cell(std::uint64_t& flat, WeakCell& cell) {
    for (const auto row : dev_.weak_cells().vulnerable_rows()) {
      const std::uint32_t in_bank =
          static_cast<std::uint32_t>(row % geometry_.rows_per_bank);
      if (in_bank == 0 || in_bank + 1 >= geometry_.rows_per_bank) continue;
      const auto& c = dev_.weak_cells().cells_in_row(row)[0];
      if (c.couple_above <= 0.0F || c.couple_below <= 0.0F) continue;
      if (c.threshold > 150'000) continue;
      flat = row;
      cell = c;
      return true;
    }
    return false;
  }

  DramAddress coord_of(std::uint64_t flat_row_index,
                       std::uint32_t col) const {
    DramAddress c;
    const auto rows = geometry_.rows_per_bank;
    const std::uint64_t bank_flat = flat_row_index / rows;
    c.row = static_cast<std::uint32_t>(flat_row_index % rows);
    c.bank = static_cast<std::uint32_t>(bank_flat % geometry_.banks);
    const std::uint64_t cr = bank_flat / geometry_.banks;
    c.rank = static_cast<std::uint32_t>(cr % geometry_.ranks);
    c.channel = static_cast<std::uint32_t>(cr / geometry_.ranks);
    c.col = col;
    return c;
  }

  Geometry geometry_;
  DeviceParams params_;
  DramDevice dev_;
  AddressMapping map_;
};

TEST_F(DramDeviceHammerTest, DoubleSidedHammerFlipsChargedCell) {
  std::uint64_t flat = 0;
  WeakCell cell;
  ASSERT_TRUE(find_cell(flat, cell));

  const DramAddress victim = coord_of(flat, cell.col);
  // Charge the cell: true cell stores 1, anti stores 0.
  dev_.write_byte(map_.encode(victim),
                  cell.true_cell ? static_cast<std::uint8_t>(1u << cell.bit)
                                 : 0);

  DramAddress above = victim;
  above.row -= 1;
  DramAddress below = victim;
  below.row += 1;
  const PhysAddr a = map_.encode(above);
  const PhysAddr b = map_.encode(below);

  // Hammer both sides well past the threshold; 2x budget guarantees a
  // contiguous over-threshold run inside one refresh window regardless of
  // where the window boundary falls.
  for (std::uint32_t i = 0; i < 2 * cell.threshold + 2000; ++i) {
    dev_.access(a);
    dev_.access(b);
  }
  const auto flips = dev_.drain_flips();
  ASSERT_GE(flips.size(), 1u);
  bool found = false;
  for (const auto& f : flips) {
    if (f.coord.row == victim.row && f.coord.col == cell.col &&
        f.bit == cell.bit) {
      found = true;
      EXPECT_EQ(f.to_one, !cell.true_cell);
    }
  }
  EXPECT_TRUE(found);
  // The stored bit actually changed.
  const std::uint8_t now = dev_.read_byte(map_.encode(victim));
  EXPECT_EQ(((now >> cell.bit) & 1u) != 0, !cell.true_cell);
}

TEST_F(DramDeviceHammerTest, DischargedCellDoesNotFlip) {
  std::uint64_t flat = 0;
  WeakCell cell;
  ASSERT_TRUE(find_cell(flat, cell));
  const DramAddress victim = coord_of(flat, cell.col);
  // Store the discharged value.
  dev_.write_byte(map_.encode(victim),
                  cell.true_cell ? 0
                                 : static_cast<std::uint8_t>(1u << cell.bit));
  DramAddress above = victim;
  above.row -= 1;
  DramAddress below = victim;
  below.row += 1;
  for (std::uint32_t i = 0; i < 2 * cell.threshold + 2000; ++i) {
    dev_.access(map_.encode(above));
    dev_.access(map_.encode(below));
  }
  for (const auto& f : dev_.drain_flips()) {
    EXPECT_FALSE(f.coord.row == victim.row && f.coord.col == cell.col &&
                 f.bit == cell.bit);
  }
}

TEST_F(DramDeviceHammerTest, InsufficientHammeringNoFlip) {
  std::uint64_t flat = 0;
  WeakCell cell;
  ASSERT_TRUE(find_cell(flat, cell));
  const DramAddress victim = coord_of(flat, cell.col);
  dev_.write_byte(map_.encode(victim),
                  cell.true_cell ? static_cast<std::uint8_t>(1u << cell.bit)
                                 : 0);
  DramAddress above = victim;
  above.row -= 1;
  DramAddress below = victim;
  below.row += 1;
  for (std::uint32_t i = 0; i < cell.threshold / 8; ++i) {
    dev_.access(map_.encode(above));
    dev_.access(map_.encode(below));
  }
  // Our cell must not have flipped (other cells near the aggressors may).
  for (const auto& f : dev_.drain_flips()) {
    EXPECT_FALSE(f.coord.row == victim.row && f.coord.col == cell.col &&
                 f.bit == cell.bit);
  }
}

TEST_F(DramDeviceHammerTest, FlipReproducesAfterRewrite) {
  std::uint64_t flat = 0;
  WeakCell cell;
  ASSERT_TRUE(find_cell(flat, cell));
  const DramAddress victim = coord_of(flat, cell.col);
  DramAddress above = victim;
  above.row -= 1;
  DramAddress below = victim;
  below.row += 1;

  int reproduced = 0;
  for (int round = 0; round < 3; ++round) {
    dev_.write_byte(map_.encode(victim),
                    cell.true_cell ? static_cast<std::uint8_t>(1u << cell.bit)
                                   : 0);
    // Align to a fresh refresh window so the budget is not split.
    dev_.refresh_now();
    for (std::uint32_t i = 0; i < 2 * cell.threshold + 2000; ++i) {
      dev_.access(map_.encode(above));
      dev_.access(map_.encode(below));
    }
    for (const auto& f : dev_.drain_flips())
      if (f.coord.row == victim.row && f.coord.col == cell.col &&
          f.bit == cell.bit)
        ++reproduced;
  }
  // The paper's key observation: flips recur at the same location.
  EXPECT_EQ(reproduced, 3);
}

TEST(DramDeviceStats, ActivationCounting) {
  DramDevice dev(Geometry::with_capacity(64 * kMiB), quiet_params(), 1);
  dev.access(0);          // activation
  dev.access(0);          // hit, no activation
  dev.access(1 << 20);    // different row: activation
  EXPECT_EQ(dev.total_activations(), 2u);
}

}  // namespace
}  // namespace explframe::dram
