// Regression: System::restore() must advance the memory epoch.
//
// VictimCipherService::encrypt_batch caches the decoded (table, round
// keys) keyed by kernel::System::memory_epoch(). A restore that rolled the
// epoch back to its captured value would make a cache entry built from
// PRE-restore memory look valid AFTER the rollback, and the victim would
// keep encrypting through state that no longer exists. The contract
// (snapshot/restorable.hpp): restore is exact for simulation state, except
// the epoch, which strictly advances.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "attack/victim.hpp"
#include "crypto/table_cipher.hpp"
#include "kernel/system.hpp"
#include "support/units.hpp"

namespace explframe::attack {
namespace {

kernel::SystemConfig small_config() {
  kernel::SystemConfig cfg;
  cfg.memory_bytes = 16 * kMiB;
  cfg.num_cpus = 1;
  cfg.seed = 5;
  return cfg;
}

/// Flip `flip_mask` in EVERY table byte through ordinary task memory
/// writes (models a fault; corrupting all entries guarantees the
/// encryption actually consults a corrupted byte for any plaintext).
void corrupt_table(kernel::System& sys, VictimCipherService& victim,
                   std::uint8_t flip_mask) {
  const vm::VirtAddr va =
      victim.table_page_va() + victim.config().sbox_offset;
  std::vector<std::uint8_t> table(victim.cipher().table_size());
  ASSERT_TRUE(sys.mem_read(victim.task(), va, table));
  for (std::uint8_t& byte : table) byte ^= flip_mask;
  ASSERT_TRUE(sys.mem_write(victim.task(), va, table));
}

TEST(EpochRegression, RestoreInvalidatesBatchedEncryptCache) {
  kernel::System sys(small_config());
  const crypto::TableCipher& cipher =
      crypto::cipher_for(crypto::CipherKind::kAes128);
  VictimConfig cfg;
  cfg.key = crypto::random_key(cipher, 99);
  VictimCipherService victim(sys, 0, cipher, cfg);
  victim.start();
  victim.install_tables();

  const std::size_t block = cipher.block_size();
  std::vector<std::uint8_t> pt(4 * block, 0xa5);
  std::vector<std::uint8_t> batch(4 * block);
  std::vector<std::uint8_t> per_call(4 * block);
  const auto harvest_both = [&] {
    victim.encrypt_batch(pt, batch);
    for (std::size_t i = 0; i < 4; ++i)
      victim.encrypt({pt.data() + i * block, block},
                     {per_call.data() + i * block, block});
  };

  const auto snap = sys.snapshot();
  const std::uint64_t epoch0 = sys.memory_epoch();

  // Corrupt, harvest: the batch cache now holds the corrupted table.
  corrupt_table(sys, victim, 0x02);
  harvest_both();
  EXPECT_EQ(batch, per_call);
  const std::vector<std::uint8_t> corrupted_cts = batch;

  // Roll back. The epoch must strictly advance — never revert — so the
  // cached corrupted-table context cannot satisfy the next batch.
  sys.restore(*snap);
  EXPECT_GT(sys.memory_epoch(), epoch0);
  ASSERT_FALSE(victim.table_corrupted());
  harvest_both();
  EXPECT_EQ(batch, per_call);
  EXPECT_NE(batch, corrupted_cts) << "stale cache survived the restore";

  // Corrupt DIFFERENTLY after the rollback and re-harvest: the batch path
  // must see the new fault, not any remembered one.
  corrupt_table(sys, victim, 0x08);
  harvest_both();
  EXPECT_EQ(batch, per_call);
  EXPECT_NE(batch, corrupted_cts);

  // Every further restore keeps advancing the epoch.
  const std::uint64_t before = sys.memory_epoch();
  sys.restore(*snap);
  EXPECT_GT(sys.memory_epoch(), before);
}

}  // namespace
}  // namespace explframe::attack
