// The snap::Restorable contract on the full machine (kernel::System):
// restore() must be EXACT — memory bytes, translations, allocator
// accounting, task table and the simulated clock all rewind to the
// captured instant — and cheap snapshots must stay valid across repeated
// restores (layered CoW, no deep copy invalidation). Timeline layers the
// same contract into a rewindable stack.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "kernel/system.hpp"
#include "snapshot/timeline.hpp"
#include "support/units.hpp"

namespace explframe {
namespace {

kernel::SystemConfig small_config(std::uint64_t seed) {
  kernel::SystemConfig cfg;
  cfg.memory_bytes = 16 * kMiB;
  cfg.num_cpus = 2;
  cfg.seed = seed;
  return cfg;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t salt) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::uint8_t>(salt + i * 13);
  return out;
}

TEST(Snapshot, RestoreRewindsMemoryClockAndAllocator) {
  kernel::System sys(small_config(11));
  kernel::Task& task = sys.spawn("worker", 0);
  const vm::VirtAddr va = sys.sys_mmap(task, 8 * kPageSize);
  const auto before = pattern(8 * kPageSize, 3);
  ASSERT_TRUE(sys.mem_write(task, va, before));

  const SimTime t0 = sys.now();
  const std::uint64_t free0 = sys.allocator().global_free_pages();
  const mm::Pfn pfn0 = sys.translate(task, va);
  const auto snap = sys.snapshot();

  // Mutate everything the snapshot covers: data, mappings, time.
  const auto other = pattern(8 * kPageSize, 200);
  ASSERT_TRUE(sys.mem_write(task, va, other));
  const vm::VirtAddr extra = sys.sys_mmap(task, 32 * kPageSize);
  ASSERT_TRUE(sys.mem_write(task, extra, pattern(32 * kPageSize, 9)));
  ASSERT_TRUE(sys.sys_munmap(task, va, 4 * kPageSize));
  // Advance the simulated clock (only DRAM accesses move it).
  for (int i = 0; i < 64; ++i) (void)sys.dram().access(i * 8192);
  EXPECT_GT(sys.now(), t0);

  sys.restore(*snap);

  EXPECT_EQ(sys.now(), t0);
  EXPECT_EQ(sys.allocator().global_free_pages(), free0);
  EXPECT_EQ(sys.translate(task, va), pfn0);
  std::vector<std::uint8_t> read_back(before.size());
  ASSERT_TRUE(sys.mem_read(task, va, read_back));
  EXPECT_EQ(read_back, before);
  // The extra mapping never happened.
  EXPECT_EQ(sys.translate(task, extra), mm::kInvalidPfn);
}

TEST(Snapshot, SnapshotSurvivesRepeatedRestoresAndReplaysIdentically) {
  kernel::System sys(small_config(23));
  kernel::Task& task = sys.spawn("worker", 0);
  const vm::VirtAddr va = sys.sys_mmap(task, 4 * kPageSize);
  ASSERT_TRUE(sys.mem_write(task, va, pattern(4 * kPageSize, 77)));
  const auto snap = sys.snapshot();

  // One deterministic op sequence, observed twice from the same snapshot.
  const auto run_ops = [&] {
    const vm::VirtAddr grown = sys.sys_mmap(task, 16 * kPageSize);
    EXPECT_TRUE(sys.mem_write(task, grown, pattern(16 * kPageSize, 5)));
    std::vector<std::uint8_t> data(4 * kPageSize);
    EXPECT_TRUE(sys.mem_read(task, va, data));
    return std::make_tuple(grown, sys.translate(task, grown), sys.now(),
                           data);
  };
  const auto first = run_ops();
  sys.restore(*snap);
  const auto second = run_ops();
  EXPECT_EQ(first, second);
  // And the snapshot is still restorable after both replays.
  sys.restore(*snap);
  std::vector<std::uint8_t> data(4 * kPageSize);
  ASSERT_TRUE(sys.mem_read(task, va, data));
  EXPECT_EQ(data, pattern(4 * kPageSize, 77));
}

TEST(Snapshot, RestoreDestroysTasksSpawnedAfterTheSnapshot) {
  kernel::System sys(small_config(31));
  (void)sys.spawn("base", 0);
  const auto snap = sys.snapshot();

  kernel::Task& late = sys.spawn("late", 1);
  const vm::VirtAddr late_va = sys.sys_mmap(late, 8 * kPageSize);
  ASSERT_TRUE(sys.mem_write(late, late_va, pattern(8 * kPageSize, 1)));
  const std::int32_t late_id = late.id();

  sys.restore(*snap);
  // The task table rewound: the next spawn reuses the destroyed task's id
  // (next_task_id was restored) and its frames were returned.
  kernel::Task& again = sys.spawn("again", 1);
  EXPECT_EQ(again.id(), late_id);
}

TEST(Snapshot, PageTableRebuildSupportsFurtherMapAndUnmap) {
  kernel::System sys(small_config(47));
  kernel::Task& task = sys.spawn("worker", 0);
  // Enough pages to span several leaf tables.
  const vm::VirtAddr va = sys.sys_mmap(task, 1200 * kPageSize);
  ASSERT_TRUE(sys.mem_write(task, va, pattern(1200 * kPageSize, 99)));
  const std::uint64_t free0 = sys.allocator().global_free_pages();
  const auto snap = sys.snapshot();

  ASSERT_TRUE(sys.sys_munmap(task, va, 1200 * kPageSize));
  EXPECT_GT(sys.allocator().global_free_pages(), free0);

  sys.restore(*snap);
  EXPECT_EQ(sys.allocator().global_free_pages(), free0);
  std::vector<std::uint8_t> data(1200 * kPageSize);
  ASSERT_TRUE(sys.mem_read(task, va, data));
  EXPECT_EQ(data, pattern(1200 * kPageSize, 99));
  // The rebuilt table must keep working: unmap everything again (releases
  // table nodes + frames through the normal path) and remap.
  ASSERT_TRUE(sys.sys_munmap(task, va, 1200 * kPageSize));
  const vm::VirtAddr fresh = sys.sys_mmap(task, 4 * kPageSize);
  ASSERT_TRUE(sys.mem_write(task, fresh, pattern(4 * kPageSize, 8)));
}

TEST(Timeline, RewindTruncatesAndRestoreOnlyPeeks) {
  kernel::System sys(small_config(59));
  kernel::Task& task = sys.spawn("worker", 0);
  snap::Timeline timeline(sys);

  const vm::VirtAddr va = sys.sys_mmap(task, 2 * kPageSize);
  ASSERT_TRUE(sys.mem_write(task, va, pattern(2 * kPageSize, 1)));
  EXPECT_EQ(timeline.push("one"), 0u);

  ASSERT_TRUE(sys.mem_write(task, va, pattern(2 * kPageSize, 2)));
  EXPECT_EQ(timeline.push("two"), 1u);
  EXPECT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline.label(0), "one");

  // restore_only peeks at a layer without dropping the ones above it.
  timeline.restore_only(0);
  std::vector<std::uint8_t> data(2 * kPageSize);
  ASSERT_TRUE(sys.mem_read(task, va, data));
  EXPECT_EQ(data, pattern(2 * kPageSize, 1));
  EXPECT_EQ(timeline.size(), 2u);
  timeline.restore_only(1);
  ASSERT_TRUE(sys.mem_read(task, va, data));
  EXPECT_EQ(data, pattern(2 * kPageSize, 2));

  // rewind_to restores AND truncates the layers above the target.
  timeline.rewind_to(0);
  EXPECT_EQ(timeline.size(), 1u);
  ASSERT_TRUE(sys.mem_read(task, va, data));
  EXPECT_EQ(data, pattern(2 * kPageSize, 1));
}

}  // namespace
}  // namespace explframe
