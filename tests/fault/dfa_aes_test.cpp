#include "fault/dfa_aes.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/rng.hpp"

namespace explframe::fault {
namespace {

using crypto::Aes128;

TEST(AesDfa, PositionsForColumnsPartitionTheState) {
  std::set<std::size_t> all;
  for (std::size_t c = 0; c < 4; ++c) {
    for (const auto p : AesDfa::positions_for_column(c)) {
      EXPECT_LT(p, 16u);
      EXPECT_TRUE(all.insert(p).second) << "position reused";
    }
  }
  EXPECT_EQ(all.size(), 16u);
}

TEST(AesDfa, PairWithWrongShapeRejected) {
  AesDfa dfa;
  Aes128::Block a{}, b{};
  EXPECT_FALSE(dfa.add_pair(a, b));  // identical: 0 diffs
  b[0] ^= 1;
  EXPECT_FALSE(dfa.add_pair(a, b));  // single byte diff
}

class DfaRecovery : public ::testing::Test {
 protected:
  DfaRecovery() : rng_(303) {
    rng_.fill_bytes(key_);
    rk_ = Aes128::expand_key(key_);
  }

  /// Generate one (correct, faulty) pair with a random fault in the given
  /// state byte at entry of round 9.
  std::pair<Aes128::Block, Aes128::Block> make_pair(std::size_t byte_index) {
    Aes128::Block pt;
    rng_.fill_bytes(pt);
    const auto mask =
        static_cast<std::uint8_t>(1 + rng_.uniform(255));
    return {Aes128::encrypt(pt, rk_),
            Aes128::encrypt_with_transient_fault(pt, rk_, 9, byte_index, mask)};
  }

  Rng rng_;
  Aes128::Key key_;
  Aes128::RoundKeys rk_;
};

TEST_F(DfaRecovery, SinglePairNarrowsColumn) {
  AesDfa dfa;
  const auto [good, bad] = make_pair(0);
  ASSERT_TRUE(dfa.add_pair(good, bad));
  // One pair cannot pin the column uniquely but must narrow it hugely.
  double bits = dfa.remaining_keyspace_log2();
  EXPECT_LT(bits, 3 * 32 + 16);  // far below 2^128
  EXPECT_GT(bits, 3 * 32 - 1e-9);  // other columns untouched
}

TEST_F(DfaRecovery, FullKeyFromTwoPairsPerColumn) {
  AesDfa dfa;
  // Faults in bytes 0..3 of the round-9 state input cover, after ShiftRows,
  // all four MixColumns columns.
  for (int round = 0; round < 4; ++round) {
    for (std::size_t byte = 0; byte < 16; byte += 4) {
      // byte 0,4,8,12 are row 0 of each column; vary rows too.
      const auto [good, bad] = make_pair(byte + (round % 4));
      dfa.add_pair(good, bad);
    }
    if (dfa.recover_round10().has_value()) break;
  }
  const auto k10 = dfa.recover_round10();
  ASSERT_TRUE(k10.has_value());
  EXPECT_EQ(*k10, rk_[10]);
  const auto master = dfa.recover_master_key();
  ASSERT_TRUE(master.has_value());
  EXPECT_EQ(*master, key_);
}

TEST_F(DfaRecovery, KeyspaceDecreasesWithPairs) {
  AesDfa dfa;
  double last = 128.0;
  for (int i = 0; i < 6; ++i) {
    const auto [good, bad] = make_pair(0);
    ASSERT_TRUE(dfa.add_pair(good, bad));
    const double now = dfa.remaining_keyspace_log2();
    EXPECT_LE(now, last + 1e-9);
    last = now;
  }
}

TEST_F(DfaRecovery, PairsCountedPerColumn) {
  AesDfa dfa;
  const auto [g0, b0] = make_pair(0);  // lands in some column c0
  ASSERT_TRUE(dfa.add_pair(g0, b0));
  std::size_t total = 0;
  for (std::size_t c = 0; c < 4; ++c) total += dfa.pairs_for_column(c);
  EXPECT_EQ(total, 1u);
}

}  // namespace
}  // namespace explframe::fault
