#include "fault/pfa_aes.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fault/injection.hpp"
#include "support/rng.hpp"

namespace explframe::fault {
namespace {

using crypto::Aes128;

struct PfaFixtureResult {
  Aes128::Key key;
  std::uint8_t v;
  std::uint8_t v_new;
  AesPfa pfa;
};

/// Encrypt `n` random plaintexts under a persistently faulted S-box.
PfaFixtureResult collect(std::size_t n, SboxByteFault fault,
                         std::uint64_t seed) {
  PfaFixtureResult r;
  Rng rng(seed);
  rng.fill_bytes(r.key);
  auto table = Aes128::sbox();
  const auto [before, after] = apply_fault(table, fault);
  r.v = before;
  r.v_new = after;
  const auto rk = Aes128::expand_key(r.key);
  for (std::size_t i = 0; i < n; ++i) {
    Aes128::Block pt;
    rng.fill_bytes(pt);
    r.pfa.add_ciphertext(Aes128::encrypt_with_sbox(pt, rk, table));
  }
  return r;
}

TEST(AesPfa, MissingValueRecoversKey) {
  auto r = collect(6000, {0x42, 0x08}, 101);
  const auto key =
      r.pfa.recover_master_key(PfaStrategy::kMissingValue, r.v, r.v_new);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, r.key);
}

TEST(AesPfa, MaxLikelihoodRecoversKey) {
  // The frequency peak needs more data than the missing value to become
  // unambiguous at every byte simultaneously (peak 2x vs max of 254 cells).
  auto r = collect(20000, {0x42, 0x08}, 102);
  const auto key =
      r.pfa.recover_master_key(PfaStrategy::kMaxLikelihood, r.v, r.v_new);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, r.key);
}

class PfaFaultSweep
    : public ::testing::TestWithParam<std::pair<std::uint16_t, std::uint8_t>> {
};

TEST_P(PfaFaultSweep, RecoversForVariousFaults) {
  const auto [index, mask] = GetParam();
  auto r = collect(8000, {index, mask}, 500 + index);
  const auto key =
      r.pfa.recover_master_key(PfaStrategy::kMissingValue, r.v, r.v_new);
  ASSERT_TRUE(key.has_value()) << "index=" << index;
  EXPECT_EQ(*key, r.key);
}

INSTANTIATE_TEST_SUITE_P(
    Faults, PfaFaultSweep,
    ::testing::Values(std::pair<std::uint16_t, std::uint8_t>{0x00, 0x01},
                      std::pair<std::uint16_t, std::uint8_t>{0xFF, 0x80},
                      std::pair<std::uint16_t, std::uint8_t>{0x3A, 0x10},
                      std::pair<std::uint16_t, std::uint8_t>{0x7C, 0x04},
                      std::pair<std::uint16_t, std::uint8_t>{0xB1, 0x40}));

TEST(AesPfa, KeyspaceShrinksWithCiphertexts) {
  Rng rng(103);
  Aes128::Key key;
  rng.fill_bytes(key);
  auto table = Aes128::sbox();
  apply_fault(table, {0x20, 0x02});
  const std::uint8_t v = Aes128::sbox()[0x20];
  const std::uint8_t v_new = table[0x20];
  const auto rk = Aes128::expand_key(key);

  AesPfa pfa;
  double last = 128.0;
  for (int chunk = 0; chunk < 8; ++chunk) {
    for (int i = 0; i < 500; ++i) {
      Aes128::Block pt;
      rng.fill_bytes(pt);
      pfa.add_ciphertext(Aes128::encrypt_with_sbox(pt, rk, table));
    }
    const double now =
        pfa.remaining_keyspace_log2(PfaStrategy::kMissingValue, v, v_new);
    EXPECT_LE(now, last + 1e-9);
    last = now;
  }
  EXPECT_DOUBLE_EQ(last, 0.0);  // unique key after 4000 ciphertexts
}

TEST(AesPfa, TooFewCiphertextsGivesNoUniqueKey) {
  auto r = collect(100, {0x42, 0x08}, 104);
  EXPECT_FALSE(r.pfa.recover_round10(PfaStrategy::kMissingValue, r.v, r.v_new)
                   .has_value());
  EXPECT_GT(r.pfa.remaining_keyspace_log2(PfaStrategy::kMissingValue, r.v,
                                          r.v_new),
            0.0);
}

TEST(AesPfa, NoFaultMeansNoMissingValue) {
  // Without a fault every value eventually appears: candidates go empty and
  // the keyspace estimate stays saturated.
  Rng rng(105);
  Aes128::Key key;
  rng.fill_bytes(key);
  const auto rk = Aes128::expand_key(key);
  AesPfa pfa;
  for (int i = 0; i < 8000; ++i) {
    Aes128::Block pt;
    rng.fill_bytes(pt);
    pfa.add_ciphertext(Aes128::encrypt(pt, rk));
  }
  const auto cand = pfa.candidates(PfaStrategy::kMissingValue, 0x63, 0x62);
  for (const auto& c : cand) EXPECT_TRUE(c.empty());
  EXPECT_DOUBLE_EQ(
      pfa.remaining_keyspace_log2(PfaStrategy::kMissingValue, 0x63, 0x62),
      128.0);
}

TEST(AesPfa, FrequencyPeakIsDoubled) {
  auto r = collect(8000, {0x10, 0x20}, 106);
  // The replacement value v' appears ~2x as often as average at each byte.
  const auto rk = Aes128::expand_key(r.key);
  (void)rk;
  for (std::size_t j = 0; j < 16; ++j) {
    const auto& f = r.pfa.frequencies(j);
    std::uint32_t best = 0;
    std::size_t best_t = 0;
    for (std::size_t t = 0; t < 256; ++t)
      if (f[t] > best) {
        best = f[t];
        best_t = t;
      }
    const double avg = 8000.0 / 256.0;
    EXPECT_GT(best, 1.4 * avg) << j;
    // And the peak decodes to the same key byte the missing value gives.
    const auto missing =
        r.pfa.candidates(PfaStrategy::kMissingValue, r.v, r.v_new);
    ASSERT_EQ(missing[j].size(), 1u);
    EXPECT_EQ(static_cast<std::uint8_t>(best_t ^ r.v_new), missing[j][0]);
  }
}

TEST(AesPfa, ResetClearsState) {
  auto r = collect(1000, {0x11, 0x01}, 107);
  EXPECT_EQ(r.pfa.ciphertext_count(), 1000u);
  r.pfa.reset();
  EXPECT_EQ(r.pfa.ciphertext_count(), 0u);
  for (std::size_t j = 0; j < 16; ++j)
    for (std::size_t t = 0; t < 256; ++t)
      EXPECT_EQ(r.pfa.frequencies(j)[t], 0u);
}

TEST(FaultFromFlip, MapsPageOffsetsIntoTable) {
  // Table at page offset 0x400, 256 bytes.
  const auto inside = fault_from_flip(0x410, 3, 0x400, 256);
  ASSERT_TRUE(inside.has_value());
  EXPECT_EQ(inside->index, 0x10);
  EXPECT_EQ(inside->mask, 0x08);
  EXPECT_FALSE(fault_from_flip(0x3FF, 0, 0x400, 256).has_value());
  EXPECT_FALSE(fault_from_flip(0x500, 0, 0x400, 256).has_value());
  EXPECT_TRUE(fault_from_flip(0x4FF, 7, 0x400, 256).has_value());
}

TEST(FaultDescribe, MentionsIndexAndMask) {
  const auto text = describe({0x42, 0x08});
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("8"), std::string::npos);
}

TEST(AesPfa, IncrementalTalliesMatchCandidateRescan) {
  // recover_round10/remaining_keyspace_log2 read incremental zero/max
  // tallies; candidates() rescans the frequency table. At every prefix of
  // the stream — including before and at the recovery point — the two
  // views must agree for both strategies.
  auto r = collect(0, {0x42, 0x08}, 105);
  Rng rng(106);
  Aes128::Key key;
  rng.fill_bytes(key);
  auto table = Aes128::sbox();
  table[0x42] ^= 0x08;
  const auto rk = Aes128::expand_key(key);
  for (int step = 0; step < 40; ++step) {
    for (int i = 0; i < 100; ++i) {
      Aes128::Block pt;
      rng.fill_bytes(pt);
      r.pfa.add_ciphertext(Aes128::encrypt_with_sbox(
          pt, rk, std::span<const std::uint8_t, 256>(table)));
    }
    for (const auto strategy :
         {PfaStrategy::kMissingValue, PfaStrategy::kMaxLikelihood}) {
      const auto cand = r.pfa.candidates(strategy, r.v, r.v_new);
      double bits = 0.0;
      bool empty = false;
      for (const auto& c : cand) {
        if (c.empty()) empty = true;
        bits += c.empty() ? 0.0 : std::log2(static_cast<double>(c.size()));
      }
      const double expect_bits = empty ? 128.0 : bits;
      EXPECT_DOUBLE_EQ(r.pfa.remaining_keyspace_log2(strategy, r.v, r.v_new),
                       expect_bits);
      const auto k10 = r.pfa.recover_round10(strategy, r.v, r.v_new);
      bool unique = true;
      AesPfa::RoundKey expect_key{};
      for (std::size_t j = 0; j < 16; ++j) {
        if (cand[j].size() != 1) {
          unique = false;
        } else {
          expect_key[j] = cand[j][0];
        }
      }
      EXPECT_EQ(k10.has_value(), unique);
      if (k10 && unique) {
        EXPECT_EQ(*k10, expect_key);
      }
    }
  }
}

TEST(AesPfa, BatchAddEqualsPerCiphertextAdd) {
  auto per = collect(512, {0x10, 0x20}, 107);
  // Rebuild the same stream and feed it flattened through the batch entry.
  Rng rng(107);
  Aes128::Key key;
  rng.fill_bytes(key);
  auto table = Aes128::sbox();
  table[0x10] ^= 0x20;
  const auto rk = Aes128::expand_key(key);
  std::vector<std::uint8_t> flat;
  for (int i = 0; i < 512; ++i) {
    Aes128::Block pt;
    rng.fill_bytes(pt);
    const auto ct = Aes128::encrypt_with_sbox(
        pt, rk, std::span<const std::uint8_t, 256>(table));
    flat.insert(flat.end(), ct.begin(), ct.end());
  }
  AesPfa batch;
  batch.add_ciphertext_batch(flat);
  EXPECT_EQ(batch.ciphertext_count(), per.pfa.ciphertext_count());
  for (std::size_t j = 0; j < 16; ++j)
    EXPECT_EQ(batch.frequencies(j), per.pfa.frequencies(j)) << "byte " << j;
  EXPECT_EQ(batch.recover_round10(PfaStrategy::kMissingValue, per.v,
                                  per.v_new),
            per.pfa.recover_round10(PfaStrategy::kMissingValue, per.v,
                                    per.v_new));
}

}  // namespace
}  // namespace explframe::fault
