// fault::Analysis — the engine adapters behind the unified interface: key
// recovery through the interface for all three engines, capability flags,
// and factory guard rails.
#include "fault/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/aes128.hpp"
#include "crypto/present80.hpp"
#include "fault/injection.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace explframe::fault {
namespace {

using crypto::Aes128;
using crypto::CipherKind;
using crypto::Present80;
using crypto::cipher_for;

TEST(FaultModelFor, DerivesValuesFromTemplate) {
  const auto& aes = cipher_for(CipherKind::kAes128);
  const FaultModel f = fault_model_for(aes, 0x42, 3);
  EXPECT_EQ(f.table_index, 0x42);
  EXPECT_EQ(f.mask, 0x08);
  EXPECT_EQ(f.v, Aes128::sbox()[0x42]);
  EXPECT_EQ(f.v_new, Aes128::sbox()[0x42] ^ 0x08);

  // Dead bits produce an empty mask (the flip cannot fault the cipher).
  const auto& present = cipher_for(CipherKind::kPresent80);
  EXPECT_EQ(fault_model_for(present, 5, 6).mask, 0);
  EXPECT_EQ(fault_model_for(present, 5, 1).mask, 0x02);
}

TEST(Analysis, AesPfaRecoversKeyThroughInterface) {
  Rng rng(101);
  Aes128::Key key;
  rng.fill_bytes(key);
  const auto rk = Aes128::expand_key(key);
  auto table = Aes128::sbox();
  const SboxByteFault fault{0x17, 0x20};
  const auto [v, v_new] = apply_fault(table, fault);

  const auto analysis =
      make_analysis(AnalysisKind::kPfaMissingValue,
                    cipher_for(CipherKind::kAes128),
                    FaultModel{fault.index, fault.mask, v, v_new});
  EXPECT_FALSE(analysis->wants_pairs());
  EXPECT_FALSE(analysis->wants_known_pair());
  EXPECT_EQ(analysis->residual_search(), 0u);

  std::optional<std::vector<std::uint8_t>> recovered;
  while (analysis->ciphertext_count() < 20'000) {
    for (int i = 0; i < 256; ++i) {
      Aes128::Block pt;
      rng.fill_bytes(pt);
      analysis->add_ciphertext(Aes128::encrypt_with_sbox(pt, rk, table));
    }
    if ((recovered = analysis->recover_key())) break;
  }
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(std::equal(recovered->begin(), recovered->end(), key.begin(),
                         key.end()));
  EXPECT_EQ(analysis->remaining_keyspace_log2(), 0.0);

  analysis->reset();
  EXPECT_EQ(analysis->ciphertext_count(), 0u);
  EXPECT_FALSE(analysis->recover_key().has_value());
}

TEST(Analysis, PresentPfaRecoversKeyThroughInterface) {
  Rng rng(102);
  Present80::Key key;
  rng.fill_bytes(key);
  const auto rk = Present80::expand_key(key);
  auto table = Present80::sbox();
  const SboxByteFault fault{0x9, 0x4};
  const auto [v, v_new] = apply_fault(table, fault);

  const auto analysis =
      make_analysis(AnalysisKind::kPfaMissingValue,
                    cipher_for(CipherKind::kPresent80),
                    FaultModel{fault.index, fault.mask, v, v_new});
  EXPECT_TRUE(analysis->wants_known_pair());

  const auto encrypt_bytes = [&](std::uint64_t pt) {
    return u64_to_le_bytes(Present80::encrypt_with_sbox(pt, rk, table));
  };

  // Without the known pair the residual search cannot run.
  for (int i = 0; i < 500; ++i) analysis->add_ciphertext(encrypt_bytes(rng.next()));
  EXPECT_FALSE(analysis->recover_key().has_value());

  const std::uint64_t known_pt = rng.next();
  analysis->set_known_pair(u64_to_le_bytes(known_pt),
                           encrypt_bytes(known_pt));

  std::optional<std::vector<std::uint8_t>> recovered;
  while (analysis->ciphertext_count() < 5'000) {
    if ((recovered = analysis->recover_key())) break;
    for (int i = 0; i < 25; ++i)
      analysis->add_ciphertext(encrypt_bytes(rng.next()));
  }
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(std::equal(recovered->begin(), recovered->end(), key.begin(),
                         key.end()));
  EXPECT_GT(analysis->residual_search(), 0u);
  EXPECT_LE(analysis->residual_search(), 1u << 16);
}

TEST(Analysis, DfaConsumesPairsThroughInterface) {
  Rng rng(103);
  Aes128::Key key;
  rng.fill_bytes(key);
  const auto rk = Aes128::expand_key(key);

  const auto analysis = make_analysis(AnalysisKind::kDfa,
                                      cipher_for(CipherKind::kAes128), {});
  EXPECT_TRUE(analysis->wants_pairs());

  std::optional<std::vector<std::uint8_t>> recovered;
  for (int i = 0; i < 64 && !recovered; ++i) {
    // Random round-9 fault in a random state byte: covers all 4 columns.
    Aes128::Block pt;
    rng.fill_bytes(pt);
    const auto byte_index = static_cast<std::size_t>(rng.uniform(16));
    const auto mask = static_cast<std::uint8_t>(1 + rng.uniform(255));
    analysis->add_pair(
        Aes128::encrypt(pt, rk),
        Aes128::encrypt_with_transient_fault(pt, rk, 9, byte_index, mask));
    recovered = analysis->recover_key();
  }
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(std::equal(recovered->begin(), recovered->end(), key.begin(),
                         key.end()));
}

TEST(Analysis, FactoryRejectsUnsupportedCombinations) {
  EXPECT_DEATH(make_analysis(AnalysisKind::kDfa,
                             cipher_for(CipherKind::kPresent80), {}),
               "AES-only");
  EXPECT_DEATH(make_analysis(AnalysisKind::kPfaMaxLikelihood,
                             cipher_for(CipherKind::kPresent80), {}),
               "AES-only");
}

TEST(Analysis, Names) {
  EXPECT_STREQ(to_string(AnalysisKind::kPfaMissingValue), "pfa-missing-value");
  EXPECT_STREQ(to_string(AnalysisKind::kPfaMaxLikelihood),
               "pfa-max-likelihood");
  EXPECT_STREQ(to_string(AnalysisKind::kDfa), "dfa");
}

}  // namespace
}  // namespace explframe::fault
