#include "fault/pfa_present.hpp"

#include <gtest/gtest.h>

#include "fault/injection.hpp"
#include "support/rng.hpp"

namespace explframe::fault {
namespace {

using crypto::Present80;

TEST(PresentPfa, RecoversLastRoundKey) {
  Rng rng(201);
  Present80::Key key;
  rng.fill_bytes(key);
  auto table = Present80::sbox();
  const auto [v, v_new] = apply_fault(table, {0x5, 0x2});
  const auto rk = Present80::expand_key(key);

  PresentPfa pfa;
  for (int i = 0; i < 600; ++i)
    pfa.add_ciphertext(Present80::encrypt_with_sbox(rng.next(), rk, table));

  const auto k32 = pfa.recover_k32(v);
  ASSERT_TRUE(k32.has_value());
  EXPECT_EQ(*k32, rk[31]);
  (void)v_new;
}

TEST(PresentPfa, RecoversMasterKeyWithResidualSearch) {
  Rng rng(202);
  Present80::Key key;
  rng.fill_bytes(key);
  auto table = Present80::sbox();
  const auto [v, v_new] = apply_fault(table, {0xB, 0x8});
  (void)v_new;
  const auto rk = Present80::expand_key(key);

  PresentPfa pfa;
  const std::uint64_t known_pt = rng.next();
  const std::uint64_t known_ct =
      Present80::encrypt_with_sbox(known_pt, rk, table);
  for (int i = 0; i < 800; ++i)
    pfa.add_ciphertext(Present80::encrypt_with_sbox(rng.next(), rk, table));

  const auto result = pfa.recover_master_key(v, known_pt, known_ct, table);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->key, key);
  EXPECT_GE(result->search_tried, 1u);
  EXPECT_LE(result->search_tried, 1u << 16);
}

TEST(PresentPfa, NeedsFarFewerCiphertextsThanAes) {
  // 16-value nibbles saturate after ~O(16 ln 16) ~ 45 samples; 200 is
  // plenty. This is the data-complexity contrast shown in EXP-T6.
  Rng rng(203);
  Present80::Key key;
  rng.fill_bytes(key);
  auto table = Present80::sbox();
  const auto [v, v_new] = apply_fault(table, {0x3, 0x1});
  (void)v_new;
  const auto rk = Present80::expand_key(key);
  PresentPfa pfa;
  for (int i = 0; i < 200; ++i)
    pfa.add_ciphertext(Present80::encrypt_with_sbox(rng.next(), rk, table));
  EXPECT_TRUE(pfa.recover_k32(v).has_value());
}

TEST(PresentPfa, KeyspaceShrinksMonotonically) {
  Rng rng(204);
  Present80::Key key;
  rng.fill_bytes(key);
  auto table = Present80::sbox();
  const auto [v, v_new] = apply_fault(table, {0x9, 0x4});
  (void)v_new;
  const auto rk = Present80::expand_key(key);
  PresentPfa pfa;
  double last = 64.0;
  for (int chunk = 0; chunk < 6; ++chunk) {
    for (int i = 0; i < 30; ++i)
      pfa.add_ciphertext(Present80::encrypt_with_sbox(rng.next(), rk, table));
    const double now = pfa.remaining_keyspace_log2(v);
    EXPECT_LE(now, last + 1e-9);
    last = now;
  }
  EXPECT_DOUBLE_EQ(last, 0.0);
}

TEST(PresentPfa, TooFewCiphertextsAmbiguous) {
  Rng rng(205);
  Present80::Key key;
  rng.fill_bytes(key);
  auto table = Present80::sbox();
  const auto [v, v_new] = apply_fault(table, {0x1, 0x2});
  (void)v_new;
  const auto rk = Present80::expand_key(key);
  PresentPfa pfa;
  for (int i = 0; i < 5; ++i)
    pfa.add_ciphertext(Present80::encrypt_with_sbox(rng.next(), rk, table));
  EXPECT_FALSE(pfa.recover_k32(v).has_value());
  EXPECT_GT(pfa.remaining_keyspace_log2(v), 0.0);
}

TEST(PresentPfa, ResetClears) {
  PresentPfa pfa;
  pfa.add_ciphertext(0x123456789abcdef0ULL);
  EXPECT_EQ(pfa.ciphertext_count(), 1u);
  pfa.reset();
  EXPECT_EQ(pfa.ciphertext_count(), 0u);
}

}  // namespace
}  // namespace explframe::fault
