#include "fault/pfa_present.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fault/injection.hpp"
#include "support/rng.hpp"

namespace explframe::fault {
namespace {

using crypto::Present80;

TEST(PresentPfa, RecoversLastRoundKey) {
  Rng rng(201);
  Present80::Key key;
  rng.fill_bytes(key);
  auto table = Present80::sbox();
  const auto [v, v_new] = apply_fault(table, {0x5, 0x2});
  const auto rk = Present80::expand_key(key);

  PresentPfa pfa;
  for (int i = 0; i < 600; ++i)
    pfa.add_ciphertext(Present80::encrypt_with_sbox(rng.next(), rk, table));

  const auto k32 = pfa.recover_k32(v);
  ASSERT_TRUE(k32.has_value());
  EXPECT_EQ(*k32, rk[31]);
  (void)v_new;
}

TEST(PresentPfa, RecoversMasterKeyWithResidualSearch) {
  Rng rng(202);
  Present80::Key key;
  rng.fill_bytes(key);
  auto table = Present80::sbox();
  const auto [v, v_new] = apply_fault(table, {0xB, 0x8});
  (void)v_new;
  const auto rk = Present80::expand_key(key);

  PresentPfa pfa;
  const std::uint64_t known_pt = rng.next();
  const std::uint64_t known_ct =
      Present80::encrypt_with_sbox(known_pt, rk, table);
  for (int i = 0; i < 800; ++i)
    pfa.add_ciphertext(Present80::encrypt_with_sbox(rng.next(), rk, table));

  const auto result = pfa.recover_master_key(v, known_pt, known_ct, table);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->key, key);
  EXPECT_GE(result->search_tried, 1u);
  EXPECT_LE(result->search_tried, 1u << 16);
}

TEST(PresentPfa, NeedsFarFewerCiphertextsThanAes) {
  // 16-value nibbles saturate after ~O(16 ln 16) ~ 45 samples; 200 is
  // plenty. This is the data-complexity contrast shown in EXP-T6.
  Rng rng(203);
  Present80::Key key;
  rng.fill_bytes(key);
  auto table = Present80::sbox();
  const auto [v, v_new] = apply_fault(table, {0x3, 0x1});
  (void)v_new;
  const auto rk = Present80::expand_key(key);
  PresentPfa pfa;
  for (int i = 0; i < 200; ++i)
    pfa.add_ciphertext(Present80::encrypt_with_sbox(rng.next(), rk, table));
  EXPECT_TRUE(pfa.recover_k32(v).has_value());
}

TEST(PresentPfa, KeyspaceShrinksMonotonically) {
  Rng rng(204);
  Present80::Key key;
  rng.fill_bytes(key);
  auto table = Present80::sbox();
  const auto [v, v_new] = apply_fault(table, {0x9, 0x4});
  (void)v_new;
  const auto rk = Present80::expand_key(key);
  PresentPfa pfa;
  double last = 64.0;
  for (int chunk = 0; chunk < 6; ++chunk) {
    for (int i = 0; i < 30; ++i)
      pfa.add_ciphertext(Present80::encrypt_with_sbox(rng.next(), rk, table));
    const double now = pfa.remaining_keyspace_log2(v);
    EXPECT_LE(now, last + 1e-9);
    last = now;
  }
  EXPECT_DOUBLE_EQ(last, 0.0);
}

TEST(PresentPfa, TooFewCiphertextsAmbiguous) {
  Rng rng(205);
  Present80::Key key;
  rng.fill_bytes(key);
  auto table = Present80::sbox();
  const auto [v, v_new] = apply_fault(table, {0x1, 0x2});
  (void)v_new;
  const auto rk = Present80::expand_key(key);
  PresentPfa pfa;
  for (int i = 0; i < 5; ++i)
    pfa.add_ciphertext(Present80::encrypt_with_sbox(rng.next(), rk, table));
  EXPECT_FALSE(pfa.recover_k32(v).has_value());
  EXPECT_GT(pfa.remaining_keyspace_log2(v), 0.0);
}

TEST(PresentPfa, ResetClears) {
  PresentPfa pfa;
  pfa.add_ciphertext(0x123456789abcdef0ULL);
  EXPECT_EQ(pfa.ciphertext_count(), 1u);
  pfa.reset();
  EXPECT_EQ(pfa.ciphertext_count(), 0u);
  // Reset restores the incremental tallies too: a fresh engine and a reset
  // one must agree after absorbing the same stream.
  PresentPfa fresh;
  Rng rng(207);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t c = rng.next();
    pfa.add_ciphertext(c);
    fresh.add_ciphertext(c);
  }
  EXPECT_EQ(pfa.recover_k32(0xC), fresh.recover_k32(0xC));
  EXPECT_EQ(pfa.remaining_keyspace_log2(0xC),
            fresh.remaining_keyspace_log2(0xC));
}

TEST(PresentPfa, IncrementalTalliesMatchCandidateRescan) {
  Rng rng(208);
  Present80::Key key;
  rng.fill_bytes(key);
  auto table = Present80::sbox();
  const auto [v, v_new] = apply_fault(table, {0x5, 0x2});
  (void)v_new;
  const auto rk = Present80::expand_key(key);
  PresentPfa pfa;
  for (int step = 0; step < 40; ++step) {
    for (int i = 0; i < 20; ++i)
      pfa.add_ciphertext(Present80::encrypt_with_sbox(rng.next(), rk, table));
    const auto cand = pfa.candidates(v);
    double bits = 0.0;
    bool empty = false;
    bool unique = true;
    for (const auto& c : cand) {
      if (c.empty()) empty = true;
      if (c.size() != 1) unique = false;
      bits += c.empty() ? 0.0 : std::log2(static_cast<double>(c.size()));
    }
    EXPECT_DOUBLE_EQ(pfa.remaining_keyspace_log2(v), empty ? 64.0 : bits);
    EXPECT_EQ(pfa.recover_k32(v).has_value(), unique);
  }
  ASSERT_TRUE(pfa.recover_k32(v).has_value());
  EXPECT_EQ(*pfa.recover_k32(v), rk[31]);
}

TEST(PresentPfa, BatchAddEqualsPerCiphertextAdd) {
  Rng rng(209);
  Present80::Key key;
  rng.fill_bytes(key);
  auto table = Present80::sbox();
  apply_fault(table, {0x3, 0x1});
  const auto rk = Present80::expand_key(key);

  PresentPfa per, batch;
  std::vector<std::uint8_t> flat;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t ct =
        Present80::encrypt_with_sbox(rng.next(), rk, table);
    per.add_ciphertext(ct);
    for (int b = 0; b < 8; ++b)
      flat.push_back(static_cast<std::uint8_t>(ct >> (8 * b)));
  }
  batch.add_ciphertext_batch(flat);
  EXPECT_EQ(batch.ciphertext_count(), per.ciphertext_count());
  const std::uint8_t v = Present80::sbox()[0x3];
  EXPECT_EQ(batch.recover_k32(v), per.recover_k32(v));
  EXPECT_EQ(batch.remaining_keyspace_log2(v), per.remaining_keyspace_log2(v));
}

}  // namespace
}  // namespace explframe::fault
