// service::Service integration suite — the explsimd engine in-process:
// concurrent duplicate submissions collapse to one execution, completed
// reports are served from the cache byte-identically, a crashed worker
// requeues exactly once before the retry cap files the job under
// failed/, a cancel shutdown mid-sweep leaves a resumable checkpoint the
// next daemon finishes byte-identically, and spooled .req files survive
// restarts. Runs under ASan and TSan in CI — the worker pool and queue
// must be clean at any interleaving.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "scenario/registry.hpp"
#include "support/check.hpp"
#include "sweep/registry.hpp"
#include "sweep/report.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"

namespace explframe::service {
namespace {

const scenario::Registry& scenarios() {
  return scenario::Registry::builtin();
}

/// Small but real grid: 2x2 points x 2 trials of the quickstart attack —
/// registered under a private sweep registry so the daemon tests never
/// pay for the full builtin catalogue.
const sweep::Registry& sweeps() {
  static const sweep::Registry registry = [] {
    const auto spec = sweep::SweepSpec::from_sweep(
        "name = tiny-grid\n"
        "title = Tiny test grid\n"
        "base = quickstart\n"
        "base.trials = 2\n"
        "axis.defence = none,trr\n"
        "axis.max_rows = 24,48\n");
    EXPLFRAME_CHECK(spec.has_value());
    sweep::Registry r;
    r.add(*spec);
    return r;
  }();
  return registry;
}

/// A fresh spool directory per test.
std::string fresh_spool(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

JobRequest scenario_request() {
  JobRequest request;
  request.kind = JobKind::kScenario;
  request.name = "quickstart";
  return request;
}

JobRequest sweep_request() {
  JobRequest request;
  request.kind = JobKind::kSweep;
  request.name = "tiny-grid";
  return request;
}

TEST(Service, ConcurrentDuplicateSubmissionsExecuteOnce) {
  ServiceOptions options;
  options.spool_dir = fresh_spool("svc-dedupe");
  options.workers = 2;
  Service service(std::move(options), scenarios(), sweeps());
  std::string error;
  ASSERT_TRUE(service.start(&error)) << error;

  // Four clients race the same experiment in.
  std::vector<SubmitOutcome> outcomes(4);
  {
    std::vector<std::thread> clients;
    for (SubmitOutcome& slot : outcomes)
      clients.emplace_back([&service, &slot] {
        const auto outcome = service.submit(scenario_request());
        ASSERT_TRUE(outcome.has_value());
        slot = *outcome;
      });
    for (std::thread& client : clients) client.join();
  }
  service.drain();
  service.shutdown(Service::Shutdown::kDrain);

  int accepted = 0;
  for (const SubmitOutcome& outcome : outcomes) {
    EXPECT_EQ(outcome.id, outcomes.front().id);
    accepted += outcome.accepted ? 1 : 0;
    EXPECT_TRUE(outcome.accepted || outcome.deduped || outcome.cached);
  }
  EXPECT_EQ(accepted, 1);  // Exactly one submission created the job.
  EXPECT_EQ(service.executions(), 1u);
  const auto job = service.status(outcomes.front().id);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->state, JobState::kDone);
  const auto report = service.report(outcomes.front().id, "md");
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->empty());
}

TEST(Service, CompletedReportsAreServedFromTheCacheByteIdentically) {
  const std::string spool = fresh_spool("svc-cache");
  std::string id;
  std::string first_md;
  std::string first_csv;
  {
    ServiceOptions options;
    options.spool_dir = spool;
    Service service(std::move(options), scenarios(), sweeps());
    std::string error;
    ASSERT_TRUE(service.start(&error)) << error;
    const auto outcome = service.submit(scenario_request(), &error);
    ASSERT_TRUE(outcome.has_value()) << error;
    id = outcome->id;
    service.drain();

    // A resubmission after completion is a cache hit, not a new run.
    const auto again = service.submit(scenario_request(), &error);
    ASSERT_TRUE(again.has_value()) << error;
    EXPECT_TRUE(again->cached);
    EXPECT_EQ(service.executions(), 1u);
    first_md = service.report(id, "md").value_or("");
    first_csv = service.report(id, "csv").value_or("");
    ASSERT_FALSE(first_md.empty());
    ASSERT_FALSE(first_csv.empty());
    service.shutdown(Service::Shutdown::kDrain);
  }

  // A brand-new daemon over the same spool serves the same bytes without
  // executing anything.
  ServiceOptions options;
  options.spool_dir = spool;
  Service revived(std::move(options), scenarios(), sweeps());
  std::string error;
  ASSERT_TRUE(revived.start(&error)) << error;
  const auto outcome = revived.submit(scenario_request(), &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  EXPECT_TRUE(outcome->cached);
  EXPECT_EQ(outcome->id, id);
  revived.drain();
  EXPECT_EQ(revived.executions(), 0u);
  EXPECT_EQ(revived.report(id, "md").value_or(""), first_md);
  EXPECT_EQ(revived.report(id, "csv").value_or(""), first_csv);
  revived.shutdown(Service::Shutdown::kDrain);
}

TEST(Service, CrashedWorkerRequeuesExactlyOnceThenSucceeds) {
  std::atomic<std::uint32_t> crashes{0};
  ServiceOptions options;
  options.spool_dir = fresh_spool("svc-crash-once");
  options.max_attempts = 2;
  options.crash_for_test = [&crashes](const Job&) {
    // Only the first attempt dies.
    return crashes.fetch_add(1) == 0;
  };
  Service service(std::move(options), scenarios(), sweeps());
  std::string error;
  ASSERT_TRUE(service.start(&error)) << error;
  const auto outcome = service.submit(scenario_request(), &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  service.drain();
  service.shutdown(Service::Shutdown::kDrain);

  const auto job = service.status(outcome->id);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->state, JobState::kDone);
  EXPECT_EQ(job->attempts, 2u);
  EXPECT_EQ(job->requeues, 1u);
  // Only the surviving attempt ran the experiment.
  EXPECT_EQ(service.executions(), 1u);
  EXPECT_TRUE(service.report(outcome->id, "md").has_value());
}

TEST(Service, RetryCapFilesTheJobUnderFailed) {
  ServiceOptions options;
  options.spool_dir = fresh_spool("svc-crash-cap");
  options.max_attempts = 2;
  options.crash_for_test = [](const Job&) { return true; };  // Always dies.
  Service service(std::move(options), scenarios(), sweeps());
  std::string error;
  ASSERT_TRUE(service.start(&error)) << error;
  const auto outcome = service.submit(scenario_request(), &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  service.drain();
  service.shutdown(Service::Shutdown::kDrain);

  const auto job = service.status(outcome->id);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->state, JobState::kFailed);
  EXPECT_EQ(job->attempts, 2u);   // The cap, exactly.
  EXPECT_EQ(job->requeues, 1u);   // max_attempts - 1, never more.
  EXPECT_NE(job->error.find("gave up after 2"), std::string::npos)
      << job->error;
  EXPECT_EQ(service.executions(), 0u);
  // The verdict is durable: failed/<id>.err exists, the .req is retired.
  EXPECT_TRUE(std::filesystem::exists(service.failed_path(outcome->id)));
  EXPECT_FALSE(std::filesystem::exists(service.queue_path(outcome->id)));
  EXPECT_FALSE(service.report(outcome->id, "md").has_value());
}

TEST(Service, CancelShutdownLeavesResumableStateAndRestartCompletes) {
  const std::string spool = fresh_spool("svc-cancel");

  // The byte-identity reference: an uninterrupted in-process run.
  const sweep::SweepSpec& spec = *sweeps().find("tiny-grid");
  std::string error;
  const auto fresh = sweep::run_sweep(spec, scenarios(), {}, &error);
  ASSERT_TRUE(fresh.has_value()) << error;

  std::string id;
  {
    Service* handle = nullptr;
    ServiceOptions options;
    options.spool_dir = spool;
    options.workers = 1;
    // The gate: the claimed attempt blocks until the cancel flag is
    // raised, so the sweep deterministically starts only when stopping
    // it is already requested — the worst-case shutdown interleaving.
    options.crash_for_test = [&handle](const Job&) {
      while (!handle->cancel_requested())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return false;
    };
    Service service(std::move(options), scenarios(), sweeps());
    handle = &service;
    ASSERT_TRUE(service.start(&error)) << error;

    const auto outcome = service.submit(sweep_request(), &error);
    ASSERT_TRUE(outcome.has_value()) << error;
    id = outcome->id;

    // Pre-seed the job's checkpoint with half the grid (what an earlier
    // partial attempt would have left) so the restart exercises a real
    // resume, not just a rerun.
    {
      const char* digits = "0123456789abcdef";
      std::uint64_t h = spec.spec_hash(scenarios());
      std::string hex(16, '0');
      for (int i = 15; i >= 0; --i, h >>= 4) hex[i] = digits[h & 0xf];
      std::ofstream out(service.checkpoint_path(id), std::ios::binary);
      out << "explsim-sweep-checkpoint v1 sweep=" << spec.name
          << " spec_hash=" << hex << "\n"
          << fresh->records[0].serialize() << "\n"
          << fresh->records[2].serialize() << "\n";
    }

    // Wait for the worker to claim the job, then cancel mid-attempt.
    while (true) {
      const auto job = service.status(id);
      ASSERT_TRUE(job.has_value());
      if (job->state == JobState::kRunning) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    service.shutdown(Service::Shutdown::kCancel);

    // The job went back to queued (the attempt was not a crash), the
    // submission file survives, and the checkpoint is intact.
    const auto job = service.status(id);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->state, JobState::kQueued);
    EXPECT_EQ(job->requeues, 0u);
    EXPECT_TRUE(std::filesystem::exists(service.queue_path(id)));
    EXPECT_TRUE(std::filesystem::exists(service.checkpoint_path(id)));
  }

  // The next daemon rescans the spool, resumes from the checkpoint and
  // finishes — emitting exactly the bytes an uninterrupted run emits.
  ServiceOptions options;
  options.spool_dir = spool;
  Service revived(std::move(options), scenarios(), sweeps());
  ASSERT_TRUE(revived.start(&error)) << error;
  revived.drain();
  revived.shutdown(Service::Shutdown::kDrain);
  const auto job = revived.status(id);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->state, JobState::kDone);
  EXPECT_EQ(revived.report(id, "md").value_or(""),
            sweep::sweep_markdown(*fresh));
  EXPECT_EQ(revived.report(id, "csv").value_or(""), sweep::sweep_csv(*fresh));
  // A finished job has nothing left to resume.
  EXPECT_FALSE(std::filesystem::exists(revived.checkpoint_path(id)));
}

TEST(Service, StartupRescanPicksUpSpooledRequests) {
  const std::string spool = fresh_spool("svc-rescan");
  // A client dropped a request while no daemon was running (what
  // `explsimd submit` does): just the durable .req file.
  const JobRequest request = scenario_request();
  std::string error;
  const auto id = job_id(request, scenarios(), sweeps(), &error);
  ASSERT_TRUE(id.has_value()) << error;
  std::filesystem::create_directories(spool + "/queue");
  {
    std::ofstream out(spool + "/queue/" + *id + ".req", std::ios::binary);
    out << request.serialize() << "\n";
  }

  ServiceOptions options;
  options.spool_dir = spool;
  Service service(std::move(options), scenarios(), sweeps());
  ASSERT_TRUE(service.start(&error)) << error;
  service.drain();
  service.shutdown(Service::Shutdown::kDrain);
  const auto job = service.status(*id);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->state, JobState::kDone);
  EXPECT_EQ(service.executions(), 1u);
  ASSERT_TRUE(service.report(*id, "md").has_value());
}

TEST(Service, CorruptSpooledRequestFailsStartupLoudly) {
  const std::string spool = fresh_spool("svc-corrupt");
  std::filesystem::create_directories(spool + "/queue");
  {
    std::ofstream out(spool + "/queue/junk.req", std::ios::binary);
    out << "not a request at all\n";
  }
  ServiceOptions options;
  options.spool_dir = spool;
  Service service(std::move(options), scenarios(), sweeps());
  std::string error;
  EXPECT_FALSE(service.start(&error));
  EXPECT_NE(error.find("corrupt"), std::string::npos) << error;
}

TEST(Service, UnknownNamesAndBadLinesAreRejectedWithErrors) {
  ServiceOptions options;
  options.spool_dir = fresh_spool("svc-reject");
  Service service(std::move(options), scenarios(), sweeps());
  std::string error;
  ASSERT_TRUE(service.start(&error)) << error;

  JobRequest unknown;
  unknown.kind = JobKind::kSweep;
  unknown.name = "no-such-grid";
  EXPECT_FALSE(service.submit(unknown, &error).has_value());
  EXPECT_NE(error.find("no sweep named"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(service.submit_line("explsimd-request v9 kind=sweep", &error)
                   .has_value());
  EXPECT_FALSE(error.empty());

  // The canonical line round-trips into an accepted job.
  const auto outcome = service.submit_line(
      "explsimd-request v1 kind=scenario name=quickstart", &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  EXPECT_TRUE(outcome->accepted);
  service.drain();
  service.shutdown(Service::Shutdown::kDrain);
  EXPECT_EQ(service.status(outcome->id)->state, JobState::kDone);
}

}  // namespace
}  // namespace explframe::service
