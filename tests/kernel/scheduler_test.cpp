#include "kernel/scheduler.hpp"

#include <gtest/gtest.h>

#include "kernel/system.hpp"

namespace explframe::kernel {
namespace {

SystemConfig cfg() {
  SystemConfig c;
  c.memory_bytes = 64 * kMiB;
  c.num_cpus = 2;
  c.dram.weak_cells.cells_per_mib = 0.0;
  return c;
}

TEST(Scheduler, RoundRobinCyclesTasks) {
  System sys(cfg());
  Scheduler sched(2);
  Task& a = sys.spawn("a", 0);
  Task& b = sys.spawn("b", 0);
  sched.add(a);
  sched.add(b);
  Task* first = sched.pick_next(0);
  Task* second = sched.pick_next(0);
  Task* third = sched.pick_next(0);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first, second);
  EXPECT_EQ(first, third);
}

TEST(Scheduler, EmptyCpuReturnsNull) {
  Scheduler sched(2);
  EXPECT_EQ(sched.pick_next(1), nullptr);
}

TEST(Scheduler, SleepingTasksSkipped) {
  System sys(cfg());
  Scheduler sched(2);
  Task& a = sys.spawn("a", 0);
  Task& b = sys.spawn("b", 0);
  sched.add(a);
  sched.add(b);
  a.set_state(TaskState::kSleeping);
  EXPECT_EQ(sched.pick_next(0), &b);
  EXPECT_EQ(sched.pick_next(0), &b);
  a.set_state(TaskState::kRunnable);
  b.set_state(TaskState::kSleeping);
  EXPECT_EQ(sched.pick_next(0), &a);
}

TEST(Scheduler, AllSleepingReturnsNull) {
  System sys(cfg());
  Scheduler sched(1);
  Task& a = sys.spawn("a", 0);
  sched.add(a);
  a.set_state(TaskState::kSleeping);
  EXPECT_EQ(sched.pick_next(0), nullptr);
}

TEST(Scheduler, MigrateMovesTaskBetweenCpus) {
  System sys(cfg());
  Scheduler sched(2);
  Task& a = sys.spawn("a", 0);
  sched.add(a);
  EXPECT_EQ(sched.runnable_on(0), 1u);
  sched.migrate(a, 1);
  EXPECT_EQ(a.cpu(), 1u);
  EXPECT_EQ(sched.runnable_on(0), 0u);
  EXPECT_EQ(sched.runnable_on(1), 1u);
  EXPECT_EQ(sched.pick_next(1), &a);
}

TEST(Scheduler, RemoveDropsTask) {
  System sys(cfg());
  Scheduler sched(1);
  Task& a = sys.spawn("a", 0);
  sched.add(a);
  sched.remove(a);
  EXPECT_EQ(sched.pick_next(0), nullptr);
}

TEST(TaskStateNames, AllNamed) {
  EXPECT_STREQ(to_string(TaskState::kRunnable), "runnable");
  EXPECT_STREQ(to_string(TaskState::kSleeping), "sleeping");
  EXPECT_STREQ(to_string(TaskState::kExited), "exited");
}

}  // namespace
}  // namespace explframe::kernel
