#include "kernel/noise.hpp"

#include <gtest/gtest.h>

namespace explframe::kernel {
namespace {

SystemConfig cfg() {
  SystemConfig c;
  c.memory_bytes = 64 * kMiB;
  c.num_cpus = 1;
  c.dram.weak_cells.cells_per_mib = 0.0;
  return c;
}

TEST(NoiseWorkload, AllocatesAndReleases) {
  System sys(cfg());
  Task& t = sys.spawn("noise", 0);
  NoiseWorkload noise(sys, t, {}, 3);
  noise.run(500);
  EXPECT_GT(noise.pages_allocated(), 0u);
  EXPECT_GT(noise.pages_released(), 0u);
  sys.allocator().verify();
}

TEST(NoiseWorkload, DeterministicForSeed) {
  System a(cfg()), b(cfg());
  Task& ta = a.spawn("noise", 0);
  Task& tb = b.spawn("noise", 0);
  NoiseWorkload na(a, ta, {}, 42);
  NoiseWorkload nb(b, tb, {}, 42);
  na.run(300);
  nb.run(300);
  EXPECT_EQ(na.pages_allocated(), nb.pages_allocated());
  EXPECT_EQ(na.pages_released(), nb.pages_released());
  EXPECT_EQ(a.stats().page_faults, b.stats().page_faults);
}

TEST(NoiseWorkload, RespectsRegionCap) {
  System sys(cfg());
  Task& t = sys.spawn("noise", 0);
  NoiseConfig nc;
  nc.max_live_regions = 4;
  nc.alloc_bias = 1.0;  // always allocate if below cap
  NoiseWorkload noise(sys, t, nc, 7);
  noise.run(100);
  // With the cap at 4, at most 4 * max_pages pages can be live; the rest
  // must have been released.
  EXPECT_GE(noise.pages_allocated(),
            noise.pages_released());
  EXPECT_LE(noise.pages_allocated() - noise.pages_released(),
            4ull * nc.max_pages);
}

TEST(NoiseWorkload, ChurnsThePcpCache) {
  System sys(cfg());
  Task& t = sys.spawn("noise", 0);
  const auto hits_before = sys.allocator().stats().pcp_alloc_hits;
  NoiseWorkload noise(sys, t, {}, 11);
  noise.run(200);
  EXPECT_GT(sys.allocator().stats().pcp_alloc_hits, hits_before);
}

}  // namespace
}  // namespace explframe::kernel
