#include "kernel/system.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace explframe::kernel {
namespace {

SystemConfig small_cfg() {
  SystemConfig cfg;
  cfg.memory_bytes = 64 * kMiB;
  cfg.num_cpus = 2;
  cfg.dram.weak_cells.cells_per_mib = 0.0;
  return cfg;
}

TEST(System, SpawnAndFindTask) {
  System sys(small_cfg());
  Task& t = sys.spawn("worker", 1);
  EXPECT_EQ(t.cpu(), 1u);
  EXPECT_EQ(t.name(), "worker");
  EXPECT_EQ(sys.find_task(t.id()), &t);
  EXPECT_EQ(sys.find_task(9999), nullptr);
}

TEST(System, MmapDoesNotAllocateFrames) {
  System sys(small_cfg());
  Task& t = sys.spawn("lazy", 0);
  const auto faults_before = sys.stats().page_faults;
  sys.sys_mmap(t, 100 * kPageSize);
  // "the program must store some data into the allocated pages, otherwise
  // the physical page frames will not be allocated" (§V).
  EXPECT_EQ(sys.stats().page_faults, faults_before);
  EXPECT_EQ(t.space().page_table().mapped_pages(), 0u);
}

TEST(System, WriteFaultsPagesIn) {
  System sys(small_cfg());
  Task& t = sys.spawn("writer", 0);
  const vm::VirtAddr va = sys.sys_mmap(t, 3 * kPageSize);
  std::vector<std::uint8_t> data(2 * kPageSize + 100, 0xCD);
  EXPECT_TRUE(sys.mem_write(t, va, {data.data(), data.size()}));
  EXPECT_EQ(t.space().page_table().mapped_pages(), 3u);
  EXPECT_EQ(t.space().counters().minor_faults, 3u);
}

TEST(System, ReadBackAcrossPages) {
  System sys(small_cfg());
  Task& t = sys.spawn("rw", 0);
  const vm::VirtAddr va = sys.sys_mmap(t, 2 * kPageSize);
  std::vector<std::uint8_t> data(kPageSize + 512);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 7);
  ASSERT_TRUE(sys.mem_write(t, va + 100, {data.data(), data.size()}));
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(sys.mem_read(t, va + 100, {out.data(), out.size()}));
  EXPECT_EQ(data, out);
}

TEST(System, ZeroOnAllocClearsOldData) {
  SystemConfig cfg = small_cfg();
  cfg.charge_page_tables = false;  // isolate the data-page path
  System sys(cfg);
  Task& a = sys.spawn("first", 0);
  const vm::VirtAddr va = sys.sys_mmap(a, kPageSize);
  const std::uint8_t secret[4] = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(sys.mem_write(a, va, secret));
  const mm::Pfn pfn = sys.translate(a, va);
  sys.sys_munmap(a, va, kPageSize);

  Task& b = sys.spawn("second", 0);
  const vm::VirtAddr vb = sys.sys_mmap(b, kPageSize);
  std::uint8_t probe = 0xFF;
  ASSERT_TRUE(sys.mem_write(b, vb + 100, {&probe, 1}));  // fault it in
  ASSERT_EQ(sys.translate(b, vb), pfn);  // same frame, via the pcp cache
  std::uint8_t out[4];
  ASSERT_TRUE(sys.mem_read(b, vb, out));
  EXPECT_EQ(out[0], 0);  // zeroed on allocation
}

TEST(System, AccessOutsideVmaFails) {
  System sys(small_cfg());
  Task& t = sys.spawn("segv", 0);
  std::uint8_t b = 1;
  EXPECT_FALSE(sys.mem_write(t, 0xdead0000, {&b, 1}));
  EXPECT_FALSE(sys.mem_read(t, 0xdead0000, {&b, 1}));
  EXPECT_EQ(sys.uncached_access(t, 0xdead0000), 0u);
}

TEST(System, MunmapSendsFrameToPcpHead) {
  // The full paper mechanism at syscall level: munmap on CPU c, next
  // order-0 fault on CPU c receives the same frame. The victim process is
  // already warm (its page-table nodes exist), as in the paper's scenario
  // of a long-running victim.
  System sys(small_cfg());
  Task& attacker = sys.spawn("attacker", 0);
  Task& victim = sys.spawn("victim", 0);
  const vm::VirtAddr warm = sys.sys_mmap(victim, kPageSize);
  const std::uint8_t w = 9;
  ASSERT_TRUE(sys.mem_write(victim, warm, {&w, 1}));

  const vm::VirtAddr va = sys.sys_mmap(attacker, 4 * kPageSize);
  for (int p = 0; p < 4; ++p) {
    const std::uint8_t b = 1;
    ASSERT_TRUE(sys.mem_write(attacker, va + p * kPageSize, {&b, 1}));
  }
  const mm::Pfn target = sys.translate(attacker, va + 2 * kPageSize);
  ASSERT_TRUE(sys.sys_munmap(attacker, va + 2 * kPageSize, kPageSize));

  const vm::VirtAddr vv = sys.sys_mmap(victim, kPageSize);
  const std::uint8_t b = 2;
  ASSERT_TRUE(sys.mem_write(victim, vv, {&b, 1}));
  EXPECT_EQ(sys.translate(victim, vv), target);
}

TEST(System, CrossCpuMunmapDoesNotSteer) {
  SystemConfig cfg = small_cfg();
  cfg.charge_page_tables = false;  // isolate the data-page path
  System sys(cfg);
  Task& attacker = sys.spawn("attacker", 0);
  const vm::VirtAddr va = sys.sys_mmap(attacker, kPageSize);
  const std::uint8_t b = 1;
  ASSERT_TRUE(sys.mem_write(attacker, va, {&b, 1}));
  const mm::Pfn target = sys.translate(attacker, va);
  sys.sys_munmap(attacker, va, kPageSize);

  Task& victim = sys.spawn("victim", 1);  // different CPU
  const vm::VirtAddr vv = sys.sys_mmap(victim, kPageSize);
  ASSERT_TRUE(sys.mem_write(victim, vv, {&b, 1}));
  EXPECT_NE(sys.translate(victim, vv), target);
}

TEST(System, UncachedAccessReturnsLatencyAndFaults) {
  System sys(small_cfg());
  Task& t = sys.spawn("hammer", 0);
  const vm::VirtAddr va = sys.sys_mmap(t, kPageSize);
  const SimTime lat = sys.uncached_access(t, va);
  EXPECT_GT(lat, 0u);
  EXPECT_EQ(t.space().page_table().mapped_pages(), 1u);
}

TEST(System, ExitTaskReleasesEverything) {
  System sys(small_cfg());
  Task& t = sys.spawn("mortal", 0);
  // Snapshot after spawn: the page-table root frame stays charged until the
  // task struct itself is destroyed, as in Linux.
  const auto free0 = sys.allocator().global_free_pages() +
                     sys.allocator().zone(0).pcp_pages() +
                     sys.allocator().zone(1).pcp_pages();
  const vm::VirtAddr va = sys.sys_mmap(t, 16 * kPageSize);
  for (int p = 0; p < 16; ++p) {
    const std::uint8_t b = 3;
    ASSERT_TRUE(sys.mem_write(t, va + p * kPageSize, {&b, 1}));
  }
  sys.exit_task(t);
  EXPECT_EQ(t.state(), TaskState::kExited);
  EXPECT_EQ(sys.find_task(t.id()), nullptr);
  const auto free1 = sys.allocator().global_free_pages() +
                     sys.allocator().zone(0).pcp_pages() +
                     sys.allocator().zone(1).pcp_pages();
  EXPECT_EQ(free0, free1);
  sys.allocator().verify();
}

TEST(System, PageTableFramesCharged) {
  SystemConfig cfg = small_cfg();
  cfg.charge_page_tables = true;
  System sys(cfg);
  const auto before = sys.stats().table_frames;
  Task& t = sys.spawn("pt", 0);
  EXPECT_GT(sys.stats().table_frames, before);  // root charged at spawn
  const vm::VirtAddr va = sys.sys_mmap(t, kPageSize);
  const std::uint8_t b = 1;
  ASSERT_TRUE(sys.mem_write(t, va, {&b, 1}));
  EXPECT_GE(sys.stats().table_frames, before + 4);
}

TEST(System, PagemapCapabilityGate) {
  System sys(small_cfg());
  Task& t = sys.spawn("proc", 0);
  const vm::VirtAddr va = sys.sys_mmap(t, kPageSize);
  const std::uint8_t b = 1;
  ASSERT_TRUE(sys.mem_write(t, va, {&b, 1}));
  EXPECT_EQ(sys.sys_pagemap(t, va, false).pfn, 0u);
  EXPECT_EQ(sys.sys_pagemap(t, va, true).pfn, sys.translate(t, va));
}

TEST(System, PhysOfMatchesTranslate) {
  System sys(small_cfg());
  Task& t = sys.spawn("phys", 0);
  const vm::VirtAddr va = sys.sys_mmap(t, kPageSize);
  const std::uint8_t b = 1;
  ASSERT_TRUE(sys.mem_write(t, va, {&b, 1}));
  EXPECT_EQ(sys.phys_of(t, va + 123),
            static_cast<dram::PhysAddr>(sys.translate(t, va)) * kPageSize + 123);
}

TEST(System, DataPersistsInDram) {
  System sys(small_cfg());
  Task& t = sys.spawn("dram", 0);
  const vm::VirtAddr va = sys.sys_mmap(t, kPageSize);
  const std::uint8_t b = 0x77;
  ASSERT_TRUE(sys.mem_write(t, va + 5, {&b, 1}));
  EXPECT_EQ(sys.dram().read_byte(sys.phys_of(t, va + 5)), 0x77);
}

}  // namespace
}  // namespace explframe::kernel
