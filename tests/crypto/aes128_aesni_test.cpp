// Aes128Ni: the hardware-AES batch path with the SIMD single-byte
// S-box-fault correction must be bit-identical to the byte-wise reference
// (Aes128::encrypt_with_sbox) for every (key, plaintext, fault) — that is
// the whole contract that lets the harvest ride AES-NI while the stored
// table is faulted. Skipped (trivially passing) on CPUs without AES-NI,
// where the dispatcher never selects this path.
#include "crypto/aes128_aesni.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace explframe::crypto {
namespace {

std::span<const std::uint8_t, 256> as_span(
    const std::array<std::uint8_t, 256>& t) {
  return std::span<const std::uint8_t, 256>(t);
}

TEST(Aes128Ni, CanonicalMatchesReference) {
  if (!Aes128Ni::available()) GTEST_SKIP() << "no AES-NI on this CPU";
  Rng rng(41);
  for (int i = 0; i < 50; ++i) {
    Aes128::Key key;
    rng.fill_bytes(key);
    const auto rk = Aes128::expand_key(key);
    Aes128::Block pt, ct;
    rng.fill_bytes(pt);
    Aes128Ni::encrypt_blocks(pt.data(), ct.data(), 1, rk, 0, 0);
    EXPECT_EQ(ct, Aes128::encrypt(pt, rk));
  }
}

TEST(Aes128Ni, SingleByteFaultMatchesFaultyTableReference) {
  if (!Aes128Ni::available()) GTEST_SKIP() << "no AES-NI on this CPU";
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    Aes128::Key key;
    rng.fill_bytes(key);
    const auto rk = Aes128::expand_key(key);
    const auto x0 = static_cast<std::uint8_t>(rng.uniform(256));
    const auto m = static_cast<std::uint8_t>(1 + rng.uniform(255));
    auto faulty = Aes128::sbox();
    faulty[x0] ^= m;
    for (int i = 0; i < 8; ++i) {
      Aes128::Block pt, ct;
      rng.fill_bytes(pt);
      Aes128Ni::encrypt_blocks(pt.data(), ct.data(), 1, rk, x0, m);
      EXPECT_EQ(ct, Aes128::encrypt_with_sbox(pt, rk, as_span(faulty)))
          << "x0=" << int(x0) << " m=" << int(m);
    }
  }
}

TEST(Aes128Ni, BatchSizesCoverInterleaveAndTail) {
  // n = 1..9 exercises the 4-blocks-in-flight main loop, the scalar tail
  // and their boundary; each block of the batch must equal a 1-block call.
  if (!Aes128Ni::available()) GTEST_SKIP() << "no AES-NI on this CPU";
  Rng rng(43);
  Aes128::Key key;
  rng.fill_bytes(key);
  const auto rk = Aes128::expand_key(key);
  const std::uint8_t x0 = 0x3c, m = 0x20;
  for (std::size_t n = 1; n <= 9; ++n) {
    std::vector<std::uint8_t> pts(16 * n), cts(16 * n), one(16 * n);
    rng.fill_bytes(pts);
    Aes128Ni::encrypt_blocks(pts.data(), cts.data(), n, rk, x0, m);
    for (std::size_t i = 0; i < n; ++i)
      Aes128Ni::encrypt_blocks(pts.data() + 16 * i, one.data() + 16 * i, 1,
                               rk, x0, m);
    EXPECT_EQ(cts, one) << "n=" << n;
  }
}

}  // namespace
}  // namespace explframe::crypto
