// crypto::TableCipher adapters: shape metadata, live-bit masks, usable-flip
// polarity, and agreement with the reference cipher implementations.
#include "crypto/table_cipher.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/aes128.hpp"
#include "crypto/present80.hpp"
#include "support/rng.hpp"

namespace explframe::crypto {
namespace {

TEST(TableCipher, AesShapes) {
  const TableCipher& aes = cipher_for(CipherKind::kAes128);
  EXPECT_EQ(aes.kind(), CipherKind::kAes128);
  EXPECT_EQ(aes.table_size(), 256u);
  EXPECT_EQ(aes.key_size(), 16u);
  EXPECT_EQ(aes.block_size(), 16u);
  EXPECT_EQ(aes.round_key_size(), 11u * 16u);
  EXPECT_EQ(aes.live_bits(0), 0xFF);
  EXPECT_TRUE(std::equal(aes.canonical_table().begin(),
                         aes.canonical_table().end(),
                         Aes128::sbox().begin()));
}

TEST(TableCipher, PresentShapes) {
  const TableCipher& present = cipher_for(CipherKind::kPresent80);
  EXPECT_EQ(present.kind(), CipherKind::kPresent80);
  EXPECT_EQ(present.table_size(), 16u);
  EXPECT_EQ(present.key_size(), 10u);
  EXPECT_EQ(present.block_size(), 8u);
  EXPECT_EQ(present.round_key_size(), 32u * 8u);
  EXPECT_EQ(present.live_bits(3), 0x0F);
}

TEST(TableCipher, AesEncryptMatchesReference) {
  const TableCipher& aes = cipher_for(CipherKind::kAes128);
  Rng rng(11);
  const auto key = random_key(aes, rng.next());
  std::vector<std::uint8_t> rk(aes.round_key_size());
  aes.expand_key(key, rk);

  Aes128::Key ref_key{};
  std::copy(key.begin(), key.end(), ref_key.begin());
  const auto ref_rk = Aes128::expand_key(ref_key);

  for (int i = 0; i < 8; ++i) {
    Aes128::Block pt;
    rng.fill_bytes(pt);
    std::vector<std::uint8_t> ct(16);
    aes.encrypt(pt, rk, aes.canonical_table(), ct);
    const Aes128::Block ref_ct = Aes128::encrypt(pt, ref_rk);
    EXPECT_TRUE(std::equal(ct.begin(), ct.end(), ref_ct.begin()));
  }
}

TEST(TableCipher, PresentEncryptMatchesReferenceAndIgnoresDeadBits) {
  const TableCipher& present = cipher_for(CipherKind::kPresent80);
  Rng rng(12);
  const auto key = random_key(present, rng.next());
  std::vector<std::uint8_t> rk(present.round_key_size());
  present.expand_key(key, rk);

  Present80::Key ref_key{};
  std::copy(key.begin(), key.end(), ref_key.begin());
  const auto ref_rk = Present80::expand_key(ref_key);

  // A table with garbage in the dead high nibbles must encrypt identically
  // to the canonical table.
  std::vector<std::uint8_t> dirty(present.canonical_table().begin(),
                                  present.canonical_table().end());
  for (auto& b : dirty) b |= 0xA0;

  for (int i = 0; i < 8; ++i) {
    const std::uint64_t pt = rng.next();
    std::array<std::uint8_t, 8> pt_bytes;
    for (std::size_t b = 0; b < 8; ++b)
      pt_bytes[b] = static_cast<std::uint8_t>(pt >> (8 * b));
    std::vector<std::uint8_t> ct(8);
    present.encrypt(pt_bytes, rk, dirty, ct);
    std::uint64_t ct_u64 = 0;
    for (std::size_t b = 0; b < 8; ++b)
      ct_u64 |= static_cast<std::uint64_t>(ct[b]) << (8 * b);
    EXPECT_EQ(ct_u64, Present80::encrypt(pt, ref_rk));
  }
}

TEST(TableCipher, FaultyTableChangesCiphertext) {
  for (const CipherKind kind : {CipherKind::kAes128, CipherKind::kPresent80}) {
    const TableCipher& cipher = cipher_for(kind);
    Rng rng(13);
    const auto key = random_key(cipher, rng.next());
    std::vector<std::uint8_t> rk(cipher.round_key_size());
    cipher.expand_key(key, rk);

    std::vector<std::uint8_t> faulty(cipher.canonical_table().begin(),
                                     cipher.canonical_table().end());
    faulty[5] ^= 0x01;  // a live bit in both ciphers

    // A persistent table fault must surface in at least one of a handful of
    // random blocks (overwhelmingly all of them for AES).
    bool any_diff = false;
    for (int i = 0; i < 8 && !any_diff; ++i) {
      std::vector<std::uint8_t> pt(cipher.block_size());
      rng.fill_bytes(pt);
      std::vector<std::uint8_t> good(cipher.block_size());
      std::vector<std::uint8_t> bad(cipher.block_size());
      cipher.encrypt(pt, rk, cipher.canonical_table(), good);
      cipher.encrypt(pt, rk, faulty, bad);
      any_diff = good != bad;
    }
    EXPECT_TRUE(any_diff) << to_string(kind);
  }
}

TEST(TableCipher, UsableFlipPolarity) {
  const TableCipher& aes = cipher_for(CipherKind::kAes128);
  // Aes sbox[0] = 0x63 = 0110'0011: bit 0 set, bit 2 clear.
  EXPECT_TRUE(aes.usable_flip(0, 0, /*to_one=*/false));   // 1 -> 0 on a set bit
  EXPECT_FALSE(aes.usable_flip(0, 0, /*to_one=*/true));   // anti cell, bit set
  EXPECT_TRUE(aes.usable_flip(0, 2, /*to_one=*/true));    // 0 -> 1 on clear bit
  EXPECT_FALSE(aes.usable_flip(0, 2, /*to_one=*/false));
  EXPECT_FALSE(aes.usable_flip(256, 0, false));  // out of window

  const TableCipher& present = cipher_for(CipherKind::kPresent80);
  // High-nibble bits are dead: never usable regardless of polarity.
  for (std::uint8_t bit = 4; bit < 8; ++bit) {
    EXPECT_FALSE(present.usable_flip(0, bit, true));
    EXPECT_FALSE(present.usable_flip(0, bit, false));
  }
  // Present sbox[0] = 0xC = 1100: bit 2 set, bit 0 clear.
  EXPECT_TRUE(present.usable_flip(0, 2, /*to_one=*/false));
  EXPECT_TRUE(present.usable_flip(0, 0, /*to_one=*/true));
}

TEST(TableCipher, RandomKeyIsDeterministicPerSeed) {
  const TableCipher& aes = cipher_for(CipherKind::kAes128);
  EXPECT_EQ(random_key(aes, 1), random_key(aes, 1));
  EXPECT_NE(random_key(aes, 1), random_key(aes, 2));
  EXPECT_EQ(random_key(aes, 1).size(), aes.key_size());
}

TEST(TableCipher, InvalidKindDies) {
  // An out-of-range enum (a corrupted config cast into CipherKind) must
  // fail loudly, not silently hand back the AES adapter.
  EXPECT_DEATH(cipher_for(static_cast<CipherKind>(99)), "invalid CipherKind");
}

TEST(TableCipher, EncryptBatchMatchesPerCallOverRandomSplits) {
  // The tentpole equivalence at the crypto seam: for canonical,
  // single-byte-faulted and multi-byte-faulted tables, encrypt_batch over a
  // context must emit the byte stream per-block encrypt() emits — however
  // the batch is split.
  for (const CipherKind kind : {CipherKind::kAes128, CipherKind::kPresent80}) {
    const TableCipher& cipher = cipher_for(kind);
    const std::size_t block = cipher.block_size();
    Rng rng(kind == CipherKind::kAes128 ? 21 : 22);
    const auto key = random_key(cipher, rng.next());
    std::vector<std::uint8_t> rk(cipher.round_key_size());
    cipher.expand_key(key, rk);

    std::vector<std::vector<std::uint8_t>> tables;
    tables.emplace_back(cipher.canonical_table().begin(),
                        cipher.canonical_table().end());
    auto one_fault = tables.back();
    one_fault[rng.uniform(cipher.table_size())] ^=
        static_cast<std::uint8_t>(1u + rng.uniform(15));
    tables.push_back(one_fault);
    auto two_faults = one_fault;
    two_faults[0] ^= 0x07;
    two_faults[cipher.table_size() - 1] ^= 0x03;
    tables.push_back(two_faults);

    for (const auto& table : tables) {
      constexpr std::size_t kBlocks = 64;
      std::vector<std::uint8_t> pts(kBlocks * block);
      rng.fill_bytes(pts);

      std::vector<std::uint8_t> scalar(kBlocks * block);
      for (std::size_t i = 0; i < kBlocks; ++i)
        cipher.encrypt({pts.data() + i * block, block}, rk, table,
                       {scalar.data() + i * block, block});

      const auto ctx = cipher.make_context(rk, table);
      std::vector<std::uint8_t> batched(kBlocks * block);
      // Random split points: the context must be reusable across chunks of
      // any size, including size-one chunks and the 4-way+tail boundary.
      std::size_t off = 0;
      while (off < kBlocks) {
        const std::size_t n =
            std::min<std::size_t>(1 + rng.uniform(9), kBlocks - off);
        cipher.encrypt_batch(
            *ctx, {pts.data() + off * block, n * block},
            {batched.data() + off * block, n * block});
        off += n;
      }
      EXPECT_EQ(scalar, batched) << to_string(kind);
    }
  }
}

}  // namespace
}  // namespace explframe::crypto
