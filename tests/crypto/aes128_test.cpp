#include "crypto/aes128.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace explframe::crypto {
namespace {

using Block = Aes128::Block;
using Key = Aes128::Key;

// FIPS-197 Appendix B.
constexpr Key kFipsKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                          0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
constexpr Block kFipsPlain = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                              0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
constexpr Block kFipsCipher = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                               0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};

// FIPS-197 Appendix C.1.
constexpr Key kAppCKey = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                          0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
constexpr Block kAppCPlain = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                              0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
constexpr Block kAppCCipher = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                               0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};

TEST(Aes128, Fips197AppendixB) {
  const auto rk = Aes128::expand_key(kFipsKey);
  EXPECT_EQ(Aes128::encrypt(kFipsPlain, rk), kFipsCipher);
}

TEST(Aes128, Fips197AppendixC1) {
  const auto rk = Aes128::expand_key(kAppCKey);
  EXPECT_EQ(Aes128::encrypt(kAppCPlain, rk), kAppCCipher);
}

TEST(Aes128, DecryptInvertsEncrypt) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    Key key;
    Block pt;
    rng.fill_bytes(key);
    rng.fill_bytes(pt);
    const auto rk = Aes128::expand_key(key);
    EXPECT_EQ(Aes128::decrypt(Aes128::encrypt(pt, rk), rk), pt);
  }
}

TEST(Aes128, KeyScheduleFirstAndLastWords) {
  // FIPS-197 Appendix A.1 expansion of kFipsKey.
  const auto rk = Aes128::expand_key(kFipsKey);
  EXPECT_EQ(rk[0], kFipsKey);
  const Aes128::RoundKey k10 = {0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89,
                                0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63, 0x0c, 0xa6};
  EXPECT_EQ(rk[10], k10);
}

TEST(Aes128, MasterKeyFromRound10RoundTrips) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    Key key;
    rng.fill_bytes(key);
    const auto rk = Aes128::expand_key(key);
    EXPECT_EQ(Aes128::master_key_from_round10(rk[10]), key);
  }
}

TEST(Aes128, SboxIsBijective) {
  const auto& sbox = Aes128::sbox();
  const auto& inv = Aes128::inv_sbox();
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(inv[sbox[i]], i);
    EXPECT_EQ(sbox[inv[i]], i);
  }
}

TEST(Aes128, EncryptWithCanonicalSboxMatchesEncrypt) {
  Rng rng(3);
  Key key;
  Block pt;
  rng.fill_bytes(key);
  rng.fill_bytes(pt);
  const auto rk = Aes128::expand_key(key);
  EXPECT_EQ(Aes128::encrypt_with_sbox(pt, rk, Aes128::sbox()),
            Aes128::encrypt(pt, rk));
}

TEST(Aes128, FaultySboxChangesCiphertext) {
  Rng rng(4);
  Key key;
  Block pt;
  rng.fill_bytes(key);
  rng.fill_bytes(pt);
  const auto rk = Aes128::expand_key(key);
  auto faulty = Aes128::sbox();
  faulty[0x42] ^= 0x10;
  int diffs = 0;
  for (int i = 0; i < 64; ++i) {
    rng.fill_bytes(pt);
    if (Aes128::encrypt_with_sbox(pt, rk, faulty) != Aes128::encrypt(pt, rk))
      ++diffs;
  }
  // 160 S-box lookups per encryption hit one specific entry with
  // probability 1-(255/256)^160 ~ 0.47.
  EXPECT_GT(diffs, 15);
  EXPECT_LT(diffs, 50);
}

TEST(Aes128, TransientFaultRound9TouchesExactlyOneColumn) {
  Rng rng(5);
  Key key;
  Block pt;
  rng.fill_bytes(key);
  rng.fill_bytes(pt);
  const auto rk = Aes128::expand_key(key);
  const Block good = Aes128::encrypt(pt, rk);
  const Block bad = Aes128::encrypt_with_transient_fault(pt, rk, 9, 5, 0x80);
  int diffs = 0;
  for (int i = 0; i < 16; ++i)
    if (good[i] != bad[i]) ++diffs;
  EXPECT_EQ(diffs, 4);  // one MixColumns column, scattered by ShiftRows
}

TEST(Aes128, TransientFaultRound1AvalanchesEverywhere) {
  Rng rng(6);
  Key key;
  Block pt;
  rng.fill_bytes(key);
  rng.fill_bytes(pt);
  const auto rk = Aes128::expand_key(key);
  const Block good = Aes128::encrypt(pt, rk);
  const Block bad = Aes128::encrypt_with_transient_fault(pt, rk, 1, 0, 0x01);
  int diffs = 0;
  for (int i = 0; i < 16; ++i)
    if (good[i] != bad[i]) ++diffs;
  EXPECT_GE(diffs, 14);
}

TEST(Aes128, ZeroMaskTransientFaultIsIdentity) {
  Rng rng(7);
  Key key;
  Block pt;
  rng.fill_bytes(key);
  rng.fill_bytes(pt);
  const auto rk = Aes128::expand_key(key);
  EXPECT_EQ(Aes128::encrypt_with_transient_fault(pt, rk, 9, 3, 0x00),
            Aes128::encrypt(pt, rk));
}

TEST(Aes128, GmulKnownValues) {
  EXPECT_EQ(Aes128::gmul(0x57, 0x13), 0xfe);  // FIPS-197 §4.2.1 example
  EXPECT_EQ(Aes128::gmul(0x57, 0x02), 0xae);
  EXPECT_EQ(Aes128::gmul(0x01, 0xab), 0xab);
  EXPECT_EQ(Aes128::gmul(0x00, 0xab), 0x00);
}

TEST(Aes128, XtimeMatchesGmulBy2) {
  for (int x = 0; x < 256; ++x) {
    EXPECT_EQ(Aes128::xtime(static_cast<std::uint8_t>(x)),
              Aes128::gmul(static_cast<std::uint8_t>(x), 2));
  }
}

}  // namespace
}  // namespace explframe::crypto
