#include "crypto/aes128_ttable.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace explframe::crypto {
namespace {

TEST(Aes128T, MatchesReferenceOnFipsVector) {
  const Aes128::Key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const Aes128::Block pt = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                            0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const auto rk = Aes128::expand_key(key);
  EXPECT_EQ(Aes128T::encrypt(pt, rk), Aes128::encrypt(pt, rk));
}

TEST(Aes128T, MatchesReferenceOnRandomInputs) {
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    Aes128::Key key;
    Aes128::Block pt;
    rng.fill_bytes(key);
    rng.fill_bytes(pt);
    const auto rk = Aes128::expand_key(key);
    EXPECT_EQ(Aes128T::encrypt(pt, rk), Aes128::encrypt(pt, rk));
  }
}

TEST(Aes128T, TablesDerivedFromFaultySboxMatchGenericPath) {
  // A faulted S-box propagated into the T-tables must produce exactly the
  // same ciphertexts as the byte-wise implementation using that S-box.
  Rng rng(32);
  auto faulty = Aes128::sbox();
  faulty[0x3c] ^= 0x20;
  const auto tables = Aes128T::derive_tables(faulty);
  for (int i = 0; i < 100; ++i) {
    Aes128::Key key;
    Aes128::Block pt;
    rng.fill_bytes(key);
    rng.fill_bytes(pt);
    const auto rk = Aes128::expand_key(key);
    EXPECT_EQ(
        Aes128T::encrypt(pt, rk, tables,
                         std::span<const std::uint8_t, 256>(faulty)),
        Aes128::encrypt_with_sbox(pt, rk,
                                  std::span<const std::uint8_t, 256>(faulty)));
  }
}

TEST(Aes128T, TableStructureInvariants) {
  const auto& t = Aes128T::canonical_tables();
  const auto& sbox = Aes128::sbox();
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = sbox[i];
    const std::uint8_t s2 = Aes128::gmul(s, 2);
    const std::uint8_t s3 = Aes128::gmul(s, 3);
    // Te0 row structure (2S, S, S, 3S).
    EXPECT_EQ(t.te0[i] >> 24, s2);
    EXPECT_EQ((t.te0[i] >> 16) & 0xFF, s);
    EXPECT_EQ((t.te0[i] >> 8) & 0xFF, s);
    EXPECT_EQ(t.te0[i] & 0xFF, s3);
    // Te1..Te3 are byte rotations of Te0.
    const auto ror8 = [](std::uint32_t w) {
      return (w >> 8) | (w << 24);
    };
    EXPECT_EQ(t.te1[i], ror8(t.te0[i]));
    EXPECT_EQ(t.te2[i], ror8(t.te1[i]));
    EXPECT_EQ(t.te3[i], ror8(t.te2[i]));
  }
}

TEST(Aes128T, TablesFillExactlyOnePage) {
  // The paper-relevant size fact: Te0..Te3 together are 4 KiB — one frame.
  EXPECT_EQ(sizeof(Aes128T::Tables), 4096u);
}

TEST(Aes128T, SingleTableBitFlipCorruptsCiphertexts) {
  Rng rng(33);
  Aes128::Key key;
  rng.fill_bytes(key);
  const auto rk = Aes128::expand_key(key);
  auto tables = Aes128T::canonical_tables();
  tables.te0[0x11] ^= 0x00000100;  // one bit in one table word
  int diffs = 0;
  for (int i = 0; i < 64; ++i) {
    Aes128::Block pt;
    rng.fill_bytes(pt);
    if (Aes128T::encrypt(pt, rk, tables, Aes128::sbox()) !=
        Aes128::encrypt(pt, rk))
      ++diffs;
  }
  // 36 Te0 lookups per encryption hit index 0x11 with p ~ 1-(255/256)^36.
  EXPECT_GT(diffs, 2);
}

}  // namespace
}  // namespace explframe::crypto
