#include "crypto/present80.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace explframe::crypto {
namespace {

using Key = Present80::Key;

// Test vectors from the PRESENT paper (Bogdanov et al., CHES 2007).
TEST(Present80, PaperVectorAllZero) {
  const Key key{};  // 00...0
  const auto rk = Present80::expand_key(key);
  EXPECT_EQ(Present80::encrypt(0x0000000000000000ULL, rk),
            0x5579C1387B228445ULL);
}

TEST(Present80, PaperVectorZeroKeyOnesPlain) {
  const Key key{};
  const auto rk = Present80::expand_key(key);
  EXPECT_EQ(Present80::encrypt(0xFFFFFFFFFFFFFFFFULL, rk),
            0xA112FFC72F68417BULL);
}

TEST(Present80, PaperVectorOnesKeyZeroPlain) {
  Key key;
  key.fill(0xFF);
  const auto rk = Present80::expand_key(key);
  EXPECT_EQ(Present80::encrypt(0x0000000000000000ULL, rk),
            0xE72C46C0F5945049ULL);
}

TEST(Present80, PaperVectorOnesEverything) {
  Key key;
  key.fill(0xFF);
  const auto rk = Present80::expand_key(key);
  EXPECT_EQ(Present80::encrypt(0xFFFFFFFFFFFFFFFFULL, rk),
            0x3333DCD3213210D2ULL);
}

TEST(Present80, DecryptInvertsEncrypt) {
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    Key key;
    rng.fill_bytes(key);
    const auto rk = Present80::expand_key(key);
    const std::uint64_t pt = rng.next();
    EXPECT_EQ(Present80::decrypt(Present80::encrypt(pt, rk), rk), pt);
  }
}

TEST(Present80, PLayerRoundTrips) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next();
    EXPECT_EQ(Present80::p_layer_inv(Present80::p_layer(v)), v);
    EXPECT_EQ(Present80::p_layer(Present80::p_layer_inv(v)), v);
  }
}

TEST(Present80, PLayerIsLinearOverXor) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next();
    const std::uint64_t b = rng.next();
    EXPECT_EQ(Present80::p_layer(a ^ b),
              Present80::p_layer(a) ^ Present80::p_layer(b));
  }
}

TEST(Present80, SboxIsBijective) {
  const auto& sbox = Present80::sbox();
  const auto& inv = Present80::inv_sbox();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(inv[sbox[i]], i);
    EXPECT_EQ(sbox[inv[i]], i);
  }
}

TEST(Present80, EncryptWithCanonicalSboxMatches) {
  Rng rng(12);
  Key key;
  rng.fill_bytes(key);
  const auto rk = Present80::expand_key(key);
  const std::uint64_t pt = rng.next();
  EXPECT_EQ(Present80::encrypt_with_sbox(pt, rk, Present80::sbox()),
            Present80::encrypt(pt, rk));
}

TEST(Present80, FaultySboxChangesCiphertext) {
  Rng rng(13);
  Key key;
  rng.fill_bytes(key);
  const auto rk = Present80::expand_key(key);
  auto faulty = Present80::sbox();
  faulty[5] ^= 0x4;
  int diffs = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t pt = rng.next();
    if (Present80::encrypt_with_sbox(pt, rk, faulty) !=
        Present80::encrypt(pt, rk))
      ++diffs;
  }
  EXPECT_GT(diffs, 60);  // 31 rounds x 16 nibbles: almost always hit
}

TEST(Present80, RoundKeysDiffer) {
  Key key;
  key.fill(0x12);
  const auto rk = Present80::expand_key(key);
  EXPECT_NE(rk[0], rk[1]);
  EXPECT_NE(rk[30], rk[31]);
}

TEST(Present80, SpTablesMatchSboxPathOnCanonicalAndFaultyTables) {
  // The combined sBoxLayer+pLayer tables (the batch path's round kernel)
  // must reproduce encrypt_with_sbox bit for bit, canonical or faulted.
  Rng rng(77);
  for (int trial = 0; trial < 4; ++trial) {
    auto table = Present80::sbox();
    if (trial > 0) {
      table[rng.uniform(16)] ^= static_cast<std::uint8_t>(1 + rng.uniform(15));
    }
    const std::span<const std::uint8_t, 16> tspan(table);
    const auto sp = Present80::derive_sp_tables(tspan);
    Key key;
    rng.fill_bytes(key);
    const auto rk = Present80::expand_key(key);
    for (int i = 0; i < 64; ++i) {
      const std::uint64_t pt = rng.next();
      EXPECT_EQ(Present80::encrypt_with_sp(pt, rk, sp),
                Present80::encrypt_with_sbox(pt, rk, tspan))
          << "trial " << trial;
    }
  }
}

TEST(Present80, SpTablesIgnoreDeadHighNibbles) {
  // Stored table entries carry a dead high nibble; SP derivation must mask
  // exactly like sbox_layer's on-use masking.
  auto dirty = Present80::sbox();
  for (auto& b : dirty) b |= 0xA0;
  const auto sp_dirty =
      Present80::derive_sp_tables(std::span<const std::uint8_t, 16>(dirty));
  const auto sp_clean = Present80::derive_sp_tables(
      std::span<const std::uint8_t, 16>(Present80::sbox()));
  EXPECT_EQ(sp_dirty, sp_clean);
}

}  // namespace
}  // namespace explframe::crypto
