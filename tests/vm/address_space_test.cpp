#include "vm/address_space.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace explframe::vm {
namespace {

TEST(AddressSpace, MmapReturnsPageAlignedGrowingAddresses) {
  AddressSpace space;
  const VirtAddr a = space.mmap(1);        // rounds to one page
  const VirtAddr b = space.mmap(10000);    // rounds to 3 pages
  EXPECT_EQ(a % kPageSize, 0u);
  EXPECT_EQ(b % kPageSize, 0u);
  EXPECT_GT(b, a);
  EXPECT_EQ(space.vmas().size(), 2u);
  EXPECT_EQ(space.counters().mmap_calls, 2u);
}

TEST(AddressSpace, ValidInsideVmaOnly) {
  AddressSpace space;
  const VirtAddr a = space.mmap(2 * kPageSize);
  EXPECT_TRUE(space.valid(a));
  EXPECT_TRUE(space.valid(a + 2 * kPageSize - 1));
  EXPECT_FALSE(space.valid(a + 2 * kPageSize));
  EXPECT_FALSE(space.valid(a - 1));
}

TEST(AddressSpace, MunmapWholeRegionReleasesMappedPages) {
  AddressSpace space;
  const VirtAddr a = space.mmap(3 * kPageSize);
  space.page_table().map(a, 100);
  space.page_table().map(a + kPageSize, 101);
  // Third page never touched: no frame to release.
  std::vector<mm::Pfn> released;
  EXPECT_TRUE(space.munmap(a, 3 * kPageSize,
                           [&](mm::Pfn p) { released.push_back(p); }));
  EXPECT_EQ(released, (std::vector<mm::Pfn>{100, 101}));
  EXPECT_TRUE(space.vmas().empty());
  EXPECT_FALSE(space.valid(a));
}

TEST(AddressSpace, MunmapSinglePageSplitsVma) {
  AddressSpace space;
  const VirtAddr a = space.mmap(4 * kPageSize);
  space.page_table().map(a + kPageSize, 7);
  std::vector<mm::Pfn> released;
  EXPECT_TRUE(space.munmap(a + kPageSize, kPageSize,
                           [&](mm::Pfn p) { released.push_back(p); }));
  EXPECT_EQ(released, (std::vector<mm::Pfn>{7}));
  // VMA split into [a, a+4K) and [a+8K, a+16K).
  EXPECT_EQ(space.vmas().size(), 2u);
  EXPECT_TRUE(space.valid(a));
  EXPECT_FALSE(space.valid(a + kPageSize));
  EXPECT_TRUE(space.valid(a + 2 * kPageSize));
}

TEST(AddressSpace, MunmapHeadAndTailTrim) {
  AddressSpace space;
  const VirtAddr a = space.mmap(4 * kPageSize);
  EXPECT_TRUE(space.munmap(a, kPageSize, [](mm::Pfn) {}));
  EXPECT_FALSE(space.valid(a));
  EXPECT_TRUE(space.valid(a + kPageSize));
  EXPECT_TRUE(space.munmap(a + 3 * kPageSize, kPageSize, [](mm::Pfn) {}));
  EXPECT_TRUE(space.valid(a + 2 * kPageSize));
  EXPECT_FALSE(space.valid(a + 3 * kPageSize));
}

TEST(AddressSpace, MunmapOutsideAnyVmaReturnsFalse) {
  AddressSpace space;
  space.mmap(kPageSize);
  EXPECT_FALSE(space.munmap(0x1000, kPageSize, [](mm::Pfn) {}));
}

TEST(AddressSpace, MunmapSpanningTwoVmas) {
  AddressSpace space;
  const VirtAddr a = space.mmap(2 * kPageSize);
  const VirtAddr b = space.mmap(2 * kPageSize);
  // Regions are separated by a guard page; unmap a range covering both.
  EXPECT_TRUE(space.munmap(a, b + 2 * kPageSize - a, [](mm::Pfn) {}));
  EXPECT_TRUE(space.vmas().empty());
}

TEST(AddressSpace, ReleaseAllReturnsEveryFrame) {
  AddressSpace space;
  const VirtAddr a = space.mmap(3 * kPageSize);
  const VirtAddr b = space.mmap(2 * kPageSize);
  space.page_table().map(a, 1);
  space.page_table().map(a + 2 * kPageSize, 2);
  space.page_table().map(b, 3);
  std::vector<mm::Pfn> released;
  space.release_all([&](mm::Pfn p) { released.push_back(p); });
  EXPECT_EQ(released.size(), 3u);
  EXPECT_TRUE(space.vmas().empty());
  EXPECT_EQ(space.page_table().mapped_pages(), 0u);
}

}  // namespace
}  // namespace explframe::vm
