#include "vm/page_table.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "support/rng.hpp"

namespace explframe::vm {
namespace {

TEST(PageTable, MapFindUnmap) {
  PageTable pt;
  EXPECT_TRUE(pt.map(0x1000, 42));
  const Pte* pte = pt.find(0x1000);
  ASSERT_NE(pte, nullptr);
  EXPECT_EQ(pte->pfn, 42u);
  const auto pfn = pt.unmap(0x1000);
  ASSERT_TRUE(pfn);
  EXPECT_EQ(*pfn, 42u);
  EXPECT_EQ(pt.find(0x1000), nullptr);
}

TEST(PageTable, FindUnmappedReturnsNull) {
  PageTable pt;
  EXPECT_EQ(pt.find(0x2000), nullptr);
  EXPECT_FALSE(pt.unmap(0x2000).has_value());
}

TEST(PageTable, DistantAddressesUseSeparateSubtrees) {
  PageTable pt;
  const VirtAddr lo = 0x0000'0000'1000ULL;
  const VirtAddr hi = 0x7fff'ffff'f000ULL;
  EXPECT_TRUE(pt.map(lo, 1));
  EXPECT_TRUE(pt.map(hi, 2));
  EXPECT_EQ(pt.find(lo)->pfn, 1u);
  EXPECT_EQ(pt.find(hi)->pfn, 2u);
  EXPECT_EQ(pt.mapped_pages(), 2u);
}

TEST(PageTable, MappedCountTracksChanges) {
  PageTable pt;
  for (VirtAddr va = 0; va < 100 * kPageSize; va += kPageSize)
    EXPECT_TRUE(pt.map(va, va / kPageSize));
  EXPECT_EQ(pt.mapped_pages(), 100u);
  for (VirtAddr va = 0; va < 50 * kPageSize; va += kPageSize)
    EXPECT_TRUE(pt.unmap(va).has_value());
  EXPECT_EQ(pt.mapped_pages(), 50u);
}

TEST(PageTable, NodePruningOnUnmap) {
  PageTable pt;
  const std::uint64_t nodes_empty = pt.table_nodes();
  EXPECT_TRUE(pt.map(0x1000, 7));
  EXPECT_GT(pt.table_nodes(), nodes_empty);
  pt.unmap(0x1000);
  EXPECT_EQ(pt.table_nodes(), nodes_empty);
}

TEST(PageTable, SharedIntermediateNodesSurvivePartialUnmap) {
  PageTable pt;
  EXPECT_TRUE(pt.map(0x1000, 1));
  EXPECT_TRUE(pt.map(0x2000, 2));  // same leaf node
  const std::uint64_t nodes = pt.table_nodes();
  pt.unmap(0x1000);
  EXPECT_EQ(pt.table_nodes(), nodes);  // leaf still needed for 0x2000
  EXPECT_EQ(pt.find(0x2000)->pfn, 2u);
}

TEST(PageTable, ForEachVisitsInOrder) {
  PageTable pt;
  std::vector<VirtAddr> vas = {0x5000, 0x1000, 0x7fff00000000, 0x3000};
  for (std::size_t i = 0; i < vas.size(); ++i)
    EXPECT_TRUE(pt.map(vas[i], i));
  std::vector<VirtAddr> visited;
  pt.for_each([&](VirtAddr va, const Pte&) { visited.push_back(va); });
  ASSERT_EQ(visited.size(), 4u);
  EXPECT_EQ(visited[0], 0x1000u);
  EXPECT_EQ(visited[1], 0x3000u);
  EXPECT_EQ(visited[2], 0x5000u);
  EXPECT_EQ(visited[3], 0x7fff00000000u);
}

TEST(PageTable, FrameClientChargedPerNode) {
  std::uint64_t next = 100;
  std::vector<mm::Pfn> freed;
  FrameClient client{[&] { return next++; },
                     [&](mm::Pfn p) { freed.push_back(p); }};
  {
    PageTable pt(std::move(client));
    // Root charged at construction; mapping one page charges 3 more levels.
    EXPECT_TRUE(pt.map(0x1000, 1));
    EXPECT_EQ(next, 104u);  // root + PUD + PMD + PTE nodes
    pt.unmap(0x1000);
    EXPECT_EQ(freed.size(), 3u);  // intermediate nodes pruned, root stays
  }
  EXPECT_EQ(freed.size(), 4u);  // destructor releases the root frame
}

TEST(PageTable, FrameClientAllocationFailurePropagates) {
  int budget = 2;  // root + one level, then fail
  FrameClient client{[&]() -> mm::Pfn {
                       if (budget-- <= 0) return mm::kInvalidPfn;
                       return 1;
                     },
                     [](mm::Pfn) {}};
  PageTable pt(std::move(client));
  EXPECT_FALSE(pt.map(0x1000, 5));
  EXPECT_EQ(pt.find(0x1000), nullptr);
}

TEST(PageTable, RandomizedAgainstReferenceMap) {
  PageTable pt;
  std::map<VirtAddr, mm::Pfn> reference;
  Rng rng(1234);
  for (int step = 0; step < 20000; ++step) {
    const VirtAddr va = rng.uniform(1 << 16) * kPageSize;
    if (rng.bernoulli(0.6)) {
      if (reference.count(va) == 0) {
        const mm::Pfn pfn = rng.uniform(1 << 20);
        ASSERT_TRUE(pt.map(va, pfn));
        reference[va] = pfn;
      }
    } else {
      const auto got = pt.unmap(va);
      const auto it = reference.find(va);
      if (it == reference.end()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, it->second);
        reference.erase(it);
      }
    }
  }
  EXPECT_EQ(pt.mapped_pages(), reference.size());
  for (const auto& [va, pfn] : reference) {
    const Pte* pte = pt.find(va);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->pfn, pfn);
  }
}

}  // namespace
}  // namespace explframe::vm
