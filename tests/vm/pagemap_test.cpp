#include "vm/pagemap.hpp"

#include <gtest/gtest.h>

namespace explframe::vm {
namespace {

TEST(Pagemap, PrivilegedReaderSeesPfn) {
  AddressSpace space;
  const VirtAddr a = space.mmap(kPageSize);
  space.page_table().map(a, 1234);
  const auto entry = pagemap_read(space, a, /*cap_sys_admin=*/true);
  EXPECT_TRUE(entry.present);
  EXPECT_EQ(entry.pfn, 1234u);
}

TEST(Pagemap, UnprivilegedReaderSeesZeroPfn) {
  // Linux >= 4.0 behaviour the paper's threat model depends on.
  AddressSpace space;
  const VirtAddr a = space.mmap(kPageSize);
  space.page_table().map(a, 1234);
  const auto entry = pagemap_read(space, a, /*cap_sys_admin=*/false);
  EXPECT_TRUE(entry.present);
  EXPECT_EQ(entry.pfn, 0u);
}

TEST(Pagemap, NotPresentPage) {
  AddressSpace space;
  const VirtAddr a = space.mmap(kPageSize);
  const auto entry = pagemap_read(space, a, true);
  EXPECT_FALSE(entry.present);
  EXPECT_EQ(entry.pfn, 0u);
}

TEST(Pagemap, SubPageOffsetsResolveToSameEntry) {
  AddressSpace space;
  const VirtAddr a = space.mmap(kPageSize);
  space.page_table().map(a, 55);
  EXPECT_EQ(pagemap_read(space, a + 123, true).pfn, 55u);
  EXPECT_EQ(pagemap_read(space, a + kPageSize - 1, true).pfn, 55u);
}

}  // namespace
}  // namespace explframe::vm
