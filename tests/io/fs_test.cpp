// io::FileSystem seam unit suite — the Status taxonomy (errno mapping,
// transient vs permanent vs not-found), the deterministic attempt-counted
// with_retry, and the RealFs passthrough: read/write round trips, sorted
// listings, idempotent removes, torn-tail truncation, and the
// durable_write discipline (tmp + sync + rename, no stranded tmp files,
// old-or-new-never-torn publishes).
#include "io/fs.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <string>
#include <vector>

namespace explframe::io {
namespace {

/// A fresh scratch directory per test.
std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Status, DefaultIsOkAndFactoriesCarryTheTaxonomy) {
  EXPECT_TRUE(Status().ok());
  EXPECT_TRUE(Status::ok_status().ok());
  EXPECT_TRUE(Status().message().empty());

  const Status transient = Status::transient_error("flaky");
  EXPECT_TRUE(transient.transient());
  EXPECT_FALSE(transient.ok());
  EXPECT_FALSE(transient.permanent());
  EXPECT_EQ(transient.message(), "flaky");

  const Status permanent = Status::permanent_error("disk full");
  EXPECT_TRUE(permanent.permanent());
  EXPECT_FALSE(permanent.transient());
  EXPECT_FALSE(permanent.is_not_found());

  // kNotFound is distinct (callers map it to "empty") but counts as
  // permanent — retrying cannot make a file appear.
  const Status missing = Status::not_found("no such file");
  EXPECT_TRUE(missing.is_not_found());
  EXPECT_TRUE(missing.permanent());
  EXPECT_EQ(missing.kind(), ErrorKind::kNotFound);
}

TEST(Status, ErrnoMappingFollowsTheFailureModel) {
  EXPECT_TRUE(Status::from_errno(EINTR, "x").transient());
  EXPECT_TRUE(Status::from_errno(EAGAIN, "x").transient());
  EXPECT_TRUE(Status::from_errno(EIO, "x").transient());
  EXPECT_TRUE(Status::from_errno(EBUSY, "x").transient());
  EXPECT_TRUE(Status::from_errno(ENOSPC, "x").permanent());
  EXPECT_TRUE(Status::from_errno(EROFS, "x").permanent());
  EXPECT_TRUE(Status::from_errno(EACCES, "x").permanent());
  EXPECT_TRUE(Status::from_errno(ENOENT, "x").is_not_found());
  // Messages spell the errno name — the torture trace grep anchor.
  EXPECT_NE(Status::from_errno(ENOSPC, "write").message().find("ENOSPC"),
            std::string::npos);
  EXPECT_NE(Status::from_errno(EIO, "read").message().find("read"),
            std::string::npos);
}

TEST(WithRetry, CountsAttemptsAndStopsOnTheFirstNonTransient) {
  int calls = 0;
  // Transient failures burn the whole budget.
  const Status spent = with_retry(3, [&] {
    ++calls;
    return Status::transient_error("flaky");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_TRUE(spent.transient());

  // Success stops immediately.
  calls = 0;
  EXPECT_TRUE(with_retry(3, [&] {
                ++calls;
                return Status::ok_status();
              }).ok());
  EXPECT_EQ(calls, 1);

  // A permanent failure is never retried.
  calls = 0;
  EXPECT_TRUE(with_retry(3, [&] {
                ++calls;
                return Status::permanent_error("disk full");
              }).permanent());
  EXPECT_EQ(calls, 1);

  // Transient-then-success: the retry absorbs the flake.
  calls = 0;
  EXPECT_TRUE(with_retry(3, [&] {
                ++calls;
                return calls == 1 ? Status::transient_error("flaky")
                                  : Status::ok_status();
              }).ok());
  EXPECT_EQ(calls, 2);

  // attempts=0 is clamped to one attempt, not zero.
  calls = 0;
  EXPECT_TRUE(with_retry(0, [&] {
                ++calls;
                return Status::ok_status();
              }).ok());
  EXPECT_EQ(calls, 1);
}

TEST(RealFs, WriteReadRoundTripAndNotFound) {
  const std::string dir = fresh_dir("io-roundtrip");
  FileSystem& fs = real();

  const std::string path = dir + "/file.txt";
  ASSERT_TRUE(write_file(fs, path, "hello\nworld\n").ok());
  std::string content;
  ASSERT_TRUE(fs.read_file(path, &content).ok());
  EXPECT_EQ(content, "hello\nworld\n");
  EXPECT_TRUE(fs.exists(path));

  const Status missing = fs.read_file(dir + "/absent.txt", &content);
  EXPECT_TRUE(missing.is_not_found());
  EXPECT_EQ(content, "hello\nworld\n");  // Untouched on failure.
}

TEST(RealFs, AppendModeExtendsAndTruncateCutsTheTail) {
  const std::string dir = fresh_dir("io-append");
  FileSystem& fs = real();
  const std::string path = dir + "/log.txt";

  std::unique_ptr<File> file;
  ASSERT_TRUE(fs.open(path, OpenMode::kTruncate, &file).ok());
  ASSERT_TRUE(file->write("line one\n").ok());
  ASSERT_TRUE(file->sync().ok());
  ASSERT_TRUE(file->close().ok());
  EXPECT_TRUE(file->close().ok());  // Idempotent.

  ASSERT_TRUE(fs.open(path, OpenMode::kAppend, &file).ok());
  ASSERT_TRUE(file->write("line two\n").ok());
  ASSERT_TRUE(file->close().ok());

  std::string content;
  ASSERT_TRUE(fs.read_file(path, &content).ok());
  EXPECT_EQ(content, "line one\nline two\n");

  ASSERT_TRUE(fs.truncate(path, 9).ok());
  ASSERT_TRUE(fs.read_file(path, &content).ok());
  EXPECT_EQ(content, "line one\n");
}

TEST(RealFs, ListIsSortedNamesAndRemoveIsIdempotent) {
  const std::string dir = fresh_dir("io-list");
  FileSystem& fs = real();
  ASSERT_TRUE(write_file(fs, dir + "/b.req", "b").ok());
  ASSERT_TRUE(write_file(fs, dir + "/a.req", "a").ok());
  ASSERT_TRUE(write_file(fs, dir + "/c.md", "c").ok());

  std::vector<std::string> names;
  ASSERT_TRUE(fs.list(dir, &names).ok());
  EXPECT_EQ(names, (std::vector<std::string>{"a.req", "b.req", "c.md"}));

  ASSERT_TRUE(fs.remove(dir + "/b.req").ok());
  // "Already gone" is the goal state, not an error.
  EXPECT_TRUE(fs.remove(dir + "/b.req").ok());
  ASSERT_TRUE(fs.list(dir, &names).ok());
  EXPECT_EQ(names, (std::vector<std::string>{"a.req", "c.md"}));
}

TEST(RealFs, DurableWritePublishesAtomicallyAndLeavesNoTmp) {
  const std::string dir = fresh_dir("io-durable");
  FileSystem& fs = real();
  const std::string path = dir + "/report.md";

  ASSERT_TRUE(durable_write(fs, path, "old bytes\n").ok());
  ASSERT_TRUE(durable_write(fs, path, "new bytes\n").ok());

  std::string content;
  ASSERT_TRUE(fs.read_file(path, &content).ok());
  EXPECT_EQ(content, "new bytes\n");

  // No "<name>.tmpN" debris after successful publishes.
  std::vector<std::string> names;
  ASSERT_TRUE(fs.list(dir, &names).ok());
  EXPECT_EQ(names, (std::vector<std::string>{"report.md"}));
}

TEST(RealFs, RenameMovesAndMkdirCreatesParents) {
  const std::string dir = fresh_dir("io-rename");
  FileSystem& fs = real();
  ASSERT_TRUE(fs.create_directories(dir + "/a/b/c").ok());
  EXPECT_TRUE(fs.exists(dir + "/a/b/c"));
  ASSERT_TRUE(write_file(fs, dir + "/a/b/c/x.txt", "x").ok());
  ASSERT_TRUE(fs.rename(dir + "/a/b/c/x.txt", dir + "/a/y.txt").ok());
  EXPECT_FALSE(fs.exists(dir + "/a/b/c/x.txt"));
  EXPECT_TRUE(fs.exists(dir + "/a/y.txt"));
}

TEST(CrashPoints, RegistryNamesAreUniqueAndRealFsIgnoresThem) {
  const std::vector<std::string>& names = crash_point_names();
  ASSERT_FALSE(names.empty());
  for (std::size_t i = 0; i < names.size(); ++i)
    for (std::size_t j = i + 1; j < names.size(); ++j)
      EXPECT_NE(names[i], names[j]);
  // The production filesystem treats every crash point as a no-op.
  for (const std::string& name : names) real().crash_point(name);
}

}  // namespace
}  // namespace explframe::io
