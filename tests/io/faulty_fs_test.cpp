// io::FaultyFs unit suite — the scripted failure plan executes exactly as
// written: Nth-operation failures (one-shot and sticky), short writes
// that keep a prefix, ENOSPC after a byte budget, crash-at-op and
// crash-at-point semantics (un-synced bytes dropped, torn half-flush at a
// sync, everything failing afterwards), and the in-order operation trace
// the torture harnesses replay against.
#include "io/faulty_fs.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "io/fs.hpp"

namespace explframe::io {
namespace {

/// A fresh scratch directory per test.
std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::string content;
  EXPECT_TRUE(real().read_file(path, &content).ok());
  return content;
}

TEST(FaultyFs, PassthroughRecordsTheTraceInOrder) {
  const std::string dir = fresh_dir("faulty-trace");
  FaultyFs fs(real());

  ASSERT_TRUE(durable_write(fs, dir + "/a.txt", "hello\n").ok());
  EXPECT_EQ(slurp(dir + "/a.txt"), "hello\n");

  // durable_write through the seam: open, write, sync, close, rename.
  const std::vector<FaultyFs::OpRecord> trace = fs.trace();
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace[0].op, Op::kOpen);
  EXPECT_EQ(trace[1].op, Op::kWrite);
  EXPECT_EQ(trace[2].op, Op::kSync);
  EXPECT_EQ(trace[3].op, Op::kClose);
  EXPECT_EQ(trace[4].op, Op::kRename);
  EXPECT_EQ(fs.op_count(), 5u);
  EXPECT_NE(trace[1].describe(1).find("write"), std::string::npos);
  EXPECT_NE(trace[1].describe(1).find(".tmp"), std::string::npos);
}

TEST(FaultyFs, FailNthFiresOnceAndFailFromIsSticky) {
  const std::string dir = fresh_dir("faulty-nth");
  FaultyFs fs(real());

  // The 0th sync fails once; the retry's sync (the 1st) succeeds.
  fs.fail_nth(Op::kSync, 0, Status::transient_error("flaky fsync"));
  ASSERT_TRUE(durable_write(fs, dir + "/a.txt", "a\n").ok());
  EXPECT_EQ(slurp(dir + "/a.txt"), "a\n");

  // Sticky from the 0th rename on: every publish attempt fails, and the
  // failed attempts remove their tmp files — nothing is stranded.
  fs.reset();
  fs.fail_from(Op::kRename, 0, Status::permanent_error("broken rename"));
  EXPECT_TRUE(durable_write(fs, dir + "/b.txt", "b\n").permanent());
  EXPECT_FALSE(real().exists(dir + "/b.txt"));
  std::vector<std::string> names;
  ASSERT_TRUE(real().list(dir, &names).ok());
  EXPECT_EQ(names, (std::vector<std::string>{"a.txt"}));
}

TEST(FaultyFs, ShortWriteKeepsThePrefixThatReachedTheFile) {
  const std::string dir = fresh_dir("faulty-short");
  FaultyFs fs(real());
  fs.short_write_nth(0, 3, Status::permanent_error("short write"));

  std::unique_ptr<File> file;
  ASSERT_TRUE(fs.open(dir + "/log", OpenMode::kTruncate, &file).ok());
  EXPECT_TRUE(file->write("0123456789").permanent());
  ASSERT_TRUE(file->close().ok());  // A clean close flushes what landed.
  EXPECT_EQ(slurp(dir + "/log"), "012");
}

TEST(FaultyFs, CapacityBudgetGivesEnospcAndKeepsWhatFits) {
  const std::string dir = fresh_dir("faulty-enospc");
  FaultyFs fs(real());
  fs.set_capacity(4);

  std::unique_ptr<File> file;
  ASSERT_TRUE(fs.open(dir + "/log", OpenMode::kTruncate, &file).ok());
  const Status full = file->write("0123456789");
  EXPECT_TRUE(full.permanent());
  EXPECT_NE(full.message().find("ENOSPC"), std::string::npos);
  ASSERT_TRUE(file->close().ok());
  EXPECT_EQ(slurp(dir + "/log"), "0123");  // The disk filled mid-file.

  // durable_write against a full disk: fails, and the tmp is removed.
  EXPECT_TRUE(durable_write(fs, dir + "/b.txt", "bytes\n").permanent());
  std::vector<std::string> names;
  ASSERT_TRUE(real().list(dir, &names).ok());
  EXPECT_EQ(names, (std::vector<std::string>{"log"}));

  // Lifting the budget heals the disk.
  fs.set_capacity(std::nullopt);
  EXPECT_TRUE(durable_write(fs, dir + "/b.txt", "bytes\n").ok());
}

TEST(FaultyFs, CrashDropsUnsyncedBytesAndFailsEverythingAfter) {
  const std::string dir = fresh_dir("faulty-crash");
  FaultyFs fs(real());

  // Counting pass: 5 ops per durable_write. Crash at the rename (op 4):
  // the tmp was synced but never published, and the post-crash cleanup
  // remove fails too — exactly the stranded-tmp debris a real crash
  // leaves.
  fs.crash_at_op(4);
  EXPECT_FALSE(durable_write(fs, dir + "/a.txt", "hello\n").ok());
  EXPECT_TRUE(fs.crashed());
  EXPECT_FALSE(real().exists(dir + "/a.txt"));
  std::vector<std::string> names;
  ASSERT_TRUE(real().list(dir, &names).ok());
  ASSERT_EQ(names.size(), 1u);
  EXPECT_NE(names[0].find(".tmp"), std::string::npos);

  // After the crash every operation fails and has no effect.
  std::string content;
  EXPECT_FALSE(fs.read_file(dir + "/a.txt", &content).ok());
  EXPECT_FALSE(fs.create_directories(dir + "/sub").ok());
  EXPECT_FALSE(real().exists(dir + "/sub"));
}

TEST(FaultyFs, CrashBeforeSyncLosesTheBufferedWrite) {
  const std::string dir = fresh_dir("faulty-pagecache");
  FaultyFs fs(real());

  // Crash at the write itself (op 1): the bytes only ever lived in the
  // "page cache" buffer, so the base file stays empty.
  fs.crash_at_op(1);
  std::unique_ptr<File> file;
  ASSERT_TRUE(fs.open(dir + "/log", OpenMode::kTruncate, &file).ok());
  EXPECT_FALSE(file->write("never synced\n").ok());
  EXPECT_FALSE(file->close().ok());
  EXPECT_EQ(slurp(dir + "/log"), "");
}

TEST(FaultyFs, CrashAtSyncTearsTheWriteInHalf) {
  const std::string dir = fresh_dir("faulty-torn");
  FaultyFs fs(real());

  // Ops: open(0), write(1), sync(2). Crashing at the sync flushes only
  // half of the pending bytes — the torn line the checkpoint format's
  // torn-tail tolerance exists for.
  fs.crash_at_op(2);
  std::unique_ptr<File> file;
  ASSERT_TRUE(fs.open(dir + "/log", OpenMode::kTruncate, &file).ok());
  ASSERT_TRUE(file->write("0123456789").ok());
  EXPECT_FALSE(file->sync().ok());
  EXPECT_FALSE(file->close().ok());
  EXPECT_EQ(slurp(dir + "/log"), "01234");
}

TEST(FaultyFs, CrashAtPointTriggersExactlyAtTheNamedSeam) {
  const std::string dir = fresh_dir("faulty-point");
  FaultyFs fs(real());
  fs.crash_at_point("durable-write.tmp-synced");

  // The point sits between the synced tmp and the publishing rename, so
  // the content is durable under the tmp name but never visible at the
  // destination.
  EXPECT_FALSE(durable_write(fs, dir + "/a.txt", "hello\n").ok());
  EXPECT_TRUE(fs.crashed());
  EXPECT_FALSE(real().exists(dir + "/a.txt"));
  const std::vector<std::string> visited = fs.visited_points();
  ASSERT_EQ(visited.size(), 1u);
  EXPECT_EQ(visited[0], "durable-write.tmp-synced");
  std::vector<std::string> names;
  ASSERT_TRUE(real().list(dir, &names).ok());
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(slurp(dir + "/" + names[0]), "hello\n");  // Synced, unpublished.
}

TEST(FaultyFs, ResetForgetsThePlanButKeepsTheDisk) {
  const std::string dir = fresh_dir("faulty-reset");
  FaultyFs fs(real());
  ASSERT_TRUE(durable_write(fs, dir + "/a.txt", "kept\n").ok());
  fs.crash_at_op(0);
  EXPECT_FALSE(durable_write(fs, dir + "/b.txt", "lost\n").ok());
  EXPECT_TRUE(fs.crashed());

  fs.reset();
  EXPECT_FALSE(fs.crashed());
  EXPECT_EQ(fs.op_count(), 0u);
  EXPECT_TRUE(fs.trace().empty());
  EXPECT_EQ(slurp(dir + "/a.txt"), "kept\n");  // The disk survived.
  EXPECT_TRUE(durable_write(fs, dir + "/b.txt", "works\n").ok());
}

TEST(FaultyFs, TransientInjectionIsAbsorbedByDurableWriteRetries) {
  const std::string dir = fresh_dir("faulty-retry");
  FaultyFs fs(real());
  // One transient flake on each kind durable_write touches; the bounded
  // retry rewrites from scratch and publishes.
  fs.fail_nth(Op::kWrite, 0, Status::transient_error("flaky write"));
  fs.fail_nth(Op::kRename, 1, Status::transient_error("flaky rename"));
  ASSERT_TRUE(durable_write(fs, dir + "/a.txt", "hello\n").ok());
  EXPECT_EQ(slurp(dir + "/a.txt"), "hello\n");
}

}  // namespace
}  // namespace explframe::io
